package greenenvy

import (
	"fmt"
	"math"
	"strings"

	"greenenvy/internal/energy"
	"greenenvy/internal/netsim"
	"greenenvy/internal/plot"
	"greenenvy/internal/sim"
	"greenenvy/internal/stats"
	"greenenvy/internal/tcp"
	"greenenvy/internal/testbed"
	"greenenvy/internal/workload"
)

// WorkloadCrossoverPoint is one flow-size factor of the crossover sweep.
type WorkloadCrossoverPoint struct {
	// Factor multiplies the web-search distribution's flow sizes; MeanMB
	// is the resulting mean flow size.
	Factor float64
	MeanMB float64
	Flows  int
	// FairJPerGB and EnvyJPerGB are sender joules per gigabyte moved;
	// EnergyDeltaPct is (envy−fair)/fair·100, negative when envy saves.
	FairJPerGB     float64
	EnvyJPerGB     float64
	EnergyDeltaPct float64
	// EnvyP99ms is the envy policy's P99 flow sojourn time (fair's for
	// reference), the latency price of admission at this flow size.
	FairP99ms float64
	EnvyP99ms float64
}

// WorkloadCrossoverResult locates where online envy admission turns
// energy-positive: the workload-scale experiment showed mice-dominated
// production mixes losing energy to deferral, and §4's bulk transfers
// gaining — this sweep scales one distribution's flow sizes across that
// divide and finds the crossover factor.
type WorkloadCrossoverResult struct {
	Points []WorkloadCrossoverPoint
	// CrossoverFactor is the smallest swept factor where envy admission
	// uses less energy than fair sharing (0 when it never does).
	CrossoverFactor float64
	// CrossoverMeanMB is that factor's mean flow size.
	CrossoverMeanMB float64
}

func init() {
	Register(Experiment{
		Name: "workload-crossover", Order: 166, Section: "§5",
		Description: "flow-size sweep locating where envy admission turns energy-positive",
		Run:         func(o Options) (Result, error) { return RunWorkloadCrossover(o) },
	})
}

// workloadCrossoverFactors scale the web-search distribution's flow sizes
// from 1% (the workload-scale regime, mice-dominated, envy loses) to 4×
// (bulk-dominated, §4's regime). The sweep brackets the crossover.
var workloadCrossoverFactors = []float64{0.01, 0.05, 0.25, 1, 4}

// RunWorkloadCrossover replays open-loop web-search arrivals at 50% load
// through a k=4 fat-tree converging on host 0, under fair admission and
// under the online envy policy, sweeping the flow-size factor. Flow count
// is 10^5·Scale per repetition (min 200) and the offered load is held
// constant — larger flows arrive proportionally less often — so the only
// moving part is how much wire time each flow gives the policy to amortize
// its ramp-up and idle-host costs over.
func RunWorkloadCrossover(o Options) (WorkloadCrossoverResult, error) {
	o, err := o.WithDefaults()
	if err != nil {
		return WorkloadCrossoverResult{}, err
	}
	flows := int(math.Round(1e5 * o.Scale))
	if flows < 200 {
		flows = 200
	}
	const load = 0.5
	cfg := netsim.DefaultFatTree(4)
	hostBps := float64(cfg.HostBps)
	payload := tcp.DefaultConfig().MTU - tcp.HeaderBytes
	envy := testbed.NewEnvyAdmission(energy.DefaultModel(), hostBps, payload, "cubic")
	fair := testbed.FairAdmission{}

	avg := func(rs []testbed.StreamResult, f func(testbed.StreamResult) float64) float64 {
		xs := make([]float64, len(rs))
		for i, r := range rs {
			xs[i] = f(r)
		}
		return stats.Mean(xs)
	}

	var res WorkloadCrossoverResult
	for _, factor := range workloadCrossoverFactors {
		dist := workload.Scaled{Dist: workload.WebSearch(), Factor: factor}
		meanB := dist.Mean()
		lambda := load * hostBps / 8 / meanB
		deadline := sim.Duration((float64(flows)/lambda + float64(flows)*(meanB*8/hostBps+0.002) + 10) * float64(sim.Second))

		byPolicy := map[string][]testbed.StreamResult{}
		for _, adm := range []testbed.Admission{fair, envy} {
			adm := adm
			id := fmt.Sprintf("workload-crossover/%s/load=%g/flows=%d/%s", dist.Name(), load, flows, adm.Name())
			runs, err := repeatStreamRuns(o, id, func(seed uint64) (testbed.StreamResult, error) {
				tb := testbed.NewFatTree(testbed.Options{Seed: seed, StreamStats: true}, cfg)
				hosts := tb.Fat.NumHosts()
				tb.TouchHost(0, false)
				for h := 1; h < hosts; h++ {
					tb.TouchHost(netsim.NodeID(h), true)
				}
				ws, err := workload.NewStreamN(sim.NewRNG(seed), dist, load, hostBps, uint64(flows))
				if err != nil {
					return testbed.StreamResult{}, err
				}
				i := 0
				stream := testbed.FlowStreamFunc(func() (testbed.FlowArrival, bool) {
					f, ok := ws.Next()
					if !ok {
						return testbed.FlowArrival{}, false
					}
					a := testbed.FlowArrival{At: f.Start, Bytes: f.Bytes, Src: 1 + i%(hosts-1), Dst: 0}
					i++
					return a, true
				})
				return tb.RunStream(stream, "cubic", adm, deadline)
			})
			if err != nil {
				return WorkloadCrossoverResult{}, fmt.Errorf("factor %v %s: %w", factor, adm.Name(), err)
			}
			byPolicy[adm.Name()] = runs
		}

		fr, er := byPolicy[fair.Name()], byPolicy[envy.Name()]
		fairJ := avg(fr, testbed.StreamResult.EnergyPerGB)
		envyJ := avg(er, testbed.StreamResult.EnergyPerGB)
		p := WorkloadCrossoverPoint{
			Factor:         factor,
			MeanMB:         meanB / 1e6,
			Flows:          flows,
			FairJPerGB:     fairJ,
			EnvyJPerGB:     envyJ,
			EnergyDeltaPct: (envyJ - fairJ) / fairJ * 100,
			FairP99ms:      avg(fr, func(r testbed.StreamResult) float64 { return r.P99FCT * 1000 }),
			EnvyP99ms:      avg(er, func(r testbed.StreamResult) float64 { return r.P99FCT * 1000 }),
		}
		res.Points = append(res.Points, p)
		if p.EnergyDeltaPct < 0 && res.CrossoverFactor == 0 {
			res.CrossoverFactor = factor
			res.CrossoverMeanMB = p.MeanMB
		}
		o.Logf("workload-crossover: factor %g (mean %.2f MB): fair %.1f J/GB, envy %.1f J/GB (%+.1f%%)",
			factor, p.MeanMB, fairJ, envyJ, p.EnergyDeltaPct)
	}
	return res, nil
}

// Table renders the crossover sweep and the located crossover.
func (r WorkloadCrossoverResult) Table() string {
	var b strings.Builder
	b.WriteString("Workload crossover (§5) — flow-size factor where envy admission turns energy-positive\n")
	b.WriteString("(web-search distribution, 50% load, k=4 fat-tree, size factor sweeps mean flow size)\n")
	fmt.Fprintf(&b, "%-8s %10s %8s %10s %10s %9s %12s %12s\n",
		"factor", "mean MB", "flows", "fair J/GB", "envy J/GB", "Δ energy", "fair p99 ms", "envy p99 ms")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-8g %10.2f %8d %10.1f %10.1f %8.1f%% %12.3f %12.3f\n",
			p.Factor, p.MeanMB, p.Flows, p.FairJPerGB, p.EnvyJPerGB, p.EnergyDeltaPct, p.FairP99ms, p.EnvyP99ms)
	}
	if r.CrossoverFactor > 0 {
		fmt.Fprintf(&b, "crossover: envy admission turns energy-positive at size factor %g (mean flow %.1f MB);\n",
			r.CrossoverFactor, r.CrossoverMeanMB)
		b.WriteString("below it, per-flow slow-start rounds dominate wire time and deferral pays idle-host energy\n")
	} else {
		b.WriteString("no crossover in the swept range: envy admission never beat fair sharing here\n")
	}
	return b.String()
}

// SVG renders the energy delta vs flow-size factor.
func (r WorkloadCrossoverResult) SVG() (string, error) {
	delta := plot.Series{Name: "envy - fair"}
	zero := plot.Series{Name: "break-even"}
	for _, p := range r.Points {
		x := math.Log10(p.Factor)
		delta.X = append(delta.X, x)
		delta.Y = append(delta.Y, p.EnergyDeltaPct)
		zero.X = append(zero.X, x)
		zero.Y = append(zero.Y, 0)
	}
	return plot.Chart{
		Title:  "Workload crossover — envy admission energy delta vs flow-size factor",
		XLabel: "log10(flow-size factor)",
		YLabel: "energy delta vs fair (%)",
		Kind:   "line",
		Series: []plot.Series{delta, zero},
	}.SVG()
}
