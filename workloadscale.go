package greenenvy

import (
	"fmt"
	"math"
	"strings"

	"greenenvy/internal/energy"
	"greenenvy/internal/netsim"
	"greenenvy/internal/plot"
	"greenenvy/internal/sim"
	"greenenvy/internal/stats"
	"greenenvy/internal/tcp"
	"greenenvy/internal/testbed"
	"greenenvy/internal/workload"
)

// WorkloadScalePoint is one (distribution, load) cell of the streaming
// replay: the same open-loop arrival stream run once under fair sharing
// and once under online envy admission.
type WorkloadScalePoint struct {
	Dist  string
	Load  float64
	Flows int
	// AdmissionWidth is the envy policy's concurrency cap, derived from
	// the power curve (1 on a strictly concave curve — full
	// serialization).
	AdmissionWidth int
	// FairJPerGB and EnvyJPerGB are sender joules per gigabyte moved;
	// EnergyDeltaPct is (envy−fair)/fair·100, negative when envy saves.
	FairJPerGB     float64
	EnvyJPerGB     float64
	EnergyDeltaPct float64
	// FairP99ms and EnvyP99ms are P99 flow sojourn times (arrival to
	// completion, admission queueing included) from the streaming P²
	// sketch.
	FairP99ms float64
	EnvyP99ms float64
	// Deferred is the mean number of flows per repetition the envy policy
	// held past their arrival instant.
	Deferred float64
	// GBMoved is the mean volume per repetition.
	GBMoved float64
}

// WorkloadScaleResult is the §5 scale question answered online: replaying
// 10^5–10^6 production-distribution flows per repetition through the
// streaming churn driver (pooled flow state, O(1) aggregates, no per-flow
// retention) with the envy scheduler deciding start-now-vs-defer at each
// arrival. The energy and tail-latency deltas against fair sharing show
// where the paper's serial-schedule savings survive production flow mixes
// — and where per-flow overhead eats them.
type WorkloadScaleResult struct {
	Points []WorkloadScalePoint
}

func init() {
	Register(Experiment{
		Name: "workload-scale", Order: 165, Section: "§5",
		Description: "streaming replay: online envy admission vs fair sharing at scale",
		Run:         func(o Options) (Result, error) { return RunWorkloadScale(o) },
	})
}

// workloadScaleSizeFactor shrinks the production flow-size distributions
// for the streaming replay: at 10^5–10^6 flows per repetition the
// unscaled means (2–6 MB) would put terabytes on the wire. Scaling sizes
// rather than flow count keeps the churn rate — the thing this experiment
// stresses — at full strength.
const workloadScaleSizeFactor = 0.01

// RunWorkloadScale replays open-loop Poisson arrivals of scaled
// web-search and data-mining flows through a k=4 fat-tree, all flows
// converging on host 0, under fair admission and under the online envy
// policy. Flow count is 10^6·Scale per repetition (min 200); the run
// streams — per-flow state is pooled and only O(1) aggregates are kept,
// so memory does not grow with Scale. The sharded engine cannot license
// online flow creation mid-run, so this experiment always uses the
// monolithic engine and Options.Shards does not affect its results.
func RunWorkloadScale(o Options) (WorkloadScaleResult, error) {
	o, err := o.WithDefaults()
	if err != nil {
		return WorkloadScaleResult{}, err
	}
	flows := int(math.Round(1e6 * o.Scale))
	if flows < 200 {
		flows = 200
	}
	cfg := netsim.DefaultFatTree(4)
	hostBps := float64(cfg.HostBps)
	payload := tcp.DefaultConfig().MTU - tcp.HeaderBytes
	envy := testbed.NewEnvyAdmission(energy.DefaultModel(), hostBps, payload, "cubic")
	fair := testbed.FairAdmission{}

	avg := func(rs []testbed.StreamResult, f func(testbed.StreamResult) float64) float64 {
		xs := make([]float64, len(rs))
		for i, r := range rs {
			xs[i] = f(r)
		}
		return stats.Mean(xs)
	}

	var res WorkloadScaleResult
	for _, base := range []workload.SizeDist{workload.WebSearch(), workload.DataMining()} {
		dist := workload.Scaled{Dist: base, Factor: workloadScaleSizeFactor}
		for _, load := range []float64{0.2, 0.5, 0.9} {
			// Bound the run: the arrival span, plus enough for a fully
			// serialized drain with per-flow ramp-up slack.
			meanB := dist.Mean()
			lambda := load * hostBps / 8 / meanB
			deadline := sim.Duration((float64(flows)/lambda + float64(flows)*(meanB*8/hostBps+0.002) + 10) * float64(sim.Second))

			byPolicy := map[string][]testbed.StreamResult{}
			for _, adm := range []testbed.Admission{fair, envy} {
				adm := adm
				id := fmt.Sprintf("workload-scale/%s/load=%g/flows=%d/%s", dist.Name(), load, flows, adm.Name())
				runs, err := repeatStreamRuns(o, id, func(seed uint64) (testbed.StreamResult, error) {
					tb := testbed.NewFatTree(testbed.Options{Seed: seed, StreamStats: true}, cfg)
					hosts := tb.Fat.NumHosts()
					// Pre-touch every host so the energy bracket spans the
					// whole run for all of them, not from first flow.
					tb.TouchHost(0, false)
					for h := 1; h < hosts; h++ {
						tb.TouchHost(netsim.NodeID(h), true)
					}
					ws, err := workload.NewStreamN(sim.NewRNG(seed), dist, load, hostBps, uint64(flows))
					if err != nil {
						return testbed.StreamResult{}, err
					}
					i := 0
					stream := testbed.FlowStreamFunc(func() (testbed.FlowArrival, bool) {
						f, ok := ws.Next()
						if !ok {
							return testbed.FlowArrival{}, false
						}
						a := testbed.FlowArrival{At: f.Start, Bytes: f.Bytes, Src: 1 + i%(hosts-1), Dst: 0}
						i++
						return a, true
					})
					return tb.RunStream(stream, "cubic", adm, deadline)
				})
				if err != nil {
					return WorkloadScaleResult{}, fmt.Errorf("%s load %v %s: %w", dist.Name(), load, adm.Name(), err)
				}
				byPolicy[adm.Name()] = runs
			}

			fr, er := byPolicy[fair.Name()], byPolicy[envy.Name()]
			fairJ := avg(fr, testbed.StreamResult.EnergyPerGB)
			envyJ := avg(er, testbed.StreamResult.EnergyPerGB)
			p := WorkloadScalePoint{
				Dist:           base.Name(),
				Load:           load,
				Flows:          flows,
				AdmissionWidth: envy.MaxActive,
				FairJPerGB:     fairJ,
				EnvyJPerGB:     envyJ,
				EnergyDeltaPct: (envyJ - fairJ) / fairJ * 100,
				FairP99ms:      avg(fr, func(r testbed.StreamResult) float64 { return r.P99FCT * 1000 }),
				EnvyP99ms:      avg(er, func(r testbed.StreamResult) float64 { return r.P99FCT * 1000 }),
				Deferred:       avg(er, func(r testbed.StreamResult) float64 { return float64(r.Deferred) }),
				GBMoved:        avg(fr, func(r testbed.StreamResult) float64 { return float64(r.Bytes) / 1e9 }),
			}
			res.Points = append(res.Points, p)
			o.Logf("workload-scale: %s load %.1f: fair %.1f J/GB, envy %.1f J/GB (%+.1f%%), p99 %.2f -> %.2f ms",
				base.Name(), load, p.FairJPerGB, p.EnvyJPerGB, p.EnergyDeltaPct, p.FairP99ms, p.EnvyP99ms)
		}
	}
	return res, nil
}

// Table renders the workload-scale experiment.
func (r WorkloadScaleResult) Table() string {
	var b strings.Builder
	b.WriteString("Streaming workload replay (§5) — online envy admission vs fair sharing (CUBIC, k=4 fat-tree)\n")
	fmt.Fprintf(&b, "%-12s %5s %8s %6s %10s %10s %9s %12s %12s %10s\n",
		"workload", "load", "flows", "width", "fair J/GB", "envy J/GB", "Δ energy", "fair p99 ms", "envy p99 ms", "deferred")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-12s %5.1f %8d %6d %10.1f %10.1f %8.1f%% %12.3f %12.3f %10.0f\n",
			p.Dist, p.Load, p.Flows, p.AdmissionWidth, p.FairJPerGB, p.EnvyJPerGB,
			p.EnergyDeltaPct, p.FairP99ms, p.EnvyP99ms, p.Deferred)
	}
	b.WriteString("(negative Δ means envy saved energy. With mice-dominated production mixes,\n")
	b.WriteString(" width-1 serialization cannot keep pace with arrivals — slow-start rounds, not\n")
	b.WriteString(" wire time, bound each flow — so the deferral queue grows and envy pays idle-host\n")
	b.WriteString(" time and tail FCT: §4's bulk-transfer savings need flows big enough to amortize\n")
	b.WriteString(" per-flow ramp-up, which these distributions do not provide)\n")
	return b.String()
}

// SVG renders energy per gigabyte vs offered load, one series per
// (distribution, policy).
func (r WorkloadScaleResult) SVG() (string, error) {
	bySeries := map[string]*plot.Series{}
	var order []*plot.Series
	add := func(name string, x, y float64) {
		s, ok := bySeries[name]
		if !ok {
			s = &plot.Series{Name: name}
			bySeries[name] = s
			order = append(order, s)
		}
		s.X = append(s.X, x)
		s.Y = append(s.Y, y)
	}
	for _, p := range r.Points {
		add(p.Dist+"/fair", p.Load, p.FairJPerGB)
		add(p.Dist+"/envy", p.Load, p.EnvyJPerGB)
	}
	out := make([]plot.Series, len(order))
	for i, s := range order {
		out[i] = *s
	}
	return plot.Chart{
		Title:  "Streaming workload replay — energy per byte, fair vs envy admission",
		XLabel: "offered load (fraction of the shared receiver link)",
		YLabel: "sender energy (J/GB)",
		Kind:   "line",
		Series: out,
	}.SVG()
}
