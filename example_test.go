package greenenvy_test

import (
	"fmt"
	"os"
	"reflect"

	"greenenvy"
)

// The analytic core of the paper in four lines: with a strictly concave
// power curve, the fair allocation costs strictly more than any unfair one.
func ExampleCheckTheorem1() {
	p := greenenvy.PaperPowerFunc()
	fair, unfair, holds, _ := greenenvy.CheckTheorem1(p, 10e9, []float64{7.5e9, 2.5e9})
	fmt.Printf("P(fair)=%.2f W  P(unfair)=%.2f W  theorem holds: %v\n", fair, unfair, holds)
	// Output:
	// P(fair)=68.46 W  P(unfair)=66.77 W  theorem holds: true
}

// The §4.1 headline: two 10-Gbit flows on a 10 Gb/s link, fair sharing vs
// "full speed, then idle".
func ExampleFullSpeedThenIdle() {
	p := greenenvy.PaperPowerFunc()
	flows := []greenenvy.Flow{{Bytes: 1.25e9}, {Bytes: 1.25e9}}
	fair, _ := greenenvy.FairShare(flows, 10e9)
	serial, _ := greenenvy.FullSpeedThenIdle(flows, 10e9)
	saving, _ := greenenvy.SavingsOverFair(serial, 10e9, p)
	fmt.Printf("fair %.1f J, serial %.1f J, saving %.1f%%\n",
		fair.Energy(p), serial.Energy(p), saving*100)
	// Output:
	// fair 136.9 J, serial 114.6 J, saving 16.3%
}

// The §5 future-work scheduler: SRPT beats processor sharing on energy and
// on mean completion time simultaneously.
func ExampleCompareSchedulers() {
	p := greenenvy.PaperPowerFunc()
	flows := []greenenvy.Flow{{Bytes: 1.25e9}, {Bytes: 1.25e9}}
	c, _ := greenenvy.CompareSchedulers(flows, 10e9, p)
	fmt.Printf("energy saving %.1f%%, mean-FCT speedup x%.2f\n", c.SavingFrac*100, c.FCTSpeedup)
	// Output:
	// energy saving 16.3%, mean-FCT speedup x1.33
}

// The §4.2 extrapolation: a 1% energy saving across a hyperscale datacenter.
func ExampleDatacenterCostModel() {
	usd, _ := greenenvy.PaperDatacenter().YearlySavingsUSD(0.01)
	fmt.Printf("$%.0fM/year\n", usd/1e6)
	// Output:
	// $10M/year
}

// Pointing Options.CacheDir at a directory makes experiment results
// persistent: rerunning the same figure replays each repetition from disk
// instead of re-simulating it. Keys cover everything result-affecting
// (experiment identity, sizes, seed) plus a version stamp tied to the
// simulator's golden digest, so a stale entry can never be served.
func Example_persistentCache() {
	dir, err := os.MkdirTemp("", "greenenvy-cache")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	o := greenenvy.Options{Reps: 1, Scale: 0.02, Seed: 1, CacheDir: dir}
	cold, _ := greenenvy.RunFig3(o) // simulates both traces, fills the cache
	warm, _ := greenenvy.RunFig3(o) // replays both traces from disk
	st := greenenvy.CacheStatsFor(dir)
	fmt.Printf("identical: %v, replayed %d of %d lookups from disk\n",
		reflect.DeepEqual(cold, warm), st.Hits, st.Hits+st.Misses)
	// Output:
	// identical: true, replayed 2 of 4 lookups from disk
}

// Verifying the model satisfies the theorem's hypotheses before relying on
// any of the energy claims.
func ExampleVerifyAssumptions() {
	a, _ := greenenvy.VerifyAssumptions(greenenvy.PaperPowerFunc(), 10e9)
	fmt.Printf("hypotheses hold: %v, attainable saving: %.1f%%\n", a.Holds(), a.MaxSavingsFrac*100)
	// Output:
	// hypotheses hold: true, attainable saving: 16.3%
}
