package greenenvy

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"greenenvy/internal/cache"
	"greenenvy/internal/cca"
	"greenenvy/internal/iperf"
	"greenenvy/internal/sim"
	"greenenvy/internal/stats"
	"greenenvy/internal/tcp"
	"greenenvy/internal/testbed"
)

// paperTransferBytes is §4.3's transfer size: 50 GB per run.
const paperTransferBytes = 50_000_000_000

func init() {
	Register(Experiment{
		Name: "fig5", Aliases: []string{"5"}, Order: 50, Section: "§4.3",
		Description: "energy to transmit 50 GB per CCA × MTU (shared sweep)",
		Run:         func(o Options) (Result, error) { return RunFig5(o) },
	})
	Register(Experiment{
		Name: "fig6", Aliases: []string{"6"}, Order: 60, Section: "§4.3",
		Description: "average sender power per CCA × MTU (shared sweep)",
		Run:         func(o Options) (Result, error) { return RunFig6(o) },
	})
	Register(Experiment{
		Name: "fig7", Aliases: []string{"7"}, Order: 70, Section: "§4.3",
		Description: "energy vs flow completion time scatter (shared sweep)",
		Run:         func(o Options) (Result, error) { return RunFig7(o) },
	})
	Register(Experiment{
		Name: "fig8", Aliases: []string{"8"}, Order: 80, Section: "§4.3",
		Description: "energy vs retransmissions scatter (shared sweep)",
		Run:         func(o Options) (Result, error) { return RunFig8(o) },
	})
}

// SweepMTUs are the paper's §4.4 MTU steps.
var SweepMTUs = []int{1500, 3000, 6000, 9000}

// SweepCell aggregates the repetitions of one (CCA, MTU) scenario.
type SweepCell struct {
	CCA string
	MTU int
	// Per-repetition raw measurements.
	EnergyJ []float64
	FCTSecs []float64
	PowerW  []float64
	Retx    []float64
}

// MeanEnergyJ returns the cell's mean energy.
func (c SweepCell) MeanEnergyJ() float64 { return stats.Mean(c.EnergyJ) }

// MeanFCT returns the cell's mean flow completion time.
func (c SweepCell) MeanFCT() float64 { return stats.Mean(c.FCTSecs) }

// MeanPowerW returns the cell's mean average power.
func (c SweepCell) MeanPowerW() float64 { return stats.Mean(c.PowerW) }

// MeanRetx returns the cell's mean retransmission count.
func (c SweepCell) MeanRetx() float64 { return stats.Mean(c.Retx) }

// SweepResult is the shared dataset behind Figures 5–8: every CCA × MTU
// cell with energy, completion time, power, and retransmissions.
type SweepResult struct {
	Cells []SweepCell
	// Bytes is the per-run transfer size actually used.
	Bytes uint64
	// ScaleToPaper converts measured energy to the paper's 50 GB scale
	// (steady-state energy is linear in bytes moved).
	ScaleToPaper float64
}

// Cell returns the cell for (cca, mtu), or nil.
func (r *SweepResult) Cell(ccaName string, mtu int) *SweepCell {
	for i := range r.Cells {
		if r.Cells[i].CCA == ccaName && r.Cells[i].MTU == mtu {
			return &r.Cells[i]
		}
	}
	return nil
}

// sweepEntry is one singleflight slot of the sweep cache: the first caller
// for a key runs the sweep inside the sync.Once; concurrent callers with the
// same key block on the Once and share the one computation.
type sweepEntry struct {
	once sync.Once
	res  *SweepResult
	err  error
}

var (
	sweepMu    sync.Mutex
	sweepCache = map[string]*sweepEntry{}
)

// sweepKey is the in-memory sweep cache key. It must contain every
// result-affecting Options field and nothing else: Workers only changes
// wall-clock time, Verbose only logging, CacheDir/NoCache only where
// results are persisted, and Shards nothing at all on the dumbbell (a
// single partition) — a sweep computed without a cache directory is
// byte-identical to one computed with it. TestSweepKeyAuditsOptionsFields
// enforces this classification for every current and future field.
func sweepKey(o Options) string {
	return fmt.Sprintf("%d/%v/%d", o.Reps, o.Scale, o.Seed)
}

// RunCCASweep runs (or returns the cached) 10-CCA × 4-MTU × Reps sweep:
// one flow per run transferring Scale×50 GB, measuring sender energy, FCT,
// average power, and retransmissions. Figures 5, 6, 7, and 8 are all views
// over this dataset, exactly as in the paper.
//
// Results are cached in-process per sweepKey; Workers does not enter the key
// because the result is byte-identical for every worker count. Concurrent
// callers with the same key share a single computation (the first caller's
// Workers wins); a failed computation is evicted so a later call can retry.
// With Options.CacheDir set, each (CCA, MTU, repetition) run is additionally
// memoized on disk, so a fresh process replays a warm sweep without
// simulating anything.
func RunCCASweep(o Options) (*SweepResult, error) {
	o, err := o.WithDefaults()
	if err != nil {
		return nil, err
	}
	key := sweepKey(o)
	sweepMu.Lock()
	e, ok := sweepCache[key]
	if !ok {
		e = &sweepEntry{}
		sweepCache[key] = e
	}
	sweepMu.Unlock()

	e.once.Do(func() { e.res, e.err = runCCASweep(o) })
	if e.err != nil {
		sweepMu.Lock()
		if sweepCache[key] == e {
			delete(sweepCache, key)
		}
		sweepMu.Unlock()
	}
	return e.res, e.err
}

// runCCASweep executes the sweep itself: every (CCA, MTU, repetition) task
// is submitted to one shared worker pool — no per-cell barriers — and the
// cells are reassembled in cca.PaperOrder() × SweepMTUs order afterwards.
// Per-repetition seeds depend only on (Seed, repetition index), exactly as
// the serial repeatRuns path derives them, so the assembled SweepResult is
// identical for any Workers value.
func runCCASweep(o Options) (*SweepResult, error) {
	bytes := uint64(float64(paperTransferBytes) * o.Scale)
	res := &SweepResult{Bytes: bytes, ScaleToPaper: float64(paperTransferBytes) / float64(bytes)}

	type cellSpec struct {
		cca string
		mtu int
	}
	var specs []cellSpec
	for _, name := range cca.PaperOrder() {
		for _, mtu := range SweepMTUs {
			specs = append(specs, cellSpec{name, mtu})
		}
	}

	root := sim.NewRNG(o.Seed)
	seeds := make([]uint64, o.Reps)
	for i := range seeds {
		seeds[i] = root.Split(uint64(i)).Uint64()
	}

	deadline := deadlineFor(bytes) * 4
	runs := make([][]testbed.RunResult, len(specs))
	for i := range runs {
		runs[i] = make([]testbed.RunResult, o.Reps)
	}
	store := o.CacheStore()
	err := testbed.ForEach(len(specs)*o.Reps, o.Workers, func(task int) error {
		s, rep := specs[task/o.Reps], task%o.Reps
		// Per-(cell, repetition) memoization: the key is the cell's
		// result-affecting inputs plus the repetition seed (which already
		// encodes Options.Seed and the repetition index), so raising Reps
		// against a warm cache computes only the new repetitions.
		ck := cache.NewKey("sweep", s.cca, s.mtu, bytes, seeds[rep])
		var cached testbed.RunResult
		if store.Get(ck, &cached) {
			runs[task/o.Reps][rep] = cached
			return nil
		}
		tb := testbed.New(testbed.Options{Seed: seeds[rep]})
		if _, err := tb.AddFlow(0, iperf.Spec{
			Bytes:  bytes,
			CCA:    s.cca,
			Config: tcp.Config{MTU: s.mtu},
		}); err != nil {
			return fmt.Errorf("%s/%d: %w", s.cca, s.mtu, err)
		}
		r, err := tb.Run(deadline)
		if err != nil {
			return fmt.Errorf("%s/%d repetition %d: %w", s.cca, s.mtu, rep, err)
		}
		_ = store.Put(ck, r)
		runs[task/o.Reps][rep] = r
		return nil
	})
	if err != nil {
		return nil, err
	}

	for ci, s := range specs {
		cell := cellFromRuns(s.cca, s.mtu, runs[ci])
		o.Logf("sweep: %-9s mtu %-5d energy %s J  fct %s s  retx %s",
			s.cca, s.mtu, stats.Summary(cell.EnergyJ), stats.Summary(cell.FCTSecs), stats.Summary(cell.Retx))
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// --- Figure 5: total energy per CCA × MTU ---

// Fig5Result is Figure 5 plus the §4.3/§4.4 headline ratios.
type Fig5Result struct {
	Sweep *SweepResult
	// BaselinePremiumPct is, per MTU, how much more energy the baseline
	// uses than the mean of the real CCAs excluding BBR2 (paper:
	// 8.2–14.2 %... phrased as CCAs consuming that much less).
	BaselinePremiumPct map[int]float64
	// BBR2OverBBRPct is the energy gap between the BBR versions at MTU
	// 1500 (paper: ~40 %).
	BBR2OverBBRPct float64
	// MTUSavingsPct is, per CCA, the energy saving going from MTU 1500
	// to 9000 (paper: 13.4–31.9 %).
	MTUSavingsPct map[string]float64
}

// RunFig5 derives Figure 5 from the sweep.
func RunFig5(o Options) (Fig5Result, error) {
	sw, err := RunCCASweep(o)
	if err != nil {
		return Fig5Result{}, err
	}
	res := Fig5Result{Sweep: sw, BaselinePremiumPct: map[int]float64{}, MTUSavingsPct: map[string]float64{}}
	for _, mtu := range SweepMTUs {
		var others []float64
		for _, name := range cca.PaperOrder() {
			if name == "baseline" || name == "bbr2" {
				continue
			}
			others = append(others, sw.Cell(name, mtu).MeanEnergyJ())
		}
		base := sw.Cell("baseline", mtu).MeanEnergyJ()
		res.BaselinePremiumPct[mtu] = (base - stats.Mean(others)) / base * 100
	}
	b1 := sw.Cell("bbr", 1500).MeanEnergyJ()
	b2 := sw.Cell("bbr2", 1500).MeanEnergyJ()
	res.BBR2OverBBRPct = (b2 - b1) / b1 * 100
	for _, name := range cca.PaperOrder() {
		e1500 := sw.Cell(name, 1500).MeanEnergyJ()
		e9000 := sw.Cell(name, 9000).MeanEnergyJ()
		res.MTUSavingsPct[name] = (e1500 - e9000) / e1500 * 100
	}
	return res, nil
}

// Table renders Figure 5 (energy in kJ, extrapolated to the paper's 50 GB).
func (r Fig5Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — energy to transmit 50 GB (kJ, extrapolated ×%.0f from %.1f GB runs)\n",
		r.Sweep.ScaleToPaper, float64(r.Sweep.Bytes)/1e9)
	fmt.Fprintf(&b, "%-10s", "cca")
	for _, mtu := range SweepMTUs {
		fmt.Fprintf(&b, " %11d", mtu)
	}
	fmt.Fprintf(&b, " %14s\n", "1500→9000")
	for _, name := range cca.PaperOrder() {
		fmt.Fprintf(&b, "%-10s", name)
		for _, mtu := range SweepMTUs {
			c := r.Sweep.Cell(name, mtu)
			fmt.Fprintf(&b, " %11.3f", c.MeanEnergyJ()*r.Sweep.ScaleToPaper/1000)
		}
		fmt.Fprintf(&b, " %13.1f%%\n", r.MTUSavingsPct[name])
	}
	var mtus []int
	for m := range r.BaselinePremiumPct {
		mtus = append(mtus, m)
	}
	sort.Ints(mtus)
	b.WriteString("baseline premium over real CCAs (paper: CCAs use 8.2–14.2% less):")
	for _, m := range mtus {
		fmt.Fprintf(&b, "  mtu%d %.1f%%", m, r.BaselinePremiumPct[m])
	}
	fmt.Fprintf(&b, "\nbbr2 over bbr at MTU 1500: %.1f%% (paper: ~40%%)\n", r.BBR2OverBBRPct)
	return b.String()
}

// --- Figure 6: average power per CCA × MTU ---

// Fig6Result is Figure 6 plus the §4.3 energy/power correlation.
type Fig6Result struct {
	Sweep *SweepResult
	// EnergyPowerCorr is corr(total energy, average power) across all
	// CCA cells at MTU 1500 (paper: ≈ −0.8).
	EnergyPowerCorr float64
	// SpreadPct is the max/min power gap across CCAs at MTU 1500
	// (paper: ~14 %).
	SpreadPct float64
}

// RunFig6 derives Figure 6 from the sweep.
func RunFig6(o Options) (Fig6Result, error) {
	sw, err := RunCCASweep(o)
	if err != nil {
		return Fig6Result{}, err
	}
	res := Fig6Result{Sweep: sw}
	var es, ps []float64
	for _, name := range cca.PaperOrder() {
		c := sw.Cell(name, 1500)
		es = append(es, c.MeanEnergyJ())
		ps = append(ps, c.MeanPowerW())
	}
	res.EnergyPowerCorr = stats.Pearson(es, ps)
	res.SpreadPct = (stats.Max(ps) - stats.Min(ps)) / stats.Min(ps) * 100
	return res, nil
}

// Table renders Figure 6.
func (r Fig6Result) Table() string {
	var b strings.Builder
	b.WriteString("Figure 6 — average sender power transmitting 50 GB (W)\n")
	fmt.Fprintf(&b, "%-10s", "cca")
	for _, mtu := range SweepMTUs {
		fmt.Fprintf(&b, " %9d", mtu)
	}
	b.WriteString("\n")
	for _, name := range cca.PaperOrder() {
		fmt.Fprintf(&b, "%-10s", name)
		for _, mtu := range SweepMTUs {
			fmt.Fprintf(&b, " %9.2f", r.Sweep.Cell(name, mtu).MeanPowerW())
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "corr(energy, power) across CCAs at MTU 1500: %.2f (paper: ~-0.8)\n", r.EnergyPowerCorr)
	fmt.Fprintf(&b, "power spread across CCAs at MTU 1500: %.1f%% (paper: ~14%%)\n", r.SpreadPct)
	return b.String()
}

// --- Figure 7: energy vs FCT scatter ---

// Fig7Result is the energy-vs-completion-time scatter.
type Fig7Result struct {
	Sweep *SweepResult
	// Corr is corr(FCT, energy) across every repetition of every cell
	// (paper: strong positive; visible as the diagonal of Fig 7).
	Corr float64
	// ClusterFCT/ClusterEnergy give the centroid of the MTU-1500 cluster
	// and of the large-MTU cluster (paper: two clusters in the inset).
	Cluster1500FCT    float64
	Cluster1500Energy float64
	ClusterBigFCT     float64
	ClusterBigEnergy  float64
}

// RunFig7 derives Figure 7 from the sweep.
func RunFig7(o Options) (Fig7Result, error) {
	sw, err := RunCCASweep(o)
	if err != nil {
		return Fig7Result{}, err
	}
	res := Fig7Result{Sweep: sw}
	var fcts, es []float64
	var f15, e15, fbig, ebig []float64
	for _, c := range sw.Cells {
		for i := range c.EnergyJ {
			fcts = append(fcts, c.FCTSecs[i])
			es = append(es, c.EnergyJ[i])
			if c.MTU == 1500 {
				f15 = append(f15, c.FCTSecs[i])
				e15 = append(e15, c.EnergyJ[i])
			} else {
				fbig = append(fbig, c.FCTSecs[i])
				ebig = append(ebig, c.EnergyJ[i])
			}
		}
	}
	res.Corr = stats.Pearson(fcts, es)
	res.Cluster1500FCT = stats.Mean(f15)
	res.Cluster1500Energy = stats.Mean(e15)
	res.ClusterBigFCT = stats.Mean(fbig)
	res.ClusterBigEnergy = stats.Mean(ebig)
	return res, nil
}

// Table renders the Figure 7 scatter points (extrapolated to 50 GB).
func (r Fig7Result) Table() string {
	var b strings.Builder
	b.WriteString("Figure 7 — energy vs flow completion time (per run, extrapolated to 50 GB)\n")
	fmt.Fprintf(&b, "%-10s %6s %12s %12s\n", "cca", "mtu", "fct (s)", "energy (kJ)")
	for _, c := range r.Sweep.Cells {
		for i := range c.EnergyJ {
			fmt.Fprintf(&b, "%-10s %6d %12.2f %12.3f\n", c.CCA, c.MTU,
				c.FCTSecs[i]*r.Sweep.ScaleToPaper, c.EnergyJ[i]*r.Sweep.ScaleToPaper/1000)
		}
	}
	fmt.Fprintf(&b, "corr(fct, energy) = %.2f (paper: strongly positive)\n", r.Corr)
	fmt.Fprintf(&b, "clusters: mtu1500 (%.1f s, %.2f kJ scaled) vs large MTU (%.1f s, %.2f kJ scaled)\n",
		r.Cluster1500FCT*r.Sweep.ScaleToPaper, r.Cluster1500Energy*r.Sweep.ScaleToPaper/1000,
		r.ClusterBigFCT*r.Sweep.ScaleToPaper, r.ClusterBigEnergy*r.Sweep.ScaleToPaper/1000)
	return b.String()
}

// --- Figure 8: energy vs retransmissions scatter ---

// Fig8Result is the energy-vs-retransmissions scatter.
type Fig8Result struct {
	Sweep *SweepResult
	// CorrExclBBR2 is corr(retransmissions, energy) excluding the highly
	// variable BBR2 cells, as the paper computes it (paper: 0.47). In
	// this reproduction the statistic is diluted by the MTU axis: the
	// per-packet CPU cost drives MTU-1500 energy up while, unlike on the
	// paper's hardware, the adaptive CCAs lose little at 1500 (see
	// EXPERIMENTS.md).
	CorrExclBBR2 float64
	// WithinMTUCorr is the mean Pearson correlation computed within each
	// MTU (excluding BBR2) — the loss→energy relationship with the MTU
	// axis controlled for.
	WithinMTUCorr float64
	// BaselineHasMostRetx reports whether the constant-cwnd baseline has
	// the highest mean retransmission count aggregated across MTUs. (At
	// MTU 1500 the CPU-limited sender cannot congest the bottleneck, so
	// per-MTU dominance is not guaranteed there — see EXPERIMENTS.md.)
	BaselineHasMostRetx bool
}

// RunFig8 derives Figure 8 from the sweep.
func RunFig8(o Options) (Fig8Result, error) {
	sw, err := RunCCASweep(o)
	if err != nil {
		return Fig8Result{}, err
	}
	res := Fig8Result{Sweep: sw, BaselineHasMostRetx: true}
	var rx, es []float64
	for _, c := range sw.Cells {
		if c.CCA == "bbr2" {
			continue
		}
		for i := range c.EnergyJ {
			rx = append(rx, c.Retx[i])
			es = append(es, c.EnergyJ[i])
		}
	}
	res.CorrExclBBR2 = stats.Pearson(rx, es)
	var perMTU []float64
	for _, mtu := range SweepMTUs {
		var mrx, mes []float64
		for _, c := range sw.Cells {
			if c.CCA == "bbr2" || c.MTU != mtu {
				continue
			}
			for i := range c.EnergyJ {
				mrx = append(mrx, c.Retx[i])
				mes = append(mes, c.EnergyJ[i])
			}
		}
		if r := stats.Pearson(mrx, mes); !math.IsNaN(r) {
			perMTU = append(perMTU, r)
		}
	}
	res.WithinMTUCorr = stats.Mean(perMTU)
	aggRetx := func(name string) float64 {
		total := 0.0
		for _, mtu := range SweepMTUs {
			total += sw.Cell(name, mtu).MeanRetx()
		}
		return total
	}
	base := aggRetx("baseline")
	for _, name := range cca.PaperOrder() {
		if name != "baseline" && aggRetx(name) >= base {
			res.BaselineHasMostRetx = false
		}
	}
	return res, nil
}

// Table renders Figure 8.
func (r Fig8Result) Table() string {
	var b strings.Builder
	b.WriteString("Figure 8 — energy vs retransmissions (mean per cell)\n")
	fmt.Fprintf(&b, "%-10s %6s %14s %12s\n", "cca", "mtu", "retx (pkts)", "energy (kJ)")
	for _, c := range r.Sweep.Cells {
		fmt.Fprintf(&b, "%-10s %6d %14.0f %12.3f\n", c.CCA, c.MTU, c.MeanRetx(), c.MeanEnergyJ()*r.Sweep.ScaleToPaper/1000)
	}
	fmt.Fprintf(&b, "corr(retx, energy) excluding bbr2 = %.2f (paper: 0.47); within-MTU = %.2f\n", r.CorrExclBBR2, r.WithinMTUCorr)
	fmt.Fprintf(&b, "baseline has the most retransmissions aggregated across MTUs: %v (paper: yes)\n", r.BaselineHasMostRetx)
	return b.String()
}
