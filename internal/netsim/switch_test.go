package netsim

import (
	"fmt"
	"strings"
	"testing"

	"greenenvy/internal/sim"
)

func TestSwitchRangeRoutesNarrowestWins(t *testing.T) {
	e := sim.NewEngine()
	sw := NewSwitch(e, "sw", 0)
	var via []string
	port := func(name string) Handler {
		return HandlerFunc(func(p *Packet) { via = append(via, name) })
	}
	// Installation order deliberately widest-first: precedence must come
	// from range width, not insertion order.
	sw.ConnectRange(0, 99, port("wide"))
	sw.ConnectRange(10, 19, port("narrow"))
	sw.Connect(12, port("exact"))

	for _, dst := range []NodeID{50, 15, 12} {
		sw.HandlePacket(&Packet{Dst: dst, WireSize: 100})
	}
	e.Run()
	if want := []string{"wide", "narrow", "exact"}; fmt.Sprint(via) != fmt.Sprint(want) {
		t.Fatalf("routes taken = %v, want %v", via, want)
	}
}

func TestSwitchConnectRangeValidation(t *testing.T) {
	e := sim.NewEngine()
	sw := NewSwitch(e, "sw", 0)
	for name, f := range map[string]func(){
		"empty range": func() { sw.ConnectRange(5, 4, HandlerFunc(func(*Packet) {})) },
		"no ports":    func() { sw.ConnectRange(0, 9) },
		"zero TTL":    func() { sw.SetTTL(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestECMPSelectionSeedStable pins the property the same-seed-same-bytes
// contract needs from ECMP: uplink choice is a pure function of
// (salt, flow, src, dst), so two switches configured alike agree packet by
// packet, and repeated lookups never flap.
func TestECMPSelectionSeedStable(t *testing.T) {
	e := sim.NewEngine()
	build := func(salt uint64) (*Switch, *[]int) {
		sw := NewSwitch(e, "sw", 0)
		sw.SetECMPSalt(salt)
		var picks []int
		ports := make([]Handler, 4)
		for i := range ports {
			i := i
			ports[i] = HandlerFunc(func(p *Packet) { picks = append(picks, i) })
		}
		sw.ConnectRange(0, 1023, ports...)
		return sw, &picks
	}
	a, pa := build(42)
	b, pb := build(42)
	c, pc := build(43)
	for flow := FlowID(1); flow <= 64; flow++ {
		p := Packet{Flow: flow, Src: NodeID(flow % 7), Dst: NodeID(100 + flow), WireSize: 100}
		for _, sw := range []*Switch{a, b, c} {
			cp := p
			sw.HandlePacket(&cp)
			cp2 := p
			sw.HandlePacket(&cp2) // same tuple again: must not flap
		}
	}
	e.Run()
	if fmt.Sprint(*pa) != fmt.Sprint(*pb) {
		t.Fatal("same salt, same tuples: switches disagreed on uplink choice")
	}
	for i := 0; i+1 < len(*pa); i += 2 {
		if (*pa)[i] != (*pa)[i+1] {
			t.Fatalf("tuple %d flapped between ports %d and %d", i/2, (*pa)[i], (*pa)[i+1])
		}
	}
	if fmt.Sprint(*pa) == fmt.Sprint(*pc) {
		t.Fatal("different salts produced identical spreading; salt is not mixed in")
	}
}

// TestECMPSpreadIsEven hashes a large flow population across 4 uplinks and
// requires every uplink to carry within 30% of the fair share — the even
// spreading a datacenter fabric relies on.
func TestECMPSpreadIsEven(t *testing.T) {
	const flows, ports = 4096, 4
	counts := make([]int, ports)
	for f := 0; f < flows; f++ {
		counts[ecmpIndex(7, FlowID(f), NodeID(f%64), NodeID(1000+f%128), ports)]++
	}
	fair := flows / ports
	for i, c := range counts {
		if c < fair*7/10 || c > fair*13/10 {
			t.Fatalf("port %d carries %d of %d flows (fair share %d); spread = %v", i, c, flows, fair, counts)
		}
	}
}

// TestRoutingLoopPanicHasContext wires a switch to forward a range back to
// itself and checks the TTL panic names the switch and the flow tuple — the
// debuggable diagnostic the satellite bugfix demands.
func TestRoutingLoopPanicHasContext(t *testing.T) {
	e := sim.NewEngine()
	sw := NewSwitch(e, "loopy", 0)
	sw.SetTTL(3)
	sw.ConnectRange(0, 9, sw) // deliberate loop
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("routing loop did not panic")
		}
		msg := fmt.Sprint(r)
		for _, want := range []string{`"loopy"`, "flow=7", "src=2", "dst=5", "TTL 3"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("panic %q missing %q", msg, want)
			}
		}
	}()
	sw.HandlePacket(&Packet{Flow: 7, Src: 2, Dst: 5, WireSize: 100})
}

// TestDRRReleaseReclaimsFlowState covers the per-flow leak fix: a churn of
// 1000 sequential flows through one DRR queue must hold the flow table at
// its steady-state size, draining backlogged flows before reclaiming them.
func TestDRRReleaseReclaimsFlowState(t *testing.T) {
	q := NewDRR(0, 0)
	maxTable := 0
	for f := FlowID(1); f <= 1000; f++ {
		q.SetWeight(f, 0.5)
		q.Enqueue(&Packet{Flow: f, WireSize: 1500})
		q.Enqueue(&Packet{Flow: f, WireSize: 1500})
		if q.Dequeue() == nil {
			t.Fatalf("flow %d: no packet scheduled", f)
		}
		// Release with one packet still queued: the flow must survive
		// until its backlog drains, then vanish.
		q.Release(f)
		if q.FlowTableSize() > maxTable {
			maxTable = q.FlowTableSize()
		}
		if p := q.Dequeue(); p == nil || p.Flow != f {
			t.Fatalf("flow %d: backlog lost after Release", f)
		}
	}
	if q.FlowTableSize() != 0 {
		t.Fatalf("flow table holds %d flows after churn, want 0", q.FlowTableSize())
	}
	if maxTable > 1 {
		t.Fatalf("flow table peaked at %d during sequential churn, want 1", maxTable)
	}
	// Idle release: no backlog, reclaimed immediately.
	q.SetWeight(2000, 1)
	if q.FlowTableSize() != 1 {
		t.Fatalf("table = %d after SetWeight", q.FlowTableSize())
	}
	q.Release(2000)
	q.Release(2000) // releasing an unknown flow is a no-op
	if q.FlowTableSize() != 0 {
		t.Fatalf("idle flow not reclaimed: table = %d", q.FlowTableSize())
	}
}
