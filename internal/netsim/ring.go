package netsim

// pktRing is a growable FIFO ring buffer of packets. Queue disciplines use
// it instead of shift-by-reslice ([0] + [1:]) slices, which leak the
// consumed prefix until the queue drains and re-allocate the backing array
// every time the queue refills. The ring reuses one power-of-two backing
// array for the life of the queue; steady-state enqueue/dequeue is
// allocation-free.
type pktRing struct {
	buf  []*Packet // power-of-two length, so indexing is a mask
	head int
	n    int
}

// Len reports the number of buffered packets.
func (r *pktRing) Len() int { return r.n }

// Push appends p to the tail.
func (r *pktRing) Push(p *Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = p
	r.n++
}

// Pop removes and returns the head packet, or nil if the ring is empty.
func (r *pktRing) Pop() *Packet {
	if r.n == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil // drop the reference for the GC
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return p
}

// Peek returns the head packet without removing it, or nil if empty.
func (r *pktRing) Peek() *Packet {
	if r.n == 0 {
		return nil
	}
	return r.buf[r.head]
}

func (r *pktRing) grow() {
	newCap := 2 * len(r.buf)
	if newCap == 0 {
		newCap = 16
	}
	next := make([]*Packet, newCap) //greenvet:allow hotpathalloc ring doubling is amortized to the peak queue depth
	for i := 0; i < r.n; i++ {
		next[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = next
	r.head = 0
}
