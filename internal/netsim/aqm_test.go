package netsim

import (
	"testing"

	"greenenvy/internal/sim"
)

// aqmHarness drives a queue through a link so the AQM sees a real clock:
// offered load above the line rate builds a standing queue, which is what
// the control laws exist to dissolve.
type aqmHarness struct {
	e         *sim.Engine
	l         *Link
	delivered int
	marked    int
}

func newAQMHarness(q Queue) *aqmHarness {
	h := &aqmHarness{e: sim.NewEngine()}
	h.l = NewLink(h.e, "aqm", 1_000_000_000, 5*sim.Microsecond, q, HandlerFunc(func(p *Packet) {
		h.delivered++
		if p.Flags.Has(FlagCE) {
			h.marked++
		}
	}))
	return h
}

// offer injects n packets at fixed spacing (relative to the current clock),
// overdriving the 1 Gb/s line when spacing is below the 12 µs serialization
// time of a 1500 B frame, then runs the engine until the queue drains.
func (h *aqmHarness) offer(n int, spacing sim.Duration, flags Flags, flow FlowID) {
	base := h.e.Now()
	for i := 0; i < n; i++ {
		p := &Packet{Flow: flow, Dst: 1, WireSize: 1500, DataLen: 1460, Flags: flags}
		h.e.At(base+sim.Time(i)*spacing, func() { h.l.HandlePacket(p) })
	}
	h.e.Run()
}

func TestCoDelDropsUnderStandingQueue(t *testing.T) {
	q := NewCoDel(1<<22, 0, 0)
	h := newAQMHarness(q)
	// 2× overload for 2000 packets: the sojourn time blows far past the
	// 50 µs target and stays there, so the control law must engage.
	h.offer(2000, 6*sim.Microsecond, 0, 1)
	st := q.Stats()
	if st.DroppedPackets == 0 {
		t.Fatalf("CoDel dropped nothing under sustained 2x overload: %+v", st)
	}
	if h.delivered == 0 {
		t.Fatal("CoDel delivered nothing")
	}
	// The buffer cap is never hit in this test, so every drop is a law
	// drop after admission: admitted = delivered + dropped.
	if int(st.EnqueuedPackets) != h.delivered+int(st.DroppedPackets) {
		t.Fatalf("conservation: enqueued %d, delivered %d, dropped %d",
			st.EnqueuedPackets, h.delivered, st.DroppedPackets)
	}
}

func TestCoDelMarksECTInsteadOfDropping(t *testing.T) {
	q := NewCoDel(1<<22, 0, 0)
	h := newAQMHarness(q)
	h.offer(2000, 6*sim.Microsecond, FlagECT, 1)
	st := q.Stats()
	if st.MarkedCE == 0 {
		t.Fatalf("CoDel marked no ECT packets under overload: %+v", st)
	}
	if st.DroppedPackets != 0 {
		t.Fatalf("CoDel dropped %d ECT packets below the buffer cap, want 0 (mark instead)", st.DroppedPackets)
	}
	if h.marked != int(st.MarkedCE) {
		t.Fatalf("delivered CE %d != stats MarkedCE %d", h.marked, st.MarkedCE)
	}
}

func TestCoDelIdleBelowTargetDropsNothing(t *testing.T) {
	q := NewCoDel(1<<22, 0, 0)
	h := newAQMHarness(q)
	// At half the line rate the queue never stands: no drops, no marks.
	h.offer(500, 24*sim.Microsecond, FlagECT, 1)
	st := q.Stats()
	if st.DroppedPackets != 0 || st.MarkedCE != 0 {
		t.Fatalf("CoDel acted on an uncongested queue: %+v", st)
	}
	if h.delivered != 500 {
		t.Fatalf("delivered %d packets, want 500", h.delivered)
	}
}

func TestPIEDropsUnderStandingQueue(t *testing.T) {
	q := NewPIE(1<<22, 1_000_000_000, 0, 0, 7)
	h := newAQMHarness(q)
	h.offer(4000, 6*sim.Microsecond, 0, 1)
	st := q.Stats()
	// The 4 MB cap exceeds the worst-case 3 MB backlog of this offered
	// load, so every drop is a controller drop, not a tail drop. The final
	// DropProb is not asserted: the controller legitimately rings back to
	// zero once the queue drains.
	if st.DroppedPackets == 0 {
		t.Fatalf("PIE dropped nothing under sustained 2x overload: %+v", st)
	}
	if h.delivered == 0 {
		t.Fatal("PIE delivered nothing")
	}
}

func TestPIEDeterministicAcrossRuns(t *testing.T) {
	run := func() (uint64, int) {
		q := NewPIE(1<<22, 1_000_000_000, 0, 0, 7)
		h := newAQMHarness(q)
		h.offer(4000, 6*sim.Microsecond, 0, 1)
		return q.Stats().DroppedPackets, h.delivered
	}
	d1, n1 := run()
	d2, n2 := run()
	if d1 != d2 || n1 != n2 {
		t.Fatalf("PIE not deterministic: run1 (%d dropped, %d delivered) vs run2 (%d, %d)", d1, n1, d2, n2)
	}
}

func TestPIEIdleDropsNothing(t *testing.T) {
	q := NewPIE(1<<22, 1_000_000_000, 0, 0, 7)
	h := newAQMHarness(q)
	h.offer(500, 24*sim.Microsecond, 0, 1)
	if st := q.Stats(); st.DroppedPackets != 0 {
		t.Fatalf("PIE dropped on an uncongested queue: %+v", st)
	}
}

func TestFQCoDelIsolatesSparseFlowFromBulk(t *testing.T) {
	q := NewFQCoDel(1<<22, 0, 0, 0)
	e := sim.NewEngine()
	var bulkLast, sparseLast sim.Time
	sparseN := 0
	l := NewLink(e, "fq", 1_000_000_000, 5*sim.Microsecond, q, HandlerFunc(func(p *Packet) {
		if p.Flow == 1 {
			bulkLast = e.Now()
		} else {
			sparseLast = e.Now()
			sparseN++
		}
	}))
	// Flow 1 dumps a 200-packet burst at t=0; flow 2 sends a single small
	// packet at t=100µs, arriving behind a deep standing queue.
	for i := 0; i < 200; i++ {
		p := &Packet{Flow: 1, Dst: 1, WireSize: 1500, DataLen: 1460}
		e.At(0, func() { l.HandlePacket(p) })
	}
	sp := &Packet{Flow: 2, Dst: 1, WireSize: 100, DataLen: 60}
	e.At(100*sim.Microsecond, func() { l.HandlePacket(sp) })
	e.Run()
	if sparseN != 1 {
		t.Fatalf("sparse packet not delivered (delivered %d)", sparseN)
	}
	// The new-flow boost must put the sparse packet ahead of the remaining
	// bulk backlog: it left long before the bulk flow finished.
	if sparseLast >= bulkLast {
		t.Fatalf("sparse flow (done %v) did not bypass bulk backlog (done %v)", sparseLast, bulkLast)
	}
	// ~1.7 ms of bulk backlog stands in front at arrival; flow queuing
	// should get the sparse packet out within a few packet times.
	if sparseLast > 200*sim.Microsecond {
		t.Fatalf("sparse packet delayed to %v behind bulk queue", sparseLast)
	}
}

func TestFQCoDelReleasesDrainedFlows(t *testing.T) {
	q := NewFQCoDel(1<<22, 0, 0, 0)
	h := newAQMHarness(q)
	for flow := FlowID(1); flow <= 50; flow++ {
		h.offer(4, 13*sim.Microsecond, 0, flow)
	}
	if got := q.FlowTableSize(); got != 0 {
		t.Fatalf("flow table holds %d entries after all flows drained, want 0", got)
	}
}

func TestFQCoDelSharesCapacityFairly(t *testing.T) {
	q := NewFQCoDel(1<<22, 0, 0, 0)
	e := sim.NewEngine()
	got := map[FlowID]int{}
	l := NewLink(e, "fq", 1_000_000_000, 5*sim.Microsecond, q, HandlerFunc(func(p *Packet) {
		got[p.Flow]++
	}))
	// Two flows offer identical 2x-overload streams; DRR must serve them
	// near 50/50 even though flow 1 enqueues first at every instant.
	for i := 0; i < 1000; i++ {
		p1 := &Packet{Flow: 1, Dst: 1, WireSize: 1500, DataLen: 1460}
		p2 := &Packet{Flow: 2, Dst: 1, WireSize: 1500, DataLen: 1460}
		at := sim.Time(i) * 12 * sim.Microsecond
		e.At(at, func() { l.HandlePacket(p1) })
		e.At(at, func() { l.HandlePacket(p2) })
	}
	e.Run()
	if got[1] == 0 || got[2] == 0 {
		t.Fatalf("a flow starved: %v", got)
	}
	ratio := float64(got[1]) / float64(got[2])
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("unfair split under identical load: %v (ratio %.2f)", got, ratio)
	}
}

// Alloc-free pins, following the DropTail/DRR pins above: steady-state
// enqueue+dequeue on each new AQM must not touch the heap. The queues are
// driven directly (engine bound by hand) with a standing backlog.

func pinAQMSteadyState(t *testing.T, name string, q Queue) {
	t.Helper()
	if b, ok := q.(EngineBinder); ok {
		b.BindEngine(sim.NewEngine())
	}
	p := &Packet{Flow: 1, WireSize: 1500}
	for i := 0; i < 128; i++ {
		q.Enqueue(p)
	}
	for i := 0; i < 64; i++ {
		q.Dequeue()
	}
	if got := testing.AllocsPerRun(200, func() {
		q.Enqueue(p)
		q.Dequeue()
	}); got != 0 {
		t.Fatalf("%s steady state allocates %.1f objects/op, want 0", name, got)
	}
}

func TestCoDelSteadyStateAllocFree(t *testing.T) {
	pinAQMSteadyState(t, "CoDel", NewCoDel(1<<30, 0, 0))
}

func TestPIESteadyStateAllocFree(t *testing.T) {
	pinAQMSteadyState(t, "PIE", NewPIE(1<<30, 10_000_000_000, 0, 0, 7))
}

func TestFQCoDelSteadyStateAllocFree(t *testing.T) {
	pinAQMSteadyState(t, "FQ-CoDel", NewFQCoDel(1<<30, 0, 0, 0))
}
