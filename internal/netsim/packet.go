// Package netsim is the packet-level network substrate for the greenenvy
// testbed. It models the lab described in §3 of the paper: hosts with
// (optionally bonded) NICs, links with finite rate and propagation delay,
// and an output-queued switch whose bottleneck port supports drop-tail FIFO,
// DCTCP-style ECN marking, weighted fair queueing (for the paper's
// controlled bandwidth allocations), and strict priority (for the
// "full speed, then idle" schedule).
//
// netsim deliberately knows nothing about congestion control; it delivers
// packets and that is all. Transport behaviour lives in internal/tcp and
// internal/cca.
package netsim

import (
	"fmt"

	"greenenvy/internal/sim"
)

// FlowID identifies a transport flow end to end. IDs are assigned by the
// testbed when flows are created and are dense small integers, which lets
// schedulers index per-flow state with slices.
type FlowID int

// NodeID identifies a host or switch in the topology.
type NodeID int

// Flags is a bitset of TCP/IP header flags relevant to the simulation.
type Flags uint16

// Header flag bits. ECT marks an ECN-capable transport (set by DCTCP
// senders); CE is the congestion-experienced mark applied by queues; ECE is
// the receiver's echo of CE back to the sender.
const (
	FlagSYN Flags = 1 << iota
	FlagACK
	FlagFIN
	FlagECT // ECN-capable transport (IP header)
	FlagCE  // congestion experienced (set by the network)
	FlagECE // echo of CE from receiver to sender (TCP header)
	// FlagINT requests in-band network telemetry: each link appends an
	// INTHop as the packet is transmitted (the programmable-switch
	// feature HPCC relies on).
	FlagINT
)

// INTHop is one hop's in-band telemetry record, stamped by a Link when a
// FlagINT packet is serialized: the per-hop state HPCC's sender uses to
// compute link utilization (Li et al., SIGCOMM 2019).
type INTHop struct {
	// QueueBytes is the hop's queue occupancy when the packet left it.
	QueueBytes int
	// TxBytes is the hop's cumulative transmitted byte counter.
	TxBytes uint64
	// At is the local timestamp of transmission.
	At sim.Time
	// RateBps is the hop's line rate.
	RateBps int64
}

// Has reports whether all bits in mask are set.
func (f Flags) Has(mask Flags) bool { return f&mask == mask }

// Packet is a simulated segment. Fields cover what the transport and the
// network need; there is no payload, only a wire size.
type Packet struct {
	Flow FlowID
	Src  NodeID
	Dst  NodeID

	// Seq is the first data byte carried; with DataLen 0 it is the
	// sender's current sequence (pure ACK).
	Seq uint64
	// Ack is the cumulative acknowledgment (valid when FlagACK set).
	Ack uint64
	// DataLen is the number of payload bytes carried.
	DataLen int
	// WireSize is the on-the-wire size in bytes including all headers;
	// this is what consumes link capacity and queue space.
	WireSize int

	Flags Flags

	// SACK carries up to four selective-acknowledgment blocks on ACKs.
	SACK []SACKBlock

	// INT carries per-hop telemetry (data packets accumulate it when
	// FlagINT is set; receivers echo it back on ACKs).
	INT []INTHop

	// SentAt is stamped by the sending transport when the packet enters
	// the NIC, and echoed back on ACKs for RTT measurement.
	SentAt sim.Time
	// EchoTS is the timestamp echo on ACK packets (RFC 7323 style).
	EchoTS sim.Time

	// Retransmit marks a retransmitted data segment (used by accounting).
	Retransmit bool

	// DeliveredAtSend and DeliveredTimeAtSend snapshot the sender's
	// delivery-rate state when the packet was sent (used by BBR's
	// delivery rate estimator, RFC-draft "delivery rate estimation").
	DeliveredAtSend     uint64
	DeliveredTimeAtSend sim.Time
	// AppLimitedAtSend marks samples taken while the sender had no data
	// to send, which BBR must not use to lower its bandwidth estimate.
	AppLimitedAtSend bool

	// hops counts forwarding steps as a routing-loop guard.
	hops int
}

// SACKBlock is a half-open byte range [Start, End) acknowledged out of
// order.
type SACKBlock struct {
	Start, End uint64
}

// String renders a compact human-readable description for traces and tests.
func (p *Packet) String() string {
	kind := "DATA"
	if p.Flags.Has(FlagACK) && p.DataLen == 0 {
		kind = "ACK"
	}
	return fmt.Sprintf("%s flow=%d seq=%d ack=%d len=%d wire=%d", kind, p.Flow, p.Seq, p.Ack, p.DataLen, p.WireSize)
}

// Handler consumes packets. Hosts, switches, and transport endpoints all
// implement it.
type Handler interface {
	HandlePacket(p *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(p *Packet)

// HandlePacket implements Handler.
func (f HandlerFunc) HandlePacket(p *Packet) { f(p) }
