package netsim

// Queue is the buffering-and-scheduling discipline of an output port. A
// transmitter calls Enqueue when a packet arrives for the port and Dequeue
// when the line becomes free; the queue decides admission (drop policy),
// marking (ECN), and service order (FIFO / weighted fair / priority).
type Queue interface {
	// Enqueue offers a packet. It returns false if the packet was
	// dropped; the caller must not retain dropped packets.
	Enqueue(p *Packet) bool
	// Dequeue removes and returns the next packet to transmit, or nil if
	// the queue is empty.
	Dequeue() *Packet
	// Len reports the number of queued packets.
	Len() int
	// Bytes reports the total wire bytes queued.
	Bytes() int
	// Stats returns cumulative counters since creation.
	Stats() QueueStats
}

// QueueStats are cumulative counters exposed by every queue discipline.
type QueueStats struct {
	EnqueuedPackets uint64
	DroppedPackets  uint64
	DroppedBytes    uint64
	MarkedCE        uint64 // packets marked congestion-experienced
	MaxBytes        int    // high-water mark of queued bytes
}

// DropTail is a classic FIFO queue with a byte-capacity limit and optional
// DCTCP-style ECN marking: packets that arrive to find more than MarkBytes
// already queued are marked CE if they are ECN-capable. This mirrors the
// instantaneous-queue marking a Tofino would be configured with for DCTCP.
type DropTail struct {
	// CapBytes is the buffer size; packets arriving when the queue holds
	// CapBytes or more are dropped. Zero means a practically unbounded
	// buffer (useful for access links that should never drop).
	CapBytes int
	// MarkBytes, if positive, is the instantaneous-queue ECN marking
	// threshold (the DCTCP "K" parameter, in bytes).
	MarkBytes int

	pkts  pktRing
	bytes int
	stats QueueStats
}

// NewDropTail returns a FIFO drop-tail queue with the given byte capacity
// (0 = unbounded) and ECN mark threshold (0 = no marking).
func NewDropTail(capBytes, markBytes int) *DropTail {
	return &DropTail{CapBytes: capBytes, MarkBytes: markBytes}
}

// Enqueue implements Queue.
//
//greenvet:hotpath
func (q *DropTail) Enqueue(p *Packet) bool {
	if q.CapBytes > 0 && q.bytes+p.WireSize > q.CapBytes {
		q.stats.DroppedPackets++
		q.stats.DroppedBytes += uint64(p.WireSize)
		return false
	}
	if q.MarkBytes > 0 && q.bytes >= q.MarkBytes && p.Flags.Has(FlagECT) {
		p.Flags |= FlagCE
		q.stats.MarkedCE++
	}
	q.pkts.Push(p)
	q.bytes += p.WireSize
	q.stats.EnqueuedPackets++
	if q.bytes > q.stats.MaxBytes {
		q.stats.MaxBytes = q.bytes
	}
	return true
}

// Dequeue implements Queue.
//
//greenvet:hotpath
func (q *DropTail) Dequeue() *Packet {
	p := q.pkts.Pop()
	if p == nil {
		return nil
	}
	q.bytes -= p.WireSize
	return p
}

// Len implements Queue.
func (q *DropTail) Len() int { return q.pkts.Len() }

// Bytes implements Queue.
func (q *DropTail) Bytes() int { return q.bytes }

// Stats implements Queue.
func (q *DropTail) Stats() QueueStats { return q.stats }
