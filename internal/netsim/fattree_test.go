package netsim

import (
	"testing"

	"greenenvy/internal/sim"
)

func TestFatTreeTopologyCounts(t *testing.T) {
	e := sim.NewEngine()
	for _, k := range []int{2, 4, 8} {
		ft := NewFatTree(e, DefaultFatTree(k))
		if got, want := ft.NumHosts(), k*k*k/4; got != want {
			t.Errorf("k=%d: %d hosts, want %d", k, got, want)
		}
		if got, want := len(ft.Edges), k*k/2; got != want {
			t.Errorf("k=%d: %d edges, want %d", k, got, want)
		}
		if got, want := len(ft.Aggs), k*k/2; got != want {
			t.Errorf("k=%d: %d aggs, want %d", k, got, want)
		}
		if got, want := len(ft.Cores), k*k/4; got != want {
			t.Errorf("k=%d: %d cores, want %d", k, got, want)
		}
		if got, want := len(ft.Switches()), k*k+k*k/4; got != want {
			t.Errorf("k=%d: Switches() = %d, want %d", k, got, want)
		}
		if ft.Pod(NodeID(ft.NumHosts()-1)) != k-1 {
			t.Errorf("k=%d: last host not in last pod", k)
		}
	}
}

func TestFatTreeValidation(t *testing.T) {
	e := sim.NewEngine()
	for _, cfg := range []FatTreeConfig{
		{K: 3, HostBps: 1, EdgeAggBps: 1, AggCoreBps: 1},
		{K: 0, HostBps: 1, EdgeAggBps: 1, AggCoreBps: 1},
		{K: 4, HostBps: 0, EdgeAggBps: 1, AggCoreBps: 1},
		{K: 4, HostBps: 1, EdgeAggBps: 1, AggCoreBps: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			NewFatTree(e, cfg)
		}()
	}
}

// TestFatTreeFullReachability delivers one packet between every ordered
// host pair of a k=4 tree: all 240 pairs must arrive, with zero no-route
// drops anywhere in the fabric.
func TestFatTreeFullReachability(t *testing.T) {
	e := sim.NewEngine()
	ft := NewFatTree(e, DefaultFatTree(4))
	n := ft.NumHosts()
	got := 0
	flow := FlowID(0)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			flow++
			ft.Hosts[dst].Attach(flow, HandlerFunc(func(p *Packet) { got++ }))
			ft.Hosts[src].Send(&Packet{Flow: flow, Dst: NodeID(dst), WireSize: 1500})
		}
	}
	e.Run()
	if want := n * (n - 1); got != want {
		t.Fatalf("delivered %d of %d pairs", got, want)
	}
	for _, sw := range ft.Switches() {
		if sw.DroppedNoRoute != 0 {
			t.Fatalf("switch %s dropped %d packets with no route", sw.Name, sw.DroppedNoRoute)
		}
	}
}

// TestFatTreeTiming pins the hop count via arrival time: an inter-pod
// packet crosses 6 links and 5 switch pipelines, an intra-rack packet 2
// links and 1 pipeline.
func TestFatTreeTiming(t *testing.T) {
	e := sim.NewEngine()
	ft := NewFatTree(e, DefaultFatTree(4))
	// 9000 B at 10 Gb/s serializes in 7.2 µs; each link adds 5 µs
	// propagation and each switch 1 µs of pipeline.
	perLink := sim.Time(7200 + 5000)
	var interAt, intraAt sim.Time
	ft.Hosts[12].Attach(1, HandlerFunc(func(p *Packet) { interAt = e.Now() }))
	ft.Hosts[1].Attach(2, HandlerFunc(func(p *Packet) { intraAt = e.Now() }))
	ft.Hosts[0].Send(&Packet{Flow: 1, Dst: 12, WireSize: 9000})
	e.Run()
	ft.Hosts[0].Send(&Packet{Flow: 2, Dst: 1, WireSize: 9000})
	e.Run()
	if want := 6*perLink + 5*1000; interAt != want {
		t.Fatalf("inter-pod delivery at %d, want %d (6 links, 5 switches)", interAt, want)
	}
	if want := interAt + 2*perLink + 1*1000; intraAt != want {
		t.Fatalf("intra-rack delivery at %d, want %d (2 links, 1 switch)", intraAt, want)
	}
}

// TestFatTreePathForMatchesForwarding checks the pure path walk against the
// links a real packet actually crosses, for flows spread across many ECMP
// choices.
func TestFatTreePathForMatchesForwarding(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultFatTree(4)
	cfg.ECMPSeed = 99
	ft := NewFatTree(e, cfg)
	for flow := FlowID(1); flow <= 32; flow++ {
		src, dst := NodeID(flow%4), NodeID(8+flow%8)
		if src == dst {
			continue
		}
		path := ft.PathFor(flow, src, dst)
		wantLinks := 6
		if ft.Pod(src) == ft.Pod(dst) {
			wantLinks = 4
		}
		if len(path) != wantLinks {
			t.Fatalf("flow %d: path has %d links, want %d", flow, len(path), wantLinks)
		}
		before := make([]uint64, len(path))
		for i, l := range path {
			before[i] = l.TxPackets
		}
		delivered := false
		ft.Hosts[dst].Attach(flow, HandlerFunc(func(p *Packet) { delivered = true }))
		ft.Hosts[src].Send(&Packet{Flow: flow, Dst: dst, WireSize: 1500})
		e.Run()
		if !delivered {
			t.Fatalf("flow %d: packet not delivered", flow)
		}
		for i, l := range path {
			if l.TxPackets != before[i]+1 {
				t.Fatalf("flow %d: predicted link %s did not carry the packet", flow, l.Name)
			}
		}
		ft.Hosts[dst].Detach(flow)
	}
}

// TestFatTreeUnroutableAddressDrops sends to an address outside the tree:
// the packet must die as a counted drop at the first switch that runs out
// of routes, not as a panic.
func TestFatTreeUnroutableAddressDrops(t *testing.T) {
	e := sim.NewEngine()
	ft := NewFatTree(e, DefaultFatTree(4))
	ft.Hosts[0].Send(&Packet{Flow: 1, Dst: NodeID(ft.NumHosts() + 5), WireSize: 1500})
	e.Run()
	total := uint64(0)
	for _, sw := range ft.Switches() {
		total += sw.DroppedNoRoute
	}
	if total != 1 {
		t.Fatalf("no-route drops = %d, want 1", total)
	}
}

// TestFatTreeCustomQueue installs a DRR on exactly one host-down port via
// the NewQueue hook and checks it lands where asked.
func TestFatTreeCustomQueue(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultFatTree(4)
	want := NodeID(3)
	cfg.NewQueue = func(p FatTreePort) Queue {
		if p.Tier == TierHostDown && p.Host == want {
			return NewDRR(1<<20, 0)
		}
		return nil
	}
	ft := NewFatTree(e, cfg)
	if _, ok := ft.HostDownlink(want).Queue().(*DRR); !ok {
		t.Fatal("host 3 downlink does not use the custom DRR")
	}
	if _, ok := ft.HostDownlink(0).Queue().(*DRR); ok {
		t.Fatal("default port unexpectedly got the custom queue")
	}
}
