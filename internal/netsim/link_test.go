package netsim

import (
	"testing"

	"greenenvy/internal/sim"
)

// collector gathers delivered packets with their arrival times.
type collector struct {
	engine *sim.Engine
	pkts   []*Packet
	times  []sim.Time
}

func (c *collector) HandlePacket(p *Packet) {
	c.pkts = append(c.pkts, p)
	c.times = append(c.times, c.engine.Now())
}

func TestLinkSerializationTime(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, "l", 10_000_000_000, 0, NewDropTail(0, 0), HandlerFunc(func(*Packet) {}))
	// 9000 bytes at 10 Gb/s = 7.2 µs.
	if got := l.SerializationTime(9000); got != 7200*sim.Nanosecond {
		t.Fatalf("SerializationTime = %d ns, want 7200", got)
	}
	// 1500 bytes at 1 Gb/s = 12 µs.
	l2 := NewLink(e, "l2", 1_000_000_000, 0, NewDropTail(0, 0), HandlerFunc(func(*Packet) {}))
	if got := l2.SerializationTime(1500); got != 12*sim.Microsecond {
		t.Fatalf("SerializationTime = %d ns, want 12000", got)
	}
}

func TestLinkDeliversAfterSerializationPlusDelay(t *testing.T) {
	e := sim.NewEngine()
	c := &collector{engine: e}
	l := NewLink(e, "l", 10_000_000_000, 5*sim.Microsecond, NewDropTail(0, 0), c)
	l.HandlePacket(pkt(0, 9000))
	e.Run()
	if len(c.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(c.pkts))
	}
	want := sim.Time(7200) + 5*sim.Microsecond
	if c.times[0] != want {
		t.Fatalf("delivered at %d, want %d", c.times[0], want)
	}
}

func TestLinkSerializesBackToBack(t *testing.T) {
	e := sim.NewEngine()
	c := &collector{engine: e}
	l := NewLink(e, "l", 10_000_000_000, 0, NewDropTail(0, 0), c)
	l.HandlePacket(pkt(0, 9000))
	l.HandlePacket(pkt(0, 9000))
	l.HandlePacket(pkt(0, 9000))
	e.Run()
	if len(c.pkts) != 3 {
		t.Fatalf("delivered %d, want 3", len(c.pkts))
	}
	for i, at := range c.times {
		want := sim.Time(7200 * (i + 1))
		if at != want {
			t.Fatalf("packet %d at %d, want %d (line must serialize back-to-back)", i, at, want)
		}
	}
}

func TestLinkPipelinesAcrossPropagation(t *testing.T) {
	// With delay >> serialization, packets must overlap in flight: the
	// second arrives one serialization after the first, not one delay.
	e := sim.NewEngine()
	c := &collector{engine: e}
	l := NewLink(e, "l", 10_000_000_000, sim.Millisecond, NewDropTail(0, 0), c)
	l.HandlePacket(pkt(0, 9000))
	l.HandlePacket(pkt(0, 9000))
	e.Run()
	gap := c.times[1] - c.times[0]
	if gap != 7200 {
		t.Fatalf("inter-arrival = %d ns, want 7200 (pipelined)", gap)
	}
}

func TestLinkRespectsQueueDrops(t *testing.T) {
	e := sim.NewEngine()
	c := &collector{engine: e}
	l := NewLink(e, "l", 1_000_000, 0, NewDropTail(1000, 0), c)
	// First packet starts transmitting immediately (dequeued), second
	// buffers (1000 bytes), third is dropped.
	l.HandlePacket(pkt(0, 1000))
	l.HandlePacket(pkt(0, 1000))
	l.HandlePacket(pkt(0, 1000))
	e.Run()
	if len(c.pkts) != 2 {
		t.Fatalf("delivered %d, want 2 (one dropped)", len(c.pkts))
	}
	if l.Queue().Stats().DroppedPackets != 1 {
		t.Fatalf("drops = %d, want 1", l.Queue().Stats().DroppedPackets)
	}
}

func TestLinkCounters(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, "l", 10_000_000_000, 0, NewDropTail(0, 0), HandlerFunc(func(*Packet) {}))
	l.HandlePacket(pkt(0, 1500))
	l.HandlePacket(pkt(0, 1500))
	e.Run()
	if l.TxPackets != 2 || l.TxBytes != 3000 {
		t.Fatalf("TxPackets=%d TxBytes=%d, want 2/3000", l.TxPackets, l.TxBytes)
	}
}

func TestLinkUtilization(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, "l", 10_000_000_000, 0, NewDropTail(0, 0), HandlerFunc(func(*Packet) {}))
	l.HandlePacket(pkt(0, 9000)) // busy for 7200 ns
	e.Run()
	e.RunUntil(14400) // idle for another 7200 ns
	u := l.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

func TestBondRoundRobin(t *testing.T) {
	e := sim.NewEngine()
	c := &collector{engine: e}
	l1 := NewLink(e, "m0", 10_000_000_000, 0, NewDropTail(0, 0), c)
	l2 := NewLink(e, "m1", 10_000_000_000, 0, NewDropTail(0, 0), c)
	b := NewBond(l1, l2)
	for i := 0; i < 6; i++ {
		b.HandlePacket(pkt(0, 9000))
	}
	e.Run()
	if l1.TxPackets != 3 || l2.TxPackets != 3 {
		t.Fatalf("bond split = %d/%d, want 3/3", l1.TxPackets, l2.TxPackets)
	}
	// Aggregate throughput is 2× one link: 6 packets finish in the time 3
	// take on one link.
	last := c.times[len(c.times)-1]
	if last != 3*7200 {
		t.Fatalf("bond finished at %d, want %d", last, 3*7200)
	}
}

func TestBondPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty bond did not panic")
		}
	}()
	NewBond()
}

func TestNewLinkValidation(t *testing.T) {
	e := sim.NewEngine()
	for _, tc := range []func(){
		func() { NewLink(e, "x", 0, 0, NewDropTail(0, 0), HandlerFunc(func(*Packet) {})) },
		func() { NewLink(e, "x", 1, 0, nil, HandlerFunc(func(*Packet) {})) },
		func() { NewLink(e, "x", 1, 0, NewDropTail(0, 0), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid NewLink did not panic")
				}
			}()
			tc()
		}()
	}
}
