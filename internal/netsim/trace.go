package netsim

import (
	"sort"

	"greenenvy/internal/sim"
)

// ThroughputSample is one point of a per-flow throughput time series.
type ThroughputSample struct {
	At   sim.Time
	Bps  float64
	Flow FlowID
}

// ThroughputMonitor samples per-flow delivered bytes at a fixed interval and
// turns the deltas into a throughput time series — the instrumentation
// behind the paper's Figure 3 traces.
type ThroughputMonitor struct {
	engine   *sim.Engine
	interval sim.Duration
	counts   map[FlowID]uint64
	last     map[FlowID]uint64
	series   map[FlowID][]ThroughputSample
	stopped  bool
}

// NewThroughputMonitor creates a monitor sampling every interval. Call
// Observe from the measurement point (typically wrapped around the
// receiver's OnReceive hook), then Start.
func NewThroughputMonitor(engine *sim.Engine, interval sim.Duration) *ThroughputMonitor {
	if interval <= 0 {
		panic("netsim: monitor interval must be positive")
	}
	return &ThroughputMonitor{
		engine:   engine,
		interval: interval,
		counts:   make(map[FlowID]uint64),
		last:     make(map[FlowID]uint64),
		series:   make(map[FlowID][]ThroughputSample),
	}
}

// Observe records payload bytes delivered for a flow.
//
//greenvet:hotpath
func (m *ThroughputMonitor) Observe(flow FlowID, payloadBytes int) {
	m.counts[flow] += uint64(payloadBytes)
}

// Start begins periodic sampling.
func (m *ThroughputMonitor) Start() {
	m.engine.After(m.interval, m.tick)
}

// Stop ends sampling after the current interval.
func (m *ThroughputMonitor) Stop() { m.stopped = true }

func (m *ThroughputMonitor) tick() {
	if m.stopped {
		return
	}
	now := m.engine.Now()
	for flow, total := range m.counts {
		delta := total - m.last[flow]
		m.last[flow] = total
		bps := float64(delta) * 8 / m.interval.Seconds()
		m.series[flow] = append(m.series[flow], ThroughputSample{At: now, Bps: bps, Flow: flow})
	}
	m.engine.After(m.interval, m.tick)
}

// Series returns the sampled throughput series for a flow.
func (m *ThroughputMonitor) Series(flow FlowID) []ThroughputSample { return m.series[flow] }

// Flows lists flows with at least one observation.
func (m *ThroughputMonitor) Flows() []FlowID {
	ids := make([]FlowID, 0, len(m.series))
	for id := range m.series {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
