package netsim

import (
	"fmt"
	"sort"

	"greenenvy/internal/sim"
)

// Switch is an output-queued store-and-forward switch, the role the Intel
// Tofino plays in the paper's testbed. Forwarding is table-driven: exact
// per-node routes (the dumbbell's one-port-per-host wiring) plus range
// routes over contiguous NodeID blocks (a fat-tree pod or rack), where a
// range route may carry several equal-cost next hops resolved by a
// deterministic ECMP hash. The switch itself adds only a small fixed
// pipeline latency.
type Switch struct {
	Name string
	// PipelineDelay models the forwarding pipeline (sub-microsecond on a
	// Tofino).
	PipelineDelay sim.Duration

	engine *sim.Engine
	// exact maps a destination node to its output port; it wins over any
	// range route (a /32 in longest-prefix terms).
	exact map[NodeID]Handler
	// ranges holds interval routes sorted by width then lower bound, so a
	// linear scan returns the narrowest covering range first — the
	// longest-prefix-match rule expressed over [lo, hi] blocks. Fat-tree
	// tables hold a handful of entries, so the scan beats tree structures.
	ranges []rangeRoute
	// maxHops is the TTL: forwarding a packet beyond this many hops is a
	// routing loop. Topology builders derive it from the network diameter
	// via SetTTL; the default is generous for hand-wired topologies.
	maxHops int
	// ecmpSalt seeds the flow-tuple hash that picks among equal-cost next
	// hops. Builders derive it per switch from the topology's ECMP seed so
	// different switches spread the same flow population differently.
	ecmpSalt uint64
	// pipe is the forwarding pipeline: the delay is fixed, so in-flight
	// packets form a FIFO and one standing event serves them all.
	pipe *sim.DelayLine[switchDelivery]
	// RxPackets counts packets received for forwarding.
	RxPackets uint64
	// DroppedNoRoute counts packets discarded because no route matched the
	// destination. A misconfigured table degrades to counted drops visible
	// in traces instead of crashing the sweep process.
	DroppedNoRoute uint64
	// LastNoRoute records the most recent no-route drop for diagnostics.
	// Fields rather than a formatted string: recording must not allocate
	// on the forwarding hot path.
	LastNoRoute NoRouteInfo
}

// NoRouteInfo identifies the packet behind a no-route drop.
type NoRouteInfo struct {
	Flow     FlowID
	Src, Dst NodeID
}

// rangeRoute forwards destinations in [lo, hi] (inclusive) to one of a set
// of equal-cost ports.
type rangeRoute struct {
	lo, hi NodeID
	ports  []Handler
}

// switchDelivery is one packet in the forwarding pipeline with its output
// port already resolved (lookup happens at arrival, as before).
type switchDelivery struct {
	out Handler
	p   *Packet
}

// NewSwitch creates an empty switch with the legacy 32-hop TTL.
func NewSwitch(engine *sim.Engine, name string, pipelineDelay sim.Duration) *Switch {
	s := &Switch{Name: name, PipelineDelay: pipelineDelay, engine: engine, exact: make(map[NodeID]Handler), maxHops: 32}
	s.pipe = sim.NewDelayLine(engine, func(d switchDelivery) { d.out.HandlePacket(d.p) })
	return s
}

// Connect installs the exact-match output port used to reach dst. Typically
// out is a *Link whose far end is the destination host. Exact routes win
// over any range route.
func (s *Switch) Connect(dst NodeID, out Handler) {
	s.exact[dst] = out
}

// ConnectRange installs a route for every destination in [lo, hi]
// (inclusive). With several ports the route is equal-cost: each flow is
// pinned to one port by a deterministic hash of (salt, flow, src, dst), so
// a flow's packets never reorder across paths and the same seed yields the
// same spreading for any worker count. Narrower ranges win over wider ones;
// exact routes win over all ranges.
func (s *Switch) ConnectRange(lo, hi NodeID, ports ...Handler) {
	if hi < lo {
		panic(fmt.Sprintf("netsim: switch %q: ConnectRange [%d, %d] is empty", s.Name, lo, hi))
	}
	if len(ports) == 0 {
		panic(fmt.Sprintf("netsim: switch %q: ConnectRange [%d, %d] needs at least one port", s.Name, lo, hi))
	}
	s.ranges = append(s.ranges, rangeRoute{lo: lo, hi: hi, ports: ports})
	sort.SliceStable(s.ranges, func(i, j int) bool {
		wi := s.ranges[i].hi - s.ranges[i].lo
		wj := s.ranges[j].hi - s.ranges[j].lo
		if wi != wj {
			return wi < wj
		}
		return s.ranges[i].lo < s.ranges[j].lo
	})
}

// SetTTL sets the maximum forwarding hop count. Topology builders call it
// with the network diameter plus a safety margin so a real forwarding loop
// is detected within one or two circuits instead of after 32 silent hops.
func (s *Switch) SetTTL(maxHops int) {
	if maxHops < 1 {
		panic(fmt.Sprintf("netsim: switch %q: TTL %d must be at least 1", s.Name, maxHops))
	}
	s.maxHops = maxHops
}

// TTL returns the configured maximum hop count.
func (s *Switch) TTL() int { return s.maxHops }

// SetECMPSalt sets the per-switch salt mixed into the ECMP flow hash.
func (s *Switch) SetECMPSalt(salt uint64) { s.ecmpSalt = salt }

// Port returns the exact-match output handler for dst, or nil if none is
// installed. Range routes are not consulted; use RouteFor for the full
// forwarding decision.
func (s *Switch) Port(dst NodeID) Handler { return s.exact[dst] }

// RouteFor returns the output port the switch would forward a packet with
// the given flow tuple to, or nil if no route matches. It is the pure
// lookup behind HandlePacket, exposed so topology code can trace the path a
// flow takes through ECMP fabrics without injecting traffic.
//
//greenvet:hotpath
func (s *Switch) RouteFor(flow FlowID, src, dst NodeID) Handler {
	if out, ok := s.exact[dst]; ok {
		return out
	}
	for i := range s.ranges {
		r := &s.ranges[i]
		if dst < r.lo || dst > r.hi {
			continue
		}
		if len(r.ports) == 1 {
			return r.ports[0]
		}
		return r.ports[ecmpIndex(s.ecmpSalt, flow, src, dst, len(r.ports))]
	}
	return nil
}

// ecmpIndex hashes a flow tuple onto one of n equal-cost ports. The hash
// chains sim.Mix64 over the salt and tuple fields, so selection depends
// only on (seed, flow, src, dst): deterministic across runs, Go releases,
// and worker counts, yet spread evenly because every input bit diffuses
// through the mixer.
//
//greenvet:hotpath
func ecmpIndex(salt uint64, flow FlowID, src, dst NodeID, n int) int {
	h := sim.Mix64(salt ^ 0x9E3779B97F4A7C15)
	h = sim.Mix64(h ^ uint64(flow))
	h = sim.Mix64(h ^ uint64(src))
	h = sim.Mix64(h ^ uint64(dst))
	return int(h % uint64(n))
}

// HandlePacket implements Handler by forwarding to the route for p.Dst.
// Packets with no matching route are counted and dropped; packets exceeding
// the TTL indicate a forwarding loop and panic with full flow context.
//
//greenvet:hotpath
func (s *Switch) HandlePacket(p *Packet) {
	out := s.RouteFor(p.Flow, p.Src, p.Dst)
	if out == nil {
		s.DroppedNoRoute++
		s.LastNoRoute = NoRouteInfo{Flow: p.Flow, Src: p.Src, Dst: p.Dst}
		return
	}
	p.hops++
	if p.hops > s.maxHops {
		panic(fmt.Sprintf("netsim: routing loop at switch %q: flow=%d src=%d dst=%d seq=%d exceeded TTL %d",
			s.Name, p.Flow, p.Src, p.Dst, p.Seq, s.maxHops))
	}
	s.RxPackets++
	if s.PipelineDelay > 0 {
		s.pipe.Schedule(switchDelivery{out: out, p: p}, s.engine.Now()+s.PipelineDelay)
		return
	}
	out.HandlePacket(p)
}

// Host is an end system: it owns an egress path toward the network and
// demultiplexes arriving packets to per-flow handlers (the transport
// endpoints). Energy accounting hooks observe every packet that enters or
// leaves the host.
type Host struct {
	Name string
	ID   NodeID

	egress Handler
	flows  map[FlowID]Handler

	// OnSend and OnReceive, when non-nil, observe every packet leaving or
	// entering the host. The energy model attaches here.
	OnSend    func(p *Packet)
	OnReceive func(p *Packet)

	// RxPackets/RxBytes count packets delivered to this host.
	RxPackets uint64
	RxBytes   uint64
	TxPackets uint64
	TxBytes   uint64
}

// NewHost creates a host. Attach its egress with SetEgress before sending.
func NewHost(id NodeID, name string) *Host {
	return &Host{Name: name, ID: id, flows: make(map[FlowID]Handler)}
}

// SetEgress installs the first-hop handler (a Link or Bond).
func (h *Host) SetEgress(e Handler) { h.egress = e }

// Attach registers the handler that receives packets for the given flow at
// this host.
func (h *Host) Attach(id FlowID, fh Handler) { h.flows[id] = fh }

// Detach removes a flow handler.
func (h *Host) Detach(id FlowID) { delete(h.flows, id) }

// Send transmits a packet from this host into the network.
//
//greenvet:hotpath
func (h *Host) Send(p *Packet) {
	if h.egress == nil {
		panic(fmt.Sprintf("netsim: host %q has no egress", h.Name))
	}
	p.Src = h.ID
	h.TxPackets++
	h.TxBytes += uint64(p.WireSize)
	if h.OnSend != nil {
		h.OnSend(p)
	}
	h.egress.HandlePacket(p)
}

// HandlePacket implements Handler: deliver to the flow's transport handler.
// Packets for unknown flows are counted and dropped (the flow may already
// have closed).
//
//greenvet:hotpath
func (h *Host) HandlePacket(p *Packet) {
	h.RxPackets++
	h.RxBytes += uint64(p.WireSize)
	if h.OnReceive != nil {
		h.OnReceive(p)
	}
	if fh, ok := h.flows[p.Flow]; ok {
		fh.HandlePacket(p)
	}
}
