package netsim

import (
	"fmt"

	"greenenvy/internal/sim"
)

// Switch is an output-queued store-and-forward switch, the role the Intel
// Tofino plays in the paper's testbed. Each destination node is reached
// through one output port (a Link with its own queue discipline); the
// switch itself adds only a small fixed pipeline latency.
type Switch struct {
	Name string
	// PipelineDelay models the forwarding pipeline (sub-microsecond on a
	// Tofino).
	PipelineDelay sim.Duration

	engine *sim.Engine
	ports  map[NodeID]Handler
	// pipe is the forwarding pipeline: the delay is fixed, so in-flight
	// packets form a FIFO and one standing event serves them all.
	pipe *sim.DelayLine[switchDelivery]
	// RxPackets counts packets received for forwarding.
	RxPackets uint64
}

// switchDelivery is one packet in the forwarding pipeline with its output
// port already resolved (lookup happens at arrival, as before).
type switchDelivery struct {
	out Handler
	p   *Packet
}

// NewSwitch creates an empty switch.
func NewSwitch(engine *sim.Engine, name string, pipelineDelay sim.Duration) *Switch {
	s := &Switch{Name: name, PipelineDelay: pipelineDelay, engine: engine, ports: make(map[NodeID]Handler)}
	s.pipe = sim.NewDelayLine(engine, func(d switchDelivery) { d.out.HandlePacket(d.p) })
	return s
}

// Connect installs the output port used to reach dst. Typically out is a
// *Link whose far end is the destination host.
func (s *Switch) Connect(dst NodeID, out Handler) {
	s.ports[dst] = out
}

// Port returns the output handler for dst, or nil if none is installed.
func (s *Switch) Port(dst NodeID) Handler { return s.ports[dst] }

// HandlePacket implements Handler by forwarding to the port for p.Dst.
//
//greenvet:hotpath
func (s *Switch) HandlePacket(p *Packet) {
	out, ok := s.ports[p.Dst]
	if !ok {
		panic(fmt.Sprintf("netsim: switch %q has no port for node %d", s.Name, p.Dst))
	}
	p.hops++
	if p.hops > 32 {
		panic("netsim: routing loop detected")
	}
	s.RxPackets++
	if s.PipelineDelay > 0 {
		s.pipe.Schedule(switchDelivery{out: out, p: p}, s.engine.Now()+s.PipelineDelay)
		return
	}
	out.HandlePacket(p)
}

// Host is an end system: it owns an egress path toward the network and
// demultiplexes arriving packets to per-flow handlers (the transport
// endpoints). Energy accounting hooks observe every packet that enters or
// leaves the host.
type Host struct {
	Name string
	ID   NodeID

	egress Handler
	flows  map[FlowID]Handler

	// OnSend and OnReceive, when non-nil, observe every packet leaving or
	// entering the host. The energy model attaches here.
	OnSend    func(p *Packet)
	OnReceive func(p *Packet)

	// RxPackets/RxBytes count packets delivered to this host.
	RxPackets uint64
	RxBytes   uint64
	TxPackets uint64
	TxBytes   uint64
}

// NewHost creates a host. Attach its egress with SetEgress before sending.
func NewHost(id NodeID, name string) *Host {
	return &Host{Name: name, ID: id, flows: make(map[FlowID]Handler)}
}

// SetEgress installs the first-hop handler (a Link or Bond).
func (h *Host) SetEgress(e Handler) { h.egress = e }

// Attach registers the handler that receives packets for the given flow at
// this host.
func (h *Host) Attach(id FlowID, fh Handler) { h.flows[id] = fh }

// Detach removes a flow handler.
func (h *Host) Detach(id FlowID) { delete(h.flows, id) }

// Send transmits a packet from this host into the network.
//
//greenvet:hotpath
func (h *Host) Send(p *Packet) {
	if h.egress == nil {
		panic(fmt.Sprintf("netsim: host %q has no egress", h.Name))
	}
	p.Src = h.ID
	h.TxPackets++
	h.TxBytes += uint64(p.WireSize)
	if h.OnSend != nil {
		h.OnSend(p)
	}
	h.egress.HandlePacket(p)
}

// HandlePacket implements Handler: deliver to the flow's transport handler.
// Packets for unknown flows are counted and dropped (the flow may already
// have closed).
//
//greenvet:hotpath
func (h *Host) HandlePacket(p *Packet) {
	h.RxPackets++
	h.RxBytes += uint64(p.WireSize)
	if h.OnReceive != nil {
		h.OnReceive(p)
	}
	if fh, ok := h.flows[p.Flow]; ok {
		fh.HandlePacket(p)
	}
}
