package netsim

import (
	"testing"

	"greenenvy/internal/sim"
)

func TestSwitchForwardsByDestination(t *testing.T) {
	e := sim.NewEngine()
	sw := NewSwitch(e, "sw", 0)
	var got []NodeID
	sw.Connect(1, HandlerFunc(func(p *Packet) { got = append(got, p.Dst) }))
	sw.Connect(2, HandlerFunc(func(p *Packet) { got = append(got, p.Dst) }))
	sw.HandlePacket(&Packet{Dst: 2, WireSize: 100})
	sw.HandlePacket(&Packet{Dst: 1, WireSize: 100})
	e.Run()
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("forwarded = %v", got)
	}
	if sw.RxPackets != 2 {
		t.Fatalf("RxPackets = %d", sw.RxPackets)
	}
}

func TestSwitchPipelineDelay(t *testing.T) {
	e := sim.NewEngine()
	sw := NewSwitch(e, "sw", sim.Microsecond)
	var at sim.Time
	sw.Connect(1, HandlerFunc(func(p *Packet) { at = e.Now() }))
	sw.HandlePacket(&Packet{Dst: 1, WireSize: 100})
	e.Run()
	if at != sim.Microsecond {
		t.Fatalf("delivered at %d, want 1µs", at)
	}
}

// TestSwitchUnknownDestinationDropsGracefully is the regression test for the
// panic-on-unknown-destination bug: a mis-routed packet must degrade to a
// counted drop visible through the trace counters, not crash the sweep, and
// later well-routed traffic must be unaffected.
func TestSwitchUnknownDestinationDropsGracefully(t *testing.T) {
	e := sim.NewEngine()
	sw := NewSwitch(e, "sw", 0)
	delivered := 0
	sw.Connect(1, HandlerFunc(func(p *Packet) { delivered++ }))
	sw.HandlePacket(&Packet{Flow: 5, Src: 3, Dst: 9, WireSize: 100})
	sw.HandlePacket(&Packet{Flow: 6, Src: 3, Dst: 1, WireSize: 100})
	e.Run()
	if sw.DroppedNoRoute != 1 {
		t.Fatalf("DroppedNoRoute = %d, want 1", sw.DroppedNoRoute)
	}
	if want := (NoRouteInfo{Flow: 5, Src: 3, Dst: 9}); sw.LastNoRoute != want {
		t.Fatalf("LastNoRoute = %+v, want %+v", sw.LastNoRoute, want)
	}
	if sw.RxPackets != 1 || delivered != 1 {
		t.Fatalf("RxPackets = %d, delivered = %d; the drop must not disturb routed traffic", sw.RxPackets, delivered)
	}
}

func TestHostDemux(t *testing.T) {
	h := NewHost(0, "h")
	var got []FlowID
	h.Attach(7, HandlerFunc(func(p *Packet) { got = append(got, p.Flow) }))
	h.HandlePacket(&Packet{Flow: 7, WireSize: 100})
	h.HandlePacket(&Packet{Flow: 8, WireSize: 100}) // unknown: dropped quietly
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("demux = %v", got)
	}
	if h.RxPackets != 2 || h.RxBytes != 200 {
		t.Fatalf("rx counters = %d/%d", h.RxPackets, h.RxBytes)
	}
	h.Detach(7)
	h.HandlePacket(&Packet{Flow: 7, WireSize: 100})
	if len(got) != 1 {
		t.Fatal("detached flow still delivered")
	}
}

func TestHostSendStampsSourceAndHooks(t *testing.T) {
	h := NewHost(3, "h")
	var sent *Packet
	h.SetEgress(HandlerFunc(func(p *Packet) { sent = p }))
	hooked := 0
	h.OnSend = func(p *Packet) { hooked++ }
	h.Send(&Packet{Flow: 1, WireSize: 1500})
	if sent == nil || sent.Src != 3 {
		t.Fatalf("sent = %+v", sent)
	}
	if hooked != 1 {
		t.Fatal("OnSend hook not called")
	}
	if h.TxPackets != 1 || h.TxBytes != 1500 {
		t.Fatalf("tx counters = %d/%d", h.TxPackets, h.TxBytes)
	}
}

func TestHostSendWithoutEgressPanics(t *testing.T) {
	h := NewHost(0, "h")
	defer func() {
		if recover() == nil {
			t.Error("send without egress did not panic")
		}
	}()
	h.Send(&Packet{})
}

func TestDumbbellEndToEnd(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultDumbbell(2)
	d := NewDumbbell(e, cfg)
	if len(d.Senders) != 2 {
		t.Fatalf("senders = %d", len(d.Senders))
	}

	// Sender 0 sends a data packet to the receiver; receiver echoes an
	// ACK back. Both directions must work.
	var dataAt, ackAt sim.Time
	d.Receiver.Attach(1, HandlerFunc(func(p *Packet) {
		dataAt = e.Now()
		d.Receiver.Send(&Packet{Flow: 1, Dst: d.Senders[0].ID, Flags: FlagACK, WireSize: 60})
	}))
	d.Senders[0].Attach(1, HandlerFunc(func(p *Packet) {
		if !p.Flags.Has(FlagACK) {
			t.Errorf("sender received non-ACK %v", p)
		}
		ackAt = e.Now()
	}))
	d.Senders[0].Send(&Packet{Flow: 1, Dst: d.Receiver.ID, DataLen: 8940, WireSize: 9000})
	e.Run()
	if dataAt == 0 || ackAt <= dataAt {
		t.Fatalf("dataAt=%v ackAt=%v", dataAt, ackAt)
	}
	// Forward path: uplink serialization 7.2µs + 5µs prop + 1µs switch +
	// bottleneck 7.2µs + 5µs prop = 25.4µs.
	want := sim.Time(7200 + 5000 + 1000 + 7200 + 5000)
	if dataAt != want {
		t.Fatalf("dataAt = %d, want %d", dataAt, want)
	}
}

func TestDumbbellBondSpreadsSenderTraffic(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultDumbbell(1)
	d := NewDumbbell(e, cfg)
	bond, ok := d.Senders[0].egressAsBond()
	if !ok {
		t.Fatal("sender egress is not a bond with BondedSenderLinks=2")
	}
	for i := 0; i < 4; i++ {
		d.Senders[0].Send(&Packet{Flow: 1, Dst: d.Receiver.ID, WireSize: 9000})
	}
	e.Run()
	m := bond.Members()
	if m[0].TxPackets != 2 || m[1].TxPackets != 2 {
		t.Fatalf("bond split %d/%d, want 2/2", m[0].TxPackets, m[1].TxPackets)
	}
}

func TestDumbbellBottleneckDRR(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultDumbbell(2)
	cfg.BottleneckQueue = NewDRR(1<<20, 0)
	d := NewDumbbell(e, cfg)
	if d.BottleneckDRR() == nil {
		t.Fatal("BottleneckDRR returned nil for DRR bottleneck")
	}
	cfg2 := DefaultDumbbell(1)
	d2 := NewDumbbell(e, cfg2)
	if d2.BottleneckDRR() != nil {
		t.Fatal("BottleneckDRR should be nil for drop-tail bottleneck")
	}
}

func TestDumbbellValidation(t *testing.T) {
	e := sim.NewEngine()
	for _, cfg := range []DumbbellConfig{
		{Senders: 0, BottleneckBps: 1, AccessBps: 1},
		{Senders: 1, BottleneckBps: 0, AccessBps: 1},
		{Senders: 1, BottleneckBps: 1, AccessBps: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			NewDumbbell(e, cfg)
		}()
	}
}

func TestDumbbellAllHosts(t *testing.T) {
	e := sim.NewEngine()
	d := NewDumbbell(e, DefaultDumbbell(3))
	hosts := d.AllHosts()
	if len(hosts) != 4 {
		t.Fatalf("AllHosts = %d, want 4", len(hosts))
	}
	if hosts[3] != d.Receiver {
		t.Fatal("receiver not last in AllHosts")
	}
}

func TestThroughputMonitor(t *testing.T) {
	e := sim.NewEngine()
	m := NewThroughputMonitor(e, 10*sim.Millisecond)
	m.Start()
	// Deliver 12.5 MB over the first 10ms window => 10 Gb/s.
	e.At(sim.Millisecond, func() { m.Observe(1, 12_500_000) })
	e.RunUntil(25 * sim.Millisecond)
	m.Stop()
	e.Run()
	s := m.Series(1)
	if len(s) == 0 {
		t.Fatal("no samples")
	}
	first := s[0]
	if first.At != 10*sim.Millisecond {
		t.Fatalf("first sample at %v", first.At)
	}
	wantBps := 12_500_000.0 * 8 / 0.01
	if first.Bps != wantBps {
		t.Fatalf("sample = %v bps, want %v", first.Bps, wantBps)
	}
	// Second window has no new bytes: zero throughput.
	if len(s) > 1 && s[1].Bps != 0 {
		t.Fatalf("second sample = %v, want 0", s[1].Bps)
	}
	if len(m.Flows()) != 1 {
		t.Fatalf("Flows = %v", m.Flows())
	}
}

func TestThroughputMonitorBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero interval did not panic")
		}
	}()
	NewThroughputMonitor(sim.NewEngine(), 0)
}

// egressAsBond is a test helper peeking at the host's egress.
func (h *Host) egressAsBond() (*Bond, bool) {
	b, ok := h.egress.(*Bond)
	return b, ok
}
