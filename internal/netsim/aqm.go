package netsim

import (
	"math"

	"greenenvy/internal/sim"
)

// Active queue management disciplines. Unlike DropTail/DRR, AQMs need the
// simulation clock: CoDel measures per-packet sojourn time and PIE runs a
// periodic probability update. Rather than widening the Queue interface,
// clock-needing disciplines implement EngineBinder and NewLink binds the
// engine before traffic flows, so topology code keeps passing queues around
// as plain values.

// EngineBinder is implemented by queue disciplines that need the simulation
// clock (sojourn timestamps, periodic control-law updates). NewLink invokes
// it at construction; code that drives such a queue outside a Link must
// call BindEngine itself before the first Enqueue.
type EngineBinder interface {
	BindEngine(e *sim.Engine)
}

// qEntry is a queued packet with its arrival timestamp, the raw material of
// every sojourn-time control law.
type qEntry struct {
	p  *Packet
	at sim.Time
}

// entryRing is pktRing for timestamped entries: one power-of-two backing
// array reused for the life of the queue, allocation-free in steady state.
type entryRing struct {
	buf  []qEntry
	head int
	n    int
}

func (r *entryRing) Len() int { return r.n }

func (r *entryRing) Push(p *Packet, at sim.Time) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = qEntry{p: p, at: at}
	r.n++
}

func (r *entryRing) Pop() (*Packet, sim.Time) {
	if r.n == 0 {
		return nil, 0
	}
	e := r.buf[r.head]
	r.buf[r.head] = qEntry{} // drop the reference for the GC
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return e.p, e.at
}

func (r *entryRing) grow() {
	newCap := 2 * len(r.buf)
	if newCap == 0 {
		newCap = 16
	}
	next := make([]qEntry, newCap) //greenvet:allow hotpathalloc ring doubling is amortized to the peak queue depth
	for i := 0; i < r.n; i++ {
		next[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = next
	r.head = 0
}

// codelCtl is the RFC 8289 control law, shared by CoDel (one instance per
// queue) and FQ-CoDel (one instance per flow queue). ECN-capable packets are
// marked CE and delivered where the law would drop, as in the Linux
// implementation.
type codelCtl struct {
	target   sim.Duration
	interval sim.Duration

	firstAbove sim.Time // 0 = sojourn currently below target
	dropNext   sim.Time
	dropping   bool
	count      uint32
	lastCount  uint32
}

// controlLaw spaces successive drops at interval/sqrt(count) after t.
func (c *codelCtl) controlLaw(t sim.Time) sim.Time {
	return t + sim.Time(float64(c.interval)/math.Sqrt(float64(c.count)))
}

// doDequeue pops the head entry and classifies it: the second return is
// RFC 8289's ok_to_drop — the sojourn time has stayed above target for a
// full interval. qbytes is the discipline's total backlog (decremented
// here); fbytes, when non-nil, is a per-flow backlog decremented alongside
// (FQ-CoDel). The sojourn test is suppressed while the total backlog is at
// most one max-size packet: a line that can't hold two packets isn't
// standing-queue congestion.
func (c *codelCtl) doDequeue(now sim.Time, ring *entryRing, qbytes, fbytes *int, minBytes int) (*Packet, bool) {
	p, at := ring.Pop()
	if p == nil {
		c.firstAbove = 0
		return nil, false
	}
	*qbytes -= p.WireSize
	if fbytes != nil {
		*fbytes -= p.WireSize
	}
	if now-at < c.target || *qbytes <= minBytes {
		c.firstAbove = 0
		return p, false
	}
	if c.firstAbove == 0 {
		c.firstAbove = now + c.interval
		return p, false
	}
	return p, now >= c.firstAbove
}

// dequeue runs one full RFC 8289 dequeue: pop, update the drop state, and
// return the packet to transmit (nil when the ring is empty or every
// backlogged packet was dropped by the law).
//
//greenvet:hotpath
func (c *codelCtl) dequeue(now sim.Time, ring *entryRing, qbytes, fbytes *int, minBytes int, stats *QueueStats) *Packet {
	p, okToDrop := c.doDequeue(now, ring, qbytes, fbytes, minBytes)
	if p == nil {
		c.dropping = false
		return nil
	}
	if c.dropping {
		if !okToDrop {
			c.dropping = false
			return p
		}
		for now >= c.dropNext {
			c.count++
			if p.Flags.Has(FlagECT) {
				p.Flags |= FlagCE
				stats.MarkedCE++
				c.dropNext = c.controlLaw(c.dropNext)
				return p
			}
			stats.DroppedPackets++
			stats.DroppedBytes += uint64(p.WireSize)
			c.dropNext = c.controlLaw(c.dropNext)
			p, okToDrop = c.doDequeue(now, ring, qbytes, fbytes, minBytes)
			if p == nil {
				c.dropping = false
				return nil
			}
			if !okToDrop {
				c.dropping = false
				return p
			}
		}
		return p
	}
	if okToDrop {
		// Enter the dropping state. Resume from the previous drop rate if
		// the last dropping episode was recent (RFC 8289 §5.4).
		c.dropping = true
		delta := c.count - c.lastCount
		if delta > 1 && now-c.dropNext < 16*sim.Time(c.interval) {
			c.count = delta
		} else {
			c.count = 1
		}
		c.lastCount = c.count
		if p.Flags.Has(FlagECT) {
			p.Flags |= FlagCE
			stats.MarkedCE++
			c.dropNext = c.controlLaw(now)
			return p
		}
		stats.DroppedPackets++
		stats.DroppedBytes += uint64(p.WireSize)
		c.dropNext = c.controlLaw(now)
		// The replacement packet goes out regardless; the control law
		// schedules the next drop at dropNext.
		p, _ = c.doDequeue(now, ring, qbytes, fbytes, minBytes)
		return p
	}
	return p
}

// CoDel default parameters. The RFC's 5 ms / 100 ms are sized for
// internet-scale RTTs; this lab's dumbbell RTT is tens of microseconds, so
// the defaults scale target and interval to the same ratio at
// datacenter timescales.
const (
	// DefaultCoDelTarget is the acceptable standing-queue sojourn time.
	DefaultCoDelTarget = 50 * sim.Microsecond
	// DefaultCoDelInterval is the sliding window in which the sojourn must
	// stay above target before the control law engages.
	DefaultCoDelInterval = 500 * sim.Microsecond
)

// CoDel is the Controlled Delay AQM (RFC 8289) on a single FIFO: it tracks
// each packet's sojourn time through the queue and, when sojourn stays above
// Target for a full Interval, drops (or, for ECN-capable packets, CE-marks)
// at a rate that increases with the square root of the drop count until the
// standing queue dissolves.
type CoDel struct {
	// CapBytes is the hard buffer size backing the AQM; packets arriving
	// when the queue holds CapBytes or more are tail-dropped regardless of
	// the control law (0 = unbounded).
	CapBytes int
	// Target is the acceptable standing sojourn time
	// (0 = DefaultCoDelTarget).
	Target sim.Duration
	// Interval is the control-law window (0 = DefaultCoDelInterval).
	Interval sim.Duration

	engine  *sim.Engine
	ring    entryRing
	bytes   int
	maxWire int // largest packet seen; the "one MTU" floor for the law
	ctl     codelCtl
	stats   QueueStats
}

// NewCoDel returns a CoDel queue with the given byte capacity (0 =
// unbounded) and target/interval (0 = datacenter-scaled defaults). The
// engine is bound by NewLink via EngineBinder.
func NewCoDel(capBytes int, target, interval sim.Duration) *CoDel {
	if target == 0 {
		target = DefaultCoDelTarget
	}
	if interval == 0 {
		interval = DefaultCoDelInterval
	}
	return &CoDel{
		CapBytes: capBytes,
		Target:   target,
		Interval: interval,
		ctl:      codelCtl{target: target, interval: interval},
	}
}

// BindEngine implements EngineBinder.
func (q *CoDel) BindEngine(e *sim.Engine) { q.engine = e }

// Enqueue implements Queue: admission is plain tail-drop against CapBytes;
// the control law acts at dequeue time on the recorded arrival stamp.
//
//greenvet:hotpath
func (q *CoDel) Enqueue(p *Packet) bool {
	if q.CapBytes > 0 && q.bytes+p.WireSize > q.CapBytes {
		q.stats.DroppedPackets++
		q.stats.DroppedBytes += uint64(p.WireSize)
		return false
	}
	if p.WireSize > q.maxWire {
		q.maxWire = p.WireSize
	}
	q.ring.Push(p, q.engine.Now())
	q.bytes += p.WireSize
	q.stats.EnqueuedPackets++
	if q.bytes > q.stats.MaxBytes {
		q.stats.MaxBytes = q.bytes
	}
	return true
}

// Dequeue implements Queue.
//
//greenvet:hotpath
func (q *CoDel) Dequeue() *Packet {
	return q.ctl.dequeue(q.engine.Now(), &q.ring, &q.bytes, nil, q.maxWire, &q.stats)
}

// Len implements Queue.
func (q *CoDel) Len() int { return q.ring.Len() }

// Bytes implements Queue.
func (q *CoDel) Bytes() int { return q.bytes }

// Stats implements Queue.
func (q *CoDel) Stats() QueueStats { return q.stats }
