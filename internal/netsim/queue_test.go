package netsim

import (
	"testing"
	"testing/quick"
)

func pkt(flow FlowID, size int) *Packet {
	return &Packet{Flow: flow, WireSize: size, DataLen: size - 60}
}

func ectPkt(flow FlowID, size int) *Packet {
	p := pkt(flow, size)
	p.Flags |= FlagECT
	return p
}

func TestDropTailFIFOOrder(t *testing.T) {
	q := NewDropTail(0, 0)
	for i := 0; i < 5; i++ {
		if !q.Enqueue(pkt(FlowID(i), 100)) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	for i := 0; i < 5; i++ {
		p := q.Dequeue()
		if p == nil || p.Flow != FlowID(i) {
			t.Fatalf("dequeue %d: got %v", i, p)
		}
	}
	if q.Dequeue() != nil {
		t.Fatal("empty queue returned a packet")
	}
}

func TestDropTailCapacityDrops(t *testing.T) {
	q := NewDropTail(250, 0)
	if !q.Enqueue(pkt(0, 100)) || !q.Enqueue(pkt(0, 100)) {
		t.Fatal("first two packets should fit")
	}
	if q.Enqueue(pkt(0, 100)) {
		t.Fatal("third packet should be dropped (250 cap)")
	}
	st := q.Stats()
	if st.DroppedPackets != 1 || st.DroppedBytes != 100 {
		t.Fatalf("drop stats = %+v", st)
	}
	if q.Bytes() != 200 || q.Len() != 2 {
		t.Fatalf("bytes=%d len=%d, want 200/2", q.Bytes(), q.Len())
	}
}

func TestDropTailUnboundedNeverDrops(t *testing.T) {
	q := NewDropTail(0, 0)
	for i := 0; i < 10000; i++ {
		if !q.Enqueue(pkt(0, 9000)) {
			t.Fatal("unbounded queue dropped")
		}
	}
}

func TestDropTailECNMarking(t *testing.T) {
	q := NewDropTail(0, 150)
	q.Enqueue(ectPkt(0, 100)) // queue 0 < 150: no mark
	q.Enqueue(ectPkt(0, 100)) // queue 100 < 150: no mark
	q.Enqueue(ectPkt(0, 100)) // queue 200 >= 150: mark
	p1, p2, p3 := q.Dequeue(), q.Dequeue(), q.Dequeue()
	if p1.Flags.Has(FlagCE) || p2.Flags.Has(FlagCE) {
		t.Fatal("packets below threshold were marked")
	}
	if !p3.Flags.Has(FlagCE) {
		t.Fatal("packet above threshold was not marked")
	}
	if q.Stats().MarkedCE != 1 {
		t.Fatalf("MarkedCE = %d, want 1", q.Stats().MarkedCE)
	}
}

func TestDropTailNoMarkWithoutECT(t *testing.T) {
	q := NewDropTail(0, 50)
	q.Enqueue(pkt(0, 100))
	q.Enqueue(pkt(0, 100)) // above threshold but not ECN-capable
	q.Dequeue()
	p := q.Dequeue()
	if p.Flags.Has(FlagCE) {
		t.Fatal("non-ECT packet was CE-marked")
	}
}

func TestDropTailHighWaterMark(t *testing.T) {
	q := NewDropTail(0, 0)
	q.Enqueue(pkt(0, 100))
	q.Enqueue(pkt(0, 200))
	q.Dequeue()
	q.Dequeue()
	if q.Stats().MaxBytes != 300 {
		t.Fatalf("MaxBytes = %d, want 300", q.Stats().MaxBytes)
	}
}

// Property: byte accounting is exact under arbitrary enqueue/dequeue
// sequences.
func TestDropTailByteAccountingProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		q := NewDropTail(5000, 0)
		want := 0
		for _, op := range ops {
			if op%3 == 0 {
				if p := q.Dequeue(); p != nil {
					want -= p.WireSize
				}
			} else {
				size := int(op)%1400 + 60
				if q.Enqueue(pkt(0, size)) {
					want += size
				}
			}
			if q.Bytes() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDRRFairSplitEqualWeights(t *testing.T) {
	q := NewDRR(0, 0)
	// 20 packets of each flow, equal weights: service should alternate in
	// a balanced fashion (equal bytes over any window of full rounds).
	for i := 0; i < 20; i++ {
		q.Enqueue(pkt(1, 1000))
		q.Enqueue(pkt(2, 1000))
	}
	counts := map[FlowID]int{}
	for i := 0; i < 20; i++ {
		p := q.Dequeue()
		counts[p.Flow]++
	}
	// With the large default quantum one flow may burst a full quantum,
	// but the quantum is equal so neither flow can lead by more than a
	// quantum's worth of packets. Over 20 dequeues of 40 queued, both
	// flows must have been served at least once... with quantum 1 MiB,
	// flow 1 drains entirely first (20 KB < quantum). So instead verify
	// total service equals dequeues and no starvation across full drain.
	for i := 0; i < 20; i++ {
		p := q.Dequeue()
		counts[p.Flow]++
	}
	if counts[1] != 20 || counts[2] != 20 {
		t.Fatalf("counts = %v, want 20/20", counts)
	}
}

func TestDRRWeightedShare(t *testing.T) {
	// Use a small quantum unit so rounds interleave at packet granularity.
	q := NewDRR(0, 0)
	q.quantumUnit = 1000
	q.SetWeight(1, 3)
	q.SetWeight(2, 1)
	for i := 0; i < 400; i++ {
		q.Enqueue(pkt(1, 1000))
		q.Enqueue(pkt(2, 1000))
	}
	counts := map[FlowID]int{}
	for i := 0; i < 200; i++ {
		counts[q.Dequeue().Flow]++
	}
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("service ratio = %v (counts %v), want ~3", ratio, counts)
	}
}

func TestDRRZeroWeightIsStrictlyBackground(t *testing.T) {
	q := NewDRR(0, 0)
	q.SetWeight(2, 0)
	for i := 0; i < 10; i++ {
		q.Enqueue(pkt(2, 1000))
		q.Enqueue(pkt(1, 1000))
	}
	// All of flow 1 must be served before any of flow 2.
	for i := 0; i < 10; i++ {
		if p := q.Dequeue(); p.Flow != 1 {
			t.Fatalf("dequeue %d served background flow early", i)
		}
	}
	for i := 0; i < 10; i++ {
		if p := q.Dequeue(); p.Flow != 2 {
			t.Fatalf("dequeue %d: background flow missing", i)
		}
	}
}

func TestDRRWorkConserving(t *testing.T) {
	q := NewDRR(0, 0)
	q.SetWeight(1, 0.5)
	q.SetWeight(2, 0.5)
	// Only flow 2 is backlogged: it must receive all service.
	for i := 0; i < 5; i++ {
		q.Enqueue(pkt(2, 1000))
	}
	for i := 0; i < 5; i++ {
		p := q.Dequeue()
		if p == nil || p.Flow != 2 {
			t.Fatalf("work conservation violated at %d: %v", i, p)
		}
	}
}

func TestDRRSharedCapacityDrops(t *testing.T) {
	q := NewDRR(2000, 0)
	if !q.Enqueue(pkt(1, 1000)) || !q.Enqueue(pkt(2, 1000)) {
		t.Fatal("packets within cap dropped")
	}
	if q.Enqueue(pkt(1, 1000)) {
		t.Fatal("packet beyond shared cap accepted")
	}
	if q.Stats().DroppedPackets != 1 {
		t.Fatalf("dropped = %d, want 1", q.Stats().DroppedPackets)
	}
}

func TestDRRECNMarking(t *testing.T) {
	q := NewDRR(0, 1500)
	q.Enqueue(ectPkt(1, 1000))
	q.Enqueue(ectPkt(2, 1000)) // 1000 < 1500: no mark
	q.Enqueue(ectPkt(1, 1000)) // 2000 >= 1500: mark
	marked := 0
	for p := q.Dequeue(); p != nil; p = q.Dequeue() {
		if p.Flags.Has(FlagCE) {
			marked++
		}
	}
	if marked != 1 {
		t.Fatalf("marked = %d, want 1", marked)
	}
}

func TestDRRNegativeWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative weight did not panic")
		}
	}()
	NewDRR(0, 0).SetWeight(1, -1)
}

func TestDRRWeightChangeWhileBacklogged(t *testing.T) {
	q := NewDRR(0, 0)
	q.Enqueue(pkt(1, 1000))
	q.Enqueue(pkt(2, 1000))
	q.SetWeight(1, 0) // demote while backlogged
	if p := q.Dequeue(); p.Flow != 2 {
		t.Fatal("demoted flow served before weighted flow")
	}
	if p := q.Dequeue(); p.Flow != 1 {
		t.Fatal("demoted flow lost its packet")
	}
}

func TestDRRFlowBytes(t *testing.T) {
	q := NewDRR(0, 0)
	q.Enqueue(pkt(1, 700))
	q.Enqueue(pkt(1, 300))
	if q.FlowBytes(1) != 1000 {
		t.Fatalf("FlowBytes = %d, want 1000", q.FlowBytes(1))
	}
	if q.FlowBytes(9) != 0 {
		t.Fatal("unknown flow should report 0 bytes")
	}
	q.Dequeue()
	if q.FlowBytes(1) != 300 {
		t.Fatalf("FlowBytes after dequeue = %d, want 300", q.FlowBytes(1))
	}
}

// Property: DRR conserves packets — everything enqueued (and not dropped)
// comes out exactly once, and total byte accounting matches.
func TestDRRConservationProperty(t *testing.T) {
	f := func(flows []uint8) bool {
		q := NewDRR(0, 0)
		q.quantumUnit = 2000
		sizes := map[FlowID]int{}
		total := 0
		for i, fl := range flows {
			id := FlowID(fl % 4)
			size := 60 + (i*37)%1400
			q.Enqueue(pkt(id, size))
			sizes[id] += size
			total += size
		}
		got := map[FlowID]int{}
		gotTotal := 0
		for p := q.Dequeue(); p != nil; p = q.Dequeue() {
			got[p.Flow] += p.WireSize
			gotTotal += p.WireSize
		}
		if gotTotal != total || q.Bytes() != 0 || q.Len() != 0 {
			return false
		}
		for id, want := range sizes {
			if got[id] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFlagsHas(t *testing.T) {
	f := FlagACK | FlagECE
	if !f.Has(FlagACK) || !f.Has(FlagECE) || !f.Has(FlagACK|FlagECE) {
		t.Fatal("Has failed for set bits")
	}
	if f.Has(FlagSYN) || f.Has(FlagACK|FlagSYN) {
		t.Fatal("Has true for unset bits")
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{Flow: 3, Seq: 100, DataLen: 1440, WireSize: 1500}
	if s := p.String(); s == "" {
		t.Fatal("empty String()")
	}
	ack := &Packet{Flow: 3, Flags: FlagACK, Ack: 200, WireSize: 60}
	if s := ack.String(); s[:3] != "ACK" {
		t.Fatalf("ACK String = %q", s)
	}
}
