package netsim

import (
	"fmt"

	"greenenvy/internal/sim"
)

// Link is a unidirectional transmission line: a queue feeding a serializer
// of fixed rate, followed by a propagation delay, delivering to a Handler.
// It is the only place in the simulator where packets consume time.
type Link struct {
	// Name appears in traces and panics.
	Name string
	// RateBps is the line rate in bits per second.
	RateBps int64
	// Delay is the one-way propagation delay. It must stay constant once
	// packets flow: deliveries ride a FIFO delay line, which panics if
	// due times ever go backwards.
	Delay sim.Duration

	engine *sim.Engine
	queue  Queue
	dst    Handler
	busy   bool
	// txPkt is the packet currently being serialized; txDone is the
	// standing serialization-completion timer (rearmed per packet, never
	// reallocated).
	txPkt  *Packet
	txDone *sim.Timer
	// wire is the propagation stage: delay is constant per link, so
	// deliveries are FIFO and one standing event plus a ring of in-flight
	// packets replaces a heap event and closure per packet.
	wire *sim.DelayLine[*Packet]
	// remote, when set, replaces wire: the far end lives on another
	// partition's engine and the propagation delay is spent crossing the
	// conduit (it doubles as the partition's lookahead guarantee). The
	// packet is handed off wholly; this side never touches it again.
	remote *sim.Conduit[*Packet]

	// TxPackets and TxBytes count packets/bytes that completed
	// serialization onto the wire.
	TxPackets uint64
	TxBytes   uint64
	// busySince tracks utilization accounting.
	busyTime  sim.Duration
	busyStart sim.Time
}

// NewLink creates a link with the given queue discipline delivering to dst.
func NewLink(engine *sim.Engine, name string, rateBps int64, delay sim.Duration, queue Queue, dst Handler) *Link {
	if rateBps <= 0 {
		panic(fmt.Sprintf("netsim: link %q with non-positive rate %d", name, rateBps))
	}
	if queue == nil || dst == nil || engine == nil {
		panic("netsim: NewLink requires engine, queue and dst")
	}
	if b, ok := queue.(EngineBinder); ok {
		b.BindEngine(engine)
	}
	l := &Link{Name: name, RateBps: rateBps, Delay: delay, engine: engine, queue: queue, dst: dst}
	l.txDone = engine.NewTimer(l.onTxDone)
	l.wire = sim.NewDelayLine(engine, dst.HandlePacket)
	return l
}

// SetRemote diverts the link's propagation stage through an inter-shard
// conduit: packets finish serializing here, then arrive at the far
// partition Delay later. The conduit's lookahead must equal the link's
// propagation delay — that equality is what lets the conservative
// synchronizer treat the wire itself as the safety margin — and the switch
// must happen before any traffic flows, or in-flight packets on the local
// delay line would arrive out of order with conduit deliveries.
func (l *Link) SetRemote(c *sim.Conduit[*Packet]) {
	if c == nil {
		panic(fmt.Sprintf("netsim: link %q SetRemote(nil)", l.Name))
	}
	if c.Delay() != l.Delay {
		panic(fmt.Sprintf("netsim: link %q delay %v != conduit lookahead %v", l.Name, l.Delay, c.Delay()))
	}
	if l.TxPackets > 0 || l.busy {
		panic(fmt.Sprintf("netsim: link %q SetRemote after traffic has flowed", l.Name))
	}
	l.remote = c
}

// Queue exposes the link's queue discipline (for weight configuration and
// stats inspection).
func (l *Link) Queue() Queue { return l.queue }

// Dst returns the handler at the far end of the link. Topology code uses it
// to walk a flow's forwarding path hop by hop.
func (l *Link) Dst() Handler { return l.dst }

// SerializationTime returns the time to clock size bytes onto the wire.
func (l *Link) SerializationTime(size int) sim.Duration {
	return sim.Duration(int64(size) * 8 * int64(sim.Second) / l.RateBps)
}

// HandlePacket implements Handler: enqueue and start transmitting if idle.
//
//greenvet:hotpath
func (l *Link) HandlePacket(p *Packet) {
	if !l.queue.Enqueue(p) {
		return // dropped; queue stats already updated
	}
	if !l.busy {
		l.transmitNext()
	}
}

// transmitNext starts serializing the next queued packet, if any.
func (l *Link) transmitNext() {
	p := l.queue.Dequeue()
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	l.busyStart = l.engine.Now()
	l.txPkt = p
	l.txDone.Reset(l.SerializationTime(p.WireSize))
}

// onTxDone fires when the current packet finishes serializing: it enters
// the propagation stage and the next queued packet starts clocking out.
//
//greenvet:hotpath
func (l *Link) onTxDone() {
	p := l.txPkt
	l.txPkt = nil
	l.TxPackets++
	l.TxBytes += uint64(p.WireSize)
	l.busyTime += l.engine.Now() - l.busyStart
	if p.Flags.Has(FlagINT) {
		//greenvet:allow hotpathalloc INT telemetry is stamped only on FlagINT packets (HPCC runs)
		p.INT = append(p.INT, INTHop{
			QueueBytes: l.queue.Bytes(),
			TxBytes:    l.TxBytes,
			At:         l.engine.Now(),
			RateBps:    l.RateBps,
		})
	}
	if l.remote != nil {
		l.remote.Send(l.engine.Now()+l.Delay, p)
	} else {
		l.wire.Schedule(p, l.engine.Now()+l.Delay)
	}
	l.transmitNext()
}

// Busy reports whether the link is currently serializing a packet.
func (l *Link) Busy() bool { return l.busy }

// Utilization returns the fraction of [0, now] the line spent transmitting.
func (l *Link) Utilization() float64 {
	now := l.engine.Now()
	if now == 0 {
		return 0
	}
	bt := l.busyTime
	if l.busy {
		bt += now - l.busyStart
	}
	return float64(bt) / float64(now)
}

// Bond spreads packets round-robin across multiple member links, modelling
// the paper's sender that is "connected to the switch with 2×10Gb/s links
// where the interfaces are bonded and packets are sent round-robin among the
// two" (§3). With two members, the sender's access capacity is 20 Gb/s and
// the bottleneck stays at the switch.
type Bond struct {
	members []*Link
	next    int
}

// NewBond creates a round-robin bond over the given links. It panics if no
// members are supplied.
func NewBond(members ...*Link) *Bond {
	if len(members) == 0 {
		panic("netsim: bond with no member links")
	}
	return &Bond{members: members}
}

// HandlePacket implements Handler by assigning the packet to the next
// member link in round-robin order.
//
//greenvet:hotpath
func (b *Bond) HandlePacket(p *Packet) {
	l := b.members[b.next]
	b.next = (b.next + 1) % len(b.members)
	l.HandlePacket(p)
}

// Members returns the bonded links.
func (b *Bond) Members() []*Link { return b.members }
