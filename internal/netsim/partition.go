package netsim

import (
	"fmt"

	"greenenvy/internal/sim"
)

// This file partitions the fat-tree for conservative-synchronization
// parallel simulation (sim.ShardGroup). The cut runs along the pod/core
// uplinks: every host, edge and aggregation switch of pod p lives on shard
// p, and core switch c lives on shard c mod k. Only agg↔core links can
// cross the cut, and every link's propagation delay becomes the conduit's
// lookahead, so the partition needs no extra synchronization machinery
// beyond what the topology already provides. The dumbbell never uses any
// of this — it degenerates to a single shard and keeps its monolithic
// engine untouched.

// FatTreePartition is the fixed pod/core-based shard assignment for a
// k-ary fat-tree. The assignment is part of the determinism contract: it
// depends only on the topology, never on worker count, so per-shard event
// streams are identical no matter how many workers execute them.
type FatTreePartition struct {
	// K is the tree arity; there is one shard per pod.
	K int
}

// Shards returns the number of partitions (one per pod).
func (p FatTreePartition) Shards() int { return p.K }

// PodShard returns the shard owning pod's hosts, edges and aggs.
func (p FatTreePartition) PodShard(pod int) int { return pod }

// CoreShard returns the shard owning core switch c. Cores are dealt
// round-robin over the pod shards so core load spreads evenly.
func (p FatTreePartition) CoreShard(c int) int { return c % p.K }

// fatTreeLayout tells buildFatTree where each element lives: on the one
// monolithic engine, or spread over a shard group per FatTreePartition.
type fatTreeLayout struct {
	engine *sim.Engine     // monolithic build
	group  *sim.ShardGroup // sharded build
	part   FatTreePartition
}

// pod returns the engine hosting pod p's switches, hosts and links.
func (l fatTreeLayout) pod(p int) *sim.Engine {
	if l.group == nil {
		return l.engine
	}
	return l.group.Engine(l.part.PodShard(p))
}

// core returns the engine hosting core switch c and its downlinks.
func (l fatTreeLayout) core(c int) *sim.Engine {
	if l.group == nil {
		return l.engine
	}
	return l.group.Engine(l.part.CoreShard(c))
}

// bindPodToCore diverts an agg(p)→core(c) uplink through a conduit when
// the two ends live on different shards.
func (l fatTreeLayout) bindPodToCore(lnk *Link, p, c int, dst Handler) {
	if l.group == nil {
		return
	}
	l.bindAcross(lnk, l.part.PodShard(p), l.part.CoreShard(c), dst)
}

// bindCoreToPod diverts a core(c)→agg(p) downlink likewise.
func (l fatTreeLayout) bindCoreToPod(lnk *Link, c, p int, dst Handler) {
	if l.group == nil {
		return
	}
	l.bindAcross(lnk, l.part.CoreShard(c), l.part.PodShard(p), dst)
}

// bindAcross is the partition cut: when a link's endpoints land on
// different shards, its propagation stage is diverted through a conduit
// whose lookahead is exactly the link delay. Same-shard links keep the
// direct wire.
//
//greenvet:shardboundary
func (l fatTreeLayout) bindAcross(lnk *Link, srcShard, dstShard int, dst Handler) {
	if srcShard == dstShard {
		return
	}
	lnk.SetRemote(sim.NewConduit(l.group, srcShard, dstShard, lnk.Delay, dst.HandlePacket))
}

// NewFatTreeSharded wires the same topology as NewFatTree across group's
// partition engines, cut at the pod/core uplinks. The group must hold
// exactly k shards (one per pod; cores are spread over them), and the link
// delay must be positive — it is the lookahead conservative
// synchronization leans on. Switch/link creation order, and therefore ECMP
// salting and routing, is identical to the monolithic build: the same seed
// spreads the same flows onto the same paths.
func NewFatTreeSharded(group *sim.ShardGroup, cfg FatTreeConfig) *FatTree {
	part := FatTreePartition{K: cfg.K}
	if group.Shards() != part.Shards() {
		panic(fmt.Sprintf("netsim: fat-tree k=%d wants %d shards, group has %d", cfg.K, part.Shards(), group.Shards()))
	}
	if cfg.LinkDelay <= 0 {
		panic("netsim: sharded fat-tree needs a positive link delay for lookahead")
	}
	return buildFatTree(cfg, fatTreeLayout{group: group, part: part})
}

// ShardOfHost returns the shard owning host h (its pod), or 0 for a
// monolithic tree.
func (ft *FatTree) ShardOfHost(h NodeID) int {
	if ft.Group == nil {
		return 0
	}
	return ft.part.PodShard(ft.Pod(h))
}

// EngineOf returns the engine that drives host h.
func (ft *FatTree) EngineOf(h NodeID) *sim.Engine {
	if ft.Group == nil {
		return ft.Engine
	}
	return ft.Group.Engine(ft.ShardOfHost(h))
}

// Partition exposes the shard assignment (zero-valued for a monolithic
// tree).
func (ft *FatTree) Partition() FatTreePartition { return ft.part }
