package netsim

import (
	"testing"

	"greenenvy/internal/sim"
)

// These tests pin the steady-state allocation counts of the link packet
// path. Before the pooled-event engine, every packet traversal allocated
// five objects (two closures, two heap events boxed through `any`, and
// queue-slice growth); the rewrite brings both the data-packet and the
// pure-ACK path to zero. If a change makes these fail, it reintroduced
// per-packet garbage on the hottest path in the simulator — fix the change,
// don't bump the pins.

// linkAllocsPerPacket measures steady-state allocations for one packet
// traversing queue → serializer → propagation → delivery.
func linkAllocsPerPacket(t *testing.T, wireSize, dataLen int) float64 {
	t.Helper()
	e := sim.NewEngine()
	delivered := 0
	l := NewLink(e, "pin", 10_000_000_000, 5*sim.Microsecond, NewDropTail(1<<20, 0),
		HandlerFunc(func(p *Packet) { delivered++ }))
	p := &Packet{Flow: 1, Dst: 1, WireSize: wireSize, DataLen: dataLen}
	traverse := func() {
		l.HandlePacket(p)
		e.Run()
	}
	// Warm the event pool and the queue ring past their steady-state
	// sizes before measuring.
	for i := 0; i < 128; i++ {
		traverse()
	}
	avg := testing.AllocsPerRun(200, traverse)
	if delivered == 0 {
		t.Fatal("no packets delivered")
	}
	return avg
}

func TestLinkDataPacketPathAllocFree(t *testing.T) {
	if got := linkAllocsPerPacket(t, 1500, 1460); got != 0 {
		t.Fatalf("data-packet link path allocates %.1f objects/packet, want 0", got)
	}
}

func TestLinkPureAckPathAllocFree(t *testing.T) {
	if got := linkAllocsPerPacket(t, 40, 0); got != 0 {
		t.Fatalf("pure-ACK link path allocates %.1f objects/packet, want 0", got)
	}
}

// TestSwitchPipelinePathAllocFree extends the pin across a store-and-forward
// switch hop with a non-zero pipeline delay (the default dumbbell's
// configuration), exercising the switch's FIFO delay line.
func TestSwitchPipelinePathAllocFree(t *testing.T) {
	e := sim.NewEngine()
	delivered := 0
	sw := NewSwitch(e, "pin", sim.Microsecond)
	sw.Connect(1, HandlerFunc(func(p *Packet) { delivered++ }))
	l := NewLink(e, "pin", 10_000_000_000, 5*sim.Microsecond, NewDropTail(1<<20, 0), sw)
	p := &Packet{Flow: 1, Dst: 1, WireSize: 1500, DataLen: 1460}
	traverse := func() {
		p.hops = 0
		l.HandlePacket(p)
		e.Run()
	}
	for i := 0; i < 128; i++ {
		traverse()
	}
	if got := testing.AllocsPerRun(200, traverse); got != 0 {
		t.Fatalf("link+switch path allocates %.1f objects/packet, want 0", got)
	}
	if delivered == 0 {
		t.Fatal("no packets delivered")
	}
}

// TestDropTailSteadyStateAllocFree pins the ring-buffer queue: enqueue plus
// dequeue with a standing backlog must not touch the heap.
func TestDropTailSteadyStateAllocFree(t *testing.T) {
	q := NewDropTail(1<<30, 0)
	p := &Packet{WireSize: 1500}
	for i := 0; i < 64; i++ {
		q.Enqueue(p)
	}
	if got := testing.AllocsPerRun(200, func() {
		q.Enqueue(p)
		q.Dequeue()
	}); got != 0 {
		t.Fatalf("DropTail steady state allocates %.1f objects/op, want 0", got)
	}
}

// TestDRRSteadyStateAllocFree pins the weighted-fair queue the same way.
func TestDRRSteadyStateAllocFree(t *testing.T) {
	q := NewDRR(1<<30, 0)
	p := &Packet{Flow: 1, WireSize: 1500}
	for i := 0; i < 64; i++ {
		q.Enqueue(p)
	}
	if got := testing.AllocsPerRun(200, func() {
		q.Enqueue(p)
		q.Dequeue()
	}); got != 0 {
		t.Fatalf("DRR steady state allocates %.1f objects/op, want 0", got)
	}
}
