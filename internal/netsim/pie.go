package netsim

import "greenenvy/internal/sim"

// PIE default parameters, scaled like CoDel's from the RFC's internet-scale
// values (15 ms / 16 ms) to this lab's microsecond RTTs.
const (
	// DefaultPIETarget is the queueing-delay reference the controller
	// steers toward.
	DefaultPIETarget = 50 * sim.Microsecond
	// DefaultPIETUpdate is the drop-probability update period.
	DefaultPIETUpdate = 500 * sim.Microsecond
)

// PIE proportional-integral controller gains. RFC 8033 fixes alpha/beta in
// Hz against millisecond-scale delays; here the error terms are normalized
// by Target instead, which keeps the controller's response invariant under
// the datacenter timescale compression (a deliberate deviation, mirroring
// how the CoDel defaults are rescaled).
const (
	pieAlpha = 0.125 // integral gain on (qdelay - Target)/Target
	pieBeta  = 1.25  // proportional gain on (qdelay - qdelayOld)/Target
)

// PIE is the Proportional Integral controller Enhanced AQM (RFC 8033): a
// FIFO whose admission control drops (or CE-marks) arriving packets with a
// probability steered by a PI controller toward a target queueing delay.
// Queueing delay is estimated from the backlog and the configured drain
// rate (the RFC's basic estimator), and the probability update runs lazily
// at enqueue time once per TUpdate — between arrivals there is nothing to
// admit, so a dedicated timer would only burn events.
//
// The random admission draws come from a private sim.RNG seeded at
// construction, so runs are deterministic and independent of every other
// consumer of randomness in the experiment.
type PIE struct {
	// CapBytes is the hard buffer size (0 = unbounded); arrivals beyond it
	// are tail-dropped regardless of the controller.
	CapBytes int
	// RateBps is the port's drain rate, used to turn backlog bytes into a
	// queueing-delay estimate. Required (the constructor panics on 0).
	RateBps int64
	// Target is the queueing-delay reference (0 = DefaultPIETarget).
	Target sim.Duration
	// TUpdate is the probability update period (0 = DefaultPIETUpdate).
	TUpdate sim.Duration

	engine     *sim.Engine
	rng        *sim.RNG
	pkts       pktRing
	bytes      int
	maxWire    int
	dropProb   float64
	qdelayOld  sim.Duration
	nextUpdate sim.Time
	stats      QueueStats
}

// NewPIE returns a PIE queue draining at rateBps with the given byte
// capacity (0 = unbounded), target/tUpdate (0 = datacenter-scaled
// defaults), and admission-draw seed. The engine is bound by NewLink via
// EngineBinder.
func NewPIE(capBytes int, rateBps int64, target, tUpdate sim.Duration, seed uint64) *PIE {
	if rateBps <= 0 {
		panic("netsim: PIE requires a positive drain rate")
	}
	if target == 0 {
		target = DefaultPIETarget
	}
	if tUpdate == 0 {
		tUpdate = DefaultPIETUpdate
	}
	return &PIE{
		CapBytes: capBytes,
		RateBps:  rateBps,
		Target:   target,
		TUpdate:  tUpdate,
		rng:      sim.NewRNG(seed),
	}
}

// BindEngine implements EngineBinder.
func (q *PIE) BindEngine(e *sim.Engine) { q.engine = e }

// update advances the PI controller one TUpdate step (RFC 8033 §4.2).
func (q *PIE) update(now sim.Time) {
	qdelay := sim.Duration(int64(q.bytes) * 8 * int64(sim.Second) / q.RateBps)
	t := float64(q.Target)
	p := pieAlpha*(float64(qdelay)-t)/t + pieBeta*(float64(qdelay)-float64(q.qdelayOld))/t
	// Auto-tune: scale the adjustment down while the probability is small
	// so the controller stays stable near zero (RFC 8033 §5.2).
	switch {
	case q.dropProb < 0.000001:
		p /= 2048
	case q.dropProb < 0.00001:
		p /= 512
	case q.dropProb < 0.0001:
		p /= 128
	case q.dropProb < 0.001:
		p /= 32
	case q.dropProb < 0.01:
		p /= 8
	case q.dropProb < 0.1:
		p /= 2
	}
	q.dropProb += p
	// Decay the probability exponentially when the queue has drained.
	if qdelay == 0 && q.qdelayOld == 0 {
		q.dropProb *= 0.98
	}
	if q.dropProb < 0 {
		q.dropProb = 0
	} else if q.dropProb > 1 {
		q.dropProb = 1
	}
	q.qdelayOld = qdelay
	q.nextUpdate = now + q.TUpdate
}

// Enqueue implements Queue: run any due controller update, then admit,
// drop, or CE-mark per the current probability (RFC 8033 §4.1). ECN-capable
// packets are marked instead of dropped while the probability is below 10%;
// above that the queue is in real trouble and even ECT packets drop.
//
//greenvet:hotpath
func (q *PIE) Enqueue(p *Packet) bool {
	now := q.engine.Now()
	if now >= q.nextUpdate {
		q.update(now)
	}
	if q.CapBytes > 0 && q.bytes+p.WireSize > q.CapBytes {
		q.stats.DroppedPackets++
		q.stats.DroppedBytes += uint64(p.WireSize)
		return false
	}
	if p.WireSize > q.maxWire {
		q.maxWire = p.WireSize
	}
	// Safeguards: never drop while the backlog is under two max-size
	// packets, and leave a near-idle queue alone.
	random := q.dropProb > 0 && q.bytes >= 2*q.maxWire &&
		!(q.qdelayOld < q.Target/2 && q.dropProb < 0.2)
	if random && q.rng.Float64() < q.dropProb {
		if q.dropProb < 0.1 && p.Flags.Has(FlagECT) {
			p.Flags |= FlagCE
			q.stats.MarkedCE++
		} else {
			q.stats.DroppedPackets++
			q.stats.DroppedBytes += uint64(p.WireSize)
			return false
		}
	}
	q.pkts.Push(p)
	q.bytes += p.WireSize
	q.stats.EnqueuedPackets++
	if q.bytes > q.stats.MaxBytes {
		q.stats.MaxBytes = q.bytes
	}
	return true
}

// Dequeue implements Queue: plain FIFO — all of PIE's intelligence is at
// admission.
//
//greenvet:hotpath
func (q *PIE) Dequeue() *Packet {
	p := q.pkts.Pop()
	if p == nil {
		return nil
	}
	q.bytes -= p.WireSize
	return p
}

// Len implements Queue.
func (q *PIE) Len() int { return q.pkts.Len() }

// Bytes implements Queue.
func (q *PIE) Bytes() int { return q.bytes }

// Stats implements Queue.
func (q *PIE) Stats() QueueStats { return q.stats }

// DropProb exposes the controller's current drop probability (tests).
func (q *PIE) DropProb() float64 { return q.dropProb }
