package netsim_test

// Packet-path microbenchmarks. The bodies live in internal/perf so that
// cmd/simbench can run the identical code and record the results in
// BENCH_sim.json; these wrappers expose them to `go test -bench`.

import (
	"testing"

	"greenenvy/internal/perf"
)

func BenchmarkLinkDataPacket(b *testing.B) { perf.BenchLinkDataPacket(b) }

func BenchmarkLinkPureAck(b *testing.B) { perf.BenchLinkPureAck(b) }

func BenchmarkDropTailQueue(b *testing.B) { perf.BenchDropTailQueue(b) }

func BenchmarkDRRQueue(b *testing.B) { perf.BenchDRRQueue(b) }

func BenchmarkDumbbellTransfer(b *testing.B) { perf.BenchDumbbellTransfer(b) }

func BenchmarkFatTreeIncast(b *testing.B) { perf.BenchFatTreeIncast(b) }

func BenchmarkShardedIncastMono(b *testing.B) { perf.BenchShardedIncastMono(b) }

func BenchmarkShardedIncastW1(b *testing.B) { perf.BenchShardedIncastW1(b) }

func BenchmarkShardedIncastW2(b *testing.B) { perf.BenchShardedIncastW2(b) }

func BenchmarkShardedIncastW4(b *testing.B) { perf.BenchShardedIncastW4(b) }

func BenchmarkShardedIncastW8(b *testing.B) { perf.BenchShardedIncastW8(b) }
