package netsim

import (
	"fmt"

	"greenenvy/internal/sim"
)

// DumbbellConfig describes the paper's lab topology (§3): sender hosts
// connected through a switch to one receiver, with the switch's output port
// toward the receiver as the bottleneck.
type DumbbellConfig struct {
	// Senders is the number of sender hosts (>= 1).
	Senders int
	// BottleneckBps is the rate of the switch-to-receiver port
	// (10 Gb/s in the paper).
	BottleneckBps int64
	// AccessBps is the rate of each host-to-switch and switch-to-host
	// access link. The paper's sender uses 2×10 Gb/s bonded; set
	// BondedSenderLinks to 2 to reproduce that.
	AccessBps int64
	// BondedSenderLinks is how many parallel access links each sender
	// bonds round-robin (1 = no bonding).
	BondedSenderLinks int
	// LinkDelay is the one-way propagation delay of every link.
	LinkDelay sim.Duration
	// SwitchDelay is the switch pipeline latency.
	SwitchDelay sim.Duration
	// BottleneckQueue is the queue discipline for the bottleneck port.
	// If nil, a drop-tail queue of BufferBytes is used.
	BottleneckQueue Queue
	// BufferBytes is the bottleneck buffer size used when
	// BottleneckQueue is nil (0 picks a 1 MiB default).
	BufferBytes int
	// MarkBytes is the DCTCP ECN threshold for the default bottleneck
	// queue (0 = no marking).
	MarkBytes int
	// AccessDelays optionally overrides LinkDelay on a per-sender basis:
	// sender i's uplinks and downlink use AccessDelays[i] when the slice
	// reaches that far and the entry is positive. Heterogeneous access
	// delays give flows unequal RTTs over the shared bottleneck (the
	// classic RTT-unfairness axis). The receiver's access link and the
	// bottleneck itself always use LinkDelay.
	AccessDelays []sim.Duration
}

// accessDelay resolves sender i's access-link propagation delay.
func (cfg *DumbbellConfig) accessDelay(i int) sim.Duration {
	if i < len(cfg.AccessDelays) && cfg.AccessDelays[i] > 0 {
		return cfg.AccessDelays[i]
	}
	return cfg.LinkDelay
}

// DefaultDumbbell returns the §3 testbed: 10 Gb/s bottleneck, bonded
// 2×10 Gb/s sender access, microsecond-scale datacenter latencies, and a
// 1 MiB drop-tail bottleneck buffer.
func DefaultDumbbell(senders int) DumbbellConfig {
	return DumbbellConfig{
		Senders:           senders,
		BottleneckBps:     10_000_000_000,
		AccessBps:         10_000_000_000,
		BondedSenderLinks: 2,
		LinkDelay:         5 * sim.Microsecond,
		SwitchDelay:       sim.Microsecond,
		BufferBytes:       1 << 20,
	}
}

// Dumbbell is an assembled topology.
type Dumbbell struct {
	Engine   *sim.Engine
	Senders  []*Host
	Receiver *Host
	Switch   *Switch
	// Bottleneck is the switch-to-receiver link whose queue is the shared
	// contention point.
	Bottleneck *Link
}

// NewDumbbell wires up the topology described by cfg.
//
// Node IDs: senders are 0..Senders-1, the receiver is Senders, the switch is
// Senders+1.
func NewDumbbell(engine *sim.Engine, cfg DumbbellConfig) *Dumbbell {
	if cfg.Senders < 1 {
		panic("netsim: dumbbell needs at least one sender")
	}
	if cfg.BottleneckBps <= 0 || cfg.AccessBps <= 0 {
		panic("netsim: dumbbell link rates must be positive")
	}
	if cfg.BondedSenderLinks <= 0 {
		cfg.BondedSenderLinks = 1
	}
	bufBytes := cfg.BufferBytes
	if bufBytes == 0 {
		bufBytes = 1 << 20
	}

	d := &Dumbbell{Engine: engine}
	recvID := NodeID(cfg.Senders)
	d.Receiver = NewHost(recvID, "receiver")
	d.Switch = NewSwitch(engine, "tofino", cfg.SwitchDelay)
	// Every path crosses the single switch exactly once; TTL 2 (diameter
	// plus one hop of margin) catches a reflected packet immediately.
	d.Switch.SetTTL(2)

	// Bottleneck port: switch -> receiver.
	bq := cfg.BottleneckQueue
	if bq == nil {
		bq = NewDropTail(bufBytes, cfg.MarkBytes)
	}
	d.Bottleneck = NewLink(engine, "bottleneck", cfg.BottleneckBps, cfg.LinkDelay, bq, d.Receiver)
	d.Switch.Connect(recvID, d.Bottleneck)

	// Receiver's egress goes back through the switch (for ACKs).
	revAccess := NewLink(engine, "receiver-uplink", cfg.AccessBps, cfg.LinkDelay, NewDropTail(0, 0), d.Switch)
	d.Receiver.SetEgress(revAccess)

	for i := 0; i < cfg.Senders; i++ {
		h := NewHost(NodeID(i), fmt.Sprintf("sender%d", i))
		delay := cfg.accessDelay(i)
		// Uplink(s): host -> switch, optionally bonded.
		if cfg.BondedSenderLinks > 1 {
			links := make([]*Link, cfg.BondedSenderLinks)
			for j := range links {
				links[j] = NewLink(engine, fmt.Sprintf("%s-uplink%d", h.Name, j), cfg.AccessBps, delay, NewDropTail(0, 0), d.Switch)
			}
			h.SetEgress(NewBond(links...))
		} else {
			h.SetEgress(NewLink(engine, h.Name+"-uplink", cfg.AccessBps, delay, NewDropTail(0, 0), d.Switch))
		}
		// Downlink: switch -> host (carries ACKs; never congested).
		down := NewLink(engine, h.Name+"-downlink", cfg.AccessBps, delay, NewDropTail(0, 0), h)
		d.Switch.Connect(h.ID, down)
		d.Senders = append(d.Senders, h)
	}
	return d
}

// BottleneckDRR returns the bottleneck queue as a *DRR, or nil if the
// bottleneck uses a different discipline. Experiments that sweep bandwidth
// allocations use this to set per-flow weights.
func (d *Dumbbell) BottleneckDRR() *DRR {
	q, _ := d.Bottleneck.Queue().(*DRR)
	return q
}

// AllHosts returns senders plus the receiver.
func (d *Dumbbell) AllHosts() []*Host {
	return append(append([]*Host{}, d.Senders...), d.Receiver)
}
