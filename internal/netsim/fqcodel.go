package netsim

import "greenenvy/internal/sim"

// DefaultFQCoDelQuantum is the per-visit byte credit for each flow queue:
// one jumbo frame, so a flow sending max-size packets releases exactly one
// per round.
const DefaultFQCoDelQuantum = 9216

// FQCoDel is the flow-queuing CoDel discipline (RFC 8290): each flow gets
// its own FIFO with its own CoDel control law, and flows are served by
// deficit round robin with the new-flow priority boost — a queue that was
// empty (a sparse flow, e.g. pure ACKs or a mouse) is scheduled ahead of the
// backlogged bulk queues until it uses a full quantum.
//
// Two deliberate deviations from the RFC, both documented because they are
// visible in stats: flows hash perfectly by FlowID (the simulator knows the
// real flow, so there are no hash collisions to model), and overflow
// tail-drops the arriving packet instead of dropping from the fattest queue
// (the fat-queue search is O(flows) per overflow; the experiments size
// CapBytes so overflow is the rare path, where the simpler policy does not
// change steady-state behaviour).
type FQCoDel struct {
	// CapBytes bounds the total buffered bytes across all flows
	// (0 = unbounded). Arrivals beyond the cap are dropped.
	CapBytes int
	// Quantum is the DRR byte credit per scheduling visit
	// (0 = DefaultFQCoDelQuantum).
	Quantum int
	// Target and Interval parameterize every per-flow CoDel instance
	// (0 = the datacenter-scaled CoDel defaults).
	Target   sim.Duration
	Interval sim.Duration

	engine   *sim.Engine
	flows    map[FlowID]*fqFlow
	newFlows []*fqFlow
	oldFlows []*fqFlow
	bytes    int
	npkts    int
	maxWire  int
	stats    QueueStats
}

// fqFlow is one flow's queue: its FIFO, DRR deficit, and CoDel state.
type fqFlow struct {
	id      FlowID
	ring    entryRing
	bytes   int
	deficit int
	ctl     codelCtl
	queued  bool // on newFlows or oldFlows
}

// NewFQCoDel returns a flow-queuing CoDel discipline with the given total
// byte capacity (0 = unbounded), per-visit quantum (0 = default jumbo
// frame), and CoDel parameters (0 = datacenter-scaled defaults). The engine
// is bound by NewLink via EngineBinder.
func NewFQCoDel(capBytes, quantum int, target, interval sim.Duration) *FQCoDel {
	if quantum == 0 {
		quantum = DefaultFQCoDelQuantum
	}
	if target == 0 {
		target = DefaultCoDelTarget
	}
	if interval == 0 {
		interval = DefaultCoDelInterval
	}
	return &FQCoDel{
		CapBytes: capBytes,
		Quantum:  quantum,
		Target:   target,
		Interval: interval,
		flows:    make(map[FlowID]*fqFlow),
	}
}

// BindEngine implements EngineBinder.
func (q *FQCoDel) BindEngine(e *sim.Engine) { q.engine = e }

// Enqueue implements Queue.
//
//greenvet:hotpath
func (q *FQCoDel) Enqueue(p *Packet) bool {
	if q.CapBytes > 0 && q.bytes+p.WireSize > q.CapBytes {
		q.stats.DroppedPackets++
		q.stats.DroppedBytes += uint64(p.WireSize)
		return false
	}
	if p.WireSize > q.maxWire {
		q.maxWire = p.WireSize
	}
	f, ok := q.flows[p.Flow]
	if !ok {
		f = &fqFlow{id: p.Flow, ctl: codelCtl{target: q.Target, interval: q.Interval}} //greenvet:allow hotpathalloc one allocation per new flow, not per packet
		q.flows[p.Flow] = f
	}
	f.ring.Push(p, q.engine.Now())
	f.bytes += p.WireSize
	q.bytes += p.WireSize
	q.npkts++
	q.stats.EnqueuedPackets++
	if q.bytes > q.stats.MaxBytes {
		q.stats.MaxBytes = q.bytes
	}
	if !f.queued {
		// A flow that had drained re-enters as a new flow with a fresh
		// quantum: the sparse-flow priority boost.
		f.queued = true
		f.deficit = q.Quantum
		q.newFlows = append(q.newFlows, f) //greenvet:allow hotpathalloc list grows to the concurrent-flow count, then growth stops
	}
	return true
}

// Dequeue implements Queue: serve new flows first, then old, by deficit
// round robin; each service runs the flow's own CoDel law.
//
//greenvet:hotpath
func (q *FQCoDel) Dequeue() *Packet {
	now := q.engine.Now()
	// Each iteration either returns a packet, retires an empty flow, or
	// charges a quantum and rotates — all monotone steps, so the loop
	// terminates; the guard protects against internal bugs only.
	for guard := 0; ; guard++ {
		if guard > 1<<22 {
			panic("netsim: FQCoDel failed to schedule a packet (internal bug)")
		}
		var f *fqFlow
		fromNew := false
		switch {
		case len(q.newFlows) > 0:
			f = q.newFlows[0]
			fromNew = true
		case len(q.oldFlows) > 0:
			f = q.oldFlows[0]
		default:
			return nil
		}
		if f.deficit <= 0 {
			f.deficit += q.Quantum
			if fromNew {
				q.newFlows = q.newFlows[1:]
			} else {
				q.oldFlows = q.oldFlows[1:]
			}
			q.oldFlows = append(q.oldFlows, f) //greenvet:allow hotpathalloc rotation: the list just shed a head, so capacity suffices in steady state
			continue
		}
		before := f.ring.Len()
		p := f.ctl.dequeue(now, &f.ring, &q.bytes, &f.bytes, q.maxWire, &q.stats)
		q.npkts -= before - f.ring.Len()
		if p == nil {
			// The flow's queue drained (possibly via CoDel drops). An
			// empty new flow migrates to the old list so a quick
			// follow-up packet does not re-earn the sparse boost
			// (RFC 8290 §5.4.4); an empty old flow retires entirely.
			if fromNew {
				q.newFlows = q.newFlows[1:]
				q.oldFlows = append(q.oldFlows, f) //greenvet:allow hotpathalloc rotation: the list just shed a head, so capacity suffices in steady state
			} else {
				q.oldFlows = q.oldFlows[1:]
				f.queued = false
				delete(q.flows, f.id)
			}
			continue
		}
		f.deficit -= p.WireSize
		return p
	}
}

// Len implements Queue.
func (q *FQCoDel) Len() int { return q.npkts }

// Bytes implements Queue.
func (q *FQCoDel) Bytes() int { return q.bytes }

// Stats implements Queue.
func (q *FQCoDel) Stats() QueueStats { return q.stats }

// FlowTableSize reports how many flows currently hold queue state (tests
// use it to prove churn does not leak).
func (q *FQCoDel) FlowTableSize() int { return len(q.flows) }
