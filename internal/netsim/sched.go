package netsim

// DRR is a deficit-round-robin weighted fair queue. It is the mechanism the
// testbed uses to impose a controlled bandwidth allocation at the bottleneck
// for the paper's Figure 1 sweep: per-flow FIFO queues are served in
// proportion to their weights, and the discipline is work-conserving, so
// when one flow finishes the survivor immediately receives the full link —
// exactly "allowing the remaining flow to use the rest of the link" (§1).
//
// A flow with weight 0 is served only when every weighted flow is idle,
// which yields strict priority and therefore the "full speed, then idle"
// schedule at the extremes of the sweep.
type DRR struct {
	// CapBytes bounds the total buffered bytes across all flows
	// (0 = unbounded). Arrivals beyond the cap are dropped.
	CapBytes int
	// MarkBytes, if positive, applies DCTCP-style CE marking when total
	// queued bytes exceed the threshold at arrival.
	MarkBytes int

	// quantumUnit is the byte quantum corresponding to weight 1.0.
	quantumUnit int

	flows map[FlowID]*drrFlow
	// active and background are round-robin rings of backlogged flows.
	active     []*drrFlow
	background []*drrFlow
	bytes      int
	stats      QueueStats
}

type drrFlow struct {
	id        FlowID
	weight    float64
	quantum   int
	deficit   int
	pkts      pktRing
	bytes     int
	inRing    bool
	isServing bool // currently at the head of the ring mid-quantum
	closed    bool // released while backlogged; reclaim once the queue drains
}

// NewDRR returns a weighted fair queue with the given shared byte capacity
// (0 = unbounded) and ECN mark threshold (0 = no marking). Flows default to
// weight 1 on first arrival; call SetWeight to change the allocation.
func NewDRR(capBytes, markBytes int) *DRR {
	return &DRR{
		CapBytes:    capBytes,
		MarkBytes:   markBytes,
		quantumUnit: 1 << 20, // large vs any MTU so one visit usually suffices
		flows:       make(map[FlowID]*drrFlow),
	}
}

// SetWeight assigns the scheduling weight for a flow. Weight 0 demotes the
// flow to the background (strict-lowest-priority) class. Negative weights
// panic.
func (q *DRR) SetWeight(id FlowID, w float64) {
	if w < 0 {
		panic("netsim: negative DRR weight")
	}
	f := q.flow(id)
	f.weight = w
	f.quantum = int(w * float64(q.quantumUnit))
	if f.quantum == 0 && w > 0 {
		f.quantum = 1
	}
	// A weight change while backlogged moves the flow between rings.
	if f.inRing {
		q.removeFromRings(f)
		q.insert(f)
	}
}

// Weight returns the configured weight for a flow (1 if never set).
func (q *DRR) Weight(id FlowID) float64 { return q.flow(id).weight }

func (q *DRR) flow(id FlowID) *drrFlow {
	f, ok := q.flows[id]
	if !ok {
		f = &drrFlow{id: id, weight: 1, quantum: q.quantumUnit} //greenvet:allow hotpathalloc one allocation per new flow, not per packet
		q.flows[id] = f
	}
	return f
}

// Release reclaims the per-flow state auto-created by Enqueue/SetWeight once
// a flow tears down. Without it, long churn sweeps (incast with thousands of
// short flows) grow the flow table without bound. An idle flow is removed
// immediately; a backlogged flow is marked closed and reclaimed as soon as
// its queue drains, so no buffered packet is ever discarded by teardown. A
// packet arriving after Release (a stray retransmit) simply re-creates the
// flow at the default weight.
func (q *DRR) Release(id FlowID) {
	f, ok := q.flows[id]
	if !ok {
		return
	}
	if f.pkts.Len() > 0 {
		f.closed = true
		return
	}
	if f.inRing {
		q.removeFromRings(f)
	}
	delete(q.flows, id)
}

// FlowTableSize reports how many flows currently hold scheduler state,
// including closed-but-draining flows. Tests use it to prove churn runs
// hold a steady-state table size.
func (q *DRR) FlowTableSize() int { return len(q.flows) }

func (q *DRR) insert(f *drrFlow) {
	f.inRing = true
	f.isServing = false
	f.deficit = 0
	if f.weight == 0 {
		q.background = append(q.background, f) //greenvet:allow hotpathalloc ring grows to the flow count, then growth stops
	} else {
		q.active = append(q.active, f) //greenvet:allow hotpathalloc ring grows to the flow count, then growth stops
	}
}

func (q *DRR) removeFromRings(f *drrFlow) {
	rm := func(ring []*drrFlow) []*drrFlow {
		for i, g := range ring {
			if g == f {
				return append(ring[:i], ring[i+1:]...)
			}
		}
		return ring
	}
	q.active = rm(q.active)
	q.background = rm(q.background)
	f.inRing = false
	f.isServing = false
}

// Enqueue implements Queue.
//
//greenvet:hotpath
func (q *DRR) Enqueue(p *Packet) bool {
	if q.CapBytes > 0 && q.bytes+p.WireSize > q.CapBytes {
		q.stats.DroppedPackets++
		q.stats.DroppedBytes += uint64(p.WireSize)
		return false
	}
	if q.MarkBytes > 0 && q.bytes >= q.MarkBytes && p.Flags.Has(FlagECT) {
		p.Flags |= FlagCE
		q.stats.MarkedCE++
	}
	f := q.flow(p.Flow)
	f.pkts.Push(p)
	f.bytes += p.WireSize
	q.bytes += p.WireSize
	q.stats.EnqueuedPackets++
	if q.bytes > q.stats.MaxBytes {
		q.stats.MaxBytes = q.bytes
	}
	if !f.inRing {
		q.insert(f)
	}
	return true
}

// Dequeue implements Queue. It serves weighted flows by deficit round
// robin and falls back to the background ring only when no weighted flow is
// backlogged.
//
//greenvet:hotpath
func (q *DRR) Dequeue() *Packet {
	if p := q.dequeueRing(&q.active, true); p != nil {
		return p
	}
	return q.dequeueRing(&q.background, false)
}

func (q *DRR) dequeueRing(ring *[]*drrFlow, useDeficit bool) *Packet {
	// Each backlogged flow receives at most one quantum refresh per pass,
	// so the loop is bounded: with B backlogged flows, at most B visits
	// occur before some deficit reaches the head packet size, because
	// quantums are positive. A generous iteration cap guards against
	// bugs rather than expected behaviour.
	for guard := 0; len(*ring) > 0; guard++ {
		if guard > 1<<22 {
			panic("netsim: DRR failed to schedule a packet (internal bug)")
		}
		f := (*ring)[0]
		head := f.pkts.Peek()
		if useDeficit {
			if !f.isServing {
				f.deficit += f.quantum
				f.isServing = true
			}
			if f.deficit < head.WireSize {
				// Rotate: this flow waits for its next visit.
				f.isServing = false
				*ring = append((*ring)[1:], f) //greenvet:allow hotpathalloc rotation: the slice just shed its head, so capacity suffices and this never grows
				continue
			}
			f.deficit -= head.WireSize
		}
		f.pkts.Pop()
		f.bytes -= head.WireSize
		q.bytes -= head.WireSize
		if f.pkts.Len() == 0 {
			*ring = (*ring)[1:]
			f.inRing = false
			f.isServing = false
			f.deficit = 0
			if f.closed {
				delete(q.flows, f.id)
			}
		}
		return head
	}
	return nil
}

// Len implements Queue.
func (q *DRR) Len() int {
	n := 0
	for _, f := range q.flows {
		n += f.pkts.Len()
	}
	return n
}

// Bytes implements Queue.
func (q *DRR) Bytes() int { return q.bytes }

// Stats implements Queue.
func (q *DRR) Stats() QueueStats { return q.stats }

// FlowBytes reports the bytes currently queued for one flow.
func (q *DRR) FlowBytes(id FlowID) int {
	if f, ok := q.flows[id]; ok {
		return f.bytes
	}
	return 0
}
