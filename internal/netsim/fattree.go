package netsim

import (
	"fmt"

	"greenenvy/internal/sim"
)

// This file builds the k-ary fat-tree (Al-Fares et al., SIGCOMM 2008) the
// ROADMAP's datacenter-scale experiments run on: k pods of k/2 edge and k/2
// aggregation switches, (k/2)² core switches, and k³/4 hosts. Routing is
// the switch's table machinery — exact routes for a rack's own hosts, range
// routes for pods, and ECMP over the equal-cost uplinks — so the topology
// is wired entirely from the existing Switch/Link/Host primitives.

// PortTier classifies a fat-tree port by its tier and direction.
type PortTier int

const (
	// TierHostUp is the host's NIC toward its edge switch.
	TierHostUp PortTier = iota
	// TierHostDown is the edge switch port toward one host (the incast
	// bottleneck in fan-in experiments).
	TierHostDown
	// TierEdgeUp is an edge switch uplink toward one aggregation switch.
	TierEdgeUp
	// TierAggDown is an aggregation switch port toward one edge switch.
	TierAggDown
	// TierAggUp is an aggregation switch uplink toward one core switch.
	TierAggUp
	// TierCoreDown is a core switch port toward one pod (the shared
	// bottleneck in cross-rack experiments).
	TierCoreDown
)

// String names the tier for link names and diagnostics.
func (t PortTier) String() string {
	switch t {
	case TierHostUp:
		return "host-up"
	case TierHostDown:
		return "host-down"
	case TierEdgeUp:
		return "edge-up"
	case TierAggDown:
		return "agg-down"
	case TierAggUp:
		return "agg-up"
	case TierCoreDown:
		return "core-down"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// FatTreePort identifies one port while the tree is being wired. The
// queue-discipline hook receives it so experiments can install a special
// queue (a DRR, a tiny buffer) on exactly the ports they study.
type FatTreePort struct {
	// Tier is the port's tier and direction.
	Tier PortTier
	// Pod is the pod the port's switch belongs to; for TierCoreDown it is
	// the destination pod; -1 when not applicable.
	Pod int
	// Switch is the owning switch's index within its tier (edge/agg:
	// within the pod; core: global).
	Switch int
	// Host is the attached host for TierHostUp/TierHostDown; -1 otherwise.
	Host NodeID
	// Port is the ordinal among the switch's ports of this tier (the
	// uplink number j, the downstream edge index, ...).
	Port int
}

// FatTreeConfig describes a k-ary fat-tree.
type FatTreeConfig struct {
	// K is the tree arity: k pods, k/2 edge + k/2 aggregation switches per
	// pod, (k/2)² cores, k³/4 hosts. Must be even and >= 2.
	K int
	// HostBps is the rate of host↔edge links.
	HostBps int64
	// EdgeAggBps is the rate of edge↔aggregation links.
	EdgeAggBps int64
	// AggCoreBps is the rate of aggregation↔core links.
	AggCoreBps int64
	// LinkDelay is the one-way propagation delay of every link.
	LinkDelay sim.Duration
	// SwitchDelay is the pipeline latency of every switch.
	SwitchDelay sim.Duration
	// BufferBytes sizes the default drop-tail queue on switch egress ports
	// (0 picks 1 MiB). Host NIC queues are unbounded, as on the dumbbell.
	BufferBytes int
	// MarkBytes is the DCTCP ECN threshold for default switch queues
	// (0 = no marking).
	MarkBytes int
	// ECMPSeed seeds the per-switch flow-hash salts. Same seed, same
	// spreading — part of the same-seed-same-bytes contract.
	ECMPSeed uint64
	// NewQueue, when non-nil, supplies the queue discipline per port;
	// returning nil falls back to the default for that port.
	NewQueue func(FatTreePort) Queue
}

// DefaultFatTree returns a k-ary tree with 10 Gb/s links at every tier,
// microsecond-scale datacenter latencies, and 1 MiB port buffers — the §3
// testbed's parameters extended to a fabric.
func DefaultFatTree(k int) FatTreeConfig {
	return FatTreeConfig{
		K:           k,
		HostBps:     10_000_000_000,
		EdgeAggBps:  10_000_000_000,
		AggCoreBps:  10_000_000_000,
		LinkDelay:   5 * sim.Microsecond,
		SwitchDelay: sim.Microsecond,
		BufferBytes: 1 << 20,
	}
}

// FatTree is an assembled fat-tree topology. Hosts are numbered 0..k³/4-1
// in pod-major order: host h lives in pod h/(k²/4), on edge switch
// (h mod k²/4)/(k/2).
type FatTree struct {
	// Engine is the single engine driving the whole fabric, or partition
	// 0's engine when the tree was built sharded (see Group).
	Engine *sim.Engine
	Config FatTreeConfig

	// Group is non-nil when the tree was built by NewFatTreeSharded: pods
	// and cores are spread over its partition engines per the
	// FatTreePartition scheme, with boundary links riding conduits.
	Group *sim.ShardGroup

	// Hosts, indexed by NodeID.
	Hosts []*Host
	// Edges and Aggs are flattened per pod: index pod*(k/2)+i.
	Edges []*Switch
	Aggs  []*Switch
	// Cores are the (k/2)² core switches; core c uplinks from agg c/(k/2)
	// of every pod.
	Cores []*Switch

	// hostDown[h] is the edge→host link delivering to host h.
	hostDown []*Link
	part     FatTreePartition
}

// NewFatTree wires up the topology described by cfg on a single engine.
func NewFatTree(engine *sim.Engine, cfg FatTreeConfig) *FatTree {
	return buildFatTree(cfg, fatTreeLayout{engine: engine})
}

// buildFatTree is the shared builder behind NewFatTree and
// NewFatTreeSharded. The two layouts must create switches and links in
// exactly the same order: ECMP salts are keyed by creation ordinal, so a
// divergence would silently re-route flows between the monolithic and
// sharded builds (and conduit ordinals, part of the sharded determinism
// contract, are fixed by the same order).
func buildFatTree(cfg FatTreeConfig, lay fatTreeLayout) *FatTree {
	if cfg.K < 2 || cfg.K%2 != 0 {
		panic(fmt.Sprintf("netsim: fat-tree arity k=%d must be even and >= 2", cfg.K))
	}
	if cfg.HostBps <= 0 || cfg.EdgeAggBps <= 0 || cfg.AggCoreBps <= 0 {
		panic("netsim: fat-tree link rates must be positive")
	}
	if cfg.BufferBytes == 0 {
		cfg.BufferBytes = 1 << 20
	}

	k := cfg.K
	half := k / 2
	hostsPerPod := half * half
	numHosts := k * hostsPerPod

	ft := &FatTree{
		Engine:   lay.pod(0),
		Config:   cfg,
		Group:    lay.group,
		Hosts:    make([]*Host, numHosts),
		Edges:    make([]*Switch, k*half),
		Aggs:     make([]*Switch, k*half),
		Cores:    make([]*Switch, half*half),
		hostDown: make([]*Link, numHosts),
		part:     lay.part,
	}

	queueFor := func(port FatTreePort) Queue {
		if cfg.NewQueue != nil {
			if q := cfg.NewQueue(port); q != nil {
				return q
			}
		}
		if port.Tier == TierHostUp {
			return NewDropTail(0, 0)
		}
		return NewDropTail(cfg.BufferBytes, cfg.MarkBytes)
	}

	// Per-switch ECMP salts: a Mix64 chain over the seed and a stable
	// switch ordinal, so different switches decorrelate the same flow
	// population while staying a pure function of the seed.
	ordinal := uint64(0)
	salt := func() uint64 {
		ordinal++
		return sim.Mix64(cfg.ECMPSeed ^ ordinal*0x9E3779B97F4A7C15)
	}
	// The longest path crosses edge, agg, core, agg, edge: 5 switch hops.
	// One hop of margin turns a wiring mistake into a prompt diagnostic.
	const ttl = 6
	newSwitch := func(eng *sim.Engine, name string) *Switch {
		s := NewSwitch(eng, name, cfg.SwitchDelay)
		s.SetTTL(ttl)
		s.SetECMPSalt(salt())
		return s
	}

	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			ft.Edges[p*half+i] = newSwitch(lay.pod(p), fmt.Sprintf("edge-p%d-e%d", p, i))
			ft.Aggs[p*half+i] = newSwitch(lay.pod(p), fmt.Sprintf("agg-p%d-a%d", p, i))
		}
	}
	for c := range ft.Cores {
		ft.Cores[c] = newSwitch(lay.core(c), fmt.Sprintf("core-%d", c))
	}

	// Hosts and the host↔edge tier (always pod-internal).
	for h := 0; h < numHosts; h++ {
		p := h / hostsPerPod
		e := (h % hostsPerPod) / half
		eng := lay.pod(p)
		edge := ft.Edges[p*half+e]
		host := NewHost(NodeID(h), fmt.Sprintf("h%d", h))
		ft.Hosts[h] = host

		up := FatTreePort{Tier: TierHostUp, Pod: p, Switch: e, Host: NodeID(h), Port: h % half}
		host.SetEgress(NewLink(eng, fmt.Sprintf("h%d-up", h), cfg.HostBps, cfg.LinkDelay, queueFor(up), edge))

		down := FatTreePort{Tier: TierHostDown, Pod: p, Switch: e, Host: NodeID(h), Port: h % half}
		l := NewLink(eng, fmt.Sprintf("%s->h%d", edge.Name, h), cfg.HostBps, cfg.LinkDelay, queueFor(down), host)
		ft.hostDown[h] = l
		edge.Connect(NodeID(h), l)
	}

	// Edge uplinks: every edge reaches each of its pod's aggs; all other
	// destinations ECMP across them (the exact host routes above win for
	// the rack's own hosts).
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			edge := ft.Edges[p*half+e]
			ups := make([]Handler, half)
			for a := 0; a < half; a++ {
				port := FatTreePort{Tier: TierEdgeUp, Pod: p, Switch: e, Host: -1, Port: a}
				ups[a] = NewLink(lay.pod(p), fmt.Sprintf("%s->%s", edge.Name, ft.Aggs[p*half+a].Name),
					cfg.EdgeAggBps, cfg.LinkDelay, queueFor(port), ft.Aggs[p*half+a])
			}
			edge.ConnectRange(0, NodeID(numHosts-1), ups...)
		}
	}

	// Agg tier: per-edge host ranges downward; everything else ECMPs
	// across the agg's core uplinks (the narrower pod-local ranges win).
	for p := 0; p < k; p++ {
		for a := 0; a < half; a++ {
			agg := ft.Aggs[p*half+a]
			for e := 0; e < half; e++ {
				lo := NodeID(p*hostsPerPod + e*half)
				port := FatTreePort{Tier: TierAggDown, Pod: p, Switch: a, Host: -1, Port: e}
				down := NewLink(lay.pod(p), fmt.Sprintf("%s->%s", agg.Name, ft.Edges[p*half+e].Name),
					cfg.EdgeAggBps, cfg.LinkDelay, queueFor(port), ft.Edges[p*half+e])
				agg.ConnectRange(lo, lo+NodeID(half-1), down)
			}
			ups := make([]Handler, half)
			for j := 0; j < half; j++ {
				c := a*half + j
				core := ft.Cores[c]
				port := FatTreePort{Tier: TierAggUp, Pod: p, Switch: a, Host: -1, Port: j}
				up := NewLink(lay.pod(p), fmt.Sprintf("%s->%s", agg.Name, core.Name),
					cfg.AggCoreBps, cfg.LinkDelay, queueFor(port), core)
				lay.bindPodToCore(up, p, c, core)
				ups[j] = up
			}
			agg.ConnectRange(0, NodeID(numHosts-1), ups...)
		}
	}

	// Core tier: one downlink per pod, to the agg this core belongs to.
	// No default route — an address outside the tree is a counted drop.
	for c, core := range ft.Cores {
		a := c / half
		for p := 0; p < k; p++ {
			agg := ft.Aggs[p*half+a]
			port := FatTreePort{Tier: TierCoreDown, Pod: p, Switch: c, Host: -1, Port: p}
			down := NewLink(lay.core(c), fmt.Sprintf("%s->%s", core.Name, agg.Name),
				cfg.AggCoreBps, cfg.LinkDelay, queueFor(port), agg)
			lay.bindCoreToPod(down, c, p, agg)
			core.ConnectRange(NodeID(p*hostsPerPod), NodeID((p+1)*hostsPerPod-1), down)
		}
	}
	return ft
}

// NumHosts returns k³/4.
func (ft *FatTree) NumHosts() int { return len(ft.Hosts) }

// Pod returns the pod index of host h.
func (ft *FatTree) Pod(h NodeID) int {
	half := ft.Config.K / 2
	return int(h) / (half * half)
}

// HostDownlink returns the edge→host link delivering to h: the port whose
// queue an incast converges on.
func (ft *FatTree) HostDownlink(h NodeID) *Link { return ft.hostDown[h] }

// Switches returns every switch in the fabric (edges, aggs, cores).
func (ft *FatTree) Switches() []*Switch {
	out := make([]*Switch, 0, len(ft.Edges)+len(ft.Aggs)+len(ft.Cores))
	out = append(out, ft.Edges...)
	out = append(out, ft.Aggs...)
	return append(out, ft.Cores...)
}

// PathFor returns the links a packet of the given flow tuple traverses from
// src to dst, resolved through the same tables and ECMP hashes forwarding
// uses, without injecting traffic. Experiments use it to find flows that
// collide on a particular core link. It returns nil if the walk leaves the
// routed fabric.
func (ft *FatTree) PathFor(flow FlowID, src, dst NodeID) []*Link {
	if int(src) >= len(ft.Hosts) {
		return nil
	}
	l, ok := ft.Hosts[src].egress.(*Link)
	if !ok {
		return nil
	}
	path := []*Link{l}
	for hops := 0; hops < 8; hops++ {
		sw, ok := l.Dst().(*Switch)
		if !ok {
			return path // reached a host
		}
		out := sw.RouteFor(flow, src, dst)
		if out == nil {
			return nil
		}
		if l, ok = out.(*Link); !ok {
			return nil
		}
		path = append(path, l)
	}
	return nil
}

// FatTreeArityFor returns the smallest even arity k >= 4 whose k³/4 hosts
// fit n senders plus one receiver — the fabric-sizing rule the incast
// experiments share.
func FatTreeArityFor(n int) int {
	for k := 4; ; k += 2 {
		if k*k*k/4 >= n+1 {
			return k
		}
	}
}

// IncastHosts picks n sender hosts spread round-robin across the tree's
// edge switches (racks), skipping the receiver at host 0: host
// h = edge*(k/2) + slot, filling slot 0 on every rack before slot 1. The
// spread maximizes cross-rack fan-in toward the receiver's edge downlink.
func IncastHosts(k, n int) []NodeID {
	half := k / 2
	numEdges := k * k / 2
	hosts := make([]NodeID, 0, n)
	for slot := 0; slot < half && len(hosts) < n; slot++ {
		for e := 0; e < numEdges && len(hosts) < n; e++ {
			h := NodeID(e*half + slot)
			if h == 0 {
				continue // the receiver's slot
			}
			hosts = append(hosts, h)
		}
	}
	return hosts
}
