package netsim

import (
	"testing"

	"greenenvy/internal/sim"
)

// TestFatTreePartitionTotality checks that every pod, core and host lands
// on exactly one in-range shard, for a spread of arities. Totality is the
// precondition for the shard-isolation contract: an element outside every
// shard would have no owning engine at all.
func TestFatTreePartitionTotality(t *testing.T) {
	for _, k := range []int{1, 2, 4, 6, 8} {
		part := FatTreePartition{K: k}
		if part.Shards() != k {
			t.Fatalf("k=%d: %d shards, want one per pod", k, part.Shards())
		}
		for pod := 0; pod < k; pod++ {
			if s := part.PodShard(pod); s < 0 || s >= part.Shards() {
				t.Errorf("k=%d: pod %d on out-of-range shard %d", k, pod, s)
			}
		}
		for c := 0; c < (k/2+1)*(k/2+1); c++ {
			if s := part.CoreShard(c); s < 0 || s >= part.Shards() {
				t.Errorf("k=%d: core %d on out-of-range shard %d", k, c, s)
			}
		}
	}

	// On a built tree, every host's shard must be in range and agree with
	// the pod arithmetic.
	g := sim.NewShardGroup(4)
	ft := NewFatTreeSharded(g, DefaultFatTree(4))
	for h := 0; h < ft.NumHosts(); h++ {
		s := ft.ShardOfHost(NodeID(h))
		if s < 0 || s >= g.Shards() {
			t.Fatalf("host %d on out-of-range shard %d", h, s)
		}
		if want := ft.Partition().PodShard(ft.Pod(NodeID(h))); s != want {
			t.Fatalf("host %d on shard %d, pod arithmetic says %d", h, s, want)
		}
		if ft.EngineOf(NodeID(h)) != g.Engine(s) {
			t.Fatalf("host %d driven by a different engine than its shard's", h)
		}
	}
}

// TestSingleShardLayoutEqualsMonolithic pins the degenerate partition: with
// one shard (or no group at all) every element maps to the same engine and
// no link is ever diverted through a conduit — the build is the monolithic
// build.
func TestSingleShardLayoutEqualsMonolithic(t *testing.T) {
	g := sim.NewShardGroup(1)
	lay := fatTreeLayout{group: g, part: FatTreePartition{K: 1}}
	for c := 0; c < 9; c++ {
		if lay.core(c) != g.Engine(0) {
			t.Fatalf("core %d not on the single shard's engine", c)
		}
	}
	if lay.pod(0) != g.Engine(0) {
		t.Fatal("pod 0 not on the single shard's engine")
	}
	sink := HandlerFunc(func(*Packet) {})
	lnk := NewLink(g.Engine(0), "same-shard", 1e9, sim.Microsecond, NewDropTail(0, 0), sink)
	lay.bindAcross(lnk, 0, 0, sink)
	if lnk.remote != nil {
		t.Fatal("same-shard bindAcross installed a conduit; the direct wire must stay")
	}

	// No group at all: the bind helpers are no-ops and both element lookups
	// return the monolithic engine.
	e := sim.NewEngine()
	mono := fatTreeLayout{engine: e}
	if mono.pod(3) != e || mono.core(7) != e {
		t.Fatal("monolithic layout must route every element to the one engine")
	}
	mlnk := NewLink(e, "mono", 1e9, sim.Microsecond, NewDropTail(0, 0), sink)
	mono.bindPodToCore(mlnk, 0, 1, sink)
	mono.bindCoreToPod(mlnk, 1, 0, sink)
	if mlnk.remote != nil {
		t.Fatal("monolithic layout must never install conduits")
	}
}

// TestShardedFatTreeMatchesMonolithic delivers one packet between every
// ordered host pair on a sharded k=4 tree and checks the partition's
// contract against the monolithic build: the same flows arrive (routing and
// ECMP are identical), nothing is dropped for lack of a route, and the
// sharded arrival times are byte-identical for every worker count. Arrival
// instants under contention may legitimately differ from the monolithic
// build — simultaneous arrivals from different pods tie-break through
// per-shard heaps and conduit ordinals instead of one global heap — so
// exact timing equality is asserted only for an uncontended probe packet.
func TestShardedFatTreeMatchesMonolithic(t *testing.T) {
	cfg := DefaultFatTree(4)
	cfg.ECMPSeed = 7

	// Monolithic reference: arrival time per flow.
	e := sim.NewEngine()
	mono := NewFatTree(e, cfg)
	n := mono.NumHosts()
	wantAt := make(map[FlowID]sim.Time)
	inject := func(ft *FatTree, record func(dst NodeID, id FlowID, at sim.Time)) {
		flow := FlowID(0)
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src == dst {
					continue
				}
				flow++
				id, to := flow, NodeID(dst)
				eng := ft.EngineOf(to)
				ft.Hosts[dst].Attach(id, HandlerFunc(func(p *Packet) { record(to, id, eng.Now()) }))
				ft.Hosts[src].Send(&Packet{Flow: id, Dst: to, WireSize: 1500})
			}
		}
	}
	inject(mono, func(_ NodeID, id FlowID, at sim.Time) { wantAt[id] = at })
	e.Run()

	// Sharded build under every worker count: each destination's handler
	// runs on its own pod's shard, so arrivals are recorded per pod and
	// merged after the run.
	var baseline map[FlowID]sim.Time
	for _, workers := range []int{1, 2, 4} {
		g := sim.NewShardGroup(4)
		ft := NewFatTreeSharded(g, cfg)
		perPod := make([]map[FlowID]sim.Time, 4)
		for p := range perPod {
			perPod[p] = make(map[FlowID]sim.Time)
		}
		inject(ft, func(dst NodeID, id FlowID, at sim.Time) { perPod[ft.Pod(dst)][id] = at })
		g.Run(sim.Second, workers)

		gotAt := make(map[FlowID]sim.Time, len(wantAt))
		for _, m := range perPod {
			for id, at := range m {
				gotAt[id] = at
			}
		}
		if len(gotAt) != len(wantAt) {
			t.Fatalf("workers=%d: %d deliveries, monolithic had %d", workers, len(gotAt), len(wantAt))
		}
		for id := range wantAt {
			if _, ok := gotAt[id]; !ok {
				t.Fatalf("workers=%d: flow %d delivered monolithically but not sharded", workers, id)
			}
		}
		for _, sw := range ft.Switches() {
			if sw.DroppedNoRoute != 0 {
				t.Fatalf("workers=%d: switch %s dropped %d packets with no route", workers, sw.Name, sw.DroppedNoRoute)
			}
		}
		if baseline == nil {
			baseline = gotAt
			continue
		}
		for id, want := range baseline {
			if gotAt[id] != want {
				t.Fatalf("workers=%d: flow %d arrived at %d, workers=1 at %d", workers, id, gotAt[id], want)
			}
		}
	}

	// Uncontended probe: one lone inter-pod packet meets no queueing, so the
	// cut must reproduce the monolithic arrival instant exactly — the
	// conduit spends precisely the wire's propagation delay.
	probe := func(build func() *FatTree, run func(*FatTree)) sim.Time {
		ft := build()
		var at sim.Time
		eng := ft.EngineOf(12)
		ft.Hosts[12].Attach(9999, HandlerFunc(func(p *Packet) { at = eng.Now() }))
		ft.Hosts[0].Send(&Packet{Flow: 9999, Dst: 12, WireSize: 1500})
		run(ft)
		return at
	}
	monoAt := probe(
		func() *FatTree { return NewFatTree(sim.NewEngine(), cfg) },
		func(ft *FatTree) { ft.Engine.Run() },
	)
	shardAt := probe(
		func() *FatTree { return NewFatTreeSharded(sim.NewShardGroup(4), cfg) },
		func(ft *FatTree) { ft.Group.Run(sim.Second, 2) },
	)
	if monoAt == 0 || shardAt != monoAt {
		t.Fatalf("uncontended probe arrived at %d sharded, %d monolithic", shardAt, monoAt)
	}
}

// TestNewFatTreeShardedValidation checks the constructor's guard rails: the
// group must hold exactly one shard per pod, and the link delay must be
// positive because it doubles as the conservative synchronizer's lookahead.
func TestNewFatTreeShardedValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("wrong group size", func() {
		NewFatTreeSharded(sim.NewShardGroup(3), DefaultFatTree(4))
	})
	mustPanic("zero link delay", func() {
		cfg := DefaultFatTree(4)
		cfg.LinkDelay = 0
		NewFatTreeSharded(sim.NewShardGroup(4), cfg)
	})
}

// TestSetRemoteRejectsOutOfBoundary checks that a link refuses a conduit
// that does not match its own propagation stage: a nil conduit, a conduit
// whose lookahead disagrees with the link delay, or a rebind after packets
// have already ridden the local delay line.
func TestSetRemoteRejectsOutOfBoundary(t *testing.T) {
	sink := HandlerFunc(func(*Packet) {})
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}

	g := sim.NewShardGroup(2)
	lnk := NewLink(g.Engine(0), "cut", 1e9, 5*sim.Microsecond, NewDropTail(0, 0), sink)
	mustPanic("nil conduit", func() { lnk.SetRemote(nil) })
	mustPanic("lookahead mismatch", func() {
		lnk.SetRemote(sim.NewConduit(g, 0, 1, sim.Microsecond, sink.HandlePacket))
	})
	// A matching conduit is accepted.
	lnk.SetRemote(sim.NewConduit(g, 0, 1, 5*sim.Microsecond, sink.HandlePacket))

	// Traffic first, rebind second: rejected, because packets in flight on
	// the local delay line would race conduit deliveries.
	g2 := sim.NewShardGroup(2)
	used := NewLink(g2.Engine(0), "used", 1e9, 5*sim.Microsecond, NewDropTail(0, 0), sink)
	used.HandlePacket(&Packet{WireSize: 100})
	g2.Engine(0).Run()
	mustPanic("SetRemote after traffic", func() {
		used.SetRemote(sim.NewConduit(g2, 0, 1, 5*sim.Microsecond, sink.HandlePacket))
	})
}
