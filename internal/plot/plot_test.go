package plot

import (
	"math"
	"strings"
	"testing"
)

func lineChart() Chart {
	return Chart{
		Title: "t", XLabel: "x", YLabel: "y", Kind: "line",
		Series: []Series{{Name: "a", X: []float64{0, 1, 2}, Y: []float64{1, 4, 9}}},
	}
}

func TestLineChartRenders(t *testing.T) {
	svg, err := lineChart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "</svg>", "<polyline", ">t<", ">x<", ">y<"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q:\n%s", want, svg[:200])
		}
	}
}

func TestScatterChartRenders(t *testing.T) {
	c := lineChart()
	c.Kind = "scatter"
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(svg, "<circle") != 3 {
		t.Fatalf("want 3 circles, got %d", strings.Count(svg, "<circle"))
	}
}

func TestBarChartRenders(t *testing.T) {
	c := Chart{
		Title: "bars", Kind: "bar",
		XTickLabels: []string{"a", "b"},
		Series: []Series{
			{Name: "s1", X: []float64{0, 1}, Y: []float64{2, 3}},
			{Name: "s2", X: []float64{0, 1}, Y: []float64{1, 5}},
		},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	// 4 bars plus 2 legend swatches plus background.
	if got := strings.Count(svg, "<rect"); got != 7 {
		t.Fatalf("rect count = %d, want 7", got)
	}
	if !strings.Contains(svg, ">a<") || !strings.Contains(svg, ">b<") {
		t.Fatal("category labels missing")
	}
}

func TestLogXScatter(t *testing.T) {
	c := Chart{
		Title: "log", Kind: "scatter", LogX: true,
		Series: []Series{{Name: "s", X: []float64{1, 100, 1e6}, Y: []float64{1, 2, 3}}},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "1e0") || !strings.Contains(svg, "1e6") {
		t.Fatal("log ticks missing")
	}
}

func TestLogXClampsZero(t *testing.T) {
	c := Chart{
		Kind: "scatter", LogX: true,
		Series: []Series{{X: []float64{0, 10}, Y: []float64{1, 2}}},
	}
	if _, err := c.SVG(); err != nil {
		t.Fatalf("zero count on log axis: %v", err)
	}
}

func TestChartValidation(t *testing.T) {
	if _, err := (Chart{Kind: "line"}).SVG(); err == nil {
		t.Error("no series accepted")
	}
	if _, err := (Chart{Kind: "pie", Series: lineChart().Series}).SVG(); err == nil {
		t.Error("unknown kind accepted")
	}
	bad := Chart{Kind: "line", Series: []Series{{X: []float64{1}, Y: []float64{1, 2}}}}
	if _, err := bad.SVG(); err == nil {
		t.Error("mismatched series accepted")
	}
	empty := Chart{Kind: "line", Series: []Series{{}}}
	if _, err := empty.SVG(); err == nil {
		t.Error("empty series accepted")
	}
}

func TestEscape(t *testing.T) {
	c := lineChart()
	c.Title = "a<b & c>d"
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "a&lt;b &amp; c&gt;d") {
		t.Fatal("title not escaped")
	}
}

func TestTicksRound(t *testing.T) {
	ts := ticks(0, 10, 6)
	if len(ts) < 3 {
		t.Fatalf("ticks = %v", ts)
	}
	for _, v := range ts {
		if v < 0 || v > 10.001 {
			t.Fatalf("tick %v outside range", v)
		}
	}
	// Degenerate range.
	if got := ticks(5, 5, 4); len(got) != 2 {
		t.Fatalf("degenerate ticks = %v", got)
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{
		2_500_000: "2.5M",
		25_000:    "25k",
		42:        "42",
		0.25:      "0.25",
		3:         "3",
	}
	for v, want := range cases {
		if got := fmtTick(v); got != want {
			t.Errorf("fmtTick(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestSortSeriesByX(t *testing.T) {
	s := Series{X: []float64{3, 1, 2}, Y: []float64{30, 10, 20}}
	SortSeriesByX(&s)
	for i, want := range []float64{1, 2, 3} {
		if s.X[i] != want || s.Y[i] != want*10 {
			t.Fatalf("sorted = %v / %v", s.X, s.Y)
		}
	}
}

func TestConstantSeriesBounds(t *testing.T) {
	c := Chart{Kind: "line", Series: []Series{{X: []float64{1, 1}, Y: []float64{5, 5}}}}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Fatal("degenerate bounds leaked NaN/Inf")
	}
	_ = math.Pi
}
