// Package plot is a small stdlib-only SVG chart renderer used to draw the
// paper's figures from regenerated data: line charts (Figures 1–4), grouped
// bar charts (Figures 5–6), and scatter plots with optional logarithmic x
// axes (Figures 7–8).
//
// It intentionally supports exactly what the paper's figures need — one
// x/y plane, multiple named series, ticks, labels, and a legend — and emits
// self-contained SVG documents.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named data set.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart describes a figure to render.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Kind selects the mark: "line", "scatter", or "bar".
	Kind string
	// LogX uses a log10 x axis (scatter only; Figure 8's retransmission
	// axis).
	LogX bool
	// Series holds the data. For bar charts, every series must share the
	// same X positions (category indices).
	Series []Series
	// XTickLabels overrides numeric x ticks (bar categories).
	XTickLabels []string

	// Width and Height default to 720×440.
	Width, Height int
}

// palette holds the series colors (Okabe–Ito, colorblind-safe).
var palette = []string{
	"#0072B2", "#E69F00", "#009E73", "#D55E00", "#CC79A7",
	"#56B4E9", "#F0E442", "#000000", "#999999", "#8E44AD",
}

type bounds struct{ xmin, xmax, ymin, ymax float64 }

// SVG renders the chart.
func (c Chart) SVG() (string, error) {
	if len(c.Series) == 0 {
		return "", fmt.Errorf("plot: no series")
	}
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plot: series %q has %d x and %d y values", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return "", fmt.Errorf("plot: series %q is empty", s.Name)
		}
	}
	switch c.Kind {
	case "line", "scatter", "bar":
	default:
		return "", fmt.Errorf("plot: unknown kind %q", c.Kind)
	}
	w, h := c.Width, c.Height
	if w == 0 {
		w = 720
	}
	if h == 0 {
		h = 440
	}
	const (
		left, right, top, bottom = 70, 20, 40, 55
	)
	pw, ph := float64(w-left-right), float64(h-top-bottom)

	b, err := c.bounds()
	if err != nil {
		return "", err
	}

	xpos := func(x float64) float64 {
		if c.LogX {
			x = math.Log10(x)
		}
		return float64(left) + (x-b.xmin)/(b.xmax-b.xmin)*pw
	}
	ypos := func(y float64) float64 {
		return float64(top) + ph - (y-b.ymin)/(b.ymax-b.ymin)*ph
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="12">`+"\n", w, h, w, h)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&sb, `<text x="%d" y="22" text-anchor="middle" font-size="15">%s</text>`+"\n", w/2, esc(c.Title))

	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", left, top, left, h-bottom)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", left, h-bottom, w-right, h-bottom)
	fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n", w/2, h-12, esc(c.XLabel))
	fmt.Fprintf(&sb, `<text x="18" y="%d" text-anchor="middle" transform="rotate(-90 18 %d)">%s</text>`+"\n", h/2, h/2, esc(c.YLabel))

	// Ticks.
	c.renderXTicks(&sb, b, xpos, h-bottom)
	for _, ty := range ticks(b.ymin, b.ymax, 6) {
		y := ypos(ty)
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n", left, y, w-right, y)
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`+"\n", left-6, y+4, fmtTick(ty))
	}

	// Marks.
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		switch c.Kind {
		case "line":
			var pts []string
			for j := range s.X {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", xpos(s.X[j]), ypos(s.Y[j])))
			}
			fmt.Fprintf(&sb, `<polyline fill="none" stroke="%s" stroke-width="2" points="%s"/>`+"\n", color, strings.Join(pts, " "))
		case "scatter":
			for j := range s.X {
				fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="%s" fill-opacity="0.75"/>`+"\n", xpos(s.X[j]), ypos(s.Y[j]), color)
			}
		case "bar":
			group := pw / float64(len(s.X))
			bw := group / float64(len(c.Series)+1)
			for j := range s.X {
				x := float64(left) + group*float64(j) + bw*float64(i) + bw/2
				y := ypos(s.Y[j])
				fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
					x, y, bw, float64(h-bottom)-y, color)
			}
		}
	}

	// Legend.
	lx, ly := w-right-150, top+8
	for i, s := range c.Series {
		if s.Name == "" {
			continue
		}
		color := palette[i%len(palette)]
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n", lx, ly+i*18, color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d">%s</text>`+"\n", lx+17, ly+i*18+10, esc(s.Name))
	}

	sb.WriteString("</svg>\n")
	return sb.String(), nil
}

func (c Chart) bounds() (bounds, error) {
	b := bounds{math.Inf(1), math.Inf(-1), math.Inf(1), math.Inf(-1)}
	for _, s := range c.Series {
		for j := range s.X {
			x := s.X[j]
			if c.LogX {
				if x <= 0 {
					x = 1 // clamp zero counts onto the axis
				}
				x = math.Log10(x)
			}
			b.xmin = math.Min(b.xmin, x)
			b.xmax = math.Max(b.xmax, x)
			b.ymin = math.Min(b.ymin, s.Y[j])
			b.ymax = math.Max(b.ymax, s.Y[j])
		}
	}
	if c.Kind == "bar" {
		b.ymin = math.Min(b.ymin, 0)
		b.xmin -= 0.5
		b.xmax += 0.5
	}
	if b.ymin == b.ymax {
		b.ymax = b.ymin + 1
	}
	if b.xmin == b.xmax {
		b.xmax = b.xmin + 1
	}
	// Headroom above the data.
	b.ymax += (b.ymax - b.ymin) * 0.08
	return b, nil
}

func (c Chart) renderXTicks(sb *strings.Builder, b bounds, xpos func(float64) float64, axisY int) {
	if len(c.XTickLabels) > 0 {
		for j, lbl := range c.XTickLabels {
			x := xpos(float64(j))
			fmt.Fprintf(sb, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n", x, axisY+16, esc(lbl))
		}
		return
	}
	if c.LogX {
		for e := math.Floor(b.xmin); e <= math.Ceil(b.xmax); e++ {
			x := xpos(math.Pow(10, e))
			fmt.Fprintf(sb, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#bbb"/>`+"\n", x, axisY, x, axisY+4)
			fmt.Fprintf(sb, `<text x="%.1f" y="%d" text-anchor="middle">1e%d</text>`+"\n", x, axisY+16, int(e))
		}
		return
	}
	for _, tx := range ticks(b.xmin, b.xmax, 8) {
		x := xpos(tx)
		fmt.Fprintf(sb, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#bbb"/>`+"\n", x, axisY, x, axisY+4)
		fmt.Fprintf(sb, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n", x, axisY+16, fmtTick(tx))
	}
}

// ticks picks ~n round tick values covering [lo, hi].
func ticks(lo, hi float64, n int) []float64 {
	if n < 2 || hi <= lo {
		return []float64{lo, hi}
	}
	span := hi - lo
	step := math.Pow(10, math.Floor(math.Log10(span/float64(n))))
	for _, m := range []float64{1, 2, 5, 10} {
		if span/(step*m) <= float64(n) {
			step *= m
			break
		}
	}
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi+step/1e6; t += step {
		out = append(out, t)
	}
	return out
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av >= 10 || v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// SortSeriesByX sorts a series' points by x, keeping pairs aligned (useful
// before line rendering).
func SortSeriesByX(s *Series) {
	idx := make([]int, len(s.X))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
	nx := make([]float64, len(idx))
	ny := make([]float64, len(idx))
	for i, j := range idx {
		nx[i], ny[i] = s.X[j], s.Y[j]
	}
	s.X, s.Y = nx, ny
}
