package plot

import (
	"fmt"
	"strings"
)

// TextPanel renders a titled block of monospace text as a self-contained
// SVG document. Experiments whose natural output is a report rather than a
// chart — theorem checks, ablation tables — use it so every registered
// experiment can render an SVG figure.
func TextPanel(title string, lines []string) (string, error) {
	if title == "" {
		return "", fmt.Errorf("plot: text panel needs a title")
	}
	const (
		charW      = 7.3 // monospace advance at font-size 12
		lineH      = 17
		top        = 46
		pad        = 16
		minW, minH = 360, 120
	)
	longest := len(title) * 2 // the title renders larger
	for _, l := range lines {
		if len(l) > longest {
			longest = len(l)
		}
	}
	w := int(float64(longest)*charW) + 2*pad
	if w < minW {
		w = minW
	}
	h := top + lineH*len(lines) + pad
	if h < minH {
		h = minH
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="12">`+"\n", w, h, w, h)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white" stroke="#ccc"/>`+"\n", w, h)
	fmt.Fprintf(&sb, `<text x="%d" y="24" font-size="15">%s</text>`+"\n", pad, esc(title))
	for i, l := range lines {
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="monospace" xml:space="preserve">%s</text>`+"\n",
			pad, top+i*lineH, esc(l))
	}
	sb.WriteString("</svg>\n")
	return sb.String(), nil
}
