// Package workload generates datacenter traffic for the testbed: flow
// sizes drawn from the empirical distributions the datacenter-transport
// literature standardizes on (the DCTCP paper's web-search workload and
// VL2's data-mining workload), with Poisson arrivals targeting a chosen
// offered load. The paper's §5 calls for evaluating the energy results
// "with the sorts of workloads used in production data centers"; this
// package provides them.
package workload

import (
	"fmt"
	"math"
	"sort"

	"greenenvy/internal/sim"
)

// SizeDist samples flow sizes in bytes.
type SizeDist interface {
	// Sample draws one flow size.
	Sample(rng *sim.RNG) uint64
	// Mean returns the distribution's mean flow size.
	Mean() float64
	// Name identifies the distribution in reports.
	Name() string
}

// Fixed is a degenerate distribution: every flow has the same size.
type Fixed uint64

// Sample implements SizeDist.
func (f Fixed) Sample(*sim.RNG) uint64 { return uint64(f) }

// Mean implements SizeDist.
func (f Fixed) Mean() float64 { return float64(f) }

// Name implements SizeDist.
func (f Fixed) Name() string { return fmt.Sprintf("fixed-%d", uint64(f)) }

// CDF is an empirical distribution given as (size, cumulative probability)
// knots; sampling inverts it with log-linear interpolation between knots
// (flow sizes span orders of magnitude).
type CDF struct {
	name  string
	sizes []float64 // bytes, ascending
	probs []float64 // cumulative, ascending, ending at 1
}

// NewCDF builds an empirical CDF. Knots must be ascending in both
// coordinates with the last probability equal to 1.
func NewCDF(name string, sizes, probs []float64) (CDF, error) {
	if len(sizes) != len(probs) || len(sizes) < 2 {
		return CDF{}, fmt.Errorf("workload: need matching knot slices with ≥2 points")
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] || probs[i] < probs[i-1] {
			return CDF{}, fmt.Errorf("workload: knots must ascend")
		}
	}
	if probs[len(probs)-1] != 1 {
		return CDF{}, fmt.Errorf("workload: CDF must end at probability 1")
	}
	return CDF{name: name, sizes: sizes, probs: probs}, nil
}

// Sample implements SizeDist by inverse-transform sampling.
func (c CDF) Sample(rng *sim.RNG) uint64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(c.probs, u)
	if i == 0 {
		return uint64(c.sizes[0])
	}
	if i >= len(c.probs) {
		return uint64(c.sizes[len(c.sizes)-1])
	}
	// Log-linear interpolation between knots.
	p0, p1 := c.probs[i-1], c.probs[i]
	frac := 0.5
	if p1 > p0 {
		frac = (u - p0) / (p1 - p0)
	}
	ls := math.Log(c.sizes[i-1]) + frac*(math.Log(c.sizes[i])-math.Log(c.sizes[i-1]))
	return uint64(math.Exp(ls))
}

// Mean implements SizeDist (numerically, from the knots).
func (c CDF) Mean() float64 {
	mean := 0.0
	for i := 1; i < len(c.sizes); i++ {
		// Geometric midpoint of the interval, weighted by its mass.
		mid := math.Sqrt(c.sizes[i-1] * c.sizes[i])
		mean += mid * (c.probs[i] - c.probs[i-1])
	}
	mean += c.sizes[0] * c.probs[0]
	return mean
}

// Name implements SizeDist.
func (c CDF) Name() string { return c.name }

// WebSearch is the flow-size distribution of the DCTCP paper's web-search
// cluster (Alizadeh et al. 2010, Fig 4): mostly small query/control flows
// with a heavy tail of multi-MB background transfers.
func WebSearch() CDF {
	c, err := NewCDF("websearch",
		[]float64{6e3, 13e3, 19e3, 33e3, 53e3, 133e3, 667e3, 1.33e6, 4e6, 13.3e6, 20e6, 30e6},
		[]float64{0.15, 0.20, 0.30, 0.40, 0.53, 0.60, 0.70, 0.80, 0.90, 0.97, 0.99, 1.0},
	)
	if err != nil {
		panic(err)
	}
	return c
}

// DataMining is the flow-size distribution of VL2's data-mining cluster
// (Greenberg et al. 2009): 80% of flows under 10 KB, with a tail reaching
// hundreds of MB (truncated here at 100 MB to keep reduced-scale runs
// bounded).
func DataMining() CDF {
	c, err := NewCDF("datamining",
		[]float64{100, 1e3, 2e3, 5e3, 10e3, 100e3, 1e6, 10e6, 50e6, 100e6},
		[]float64{0.02, 0.50, 0.63, 0.75, 0.80, 0.85, 0.92, 0.96, 0.99, 1.0},
	)
	if err != nil {
		panic(err)
	}
	return c
}

// Flow is one generated transfer.
type Flow struct {
	Start sim.Time
	Bytes uint64
}

// Generate produces flows with Poisson arrivals sized by dist, targeting
// the given offered load (fraction of linkBps) over the window. At least
// one flow is always produced. It drains a Stream into a slice — callers
// that can consume flows one at a time should use NewStream directly and
// skip the materialization.
func Generate(rng *sim.RNG, dist SizeDist, load float64, linkBps float64, window sim.Duration) ([]Flow, error) {
	if window <= 0 {
		// Preserve Generate's historical error wording for this case.
		return nil, fmt.Errorf("workload: need positive link rate and window")
	}
	s, err := NewStream(rng, dist, load, linkBps, window)
	if err != nil {
		return nil, err
	}
	var out []Flow
	for {
		f, ok := s.Next()
		if !ok {
			return out, nil
		}
		out = append(out, f)
	}
}

// OfferedLoad computes the actual offered load of a generated set. It is
// the slice form of OfferedLoadFrom.
func OfferedLoad(flows []Flow, linkBps float64, window sim.Duration) float64 {
	i := 0
	return OfferedLoadFrom(func() (Flow, bool) {
		if i >= len(flows) {
			return Flow{}, false
		}
		f := flows[i]
		i++
		return f, true
	}, linkBps, window)
}
