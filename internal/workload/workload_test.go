package workload

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"greenenvy/internal/sim"
)

func TestFixedDist(t *testing.T) {
	f := Fixed(1000)
	if f.Sample(sim.NewRNG(1)) != 1000 || f.Mean() != 1000 {
		t.Fatal("fixed distribution broken")
	}
	if f.Name() != "fixed-1000" {
		t.Fatalf("name = %q", f.Name())
	}
}

func TestNewCDFValidation(t *testing.T) {
	if _, err := NewCDF("x", []float64{1}, []float64{1}); err == nil {
		t.Error("single knot accepted")
	}
	if _, err := NewCDF("x", []float64{2, 1}, []float64{0.5, 1}); err == nil {
		t.Error("descending sizes accepted")
	}
	if _, err := NewCDF("x", []float64{1, 2}, []float64{0.9, 0.95}); err == nil {
		t.Error("CDF not ending at 1 accepted")
	}
	if _, err := NewCDF("x", []float64{1, 2}, []float64{0.5, 1}); err != nil {
		t.Errorf("valid CDF rejected: %v", err)
	}
}

func TestStandardDistributionsSane(t *testing.T) {
	rng := sim.NewRNG(42)
	for _, dist := range []SizeDist{WebSearch(), DataMining()} {
		if dist.Mean() <= 0 {
			t.Fatalf("%s mean = %v", dist.Name(), dist.Mean())
		}
		var sum float64
		n := 20000
		min, max := math.Inf(1), 0.0
		for i := 0; i < n; i++ {
			v := float64(dist.Sample(rng))
			if v <= 0 {
				t.Fatalf("%s sampled %v", dist.Name(), v)
			}
			sum += v
			min = math.Min(min, v)
			max = math.Max(max, v)
		}
		empMean := sum / float64(n)
		// Empirical mean within 3x of the analytic knot mean (heavy
		// tails make this loose by design).
		if empMean < dist.Mean()/3 || empMean > dist.Mean()*3 {
			t.Fatalf("%s empirical mean %v vs analytic %v", dist.Name(), empMean, dist.Mean())
		}
		if max/min < 100 {
			t.Fatalf("%s span %v–%v too narrow for a DC distribution", dist.Name(), min, max)
		}
	}
}

func TestWebSearchMedianBand(t *testing.T) {
	rng := sim.NewRNG(7)
	d := WebSearch()
	var sizes []float64
	for i := 0; i < 10001; i++ {
		sizes = append(sizes, float64(d.Sample(rng)))
	}
	// Median should land in the tens-of-KB band (CDF hits 0.53 at 53 KB).
	sort.Float64s(sizes)
	med := sizes[len(sizes)/2]
	if med < 10e3 || med > 120e3 {
		t.Fatalf("websearch median = %v, want tens of KB", med)
	}
}

func TestGenerateTargetsLoad(t *testing.T) {
	rng := sim.NewRNG(11)
	flows, err := Generate(rng, Fixed(1_250_000), 0.5, 10e9, 2*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Expected flow count: 0.5×10e9/8 bits/s ÷ 1.25MB = 500 flows/s × 2s.
	if len(flows) < 700 || len(flows) > 1300 {
		t.Fatalf("generated %d flows, want ~1000", len(flows))
	}
	got := OfferedLoad(flows, 10e9, 2*sim.Second)
	if math.Abs(got-0.5) > 0.1 {
		t.Fatalf("offered load = %v, want ~0.5", got)
	}
	// Arrivals sorted and within the window.
	for i, f := range flows {
		if f.Start >= 2*sim.Second {
			t.Fatalf("flow %d starts after the window", i)
		}
		if i > 0 && f.Start < flows[i-1].Start {
			t.Fatalf("arrivals out of order at %d", i)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, err := Generate(rng, Fixed(1000), 0, 10e9, sim.Second); err == nil {
		t.Error("zero load accepted")
	}
	if _, err := Generate(rng, Fixed(1000), 1.5, 10e9, sim.Second); err == nil {
		t.Error("overload accepted")
	}
	if _, err := Generate(rng, Fixed(1000), 0.5, 0, sim.Second); err == nil {
		t.Error("zero link accepted")
	}
}

func TestGenerateAlwaysProducesAFlow(t *testing.T) {
	rng := sim.NewRNG(1)
	// Tiny window with huge flows: rate so low the window is usually
	// empty, but the generator must still emit one flow.
	flows, err := Generate(rng, Fixed(1<<40), 0.01, 1e6, sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) == 0 {
		t.Fatal("no flows generated")
	}
}

// Property: samples always lie within the CDF's support.
func TestCDFSampleBoundsProperty(t *testing.T) {
	d := DataMining()
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := float64(d.Sample(rng))
			if v < 100 || v > 100e6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
