package workload

import (
	"testing"

	"greenenvy/internal/sim"
)

// TestStreamMatchesGenerate is the byte-identity contract of the refactor:
// a Stream drained from the same RNG state must reproduce Generate's flows
// exactly — same arrivals, same sizes, same count — because Generate is
// now defined as that drain and downstream experiments key their caches on
// the draw order.
func TestStreamMatchesGenerate(t *testing.T) {
	for _, tc := range []struct {
		dist SizeDist
		load float64
	}{
		{WebSearch(), 0.2},
		{WebSearch(), 0.8},
		{DataMining(), 0.5},
		{Fixed(1e6), 0.3},
	} {
		window := sim.FromSeconds(0.5)
		gen, err := Generate(sim.NewRNG(11), tc.dist, tc.load, 1e9, window)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewStream(sim.NewRNG(11), tc.dist, tc.load, 1e9, window)
		if err != nil {
			t.Fatal(err)
		}
		var streamed []Flow
		for {
			f, ok := s.Next()
			if !ok {
				break
			}
			streamed = append(streamed, f)
		}
		if len(streamed) != len(gen) {
			t.Fatalf("%s load=%g: stream yielded %d flows, Generate %d",
				tc.dist.Name(), tc.load, len(streamed), len(gen))
		}
		for i := range gen {
			if streamed[i] != gen[i] {
				t.Fatalf("%s load=%g flow %d: stream %+v != generate %+v",
					tc.dist.Name(), tc.load, i, streamed[i], gen[i])
			}
		}
		if s.Produced() != uint64(len(gen)) {
			t.Errorf("Produced = %d, want %d", s.Produced(), len(gen))
		}
		// Exhausted streams stay exhausted.
		if _, ok := s.Next(); ok {
			t.Error("Next returned a flow after exhaustion")
		}
	}
}

func TestStreamFallbackFlow(t *testing.T) {
	// A window too small for any arrival must still yield exactly one flow
	// at time zero, matching Generate's fallback (and its draw order: the
	// consumed arrival draw, then a size draw).
	gen, err := Generate(sim.NewRNG(3), WebSearch(), 0.5, 1e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(sim.NewRNG(3), WebSearch(), 0.5, 1e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := s.Next()
	if !ok || f.Start != 0 {
		t.Fatalf("fallback flow = %+v ok=%v, want Start=0 ok=true", f, ok)
	}
	if len(gen) != 1 || gen[0] != f {
		t.Fatalf("fallback mismatch: stream %+v vs generate %v", f, gen)
	}
	if _, ok := s.Next(); ok {
		t.Error("stream yielded a second flow after the fallback")
	}
}

func TestStreamNCountBound(t *testing.T) {
	const n = 10_000
	s, err := NewStreamN(sim.NewRNG(5), DataMining(), 0.7, 1e9, n)
	if err != nil {
		t.Fatal(err)
	}
	var count int
	last := sim.Time(0)
	for {
		f, ok := s.Next()
		if !ok {
			break
		}
		count++
		if f.Start < last {
			t.Fatalf("arrivals not nondecreasing at flow %d: %v < %v", count, f.Start, last)
		}
		last = f.Start
		if f.Bytes == 0 {
			t.Fatalf("flow %d has zero bytes", count)
		}
	}
	if count != n {
		t.Fatalf("count-bounded stream yielded %d flows, want %d", count, n)
	}
	if s.Rate() <= 0 {
		t.Errorf("Rate = %v, want > 0", s.Rate())
	}
}

func TestStreamValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, err := NewStream(rng, WebSearch(), 0, 1e9, 1e9); err == nil {
		t.Error("load=0 accepted")
	}
	if _, err := NewStream(rng, WebSearch(), 1, 1e9, 1e9); err == nil {
		t.Error("load=1 accepted")
	}
	if _, err := NewStream(rng, WebSearch(), 0.5, 0, 1e9); err == nil {
		t.Error("linkBps=0 accepted")
	}
	if _, err := NewStream(rng, WebSearch(), 0.5, 1e9, 0); err == nil {
		t.Error("window=0 accepted")
	}
	if _, err := NewStreamN(rng, WebSearch(), 0.5, 1e9, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestStreamNextNoAllocs(t *testing.T) {
	// The generator feeds the churn driver's arrival timer; pulling the
	// next flow must not allocate.
	s, err := NewStreamN(sim.NewRNG(2), WebSearch(), 0.5, 1e9, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := s.Next(); !ok {
			t.Fatal("stream exhausted mid-bench")
		}
	})
	if allocs != 0 {
		t.Errorf("Next allocates %v per op, want 0", allocs)
	}
}

func TestOfferedLoadFromMatchesSlice(t *testing.T) {
	window := sim.FromSeconds(0.5)
	flows, err := Generate(sim.NewRNG(8), WebSearch(), 0.6, 1e9, window)
	if err != nil {
		t.Fatal(err)
	}
	want := OfferedLoad(flows, 1e9, window)

	s, err := NewStream(sim.NewRNG(8), WebSearch(), 0.6, 1e9, window)
	if err != nil {
		t.Fatal(err)
	}
	got := OfferedLoadFrom(s.Next, 1e9, window)
	if got != want {
		t.Errorf("OfferedLoadFrom = %v, OfferedLoad = %v", got, want)
	}
	if want <= 0 {
		t.Errorf("offered load = %v, want > 0", want)
	}
}

func TestScaledDist(t *testing.T) {
	base := Fixed(1000)
	s := Scaled{Dist: base, Factor: 0.01}
	rng := sim.NewRNG(1)
	if got := s.Sample(rng); got != 10 {
		t.Errorf("Sample = %d, want 10", got)
	}
	if got := s.Mean(); got != 10 {
		t.Errorf("Mean = %v, want 10", got)
	}
	tiny := Scaled{Dist: Fixed(10), Factor: 0.001}
	if got := tiny.Sample(rng); got != 1 {
		t.Errorf("scaled size should floor at 1 byte, got %d", got)
	}
	if s.Name() == "" || s.Name() == base.Name() {
		t.Errorf("Name = %q should mark the scaling", s.Name())
	}
}
