package workload

import (
	"fmt"
	"math"

	"greenenvy/internal/sim"
)

// Stream is a pull-based flow generator: the same Poisson next-arrival
// state machine Generate runs, but exposed one flow at a time so arrival
// streams of any length — the workload-scale experiment replays 10^5–10^6
// flows per repetition — cost O(1) memory. The draw order per flow is
// exactly Generate's (one inter-arrival uniform, then one size draw), so a
// Stream and a Generate call over the same RNG state produce identical
// flows; Generate itself is now a drain of this iterator.
//
// A Stream is bounded either by a time window (NewStream, matching
// Generate's contract including its at-least-one-flow fallback) or by a
// flow count (NewStreamN, for scale targets independent of the window).
type Stream struct {
	rng      *sim.RNG
	dist     SizeDist
	lambda   float64
	window   sim.Duration // bound when > 0
	limit    uint64       // bound when > 0
	t        float64      // running arrival clock, seconds
	produced uint64
	done     bool
}

func newStream(rng *sim.RNG, dist SizeDist, load, linkBps float64) (*Stream, error) {
	if load <= 0 || load >= 1 {
		return nil, fmt.Errorf("workload: load %v out of (0,1)", load)
	}
	if linkBps <= 0 {
		return nil, fmt.Errorf("workload: need positive link rate")
	}
	// λ = load × capacity / mean flow size (flows per second).
	return &Stream{rng: rng, dist: dist, lambda: load * linkBps / 8 / dist.Mean()}, nil
}

// NewStream returns a window-bounded stream: flows arrive until the first
// arrival at or past the window, and — like Generate — at least one flow
// is always produced (a window too small for any Poisson arrival yields a
// single flow at time zero).
func NewStream(rng *sim.RNG, dist SizeDist, load, linkBps float64, window sim.Duration) (*Stream, error) {
	if window <= 0 {
		return nil, fmt.Errorf("workload: need positive window")
	}
	s, err := newStream(rng, dist, load, linkBps)
	if err != nil {
		return nil, err
	}
	s.window = window
	return s, nil
}

// NewStreamN returns a count-bounded stream of exactly n flows with the
// same Poisson arrival process, unconstrained by a window — the form the
// workload-scale experiment uses to hit a flow-count target.
func NewStreamN(rng *sim.RNG, dist SizeDist, load, linkBps float64, n uint64) (*Stream, error) {
	if n == 0 {
		return nil, fmt.Errorf("workload: need at least one flow")
	}
	s, err := newStream(rng, dist, load, linkBps)
	if err != nil {
		return nil, err
	}
	s.limit = n
	return s, nil
}

// Rate returns the arrival rate λ in flows per second.
func (s *Stream) Rate() float64 { return s.lambda }

// Produced returns how many flows the stream has emitted so far.
func (s *Stream) Produced() uint64 { return s.produced }

// Next returns the next flow, or ok=false once the stream is exhausted.
//
//greenvet:hotpath
func (s *Stream) Next() (f Flow, ok bool) {
	if s.done || (s.limit > 0 && s.produced >= s.limit) {
		s.done = true
		return Flow{}, false
	}
	// Exponential inter-arrival.
	s.t += -math.Log(1-s.rng.Float64()) / s.lambda
	at := sim.FromSeconds(s.t)
	if s.window > 0 && at >= s.window {
		s.done = true
		if s.produced == 0 {
			// Generate's fallback: a too-small window still yields one
			// flow at time zero (the arrival draw above was consumed).
			s.produced++
			return Flow{Start: 0, Bytes: s.dist.Sample(s.rng)}, true
		}
		return Flow{}, false
	}
	s.produced++
	return Flow{Start: at, Bytes: s.dist.Sample(s.rng)}, true
}

// OfferedLoadFrom computes the offered load of a flow stream online,
// accumulating bytes as the iterator yields them — nothing forces
// materializing the flows. next is any pull iterator with Stream.Next's
// shape; the slice-backed OfferedLoad wraps this.
func OfferedLoadFrom(next func() (Flow, bool), linkBps float64, window sim.Duration) float64 {
	var bytes float64
	for {
		f, ok := next()
		if !ok {
			break
		}
		bytes += float64(f.Bytes)
	}
	return bytes * 8 / (linkBps * window.Seconds())
}

// Scaled shrinks (or inflates) another distribution's sizes by a constant
// factor. Reduced-scale replays use it to keep per-flow transfer times
// proportionate when the flow count is scaled down: the mean scales by the
// same factor, so a load target produces the same arrival rate shape.
type Scaled struct {
	Dist   SizeDist
	Factor float64
}

// Sample implements SizeDist; scaled sizes are floored at one byte.
func (s Scaled) Sample(rng *sim.RNG) uint64 {
	v := uint64(float64(s.Dist.Sample(rng)) * s.Factor)
	if v == 0 {
		v = 1
	}
	return v
}

// Mean implements SizeDist.
func (s Scaled) Mean() float64 { return s.Dist.Mean() * s.Factor }

// Name implements SizeDist.
func (s Scaled) Name() string { return fmt.Sprintf("%s×%g", s.Dist.Name(), s.Factor) }
