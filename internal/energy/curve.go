// Package energy models end-host CPU power draw and energy consumption for
// the greenenvy testbed, replacing the paper's physical Intel RAPL
// measurements (§3) with a calibrated software model.
//
// The model has two layers:
//
//   - A PowerCurve mapping CPU utilization (background compute load plus
//     networking work) to package power. Its shape — a fast-saturating
//     "wake" component plus a near-linear per-core component — makes power a
//     strictly concave, increasing function of utilization, matching the
//     paper's Figure 2 and the Fan/Barroso observation that power is concave
//     in CPU load.
//
//   - A CostModel attributing CPU work (core-seconds) to networking
//     activity: per-packet transmit/receive work, per-ACK congestion-control
//     computation (algorithm-specific), and retransmission overhead. This is
//     what makes MTU, CCA choice, and loss rate show up in the energy bill
//     (Figures 5–8).
//
// A Meter integrates power over simulated time for one host; internal/rapl
// exposes the result through an emulated RAPL counter interface.
package energy

import "math"

// PowerCurve maps CPU utilization to package power in watts:
//
//	P(load, net) = Idle
//	             + Linear·u·(1 − Curv·u)                       u = load+net
//	             + Wake·(1 − e^(−u/WakeScale))
//	             + Wake·w(load)·(1 − e^(−net/WakeScale))
//	  where w(load) = (1 − e^(−load/WakeScale)) / (1 + WakeLoadDecay·load)
//
// The wake terms model uncore power (clock ungating, caches, memory
// controller, package C-state exits) that switches on as soon as any core
// leaves idle and saturates within a few percent utilization. This is what
// makes the first 5 Gb/s of traffic cost 12.7 W while the next 5 Gb/s costs
// only 1.6 W (paper §4.1, Fig 2). On an already-loaded server the shared
// uncore is awake, but network interrupts still pull additional cores out of
// sleep states — a residual concave bump whose magnitude shrinks with load
// (the second wake term). That residual is what leaves ~1 % serial-schedule
// savings at 25 % load and ~0.17 % at 75 % (paper §4.2, Fig 4).
//
// The near-linear term models per-core active power; Curv gives it the mild
// global concavity of the Fan/Barroso curve and keeps the whole model
// strictly concave.
type PowerCurve struct {
	Idle          float64 // watts at u = 0
	Wake          float64 // asymptotic watts of the wake component
	WakeScale     float64 // utilization scale of wake saturation
	Linear        float64 // watts at u = 1 from the per-core component
	Curv          float64 // concavity of the per-core component, in [0, 0.5)
	WakeLoadDecay float64 // how fast the residual wake shrinks with load
}

// ServerCurve is the calibrated curve for one of the paper's servers
// (2× Xeon E5-2630 v3). The constants are fitted so that, combined with
// DefaultCostModel, the model reproduces the paper's measured anchors:
//
//	idle             21.49 W  (Fig 2, 0 Gb/s)
//	CUBIC @ 5 Gb/s   34.23 W  (Fig 2)
//	CUBIC @ 10 Gb/s  35.82 W  (Fig 2)
//	75 % stress load ≈ 108 W  (Fig 4)
//	serial-schedule savings ≈ 1 % at 25 % load, ≈ 0.17 % at 75 % (§4.2)
func ServerCurve() PowerCurve {
	return PowerCurve{
		Idle:          21.49,
		Wake:          12.4208,
		WakeScale:     0.0033,
		Linear:        100.0,
		Curv:          0.02,
		WakeLoadDecay: 35.0,
	}
}

func clamp01(u float64) float64 {
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// PowerLoaded returns package watts with background compute utilization
// load and networking utilization net (both fractions of total CPU; their
// sum is clamped to 1, since a saturated CPU cannot exceed full-load power).
func (c PowerCurve) PowerLoaded(load, net float64) float64 {
	load = clamp01(load)
	net = clamp01(net)
	if load+net > 1 {
		net = 1 - load
	}
	u := load + net
	p := c.Idle
	p += c.Linear * u * (1 - c.Curv*u)
	p += c.Wake * (1 - math.Exp(-u/c.WakeScale))
	if load > 0 {
		w := (1 - math.Exp(-load/c.WakeScale)) / (1 + c.WakeLoadDecay*load)
		p += c.Wake * w * (1 - math.Exp(-net/c.WakeScale))
	}
	return p
}

// PowerAt returns package watts at networking utilization u with no
// background load.
func (c PowerCurve) PowerAt(u float64) float64 { return c.PowerLoaded(0, u) }

// MarginalAt returns dP/du at utilization u on an unloaded server (clamped
// to [0,1]). Marginal power is strictly decreasing in u, the property
// Theorem 1 needs.
func (c PowerCurve) MarginalAt(u float64) float64 {
	u = clamp01(u)
	return c.Linear*(1-2*c.Curv*u) + c.Wake/c.WakeScale*math.Exp(-u/c.WakeScale)
}

// IsStrictlyConcaveOn verifies numerically that the unloaded curve is
// strictly concave on [0, uMax] by checking that midpoint values exceed
// chords on a grid of n sample pairs. It is used by tests and by
// core.VerifyAssumptions.
func (c PowerCurve) IsStrictlyConcaveOn(uMax float64, n int) bool {
	if n < 2 {
		n = 2
	}
	for i := 0; i < n; i++ {
		a := uMax * float64(i) / float64(n)
		b := uMax * float64(i+1) / float64(n)
		mid := (a + b) / 2
		if c.PowerAt(mid) <= (c.PowerAt(a)+c.PowerAt(b))/2 {
			return false
		}
	}
	return true
}
