package energy

import (
	"greenenvy/internal/sim"
)

// Meter integrates one host's energy over simulated time. Networking code
// reports CPU work (core-seconds) as it happens; a periodic Sync — driven by
// the testbed's sampler — converts accumulated work over each interval into
// average utilization, applies the power curve, and accumulates joules.
//
// Averaging within a sync interval is intentional: the paper's own analysis
// treats "sending smoothly at rate x" as a steady utilization, and RAPL
// itself reports energy integrated by the hardware. Sub-interval burstiness
// is below the model's resolution. Intervals of ~1 ms are used by the
// testbed.
type Meter struct {
	Curve PowerCurve
	Costs CostModel

	engine *sim.Engine

	baseUtil float64 // background load (stress), fraction of all cores
	workSec  float64 // core-seconds accumulated since last Sync
	joules   float64
	last     sim.Time

	// cumulative statistics
	totalWorkSec float64
}

// NewMeter creates a meter with the given curve and cost model. The meter
// starts integrating at the engine's current time.
func NewMeter(engine *sim.Engine, curve PowerCurve, costs CostModel) *Meter {
	if err := costs.Validate(); err != nil {
		panic(err)
	}
	return &Meter{Curve: curve, Costs: costs, engine: engine, last: engine.Now()}
}

// SetBaseLoad sets the background compute load as a fraction of total CPU
// capacity in [0,1] (the paper's `stress` tool, §4.2). It syncs first so the
// change applies only going forward.
func (m *Meter) SetBaseLoad(frac float64) {
	if frac < 0 || frac > 1 {
		panic("energy: base load must be in [0,1]")
	}
	m.Sync()
	m.baseUtil = frac
}

// BaseLoad returns the current background load fraction.
func (m *Meter) BaseLoad() float64 { return m.baseUtil }

// AddWork reports coreSeconds of CPU work performed "now".
//
//greenvet:hotpath
func (m *Meter) AddWork(coreSeconds float64) {
	if coreSeconds < 0 {
		panic("energy: negative work")
	}
	m.workSec += coreSeconds
	m.totalWorkSec += coreSeconds
}

// Sync integrates energy from the last sync point to the current simulated
// time. It must be called often enough that utilization is roughly constant
// within each interval; the testbed calls it every millisecond and at every
// phase boundary.
//
//greenvet:hotpath
func (m *Meter) Sync() { m.SyncAt(m.engine.Now()) }

// SyncAt integrates energy up to the explicit instant t instead of the
// engine clock. The sharded testbed needs it: partition engines stop at
// different local times once their flows finish, but the final measurement
// must integrate every meter to the same global completion instant. t
// before the last sync point panics — that would erase energy.
//
//greenvet:hotpath
func (m *Meter) SyncAt(t sim.Time) {
	dt := t - m.last
	if dt <= 0 {
		if dt < 0 {
			panic("energy: SyncAt before an earlier sync point")
		}
		return
	}
	seconds := dt.Seconds()
	net := m.workSec / (seconds * float64(m.Costs.Cores))
	m.joules += m.Curve.PowerLoaded(m.baseUtil, net) * seconds
	m.workSec = 0
	m.last = t
}

// Joules returns total energy consumed up to the last Sync.
func (m *Meter) Joules() float64 { return m.joules }

// TotalWork returns cumulative core-seconds of networking work reported.
func (m *Meter) TotalWork() float64 { return m.totalWorkSec }

// Account is the callback surface the transport uses to report work to a
// meter, pre-binding the cost model so transport code never sees watts.
// A nil *Account is valid and discards everything, which keeps the hot path
// free of conditionals at call sites.
type Account struct {
	meter   *Meter
	ccaCost float64
}

// NewAccount binds a meter to a flow using the named congestion-control
// algorithm (which determines the per-ACK computation cost).
func NewAccount(m *Meter, ccaName string) *Account {
	return &Account{meter: m, ccaCost: m.Costs.CCACost(ccaName)}
}

// SentData reports transmission of a data segment. outstandingBytes is the
// sender's unacknowledged window at transmit time, which scales the
// memory-pressure component of the cost model.
//
//greenvet:hotpath
func (a *Account) SentData(retransmit bool, outstandingBytes int) {
	if a == nil {
		return
	}
	w := a.meter.Costs.TxPacket
	if retransmit {
		w += a.meter.Costs.Retransmit
	}
	if outstandingBytes > 0 {
		w += a.meter.Costs.TxWindowMB * float64(outstandingBytes) / (1 << 20)
	}
	a.meter.AddWork(w)
}

// SentAck reports transmission of a pure ACK.
//
//greenvet:hotpath
func (a *Account) SentAck() {
	if a == nil {
		return
	}
	a.meter.AddWork(a.meter.Costs.TxAck)
}

// ReceivedData reports receipt of a data segment.
//
//greenvet:hotpath
func (a *Account) ReceivedData() {
	if a == nil {
		return
	}
	a.meter.AddWork(a.meter.Costs.RxPacket)
}

// ReceivedAck reports receipt and congestion-control processing of an ACK.
//
//greenvet:hotpath
func (a *Account) ReceivedAck() {
	if a == nil {
		return
	}
	a.meter.AddWork(a.meter.Costs.RxAck + a.ccaCost)
}
