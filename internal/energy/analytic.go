package energy

// Model bundles a power curve with a cost model and provides the closed-form
// steady-state predictions that the paper's analysis (§4.1, Theorem 1) is
// built on. The simulator must agree with these predictions within model
// resolution; tests assert that it does.
type Model struct {
	Curve PowerCurve
	Costs CostModel
}

// DefaultModel returns the calibrated server model (ServerCurve +
// DefaultCostModel).
func DefaultModel() Model {
	return Model{Curve: ServerCurve(), Costs: DefaultCostModel()}
}

// SenderUtilization returns the steady-state CPU utilization of a host
// sending goodput bits/s in segments of payloadBytes each, with delayed
// ACKs acknowledging every other segment, using the named CCA.
func (m Model) SenderUtilization(goodputBps float64, payloadBytes int, ccaName string) float64 {
	if goodputBps <= 0 || payloadBytes <= 0 {
		return 0
	}
	pps := goodputBps / (8 * float64(payloadBytes))
	ackRate := pps / 2
	work := pps*m.Costs.TxPacket + ackRate*(m.Costs.RxAck+m.Costs.CCACost(ccaName))
	return work / float64(m.Costs.Cores)
}

// SenderPower returns the steady-state package watts for a sender at the
// given goodput — the closed-form version of the paper's Figure 2 curve.
func (m Model) SenderPower(goodputBps float64, payloadBytes int, ccaName string) float64 {
	return m.Curve.PowerAt(m.SenderUtilization(goodputBps, payloadBytes, ccaName))
}

// PaperPower adapts the calibrated default model into the paper's Figure 2
// p(x) curve: sender watts as a function of goodput at MTU 9000 under
// CUBIC. Every analytic savings prediction in the experiments evaluates
// this curve.
func PaperPower() func(bps float64) float64 {
	m := DefaultModel()
	return func(bps float64) float64 { return m.SenderPower(bps, 9000-60, "cubic") }
}

// SenderPowerLoaded is SenderPower with an additional background compute
// load (fraction of all cores), the §4.2 scenario.
func (m Model) SenderPowerLoaded(goodputBps float64, payloadBytes int, ccaName string, baseLoad float64) float64 {
	return m.Curve.PowerLoaded(baseLoad, m.SenderUtilization(goodputBps, payloadBytes, ccaName))
}

// TangentPower returns the power of the "full speed, then idle" strategy
// achieving average throughput goodputBps by duty-cycling between idle and
// line rate lineRateBps: the orange tangent line of Figure 2.
func (m Model) TangentPower(goodputBps, lineRateBps float64, payloadBytes int, ccaName string) float64 {
	if lineRateBps <= 0 {
		return m.Curve.PowerAt(0)
	}
	frac := goodputBps / lineRateBps
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	pIdle := m.Curve.PowerAt(0)
	pFull := m.SenderPower(lineRateBps, payloadBytes, ccaName)
	return pIdle + frac*(pFull-pIdle)
}
