package energy

import (
	"math"
	"testing"
	"testing/quick"

	"greenenvy/internal/sim"
)

func TestServerCurveAnchors(t *testing.T) {
	// The calibrated model must hit the paper's Figure 2 anchor points:
	// 21.49 W idle, 34.23 W at 5 Gb/s, 35.82 W at 10 Gb/s (CUBIC sender,
	// MTU 9000).
	m := DefaultModel()
	const payload = 9000 - 60
	cases := []struct {
		gbps float64
		want float64
	}{
		{0, 21.49},
		{5, 34.23},
		{10, 35.82},
	}
	for _, tc := range cases {
		got := m.SenderPower(tc.gbps*1e9, payload, "cubic")
		if math.Abs(got-tc.want) > 0.15 {
			t.Errorf("SenderPower(%v Gb/s) = %.3f W, want %.2f ± 0.15", tc.gbps, got, tc.want)
		}
	}
}

func TestCurveStrictlyIncreasing(t *testing.T) {
	c := ServerCurve()
	prev := c.PowerAt(0)
	for u := 0.01; u <= 1.0; u += 0.01 {
		p := c.PowerAt(u)
		if p <= prev {
			t.Fatalf("power not strictly increasing at u=%v: %v <= %v", u, p, prev)
		}
		prev = p
	}
}

func TestCurveStrictlyConcave(t *testing.T) {
	if !ServerCurve().IsStrictlyConcaveOn(1.0, 1000) {
		t.Fatal("server curve is not strictly concave on [0,1]")
	}
}

func TestCurveMarginalDecreasing(t *testing.T) {
	c := ServerCurve()
	prev := c.MarginalAt(0)
	for u := 0.001; u <= 1.0; u += 0.001 {
		m := c.MarginalAt(u)
		if m >= prev {
			t.Fatalf("marginal power not strictly decreasing at u=%v", u)
		}
		prev = m
	}
}

func TestCurveClampsUtilization(t *testing.T) {
	c := ServerCurve()
	if c.PowerAt(-0.5) != c.PowerAt(0) {
		t.Fatal("negative utilization not clamped")
	}
	if c.PowerAt(1.5) != c.PowerAt(1) {
		t.Fatal("over-unity utilization not clamped")
	}
}

func TestMarginalFirst5GbpsVsNext5Gbps(t *testing.T) {
	// §4.1: "Sending with 5 additional Gb/s increases power usage by 60%
	// (12.7 Watts) when the server is idling, but only increases it by 5%
	// (1.6 Watts) when the server is already sending at 5 Gb/s."
	m := DefaultModel()
	const payload = 8940
	p0 := m.SenderPower(0, payload, "cubic")
	p5 := m.SenderPower(5e9, payload, "cubic")
	p10 := m.SenderPower(10e9, payload, "cubic")
	first := p5 - p0
	second := p10 - p5
	if math.Abs(first-12.74) > 0.3 {
		t.Errorf("first 5 Gb/s costs %.2f W, want ~12.74", first)
	}
	if math.Abs(second-1.59) > 0.3 {
		t.Errorf("second 5 Gb/s costs %.2f W, want ~1.59", second)
	}
	if !(first > 5*second) {
		t.Errorf("marginal power should collapse: first=%v second=%v", first, second)
	}
}

func TestSenderPowerConcaveInThroughput(t *testing.T) {
	// The composed p(x) = P(u_net(x)) must itself be strictly concave in
	// throughput — the hypothesis of Theorem 1.
	m := DefaultModel()
	const payload = 8940
	for i := 0; i < 100; i++ {
		a := float64(i) * 1e8
		b := a + 1e8
		mid := (a + b) / 2
		pm := m.SenderPower(mid, payload, "cubic")
		chord := (m.SenderPower(a, payload, "cubic") + m.SenderPower(b, payload, "cubic")) / 2
		if pm <= chord {
			t.Fatalf("p(x) not strictly concave at %v bps", mid)
		}
	}
}

func TestTangentPowerBelowSmoothPower(t *testing.T) {
	// Figure 2's visual argument: duty-cycling between idle and line rate
	// (the tangent line) uses strictly less power than sending smoothly,
	// for any average throughput strictly between 0 and line rate.
	m := DefaultModel()
	const payload = 8940
	for _, gbps := range []float64{1, 2.5, 5, 7.5, 9} {
		smooth := m.SenderPower(gbps*1e9, payload, "cubic")
		tangent := m.TangentPower(gbps*1e9, 10e9, payload, "cubic")
		if tangent >= smooth {
			t.Errorf("tangent %.2f W >= smooth %.2f W at %v Gb/s", tangent, smooth, gbps)
		}
	}
	// At the endpoints they coincide.
	if math.Abs(m.TangentPower(0, 10e9, payload, "cubic")-m.SenderPower(0, payload, "cubic")) > 1e-9 {
		t.Error("tangent != smooth at 0")
	}
	if math.Abs(m.TangentPower(10e9, 10e9, payload, "cubic")-m.SenderPower(10e9, payload, "cubic")) > 1e-9 {
		t.Error("tangent != smooth at line rate")
	}
}

func TestFigure1HeadlineSavings(t *testing.T) {
	// The analytic version of the headline result: two flows, 10 Gbit
	// each, 10 Gb/s bottleneck. Fair (both at 5 Gb/s for 2 s) vs full
	// speed then idle (each: 1 s at 10 Gb/s + 1 s idle). Paper: 16% less
	// energy (137 J vs 114.63 J).
	m := DefaultModel()
	const payload = 8940
	p5 := m.SenderPower(5e9, payload, "cubic")
	p10 := m.SenderPower(10e9, payload, "cubic")
	pIdle := m.SenderPower(0, payload, "cubic")
	fair := 2 * p5 * 2.0
	serial := 2 * (p10*1.0 + pIdle*1.0)
	savings := (fair - serial) / fair * 100
	if math.Abs(fair-137) > 1.5 {
		t.Errorf("fair energy = %.1f J, want ~137", fair)
	}
	if math.Abs(serial-114.6) > 1.5 {
		t.Errorf("serial energy = %.1f J, want ~114.6", serial)
	}
	if math.Abs(savings-16.3) > 1.0 {
		t.Errorf("savings = %.1f%%, want ~16%%", savings)
	}
}

func TestLoadedSavingsShrink(t *testing.T) {
	// §4.2: the same strategy saves ~1% at 25% load and ~0.17% at 75%.
	m := DefaultModel()
	const payload = 8940
	for _, tc := range []struct {
		load        float64
		wantPercent float64
		tol         float64
	}{
		{0.25, 1.0, 0.9},
		{0.75, 0.17, 0.25},
	} {
		p5 := m.SenderPowerLoaded(5e9, payload, "cubic", tc.load)
		p10 := m.SenderPowerLoaded(10e9, payload, "cubic", tc.load)
		pIdle := m.SenderPowerLoaded(0, payload, "cubic", tc.load)
		fair := 2 * p5 * 2.0
		serial := 2 * (p10 + pIdle)
		savings := (fair - serial) / fair * 100
		if savings <= 0 {
			t.Errorf("load %v: savings %.3f%% not positive", tc.load, savings)
		}
		if math.Abs(savings-tc.wantPercent) > tc.tol {
			t.Errorf("load %v: savings = %.3f%%, want ~%v%%", tc.load, savings, tc.wantPercent)
		}
	}
}

func TestMTURaisesUtilization(t *testing.T) {
	m := DefaultModel()
	u1500 := m.SenderUtilization(5e9, 1500-60, "cubic")
	u9000 := m.SenderUtilization(5e9, 9000-60, "cubic")
	if u1500 <= u9000 {
		t.Fatalf("MTU 1500 utilization %v should exceed MTU 9000 %v", u1500, u9000)
	}
	ratio := u1500 / u9000
	if ratio < 4 || ratio > 8 {
		t.Fatalf("utilization ratio %v out of expected band (≈ packet-rate ratio ~6.2)", ratio)
	}
}

func TestCCACostOrdering(t *testing.T) {
	c := DefaultCostModel()
	if c.CCACost("bbr2") <= c.CCACost("bbr") {
		t.Fatal("bbr2 (alpha) must cost more per ACK than bbr")
	}
	if c.CCACost("baseline") != 0 {
		t.Fatal("baseline does no cwnd computation")
	}
	if c.CCACost("unknown-algorithm") != c.CCACost("reno") {
		t.Fatal("unknown CCA should fall back to reno cost")
	}
}

func TestCostModelValidate(t *testing.T) {
	c := DefaultCostModel()
	if err := c.Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	bad := c
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Error("zero cores accepted")
	}
	bad = c
	bad.TxPacket = -1
	if bad.Validate() == nil {
		t.Error("negative cost accepted")
	}
	bad = c
	bad.TxPathCost = -1
	if bad.Validate() == nil {
		t.Error("negative TxPathCost accepted")
	}
}

func TestMeterIdleEnergy(t *testing.T) {
	e := sim.NewEngine()
	m := NewMeter(e, ServerCurve(), DefaultCostModel())
	e.RunUntil(10 * sim.Second)
	m.Sync()
	want := 21.49 * 10
	if math.Abs(m.Joules()-want) > 0.01 {
		t.Fatalf("idle energy = %v J, want %v", m.Joules(), want)
	}
}

func TestMeterWorkRaisesEnergy(t *testing.T) {
	e := sim.NewEngine()
	m := NewMeter(e, ServerCurve(), DefaultCostModel())
	// 0.32 core-seconds over 1 s on 32 cores = 1% utilization.
	m.AddWork(0.32)
	e.RunUntil(sim.Second)
	m.Sync()
	want := ServerCurve().PowerAt(0.01)
	if math.Abs(m.Joules()-want) > 1e-9 {
		t.Fatalf("energy = %v, want %v", m.Joules(), want)
	}
	if m.TotalWork() != 0.32 {
		t.Fatalf("TotalWork = %v", m.TotalWork())
	}
}

func TestMeterBaseLoad(t *testing.T) {
	e := sim.NewEngine()
	m := NewMeter(e, ServerCurve(), DefaultCostModel())
	m.SetBaseLoad(0.75)
	if m.BaseLoad() != 0.75 {
		t.Fatalf("BaseLoad = %v", m.BaseLoad())
	}
	e.RunUntil(sim.Second)
	m.Sync()
	want := ServerCurve().PowerAt(0.75)
	if math.Abs(m.Joules()-want) > 1e-9 {
		t.Fatalf("loaded energy = %v, want %v", m.Joules(), want)
	}
	// ~108 W at 75% load matches Fig 4's top curve.
	if want < 100 || want > 120 {
		t.Fatalf("75%% load power = %v W, want ~108", want)
	}
}

func TestMeterBaseLoadValidation(t *testing.T) {
	e := sim.NewEngine()
	m := NewMeter(e, ServerCurve(), DefaultCostModel())
	for _, v := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetBaseLoad(%v) did not panic", v)
				}
			}()
			m.SetBaseLoad(v)
		}()
	}
}

func TestMeterNegativeWorkPanics(t *testing.T) {
	e := sim.NewEngine()
	m := NewMeter(e, ServerCurve(), DefaultCostModel())
	defer func() {
		if recover() == nil {
			t.Error("negative work did not panic")
		}
	}()
	m.AddWork(-1)
}

func TestMeterSyncIdempotentAtSameTime(t *testing.T) {
	e := sim.NewEngine()
	m := NewMeter(e, ServerCurve(), DefaultCostModel())
	e.RunUntil(sim.Second)
	m.Sync()
	j := m.Joules()
	m.Sync()
	if m.Joules() != j {
		t.Fatal("double Sync at same time changed energy")
	}
}

func TestMeterFrequentVsSparseSyncSteadyState(t *testing.T) {
	// Under steady work, sync frequency must not change the integral.
	run := func(syncEvery sim.Duration) float64 {
		e := sim.NewEngine()
		m := NewMeter(e, ServerCurve(), DefaultCostModel())
		for t := sim.Duration(0); t < sim.Second; t += syncEvery {
			e.RunUntil(t + syncEvery)
			m.AddWork(0.32 * syncEvery.Seconds()) // steady 1% utilization
			m.Sync()
		}
		return m.Joules()
	}
	fine := run(sim.Millisecond)
	coarse := run(100 * sim.Millisecond)
	if math.Abs(fine-coarse) > 1e-6 {
		t.Fatalf("sync granularity changed steady-state energy: %v vs %v", fine, coarse)
	}
}

func TestAccountNilSafe(t *testing.T) {
	var a *Account
	a.SentData(false, 0)
	a.SentAck()
	a.ReceivedData()
	a.ReceivedAck()
}

func TestAccountAttributesCosts(t *testing.T) {
	e := sim.NewEngine()
	m := NewMeter(e, ServerCurve(), DefaultCostModel())
	a := NewAccount(m, "cubic")
	c := m.Costs
	a.SentData(false, 0)
	want := c.TxPacket
	a.SentData(true, 0)
	want += c.TxPacket + c.Retransmit
	a.SentAck()
	want += c.TxAck
	a.ReceivedData()
	want += c.RxPacket
	a.ReceivedAck()
	want += c.RxAck + c.CCACost("cubic")
	if math.Abs(m.TotalWork()-want) > 1e-15 {
		t.Fatalf("TotalWork = %v, want %v", m.TotalWork(), want)
	}
}

func TestWindowPenaltyScalesWithOutstanding(t *testing.T) {
	e := sim.NewEngine()
	m := NewMeter(e, ServerCurve(), DefaultCostModel())
	a := NewAccount(m, "baseline")
	a.SentData(false, 0)
	base := m.TotalWork()
	a.SentData(false, 25<<20) // the baseline's 25 MB window
	withWindow := m.TotalWork() - base
	want := m.Costs.TxPacket + 25*m.Costs.TxWindowMB
	if math.Abs(withWindow-want) > 1e-15 {
		t.Fatalf("windowed cost = %v, want %v", withWindow, want)
	}
	if withWindow <= base {
		t.Fatal("large window must cost more per packet")
	}
}

// Property: energy is monotone in utilization for arbitrary curves with
// nonnegative parameters.
func TestPowerMonotoneProperty(t *testing.T) {
	f := func(idle, wake, lin uint16, a, b uint16) bool {
		c := PowerCurve{
			Idle:      float64(idle%200) + 1,
			Wake:      float64(wake % 50),
			WakeScale: 0.003,
			Linear:    float64(lin % 200),
		}
		ua := float64(a) / 65535
		ub := float64(b) / 65535
		if ua > ub {
			ua, ub = ub, ua
		}
		return c.PowerAt(ua) <= c.PowerAt(ub)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPowerAt(b *testing.B) {
	c := ServerCurve()
	for i := 0; i < b.N; i++ {
		_ = c.PowerAt(float64(i%100) / 100)
	}
}
