package energy

import (
	"math"
	"testing"
)

func TestSenderUtilizationZeroGuards(t *testing.T) {
	m := DefaultModel()
	if m.SenderUtilization(0, 8940, "cubic") != 0 {
		t.Fatal("zero goodput should be zero utilization")
	}
	if m.SenderUtilization(1e9, 0, "cubic") != 0 {
		t.Fatal("zero payload should be zero utilization")
	}
	if m.SenderUtilization(-5, 8940, "cubic") != 0 {
		t.Fatal("negative goodput should be zero utilization")
	}
}

func TestSenderUtilizationScalesWithCCACost(t *testing.T) {
	m := DefaultModel()
	base := m.SenderUtilization(5e9, 8940, "baseline") // zero per-ACK cost
	bbr2 := m.SenderUtilization(5e9, 8940, "bbr2")     // highest per-ACK cost
	if bbr2 <= base {
		t.Fatalf("bbr2 utilization %v should exceed baseline %v", bbr2, base)
	}
}

func TestTangentPowerClamps(t *testing.T) {
	m := DefaultModel()
	idle := m.Curve.PowerAt(0)
	// Zero line rate degenerates to idle.
	if got := m.TangentPower(5e9, 0, 8940, "cubic"); got != idle {
		t.Fatalf("zero line rate tangent = %v, want idle %v", got, idle)
	}
	// Negative goodput clamps to idle.
	if got := m.TangentPower(-1, 10e9, 8940, "cubic"); got != idle {
		t.Fatalf("negative goodput tangent = %v, want idle", got)
	}
	// Goodput above line rate clamps to the full-rate power.
	full := m.SenderPower(10e9, 8940, "cubic")
	if got := m.TangentPower(20e9, 10e9, 8940, "cubic"); math.Abs(got-full) > 1e-12 {
		t.Fatalf("over-rate tangent = %v, want %v", got, full)
	}
}

func TestPowerLoadedMonotoneInBothArguments(t *testing.T) {
	c := ServerCurve()
	prev := 0.0
	for i := 0; i <= 20; i++ {
		load := float64(i) / 20
		p := c.PowerLoaded(load, 0.01)
		if p < prev {
			t.Fatalf("power decreased with load at %v", load)
		}
		prev = p
	}
	prev = 0
	for i := 0; i <= 20; i++ {
		net := float64(i) / 40
		p := c.PowerLoaded(0.3, net)
		if p < prev {
			t.Fatalf("power decreased with net utilization at %v", net)
		}
		prev = p
	}
}

func TestPowerLoadedSaturatesAtFullCPU(t *testing.T) {
	c := ServerCurve()
	at := c.PowerLoaded(0.9, 0.5)  // sums beyond 1
	cap := c.PowerLoaded(0.9, 0.1) // exactly 1
	if math.Abs(at-cap) > 1e-9 {
		t.Fatalf("power beyond full CPU: %v vs %v", at, cap)
	}
}
