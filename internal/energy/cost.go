package energy

import (
	"fmt"

	"greenenvy/internal/sim"
)

// CostModel attributes CPU work to networking operations. All costs are in
// seconds of one core's time; a Meter divides accumulated core-seconds by
// (wall time × cores) to obtain utilization.
//
// Two distinct quantities matter:
//
//   - Total work per operation (the TxPacket/RxPacket/... fields): CPU time
//     spent anywhere in the stack (syscalls, softirq, memory copies, timer
//     processing), possibly spread over several cores. This drives power.
//
//   - The serialized transmit-path cost (TxPathCost): the critical-path time
//     to push one packet through the stack, which caps the achievable packet
//     rate of a single flow. This is why the paper needs a 9000-byte MTU to
//     reach 10 Gb/s (§3) and why MTU 1500 runs slower and hotter (Figs 5–7).
type CostModel struct {
	// Cores is the number of logical CPUs in the host (the paper's
	// servers expose 32).
	Cores int

	// TxPacket is total CPU work to transmit one data segment.
	TxPacket float64
	// RxPacket is total CPU work to receive one data segment.
	RxPacket float64
	// TxAck / RxAck are the costs of sending and processing a pure ACK.
	TxAck float64
	RxAck float64
	// Retransmit is the extra work for one retransmitted segment
	// (re-queueing, SACK scoreboard walking, timer churn).
	Retransmit float64
	// TxWindowMB is extra per-packet transmit work per MiB of
	// outstanding (unacknowledged) window. It models the sender-host
	// queuing cost the paper blames for the constant-cwnd baseline's
	// energy premium: "its large cwnd value makes the sender bursty
	// which causes queuing at the network as well as the sender host
	// resulting in more frequent memory accesses" (§4.3) — a 25 MB
	// scoreboard no longer fits in cache.
	TxWindowMB float64
	// PerCCAByName gives the additional per-ACK congestion-control
	// computation for each algorithm (cwnd arithmetic, rate estimation,
	// pacing timers, flow state bookkeeping — §5's list of mechanisms).
	PerCCAByName map[string]float64

	// TxPathCost is the serialized per-packet transmit-path time; a
	// sender cannot emit packets faster than one per TxPathCost.
	TxPathCost sim.Duration
}

// DefaultCostModel returns costs calibrated together with ServerCurve so the
// combined model hits the paper's Figure 2 anchors at MTU 9000 and its
// Figure 5–7 MTU/CCA spreads at MTU 1500.
func DefaultCostModel() CostModel {
	return CostModel{
		Cores:      32,
		TxPacket:   3.2e-6,
		RxPacket:   1.6e-6,
		TxAck:      1.0e-6,
		RxAck:      2.0e-6,
		Retransmit: 3.2e-6,
		TxWindowMB: 0.08e-6,
		PerCCAByName: map[string]float64{
			"baseline":  0,       // no cwnd computation at all
			"reno":      0.15e-6, // one addition or halving per ACK
			"scalable":  0.18e-6,
			"highspeed": 0.25e-6, // AIMD table lookup
			"westwood":  0.30e-6, // bandwidth filter
			"vegas":     0.35e-6, // per-RTT rate bookkeeping
			"dctcp":     0.40e-6, // ECN fraction EWMA
			"cubic":     0.50e-6, // cube-root computation
			"bbr":       0.70e-6, // delivery-rate filters + pacing
			"bbr2":      1.50e-6, // alpha release: unoptimized paths
			// §5 production algorithms (extended benchmark).
			"swift": 0.35e-6, // delay target arithmetic
			"dcqcn": 0.45e-6, // rate state machine + CNP timers
			"hpcc":  0.60e-6, // INT parsing + per-hop utilization
		},
		TxPathCost: 1500 * sim.Nanosecond, // ~667 kpps single-flow cap
	}
}

// CCACost returns the per-ACK cost for the named algorithm. Unknown names
// fall back to the cost of "reno" so that user-supplied algorithms still get
// a sane default.
func (m CostModel) CCACost(name string) float64 {
	if c, ok := m.PerCCAByName[name]; ok {
		return c
	}
	return m.PerCCAByName["reno"]
}

// Validate reports an error for nonsensical configurations.
func (m CostModel) Validate() error {
	if m.Cores <= 0 {
		return fmt.Errorf("energy: cost model needs positive Cores, got %d", m.Cores)
	}
	for _, v := range []float64{m.TxPacket, m.RxPacket, m.TxAck, m.RxAck, m.Retransmit, m.TxWindowMB} {
		if v < 0 {
			return fmt.Errorf("energy: negative per-op cost %v", v)
		}
	}
	if m.TxPathCost < 0 {
		return fmt.Errorf("energy: negative TxPathCost %v", m.TxPathCost)
	}
	return nil
}
