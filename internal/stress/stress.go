// Package stress emulates the Linux `stress` tool the paper uses in §4.2 to
// "generate load on a certain number of cores at the end-host in addition
// to the CUBIC traffic". Its only observable effect in the testbed is the
// background CPU utilization it imposes on a host's energy meter.
package stress

import (
	"fmt"

	"greenenvy/internal/energy"
	"greenenvy/internal/sim"
)

// Load is a running background workload on one host.
type Load struct {
	meter   *energy.Meter
	workers int
	cores   int
	active  bool
}

// Start spins up `workers` busy cores on the host behind meter, like
// `stress --cpu N`. It returns an error if workers is negative or exceeds
// the host's core count.
func Start(meter *energy.Meter, workers int) (*Load, error) {
	cores := meter.Costs.Cores
	if workers < 0 || workers > cores {
		return nil, fmt.Errorf("stress: %d workers out of range [0, %d]", workers, cores)
	}
	l := &Load{meter: meter, workers: workers, cores: cores, active: true}
	meter.SetBaseLoad(float64(workers) / float64(cores))
	return l, nil
}

// StartFraction starts a load expressed as a fraction of total CPU (the
// paper's "Server Load (%)" axis in Figure 4), rounding to whole cores.
func StartFraction(meter *energy.Meter, frac float64) (*Load, error) {
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("stress: fraction %v out of [0,1]", frac)
	}
	workers := int(frac*float64(meter.Costs.Cores) + 0.5)
	return Start(meter, workers)
}

// Workers reports the number of busy cores.
func (l *Load) Workers() int { return l.workers }

// Fraction reports the load as a fraction of total CPU.
func (l *Load) Fraction() float64 { return float64(l.workers) / float64(l.cores) }

// Stop ends the workload. Stopping twice is an error to catch double
// bookkeeping in experiment harnesses.
func (l *Load) Stop() error {
	if !l.active {
		return fmt.Errorf("stress: load already stopped")
	}
	l.active = false
	l.meter.SetBaseLoad(0)
	return nil
}

// RunFor schedules the load to stop after d of simulated time.
func (l *Load) RunFor(engine *sim.Engine, d sim.Duration) {
	engine.After(d, func() {
		if l.active {
			_ = l.Stop()
		}
	})
}
