package stress

import (
	"math"
	"testing"

	"greenenvy/internal/energy"
	"greenenvy/internal/sim"
)

func newMeter() (*sim.Engine, *energy.Meter) {
	e := sim.NewEngine()
	return e, energy.NewMeter(e, energy.ServerCurve(), energy.DefaultCostModel())
}

func TestStartSetsBaseLoad(t *testing.T) {
	_, m := newMeter()
	l, err := Start(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	if l.Workers() != 16 {
		t.Fatalf("workers = %d", l.Workers())
	}
	if math.Abs(l.Fraction()-0.5) > 1e-12 {
		t.Fatalf("fraction = %v", l.Fraction())
	}
	if m.BaseLoad() != 0.5 {
		t.Fatalf("meter base load = %v", m.BaseLoad())
	}
}

func TestStartFractionRounds(t *testing.T) {
	_, m := newMeter()
	l, err := StartFraction(m, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if l.Workers() != 24 {
		t.Fatalf("workers = %d, want 24 of 32", l.Workers())
	}
}

func TestStartValidation(t *testing.T) {
	_, m := newMeter()
	if _, err := Start(m, -1); err == nil {
		t.Error("negative workers accepted")
	}
	if _, err := Start(m, 33); err == nil {
		t.Error("too many workers accepted")
	}
	if _, err := StartFraction(m, 1.5); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

func TestStopClearsLoadOnce(t *testing.T) {
	_, m := newMeter()
	l, err := Start(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Stop(); err != nil {
		t.Fatal(err)
	}
	if m.BaseLoad() != 0 {
		t.Fatalf("base load = %v after stop", m.BaseLoad())
	}
	if err := l.Stop(); err == nil {
		t.Error("double Stop accepted")
	}
}

func TestRunForStopsAutomatically(t *testing.T) {
	e, m := newMeter()
	l, err := Start(m, 32)
	if err != nil {
		t.Fatal(err)
	}
	l.RunFor(e, 2*sim.Second)
	e.RunUntil(5 * sim.Second)
	m.Sync()
	if m.BaseLoad() != 0 {
		t.Fatal("load still active after RunFor deadline")
	}
	// Energy: 2 s at full load plus 3 s idle.
	full := energy.ServerCurve().PowerLoaded(1, 0)
	want := full*2 + 21.49*3
	if math.Abs(m.Joules()-want) > 0.5 {
		t.Fatalf("energy = %v, want %v", m.Joules(), want)
	}
}
