// Package rapl emulates Intel's Running Average Power Limit (RAPL) energy
// reporting interface, which the paper uses to measure server energy (§3):
// "The models maintain counters to keep track of the cumulative energy used
// by the CPUs. For each scenario, we read the energy counter for each CPU
// before and after the experiment."
//
// The emulation reproduces the real interface's sharp edges so measurement
// code exercises the same logic as on hardware:
//
//   - energy is reported in units of 2^-16 J (the Sandy Bridge+ default
//     Energy Status Unit, MSR_RAPL_POWER_UNIT[12:8] = 16);
//   - the MSR_PKG_ENERGY_STATUS counter is 32 bits wide and wraps around
//     (on a loaded server roughly hourly), so long measurements must apply
//     modular subtraction;
//   - reads are monotone non-decreasing modulo wraparound.
package rapl

import (
	"fmt"

	"greenenvy/internal/energy"
	"greenenvy/internal/sim"
)

// DefaultEnergyUnitJoules is 2^-16 J ≈ 15.3 µJ, the default RAPL energy
// status unit on Intel server parts.
const DefaultEnergyUnitJoules = 1.0 / 65536

// counterBits is the width of the hardware energy-status counter.
const counterBits = 32

// Domain identifies a RAPL power domain.
type Domain int

// Power domains exposed by server RAPL. The emulation meters everything
// under Package; PP0 and DRAM are derived fractions so tooling that sums
// domains keeps working.
const (
	Package Domain = iota
	PP0            // cores
	DRAM
)

// String returns the conventional sysfs-style domain name.
func (d Domain) String() string {
	switch d {
	case Package:
		return "package-0"
	case PP0:
		return "core"
	case DRAM:
		return "dram"
	default:
		return fmt.Sprintf("domain-%d", int(d))
	}
}

// Sensor exposes a host's energy.Meter through the RAPL counter interface.
type Sensor struct {
	meter *energy.Meter
	unit  float64
	// fractions of package energy attributed to derived domains.
	pp0Frac, dramFrac float64
}

// NewSensor wraps a meter with the default energy unit.
func NewSensor(m *energy.Meter) *Sensor {
	return &Sensor{meter: m, unit: DefaultEnergyUnitJoules, pp0Frac: 0.70, dramFrac: 0.12}
}

// EnergyUnitJoules returns the joules-per-count unit, as a real driver would
// decode from MSR_RAPL_POWER_UNIT.
func (s *Sensor) EnergyUnitJoules() float64 { return s.unit }

// ReadCounter returns the current raw 32-bit energy-status counter for the
// domain. It syncs the underlying meter first, mirroring that hardware
// counters are always current.
func (s *Sensor) ReadCounter(d Domain) uint32 {
	s.meter.Sync()
	return s.counter(d)
}

// ReadCounterAt is ReadCounter with the meter integrated to the explicit
// instant t rather than its engine clock — the sharded testbed's way of
// reading every partition's counters at one common completion time.
func (s *Sensor) ReadCounterAt(d Domain, t sim.Time) uint32 {
	s.meter.SyncAt(t)
	return s.counter(d)
}

func (s *Sensor) counter(d Domain) uint32 {
	j := s.meter.Joules()
	switch d {
	case PP0:
		j *= s.pp0Frac
	case DRAM:
		j *= s.dramFrac
	}
	counts := uint64(j / s.unit)
	return uint32(counts & (1<<counterBits - 1))
}

// CounterDelta returns the energy in joules between two raw counter reads,
// handling a single wraparound with modular arithmetic. Measurements longer
// than one full wrap (~18.2 hours at 1 kJ/s... in practice ~1 h at server
// power) are out of scope, as on real hardware.
func (s *Sensor) CounterDelta(before, after uint32) float64 {
	delta := uint64(after-before) & (1<<counterBits - 1)
	return float64(delta) * s.unit
}

// Measurement reads a set of domains before and after an interval, the way
// the paper's scripts bracket each iperf3 run.
type Measurement struct {
	sensor  *Sensor
	domains []Domain
	before  map[Domain]uint32
}

// Begin snapshots the counters for the given domains (Package if none
// specified).
func (s *Sensor) Begin(domains ...Domain) *Measurement {
	if len(domains) == 0 {
		domains = []Domain{Package}
	}
	m := &Measurement{sensor: s, domains: domains, before: make(map[Domain]uint32)}
	for _, d := range domains {
		m.before[d] = s.ReadCounter(d)
	}
	return m
}

// End reads the counters again and returns joules per domain since Begin.
func (m *Measurement) End() map[Domain]float64 {
	out := make(map[Domain]float64, len(m.domains))
	for _, d := range m.domains {
		out[d] = m.sensor.CounterDelta(m.before[d], m.sensor.ReadCounter(d))
	}
	return out
}

// EndPackage is a convenience for the common single-domain measurement.
func (m *Measurement) EndPackage() float64 {
	return m.End()[Package]
}

// EndPackageAt ends the package-domain measurement at the explicit instant
// t (see Sensor.ReadCounterAt).
func (m *Measurement) EndPackageAt(t sim.Time) float64 {
	return m.sensor.CounterDelta(m.before[Package], m.sensor.ReadCounterAt(Package, t))
}
