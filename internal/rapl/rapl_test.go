package rapl

import (
	"math"
	"testing"
	"testing/quick"

	"greenenvy/internal/energy"
	"greenenvy/internal/sim"
)

func newSensor(t *testing.T) (*sim.Engine, *energy.Meter, *Sensor) {
	t.Helper()
	e := sim.NewEngine()
	m := energy.NewMeter(e, energy.ServerCurve(), energy.DefaultCostModel())
	return e, m, NewSensor(m)
}

func TestEnergyUnit(t *testing.T) {
	_, _, s := newSensor(t)
	if s.EnergyUnitJoules() != 1.0/65536 {
		t.Fatalf("unit = %v, want 2^-16", s.EnergyUnitJoules())
	}
}

func TestCounterTracksMeter(t *testing.T) {
	e, m, s := newSensor(t)
	before := s.ReadCounter(Package)
	e.RunUntil(10 * sim.Second)
	after := s.ReadCounter(Package)
	got := s.CounterDelta(before, after)
	m.Sync()
	if math.Abs(got-m.Joules()) > s.EnergyUnitJoules()*2 {
		t.Fatalf("counter delta %v J, meter %v J", got, m.Joules())
	}
	// 10 s idle at 21.49 W.
	if math.Abs(got-214.9) > 0.01 {
		t.Fatalf("10s idle = %v J, want 214.9", got)
	}
}

func TestCounterMonotoneModuloWrap(t *testing.T) {
	e, _, s := newSensor(t)
	prev := s.ReadCounter(Package)
	for i := 0; i < 20; i++ {
		e.RunFor(sim.Second)
		cur := s.ReadCounter(Package)
		if delta := s.CounterDelta(prev, cur); delta < 0 {
			t.Fatalf("negative delta at step %d", i)
		}
		prev = cur
	}
}

func TestCounterWraparound(t *testing.T) {
	// The 32-bit counter wraps at 2^32 * 2^-16 J = 65536 J. At idle
	// (21.49 W) that is ~3050 s; run past it and verify modular
	// subtraction recovers the true energy.
	e, m, s := newSensor(t)
	before := s.ReadCounter(Package)
	const seconds = 4000
	e.RunUntil(seconds * sim.Second)
	after := s.ReadCounter(Package)
	m.Sync()
	if m.Joules() <= 65536 {
		t.Fatalf("run too short to wrap: %v J", m.Joules())
	}
	// CounterDelta recovers the energy modulo one full wrap: true energy
	// is 21.49*4000 = 85960 J; the counter sees 85960 mod 65536.
	got := s.CounterDelta(before, after)
	wrapped := math.Mod(21.49*seconds, 65536)
	if math.Abs(got-wrapped) > 0.01 {
		t.Fatalf("delta = %v, want %v (modular)", got, wrapped)
	}
}

func TestCounterDeltaWrapProperty(t *testing.T) {
	_, _, s := newSensor(t)
	f := func(before uint32, add uint32) bool {
		after := before + add // natural uint32 wraparound
		got := s.CounterDelta(before, after)
		want := float64(add) * s.EnergyUnitJoules()
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestDerivedDomainsAreFractions(t *testing.T) {
	e, _, s := newSensor(t)
	e.RunUntil(100 * sim.Second)
	pkg := s.CounterDelta(0, s.ReadCounter(Package))
	pp0 := s.CounterDelta(0, s.ReadCounter(PP0))
	dram := s.CounterDelta(0, s.ReadCounter(DRAM))
	if pp0 >= pkg || dram >= pkg {
		t.Fatalf("derived domains exceed package: pkg=%v pp0=%v dram=%v", pkg, pp0, dram)
	}
	if pp0 <= 0 || dram <= 0 {
		t.Fatal("derived domains empty")
	}
}

func TestMeasurementBracketsInterval(t *testing.T) {
	e, _, s := newSensor(t)
	e.RunUntil(5 * sim.Second) // pre-experiment energy must be excluded
	meas := s.Begin()
	e.RunUntil(15 * sim.Second)
	j := meas.EndPackage()
	if math.Abs(j-21.49*10) > 0.01 {
		t.Fatalf("measured %v J, want %v (10 s only)", j, 21.49*10)
	}
}

func TestMeasurementMultipleDomains(t *testing.T) {
	e, _, s := newSensor(t)
	meas := s.Begin(Package, PP0, DRAM)
	e.RunUntil(sim.Second)
	out := meas.End()
	if len(out) != 3 {
		t.Fatalf("domains = %v", out)
	}
	if out[Package] <= out[PP0] || out[Package] <= out[DRAM] {
		t.Fatalf("package should dominate: %v", out)
	}
}

func TestDomainString(t *testing.T) {
	if Package.String() != "package-0" || PP0.String() != "core" || DRAM.String() != "dram" {
		t.Fatal("unexpected domain names")
	}
	if Domain(9).String() != "domain-9" {
		t.Fatalf("unknown domain name = %q", Domain(9).String())
	}
}
