package core

import (
	"math"
	"testing"
)

func TestFairnessEnergyFrontierMonotone(t *testing.T) {
	p := paperPower()
	pts, err := FairnessEnergyFrontier(1.25e9, c10g, p, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 11 {
		t.Fatalf("points = %d", len(pts))
	}
	// Endpoints: fair and full monopoly.
	if pts[0].Weight != 0.5 || math.Abs(pts[0].Jain-1) > 1e-12 || math.Abs(pts[0].SavingsFrac) > 1e-12 {
		t.Fatalf("fair endpoint = %+v", pts[0])
	}
	last := pts[len(pts)-1]
	if last.Weight != 1.0 || math.Abs(last.Jain-0.5) > 1e-12 {
		t.Fatalf("monopoly endpoint = %+v", last)
	}
	if math.Abs(last.SavingsFrac-0.163) > 0.01 {
		t.Fatalf("monopoly savings = %v, want ~0.163", last.SavingsFrac)
	}
	// Monotone: fairness falls, savings rise.
	for i := 1; i < len(pts); i++ {
		if pts[i].Jain >= pts[i-1].Jain {
			t.Fatalf("Jain not strictly decreasing at %d", i)
		}
		if pts[i].SavingsFrac < pts[i-1].SavingsFrac {
			t.Fatalf("savings decreased at %d", i)
		}
		if pts[i].EnergyJ > pts[i-1].EnergyJ {
			t.Fatalf("energy increased at %d", i)
		}
	}
}

func TestFairnessEnergyFrontierValidation(t *testing.T) {
	if _, err := FairnessEnergyFrontier(1e9, c10g, paperPower(), 1); err == nil {
		t.Fatal("steps < 2 accepted")
	}
}

func TestVerifyAssumptionsPaperCurve(t *testing.T) {
	a, err := VerifyAssumptions(paperPower(), c10g)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Holds() {
		t.Fatalf("paper curve fails hypotheses: %+v", a)
	}
	if math.Abs(a.IdleW-21.49) > 0.1 {
		t.Fatalf("idle = %v", a.IdleW)
	}
	if math.Abs(a.LineRateW-35.82) > 0.2 {
		t.Fatalf("line rate = %v", a.LineRateW)
	}
	if math.Abs(a.MaxSavingsFrac-0.163) > 0.01 {
		t.Fatalf("max savings = %v, want ~0.163", a.MaxSavingsFrac)
	}
}

func TestVerifyAssumptionsRejectsConvex(t *testing.T) {
	convex := func(x float64) float64 { return (x / 1e9) * (x / 1e9) }
	a, err := VerifyAssumptions(convex, c10g)
	if err != nil {
		t.Fatal(err)
	}
	if a.Holds() {
		t.Fatal("convex curve passed the hypotheses")
	}
	if a.MaxSavingsFrac >= 0 {
		t.Fatalf("convex curve should show negative savings, got %v", a.MaxSavingsFrac)
	}
}

func TestVerifyAssumptionsDetectsNonIncreasing(t *testing.T) {
	hump := func(x float64) float64 { return -math.Pow(x/1e10-0.5, 2) }
	a, err := VerifyAssumptions(hump, c10g)
	if err != nil {
		t.Fatal(err)
	}
	if a.Increasing {
		t.Fatal("hump curve marked increasing")
	}
}

func TestVerifyAssumptionsValidation(t *testing.T) {
	if _, err := VerifyAssumptions(paperPower(), 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}
