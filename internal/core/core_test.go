package core

import (
	"math"
	"testing"
	"testing/quick"

	"greenenvy/internal/energy"
)

// paperPower adapts the calibrated energy model into a PowerFunc at MTU
// 9000, the paper's Figure 2 curve.
func paperPower() PowerFunc {
	m := energy.DefaultModel()
	return func(bps float64) float64 { return m.SenderPower(bps, 8940, "cubic") }
}

const c10g = 10e9

func TestFairAllocation(t *testing.T) {
	x := FairAllocation(c10g, 4)
	for _, xi := range x {
		if xi != 2.5e9 {
			t.Fatalf("fair allocation = %v", x)
		}
	}
}

func TestPaperCurveSatisfiesHypotheses(t *testing.T) {
	p := paperPower()
	if !IsStrictlyConcave(p, c10g, 500) {
		t.Fatal("calibrated curve not strictly concave on [0, 10G]")
	}
	if !HasDecreasingMarginal(p, c10g, 100) {
		t.Fatal("marginal power not decreasing")
	}
}

func TestTheorem1OnPaperCurve(t *testing.T) {
	p := paperPower()
	cases := [][]float64{
		{10e9, 0},
		{7.5e9, 2.5e9},
		{6e9, 4e9},
		{3e9, 3e9, 4e9},
		{1e9, 2e9, 3e9, 4e9},
	}
	for _, y := range cases {
		fair, yp, holds, err := CheckTheorem1(p, c10g, y)
		if err != nil {
			t.Fatalf("y=%v: %v", y, err)
		}
		if !holds {
			t.Fatalf("Theorem 1 violated for y=%v: fair=%v y=%v", y, fair, yp)
		}
	}
}

func TestTheorem1HeadlineNumbers(t *testing.T) {
	// Fair two-flow split vs full-speed-then-idle on 10 Gbit transfers:
	// 137 J vs 114.6 J, 16% (paper §4.1).
	p := paperPower()
	flows := []Flow{{Bytes: 1.25e9}, {Bytes: 1.25e9}} // 10 Gbit each
	fair, err := FairShare(flows, c10g)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := FullSpeedThenIdle(flows, c10g)
	if err != nil {
		t.Fatal(err)
	}
	ef, es := fair.Energy(p), serial.Energy(p)
	if math.Abs(ef-137) > 1.5 {
		t.Errorf("fair energy = %.2f J, want ~137", ef)
	}
	if math.Abs(es-114.6) > 1.5 {
		t.Errorf("serial energy = %.2f J, want ~114.6", es)
	}
	sav, err := SavingsOverFair(serial, c10g, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sav-0.163) > 0.01 {
		t.Errorf("savings = %.3f, want ~0.163", sav)
	}
}

func TestJensenComputation(t *testing.T) {
	p := paperPower()
	y := []float64{2e9, 8e9}
	pm, mp := ProveTheorem1ByJensen(p, y)
	if pm <= mp {
		t.Fatalf("Jensen inequality failed: p(mean)=%v, mean(p)=%v", pm, mp)
	}
}

// Property: Theorem 1 holds for random strictly concave curves and random
// allocations.
func TestTheorem1Property(t *testing.T) {
	f := func(a, b uint16, split uint16, nRaw uint8) bool {
		// p(x) = A·x^0.6 + B·x — strictly concave increasing for A>0.
		A := 1 + float64(a%1000)
		B := float64(b % 100)
		p := func(x float64) float64 { return A*math.Pow(x/1e9, 0.6) + B*x/1e9 }
		n := 2 + int(nRaw%6)
		// Build a random non-fair allocation summing to capacity.
		frac := 0.5 + float64(split)/65535*0.5 // [0.5, 1]
		if frac == 0.5 {
			frac = 0.6
		}
		y := make([]float64, n)
		y[0] = frac * c10g
		for i := 1; i < n; i++ {
			y[i] = (1 - frac) * c10g / float64(n-1)
		}
		_, _, holds, err := CheckTheorem1(p, c10g, y)
		return err == nil && holds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: for a CONVEX curve, the fair allocation is best, not worst —
// the theorem's hypothesis is necessary.
func TestConvexCurveReversesConclusion(t *testing.T) {
	p := func(x float64) float64 { return (x / 1e9) * (x / 1e9) }
	fair, yp, holds, err := CheckTheorem1(p, c10g, []float64{8e9, 2e9})
	if err != nil {
		t.Fatal(err)
	}
	if holds {
		t.Fatalf("convex curve should reverse the inequality: fair=%v y=%v", fair, yp)
	}
}

func TestCheckTheorem1Validation(t *testing.T) {
	p := paperPower()
	if _, _, _, err := CheckTheorem1(p, c10g, []float64{c10g}); err == nil {
		t.Error("single flow accepted")
	}
	if _, _, _, err := CheckTheorem1(p, c10g, []float64{5e9, 4e9}); err == nil {
		t.Error("non-capacity sum accepted")
	}
	if _, _, _, err := CheckTheorem1(p, c10g, []float64{5e9, 5e9}); err == nil {
		t.Error("fair allocation accepted as y")
	}
	if _, _, _, err := CheckTheorem1(p, c10g, []float64{-1e9, 11e9}); err == nil {
		t.Error("negative throughput accepted")
	}
}

func TestFairShareSchedule(t *testing.T) {
	flows := []Flow{{Bytes: 1.25e9}, {Bytes: 1.25e9}}
	s, err := FairShare(flows, c10g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Duration()-2.0) > 1e-9 {
		t.Fatalf("fair duration = %v, want 2", s.Duration())
	}
	fcts := s.FCTs()
	if math.Abs(fcts[0]-2) > 1e-9 || math.Abs(fcts[1]-2) > 1e-9 {
		t.Fatalf("FCTs = %v, want both 2", fcts)
	}
}

func TestFairShareUnequalSizesWorkConserving(t *testing.T) {
	// 5 Gbit and 15 Gbit: share until the small one finishes at 1 s, then
	// the big one takes the full link: 10 Gbit left → +1 s. Makespan 2 s.
	flows := []Flow{{Bytes: 0.625e9}, {Bytes: 1.875e9}}
	s, err := FairShare(flows, c10g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Duration()-2.0) > 1e-9 {
		t.Fatalf("duration = %v, want 2", s.Duration())
	}
	fcts := s.FCTs()
	if math.Abs(fcts[0]-1) > 1e-9 {
		t.Fatalf("small flow FCT = %v, want 1", fcts[0])
	}
}

func TestWeightedShareMatchesFairAtHalf(t *testing.T) {
	p := paperPower()
	flows := []Flow{{Bytes: 1.25e9}, {Bytes: 1.25e9}}
	fair, _ := FairShare(flows, c10g)
	w, err := WeightedShare(flows, c10g, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fair.Energy(p)-w.Energy(p)) > 1e-6 {
		t.Fatalf("weighted(0.5) energy %v != fair %v", w.Energy(p), fair.Energy(p))
	}
}

func TestWeightedShareExtremesMatchSerial(t *testing.T) {
	p := paperPower()
	flows := []Flow{{Bytes: 1.25e9}, {Bytes: 1.25e9}}
	serial, _ := FullSpeedThenIdle(flows, c10g)
	w, err := WeightedShare(flows, c10g, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(serial.Energy(p)-w.Energy(p)) > 1e-6 {
		t.Fatalf("weighted(1,0) energy %v != serial %v", w.Energy(p), serial.Energy(p))
	}
}

func TestWeightedShareMonotoneSavings(t *testing.T) {
	// Figure 1's shape: savings increase monotonically as the allocation
	// moves away from fair.
	p := paperPower()
	flows := []Flow{{Bytes: 1.25e9}, {Bytes: 1.25e9}}
	prev := -1.0
	for _, f := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		s, err := WeightedShare(flows, c10g, []float64{f, 1 - f})
		if err != nil {
			t.Fatal(err)
		}
		sav, err := SavingsOverFair(s, c10g, p)
		if err != nil {
			t.Fatal(err)
		}
		if sav < prev {
			t.Fatalf("savings not monotone at f=%v: %v < %v", f, sav, prev)
		}
		prev = sav
	}
	if math.Abs(prev-0.163) > 0.01 {
		t.Fatalf("max savings = %v, want ~0.163", prev)
	}
}

func TestWeightedShareValidation(t *testing.T) {
	flows := []Flow{{Bytes: 1e9}, {Bytes: 1e9}}
	if _, err := WeightedShare(flows, c10g, []float64{1}); err == nil {
		t.Error("weight count mismatch accepted")
	}
	if _, err := WeightedShare(flows, c10g, []float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := WeightedShare(nil, c10g, nil); err == nil {
		t.Error("empty flows accepted")
	}
	if _, err := FairShare(flows, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := FullSpeedThenIdle([]Flow{{Bytes: -1}}, c10g); err == nil {
		t.Error("negative size accepted")
	}
}

func TestFullSpeedThenIdleSRPTOrder(t *testing.T) {
	flows := []Flow{{Bytes: 2e9}, {Bytes: 0.5e9}, {Bytes: 1e9}}
	s, err := FullSpeedThenIdle(flows, c10g)
	if err != nil {
		t.Fatal(err)
	}
	fcts := s.FCTs()
	// Shortest first: flow 1 (0.5 GB) finishes first, then 2, then 0.
	if !(fcts[1] < fcts[2] && fcts[2] < fcts[0]) {
		t.Fatalf("FCTs = %v, want SRPT order", fcts)
	}
}

func TestDatacenterExtrapolation(t *testing.T) {
	d := PaperDatacenter()
	if d.YearlyEnergyUSD() != 1e9 {
		t.Fatalf("yearly = %v, want 1e9", d.YearlyEnergyUSD())
	}
	usd, err := d.YearlySavingsUSD(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if usd != 10_000_000 {
		t.Fatalf("1%% savings = $%v/yr, want $10M (paper §4.2)", usd)
	}
	if _, err := d.YearlySavingsUSD(2); err == nil {
		t.Error("out-of-range fraction accepted")
	}
}

func TestSchedulerSRPTBeatsPSOnBothAxes(t *testing.T) {
	// The future-work claim: for simultaneous equal flows, SRPT saves
	// energy and improves mean FCT simultaneously.
	p := paperPower()
	flows := []Flow{{Bytes: 1.25e9}, {Bytes: 1.25e9}}
	c, err := Compare(flows, c10g, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.SavingFrac-0.163) > 0.01 {
		t.Errorf("SRPT saving = %v, want ~0.163", c.SavingFrac)
	}
	if c.FCTSpeedup <= 1 {
		t.Errorf("SRPT mean-FCT speedup = %v, want > 1", c.FCTSpeedup)
	}
	if math.Abs(c.MakespanSecs-2) > 1e-9 {
		t.Errorf("makespan = %v, want 2", c.MakespanSecs)
	}
}

func TestSchedulerWithArrivals(t *testing.T) {
	p := paperPower()
	flows := []Flow{
		{Bytes: 1.25e9, Release: 0},
		{Bytes: 0.625e9, Release: 0.5},
		{Bytes: 0.25e9, Release: 0.6},
	}
	ps, err := Simulate(flows, c10g, ProcessorSharing)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Simulate(flows, c10g, SRPT)
	if err != nil {
		t.Fatal(err)
	}
	// Work conservation: equal makespans.
	if math.Abs(ps.Duration()-sr.Duration()) > 1e-9 {
		t.Fatalf("makespans differ: %v vs %v", ps.Duration(), sr.Duration())
	}
	if sr.Energy(p) >= ps.Energy(p) {
		t.Fatalf("SRPT energy %v >= PS %v", sr.Energy(p), ps.Energy(p))
	}
	if sr.MeanFCT() >= ps.MeanFCT() {
		t.Fatalf("SRPT mean FCT %v >= PS %v", sr.MeanFCT(), ps.MeanFCT())
	}
}

func TestSRPTMeanFCTOptimalOnMixedSizes(t *testing.T) {
	// Regression test: an early-finishing mouse's FCT must not be
	// overwritten by later phases. SRPT's mean FCT here is exactly
	// (0.05 + 0.15 + 0.25 + 1.25 + 3.25)/5 = 0.99 s.
	flows := []Flow{{Bytes: 2.5e9}, {Bytes: 1.25e9}, {Bytes: 125e6}, {Bytes: 125e6}, {Bytes: 62.5e6}}
	s, err := Simulate(flows, c10g, SRPT)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.MeanFCT(); math.Abs(got-0.99) > 1e-6 {
		t.Fatalf("SRPT mean FCT = %v, want 0.99", got)
	}
	fcts := s.FCTs()
	if math.Abs(fcts[3]-0.25) > 1e-6 {
		t.Fatalf("second mouse FCT = %v, want 0.25", fcts[3])
	}
	// SRPT is mean-FCT optimal: processor sharing must not beat it.
	ps, err := Simulate(flows, c10g, ProcessorSharing)
	if err != nil {
		t.Fatal(err)
	}
	if ps.MeanFCT() < s.MeanFCT() {
		t.Fatalf("PS mean FCT %v beat SRPT %v", ps.MeanFCT(), s.MeanFCT())
	}
}

func TestSimulateIdleGap(t *testing.T) {
	flows := []Flow{{Bytes: 1.25e9, Release: 0}, {Bytes: 1.25e9, Release: 5}}
	s, err := Simulate(flows, c10g, SRPT)
	if err != nil {
		t.Fatal(err)
	}
	// Flow 0 done at 1s; gap until 5s; flow 1 done at 6s.
	if math.Abs(s.Duration()-6) > 1e-9 {
		t.Fatalf("duration = %v, want 6", s.Duration())
	}
	fcts := s.FCTs()
	if math.Abs(fcts[1]-1) > 1e-9 {
		t.Fatalf("flow 1 FCT = %v, want 1 (release-relative)", fcts[1])
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(nil, c10g, SRPT); err == nil {
		t.Error("empty flows accepted")
	}
	if _, err := Simulate([]Flow{{Bytes: 1, Release: -1}}, c10g, SRPT); err == nil {
		t.Error("negative release accepted")
	}
	if _, err := Simulate([]Flow{{Bytes: 1}}, c10g, Policy(9)); err == nil {
		t.Error("unknown policy accepted")
	}
	if ProcessorSharing.String() == SRPT.String() {
		t.Error("policy names collide")
	}
}

// Property: energy of any weighted schedule never exceeds fair and never
// beats serial (for two equal flows on the concave paper curve).
func TestScheduleEnergyBoundsProperty(t *testing.T) {
	p := paperPower()
	flows := []Flow{{Bytes: 1.25e9}, {Bytes: 1.25e9}}
	fair, _ := FairShare(flows, c10g)
	serial, _ := FullSpeedThenIdle(flows, c10g)
	ef, es := fair.Energy(p), serial.Energy(p)
	f := func(raw uint16) bool {
		w := 0.5 + 0.5*float64(raw)/65535
		s, err := WeightedShare(flows, c10g, []float64{w, 1 - w})
		if err != nil {
			return false
		}
		e := s.Energy(p)
		return e <= ef+1e-6 && e >= es-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
