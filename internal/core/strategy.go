package core

import (
	"fmt"
	"math"
	"sort"
)

// epsBits is the tolerance for "flow finished" comparisons on bit counts.
// Demands are on the order of 1e10 bits and float64 accumulation error
// stays below ~1e-5 bits at that magnitude, so a millibit threshold is
// safely above rounding noise and far below any real demand.
const epsBits = 1e-3

// Flow is a transfer demand: Bytes to move, released at time Release
// (seconds from experiment start).
type Flow struct {
	Bytes   float64
	Release float64
}

// Phase is one interval of a schedule during which each flow sends at a
// constant rate.
type Phase struct {
	Start, End float64   // seconds
	Rates      []float64 // bits/second per flow
}

// Schedule is a piecewise-constant rate plan for n flows over a shared
// link.
type Schedule struct {
	Flows  []Flow
	Phases []Phase
}

// Duration returns the schedule's makespan in seconds.
func (s Schedule) Duration() float64 {
	if len(s.Phases) == 0 {
		return 0
	}
	return s.Phases[len(s.Phases)-1].End
}

// Energy integrates Σ p(rateᵢ(t)) dt over the whole schedule, with each
// flow on its own host: idle hosts burn p(0) until the makespan — the
// paper's measurement window runs "from when the experiment began until
// both flows successfully completed".
func (s Schedule) Energy(p PowerFunc) float64 {
	total := 0.0
	for _, ph := range s.Phases {
		dt := ph.End - ph.Start
		for _, r := range ph.Rates {
			total += p(r) * dt
		}
	}
	return total
}

// FCTs returns each flow's completion time (seconds from experiment
// start).
func (s Schedule) FCTs() []float64 {
	n := len(s.Flows)
	sent := make([]float64, n)
	fct := make([]float64, n)
	for _, ph := range s.Phases {
		dt := ph.End - ph.Start
		for i, r := range ph.Rates {
			if sent[i] >= s.Flows[i].Bytes*8-epsBits {
				continue // already complete; keep the first FCT
			}
			sent[i] += r * dt
			if sent[i] >= s.Flows[i].Bytes*8-epsBits {
				fct[i] = ph.End - s.Flows[i].Release
			}
		}
	}
	return fct
}

// MeanFCT returns the average flow completion time.
func (s Schedule) MeanFCT() float64 {
	f := s.FCTs()
	sum := 0.0
	for _, v := range f {
		sum += v
	}
	return sum / float64(len(f))
}

// validateFlows rejects empty or nonsensical demand sets.
func validateFlows(flows []Flow, capacityBps float64) error {
	if len(flows) == 0 {
		return fmt.Errorf("core: no flows")
	}
	if capacityBps <= 0 {
		return fmt.Errorf("core: non-positive capacity")
	}
	for i, f := range flows {
		if f.Bytes <= 0 {
			return fmt.Errorf("core: flow %d has non-positive size", i)
		}
		if f.Release != 0 {
			return fmt.Errorf("core: strategy schedules require simultaneous release (flow %d releases at %v); use the Scheduler for arrivals", i, f.Release)
		}
	}
	return nil
}

// FairShare builds the processor-sharing schedule: all active flows split
// the link equally; when one finishes, the survivors re-split (max-min
// fair, work conserving). This is the TCP fair share the paper's Figure 1
// identifies as the least energy-efficient allocation.
func FairShare(flows []Flow, capacityBps float64) (Schedule, error) {
	if err := validateFlows(flows, capacityBps); err != nil {
		return Schedule{}, err
	}
	n := len(flows)
	remaining := make([]float64, n)
	for i, f := range flows {
		remaining[i] = f.Bytes * 8
	}
	s := Schedule{Flows: flows}
	t := 0.0
	for {
		active := 0
		for _, r := range remaining {
			if r > epsBits {
				active++
			}
		}
		if active == 0 {
			break
		}
		share := capacityBps / float64(active)
		// Next completion among active flows.
		dt := math.Inf(1)
		for _, r := range remaining {
			if r > epsBits {
				if d := r / share; d < dt {
					dt = d
				}
			}
		}
		rates := make([]float64, n)
		for i, r := range remaining {
			if r > epsBits {
				rates[i] = share
				remaining[i] = r - share*dt
			}
		}
		s.Phases = append(s.Phases, Phase{Start: t, End: t + dt, Rates: rates})
		t += dt
	}
	return s, nil
}

// WeightedShare builds the schedule where active flows split the link in
// proportion to weights (the Figure 1 sweep: weights (f, 1−f)). It is work
// conserving: when a flow finishes, the remaining flows re-normalize.
// Weight-zero flows receive capacity only once all weighted flows finish.
func WeightedShare(flows []Flow, capacityBps float64, weights []float64) (Schedule, error) {
	if err := validateFlows(flows, capacityBps); err != nil {
		return Schedule{}, err
	}
	if len(weights) != len(flows) {
		return Schedule{}, fmt.Errorf("core: %d weights for %d flows", len(weights), len(flows))
	}
	for i, w := range weights {
		if w < 0 {
			return Schedule{}, fmt.Errorf("core: negative weight %v for flow %d", w, i)
		}
	}
	n := len(flows)
	remaining := make([]float64, n)
	for i, f := range flows {
		remaining[i] = f.Bytes * 8
	}
	s := Schedule{Flows: flows}
	t := 0.0
	for {
		// Active weighted flows share by weight; if none, weight-zero
		// flows share equally (background class).
		var wsum float64
		activeWeighted, activeZero := 0, 0
		for i, r := range remaining {
			if r <= epsBits {
				continue
			}
			if weights[i] > 0 {
				wsum += weights[i]
				activeWeighted++
			} else {
				activeZero++
			}
		}
		if activeWeighted+activeZero == 0 {
			break
		}
		rates := make([]float64, n)
		for i, r := range remaining {
			if r <= epsBits {
				continue
			}
			switch {
			case activeWeighted > 0 && weights[i] > 0:
				rates[i] = capacityBps * weights[i] / wsum
			case activeWeighted == 0:
				rates[i] = capacityBps / float64(activeZero)
			}
		}
		dt := math.Inf(1)
		for i, r := range remaining {
			if r > epsBits && rates[i] > 0 {
				if d := r / rates[i]; d < dt {
					dt = d
				}
			}
		}
		for i := range remaining {
			remaining[i] -= rates[i] * dt
		}
		s.Phases = append(s.Phases, Phase{Start: t, End: t + dt, Rates: rates})
		t += dt
	}
	return s, nil
}

// FullSpeedThenIdle builds the serial schedule: flows take the full link
// one at a time, shortest first (SRPT order — also optimal for mean FCT),
// while the others idle. This is the paper's most energy-efficient
// allocation.
func FullSpeedThenIdle(flows []Flow, capacityBps float64) (Schedule, error) {
	if err := validateFlows(flows, capacityBps); err != nil {
		return Schedule{}, err
	}
	n := len(flows)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return flows[order[a]].Bytes < flows[order[b]].Bytes })
	s := Schedule{Flows: flows}
	t := 0.0
	for _, i := range order {
		dt := flows[i].Bytes * 8 / capacityBps
		rates := make([]float64, n)
		rates[i] = capacityBps
		s.Phases = append(s.Phases, Phase{Start: t, End: t + dt, Rates: rates})
		t += dt
	}
	return s, nil
}

// SavingsOverFair returns the fractional energy saving of schedule s
// relative to the fair-share schedule for the same flows and capacity.
func SavingsOverFair(s Schedule, capacityBps float64, p PowerFunc) (float64, error) {
	fair, err := FairShare(s.Flows, capacityBps)
	if err != nil {
		return 0, err
	}
	ef := fair.Energy(p)
	if ef == 0 {
		return 0, fmt.Errorf("core: fair schedule has zero energy")
	}
	return (ef - s.Energy(p)) / ef, nil
}
