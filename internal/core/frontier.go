package core

import (
	"fmt"
	"math"
)

// FrontierPoint is one point of the fairness/energy trade-off curve.
type FrontierPoint struct {
	// Weight is the bandwidth fraction of flow 1 while both flows are
	// active (0.5 = fair).
	Weight float64
	// Jain is Jain's fairness index of the (w, 1−w) allocation.
	Jain float64
	// EnergyJ is the schedule's total energy.
	EnergyJ float64
	// SavingsFrac is the energy saving relative to the fair point.
	SavingsFrac float64
}

// FairnessEnergyFrontier sweeps the bandwidth split between two equal flows
// and returns the (fairness, energy) trade-off curve — the quantified form
// of the paper's title claim. For strictly concave p the curve is monotone:
// every unit of fairness surrendered buys energy.
func FairnessEnergyFrontier(flowBytes, capacityBps float64, p PowerFunc, steps int) ([]FrontierPoint, error) {
	if steps < 2 {
		return nil, fmt.Errorf("core: frontier needs at least 2 steps")
	}
	flows := []Flow{{Bytes: flowBytes}, {Bytes: flowBytes}}
	fair, err := FairShare(flows, capacityBps)
	if err != nil {
		return nil, err
	}
	fairJ := fair.Energy(p)
	out := make([]FrontierPoint, 0, steps)
	for i := 0; i < steps; i++ {
		w := 0.5 + 0.5*float64(i)/float64(steps-1)
		s, err := WeightedShare(flows, capacityBps, []float64{w, 1 - w})
		if err != nil {
			return nil, err
		}
		e := s.Energy(p)
		out = append(out, FrontierPoint{
			Weight:      w,
			Jain:        1 / (2 * (w*w + (1-w)*(1-w))),
			EnergyJ:     e,
			SavingsFrac: (fairJ - e) / fairJ,
		})
	}
	return out, nil
}

// Assumptions reports whether a power curve satisfies the hypotheses the
// paper's analysis needs, with the quantities used to decide.
type Assumptions struct {
	// StrictlyConcave is Theorem 1's hypothesis.
	StrictlyConcave bool
	// Increasing: more throughput never costs less power.
	Increasing bool
	// DecreasingMarginal is §5's phrasing of concavity.
	DecreasingMarginal bool
	// IdleW and LineRateW are p(0) and p(C).
	IdleW, LineRateW float64
	// MaxSavingsFrac is the fair-vs-serial saving for two equal flows
	// filling the link — the best the paper's strategy can do on this
	// curve.
	MaxSavingsFrac float64
}

// Holds reports whether every hypothesis is satisfied.
func (a Assumptions) Holds() bool {
	return a.StrictlyConcave && a.Increasing && a.DecreasingMarginal
}

// VerifyAssumptions checks a power curve against the paper's requirements
// and computes the attainable headline saving.
func VerifyAssumptions(p PowerFunc, capacityBps float64) (Assumptions, error) {
	if capacityBps <= 0 {
		return Assumptions{}, fmt.Errorf("core: non-positive capacity")
	}
	a := Assumptions{
		StrictlyConcave:    IsStrictlyConcave(p, capacityBps, 500),
		DecreasingMarginal: HasDecreasingMarginal(p, capacityBps, 100),
		Increasing:         true,
		IdleW:              p(0),
		LineRateW:          p(capacityBps),
	}
	prev := math.Inf(-1)
	for i := 0; i <= 200; i++ {
		v := p(capacityBps * float64(i) / 200)
		if v < prev {
			a.Increasing = false
			break
		}
		prev = v
	}
	// Two equal flows, each moving half a link-second of data.
	flows := []Flow{{Bytes: capacityBps / 16}, {Bytes: capacityBps / 16}}
	serial, err := FullSpeedThenIdle(flows, capacityBps)
	if err != nil {
		return a, err
	}
	sav, err := SavingsOverFair(serial, capacityBps, p)
	if err != nil {
		// Degenerate curves (e.g. zero power at the fair point) have no
		// meaningful savings ratio; the hypothesis flags still stand.
		a.MaxSavingsFrac = math.NaN()
		return a, nil
	}
	a.MaxSavingsFrac = sav
	return a, nil
}
