package core

import (
	"fmt"
	"math"
)

// Policy selects how a shared link is divided among released, unfinished
// flows — the §5 future-work question: should datacenter transports keep
// approximating processor sharing (fairness), or serialize like SRPT for
// energy?
type Policy int

// Scheduling policies.
const (
	// ProcessorSharing splits capacity equally among active flows (the
	// idealization of TCP fair share).
	ProcessorSharing Policy = iota
	// SRPT gives the full link to the flow with the shortest remaining
	// processing time, preemptively.
	SRPT
)

// String names the policy.
func (p Policy) String() string {
	if p == SRPT {
		return "srpt"
	}
	return "processor-sharing"
}

// Simulate builds the fluid schedule of the policy over flows with
// arbitrary release times. Both policies are work conserving, so they share
// a makespan; their energy and FCT profiles differ.
func Simulate(flows []Flow, capacityBps float64, policy Policy) (Schedule, error) {
	if len(flows) == 0 {
		return Schedule{}, fmt.Errorf("core: no flows")
	}
	if capacityBps <= 0 {
		return Schedule{}, fmt.Errorf("core: non-positive capacity")
	}
	n := len(flows)
	remaining := make([]float64, n)
	for i, f := range flows {
		if f.Bytes <= 0 {
			return Schedule{}, fmt.Errorf("core: flow %d has non-positive size", i)
		}
		if f.Release < 0 {
			return Schedule{}, fmt.Errorf("core: flow %d has negative release", i)
		}
		remaining[i] = f.Bytes * 8
	}

	s := Schedule{Flows: flows}
	t := 0.0
	for {
		// Determine the active set and the next release.
		nextRelease := math.Inf(1)
		var active []int
		for i, f := range flows {
			if remaining[i] <= epsBits {
				continue
			}
			if f.Release > t+1e-12 {
				if f.Release < nextRelease {
					nextRelease = f.Release
				}
				continue
			}
			active = append(active, i)
		}
		if len(active) == 0 {
			if math.IsInf(nextRelease, 1) {
				break // all done
			}
			// Idle gap until the next release.
			s.Phases = append(s.Phases, Phase{Start: t, End: nextRelease, Rates: make([]float64, n)})
			t = nextRelease
			continue
		}

		rates := make([]float64, n)
		switch policy {
		case ProcessorSharing:
			share := capacityBps / float64(len(active))
			for _, i := range active {
				rates[i] = share
			}
		case SRPT:
			best := active[0]
			for _, i := range active[1:] {
				if remaining[i] < remaining[best] {
					best = i
				}
			}
			rates[best] = capacityBps
		default:
			return Schedule{}, fmt.Errorf("core: unknown policy %d", policy)
		}

		// Advance to the next event: a completion or a release.
		dt := nextRelease - t
		for _, i := range active {
			if rates[i] > 0 {
				if d := remaining[i] / rates[i]; d < dt {
					dt = d
				}
			}
		}
		for i := range remaining {
			remaining[i] -= rates[i] * dt
		}
		s.Phases = append(s.Phases, Phase{Start: t, End: t + dt, Rates: rates})
		t += dt
	}
	return s, nil
}

// Comparison summarizes the energy/FCT trade of SRPT vs processor sharing
// for one workload.
type Comparison struct {
	PSEnergyJ    float64
	SRPTEnergyJ  float64
	SavingFrac   float64 // (PS − SRPT) / PS
	PSMeanFCT    float64
	SRPTMeanFCT  float64
	FCTSpeedup   float64 // PS mean FCT / SRPT mean FCT
	MakespanSecs float64
}

// Compare runs both policies on the workload and reports the trade-off.
// The paper's headline corresponds to two simultaneous equal flows:
// SavingFrac ≈ 0.16 with FCTSpeedup > 1 — unfairness wins on both axes.
func Compare(flows []Flow, capacityBps float64, p PowerFunc) (Comparison, error) {
	ps, err := Simulate(flows, capacityBps, ProcessorSharing)
	if err != nil {
		return Comparison{}, err
	}
	sr, err := Simulate(flows, capacityBps, SRPT)
	if err != nil {
		return Comparison{}, err
	}
	c := Comparison{
		PSEnergyJ:    ps.Energy(p),
		SRPTEnergyJ:  sr.Energy(p),
		PSMeanFCT:    ps.MeanFCT(),
		SRPTMeanFCT:  sr.MeanFCT(),
		MakespanSecs: ps.Duration(),
	}
	if c.PSEnergyJ > 0 {
		c.SavingFrac = (c.PSEnergyJ - c.SRPTEnergyJ) / c.PSEnergyJ
	}
	if c.SRPTMeanFCT > 0 {
		c.FCTSpeedup = c.PSMeanFCT / c.SRPTMeanFCT
	}
	return c, nil
}
