package core
