// Package core implements the paper's analytical contribution: the
// fairness/energy trade-off. It provides Theorem 1 (the TCP fair share is
// the single worst allocation for energy when per-host power is strictly
// concave in throughput), allocation strategies (fair, weighted, and the
// "full speed, then idle" serial schedule), closed-form energy predictions
// for each, datacenter-scale cost extrapolation (§4.2), and the
// future-work energy-aware SRPT flow scheduler (§5).
package core

import (
	"fmt"
	"math"
)

// PowerFunc maps a host's throughput (bits/second) to its package power
// (watts). Theorem 1 requires it to be strictly concave and increasing on
// [0, C].
type PowerFunc func(bps float64) float64

// TotalPower returns Σ p(xᵢ) — the paper's P(x) for per-flow throughputs x,
// with each flow on its own host.
func TotalPower(p PowerFunc, x []float64) float64 {
	total := 0.0
	for _, xi := range x {
		total += p(xi)
	}
	return total
}

// FairAllocation returns x* = (C/n, …, C/n).
func FairAllocation(capacityBps float64, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = capacityBps / float64(n)
	}
	return x
}

// IsStrictlyConcave samples p on [0, maxBps] at n chord midpoints and
// reports whether every midpoint value strictly exceeds the chord — the
// hypothesis of Theorem 1, checkable for any supplied curve.
func IsStrictlyConcave(p PowerFunc, maxBps float64, n int) bool {
	if n < 2 {
		n = 2
	}
	for i := 0; i < n; i++ {
		a := maxBps * float64(i) / float64(n)
		b := maxBps * float64(i+1) / float64(n)
		if p((a+b)/2) <= (p(a)+p(b))/2 {
			return false
		}
	}
	return true
}

// Theorem1 states: for throughputs y with Σyᵢ = C and y ≠ x*, if p is
// strictly concave then P(x*) > P(y). CheckTheorem1 evaluates both sides
// for a concrete y and reports whether the inequality holds (it must,
// whenever the hypotheses do).
func CheckTheorem1(p PowerFunc, capacityBps float64, y []float64) (fairPower, yPower float64, holds bool, err error) {
	n := len(y)
	if n < 2 {
		return 0, 0, false, fmt.Errorf("core: Theorem 1 needs at least two flows")
	}
	sum := 0.0
	equal := true
	for _, yi := range y {
		if yi < 0 {
			return 0, 0, false, fmt.Errorf("core: negative throughput %v", yi)
		}
		sum += yi
		if math.Abs(yi-capacityBps/float64(n)) > 1e-9*capacityBps {
			equal = false
		}
	}
	if math.Abs(sum-capacityBps) > 1e-6*capacityBps {
		return 0, 0, false, fmt.Errorf("core: allocation sums to %v, want capacity %v", sum, capacityBps)
	}
	if equal {
		return 0, 0, false, fmt.Errorf("core: y equals the fair allocation; the theorem compares distinct allocations")
	}
	fairPower = TotalPower(p, FairAllocation(capacityBps, n))
	yPower = TotalPower(p, y)
	return fairPower, yPower, fairPower > yPower, nil
}

// ProveTheorem1ByJensen reproduces the paper's proof computationally:
// for the fair point, n·p(C/n) = n·p(mean(y)); strict concavity gives
// p(mean(y)) > mean(p(y)), hence P(x*) > P(y). It returns the two sides of
// the Jensen inequality for inspection.
func ProveTheorem1ByJensen(p PowerFunc, y []float64) (pOfMean, meanOfP float64) {
	n := float64(len(y))
	mean := 0.0
	for _, yi := range y {
		mean += yi / n
	}
	pOfMean = p(mean)
	for _, yi := range y {
		meanOfP += p(yi) / n
	}
	return pOfMean, meanOfP
}

// MarginalPower returns the numerical derivative dp/dx at x (central
// difference with step h).
func MarginalPower(p PowerFunc, x, h float64) float64 {
	return (p(x+h) - p(x-h)) / (2 * h)
}

// HasDecreasingMarginal reports whether marginal power decreases over
// [h, maxBps−h] sampled at n points — the §5 phrasing of the concavity
// condition ("whenever marginal power usage is a decreasing function of
// throughput, fairness is the least energy efficient thing to do").
func HasDecreasingMarginal(p PowerFunc, maxBps float64, n int) bool {
	if n < 2 {
		n = 2
	}
	h := maxBps / float64(4*n)
	prev := math.Inf(1)
	for i := 1; i <= n; i++ {
		x := maxBps * float64(i) / float64(n+1)
		m := MarginalPower(p, x, h)
		if m >= prev {
			return false
		}
		prev = m
	}
	return true
}
