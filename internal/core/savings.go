package core

import "fmt"

// DatacenterCostModel carries the §4.2 extrapolation constants: "The energy
// to run a typical data center rack is on the order of $10k/year. With
// around 100k racks in a typical data center, a 1% improvement corresponds
// to a cost savings of on the order of $10 million/year."
type DatacenterCostModel struct {
	// RackYearUSD is the yearly energy cost of one rack.
	RackYearUSD float64
	// Racks is the number of racks in the datacenter.
	Racks float64
}

// PaperDatacenter returns the constants the paper cites ([51], [38]).
func PaperDatacenter() DatacenterCostModel {
	return DatacenterCostModel{RackYearUSD: 10_000, Racks: 100_000}
}

// YearlyEnergyUSD returns the total yearly energy bill.
func (d DatacenterCostModel) YearlyEnergyUSD() float64 {
	return d.RackYearUSD * d.Racks
}

// YearlySavingsUSD converts a fractional energy saving into dollars per
// year.
func (d DatacenterCostModel) YearlySavingsUSD(savingFrac float64) (float64, error) {
	if savingFrac < -1 || savingFrac > 1 {
		return 0, fmt.Errorf("core: saving fraction %v out of [-1, 1]", savingFrac)
	}
	return d.YearlyEnergyUSD() * savingFrac, nil
}
