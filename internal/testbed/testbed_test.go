package testbed

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"greenenvy/internal/iperf"
	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
)

const gbit = 1_000_000_000 / 8 // bytes per Gbit

func TestSingleFlowRun(t *testing.T) {
	tb := New(Options{Seed: 1})
	_, err := tb.AddFlow(0, iperf.Spec{Bytes: 10 * gbit, CCA: "cubic"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(30 * sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 || res.Reports[0].Bytes != 10*gbit {
		t.Fatalf("report = %+v", res.Reports[0])
	}
	// 10 Gbit at ~10 Gb/s ≈ 1 s (plus header overhead ~0.7%).
	if res.Duration < 900*sim.Millisecond || res.Duration > 1300*sim.Millisecond {
		t.Fatalf("duration = %v, want ~1s", res.Duration)
	}
	// Sender energy ≈ p(10G) × 1s ≈ 36 J.
	if res.TotalSenderJ < 30 || res.TotalSenderJ > 45 {
		t.Fatalf("sender energy = %v J, want ~36", res.TotalSenderJ)
	}
	if res.AvgSenderPowerW < 30 || res.AvgSenderPowerW > 40 {
		t.Fatalf("avg power = %v W, want ~36", res.AvgSenderPowerW)
	}
}

func TestFairShareEnergyMatchesPaperArithmetic(t *testing.T) {
	// The fair scenario of §4.1: two flows, 10 Gbit each, at 5 Gb/s each
	// via WFQ; both finish ~2 s; total sender energy ~137 J.
	tb := New(Options{Senders: 2, UseDRR: true, Seed: 2})
	for i := 0; i < 2; i++ {
		c, err := tb.AddFlow(i, iperf.Spec{Bytes: 10 * gbit, CCA: "cubic"})
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.SetWeight(c.Report().Flow, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	res, err := tb.Run(30 * sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration < 1900*sim.Millisecond || res.Duration > 2500*sim.Millisecond {
		t.Fatalf("duration = %v, want ~2s", res.Duration)
	}
	if math.Abs(res.TotalSenderJ-137) > 12 {
		t.Fatalf("fair energy = %.1f J, want ~137 (paper §4.1)", res.TotalSenderJ)
	}
}

func TestSerialScheduleSavesEnergy(t *testing.T) {
	// "Full speed, then idle": flow 2 starts when flow 1 finishes. Total
	// sender energy ~114.6 J, ≈16% below fair (paper §4.1).
	run := func() RunResult {
		tb := New(Options{Senders: 2, Seed: 3})
		if _, err := tb.AddFlow(0, iperf.Spec{Bytes: 10 * gbit, CCA: "cubic"}); err != nil {
			t.Fatal(err)
		}
		// Start the second flow after the first completes (~1.01 s at
		// line rate with header overhead).
		if _, err := tb.AddFlow(1, iperf.Spec{Bytes: 10 * gbit, CCA: "cubic", StartAt: 1020 * sim.Millisecond}); err != nil {
			t.Fatal(err)
		}
		res, err := tb.Run(30 * sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if math.Abs(res.TotalSenderJ-114.6) > 10 {
		t.Fatalf("serial energy = %.1f J, want ~114.6", res.TotalSenderJ)
	}
}

func TestLoadedHostRaisesPower(t *testing.T) {
	tb := New(Options{Seed: 4})
	if err := tb.AddLoad(0, 0.75); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AddFlow(0, iperf.Spec{Bytes: 5 * gbit, CCA: "cubic"}); err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(30 * sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	senderW := res.SenderEnergyJ[0] / res.Duration.Seconds()
	if senderW < 100 || senderW > 120 {
		t.Fatalf("loaded sender power = %.1f W, want ~108 (Fig 4)", senderW)
	}
}

func TestRateLimitedFlowPower(t *testing.T) {
	// iperf -b 5G on one sender: power should land on the paper's
	// 34.23 W anchor.
	tb := New(Options{Seed: 5})
	if _, err := tb.AddFlow(0, iperf.Spec{Bytes: 5 * gbit, CCA: "cubic", TargetBps: 5_000_000_000}); err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(30 * sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	w := res.SenderEnergyJ[0] / res.Duration.Seconds()
	if math.Abs(w-34.23) > 1.5 {
		t.Fatalf("5 Gb/s power = %.2f W, want ~34.23 (Fig 2)", w)
	}
}

func TestRunTwicePanics(t *testing.T) {
	tb := New(Options{Seed: 6})
	if _, err := tb.AddFlow(0, iperf.Spec{Bytes: gbit, CCA: "reno"}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(10 * sim.Second); err == nil {
		t.Fatal("second Run should error")
	}
}

func TestRunWithoutFlowsErrors(t *testing.T) {
	tb := New(Options{Seed: 7})
	if _, err := tb.Run(sim.Second); err == nil {
		t.Fatal("Run with no flows should error")
	}
}

func TestDeadlineExceededErrors(t *testing.T) {
	tb := New(Options{Seed: 8})
	if _, err := tb.AddFlow(0, iperf.Spec{Bytes: 100 * gbit, CCA: "cubic"}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(100 * sim.Millisecond); err == nil {
		t.Fatal("want deadline error")
	}
}

func TestInvalidSenderIndex(t *testing.T) {
	tb := New(Options{Seed: 9})
	if _, err := tb.AddFlow(5, iperf.Spec{Bytes: gbit, CCA: "cubic"}); err == nil {
		t.Fatal("out-of-range sender accepted")
	}
}

func TestSetWeightWithoutDRR(t *testing.T) {
	tb := New(Options{Seed: 10})
	if err := tb.SetWeight(1, 0.5); err == nil {
		t.Fatal("SetWeight on FIFO bottleneck should error")
	}
}

func TestRepetitionsVaryButCluster(t *testing.T) {
	results, err := Repeat(3, 42, func(rep int, seed uint64) (RunResult, error) {
		tb := New(Options{Seed: seed})
		if _, err := tb.AddFlow(0, iperf.Spec{Bytes: 2 * gbit, CCA: "cubic"}); err != nil {
			return RunResult{}, err
		}
		return tb.Run(10 * sim.Second)
	})
	if err != nil {
		t.Fatal(err)
	}
	e0 := results[0].TotalSenderJ
	varied := false
	for _, r := range results[1:] {
		if r.TotalSenderJ != e0 {
			varied = true
		}
		if math.Abs(r.TotalSenderJ-e0)/e0 > 0.05 {
			t.Fatalf("repetition spread too wide: %v vs %v", r.TotalSenderJ, e0)
		}
	}
	if !varied {
		t.Fatal("repetitions identical; measurement noise not applied")
	}
}

func TestRepeatParallelMatchesSerial(t *testing.T) {
	run := func(rep int, seed uint64) (RunResult, error) {
		tb := New(Options{Seed: seed})
		if _, err := tb.AddFlow(0, iperf.Spec{Bytes: gbit / 2, CCA: "cubic"}); err != nil {
			return RunResult{}, err
		}
		return tb.Run(10 * sim.Second)
	}
	serial, err := RepeatParallel(4, 42, 1, run)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RepeatParallel(4, 42, 8, run)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel results differ from serial:\n%+v\nvs\n%+v", parallel, serial)
	}
}

func TestRepeatParallelSeedsMatchRepeat(t *testing.T) {
	record := func(workers int) []uint64 {
		seeds := make([]uint64, 6)
		_, err := RepeatParallel(6, 7, workers, func(rep int, seed uint64) (RunResult, error) {
			seeds[rep] = seed
			return RunResult{}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return seeds
	}
	if s1, s4 := record(1), record(4); !reflect.DeepEqual(s1, s4) {
		t.Fatalf("per-rep seeds depend on worker count: %v vs %v", s1, s4)
	}
}

func TestRepeatParallelErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	_, err := RepeatParallel(64, 1, 4, func(rep int, seed uint64) (RunResult, error) {
		calls.Add(1)
		if rep == 0 {
			return RunResult{}, boom
		}
		// Keep the other workers busy long enough for the failure to
		// be observed before the pool drains all 64 indices.
		time.Sleep(2 * time.Millisecond)
		return RunResult{}, nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "repetition 0") {
		t.Fatalf("err %q does not surface the failing repetition index", err)
	}
	if n := calls.Load(); n >= 64 {
		t.Fatalf("all %d repetitions ran; failure did not cancel outstanding work", n)
	}
}

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	const n = 100
	var hits [n]atomic.Int32
	if err := ForEach(n, 7, func(i int) error {
		hits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times", i, got)
		}
	}
}

func TestThroughputMonitorSeriesPopulated(t *testing.T) {
	tb := New(Options{Seed: 11})
	c, err := tb.AddFlow(0, iperf.Spec{Bytes: 5 * gbit, CCA: "cubic"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	series := tb.Monitor.Series(c.Report().Flow)
	if len(series) < 10 {
		t.Fatalf("only %d throughput samples", len(series))
	}
	// Mid-transfer samples should be near line rate.
	mid := series[len(series)/2]
	if mid.Bps < 8e9 {
		t.Fatalf("mid-transfer sample = %.2f Gb/s, want near 10", mid.Bps/1e9)
	}
}

func TestFatTreeTestbedEndToEnd(t *testing.T) {
	// A cross-pod incast on a k=4 tree: 3 senders on distinct racks into
	// one receiver. Every byte must arrive with no no-route drops, and
	// sender/receiver energy groups must both be populated.
	cfg := netsim.DefaultFatTree(4)
	tb := NewFatTree(Options{Seed: 7}, cfg)
	for i, src := range []netsim.NodeID{4, 8, 12} {
		if _, err := tb.AddFlowBetween(src, 0, iperf.Spec{Bytes: gbit, CCA: "cubic", Flow: netsim.FlowID(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	tb.WatchBottleneck(tb.Fat.HostDownlink(0))
	res, err := tb.Run(30 * sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 3 {
		t.Fatalf("reports = %d", len(res.Reports))
	}
	for _, r := range res.Reports {
		if r.Bytes != gbit {
			t.Fatalf("flow %d delivered %d of %d bytes", r.Flow, r.Bytes, gbit)
		}
	}
	if res.NoRouteDrops != 0 {
		t.Fatalf("NoRouteDrops = %d, want 0", res.NoRouteDrops)
	}
	if len(res.SenderEnergyJ) != 3 || res.TotalSenderJ <= 0 || res.ReceiverEnergyJ <= 0 {
		t.Fatalf("energy accounting: senders=%v receiver=%v", res.SenderEnergyJ, res.ReceiverEnergyJ)
	}
	// 3 Gbit share one 10 Gb/s downlink: at least ~0.3 s.
	if res.Duration < 250*sim.Millisecond {
		t.Fatalf("duration = %v, implausibly fast for a shared 10G downlink", res.Duration)
	}
	if res.BottleneckStats.EnqueuedPackets == 0 {
		t.Fatal("watched bottleneck saw no packets")
	}
}

func TestFatTreeTestbedValidation(t *testing.T) {
	cfg := netsim.DefaultFatTree(4)
	tb := NewFatTree(Options{Seed: 1}, cfg)
	if _, err := tb.AddFlow(0, iperf.Spec{Bytes: 1, CCA: "cubic"}); err == nil {
		t.Fatal("AddFlow on a fat-tree testbed did not error")
	}
	if _, err := tb.AddFlowBetween(0, 0, iperf.Spec{Bytes: 1, CCA: "cubic"}); err == nil {
		t.Fatal("src == dst did not error")
	}
	if _, err := tb.AddFlowBetween(0, 99, iperf.Spec{Bytes: 1, CCA: "cubic"}); err == nil {
		t.Fatal("out-of-range dst did not error")
	}
	dumb := New(Options{Seed: 1})
	if _, err := dumb.AddFlowBetween(0, 1, iperf.Spec{Bytes: 1, CCA: "cubic"}); err == nil {
		t.Fatal("AddFlowBetween on a dumbbell testbed did not error")
	}
}

// TestFatTreeDRRTeardownReclaimsState runs a fair incast with a DRR on the
// receiver downlink and checks flow completion releases scheduler state —
// the leak fix observed at the testbed layer.
func TestFatTreeDRRTeardownReclaimsState(t *testing.T) {
	cfg := netsim.DefaultFatTree(4)
	var drr *netsim.DRR
	cfg.NewQueue = func(p netsim.FatTreePort) netsim.Queue {
		if p.Tier == netsim.TierHostDown && p.Host == 0 {
			drr = netsim.NewDRR(cfg.BufferBytes, 0)
			return drr
		}
		return nil
	}
	tb := NewFatTree(Options{Seed: 11}, cfg)
	for i, src := range []netsim.NodeID{4, 8} {
		c, err := tb.AddFlowBetween(src, 0, iperf.Spec{Bytes: gbit / 4, CCA: "cubic", Flow: netsim.FlowID(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.SetWeight(c.Report().Flow, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if drr == nil {
		t.Fatal("NewQueue hook never installed the DRR")
	}
	if _, err := tb.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if n := drr.FlowTableSize(); n != 0 {
		t.Fatalf("DRR holds %d flows after all flows completed, want 0", n)
	}
}
