package testbed

import (
	"fmt"

	"greenenvy/internal/iperf"
	"greenenvy/internal/netsim"
)

// Plan is a declarative description of one testbed run: a topology, the
// flows to place on it (with per-flow CCA, size, schedule, and fair-queue
// weight), and background load. It is the single construction path the
// scenario compiler targets — Build performs exactly the calls the
// handwritten experiments make, in the same order, so a plan equal to an
// experiment's hand-built sequence produces byte-identical results.
type Plan struct {
	// Dumbbell selects the dumbbell topology. Exactly one of Dumbbell and
	// FatTree must be set.
	Dumbbell *netsim.DumbbellConfig
	// FatTree selects the fat-tree topology.
	FatTree *netsim.FatTreeConfig
	// WatchHost, on a fat-tree, selects the host whose downlink Run
	// reports as BottleneckStats (the dumbbell watches its bottleneck
	// automatically).
	WatchHost *netsim.NodeID
	// Flows are installed in order — order matters: each AddFlow draws
	// start jitter from the run RNG, so flow order is part of the
	// deterministic schedule.
	Flows []PlanFlow
	// Loads start stress background load on sender hosts.
	Loads []PlanLoad
}

// PlanFlow places one flow.
type PlanFlow struct {
	// Sender is the dumbbell sender index (ignored on a fat-tree).
	Sender int
	// Src and Dst are the fat-tree endpoints (ignored on a dumbbell,
	// where the receiver is fixed).
	Src, Dst netsim.NodeID
	// Spec is the iperf invocation (CCA, bytes, start/stop, pacing).
	Spec iperf.Spec
	// Weight, when SetWeight is true, is the flow's weight on every
	// tracked DRR queue (set immediately after the flow is added).
	Weight    float64
	SetWeight bool
	// After, when Chained is true, is the index of the flow this one
	// starts behind: it launches (plus its own StartAt offset) when
	// Flows[After] completes — the serial "full speed, then idle"
	// schedule. The explicit flag keeps the zero value meaning "start on
	// schedule", since 0 is a valid chain target.
	After   int
	Chained bool
}

// PlanLoad runs stress background load on a dumbbell sender host.
type PlanLoad struct {
	Sender   int
	Fraction float64
}

// Build assembles a testbed from the plan: topology, then flows in order
// (weights applied as each flow lands), then start-chaining, then loads.
// It returns the clients in plan order for callers that need per-flow
// reports or further chaining.
func Build(opts Options, p Plan) (*Testbed, []*iperf.Client, error) {
	if (p.Dumbbell == nil) == (p.FatTree == nil) {
		return nil, nil, fmt.Errorf("testbed: plan must set exactly one of Dumbbell and FatTree")
	}
	var tb *Testbed
	if p.Dumbbell != nil {
		tb = NewDumbbell(opts, *p.Dumbbell)
	} else {
		tb = NewFatTree(opts, *p.FatTree)
	}
	clients := make([]*iperf.Client, len(p.Flows))
	for i, f := range p.Flows {
		var (
			c   *iperf.Client
			err error
		)
		if p.Dumbbell != nil {
			c, err = tb.AddFlow(f.Sender, f.Spec)
		} else {
			c, err = tb.AddFlowBetween(f.Src, f.Dst, f.Spec)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("testbed: plan flow %d: %w", i, err)
		}
		clients[i] = c
		if f.SetWeight {
			// AddFlow assigned the default dense id when Spec.Flow was 0.
			id := f.Spec.Flow
			if id == 0 {
				id = netsim.FlowID(i + 1)
			}
			if err := tb.SetWeight(id, f.Weight); err != nil {
				return nil, nil, fmt.Errorf("testbed: plan flow %d: %w", i, err)
			}
		}
	}
	for i, f := range p.Flows {
		if !f.Chained {
			continue
		}
		if f.After < 0 || f.After >= len(clients) || f.After == i {
			return nil, nil, fmt.Errorf("testbed: plan flow %d chains after invalid flow %d", i, f.After)
		}
		clients[i].StartAfter(clients[f.After])
	}
	for i, l := range p.Loads {
		if p.Dumbbell == nil {
			return nil, nil, fmt.Errorf("testbed: plan load %d: background load needs the dumbbell topology", i)
		}
		if l.Sender < 0 || l.Sender >= len(tb.Net.Senders) {
			return nil, nil, fmt.Errorf("testbed: plan load %d: sender %d out of range", i, l.Sender)
		}
		if err := tb.AddLoad(l.Sender, l.Fraction); err != nil {
			return nil, nil, fmt.Errorf("testbed: plan load %d: %w", i, err)
		}
	}
	if p.WatchHost != nil {
		if tb.Fat == nil {
			return nil, nil, fmt.Errorf("testbed: plan WatchHost needs the fat-tree topology")
		}
		tb.WatchBottleneck(tb.Fat.HostDownlink(*p.WatchHost))
	}
	return tb, clients, nil
}
