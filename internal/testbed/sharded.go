package testbed

import (
	"fmt"

	"greenenvy/internal/iperf"
	"greenenvy/internal/sim"
)

// This file is Run's counterpart for the sharded fat-tree (Options.Shards >
// 0): the same measurement protocol — bracket every host's RAPL counter,
// start the flows, sample energy every SyncEvery, collect at the last
// completion instant — restated so that no step reads state owned by
// another partition while the run is in flight.
//
// Three things change shape:
//
//   - Sampling is per shard. Each partition engine runs its own sampler
//     over the meters it owns, and the sampler retires itself the moment
//     its shard is quiet (every local sender done, every local receiver in
//     possession of its full transfer). Quiet hosts draw constant idle
//     power, which integrates exactly over any interval, so stopping early
//     loses nothing — and it guarantees every meter's last sync point lies
//     at or before the global completion instant, where the final
//     measurement happens.
//
//   - Chained starts (StartAfter) cross the cut through control conduits.
//     A predecessor completing on shard p hands the successor's start
//     closure to conduit p→q, which delivers it under the same lookahead
//     discipline as any packet; the successor pays one link delay of extra
//     latency relative to the monolithic schedule, identically for every
//     worker count.
//
//   - Collection happens on the main goroutine after the group quiesces.
//     The completion instant is the latest sender CompletedAt; every
//     meter is integrated exactly to that instant with EndPackageAt, and
//     measurement noise is drawn in the same sender-then-receiver order as
//     the monolithic path so the draw sequence stays a function of the
//     testbed's construction order alone.
func (tb *Testbed) runSharded(deadline sim.Duration) (RunResult, error) {
	for _, s := range tb.Sensors {
		tb.measures = append(tb.measures, s.Begin())
	}

	// Route cross-shard chained starts through the control conduits.
	idxOf := make(map[*iperf.Client]int, len(tb.clients))
	for i, c := range tb.clients {
		idxOf[c] = i
	}
	for i, c := range tb.clients {
		prev := c.ChainedAfter()
		if prev == nil {
			continue
		}
		ps, ok := 0, false
		if pi, found := idxOf[prev]; found {
			ps, ok = tb.clientSrcShard[pi], true
		}
		if !ok {
			return RunResult{}, fmt.Errorf("testbed: flow %d chained after a client not added to this testbed", i)
		}
		if cs := tb.clientSrcShard[i]; ps != cs {
			relay := tb.ctrl[ps][cs]
			c.SetStartRelay(func(fire func()) { relay.SendAfterDelay(fire) })
		}
	}
	for _, c := range tb.clients {
		c.Start()
	}

	// One self-retiring sampler per shard that owns meters.
	P := tb.group.Shards()
	meterIdx := make([][]int, P)
	for i, s := range tb.meterShard {
		meterIdx[s] = append(meterIdx[s], i)
	}
	senders := make([][]*iperf.Client, P)
	receivers := make([][]*iperf.Client, P)
	for i, c := range tb.clients {
		senders[tb.clientSrcShard[i]] = append(senders[tb.clientSrcShard[i]], c)
		receivers[tb.clientDstShard[i]] = append(receivers[tb.clientDstShard[i]], c)
	}
	for s := 0; s < P; s++ {
		if len(meterIdx[s]) == 0 {
			continue
		}
		s := s
		eng := tb.group.Engine(s)
		quiet := func() bool {
			for _, c := range senders[s] {
				if !c.Done() {
					return false
				}
			}
			for _, c := range receivers[s] {
				if c.Receiver().TotalReceived < c.TransferBytes() {
					return false
				}
			}
			return true
		}
		var sample func()
		sample = func() {
			// The quiet check must precede the sync: once the shard is
			// quiet, syncing again could push a meter's integration point
			// past the global completion instant, and EndPackageAt cannot
			// integrate backwards.
			if quiet() {
				return
			}
			for _, i := range meterIdx[s] {
				tb.Meters[i].Sync()
			}
			if eng.Now() < sim.Time(deadline) {
				eng.After(tb.opts.SyncEvery, sample)
			}
		}
		eng.After(tb.opts.SyncEvery, sample)
	}

	tb.group.Run(sim.Time(deadline), tb.opts.Shards)

	if !tb.allDone() {
		return RunResult{}, fmt.Errorf("testbed: flows incomplete at deadline %v", deadline)
	}

	// The measurement window closes at the last flow completion, exactly
	// as the paper's scripts bracket each iperf3 run.
	var done sim.Time
	for _, c := range tb.clients {
		if t := c.Sender().CompletedAt; t > done {
			done = t
		}
	}
	noise := func() float64 { return 1 + tb.rng.Normal(0, tb.opts.MeasureNoise) }
	res := RunResult{Duration: done}
	for _, i := range tb.senderIdx {
		j := tb.measures[i].EndPackageAt(done) * noise()
		res.SenderEnergyJ = append(res.SenderEnergyJ, j)
		res.TotalSenderJ += j
	}
	for _, i := range tb.recvIdx {
		res.ReceiverEnergyJ += tb.measures[i].EndPackageAt(done) * noise()
	}
	for _, c := range tb.clients {
		res.Reports = append(res.Reports, c.Report())
		res.Retransmits += c.Sender().Retransmits
	}
	if s := res.Duration.Seconds(); s > 0 {
		res.AvgSenderPowerW = res.TotalSenderJ / s
	}
	if tb.watch != nil {
		res.BottleneckStats = tb.watch.Queue().Stats()
	}
	for _, sw := range tb.switches {
		res.NoRouteDrops += sw.DroppedNoRoute
	}
	res.EventsFired = tb.group.Fired()
	return res, nil
}
