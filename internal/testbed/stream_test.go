package testbed

import (
	"math"
	"testing"

	"greenenvy/internal/energy"
	"greenenvy/internal/iperf"
	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
)

// arithStream is a deterministic FlowStream of n identical flows: flow i
// arrives at i*gap carrying payload bytes, round-robining over senders.
func arithStream(n int, gap sim.Duration, payload uint64, senders int) FlowStream {
	i := 0
	return FlowStreamFunc(func() (FlowArrival, bool) {
		if i >= n {
			return FlowArrival{}, false
		}
		f := FlowArrival{At: sim.Time(i) * gap, Bytes: payload, Src: i % senders}
		i++
		return f, true
	})
}

// TestRunStreamChurnReusesPool replays 10^4 sequential flows through a
// two-sender dumbbell and checks the pool actually recycles: a handful of
// clients serve the whole run, with reuse accounting balancing the flow
// count exactly.
func TestRunStreamChurnReusesPool(t *testing.T) {
	const flows = 10_000
	const payload = 20_000
	tb := New(Options{Senders: 2, Seed: 11, StreamStats: true})
	res, err := tb.RunStream(arithStream(flows, 400*sim.Microsecond, payload, 2), "cubic", FairAdmission{}, 30*sim.Second)
	if err != nil {
		t.Fatalf("RunStream: %v", err)
	}
	if res.Flows != flows {
		t.Fatalf("completed %d flows, want %d", res.Flows, flows)
	}
	if res.Bytes != flows*payload {
		t.Fatalf("Bytes = %d, want %d", res.Bytes, flows*payload)
	}
	// Every launch is either a pool hit or a fresh build.
	if res.PoolReuses+uint64(res.PoolSize) != flows {
		t.Fatalf("PoolReuses %d + PoolSize %d != flows %d", res.PoolReuses, res.PoolSize, flows)
	}
	if res.PoolSize > 8 {
		t.Fatalf("PoolSize = %d: churn built far more clients than peak concurrency", res.PoolSize)
	}
	if res.PoolReuses < flows-100 {
		t.Fatalf("PoolReuses = %d: pool barely used", res.PoolReuses)
	}
	if !(res.MeanFCT > 0) || !(res.P99FCT > 0) {
		t.Fatalf("degenerate FCT aggregates: mean %v p99 %v", res.MeanFCT, res.P99FCT)
	}
	if res.MaxFCT < res.MeanFCT {
		t.Fatalf("MaxFCT %v < MeanFCT %v", res.MaxFCT, res.MeanFCT)
	}
	if res.TotalSenderJ <= 0 || res.Duration <= 0 {
		t.Fatalf("energy bracket empty: %v J over %v", res.TotalSenderJ, res.Duration)
	}
}

// TestRunStreamPooledMatchesUnpooled is the pooling determinism contract:
// recycling clients through Reset must leave every measured field of the
// result byte-identical to building a fresh client per flow.
func TestRunStreamPooledMatchesUnpooled(t *testing.T) {
	run := func(noPool bool) StreamResult {
		t.Helper()
		tb := New(Options{Senders: 2, Seed: 23, StreamStats: true})
		tb.noPool = noPool
		res, err := tb.RunStream(arithStream(300, 300*sim.Microsecond, 15_000, 2), "reno", FairAdmission{}, 5*sim.Second)
		if err != nil {
			t.Fatalf("RunStream(noPool=%v): %v", noPool, err)
		}
		return res
	}
	pooled := run(false)
	bare := run(true)
	if pooled.PoolReuses == 0 {
		t.Fatalf("pooled run recycled nothing")
	}
	if bare.PoolReuses != 0 || bare.PoolSize != 300 {
		t.Fatalf("noPool run used the pool: %d reuses, %d built", bare.PoolReuses, bare.PoolSize)
	}
	// Pool telemetry is the one legitimate difference; everything else —
	// energy draws, FCT aggregates, event counts — must match exactly.
	pooled.PoolSize, pooled.PoolReuses, pooled.PoolDiscards = 0, 0, 0
	bare.PoolSize, bare.PoolReuses, bare.PoolDiscards = 0, 0, 0
	if pooled != bare {
		t.Fatalf("pooled and unpooled runs diverge:\npooled: %+v\nbare:   %+v", pooled, bare)
	}
}

// TestRunStreamEnvyAdmission checks the online envy policy end to end:
// serialization defers arrivals, caps concurrency at one, spends less
// sender energy per gigabyte than fair sharing (Theorem 1 run online), and
// pays for it in tail FCT.
func TestRunStreamEnvyAdmission(t *testing.T) {
	run := func(adm Admission) StreamResult {
		t.Helper()
		tb := New(Options{Senders: 4, Seed: 5, StreamStats: true, MeasureNoise: 1e-12})
		i := 0
		burst := FlowStreamFunc(func() (FlowArrival, bool) {
			if i >= 200 {
				return FlowArrival{}, false
			}
			// Bursts of four simultaneous arrivals, one per sender, at
			// 0.8 offered load (4 MB per 4 ms against the 10 Gb/s
			// bottleneck) so the fair baseline stays stable.
			f := FlowArrival{At: sim.Time(i/4) * 4 * sim.Millisecond, Bytes: 1_000_000, Src: i % 4}
			i++
			return f, true
		})
		res, err := tb.RunStream(burst, "cubic", adm, 120*sim.Second)
		if err != nil {
			t.Fatalf("RunStream(%s): %v", adm.Name(), err)
		}
		return res
	}
	fair := run(FairAdmission{})
	envy := run(EnvyAdmission{MaxActive: 1})

	if fair.MaxActive < 2 {
		t.Fatalf("fair run never overlapped flows (MaxActive=%d); burst workload broken", fair.MaxActive)
	}
	if envy.MaxActive != 1 {
		t.Fatalf("envy MaxActive = %d, want 1", envy.MaxActive)
	}
	if envy.Deferred == 0 || envy.MaxQueue == 0 {
		t.Fatalf("envy run deferred nothing (deferred=%d maxQueue=%d)", envy.Deferred, envy.MaxQueue)
	}
	if fair.Deferred != 0 {
		t.Fatalf("fair run deferred %d flows", fair.Deferred)
	}
	if envy.Bytes != fair.Bytes || envy.Flows != fair.Flows {
		t.Fatalf("schedules moved different work: %+v vs %+v", envy, fair)
	}
	if envy.EnergyPerGB() >= fair.EnergyPerGB() {
		t.Errorf("envy energy/GB %.3f >= fair %.3f: serialization should save energy on a concave curve",
			envy.EnergyPerGB(), fair.EnergyPerGB())
	}
	// The FCT side of the trade is reported, not sign-asserted: with
	// equal-size flows on one shared bottleneck, serialization ties the
	// tail and improves the mean, so the direction is workload-dependent.
	// The aggregates just have to be real measurements.
	if !(envy.P99FCT > 0) || !(fair.P99FCT > 0) || !(envy.MeanFCT > 0) {
		t.Errorf("degenerate FCT aggregates: envy p99 %v mean %v, fair p99 %v", envy.P99FCT, envy.MeanFCT, fair.P99FCT)
	}
	if envy.MaxFCT < envy.MeanFCT || fair.MaxFCT < fair.MeanFCT {
		t.Errorf("max FCT below mean: envy %+v fair %+v", envy, fair)
	}
}

// TestNewEnvyAdmissionWidth: a strictly concave host power curve admits
// exactly one flow at a time — the derivation must land on the paper's
// full-serialization schedule without it being hardcoded.
func TestNewEnvyAdmissionWidth(t *testing.T) {
	adm := NewEnvyAdmission(energy.DefaultModel(), 10e9, 1448, "cubic")
	if adm.MaxActive != 1 {
		t.Fatalf("derived admission width %d, want 1 for a strictly concave curve", adm.MaxActive)
	}
	if adm.Name() != "envy" || (FairAdmission{}).Name() != "fair" {
		t.Fatalf("policy names wrong: %q / %q", adm.Name(), FairAdmission{}.Name())
	}
	if !(FairAdmission{}).Admit(1 << 20) {
		t.Fatal("fair admission rejected a flow")
	}
}

// TestRunStreamFatTree drives the streaming path over a k=4 fat-tree with
// lazily-created meters, pre-touching the hosts so the energy bracket
// covers the full window.
func TestRunStreamFatTree(t *testing.T) {
	tb := NewFatTree(Options{Seed: 3, StreamStats: true}, netsim.DefaultFatTree(4))
	hosts := tb.Fat.NumHosts()
	tb.TouchHost(0, false)
	for h := 1; h < hosts; h++ {
		tb.TouchHost(netsim.NodeID(h), true)
	}
	const flows = 200
	i := 0
	st := FlowStreamFunc(func() (FlowArrival, bool) {
		if i >= flows {
			return FlowArrival{}, false
		}
		f := FlowArrival{At: sim.Time(i) * 500 * sim.Microsecond, Bytes: 50_000, Src: 1 + i%(hosts-1), Dst: 0}
		i++
		return f, true
	})
	res, err := tb.RunStream(st, "dctcp", FairAdmission{}, 10*sim.Second)
	if err != nil {
		t.Fatalf("RunStream: %v", err)
	}
	if res.Flows != flows {
		t.Fatalf("completed %d flows, want %d", res.Flows, flows)
	}
	if res.TotalSenderJ <= 0 || res.ReceiverEnergyJ <= 0 {
		t.Fatalf("energy bracket empty: senders %v J, receiver %v J", res.TotalSenderJ, res.ReceiverEnergyJ)
	}
	if res.PoolReuses == 0 {
		t.Fatalf("fat-tree churn never reused a client")
	}
}

// TestRunStreamGuards covers the driver's refusal cases.
func TestRunStreamGuards(t *testing.T) {
	st := func() FlowStream { return arithStream(1, 0, 1000, 1) }

	tb := New(Options{Senders: 1, Seed: 1})
	if _, err := tb.RunStream(st(), "cubic", nil, sim.Second); err == nil {
		t.Fatal("RunStream without StreamStats succeeded")
	}

	tb = New(Options{Senders: 1, Seed: 1, StreamStats: true})
	if _, err := tb.RunStream(st(), "cubic", nil, sim.Second); err != nil {
		t.Fatalf("first RunStream: %v", err)
	}
	if _, err := tb.RunStream(st(), "cubic", nil, sim.Second); err == nil {
		t.Fatal("second RunStream on the same testbed succeeded")
	}

	sharded := NewFatTree(Options{Seed: 1, StreamStats: true, Shards: 2}, netsim.DefaultFatTree(4))
	if _, err := sharded.RunStream(st(), "cubic", nil, sim.Second); err == nil {
		t.Fatal("RunStream on a sharded testbed succeeded")
	}

	// Out-of-range endpoint fails the run.
	bad := New(Options{Senders: 1, Seed: 1, StreamStats: true})
	oob := FlowStreamFunc(func() (FlowArrival, bool) { return FlowArrival{Bytes: 1000, Src: 5}, true })
	if _, err := bad.RunStream(oob, "cubic", nil, sim.Second); err == nil {
		t.Fatal("RunStream with an out-of-range sender succeeded")
	}

	// An empty stream finishes immediately with empty aggregates.
	empty := New(Options{Senders: 1, Seed: 1, StreamStats: true})
	res, err := empty.RunStream(FlowStreamFunc(func() (FlowArrival, bool) { return FlowArrival{}, false }), "cubic", nil, sim.Second)
	if err != nil {
		t.Fatalf("empty stream: %v", err)
	}
	if res.Flows != 0 || !math.IsNaN(res.MeanFCT) {
		t.Fatalf("empty stream produced %+v", res)
	}
}

// TestRunStreamStatsSkipsReports: the StreamStats opt-in drops per-flow
// Report retention from the batch path while keeping the aggregates.
func TestRunStreamStatsSkipsReports(t *testing.T) {
	build := func(stream bool) RunResult {
		t.Helper()
		tb := New(Options{Senders: 2, Seed: 9, StreamStats: stream})
		for i := 0; i < 2; i++ {
			if _, err := tb.AddFlow(i, iperf.Spec{Bytes: 100_000, CCA: "cubic"}); err != nil {
				t.Fatal(err)
			}
		}
		res, err := tb.Run(sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := build(false)
	lean := build(true)
	if len(full.Reports) != 2 {
		t.Fatalf("retained run kept %d reports, want 2", len(full.Reports))
	}
	if lean.Reports != nil {
		t.Fatalf("StreamStats run retained %d reports", len(lean.Reports))
	}
	if lean.TotalSenderJ != full.TotalSenderJ || lean.Duration != full.Duration || lean.Retransmits != full.Retransmits {
		t.Fatalf("StreamStats changed measured results: %+v vs %+v", lean, full)
	}
}
