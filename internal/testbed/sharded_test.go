package testbed

import (
	"reflect"
	"testing"

	"greenenvy/internal/iperf"
	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
)

// shardedIncastResult builds one fixed cross-pod workload on a k=4 tree and
// runs it on the sharded engine with the given worker count. The workload
// exercises every cross-shard mechanism at once: a 3-sender incast into pod
// 0 (packet conduits), a same-pod flow (non-split client with interval
// stats), and a chained start whose predecessor completes on another shard
// (control conduits).
func shardedIncastResult(t *testing.T, workers int) RunResult {
	t.Helper()
	cfg := netsim.DefaultFatTree(4)
	tb := NewFatTree(Options{Seed: 7, Shards: workers}, cfg)
	for _, src := range []netsim.NodeID{4, 8, 12} {
		if _, err := tb.AddFlowBetween(src, 0, iperf.Spec{Bytes: gbit / 8, CCA: "cubic"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tb.AddFlowBetween(2, 3, iperf.Spec{Bytes: gbit / 16, CCA: "reno"}); err != nil {
		t.Fatal(err)
	}
	c1, err := tb.AddFlowBetween(5, 1, iperf.Spec{Bytes: gbit / 16, CCA: "cubic"})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := tb.AddFlowBetween(9, 2, iperf.Spec{Bytes: gbit / 16, CCA: "cubic"})
	if err != nil {
		t.Fatal(err)
	}
	c2.StartAfter(c1)
	tb.WatchBottleneck(tb.Fat.HostDownlink(0))
	res, err := tb.Run(30 * sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShardedFatTreeDeterministicAcrossWorkers is the testbed-level
// statement of the same-seed-same-bytes contract: a fixed partition must
// produce byte-identical results no matter how many workers execute it.
func TestShardedFatTreeDeterministicAcrossWorkers(t *testing.T) {
	golden := shardedIncastResult(t, 1)

	if len(golden.Reports) != 6 {
		t.Fatalf("reports = %d, want 6", len(golden.Reports))
	}
	for i, r := range golden.Reports {
		var want uint64 = gbit / 8
		if i >= 3 {
			want = gbit / 16
		}
		if r.Bytes != want {
			t.Fatalf("flow %d delivered %d of %d bytes", r.Flow, r.Bytes, want)
		}
	}
	if golden.NoRouteDrops != 0 {
		t.Fatalf("NoRouteDrops = %d, want 0", golden.NoRouteDrops)
	}
	if len(golden.SenderEnergyJ) != 6 || golden.TotalSenderJ <= 0 || golden.ReceiverEnergyJ <= 0 {
		t.Fatalf("energy accounting: senders=%v receiver=%v", golden.SenderEnergyJ, golden.ReceiverEnergyJ)
	}
	if golden.EventsFired == 0 {
		t.Fatal("EventsFired = 0")
	}
	// The chained flow must have started only after its predecessor
	// finished (plus the relay's lookahead crossing).
	if s := golden.Reports[5].Start; s <= golden.Reports[4].End {
		t.Fatalf("chained flow started at %v, predecessor ended %v", s, golden.Reports[4].End)
	}
	// Cross-shard flows drop interval statistics; same-pod ones keep them.
	if len(golden.Reports[0].Intervals) != 0 {
		t.Fatal("split flow kept interval stats")
	}
	if len(golden.Reports[3].Intervals) == 0 {
		t.Fatal("same-pod flow lost its interval stats")
	}

	for _, workers := range []int{2, 4} {
		got := shardedIncastResult(t, workers)
		if !reflect.DeepEqual(got, golden) {
			t.Fatalf("RunResult at %d workers diverged from 1 worker:\n got:  %+v\n want: %+v", workers, got, golden)
		}
	}
}

// TestDumbbellIgnoresShards pins the degenerate case: a dumbbell is a
// single partition, so Options.Shards must not perturb it in any way — the
// fig5 golden digests depend on that.
func TestDumbbellIgnoresShards(t *testing.T) {
	run := func(shards int) RunResult {
		tb := New(Options{Senders: 2, Seed: 3, Shards: shards})
		for i := 0; i < 2; i++ {
			if _, err := tb.AddFlow(i, iperf.Spec{Bytes: gbit / 8, CCA: "cubic"}); err != nil {
				t.Fatal(err)
			}
		}
		res, err := tb.Run(30 * sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if got, want := run(4), run(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("dumbbell result changed under Shards=4:\n got:  %+v\n want: %+v", got, want)
	}
}
