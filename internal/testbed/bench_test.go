package testbed_test

// Flow-churn microbenchmarks. The bodies live in internal/perf so that
// cmd/simbench can run the identical code and record the results in
// BENCH_sim.json; these wrappers expose them to `go test -bench`.

import (
	"testing"

	"greenenvy/internal/perf"
)

func BenchmarkWorkloadChurn(b *testing.B) { perf.BenchWorkloadChurn(b) }

func BenchmarkWorkloadScaleStreaming(b *testing.B) { perf.BenchWorkloadScaleStreaming(b) }
