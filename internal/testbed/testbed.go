// Package testbed assembles the paper's §3 laboratory out of the simulator
// substrates: sender servers and a receiver server (2× Xeon E5-2630 v3
// class, modeled by internal/energy), an Intel-Tofino-class switch with a
// 10 Gb/s bottleneck port, bonded 2×10 Gb/s sender uplinks, iperf3-style
// traffic generation, `stress` background load, and RAPL energy
// measurement bracketing each run.
//
// One Testbed is one experiment run. The paper repeats each scenario ten
// times and reports standard deviations; Repeat drives that loop with a
// per-repetition seed that perturbs start times and measurement noise the
// way a physical lab run would.
package testbed

import (
	"fmt"
	"sync"
	"sync/atomic"

	"greenenvy/internal/energy"
	"greenenvy/internal/iperf"
	"greenenvy/internal/netsim"
	"greenenvy/internal/rapl"
	"greenenvy/internal/sim"
	"greenenvy/internal/stress"
)

// Options configures a testbed instance.
type Options struct {
	// Senders is the number of sender servers (one flow per server in
	// the Theorem 1 experiments; the paper's arithmetic in §4.1 treats
	// each flow as its own sender).
	Senders int
	// Model is the host energy model; zero value uses the calibrated
	// defaults.
	Model energy.Model
	// BufferBytes is the bottleneck buffer (default 1 MiB).
	BufferBytes int
	// MarkBytes enables DCTCP-style CE marking at the bottleneck.
	MarkBytes int
	// UseDRR replaces the bottleneck FIFO with a weighted-fair DRR
	// scheduler (for the Figure 1 allocation sweep).
	UseDRR bool
	// Seed drives all run randomness (start jitter, measurement noise).
	Seed uint64
	// StartJitter is the maximum random offset added to each client's
	// start (default 10 µs; models process scheduling skew).
	StartJitter sim.Duration
	// MeasureNoise is the relative σ of RAPL measurement noise (default
	// 0.4%, matching the run-to-run spread of package-energy readings).
	MeasureNoise float64
	// SyncEvery is the energy integration granularity (default 1 ms).
	SyncEvery sim.Duration
}

func (o Options) withDefaults() Options {
	if o.Senders == 0 {
		o.Senders = 1
	}
	if o.Model.Costs.Cores == 0 {
		o.Model = energy.DefaultModel()
	}
	if o.BufferBytes == 0 {
		o.BufferBytes = 1 << 20
	}
	if o.StartJitter == 0 {
		o.StartJitter = 10 * sim.Microsecond
	}
	if o.MeasureNoise == 0 {
		o.MeasureNoise = 0.004
	}
	if o.SyncEvery == 0 {
		o.SyncEvery = sim.Millisecond
	}
	return o
}

// Testbed is one assembled experiment environment.
type Testbed struct {
	Engine   *sim.Engine
	Net      *netsim.Dumbbell
	Model    energy.Model
	Meters   []*energy.Meter // index i = sender i; last = receiver
	Sensors  []*rapl.Sensor
	Monitor  *netsim.ThroughputMonitor
	opts     Options
	rng      *sim.RNG
	clients  []*iperf.Client
	loads    []*stress.Load
	measures []*rapl.Measurement
	ran      bool
}

// New builds a testbed.
func New(opts Options) *Testbed {
	opts = opts.withDefaults()
	engine := sim.NewEngine()
	dcfg := netsim.DefaultDumbbell(opts.Senders)
	dcfg.BufferBytes = opts.BufferBytes
	dcfg.MarkBytes = opts.MarkBytes
	if opts.UseDRR {
		dcfg.BottleneckQueue = netsim.NewDRR(opts.BufferBytes, opts.MarkBytes)
	}
	d := netsim.NewDumbbell(engine, dcfg)

	tb := &Testbed{
		Engine: engine,
		Net:    d,
		Model:  opts.Model,
		opts:   opts,
		rng:    sim.NewRNG(opts.Seed),
	}
	for range d.Senders {
		m := energy.NewMeter(engine, opts.Model.Curve, opts.Model.Costs)
		tb.Meters = append(tb.Meters, m)
		tb.Sensors = append(tb.Sensors, rapl.NewSensor(m))
	}
	recvMeter := energy.NewMeter(engine, opts.Model.Curve, opts.Model.Costs)
	tb.Meters = append(tb.Meters, recvMeter)
	tb.Sensors = append(tb.Sensors, rapl.NewSensor(recvMeter))

	tb.Monitor = netsim.NewThroughputMonitor(engine, 10*sim.Millisecond)
	return tb
}

// SenderMeter returns the energy meter of sender i.
func (tb *Testbed) SenderMeter(i int) *energy.Meter { return tb.Meters[i] }

// ReceiverMeter returns the receiver host's meter.
func (tb *Testbed) ReceiverMeter() *energy.Meter { return tb.Meters[len(tb.Meters)-1] }

// AddFlow installs an iperf client on sender host `sender` targeting the
// receiver. The flow's TxPathCost is taken from the energy cost model
// unless the spec overrides it. Start jitter is applied on top of
// spec.StartAt.
func (tb *Testbed) AddFlow(sender int, spec iperf.Spec) (*iperf.Client, error) {
	if sender < 0 || sender >= len(tb.Net.Senders) {
		return nil, fmt.Errorf("testbed: sender %d out of range", sender)
	}
	if spec.Flow == 0 {
		spec.Flow = netsim.FlowID(len(tb.clients) + 1)
	}
	if spec.Config.TxPathCost == 0 {
		spec.Config.TxPathCost = tb.Model.Costs.TxPathCost
	}
	if spec.Config.NICRateBps == 0 {
		// Match the topology: each sender has 2×10 Gb/s bonded uplinks.
		spec.Config.NICRateBps = 20_000_000_000
	}
	spec.StartAt += tb.rng.Jitter(tb.opts.StartJitter)

	srcAcct := energy.NewAccount(tb.Meters[sender], spec.CCA)
	dstAcct := energy.NewAccount(tb.ReceiverMeter(), spec.CCA)
	c, err := iperf.NewClient(tb.Engine, spec, tb.Net.Senders[sender], tb.Net.Receiver, srcAcct, dstAcct)
	if err != nil {
		return nil, err
	}
	flow := spec.Flow
	c.Receiver().OnData = func(n int) { tb.Monitor.Observe(flow, n) }
	tb.clients = append(tb.clients, c)
	return c, nil
}

// AddLoad starts stress background load (fraction of all cores) on sender
// host i for the whole run.
func (tb *Testbed) AddLoad(sender int, frac float64) error {
	l, err := stress.StartFraction(tb.Meters[sender], frac)
	if err != nil {
		return err
	}
	tb.loads = append(tb.loads, l)
	return nil
}

// SetWeight configures the bottleneck DRR weight for a flow; it errors if
// the testbed was not built with UseDRR.
func (tb *Testbed) SetWeight(flow netsim.FlowID, w float64) error {
	q := tb.Net.BottleneckDRR()
	if q == nil {
		return fmt.Errorf("testbed: bottleneck is not a DRR scheduler")
	}
	q.SetWeight(flow, w)
	return nil
}

// RunResult is the paper-facing outcome of one run.
type RunResult struct {
	// Reports holds one iperf summary per flow, in AddFlow order.
	Reports []iperf.Report
	// SenderEnergyJ is RAPL-measured joules per sender host over the
	// measurement window (experiment start to last flow completion).
	SenderEnergyJ []float64
	// ReceiverEnergyJ is the receiver host's energy over the window.
	ReceiverEnergyJ float64
	// TotalSenderJ is the sum over senders — the quantity the paper's
	// §4.1 arithmetic compares.
	TotalSenderJ float64
	// Duration is experiment start to last completion.
	Duration sim.Duration
	// AvgSenderPowerW is TotalSenderJ / Duration (Figure 6's metric).
	AvgSenderPowerW float64
	// Retransmits sums retransmissions over all flows (Figure 8's
	// x-axis).
	Retransmits uint64
	// BottleneckStats snapshots the shared queue's counters.
	BottleneckStats netsim.QueueStats
}

// Run starts all flows, samples energy every SyncEvery until every flow
// completes (or the deadline passes), and returns the bracketed
// measurements. It errors if any flow failed to finish before the
// deadline.
func (tb *Testbed) Run(deadline sim.Duration) (RunResult, error) {
	if tb.ran {
		return RunResult{}, fmt.Errorf("testbed: Run called twice; build a fresh testbed per run")
	}
	tb.ran = true
	if len(tb.clients) == 0 {
		return RunResult{}, fmt.Errorf("testbed: no flows added")
	}

	// Bracket the measurement exactly as the paper does: read every
	// host's energy counter before the experiment...
	for _, s := range tb.Sensors {
		tb.measures = append(tb.measures, s.Begin())
	}
	tb.Monitor.Start()
	for _, c := range tb.clients {
		c.Start()
	}

	// ... and after it — at the instant the last flow completes, exactly
	// as the paper's scripts bracket each iperf3 run.
	var done sim.Time
	finished := false
	nSenders := len(tb.Meters) - 1
	var senderJ []float64
	var recvJ float64
	noise := func() float64 { return 1 + tb.rng.Normal(0, tb.opts.MeasureNoise) }
	collect := func() {
		finished = true
		done = tb.Engine.Now()
		tb.Monitor.Stop()
		for i := 0; i < nSenders; i++ {
			senderJ = append(senderJ, tb.measures[i].EndPackage()*noise())
		}
		recvJ = tb.measures[nSenders].EndPackage() * noise()
	}
	// Collect at the exact completion instant: the sampler alone would
	// quantize the measurement window to SyncEvery.
	for _, c := range tb.clients {
		c.OnDone(func() {
			if !finished && tb.allDone() {
				for _, m := range tb.Meters {
					m.Sync()
				}
				collect()
			}
		})
	}
	var sample func()
	sample = func() {
		if finished {
			return
		}
		for _, m := range tb.Meters {
			m.Sync()
		}
		if tb.Engine.Now() < sim.Time(deadline) {
			tb.Engine.After(tb.opts.SyncEvery, sample)
		}
	}
	tb.Engine.After(tb.opts.SyncEvery, sample)
	tb.Engine.RunUntil(sim.Time(deadline))

	if !finished {
		if tb.allDone() {
			// Flows finished between the last sample and the deadline.
			collect()
		} else {
			return RunResult{}, fmt.Errorf("testbed: flows incomplete at deadline %v", deadline)
		}
	}

	res := RunResult{Duration: done}
	for _, c := range tb.clients {
		res.Reports = append(res.Reports, c.Report())
		res.Retransmits += c.Sender().Retransmits
	}
	res.SenderEnergyJ = senderJ
	for _, j := range senderJ {
		res.TotalSenderJ += j
	}
	res.ReceiverEnergyJ = recvJ
	if s := res.Duration.Seconds(); s > 0 {
		res.AvgSenderPowerW = res.TotalSenderJ / s
	}
	res.BottleneckStats = tb.Net.Bottleneck.Queue().Stats()
	return res, nil
}

func (tb *Testbed) allDone() bool {
	for _, c := range tb.clients {
		if !c.Done() {
			return false
		}
	}
	return true
}

// Repeat runs build-and-run n times with per-repetition seeds derived from
// baseSeed and returns all results. The build function receives the
// repetition index and its seed and must construct, populate, and run a
// fresh testbed.
func Repeat(n int, baseSeed uint64, run func(rep int, seed uint64) (RunResult, error)) ([]RunResult, error) {
	return RepeatParallel(n, baseSeed, 1, run)
}

// RepeatParallel is Repeat over a pool of `workers` goroutines. Each
// repetition derives its seed from baseSeed by index and runs on its own
// engine, so results are placed by repetition index and are byte-identical
// to the serial path regardless of worker count or scheduling. workers <= 1
// reproduces Repeat exactly. If a repetition fails, outstanding repetitions
// are cancelled and the error names the failing index (when several fail,
// the lowest failing index wins).
func RepeatParallel(n int, baseSeed uint64, workers int, run func(rep int, seed uint64) (RunResult, error)) ([]RunResult, error) {
	root := sim.NewRNG(baseSeed)
	out := make([]RunResult, n)
	err := ForEach(n, workers, func(i int) error {
		r, err := run(i, root.Split(uint64(i)).Uint64())
		if err != nil {
			return fmt.Errorf("repetition %d: %w", i, err)
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForEach runs fn(0) … fn(n-1) across a pool of `workers` goroutines and
// waits for completion. Indices are claimed in order but may complete out of
// order; fn must write its result into a caller-owned slot keyed by index so
// assembled output does not depend on scheduling. The first error stops the
// pool from claiming further indices (work already started still finishes)
// and is returned; when several indices fail, the lowest one's error wins so
// the error path is as deterministic as the pool allows. workers <= 1 runs
// serially on the calling goroutine with fail-fast semantics.
func ForEach(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		mu     sync.Mutex
	)
	errIdx := -1
	var firstErr error
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					failed.Store(true)
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
