// Package testbed assembles the paper's §3 laboratory out of the simulator
// substrates: sender servers and a receiver server (2× Xeon E5-2630 v3
// class, modeled by internal/energy), an Intel-Tofino-class switch with a
// 10 Gb/s bottleneck port, bonded 2×10 Gb/s sender uplinks, iperf3-style
// traffic generation, `stress` background load, and RAPL energy
// measurement bracketing each run.
//
// One Testbed is one experiment run. The paper repeats each scenario ten
// times and reports standard deviations; Repeat drives that loop with a
// per-repetition seed that perturbs start times and measurement noise the
// way a physical lab run would.
package testbed

import (
	"fmt"
	"sync"
	"sync/atomic"

	"greenenvy/internal/energy"
	"greenenvy/internal/iperf"
	"greenenvy/internal/netsim"
	"greenenvy/internal/rapl"
	"greenenvy/internal/sim"
	"greenenvy/internal/stress"
)

// Options configures a testbed instance.
type Options struct {
	// Senders is the number of sender servers (one flow per server in
	// the Theorem 1 experiments; the paper's arithmetic in §4.1 treats
	// each flow as its own sender).
	Senders int
	// Model is the host energy model; zero value uses the calibrated
	// defaults.
	Model energy.Model
	// BufferBytes is the bottleneck buffer (default 1 MiB).
	BufferBytes int
	// MarkBytes enables DCTCP-style CE marking at the bottleneck.
	MarkBytes int
	// UseDRR replaces the bottleneck FIFO with a weighted-fair DRR
	// scheduler (for the Figure 1 allocation sweep).
	UseDRR bool
	// Seed drives all run randomness (start jitter, measurement noise).
	Seed uint64
	// StartJitter is the maximum random offset added to each client's
	// start (default 10 µs; models process scheduling skew).
	StartJitter sim.Duration
	// MeasureNoise is the relative σ of RAPL measurement noise (default
	// 0.4%, matching the run-to-run spread of package-energy readings).
	MeasureNoise float64
	// SyncEvery is the energy integration granularity (default 1 ms).
	SyncEvery sim.Duration
	// StreamStats opts into streaming aggregation: per-flow Reports are
	// not retained (Run leaves RunResult.Reports nil; aggregate fields are
	// still populated) and RunStream becomes available. The explicit flag
	// keeps "results got smaller" a caller decision, never a surprise.
	StreamStats bool
	// Shards, when positive, runs fat-tree testbeds on the sharded
	// conservative-synchronization engine with up to this many workers
	// (clamped to the partition count, one shard per pod). Results are
	// byte-identical for every positive value; 0 keeps the monolithic
	// engine. Dumbbell testbeds ignore it — a two-host topology degenerates
	// to a single shard, so the monolithic path IS its sharded execution.
	Shards int
}

func (o Options) withDefaults() Options {
	if o.Senders == 0 {
		o.Senders = 1
	}
	if o.Model.Costs.Cores == 0 {
		o.Model = energy.DefaultModel()
	}
	if o.BufferBytes == 0 {
		o.BufferBytes = 1 << 20
	}
	if o.StartJitter == 0 {
		o.StartJitter = 10 * sim.Microsecond
	}
	if o.MeasureNoise == 0 {
		o.MeasureNoise = 0.004
	}
	if o.SyncEvery == 0 {
		o.SyncEvery = sim.Millisecond
	}
	return o
}

// Testbed is one assembled experiment environment. It drives either the
// paper's dumbbell (New) or a k-ary fat-tree fabric (NewFatTree); the
// measurement loop — meters, RAPL bracketing, throughput monitoring — is
// shared, and the meter noise-draw order is identical between the two so
// the dumbbell's golden digests are untouched by the generalization.
type Testbed struct {
	Engine *sim.Engine
	// Net is the dumbbell topology (nil for fat-tree testbeds).
	Net *netsim.Dumbbell
	// Fat is the fat-tree topology (nil for dumbbell testbeds).
	Fat      *netsim.FatTree
	Model    energy.Model
	Meters   []*energy.Meter // dumbbell: index i = sender i; last = receiver
	Sensors  []*rapl.Sensor
	Monitor  *netsim.ThroughputMonitor
	opts     Options
	rng      *sim.RNG
	clients  []*iperf.Client
	loads    []*stress.Load
	measures []*rapl.Measurement
	ran      bool
	// senderIdx/recvIdx index Meters by measurement role, in registration
	// order. Run's collect draws noise for senders first, then receivers —
	// the dumbbell's historical order, preserved exactly.
	senderIdx []int
	recvIdx   []int
	// meterOf lazily maps fat-tree hosts to their meters.
	meterOf map[netsim.NodeID]int
	// watch is the link whose queue stats Run reports as BottleneckStats.
	watch *netsim.Link
	// switches are polled for no-route drop counters after the run.
	switches []*netsim.Switch
	// drrs are the fair queues notified on flow teardown (DRR.Release).
	drrs []*netsim.DRR
	// noPool disables client recycling in RunStream (every flow builds a
	// fresh client). Test-only: the churn equivalence test compares pooled
	// and unpooled runs byte-for-byte.
	noPool bool

	// Sharded-run state (nil/empty on the monolithic path).
	//
	// group is the conservative-synchronization scheduler when
	// Options.Shards > 0 on a fat-tree; Engine then aliases shard 0.
	group *sim.ShardGroup
	// ctrl[i][j] carries control closures (chained-start signals) from
	// shard i to shard j with the link delay as lookahead.
	ctrl [][]*sim.Conduit[func()]
	// clientSrcShard/clientDstShard parallel clients; meterShard parallels
	// Meters; drrShard parallels drrs. Each records the owning shard.
	clientSrcShard []int
	clientDstShard []int
	meterShard     []int
	drrShard       []int
}

// New builds a dumbbell testbed with the default §3 topology, applying the
// buffer/marking/DRR options. It is NewDumbbell with the config the paper's
// experiments use.
func New(opts Options) *Testbed {
	opts = opts.withDefaults()
	dcfg := netsim.DefaultDumbbell(opts.Senders)
	dcfg.BufferBytes = opts.BufferBytes
	dcfg.MarkBytes = opts.MarkBytes
	if opts.UseDRR {
		dcfg.BottleneckQueue = netsim.NewDRR(opts.BufferBytes, opts.MarkBytes)
	}
	return NewDumbbell(opts, dcfg)
}

// NewDumbbell builds a dumbbell testbed over an explicit topology config —
// the entry point for callers (the scenario compiler) that pick their own
// queue disciplines, rates, or per-sender access delays. Measurement
// machinery (meters, sensors, noise-draw order) is identical to New's, so
// a config equal to New's produces byte-identical runs.
func NewDumbbell(opts Options, dcfg netsim.DumbbellConfig) *Testbed {
	opts = opts.withDefaults()
	engine := sim.NewEngine()
	d := netsim.NewDumbbell(engine, dcfg)

	tb := &Testbed{
		Engine: engine,
		Net:    d,
		Model:  opts.Model,
		opts:   opts,
		rng:    sim.NewRNG(opts.Seed),
	}
	for i := range d.Senders {
		m := energy.NewMeter(engine, opts.Model.Curve, opts.Model.Costs)
		tb.Meters = append(tb.Meters, m)
		tb.Sensors = append(tb.Sensors, rapl.NewSensor(m))
		tb.senderIdx = append(tb.senderIdx, i)
	}
	recvMeter := energy.NewMeter(engine, opts.Model.Curve, opts.Model.Costs)
	tb.Meters = append(tb.Meters, recvMeter)
	tb.Sensors = append(tb.Sensors, rapl.NewSensor(recvMeter))
	tb.recvIdx = append(tb.recvIdx, len(tb.Meters)-1)

	tb.watch = d.Bottleneck
	tb.switches = []*netsim.Switch{d.Switch}
	if q := d.BottleneckDRR(); q != nil {
		tb.drrs = append(tb.drrs, q)
	}

	tb.Monitor = netsim.NewThroughputMonitor(engine, 10*sim.Millisecond)
	return tb
}

// NewFatTree builds a testbed over a k-ary fat-tree fabric. Topology knobs
// come from cfg (rates per tier, queue disciplines, ECMP seed); opts
// contributes the measurement machinery (energy model, seed-driven jitter
// and noise). Any *netsim.DRR created through cfg.NewQueue is tracked for
// flow teardown automatically. Flows are added with AddFlowBetween; meters
// are created lazily, one per participating host, in first-use order.
func NewFatTree(opts Options, cfg netsim.FatTreeConfig) *Testbed {
	opts = opts.withDefaults()

	tb := &Testbed{
		Model:   opts.Model,
		opts:    opts,
		rng:     sim.NewRNG(opts.Seed),
		meterOf: make(map[netsim.NodeID]int),
	}
	part := netsim.FatTreePartition{K: cfg.K}
	if userQueue := cfg.NewQueue; userQueue != nil {
		cfg.NewQueue = func(p netsim.FatTreePort) netsim.Queue {
			q := userQueue(p)
			if drr, ok := q.(*netsim.DRR); ok {
				tb.drrs = append(tb.drrs, drr)
				// Record the owning shard so flow teardown can stay
				// shard-local on the sharded path. Core downlinks belong to
				// the core's shard; every other port to its pod's.
				shard := p.Pod
				if p.Tier == netsim.TierCoreDown {
					shard = part.CoreShard(p.Switch)
				}
				tb.drrShard = append(tb.drrShard, shard)
			}
			return q
		}
	}
	if opts.Shards > 0 {
		tb.group = sim.NewShardGroup(part.Shards())
		tb.Fat = netsim.NewFatTreeSharded(tb.group, cfg)
		tb.Engine = tb.Fat.Engine // shard 0, for API compatibility
		tb.buildControlMesh(cfg.LinkDelay)
	} else {
		tb.Engine = sim.NewEngine()
		tb.Fat = netsim.NewFatTree(tb.Engine, cfg)
	}
	tb.switches = tb.Fat.Switches()
	// The throughput monitor samples flows fabric-wide, which the sharded
	// run cannot license mid-run; it stays idle there (runSharded never
	// starts it, and register skips its observation hook).
	tb.Monitor = netsim.NewThroughputMonitor(tb.Engine, 10*sim.Millisecond)
	return tb
}

// WatchBottleneck selects the link whose queue statistics Run reports as
// BottleneckStats (the dumbbell wires its bottleneck automatically).
func (tb *Testbed) WatchBottleneck(l *netsim.Link) { tb.watch = l }

// buildControlMesh wires the full mesh of cross-shard control conduits
// (ctrl[i][j] delivers chained-start closures from shard i to shard j,
// with the link delay as lookahead). Created in a fixed order after the
// topology's packet conduits so the conduit registration sequence — and
// with it the arrival-seq ordering — is a function of construction order
// alone.
//
//greenvet:shardboundary
func (tb *Testbed) buildControlMesh(delay sim.Duration) {
	P := tb.group.Shards()
	tb.ctrl = make([][]*sim.Conduit[func()], P)
	for i := 0; i < P; i++ {
		tb.ctrl[i] = make([]*sim.Conduit[func()], P)
		for j := 0; j < P; j++ {
			if i == j {
				continue
			}
			tb.ctrl[i][j] = sim.NewConduit(tb.group, i, j, delay, func(fire func()) { fire() })
		}
	}
}

// meterFor returns (creating on first use) the meter index for a fat-tree
// host. Hosts enter the sender or receiver measurement group according to
// their first role; a receiver that later originates a flow is promoted to
// the sender group, keeping TotalSenderJ the sum the theorems compare.
func (tb *Testbed) meterFor(host netsim.NodeID, sender bool) int {
	if i, ok := tb.meterOf[host]; ok {
		if sender {
			tb.promoteToSender(i)
		}
		return i
	}
	// The meter integrates on the engine that drives its host — the host's
	// shard when sharded, tb.Engine otherwise.
	m := energy.NewMeter(tb.Fat.EngineOf(host), tb.Model.Curve, tb.Model.Costs)
	//greenvet:allow hotpathalloc first contact with a host: one meter and sensor per host for the whole run
	tb.Meters = append(tb.Meters, m)
	tb.Sensors = append(tb.Sensors, rapl.NewSensor(m))              //greenvet:allow hotpathalloc first contact with a host: amortized over the run
	tb.meterShard = append(tb.meterShard, tb.Fat.ShardOfHost(host)) //greenvet:allow hotpathalloc first contact with a host: amortized over the run
	i := len(tb.Meters) - 1
	tb.meterOf[host] = i
	if sender {
		tb.senderIdx = append(tb.senderIdx, i) //greenvet:allow hotpathalloc first contact with a host: amortized over the run
	} else {
		tb.recvIdx = append(tb.recvIdx, i) //greenvet:allow hotpathalloc first contact with a host: amortized over the run
	}
	return i
}

func (tb *Testbed) promoteToSender(meter int) {
	for _, s := range tb.senderIdx {
		if s == meter {
			return
		}
	}
	for j, r := range tb.recvIdx {
		if r == meter {
			tb.recvIdx = append(tb.recvIdx[:j], tb.recvIdx[j+1:]...) //greenvet:allow hotpathalloc in-place removal into the same backing array never grows it
			break
		}
	}
	tb.senderIdx = append(tb.senderIdx, meter) //greenvet:allow hotpathalloc promotion happens at most once per host
}

// SenderMeter returns the energy meter of sender i.
func (tb *Testbed) SenderMeter(i int) *energy.Meter { return tb.Meters[i] }

// ReceiverMeter returns the receiver host's meter.
func (tb *Testbed) ReceiverMeter() *energy.Meter { return tb.Meters[len(tb.Meters)-1] }

// AddFlow installs an iperf client on sender host `sender` targeting the
// receiver. The flow's TxPathCost is taken from the energy cost model
// unless the spec overrides it. Start jitter is applied on top of
// spec.StartAt.
func (tb *Testbed) AddFlow(sender int, spec iperf.Spec) (*iperf.Client, error) {
	if tb.Net == nil {
		return nil, fmt.Errorf("testbed: AddFlow targets the dumbbell; use AddFlowBetween on a fat-tree testbed")
	}
	if sender < 0 || sender >= len(tb.Net.Senders) {
		return nil, fmt.Errorf("testbed: sender %d out of range", sender)
	}
	if spec.Flow == 0 {
		spec.Flow = netsim.FlowID(len(tb.clients) + 1)
	}
	if spec.Config.TxPathCost == 0 {
		spec.Config.TxPathCost = tb.Model.Costs.TxPathCost
	}
	if spec.Config.NICRateBps == 0 {
		// Match the topology: each sender has 2×10 Gb/s bonded uplinks.
		spec.Config.NICRateBps = 20_000_000_000
	}
	spec.StartAt += tb.rng.Jitter(tb.opts.StartJitter)

	srcAcct := energy.NewAccount(tb.Meters[sender], spec.CCA)
	dstAcct := energy.NewAccount(tb.ReceiverMeter(), spec.CCA)
	c, err := iperf.NewClient(tb.Engine, spec, tb.Net.Senders[sender], tb.Net.Receiver, srcAcct, dstAcct)
	if err != nil {
		return nil, err
	}
	tb.register(c, spec.Flow)
	return c, nil
}

// AddFlowBetween installs an iperf client between two fat-tree hosts. The
// NIC rate defaults to the topology's host link rate; start jitter is
// applied on top of spec.StartAt, exactly as on the dumbbell.
func (tb *Testbed) AddFlowBetween(src, dst netsim.NodeID, spec iperf.Spec) (*iperf.Client, error) {
	if tb.Fat == nil {
		return nil, fmt.Errorf("testbed: AddFlowBetween needs a fat-tree testbed; use AddFlow on a dumbbell")
	}
	n := netsim.NodeID(tb.Fat.NumHosts())
	if src < 0 || src >= n || dst < 0 || dst >= n || src == dst {
		return nil, fmt.Errorf("testbed: flow endpoints %d -> %d invalid for %d hosts", src, dst, n)
	}
	if spec.Flow == 0 {
		spec.Flow = netsim.FlowID(len(tb.clients) + 1)
	}
	if spec.Config.TxPathCost == 0 {
		spec.Config.TxPathCost = tb.Model.Costs.TxPathCost
	}
	if spec.Config.NICRateBps == 0 {
		spec.Config.NICRateBps = tb.Fat.Config.HostBps
	}
	spec.StartAt += tb.rng.Jitter(tb.opts.StartJitter)

	srcAcct := energy.NewAccount(tb.Meters[tb.meterFor(src, true)], spec.CCA)
	dstAcct := energy.NewAccount(tb.Meters[tb.meterFor(dst, false)], spec.CCA)
	c, err := iperf.NewClientOn(tb.Fat.EngineOf(src), tb.Fat.EngineOf(dst), spec,
		tb.Fat.Hosts[src], tb.Fat.Hosts[dst], srcAcct, dstAcct)
	if err != nil {
		return nil, err
	}
	tb.clientSrcShard = append(tb.clientSrcShard, tb.Fat.ShardOfHost(src))
	tb.clientDstShard = append(tb.clientDstShard, tb.Fat.ShardOfHost(dst))
	tb.register(c, spec.Flow)
	return c, nil
}

// register wires the bookkeeping shared by both topologies: throughput
// observation and scheduler-state teardown. The teardown callback is pure
// synchronous cleanup — it schedules no events and draws no randomness, so
// it cannot perturb the deterministic event stream.
//
// On the sharded path the throughput monitor stays unwired (a fabric-wide
// observer has no licensed view of remote shards mid-run) and flow teardown
// releases only the DRR queues living on the flow's sender shard: the
// OnDone callback executes there, and DRR release order on any other shard
// would depend on when that shard observed the completion — a worker-count
// dependence the determinism contract forbids. Sender-shard queues are the
// only ones a finished flow still holds deficit state on that could affect
// scheduling before the run drains.
func (tb *Testbed) register(c *iperf.Client, flow netsim.FlowID) {
	if tb.group == nil {
		c.Receiver().OnData = func(n int) { tb.Monitor.Observe(flow, n) }
		c.OnDone(func() {
			for _, q := range tb.drrs {
				q.Release(flow)
			}
		})
	} else {
		srcShard := tb.clientSrcShard[len(tb.clients)]
		c.OnDone(func() {
			for qi, q := range tb.drrs {
				if tb.drrShard[qi] == srcShard {
					q.Release(flow)
				}
			}
		})
	}
	tb.clients = append(tb.clients, c)
}

// AddLoad starts stress background load (fraction of all cores) on sender
// host i for the whole run.
func (tb *Testbed) AddLoad(sender int, frac float64) error {
	l, err := stress.StartFraction(tb.Meters[sender], frac)
	if err != nil {
		return err
	}
	tb.loads = append(tb.loads, l)
	return nil
}

// SetWeight configures the DRR weight for a flow on every tracked fair
// queue: the dumbbell's bottleneck (when built with UseDRR) or the DRR
// ports a fat-tree config installed. It errors if no DRR is present.
func (tb *Testbed) SetWeight(flow netsim.FlowID, w float64) error {
	if len(tb.drrs) == 0 {
		return fmt.Errorf("testbed: no DRR scheduler in this topology")
	}
	for _, q := range tb.drrs {
		q.SetWeight(flow, w)
	}
	return nil
}

// RunResult is the paper-facing outcome of one run.
type RunResult struct {
	// Reports holds one iperf summary per flow, in AddFlow order.
	Reports []iperf.Report
	// SenderEnergyJ is RAPL-measured joules per sender host over the
	// measurement window (experiment start to last flow completion).
	SenderEnergyJ []float64
	// ReceiverEnergyJ is the receiver host's energy over the window.
	ReceiverEnergyJ float64
	// TotalSenderJ is the sum over senders — the quantity the paper's
	// §4.1 arithmetic compares.
	TotalSenderJ float64
	// Duration is experiment start to last completion.
	Duration sim.Duration
	// AvgSenderPowerW is TotalSenderJ / Duration (Figure 6's metric).
	AvgSenderPowerW float64
	// Retransmits sums retransmissions over all flows (Figure 8's
	// x-axis).
	Retransmits uint64
	// BottleneckStats snapshots the watched queue's counters (the
	// dumbbell bottleneck, or the link set with WatchBottleneck).
	BottleneckStats netsim.QueueStats
	// NoRouteDrops sums packets every switch discarded for lack of a
	// route; non-zero means the topology's tables are misconfigured.
	NoRouteDrops uint64
	// EventsFired counts discrete events executed over the run, summed
	// across partition engines on the sharded path. A capacity metric, not
	// part of the determinism contract (though in practice it is identical
	// across worker counts).
	EventsFired uint64
}

// Run starts all flows, samples energy every SyncEvery until every flow
// completes (or the deadline passes), and returns the bracketed
// measurements. It errors if any flow failed to finish before the
// deadline.
func (tb *Testbed) Run(deadline sim.Duration) (RunResult, error) {
	if tb.ran {
		return RunResult{}, fmt.Errorf("testbed: Run called twice; build a fresh testbed per run")
	}
	tb.ran = true
	if len(tb.clients) == 0 {
		return RunResult{}, fmt.Errorf("testbed: no flows added")
	}
	if tb.group != nil {
		return tb.runSharded(deadline)
	}

	// Bracket the measurement exactly as the paper does: read every
	// host's energy counter before the experiment...
	for _, s := range tb.Sensors {
		tb.measures = append(tb.measures, s.Begin())
	}
	tb.Monitor.Start()
	for _, c := range tb.clients {
		c.Start()
	}

	// ... and after it — at the instant the last flow completes, exactly
	// as the paper's scripts bracket each iperf3 run.
	var done sim.Time
	finished := false
	var senderJ []float64
	var recvJ float64
	noise := func() float64 { return 1 + tb.rng.Normal(0, tb.opts.MeasureNoise) }
	collect := func() {
		finished = true
		done = tb.Engine.Now()
		tb.Monitor.Stop()
		// Draw order — senders in registration order, then receivers — is
		// part of the determinism contract: the dumbbell's golden digests
		// depend on it.
		for _, i := range tb.senderIdx {
			senderJ = append(senderJ, tb.measures[i].EndPackage()*noise())
		}
		for _, i := range tb.recvIdx {
			recvJ += tb.measures[i].EndPackage() * noise()
		}
	}
	// Collect at the exact completion instant: the sampler alone would
	// quantize the measurement window to SyncEvery.
	for _, c := range tb.clients {
		c.OnDone(func() {
			if !finished && tb.allDone() {
				for _, m := range tb.Meters {
					m.Sync()
				}
				collect()
			}
		})
	}
	var sample func()
	sample = func() {
		if finished {
			return
		}
		for _, m := range tb.Meters {
			m.Sync()
		}
		if tb.Engine.Now() < sim.Time(deadline) {
			tb.Engine.After(tb.opts.SyncEvery, sample)
		}
	}
	tb.Engine.After(tb.opts.SyncEvery, sample)
	tb.Engine.RunUntil(sim.Time(deadline))

	if !finished {
		if tb.allDone() {
			// Flows finished between the last sample and the deadline.
			collect()
		} else {
			return RunResult{}, fmt.Errorf("testbed: flows incomplete at deadline %v", deadline)
		}
	}

	res := RunResult{Duration: done}
	for _, c := range tb.clients {
		if !tb.opts.StreamStats {
			res.Reports = append(res.Reports, c.Report())
		}
		res.Retransmits += c.Sender().Retransmits
	}
	res.SenderEnergyJ = senderJ
	for _, j := range senderJ {
		res.TotalSenderJ += j
	}
	res.ReceiverEnergyJ = recvJ
	if s := res.Duration.Seconds(); s > 0 {
		res.AvgSenderPowerW = res.TotalSenderJ / s
	}
	if tb.watch != nil {
		res.BottleneckStats = tb.watch.Queue().Stats()
	}
	for _, sw := range tb.switches {
		res.NoRouteDrops += sw.DroppedNoRoute
	}
	res.EventsFired = tb.Engine.Fired()
	return res, nil
}

func (tb *Testbed) allDone() bool {
	for _, c := range tb.clients {
		if !c.Done() {
			return false
		}
	}
	return true
}

// Repeat runs build-and-run n times with per-repetition seeds derived from
// baseSeed and returns all results. The build function receives the
// repetition index and its seed and must construct, populate, and run a
// fresh testbed.
func Repeat(n int, baseSeed uint64, run func(rep int, seed uint64) (RunResult, error)) ([]RunResult, error) {
	return RepeatParallel(n, baseSeed, 1, run)
}

// RepeatParallel is Repeat over a pool of `workers` goroutines. Each
// repetition derives its seed from baseSeed by index and runs on its own
// engine, so results are placed by repetition index and are byte-identical
// to the serial path regardless of worker count or scheduling. workers <= 1
// reproduces Repeat exactly. If a repetition fails, outstanding repetitions
// are cancelled and the error names the failing index (when several fail,
// the lowest failing index wins).
func RepeatParallel(n int, baseSeed uint64, workers int, run func(rep int, seed uint64) (RunResult, error)) ([]RunResult, error) {
	root := sim.NewRNG(baseSeed)
	out := make([]RunResult, n)
	err := ForEach(n, workers, func(i int) error {
		r, err := run(i, root.Split(uint64(i)).Uint64())
		if err != nil {
			return fmt.Errorf("repetition %d: %w", i, err)
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForEach runs fn(0) … fn(n-1) across a pool of `workers` goroutines and
// waits for completion. Indices are claimed in order but may complete out of
// order; fn must write its result into a caller-owned slot keyed by index so
// assembled output does not depend on scheduling. The first error stops the
// pool from claiming further indices (work already started still finishes)
// and is returned; when several indices fail, the lowest one's error wins so
// the error path is as deterministic as the pool allows. workers <= 1 runs
// serially on the calling goroutine with fail-fast semantics.
func ForEach(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		mu     sync.Mutex
	)
	errIdx := -1
	var firstErr error
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					failed.Store(true)
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
