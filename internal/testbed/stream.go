package testbed

import (
	"fmt"

	"greenenvy/internal/energy"
	"greenenvy/internal/iperf"
	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
	"greenenvy/internal/stats"
)

// This file is the streaming churn driver: replaying an open-loop arrival
// process of 10^5–10^6 flows through one testbed in bounded memory. Three
// things distinguish it from the batch Run path:
//
//   - Flows come from a pull-based FlowStream, one at a time; nothing
//     materializes the arrival schedule.
//   - Flow state (TCP sender/receiver, iperf client, congestion
//     controller) is recycled through a free list at completion; after
//     warm-up a flow's setup and teardown allocate nothing.
//   - Per-flow results fold into O(1) streaming aggregates (an online
//     accumulator and a P² quantile sketch) instead of retained Reports.
//
// An Admission policy decides at each arrival whether the flow starts now
// or waits — the paper's envy scheduler run online: with a strictly
// concave host power curve, running flows serially (admission width 1) is
// more energy-efficient than fair sharing, at a P99 flow-completion-time
// cost this driver quantifies.
//
// The driver runs on the monolithic engine only. Online churn creates
// flows mid-run; the sharded engine's conservative synchronization
// licenses no cross-shard state creation at arbitrary instants, so
// workload-scale runs ignore Options.Shards (and sharded testbeds reject
// RunStream).

// FlowArrival is one flow of an open-loop arrival process. Src and Dst are
// host indices: fat-tree node IDs, or — on the dumbbell — Src is the
// sender index and Dst is ignored (the dumbbell has one receiver).
type FlowArrival struct {
	At    sim.Time
	Bytes uint64
	Src   int
	Dst   int
}

// FlowStream produces arrivals in nondecreasing At order. Implementations
// must be deterministic: the driver consumes the stream exactly once, in
// order, interleaving no other randomness.
type FlowStream interface {
	Next() (FlowArrival, bool)
}

// FlowStreamFunc adapts a pull function (e.g. a closure over
// workload.Stream.Next) to FlowStream.
type FlowStreamFunc func() (FlowArrival, bool)

// Next implements FlowStream.
func (f FlowStreamFunc) Next() (FlowArrival, bool) { return f() }

// Admission decides, at each arrival and each completion, whether another
// flow may start while `active` flows are already running. Deferred flows
// wait in FIFO order; the policy must be a pure function of its arguments
// (the determinism contract).
type Admission interface {
	// Admit reports whether a flow may start alongside `active` running
	// flows.
	Admit(active int) bool
	// Name identifies the policy in reports and cache identities.
	Name() string
}

// FairAdmission starts every flow on arrival: flows share the fabric, as
// under ordinary congestion control. The baseline the envy policy is
// compared against.
type FairAdmission struct{}

// Admit implements Admission.
func (FairAdmission) Admit(int) bool { return true }

// Name implements Admission.
func (FairAdmission) Name() string { return "fair" }

// EnvyAdmission caps concurrency at MaxActive, deferring later arrivals —
// the paper's envy/serialization schedule as an online admission policy.
type EnvyAdmission struct {
	MaxActive int
}

// Admit implements Admission.
func (e EnvyAdmission) Admit(active int) bool { return active < e.MaxActive }

// Name implements Admission.
func (e EnvyAdmission) Name() string { return "envy" }

// NewEnvyAdmission derives the widest admission that still saves energy
// under the model's power curve: the largest n for which n hosts each
// carrying 1/n of one full-rate flow's utilization u1 draw no more power
// than one host at u1 plus n−1 idle hosts. For a strictly concave curve
// (Theorem 1's premise) that yields n = 1 — full serialization, exactly
// the paper's envy schedule — but the derivation keeps the policy honest
// against any calibrated curve rather than hardcoding the answer.
func NewEnvyAdmission(model energy.Model, linkBps float64, payloadBytes int, ccaName string) EnvyAdmission {
	u1 := model.SenderUtilization(linkBps, payloadBytes, ccaName)
	idle := model.Curve.PowerAt(0)
	serial := model.Curve.PowerAt(u1)
	width := 1
	for n := 2; n <= 64; n++ {
		fair := float64(n) * model.Curve.PowerAt(u1/float64(n))
		if fair <= serial+float64(n-1)*idle {
			width = n
		} else {
			break
		}
	}
	return EnvyAdmission{MaxActive: width}
}

// StreamResult is the outcome of one streaming run: O(1)-size aggregates
// in place of Run's per-flow Reports. It is the gob-cached unit of the
// workload-scale experiment, so its shape is part of the cache schema.
type StreamResult struct {
	// Flows and Bytes count completed flows and their payload bytes.
	Flows uint64
	Bytes uint64
	// Deferred counts flows the admission policy delayed past their
	// arrival; MaxQueue is the peak length of that wait queue; MaxActive
	// is the peak number of concurrently running flows.
	Deferred  uint64
	MaxQueue  int
	MaxActive int
	// MeanFCT/P99FCT/MaxFCT summarize flow sojourn times in seconds —
	// arrival to completion, admission queueing included (that is the
	// latency an envy schedule trades for energy). P99FCT is the P²
	// sketch estimate.
	MeanFCT float64
	P99FCT  float64
	MaxFCT  float64
	// Energy bracketing, as in RunResult.
	TotalSenderJ    float64
	ReceiverEnergyJ float64
	Duration        sim.Duration
	AvgSenderPowerW float64
	// Transport counters summed over all flows.
	Retransmits uint64
	Timeouts    uint64
	EventsFired uint64
	// Pool telemetry: distinct clients ever built, flows served by a
	// recycled client, and clients dropped because their receive path had
	// not drained at completion.
	PoolSize     int
	PoolReuses   uint64
	PoolDiscards uint64
}

// EnergyPerGB returns sender joules per gigabyte delivered.
func (r StreamResult) EnergyPerGB() float64 {
	if r.Bytes == 0 {
		return 0
	}
	return r.TotalSenderJ / (float64(r.Bytes) / 1e9)
}

// pooledClient is one free-list entry: a client plus its prebound
// completion callback (bound once, so recycling a flow re-registers the
// same closure instead of minting one per flow).
type pooledClient struct {
	c    *iperf.Client
	done func()
	// arrival the entry is currently serving.
	arrivedAt sim.Time
	bytes     uint64
	flow      netsim.FlowID
}

// streamRun is the per-RunStream driver state.
type streamRun struct {
	tb      *Testbed
	stream  FlowStream
	ccaName string
	adm     Admission

	free  []*pooledClient // LIFO free list
	accts []*energy.Account

	// pending is a FIFO of deferred arrivals (head index + compaction).
	pending  []FlowArrival
	pendHead int

	arrival     *sim.Timer
	nextArrival FlowArrival
	exhausted   bool

	active   int
	nextFlow netsim.FlowID

	fct stats.QuantileSketch
	acc stats.Accumulator
	res StreamResult

	finished bool
	doneAt   sim.Time
	err      error
}

// RunStream replays an open-loop arrival stream through the testbed with
// pooled flow lifecycles and streaming aggregation, bracketing energy
// exactly as Run does. All flows use the named congestion-control
// algorithm; adm decides start-now vs defer per flow. The run fails if the
// stream has not drained by the deadline.
//
// Requires Options.StreamStats (the caller's explicit opt-in to per-flow
// retention being skipped) and the monolithic engine (see the file
// comment). The throughput monitor is not wired — per-flow observation is
// per-flow retention by another name.
func (tb *Testbed) RunStream(stream FlowStream, ccaName string, adm Admission, deadline sim.Duration) (StreamResult, error) {
	if tb.ran {
		return StreamResult{}, fmt.Errorf("testbed: RunStream called twice; build a fresh testbed per run")
	}
	tb.ran = true
	if !tb.opts.StreamStats {
		return StreamResult{}, fmt.Errorf("testbed: RunStream requires Options.StreamStats")
	}
	if tb.group != nil {
		return StreamResult{}, fmt.Errorf("testbed: RunStream needs the monolithic engine; build the testbed with Shards = 0")
	}
	if adm == nil {
		adm = FairAdmission{}
	}

	sr := &streamRun{
		tb:       tb,
		stream:   stream,
		ccaName:  ccaName,
		adm:      adm,
		nextFlow: 1,
		fct:      *stats.NewQuantileSketch(0.99),
	}
	sr.arrival = tb.Engine.NewTimer(sr.onArrival)

	// Bracket the measurement exactly as Run does. Meters a fat-tree
	// stream first touches mid-run begin integrating at first use (they
	// were idle before); callers wanting full-window bracketing for every
	// host should TouchHost them first.
	for _, s := range tb.Sensors {
		tb.measures = append(tb.measures, s.Begin())
	}

	// Pull the first arrival and arm the clock.
	sr.advance()

	var sample func()
	sample = func() {
		if sr.finished {
			return
		}
		for _, m := range tb.Meters {
			m.Sync()
		}
		if tb.Engine.Now() < sim.Time(deadline) {
			tb.Engine.After(tb.opts.SyncEvery, sample)
		}
	}
	tb.Engine.After(tb.opts.SyncEvery, sample)
	tb.Engine.RunUntil(sim.Time(deadline))

	if sr.err != nil {
		return StreamResult{}, sr.err
	}
	if !sr.finished {
		return StreamResult{}, fmt.Errorf("testbed: stream incomplete at deadline %v (%d active, %d queued, exhausted=%v)",
			deadline, sr.active, sr.queueLen(), sr.exhausted)
	}
	return sr.res, nil
}

// TouchHost pre-registers a fat-tree host's energy meter (as sender or
// receiver) so RunStream's measurement brackets it from run start rather
// than from its first flow. No-op on the dumbbell, whose meters are all
// built up front.
func (tb *Testbed) TouchHost(host netsim.NodeID, sender bool) {
	if tb.Fat != nil {
		tb.meterFor(host, sender)
	}
}

// advance pulls the next arrival from the stream and arms the arrival
// timer for it; on exhaustion it checks for run completion.
//
//greenvet:hotpath
func (sr *streamRun) advance() {
	if sr.finished {
		return
	}
	f, ok := sr.stream.Next()
	if !ok {
		sr.exhausted = true
		sr.maybeFinish()
		return
	}
	sr.nextArrival = f
	sr.arrival.ResetAt(f.At)
}

// onArrival admits or defers the pending arrival, then advances the clock
// to the next one.
//
//greenvet:hotpath
func (sr *streamRun) onArrival() {
	if sr.finished {
		return
	}
	a := sr.nextArrival
	if sr.adm.Admit(sr.active) && sr.queueLen() == 0 {
		sr.launch(a)
	} else {
		sr.res.Deferred++
		sr.pushPending(a)
	}
	sr.advance()
}

func (sr *streamRun) queueLen() int { return len(sr.pending) - sr.pendHead }

//greenvet:hotpath
func (sr *streamRun) pushPending(a FlowArrival) {
	if sr.pendHead > 0 && sr.pendHead == len(sr.pending) {
		sr.pending = sr.pending[:0]
		sr.pendHead = 0
	} else if sr.pendHead > 64 && sr.pendHead*2 >= len(sr.pending) {
		// Compact the consumed prefix so the queue's footprint tracks its
		// live length, not its history.
		n := copy(sr.pending, sr.pending[sr.pendHead:])
		sr.pending = sr.pending[:n]
		sr.pendHead = 0
	}
	sr.pending = append(sr.pending, a) //greenvet:allow hotpathalloc wait-queue growth is amortized and bounded by the policy's peak backlog
	if q := sr.queueLen(); q > sr.res.MaxQueue {
		sr.res.MaxQueue = q
	}
}

// drainPending launches queued flows while the admission policy allows.
//
//greenvet:hotpath
func (sr *streamRun) drainPending() {
	for sr.queueLen() > 0 && sr.adm.Admit(sr.active) {
		a := sr.pending[sr.pendHead]
		sr.pendHead++
		sr.launch(a)
	}
}

// hostsFor resolves an arrival's endpoints and their meter indices.
func (sr *streamRun) hostsFor(a FlowArrival) (src, dst *netsim.Host, srcMeter, dstMeter int, err error) {
	tb := sr.tb
	if tb.Net != nil {
		if a.Src < 0 || a.Src >= len(tb.Net.Senders) {
			//greenvet:allow hotpathalloc invalid-arrival error path aborts the stream run; never taken steady-state
			return nil, nil, 0, 0, fmt.Errorf("testbed: stream sender %d out of range", a.Src)
		}
		return tb.Net.Senders[a.Src], tb.Net.Receiver, a.Src, len(tb.Meters) - 1, nil
	}
	n := tb.Fat.NumHosts()
	if a.Src < 0 || a.Src >= n || a.Dst < 0 || a.Dst >= n || a.Src == a.Dst {
		//greenvet:allow hotpathalloc invalid-arrival error path aborts the stream run; never taken steady-state
		return nil, nil, 0, 0, fmt.Errorf("testbed: stream endpoints %d -> %d invalid for %d hosts", a.Src, a.Dst, n)
	}
	srcID, dstID := netsim.NodeID(a.Src), netsim.NodeID(a.Dst)
	return tb.Fat.Hosts[srcID], tb.Fat.Hosts[dstID], tb.meterFor(srcID, true), tb.meterFor(dstID, false), nil
}

// acct returns the cached per-meter energy account (one per meter for the
// whole stream — every flow uses the same algorithm).
//
//greenvet:hotpath
func (sr *streamRun) acct(meter int) *energy.Account {
	for len(sr.accts) < len(sr.tb.Meters) {
		sr.accts = append(sr.accts, nil) //greenvet:allow hotpathalloc grows once per distinct host, not per flow
	}
	if sr.accts[meter] == nil {
		sr.accts[meter] = energy.NewAccount(sr.tb.Meters[meter], sr.ccaName)
	}
	return sr.accts[meter]
}

// launch starts one flow now: a recycled client from the free list when
// available, a fresh one otherwise. Start jitter draws from the testbed
// RNG at launch, mirroring AddFlow's draw-per-flow order.
//
//greenvet:hotpath
func (sr *streamRun) launch(a FlowArrival) {
	if sr.err != nil {
		return
	}
	tb := sr.tb
	src, dst, srcM, dstM, err := sr.hostsFor(a)
	if err != nil {
		sr.fail(err)
		return
	}

	spec := iperf.Spec{
		Flow:        sr.nextFlow,
		Bytes:       a.Bytes,
		CCA:         sr.ccaName,
		StartAt:     tb.rng.Jitter(tb.opts.StartJitter),
		NoIntervals: true,
	}
	spec.Config.TxPathCost = tb.Model.Costs.TxPathCost
	if tb.Net != nil {
		spec.Config.NICRateBps = 20_000_000_000
	} else {
		spec.Config.NICRateBps = tb.Fat.Config.HostBps
	}
	sr.nextFlow++

	var e *pooledClient
	if !tb.noPool {
		// Pop the most recently parked client that is still quiescent. An
		// entry was quiescent when parked, but a stray in-flight packet
		// (a retransmit racing the final ACK) may have landed in its
		// receive path since; such a client is orphaned exactly as an
		// unpooled run leaves every finished flow.
		for n := len(sr.free); n > 0; n = len(sr.free) {
			cand := sr.free[n-1]
			sr.free = sr.free[:n-1]
			if !cand.c.Quiescent() {
				sr.res.PoolDiscards++
				continue
			}
			e = cand
			break
		}
	}
	if e != nil {
		if err := e.c.Reset(spec, src, dst, sr.acct(srcM), sr.acct(dstM)); err != nil {
			sr.fail(err)
			return
		}
		sr.res.PoolReuses++
	} else {
		c, err := iperf.NewClient(tb.Engine, spec, src, dst, sr.acct(srcM), sr.acct(dstM))
		if err != nil {
			sr.fail(err)
			return
		}
		e = &pooledClient{c: c} //greenvet:allow hotpathalloc pool miss: one entry per peak-concurrency slot
		e.done = sr.doneFunc(e)
		sr.res.PoolSize++
	}
	e.arrivedAt = a.At
	e.bytes = a.Bytes
	e.flow = spec.Flow
	e.c.OnDone(e.done)

	sr.active++
	if sr.active > sr.res.MaxActive {
		sr.res.MaxActive = sr.active
	}
	e.c.Start()
}

// doneFunc binds the completion callback for one pool entry, once.
func (sr *streamRun) doneFunc(e *pooledClient) func() {
	return func() { sr.onFlowDone(e) } //greenvet:allow hotpathalloc bound once per pool entry at construction, reused across every recycle
}

// onFlowDone retires one flow: fold its sojourn into the aggregates,
// release scheduler state, recycle the client, and let the admission
// policy start waiting flows.
//
//greenvet:hotpath
func (sr *streamRun) onFlowDone(e *pooledClient) {
	tb := sr.tb
	now := tb.Engine.Now()
	sr.active--

	sojourn := (now - e.arrivedAt).Seconds()
	sr.acc.Add(sojourn)
	sr.fct.Add(sojourn)
	sr.res.Flows++
	sr.res.Bytes += e.bytes
	sr.res.Retransmits += e.c.Sender().Retransmits
	sr.res.Timeouts += e.c.Sender().Timeouts

	for _, q := range tb.drrs {
		q.Release(e.flow)
	}

	if e.c.Quiescent() && !tb.noPool {
		sr.free = append(sr.free, e) //greenvet:allow hotpathalloc free-list growth is bounded by peak concurrency
	} else if !tb.noPool {
		// A deferred packet is still in the receive path; reusing the
		// entry would deliver it into the next flow's state. Orphan it —
		// exactly what an unpooled run does with every finished flow.
		sr.res.PoolDiscards++
	}

	sr.drainPending()
	sr.maybeFinish()
}

func (sr *streamRun) fail(err error) {
	if sr.err == nil {
		sr.err = err
	}
	sr.finished = true
	sr.arrival.Stop()
}

// maybeFinish collects the energy bracket at the instant the last flow of
// an exhausted stream completes, mirroring Run's collect.
func (sr *streamRun) maybeFinish() {
	if sr.finished || !sr.exhausted || sr.active > 0 || sr.queueLen() > 0 {
		return
	}
	tb := sr.tb
	sr.finished = true
	sr.doneAt = tb.Engine.Now()
	for _, m := range tb.Meters {
		m.Sync()
	}

	// Draw order — senders in registration order, then receivers — is the
	// same determinism contract as Run's collect.
	var senderJ, recvJ float64
	for _, i := range tb.senderIdx {
		senderJ += tb.measures[i].EndPackage() * (1 + tb.rng.Normal(0, tb.opts.MeasureNoise))
	}
	for _, i := range tb.recvIdx {
		recvJ += tb.measures[i].EndPackage() * (1 + tb.rng.Normal(0, tb.opts.MeasureNoise))
	}

	sr.res.TotalSenderJ = senderJ
	sr.res.ReceiverEnergyJ = recvJ
	sr.res.Duration = sr.doneAt
	if s := sr.res.Duration.Seconds(); s > 0 {
		sr.res.AvgSenderPowerW = senderJ / s
	}
	sr.res.MeanFCT = sr.acc.Mean()
	sr.res.P99FCT = sr.fct.Value()
	sr.res.MaxFCT = sr.acc.Max()
	sr.res.EventsFired = tb.Engine.Fired()
}
