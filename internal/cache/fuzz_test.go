package cache

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpenEnvelope drives the GVC1 envelope decoder with arbitrary bytes.
// The cache's contract is that a corrupted or truncated entry is a silent
// miss, never a panic or an error, so the decoder must hold three
// properties under fuzzing:
//
//  1. it never panics, whatever the input;
//  2. when it accepts, the envelope is canonical: re-sealing the returned
//     payload reproduces the input byte for byte (no malleable framing);
//  3. sealed data round-trips, and any single-byte corruption or one-byte
//     truncation of a sealed envelope is rejected — every byte of the
//     frame is covered by the magic, the length, or the checksum.
func FuzzOpenEnvelope(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("GVC1"))
	f.Add([]byte("GVC1 short header"))
	f.Add(sealEnvelope(nil))
	f.Add(sealEnvelope([]byte("payload")))
	corrupt := sealEnvelope([]byte("corrupt me"))
	corrupt[len(corrupt)-1] ^= 0x01
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		if payload, ok := openEnvelope(data); ok {
			if resealed := sealEnvelope(payload); !bytes.Equal(resealed, data) {
				t.Fatalf("accepted envelope is not canonical: reseal differs (%d vs %d bytes)", len(resealed), len(data))
			}
		}

		sealed := sealEnvelope(data)
		got, ok := openEnvelope(sealed)
		if !ok || !bytes.Equal(got, data) {
			t.Fatalf("sealed payload did not round-trip (ok=%v)", ok)
		}
		if _, ok := openEnvelope(sealed[:len(sealed)-1]); ok {
			t.Fatal("truncated envelope accepted")
		}
		flipped := append([]byte(nil), sealed...)
		flipped[len(data)%len(sealed)] ^= 0x5a
		if _, ok := openEnvelope(flipped); ok {
			t.Fatal("corrupted envelope accepted")
		}
	})
}

// FuzzStoreGetCorrupted plants arbitrary bytes where a cache entry would
// live and asserts Get treats whatever it finds as, at worst, a miss: no
// panic, and a hit only for data that really is a sealed gob of the
// expected shape.
func FuzzStoreGetCorrupted(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not an envelope"))
	f.Add(sealEnvelope([]byte("sealed but not gob")))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Open(t.TempDir(), "fuzz-v1")
		if err != nil {
			t.Fatal(err)
		}
		key := NewKey("fuzz", "entry")
		path := s.addr(key)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var out payload
		if s.Get(key, &out) {
			// A hit is only legitimate if the bytes were a valid envelope.
			if _, ok := openEnvelope(data); !ok {
				t.Fatal("Get reported a hit on an invalid envelope")
			}
		}
	})
}
