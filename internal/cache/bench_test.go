package cache_test

import (
	"testing"

	"greenenvy/internal/perf"
)

// The bodies live in internal/perf (an external test package here avoids
// the cache → perf → cache import cycle) so cmd/simbench can record the
// same numbers into BENCH_sim.json.

func BenchmarkSweepCacheWarm(b *testing.B) { perf.BenchSweepCacheWarm(b) }
func BenchmarkSweepCacheCold(b *testing.B) { perf.BenchSweepCacheCold(b) }
