// Package cache is a disk-persistent, content-addressed store for
// deterministic experiment results.
//
// The simulator is deterministic per seed, so a simulation result is a pure
// function of its result-affecting inputs. A Key is a stable hash over those
// inputs (experiment identity, parameters, per-repetition seed); the store
// mixes in a caller-supplied version stamp so that any intentional change to
// simulator semantics — tracked by the golden sweep digest — addresses a
// disjoint part of the store and stale entries are never returned.
//
// Values are gob-encoded result structs wrapped in a checksummed envelope
// and written atomically (temp file + rename into place), so concurrent
// processes sharing one directory, or a crash mid-write, can never corrupt
// an entry another reader would trust. Truncated, corrupted, or
// version-mismatched entries are silently treated as misses: the caller
// recomputes and overwrites them.
//
// All Store methods are safe for concurrent use and tolerate a nil
// receiver, so callers can thread an optional *Store without nil checks.
package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Key is the content address of one cached result: a hash over every
// result-affecting input of the computation it memoizes.
type Key struct {
	sum [sha256.Size]byte
}

// NewKey hashes parts into a Key. Every part is tagged with its type and
// length before hashing, so neighbouring parts cannot collide by
// concatenation ("ab","c" hashes differently from "a","bc") and the same
// number hashed as a different type yields a different key. Supported part
// types: string, []byte, bool, int, int64, uint64, float64. Anything else
// panics — key construction is a correctness-critical code path and an
// unhashed field must fail loudly, not silently alias another key.
func NewKey(parts ...any) Key {
	h := sha256.New()
	var buf [9]byte
	scalar := func(tag byte, v uint64) {
		buf[0] = tag
		binary.LittleEndian.PutUint64(buf[1:], v)
		h.Write(buf[:])
	}
	blob := func(tag byte, b []byte) {
		scalar(tag, uint64(len(b)))
		h.Write(b)
	}
	for _, p := range parts {
		switch v := p.(type) {
		case string:
			blob('s', []byte(v))
		case []byte:
			blob('b', v)
		case bool:
			if v {
				scalar('t', 1)
			} else {
				scalar('t', 0)
			}
		case int:
			scalar('i', uint64(int64(v)))
		case int64:
			scalar('i', uint64(v))
		case uint64:
			scalar('u', v)
		case float64:
			scalar('f', math.Float64bits(v))
		default:
			panic(fmt.Sprintf("cache: unhashable key part of type %T", p))
		}
	}
	var k Key
	h.Sum(k.sum[:0])
	return k
}

// Stats is a point-in-time snapshot of a store's accounting.
type Stats struct {
	// Hits and Misses count Get calls; a failed decode of an existing
	// file (truncation, corruption, version skew) counts as a miss.
	Hits, Misses uint64
	// Puts counts successfully persisted entries.
	Puts uint64
	// BytesRead and BytesWritten count on-disk envelope bytes moved by
	// hits and puts respectively.
	BytesRead, BytesWritten uint64
}

// Store is one cache directory. Entries live two levels deep
// (dir/aa/<hex>.gob) under an address that mixes the store's version stamp
// into every key, so stores opened on the same directory with different
// stamps see disjoint entry sets.
type Store struct {
	dir     string
	version [sha256.Size]byte

	hits, misses, puts      atomic.Uint64
	bytesRead, bytesWritten atomic.Uint64
}

// Open creates (if needed) and opens the cache directory. The version
// stamp becomes part of every entry address: bumping it invalidates the
// whole store without touching files.
func Open(dir, version string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Store{dir: dir, version: sha256.Sum256([]byte(version))}, nil
}

// Dir returns the store's root directory ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// addr is the on-disk path of key under this store's version stamp.
func (s *Store) addr(k Key) string {
	h := sha256.New()
	h.Write(s.version[:])
	h.Write(k.sum[:])
	hx := hex.EncodeToString(h.Sum(nil))
	return filepath.Join(s.dir, hx[:2], hx[2:]+".gob")
}

// envelope framing: magic, payload length, payload checksum, payload.
const envMagic = "GVC1"

var envHeaderLen = len(envMagic) + 8 + sha256.Size

// sealEnvelope frames a gob payload for storage.
func sealEnvelope(payload []byte) []byte {
	out := make([]byte, 0, envHeaderLen+len(payload))
	out = append(out, envMagic...)
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(payload)))
	out = append(out, n[:]...)
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	return append(out, payload...)
}

// openEnvelope validates framing and checksum, returning the payload.
func openEnvelope(data []byte) ([]byte, bool) {
	if len(data) < envHeaderLen || string(data[:len(envMagic)]) != envMagic {
		return nil, false
	}
	n := binary.LittleEndian.Uint64(data[len(envMagic) : len(envMagic)+8])
	payload := data[envHeaderLen:]
	if uint64(len(payload)) != n {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[len(envMagic)+8:envHeaderLen]) {
		return nil, false
	}
	return payload, true
}

// Get looks key up and gob-decodes the entry into out (which must be a
// pointer to a zero value of the type Put stored; on a decode failure out
// may be partially populated and must be discarded). It reports whether a
// valid entry was found; any read, framing, checksum, or decode failure is
// a miss, never an error — the caller recomputes.
func (s *Store) Get(key Key, out any) bool {
	if s == nil {
		return false
	}
	data, err := os.ReadFile(s.addr(key))
	if err != nil {
		s.misses.Add(1)
		return false
	}
	payload, ok := openEnvelope(data)
	if !ok {
		s.misses.Add(1)
		return false
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(out); err != nil {
		s.misses.Add(1)
		return false
	}
	s.hits.Add(1)
	s.bytesRead.Add(uint64(len(data)))
	return true
}

// Put persists val under key, atomically: the envelope is written to a
// temp file in the destination directory and renamed into place, so a
// concurrent reader sees either the old complete entry or the new one,
// and a crash leaves at worst an orphaned temp file. Concurrent writers
// of the same key are deterministic-by-construction (same inputs, same
// bytes), so last-rename-wins is safe.
func (s *Store) Put(key Key, val any) error {
	if s == nil {
		return nil
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(val); err != nil {
		return fmt.Errorf("cache: encode: %w", err)
	}
	data := sealEnvelope(payload.Bytes())
	path := s.addr(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".put-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	s.puts.Add(1)
	s.bytesWritten.Add(uint64(len(data)))
	return nil
}

// Clear removes every entry (all version stamps); the store stays usable.
func (s *Store) Clear() error {
	if s == nil {
		return nil
	}
	if err := os.RemoveAll(s.dir); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	return os.MkdirAll(s.dir, 0o755)
}

// Stats snapshots the store's counters (zero for a nil store).
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Puts:         s.puts.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
	}
}
