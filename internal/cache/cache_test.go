package cache

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// payload is a representative result shape: nested struct, slices, floats.
type payload struct {
	Name   string
	Seed   uint64
	Values []float64
	Nested struct{ A, B int }
	Ratio  float64
}

func samplePayload() payload {
	p := payload{Name: "cubic/1500", Seed: 0xdeadbeef, Values: []float64{1.5, 2.25, -0.125}, Ratio: 0.75}
	p.Nested.A, p.Nested.B = 7, 42
	return p
}

func mustOpen(t *testing.T, dir, version string) *Store {
	t.Helper()
	s, err := Open(dir, version)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), "v1")
	key := NewKey("exp", uint64(1), 1500)
	want := samplePayload()
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	var got payload
	if !s.Get(key, &got) {
		t.Fatal("fresh entry missed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mangled value:\n got %+v\nwant %+v", got, want)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 0 || st.Puts != 1 {
		t.Fatalf("stats %+v, want 1 hit / 0 misses / 1 put", st)
	}
	if st.BytesRead == 0 || st.BytesWritten == 0 || st.BytesRead != st.BytesWritten {
		t.Fatalf("byte accounting %+v", st)
	}
}

func TestAbsentKeyMisses(t *testing.T) {
	s := mustOpen(t, t.TempDir(), "v1")
	var got payload
	if s.Get(NewKey("never-stored"), &got) {
		t.Fatal("absent key hit")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("stats %+v, want 1 miss", st)
	}
}

// TestNilStore: a nil *Store must behave as a disabled cache, not panic.
func TestNilStore(t *testing.T) {
	var s *Store
	if s.Get(NewKey("x"), &payload{}) {
		t.Fatal("nil store hit")
	}
	if err := s.Put(NewKey("x"), samplePayload()); err != nil {
		t.Fatal(err)
	}
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil store stats %+v", st)
	}
	if s.Dir() != "" {
		t.Fatal("nil store dir")
	}
}

// entryFiles lists every entry file under the store.
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && filepath.Ext(path) == ".gob" {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTruncatedEntryIsAMiss: a crash that truncates an entry (or a partial
// copy) must fall back to recompute, not error or return garbage.
func TestTruncatedEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, "v1")
	key := NewKey("trunc")
	if err := s.Put(key, samplePayload()); err != nil {
		t.Fatal(err)
	}
	files := entryFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("expected 1 entry file, found %v", files)
	}
	for _, n := range []int64{0, 3, int64(envHeaderLen) - 1, int64(envHeaderLen) + 2} {
		if err := os.Truncate(files[0], n); err != nil {
			t.Fatal(err)
		}
		var got payload
		if s.Get(key, &got) {
			t.Fatalf("entry truncated to %d bytes still hit", n)
		}
	}
	// Recompute path: overwriting the damaged entry restores it.
	if err := s.Put(key, samplePayload()); err != nil {
		t.Fatal(err)
	}
	var got payload
	if !s.Get(key, &got) {
		t.Fatal("rewritten entry missed")
	}
}

// TestCorruptedEntryIsAMiss: bit rot anywhere in the payload must be caught
// by the checksum and treated as a miss.
func TestCorruptedEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, "v1")
	key := NewKey("corrupt")
	if err := s.Put(key, samplePayload()); err != nil {
		t.Fatal(err)
	}
	file := entryFiles(t, dir)[0]
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the payload, one in the checksum, one in the magic.
	for _, i := range []int{len(data) - 1, len(envMagic) + 8 + 1, 0} {
		mangled := append([]byte(nil), data...)
		mangled[i] ^= 0x40
		if err := os.WriteFile(file, mangled, 0o644); err != nil {
			t.Fatal(err)
		}
		var got payload
		if s.Get(key, &got) {
			t.Fatalf("entry with byte %d flipped still hit", i)
		}
	}
}

// TestVersionMismatchIsAMiss: a store opened with a different version stamp
// must not see entries written under the old stamp, and the old stamp's
// entries must survive untouched.
func TestVersionMismatchIsAMiss(t *testing.T) {
	dir := t.TempDir()
	key := NewKey("versioned")
	v1 := mustOpen(t, dir, "sim-digest-aaaa")
	if err := v1.Put(key, samplePayload()); err != nil {
		t.Fatal(err)
	}
	v2 := mustOpen(t, dir, "sim-digest-bbbb")
	var got payload
	if v2.Get(key, &got) {
		t.Fatal("version-mismatched entry hit")
	}
	// The new version writes its own entry; both coexist.
	if err := v2.Put(key, samplePayload()); err != nil {
		t.Fatal(err)
	}
	if !v2.Get(key, &got) || !v1.Get(key, &got) {
		t.Fatal("entries under distinct stamps should coexist")
	}
	if len(entryFiles(t, dir)) != 2 {
		t.Fatalf("expected 2 entry files, found %v", entryFiles(t, dir))
	}
}

// TestConcurrentWriters: many goroutines putting and getting the same and
// distinct keys concurrently must never error, corrupt an entry, or let a
// reader observe a torn write (run under -race in CI).
func TestConcurrentWriters(t *testing.T) {
	s := mustOpen(t, t.TempDir(), "v1")
	const (
		workers = 8
		keys    = 4
		rounds  = 20
	)
	want := make([]payload, keys)
	for k := range want {
		want[k] = samplePayload()
		want[k].Seed = uint64(k)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := (w + r) % keys
				key := NewKey("concurrent", k)
				if err := s.Put(key, want[k]); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				var got payload
				if s.Get(key, &got) && !reflect.DeepEqual(got, want[k]) {
					t.Errorf("worker %d observed torn/mixed entry: %+v", w, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for k := range want {
		var got payload
		if !s.Get(NewKey("concurrent", k), &got) {
			t.Fatalf("key %d missing after concurrent writes", k)
		}
		if !reflect.DeepEqual(got, want[k]) {
			t.Fatalf("key %d corrupted: %+v", k, got)
		}
	}
}

func TestClear(t *testing.T) {
	s := mustOpen(t, t.TempDir(), "v1")
	key := NewKey("cleared")
	if err := s.Put(key, samplePayload()); err != nil {
		t.Fatal(err)
	}
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	var got payload
	if s.Get(key, &got) {
		t.Fatal("entry survived Clear")
	}
	// Store stays usable after Clear.
	if err := s.Put(key, samplePayload()); err != nil {
		t.Fatal(err)
	}
	if !s.Get(key, &got) {
		t.Fatal("store unusable after Clear")
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open("", "v1"); err == nil {
		t.Fatal("empty dir accepted")
	}
}

// TestKeyDerivation pins the anti-collision properties NewKey promises.
func TestKeyDerivation(t *testing.T) {
	if NewKey("ab", "c") == NewKey("a", "bc") {
		t.Fatal("concatenation collision")
	}
	if NewKey("a") == NewKey([]byte("a")) {
		t.Fatal("type tag ignored for string vs []byte")
	}
	if NewKey(uint64(1)) == NewKey(1) {
		t.Fatal("type tag ignored for uint64 vs int")
	}
	if NewKey(float64(1)) == NewKey(uint64(math.Float64bits(1))) {
		t.Fatal("type tag ignored for float64 vs uint64")
	}
	if NewKey(true) == NewKey(false) {
		t.Fatal("bools collide")
	}
	if NewKey("same", 1, 2.5) != NewKey("same", 1, 2.5) {
		t.Fatal("key derivation is not stable")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unhashable part did not panic")
		}
	}()
	NewKey(struct{}{})
}
