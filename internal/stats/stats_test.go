package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %v, want 5", m)
	}
	if s := StdDev(xs); s != 2 {
		t.Fatalf("std = %v, want 2", s)
	}
	m, s := MeanStd(xs)
	if m != 5 || s != 2 {
		t.Fatalf("MeanStd = %v, %v", m, s)
	}
}

func TestEmptyInputsAreNaN(t *testing.T) {
	for name, v := range map[string]float64{
		"mean": Mean(nil), "std": StdDev(nil), "min": Min(nil),
		"max": Max(nil), "jain": JainIndex(nil), "pct": Percentile(nil, 50),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s(nil) = %v, want NaN", name, v)
		}
	}
	if !math.IsNaN(Pearson([]float64{1}, []float64{2})) {
		t.Error("Pearson of single pair should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max = %v/%v", Min(xs), Max(xs))
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if r := Pearson(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Fatalf("r = %v, want 1", r)
	}
	neg := []float64{8, 6, 4, 2}
	if r := Pearson(xs, neg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("r = %v, want -1", r)
	}
}

func TestPearsonConstantSeriesNaN(t *testing.T) {
	if !math.IsNaN(Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})) {
		t.Fatal("constant x should give NaN")
	}
}

func TestPearsonUncorrelated(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{1, -1, 1, -1}
	if r := Pearson(xs, ys); math.Abs(r) > 0.5 {
		t.Fatalf("r = %v, want near 0", r)
	}
}

func TestJainIndex(t *testing.T) {
	if j := JainIndex([]float64{5, 5, 5, 5}); math.Abs(j-1) > 1e-12 {
		t.Fatalf("equal shares: %v, want 1", j)
	}
	if j := JainIndex([]float64{10, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Fatalf("monopoly of 4: %v, want 0.25", j)
	}
	if !math.IsNaN(JainIndex([]float64{0, 0})) {
		t.Fatal("all-zero should be NaN")
	}
}

// Property: Jain index is always in [1/n, 1] for nonzero allocations.
func TestJainBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		nonzero := false
		for i, r := range raw {
			xs[i] = float64(r)
			if r > 0 {
				nonzero = true
			}
		}
		if !nonzero {
			return true
		}
		j := JainIndex(xs)
		n := float64(len(xs))
		return j >= 1/n-1e-12 && j <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOLS(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b := OLS(xs, ys)
	if math.Abs(a-1) > 1e-12 || math.Abs(b-2) > 1e-12 {
		t.Fatalf("OLS = %v + %v x", a, b)
	}
	a, b = OLS([]float64{1, 1}, []float64{2, 3})
	if !math.IsNaN(a) || !math.IsNaN(b) {
		t.Fatal("degenerate OLS should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if p := Percentile(xs, 50); p != 3 {
		t.Fatalf("p50 = %v", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(xs, 25); p != 2 {
		t.Fatalf("p25 = %v", p)
	}
	if !math.IsNaN(Percentile(xs, 101)) {
		t.Fatal("p>100 should be NaN")
	}
	if p := Percentile([]float64{7}, 99); p != 7 {
		t.Fatalf("single-element percentile = %v", p)
	}
}

func TestPercentilesMatchesPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3, 9, 7}
	ps := []float64{0, 25, 50, 90, 99, 100}
	got := Percentiles(xs, ps...)
	if len(got) != len(ps) {
		t.Fatalf("len = %d, want %d", len(got), len(ps))
	}
	for i, p := range ps {
		if want := Percentile(xs, p); got[i] != want {
			t.Errorf("p%g = %v, want %v", p, got[i], want)
		}
	}
	// The shared sort must not reorder the caller's slice.
	if xs[0] != 5 || xs[len(xs)-1] != 7 {
		t.Errorf("input mutated: %v", xs)
	}
	// Out-of-range ranks map to NaN without disturbing the others.
	mixed := Percentiles(xs, 50, -1, 101)
	if mixed[0] != Percentile(xs, 50) || !math.IsNaN(mixed[1]) || !math.IsNaN(mixed[2]) {
		t.Errorf("mixed ranks = %v", mixed)
	}
	for _, v := range Percentiles(nil, 50, 99) {
		if !math.IsNaN(v) {
			t.Errorf("empty input should be NaN, got %v", v)
		}
	}
}

func TestSummaryFormat(t *testing.T) {
	s := Summary([]float64{1, 1, 1})
	if s != "1.000 ± 0.000" {
		t.Fatalf("Summary = %q", s)
	}
}
