package stats

import "math"

// This file holds the streaming (O(1)-memory) aggregation primitives the
// million-flow workload replay uses: an online mean/extremes accumulator and
// a fixed-size quantile sketch. Both are deterministic functions of their
// insertion order — no randomness, no map iteration — so same-seed runs
// produce byte-identical summaries regardless of how many flows streamed
// through them.

// Accumulator maintains count, sum, and extremes of a stream in O(1) memory.
// The zero value is ready to use.
type Accumulator struct {
	// N is the number of observations.
	N uint64
	// Sum is the running total (accumulated in insertion order).
	Sum float64
	// MinV and MaxV are the extremes, valid once N > 0.
	MinV, MaxV float64
}

// Add folds in one observation.
//
//greenvet:hotpath
func (a *Accumulator) Add(x float64) {
	if a.N == 0 || x < a.MinV {
		a.MinV = x
	}
	if a.N == 0 || x > a.MaxV {
		a.MaxV = x
	}
	a.N++
	a.Sum += x
}

// Mean returns the running mean, or NaN before any observation.
func (a *Accumulator) Mean() float64 {
	if a.N == 0 {
		return math.NaN()
	}
	return a.Sum / float64(a.N)
}

// Min returns the smallest observation, or NaN before any.
func (a *Accumulator) Min() float64 {
	if a.N == 0 {
		return math.NaN()
	}
	return a.MinV
}

// Max returns the largest observation, or NaN before any.
func (a *Accumulator) Max() float64 {
	if a.N == 0 {
		return math.NaN()
	}
	return a.MaxV
}

// QuantileSketch estimates one quantile of a stream in O(1) memory with the
// P² algorithm (Jain & Chlamtac, CACM 1985): five markers track the minimum,
// the target quantile, the quantile's flanks, and the maximum, adjusted with
// a piecewise-parabolic fit as observations arrive. The estimate is exact
// for the first five observations and approximate after; the sketch is a
// pure deterministic function of the insertion sequence (no reservoir, no
// randomness), which is what keeps streamed workload digests byte-identical
// across repetitions of the same seed.
type QuantileSketch struct {
	p   float64
	n   uint64
	q   [5]float64 // marker heights
	pos [5]float64 // marker positions (1-based observation counts)
	des [5]float64 // desired marker positions
	inc [5]float64 // per-observation desired-position increments
}

// NewQuantileSketch returns a sketch for quantile p in (0, 1), e.g. 0.99
// for the P99.
func NewQuantileSketch(p float64) *QuantileSketch {
	if p <= 0 || p >= 1 {
		panic("stats: quantile out of (0, 1)")
	}
	s := &QuantileSketch{p: p}
	s.des = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	s.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return s
}

// P returns the quantile the sketch targets.
func (s *QuantileSketch) P() float64 { return s.p }

// Count returns the number of observations folded in.
func (s *QuantileSketch) Count() uint64 { return s.n }

// Add folds in one observation.
//
//greenvet:hotpath
func (s *QuantileSketch) Add(x float64) {
	if s.n < 5 {
		// Insertion sort into the initial marker set.
		i := int(s.n)
		for i > 0 && s.q[i-1] > x {
			s.q[i] = s.q[i-1]
			i--
		}
		s.q[i] = x
		s.n++
		if s.n == 5 {
			for j := range s.pos {
				s.pos[j] = float64(j + 1)
			}
		}
		return
	}

	// Locate the cell containing x, extending the extremes.
	var k int
	switch {
	case x < s.q[0]:
		s.q[0] = x
		k = 0
	case x >= s.q[4]:
		s.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < s.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		s.pos[i]++
	}
	for i := range s.des {
		s.des[i] += s.inc[i]
	}
	s.n++

	// Adjust the interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := s.des[i] - s.pos[i]
		if (d >= 1 && s.pos[i+1]-s.pos[i] > 1) || (d <= -1 && s.pos[i-1]-s.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			qn := s.parabolic(i, sign)
			if qn <= s.q[i-1] || qn >= s.q[i+1] {
				qn = s.linear(i, sign)
			}
			s.q[i] = qn
			s.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic marker update.
func (s *QuantileSketch) parabolic(i int, d float64) float64 {
	return s.q[i] + d/(s.pos[i+1]-s.pos[i-1])*
		((s.pos[i]-s.pos[i-1]+d)*(s.q[i+1]-s.q[i])/(s.pos[i+1]-s.pos[i])+
			(s.pos[i+1]-s.pos[i]-d)*(s.q[i]-s.q[i-1])/(s.pos[i]-s.pos[i-1]))
}

// linear is the fallback when the parabola would cross a neighbor.
func (s *QuantileSketch) linear(i int, d float64) float64 {
	j := i + int(d)
	return s.q[i] + d*(s.q[j]-s.q[i])/(s.pos[j]-s.pos[i])
}

// Value returns the current quantile estimate: exact for up to five
// observations (by interpolation over the sorted set), the P² middle marker
// after. NaN before any observation.
func (s *QuantileSketch) Value() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	if s.n < 5 {
		// Exact small-sample quantile over the sorted prefix, matching
		// Percentile's linear interpolation.
		return sortedQuantile(s.q[:s.n], s.p*100)
	}
	return s.q[2]
}
