package stats

import (
	"math"
	"testing"

	"greenenvy/internal/sim"
)

func TestAccumulatorMatchesBatch(t *testing.T) {
	rng := sim.NewRNG(7)
	var a Accumulator
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := rng.Float64()*100 - 50
		a.Add(x)
		xs = append(xs, x)
	}
	if a.N != 1000 {
		t.Fatalf("N = %d, want 1000", a.N)
	}
	if got, want := a.Mean(), Mean(xs); math.Abs(got-want) > 1e-9 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got, want := a.Min(), Min(xs); got != want {
		t.Errorf("Min = %v, want %v", got, want)
	}
	if got, want := a.Max(), Max(xs); got != want {
		t.Errorf("Max = %v, want %v", got, want)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if !math.IsNaN(a.Mean()) || !math.IsNaN(a.Min()) || !math.IsNaN(a.Max()) {
		t.Errorf("empty accumulator should report NaN, got mean=%v min=%v max=%v",
			a.Mean(), a.Min(), a.Max())
	}
}

func TestQuantileSketchSmallSampleExact(t *testing.T) {
	// Below five observations the sketch must agree exactly with
	// Percentile's interpolation over the same data.
	data := []float64{9, 1, 5, 3}
	for n := 1; n <= len(data); n++ {
		s := NewQuantileSketch(0.5)
		for _, x := range data[:n] {
			s.Add(x)
		}
		want := Percentile(data[:n], 50)
		if got := s.Value(); got != want {
			t.Errorf("n=%d: Value = %v, want %v", n, got, want)
		}
	}
}

func TestQuantileSketchAccuracy(t *testing.T) {
	// P² is approximate, but on smooth unimodal data it should land close
	// to the exact empirical quantile. Use a deterministic RNG stream.
	for _, p := range []float64{0.5, 0.9, 0.99} {
		rng := sim.NewRNG(42)
		s := NewQuantileSketch(p)
		var xs []float64
		for i := 0; i < 20000; i++ {
			// Exponential-ish heavy tail via inverse transform.
			x := -math.Log(1 - rng.Float64())
			s.Add(x)
			xs = append(xs, x)
		}
		exact := Percentile(xs, p*100)
		got := s.Value()
		relErr := math.Abs(got-exact) / exact
		if relErr > 0.05 {
			t.Errorf("p=%v: sketch %v vs exact %v (rel err %.3f)", p, got, exact, relErr)
		}
		if s.Count() != 20000 {
			t.Errorf("Count = %d, want 20000", s.Count())
		}
		if s.P() != p {
			t.Errorf("P = %v, want %v", s.P(), p)
		}
	}
}

func TestQuantileSketchDeterministic(t *testing.T) {
	// Same insertion sequence, bit-identical estimate: the sketch must be a
	// pure function of its inputs with no internal randomness.
	run := func() float64 {
		rng := sim.NewRNG(9)
		s := NewQuantileSketch(0.99)
		for i := 0; i < 5000; i++ {
			s.Add(rng.Float64())
		}
		return s.Value()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("sketch not deterministic: %v vs %v", a, b)
	}
}

func TestQuantileSketchEmptyAndPanics(t *testing.T) {
	s := NewQuantileSketch(0.99)
	if !math.IsNaN(s.Value()) {
		t.Errorf("empty sketch Value = %v, want NaN", s.Value())
	}
	for _, bad := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewQuantileSketch(%v) did not panic", bad)
				}
			}()
			NewQuantileSketch(bad)
		}()
	}
}

func TestQuantileSketchConstantStream(t *testing.T) {
	s := NewQuantileSketch(0.9)
	for i := 0; i < 100; i++ {
		s.Add(3.25)
	}
	if got := s.Value(); got != 3.25 {
		t.Errorf("constant stream Value = %v, want 3.25", got)
	}
}

func TestQuantileSketchAddNoAllocs(t *testing.T) {
	// The sketch sits on the per-flow completion path of the streaming
	// testbed driver; folding in an observation must not allocate.
	s := NewQuantileSketch(0.99)
	rng := sim.NewRNG(3)
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	var a Accumulator
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		s.Add(xs[i%len(xs)])
		a.Add(xs[i%len(xs)])
		i++
	})
	if allocs != 0 {
		t.Errorf("Add allocates %v per op, want 0", allocs)
	}
}
