// Package stats provides the statistical helpers the paper's analysis uses:
// mean and standard deviation over repeated runs (§3 reports std over 10
// repetitions), Pearson correlation (§4.3 reports corr(energy, power) ≈
// −0.8; §4.5 corr(energy, retransmissions) ≈ 0.47), Jain's fairness index,
// and ordinary least squares for trend lines.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation, or NaN for an empty
// slice.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MeanStd returns both moments in one pass over the callers' data.
func MeanStd(xs []float64) (mean, std float64) {
	return Mean(xs), StdDev(xs)
}

// Min and Max return the extremes; NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum; NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Pearson returns the sample correlation coefficient of paired data. It
// returns NaN when fewer than two pairs are given, when the lengths differ,
// or when either series is constant.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// JainIndex returns Jain's fairness index of an allocation:
// (Σx)² / (n·Σx²). It is 1 for equal shares and 1/n when one party takes
// everything. Empty or all-zero input yields NaN.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return math.NaN()
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}

// OLS fits y = a + b·x by ordinary least squares and returns the intercept
// and slope. It returns NaNs for degenerate input.
func OLS(xs, ys []float64) (a, b float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN(), math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		sxy += (xs[i] - mx) * (ys[i] - my)
		sxx += (xs[i] - mx) * (xs[i] - mx)
	}
	if sxx == 0 {
		return math.NaN(), math.NaN()
	}
	b = sxy / sxx
	a = my - b*mx
	return a, b
}

// sortedQuantile interpolates the p-th percentile (0..100) over data that
// is already sorted ascending. Callers guarantee len(cp) > 0 and p in range.
func sortedQuantile(cp []float64, p float64) float64 {
	if len(cp) == 1 {
		return cp[0]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(rank)
	if lo >= len(cp)-1 {
		return cp[len(cp)-1]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[lo+1]*frac
}

// Percentile returns the p-th percentile (0..100) by linear interpolation
// over a copy of the data. NaN for empty input or p outside [0,100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || p < 0 || p > 100 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return sortedQuantile(cp, p)
}

// Percentiles returns several percentiles of the same data with one copy
// and one sort, interpolating each requested rank over the shared sorted
// slice — use it wherever multiple quantiles of one series are read
// together instead of calling Percentile per rank. Out-of-range ranks map
// to NaN; empty input yields all NaNs.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	for i, p := range ps {
		if p < 0 || p > 100 {
			out[i] = math.NaN()
			continue
		}
		out[i] = sortedQuantile(cp, p)
	}
	return out
}

// Summary is a formatted mean ± std pair.
func Summary(xs []float64) string {
	m, s := MeanStd(xs)
	return fmt.Sprintf("%.3f ± %.3f", m, s)
}
