// Package perf holds the simulator's microbenchmark bodies. They live in a
// normal (non-test) package so two consumers can share them:
//
//   - the `go test -bench` wrappers in internal/sim and internal/netsim,
//     which run them under the standard benchmark harness, and
//   - cmd/simbench, which runs them via testing.Benchmark and writes the
//     results to BENCH_sim.json, giving the repo a recorded perf
//     trajectory from PR to PR.
//
// Every body reports allocations: the engine hot path is supposed to be
// allocation-free, and these benchmarks are where that regression would
// first show.
package perf

import (
	"os"
	"testing"

	"greenenvy/internal/cache"
	"greenenvy/internal/iperf"
	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
	"greenenvy/internal/tcp"
	"greenenvy/internal/testbed"
	"greenenvy/internal/workload"
)

// BenchEngineEventLoop measures raw event throughput: a self-rescheduling
// callback chain, the pattern of every periodic sampler in the testbed.
// Steady state must be allocation-free (the fired event is recycled into
// the next After).
func BenchEngineEventLoop(b *testing.B) {
	e := sim.NewEngine()
	b.ReportAllocs()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(100, tick)
		}
	}
	b.ResetTimer()
	e.After(100, tick)
	e.Run()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchTimerRearm measures the cancel-and-rearm pattern of the TCP sender
// timers (RTO/TLP/pacing rearm on nearly every ACK): one pinned event moved
// in place per Reset, no allocation, no dead-event accumulation.
func BenchTimerRearm(b *testing.B) {
	e := sim.NewEngine()
	t := e.NewTimer(func() {})
	// A little background population so the heap fix is not trivially
	// root-only.
	for i := 0; i < 64; i++ {
		e.At(sim.Time(1000+i), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Reset(sim.Duration(100 + i%7))
	}
	b.StopTimer()
	e.Run()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rearms/s")
}

// countingSink counts delivered packets.
type countingSink struct{ n int }

// HandlePacket implements netsim.Handler.
func (s *countingSink) HandlePacket(p *netsim.Packet) { s.n++ }

// benchLinkPath pushes one wireSize-byte packet per iteration through a
// 10 Gb/s link with 5 µs propagation delay — enqueue, serialize, propagate,
// deliver — and reports packets/sec. This is the path the tentpole makes
// allocation-free; see the AllocsPerRun pins in internal/netsim.
func benchLinkPath(b *testing.B, wireSize, dataLen int) {
	e := sim.NewEngine()
	sink := &countingSink{}
	l := netsim.NewLink(e, "bench", 10_000_000_000, 5*sim.Microsecond, netsim.NewDropTail(1<<20, 0), sink)
	p := &netsim.Packet{Flow: 1, Dst: 1, WireSize: wireSize, DataLen: dataLen}
	run := func() {
		l.HandlePacket(p)
		e.Run()
	}
	for i := 0; i < 128; i++ {
		run() // warm the event pool and queue ring
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
}

// BenchLinkDataPacket is the MTU-1500 data-packet link path.
func BenchLinkDataPacket(b *testing.B) { benchLinkPath(b, 1500, 1460) }

// BenchLinkPureAck is the header-only pure-ACK link path.
func BenchLinkPureAck(b *testing.B) { benchLinkPath(b, tcp.HeaderBytes, 0) }

// BenchDropTailQueue measures steady-state FIFO enqueue/dequeue on the
// ring-buffer DropTail with a standing backlog.
func BenchDropTailQueue(b *testing.B) {
	q := netsim.NewDropTail(1<<30, 0)
	p := &netsim.Packet{WireSize: 1500}
	for i := 0; i < 64; i++ {
		q.Enqueue(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(p)
		q.Dequeue()
	}
}

// BenchDRRQueue measures the weighted-fair scheduler's per-packet cost with
// four competing flows backlogged.
func BenchDRRQueue(b *testing.B) {
	q := netsim.NewDRR(1<<30, 0)
	pkts := make([]*netsim.Packet, 4)
	for f := range pkts {
		pkts[f] = &netsim.Packet{Flow: netsim.FlowID(f), WireSize: 1500}
		q.SetWeight(netsim.FlowID(f), float64(f+1))
		for i := 0; i < 16; i++ {
			q.Enqueue(pkts[f])
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(pkts[i%4])
		q.Dequeue()
	}
}

// cacheSampleResult is a realistically-shaped testbed.RunResult for the
// persistent-cache benchmarks: one flow with a handful of reporting
// intervals, the payload a CCA-sweep cell repetition stores.
func cacheSampleResult() testbed.RunResult {
	rep := iperf.Report{
		Flow: 1, CCA: "cubic", MTU: 1500, Bytes: 50_000_000,
		Start: 0, End: 4_200_000_000, Seconds: 4.2, Bps: 9.5e9,
		Retransmits: 17, DataSent: 50_100_000,
	}
	for i := 0; i < 42; i++ {
		rep.Intervals = append(rep.Intervals, iperf.IntervalStat{
			Start: sim.Time(i) * sim.Time(100*sim.Millisecond),
			End:   sim.Time(i+1) * sim.Time(100*sim.Millisecond),
			Bytes: 1_190_000, Bps: 9.52e9, Retransmits: uint64(i % 2),
		})
	}
	return testbed.RunResult{
		Reports:         []iperf.Report{rep},
		SenderEnergyJ:   []float64{812.5},
		ReceiverEnergyJ: 798.25,
		TotalSenderJ:    812.5,
		Duration:        4_200_000_000,
		AvgSenderPowerW: 193.45,
		Retransmits:     17,
		BottleneckStats: netsim.QueueStats{EnqueuedPackets: 34257, DroppedPackets: 17, MaxBytes: 1 << 20},
	}
}

// benchCacheStore builds a throwaway store for the cache benchmarks; the
// caller must defer cleanup().
func benchCacheStore(b *testing.B) (s *cache.Store, cleanup func()) {
	dir, err := os.MkdirTemp("", "greenenvy-bench-cache")
	if err != nil {
		b.Fatal(err)
	}
	s, err = cache.Open(dir, "bench-stamp")
	if err != nil {
		os.RemoveAll(dir)
		b.Fatal(err)
	}
	return s, func() { os.RemoveAll(dir) }
}

// BenchSweepCacheWarm measures the warm-lookup path of the persistent
// result cache: key derivation plus decoding one cached sweep-cell
// repetition from disk. This is the per-repetition cost a fully warm
// `greenbench -fig all` pays instead of a simulation run.
func BenchSweepCacheWarm(b *testing.B) {
	s, cleanup := benchCacheStore(b)
	defer cleanup()
	key := cache.NewKey("sweep", "cubic", 1500, uint64(50_000_000), uint64(0x9e3779b97f4a7c15))
	if err := s.Put(key, cacheSampleResult()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out testbed.RunResult
		if !s.Get(key, &out) {
			b.Fatal("warm lookup missed")
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
}

// BenchSweepCacheCold measures the cold-lookup (miss) path: key derivation
// plus the failed stat/read of an absent entry — the overhead the cache
// adds to every first-time repetition before it simulates.
func BenchSweepCacheCold(b *testing.B) {
	s, cleanup := benchCacheStore(b)
	defer cleanup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out testbed.RunResult
		if s.Get(cache.NewKey("sweep", "cubic", 1500, uint64(50_000_000), uint64(i)), &out) {
			b.Fatal("absent key hit")
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
}

// BenchFatTreeIncast runs a 32-to-1 cubic incast across a k=8 fat-tree —
// 32 senders spread over distinct edge racks converging on one host through
// table-routed switches and seeded ECMP — and reports the fabric's forwarding
// rate in packets/sec (every packet any switch forwarded, data and ACKs).
// This is the multi-tier counterpart of BenchDumbbellTransfer and the
// benchmark that would first show a regression in the range-route lookup or
// ECMP hash on the hot path.
func BenchFatTreeIncast(b *testing.B) {
	const (
		k       = 8
		senders = 32
		bytes   = 500_000 // per sender
	)
	b.ReportAllocs()
	var pkts uint64
	for i := 0; i < b.N; i++ {
		tb := testbed.NewFatTree(testbed.Options{Seed: 1}, netsim.DefaultFatTree(k))
		for s := 0; s < senders; s++ {
			// One sender per edge switch, round-robin, skipping the
			// receiver's host 0.
			src := netsim.NodeID(1 + s*(k/2)%(k*k*k/4-1))
			if _, err := tb.AddFlowBetween(src, 0, iperf.Spec{
				Bytes:  bytes,
				CCA:    "cubic",
				Config: tcp.Config{MTU: 1500},
			}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := tb.Run(10 * sim.Second); err != nil {
			b.Fatal(err)
		}
		for _, sw := range tb.Fat.Switches() {
			pkts += sw.RxPackets
		}
	}
	b.ReportMetric(float64(pkts)/b.Elapsed().Seconds(), "pkts/s")
	b.ReportMetric(float64(pkts)/float64(b.N), "pkts/run")
}

// benchShardedIncast is the shared body of the sharded-engine benchmarks:
// a k=8 fat-tree carrying eight simultaneous 32-to-1 cross-pod incasts (256
// flows, one incast per pod, every sender in a foreign pod so all traffic
// crosses the pod/core cut). shards selects the engine: 0 is the monolithic
// baseline, a positive count runs the conservative-synchronization
// partition with that many workers. The workload is identical in every
// variant; within the sharded variants the results are byte-identical too,
// so the ratio of run times is pure scheduler scaling. Reported pkts/s is
// the fabric forwarding rate, comparable across variants.
func benchShardedIncast(b *testing.B, shards int) {
	const (
		k           = 8
		hostsPerPod = k * k / 4
		receivers   = k  // one incast per pod
		fanIn       = 32 // senders per incast
		bytes       = 100_000
	)
	b.ReportAllocs()
	var pkts uint64
	for i := 0; i < b.N; i++ {
		tb := testbed.NewFatTree(testbed.Options{Seed: 1, Shards: shards}, netsim.DefaultFatTree(k))
		for r := 0; r < receivers; r++ {
			recv := netsim.NodeID(r * hostsPerPod) // host 0 of pod r
			for j := 0; j < fanIn; j++ {
				// Senders cycle over the seven other pods, a fresh host
				// every full lap: all 256 flows traverse the core tier.
				q := (r + 1 + j%(k-1)) % k
				src := netsim.NodeID(q*hostsPerPod + 1 + j/(k-1))
				if _, err := tb.AddFlowBetween(src, recv, iperf.Spec{
					Bytes:  bytes,
					CCA:    "cubic",
					Config: tcp.Config{MTU: 1500},
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
		if _, err := tb.Run(10 * sim.Second); err != nil {
			b.Fatal(err)
		}
		for _, sw := range tb.Fat.Switches() {
			pkts += sw.RxPackets
		}
	}
	b.ReportMetric(float64(pkts)/b.Elapsed().Seconds(), "pkts/s")
	b.ReportMetric(float64(pkts)/float64(b.N), "pkts/run")
}

// BenchShardedIncastMono is the cross-pod incast on the monolithic engine —
// the pre-tentpole baseline the sharded variants are measured against.
func BenchShardedIncastMono(b *testing.B) { benchShardedIncast(b, 0) }

// BenchShardedIncastW1 runs the partitioned engine with one worker: the
// synchronization overhead in isolation, and the baseline for worker
// scaling (W1/WN run time is the parallel speedup on the host's cores).
func BenchShardedIncastW1(b *testing.B) { benchShardedIncast(b, 1) }

// BenchShardedIncastW2 is the partitioned engine with two workers.
func BenchShardedIncastW2(b *testing.B) { benchShardedIncast(b, 2) }

// BenchShardedIncastW4 is the partitioned engine with four workers.
func BenchShardedIncastW4(b *testing.B) { benchShardedIncast(b, 4) }

// BenchShardedIncastW8 is the partitioned engine with eight workers — one
// per pod, the partition's natural maximum.
func BenchShardedIncastW8(b *testing.B) { benchShardedIncast(b, 8) }

// BenchWorkloadChurn measures the pooled flow-churn path: 2000 short cubic
// flows arriving back to back on the dumbbell testbed, recycled through the
// client free-list with streaming aggregation (no per-flow Reports). The
// reported allocated bytes/op are the whole-run footprint — the number that
// must stay flat as the flow count grows — and flows/s is the churn rate.
func BenchWorkloadChurn(b *testing.B) {
	const (
		flows   = 2000
		payload = 20_000
		gap     = 400 * sim.Microsecond
		senders = 4
	)
	b.ReportAllocs()
	var done uint64
	for i := 0; i < b.N; i++ {
		tb := testbed.New(testbed.Options{Seed: 1, Senders: senders, StreamStats: true})
		n := 0
		stream := testbed.FlowStreamFunc(func() (testbed.FlowArrival, bool) {
			if n >= flows {
				return testbed.FlowArrival{}, false
			}
			a := testbed.FlowArrival{At: sim.Time(n) * sim.Time(gap), Bytes: payload, Src: n % senders}
			n++
			return a, true
		})
		res, err := tb.RunStream(stream, "cubic", nil, 30*sim.Second)
		if err != nil {
			b.Fatal(err)
		}
		done += res.Flows
	}
	b.ReportMetric(float64(done)/b.Elapsed().Seconds(), "flows/s")
	b.ReportMetric(float64(done)/float64(b.N), "flows/run")
}

// BenchWorkloadScaleStreaming is a reduced cell of the workload-scale
// experiment: Poisson arrivals of scaled web-search flows converging on one
// host of a k=4 fat-tree through the streaming churn driver. End-to-end cost
// per replayed flow — generation, admission, pooled launch, P² aggregation —
// at production arrival statistics.
func BenchWorkloadScaleStreaming(b *testing.B) {
	const flows = 1000
	cfg := netsim.DefaultFatTree(4)
	hostBps := float64(cfg.HostBps)
	dist := workload.Scaled{Dist: workload.WebSearch(), Factor: 0.01}
	b.ReportAllocs()
	var done uint64
	for i := 0; i < b.N; i++ {
		tb := testbed.NewFatTree(testbed.Options{Seed: 1, StreamStats: true}, cfg)
		hosts := tb.Fat.NumHosts()
		tb.TouchHost(0, false)
		for h := 1; h < hosts; h++ {
			tb.TouchHost(netsim.NodeID(h), true)
		}
		ws, err := workload.NewStreamN(sim.NewRNG(1), dist, 0.5, hostBps, flows)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		stream := testbed.FlowStreamFunc(func() (testbed.FlowArrival, bool) {
			f, ok := ws.Next()
			if !ok {
				return testbed.FlowArrival{}, false
			}
			a := testbed.FlowArrival{At: f.Start, Bytes: f.Bytes, Src: 1 + n%(hosts-1), Dst: 0}
			n++
			return a, true
		})
		res, err := tb.RunStream(stream, "cubic", nil, 60*sim.Second)
		if err != nil {
			b.Fatal(err)
		}
		done += res.Flows
	}
	b.ReportMetric(float64(done)/b.Elapsed().Seconds(), "flows/s")
	b.ReportMetric(float64(done)/float64(b.N), "flows/run")
}

// BenchDumbbellTransfer runs a complete 25 MB cubic transfer across the
// paper's dumbbell testbed — TCP sender and receiver, bonded uplinks,
// switch, bottleneck queue, energy metering — and reports end-to-end
// simulated packets/sec (every packet the switch forwarded, data and ACKs).
func BenchDumbbellTransfer(b *testing.B) {
	const bytes = 25_000_000
	b.ReportAllocs()
	var pkts uint64
	for i := 0; i < b.N; i++ {
		tb := testbed.New(testbed.Options{Seed: 1})
		if _, err := tb.AddFlow(0, iperf.Spec{
			Bytes:  bytes,
			CCA:    "cubic",
			Config: tcp.Config{MTU: 1500},
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := tb.Run(10 * sim.Second); err != nil {
			b.Fatal(err)
		}
		pkts += tb.Net.Switch.RxPackets
	}
	b.ReportMetric(float64(pkts)/b.Elapsed().Seconds(), "pkts/s")
	b.ReportMetric(float64(pkts)/float64(b.N), "pkts/run")
}
