// Package perf holds the simulator's microbenchmark bodies. They live in a
// normal (non-test) package so two consumers can share them:
//
//   - the `go test -bench` wrappers in internal/sim and internal/netsim,
//     which run them under the standard benchmark harness, and
//   - cmd/simbench, which runs them via testing.Benchmark and writes the
//     results to BENCH_sim.json, giving the repo a recorded perf
//     trajectory from PR to PR.
//
// Every body reports allocations: the engine hot path is supposed to be
// allocation-free, and these benchmarks are where that regression would
// first show.
package perf

import (
	"testing"

	"greenenvy/internal/iperf"
	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
	"greenenvy/internal/tcp"
	"greenenvy/internal/testbed"
)

// BenchEngineEventLoop measures raw event throughput: a self-rescheduling
// callback chain, the pattern of every periodic sampler in the testbed.
// Steady state must be allocation-free (the fired event is recycled into
// the next After).
func BenchEngineEventLoop(b *testing.B) {
	e := sim.NewEngine()
	b.ReportAllocs()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(100, tick)
		}
	}
	b.ResetTimer()
	e.After(100, tick)
	e.Run()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchTimerRearm measures the cancel-and-rearm pattern of the TCP sender
// timers (RTO/TLP/pacing rearm on nearly every ACK): one pinned event moved
// in place per Reset, no allocation, no dead-event accumulation.
func BenchTimerRearm(b *testing.B) {
	e := sim.NewEngine()
	t := e.NewTimer(func() {})
	// A little background population so the heap fix is not trivially
	// root-only.
	for i := 0; i < 64; i++ {
		e.At(sim.Time(1000+i), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Reset(sim.Duration(100 + i%7))
	}
	b.StopTimer()
	e.Run()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rearms/s")
}

// countingSink counts delivered packets.
type countingSink struct{ n int }

// HandlePacket implements netsim.Handler.
func (s *countingSink) HandlePacket(p *netsim.Packet) { s.n++ }

// benchLinkPath pushes one wireSize-byte packet per iteration through a
// 10 Gb/s link with 5 µs propagation delay — enqueue, serialize, propagate,
// deliver — and reports packets/sec. This is the path the tentpole makes
// allocation-free; see the AllocsPerRun pins in internal/netsim.
func benchLinkPath(b *testing.B, wireSize, dataLen int) {
	e := sim.NewEngine()
	sink := &countingSink{}
	l := netsim.NewLink(e, "bench", 10_000_000_000, 5*sim.Microsecond, netsim.NewDropTail(1<<20, 0), sink)
	p := &netsim.Packet{Flow: 1, Dst: 1, WireSize: wireSize, DataLen: dataLen}
	run := func() {
		l.HandlePacket(p)
		e.Run()
	}
	for i := 0; i < 128; i++ {
		run() // warm the event pool and queue ring
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
}

// BenchLinkDataPacket is the MTU-1500 data-packet link path.
func BenchLinkDataPacket(b *testing.B) { benchLinkPath(b, 1500, 1460) }

// BenchLinkPureAck is the header-only pure-ACK link path.
func BenchLinkPureAck(b *testing.B) { benchLinkPath(b, tcp.HeaderBytes, 0) }

// BenchDropTailQueue measures steady-state FIFO enqueue/dequeue on the
// ring-buffer DropTail with a standing backlog.
func BenchDropTailQueue(b *testing.B) {
	q := netsim.NewDropTail(1<<30, 0)
	p := &netsim.Packet{WireSize: 1500}
	for i := 0; i < 64; i++ {
		q.Enqueue(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(p)
		q.Dequeue()
	}
}

// BenchDRRQueue measures the weighted-fair scheduler's per-packet cost with
// four competing flows backlogged.
func BenchDRRQueue(b *testing.B) {
	q := netsim.NewDRR(1<<30, 0)
	pkts := make([]*netsim.Packet, 4)
	for f := range pkts {
		pkts[f] = &netsim.Packet{Flow: netsim.FlowID(f), WireSize: 1500}
		q.SetWeight(netsim.FlowID(f), float64(f+1))
		for i := 0; i < 16; i++ {
			q.Enqueue(pkts[f])
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(pkts[i%4])
		q.Dequeue()
	}
}

// BenchDumbbellTransfer runs a complete 25 MB cubic transfer across the
// paper's dumbbell testbed — TCP sender and receiver, bonded uplinks,
// switch, bottleneck queue, energy metering — and reports end-to-end
// simulated packets/sec (every packet the switch forwarded, data and ACKs).
func BenchDumbbellTransfer(b *testing.B) {
	const bytes = 25_000_000
	b.ReportAllocs()
	var pkts uint64
	for i := 0; i < b.N; i++ {
		tb := testbed.New(testbed.Options{Seed: 1})
		if _, err := tb.AddFlow(0, iperf.Spec{
			Bytes:  bytes,
			CCA:    "cubic",
			Config: tcp.Config{MTU: 1500},
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := tb.Run(10 * sim.Second); err != nil {
			b.Fatal(err)
		}
		pkts += tb.Net.Switch.RxPackets
	}
	b.ReportMetric(float64(pkts)/b.Elapsed().Seconds(), "pkts/s")
	b.ReportMetric(float64(pkts)/float64(b.N), "pkts/run")
}
