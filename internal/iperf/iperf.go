// Package iperf provides an iperf3-like traffic generator over the testbed
// TCP stack: fixed-size bulk transfers with optional target-bandwidth
// pacing (iperf3's -b flag), per-interval statistics, and a summary report
// matching the fields the paper's experiment scripts consume (bytes,
// seconds, bits/second, retransmits).
package iperf

import (
	"errors"
	"fmt"

	"greenenvy/internal/cca"
	"greenenvy/internal/energy"
	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
	"greenenvy/internal/tcp"
)

// Spec describes one client invocation.
type Spec struct {
	// Flow is the flow identifier (unique per testbed run).
	Flow netsim.FlowID
	// Bytes is the transfer size (iperf3 -n).
	Bytes uint64
	// CCA names the congestion control algorithm (iperf3 -C).
	CCA string
	// TargetBps, when positive, paces the client at this bitrate
	// (iperf3 -b).
	TargetBps int64
	// Config carries TCP tunables (MTU, timers). Zero-value fields are
	// filled from tcp.DefaultConfig.
	Config tcp.Config
	// StartAt delays the client's start relative to run begin.
	StartAt sim.Time
	// Duration, when positive, stops the transfer that long after the
	// client actually starts (iperf3 -t): unsent data is trimmed at the
	// stop instant and the flow completes once everything already in
	// flight is acknowledged. Combines with Bytes — whichever limit is
	// reached first ends the transfer.
	Duration sim.Duration
	// Interval is the reporting granularity (default 100 ms).
	Interval sim.Duration
	// NoIntervals disables per-interval statistics entirely (no periodic
	// tick events, Report.Intervals empty). The streaming churn driver
	// sets it: at 10^5–10^6 flows per run the per-flow interval timers and
	// retained IntervalStats would dominate the event count and memory.
	NoIntervals bool
}

// IntervalStat is one reporting interval, like an iperf3 "[ ID] interval"
// line.
type IntervalStat struct {
	Start, End  sim.Time
	Bytes       uint64
	Bps         float64
	Retransmits uint64
}

// Report is the client-side summary, like iperf3's closing JSON.
type Report struct {
	Flow        netsim.FlowID
	CCA         string
	MTU         int
	Bytes       uint64
	Start       sim.Time
	End         sim.Time
	Seconds     float64
	Bps         float64
	Retransmits uint64
	Timeouts    uint64
	DataSent    uint64
	Intervals   []IntervalStat
}

// String formats the summary like an iperf3 closing line.
func (r Report) String() string {
	return fmt.Sprintf("[%3d] 0.00-%.2f sec  %d bytes  %.2f Gbits/sec  %d retrans  (%s, mtu %d)",
		r.Flow, r.Seconds, r.Bytes, r.Bps/1e9, r.Retransmits, r.CCA, r.MTU)
}

// Client is one sender application instance.
type Client struct {
	spec     Spec
	sender   *tcp.Sender
	receiver *tcp.Receiver
	engine   *sim.Engine

	intervals    []IntervalStat
	intervalOpen IntervalStat
	lastBytes    uint64
	lastRetrans  uint64
	done         bool
	// split marks a sender and receiver living on different partition
	// engines: the client then never reads receiver state during the run.
	split      bool
	after      *Client
	startRelay func(fire func())
	// stopEv is the pending Duration time-limit event; cancelled when the
	// transfer completes first (and cleared on Reset, so a pooled client
	// never inherits a stale stop).
	stopEv *sim.Event
	onDone []func()
	// OnComplete fires when the transfer finishes.
	OnComplete func(Report)
}

// NewClient wires a client on srcHost sending to dstHost. Energy accounts
// may be nil. The client does not start until Start (or StartAt elapses
// after StartAll).
func NewClient(engine *sim.Engine, spec Spec, srcHost, dstHost *netsim.Host, srcAccount, dstAccount *energy.Account) (*Client, error) {
	return NewClientOn(engine, engine, spec, srcHost, dstHost, srcAccount, dstAccount)
}

// NewClientOn wires a client whose sender and receiver may live on
// different partition engines (the sharded fat-tree with src and dst hosts
// in different shards). The sender and its timers run on srcEngine, the
// receiver and its delayed-ACK machinery on dstEngine; they communicate
// only through packets, which the topology carries across the partition
// boundary. When the engines differ, per-interval statistics are disabled
// (they would read the remote receiver's counters mid-run, which the
// sharded engine's synchronization does not license) and Report.Bytes is
// derived from the spec on completion — TCP delivers the transfer in order
// and completes on the final ACK, so the two are equal by construction.
// With srcEngine == dstEngine this is exactly NewClient.
func NewClientOn(srcEngine, dstEngine *sim.Engine, spec Spec, srcHost, dstHost *netsim.Host, srcAccount, dstAccount *energy.Account) (*Client, error) {
	cfg := fillConfig(spec.Config)
	cc, err := cca.New(spec.CCA)
	if err != nil {
		return nil, err
	}
	if spec.Bytes == 0 {
		return nil, fmt.Errorf("iperf: zero-byte transfer for flow %d", spec.Flow)
	}
	if spec.TargetBps > 0 {
		cfg.RateLimitBps = spec.TargetBps
	}
	if spec.Interval == 0 {
		spec.Interval = 100 * sim.Millisecond
	}
	spec.Config = cfg

	c := &Client{spec: spec, engine: srcEngine, split: srcEngine != dstEngine}
	c.receiver = tcp.NewReceiver(dstEngine, dstHost, spec.Flow, srcHost.ID, cfg, cc.ECNCapable(), dstAccount)
	c.sender = tcp.NewSender(srcEngine, srcHost, spec.Flow, dstHost.ID, spec.Bytes, cc, cfg, srcAccount)
	c.sender.OnComplete = c.finish
	return c, nil
}

// Pooled-reset sentinel errors (package-level so the hot-path Reset does
// not format error strings per flow).
var (
	errResetSplit    = errors.New("iperf: cannot reset a split-engine client")
	errResetZeroByte = errors.New("iperf: zero-byte transfer")
)

// Reset rebinds a completed (or never-started) client to a new transfer,
// reusing its TCP sender and receiver — their timers, handlers, and
// scoreboard backing arrays — and, when the algorithm name is unchanged,
// restarting the congestion controller in place instead of constructing a
// fresh one. This is the pooled flow lifecycle's setup path: after pool
// warm-up it performs no allocations. Split-engine clients (sharded runs)
// cannot be pooled. OnComplete survives the reset; OnDone callbacks and
// interval statistics are cleared.
//
//greenvet:hotpath
func (c *Client) Reset(spec Spec, srcHost, dstHost *netsim.Host, srcAccount, dstAccount *energy.Account) error {
	if c.split {
		return errResetSplit
	}
	if spec.Bytes == 0 {
		return errResetZeroByte
	}
	cfg := fillConfig(spec.Config)
	if spec.TargetBps > 0 {
		cfg.RateLimitBps = spec.TargetBps
	}
	if spec.Interval == 0 {
		spec.Interval = 100 * sim.Millisecond
	}
	spec.Config = cfg

	cc := c.sender.CC()
	if cc.Name() != spec.CCA || !cca.Restart(cc) {
		fresh, err := cca.New(spec.CCA)
		if err != nil {
			return err
		}
		cc = fresh
	}

	c.spec = spec
	c.receiver.Reset(dstHost, spec.Flow, srcHost.ID, cfg, cc.ECNCapable(), dstAccount)
	c.sender.Reset(srcHost, spec.Flow, dstHost.ID, spec.Bytes, cc, cfg, srcAccount)
	c.intervals = c.intervals[:0]
	c.intervalOpen = IntervalStat{}
	c.lastBytes = 0
	c.lastRetrans = 0
	c.done = false
	c.after = nil
	c.startRelay = nil
	if c.stopEv != nil {
		c.stopEv.Cancel()
		c.stopEv = nil
	}
	c.onDone = c.onDone[:0]
	return nil
}

// Quiescent reports whether the client's receiver has drained its
// serialized receive path; only quiescent clients may be pooled.
func (c *Client) Quiescent() bool { return c.receiver.Quiescent() }

func fillConfig(cfg tcp.Config) tcp.Config {
	def := tcp.DefaultConfig()
	if cfg.MTU == 0 {
		cfg.MTU = def.MTU
	}
	if cfg.InitialCwndSegs == 0 {
		cfg.InitialCwndSegs = def.InitialCwndSegs
	}
	if cfg.MinRTO == 0 {
		cfg.MinRTO = def.MinRTO
	}
	if cfg.MaxRTO == 0 {
		cfg.MaxRTO = def.MaxRTO
	}
	if cfg.DelAckSegs == 0 {
		cfg.DelAckSegs = def.DelAckSegs
	}
	if cfg.DelAckTimeout == 0 {
		cfg.DelAckTimeout = def.DelAckTimeout
	}
	if cfg.ReorderSegs == 0 {
		cfg.ReorderSegs = def.ReorderSegs
	}
	if cfg.RxPathCost == 0 {
		// A negative value disables the receive-path model explicitly.
		cfg.RxPathCost = def.RxPathCost
	}
	if cfg.RxRingPackets == 0 {
		cfg.RxRingPackets = def.RxRingPackets
	}
	return cfg
}

// StartAfter chains this client behind prev: it starts (plus its StartAt
// offset) when prev completes — the "full speed, then idle" serial
// schedule. It must be called before Start.
func (c *Client) StartAfter(prev *Client) { c.after = prev }

// ChainedAfter returns the client this one was chained behind with
// StartAfter, or nil.
func (c *Client) ChainedAfter() *Client { return c.after }

// SetStartRelay routes the chained-start signal through relay instead of
// scheduling directly on this client's engine. The sharded testbed uses it
// when a StartAfter predecessor completes on another partition: relay
// carries fire across the boundary (paying the partition's lookahead
// latency) and invokes it on this client's shard. Must be set before
// Start.
func (c *Client) SetStartRelay(relay func(fire func())) { c.startRelay = relay }

// OnDone registers a callback invoked when the transfer completes, in
// addition to (and after) OnComplete. Multiple callbacks run in
// registration order.
func (c *Client) OnDone(f func()) { c.onDone = append(c.onDone, f) }

// Start schedules the client: at its StartAt offset from now, or — if
// chained with StartAfter — at StartAt after its predecessor completes.
func (c *Client) Start() {
	if c.after != nil {
		relay := c.startRelay
		c.after.onDone = append(c.after.onDone, func() {
			if relay != nil {
				relay(func() { c.engine.After(c.spec.StartAt, c.startNow) })
			} else {
				c.engine.After(c.spec.StartAt, c.startNow)
			}
		})
		return
	}
	c.engine.After(c.spec.StartAt, c.startNow)
}

func (c *Client) startNow() {
	c.sender.Start()
	if c.spec.Duration > 0 {
		c.stopEv = c.engine.After(c.spec.Duration, func() {
			c.stopEv = nil
			c.sender.Finish()
		})
	}
	if c.split || c.spec.NoIntervals {
		// Interval stats sample the receiver; with the receiver on another
		// shard (or with NoIntervals churn flows) the summary report is
		// the only statistic kept.
		return
	}
	c.intervalOpen = IntervalStat{Start: c.engine.Now()}
	c.engine.After(c.spec.Interval, c.tick)
}

func (c *Client) tick() {
	if c.done {
		return
	}
	c.closeInterval()
	c.engine.After(c.spec.Interval, c.tick)
}

func (c *Client) closeInterval() {
	now := c.engine.Now()
	recvd := c.receiver.TotalReceived
	st := c.intervalOpen
	st.End = now
	st.Bytes = recvd - c.lastBytes
	st.Retransmits = c.sender.Retransmits - c.lastRetrans
	if d := (st.End - st.Start).Seconds(); d > 0 {
		st.Bps = float64(st.Bytes) * 8 / d
	}
	c.intervals = append(c.intervals, st)
	c.lastBytes = recvd
	c.lastRetrans = c.sender.Retransmits
	c.intervalOpen = IntervalStat{Start: now}
}

func (c *Client) finish() {
	if c.stopEv != nil {
		c.stopEv.Cancel()
		c.stopEv = nil
	}
	if !c.split && !c.spec.NoIntervals {
		c.closeInterval()
	}
	c.done = true
	if c.OnComplete != nil {
		c.OnComplete(c.Report())
	}
	for _, f := range c.onDone {
		f()
	}
}

// Done reports whether the transfer completed.
func (c *Client) Done() bool { return c.done }

// TransferBytes returns the configured transfer size. The sharded
// testbed's per-shard samplers compare it against the local receiver's
// in-order count to detect completion without touching remote state.
func (c *Client) TransferBytes() uint64 { return c.spec.Bytes }

// Sender exposes the underlying TCP sender.
func (c *Client) Sender() *tcp.Sender { return c.sender }

// Receiver exposes the underlying TCP receiver.
func (c *Client) Receiver() *tcp.Receiver { return c.receiver }

// Report builds the summary (valid any time; final once Done).
func (c *Client) Report() Report {
	s := c.sender
	bytes := uint64(0)
	if !c.split {
		bytes = c.receiver.TotalReceived
	} else if s.Done() {
		// The remote receiver's counter can only be read after the run
		// quiesces; on completion the in-order transfer equals the spec.
		bytes = c.spec.Bytes
	}
	r := Report{
		Flow:        c.spec.Flow,
		CCA:         c.spec.CCA,
		MTU:         c.spec.Config.MTU,
		Bytes:       bytes,
		Start:       s.StartedAt,
		End:         s.CompletedAt,
		Retransmits: s.Retransmits,
		Timeouts:    s.Timeouts,
		DataSent:    s.DataSent,
		Intervals:   c.intervals,
	}
	if s.Done() {
		r.Seconds = s.FCT().Seconds()
		if r.Seconds > 0 {
			r.Bps = float64(r.Bytes) * 8 / r.Seconds
		}
	}
	return r
}
