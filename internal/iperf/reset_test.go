package iperf

import (
	"testing"

	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
)

func newResetFixture(t *testing.T) (*Client, *netsim.Dumbbell) {
	t.Helper()
	eng := sim.NewEngine()
	d := netsim.NewDumbbell(eng, netsim.DefaultDumbbell(1))
	c, err := NewClient(eng, Spec{Flow: 1, Bytes: 10_000, CCA: "cubic", NoIntervals: true},
		d.Senders[0], d.Receiver, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c, d
}

// TestClientResetNoAllocs pins the pooled flow-setup path: once a client
// exists, rebinding it to a new transfer — fresh flow ID, restarted
// congestion controller, re-attached host handlers, recycled scoreboard
// arrays — must not allocate. This is the churn driver's per-flow cost.
func TestClientResetNoAllocs(t *testing.T) {
	c, d := newResetFixture(t)
	flow := netsim.FlowID(2)
	reset := func() {
		if err := c.Reset(Spec{Flow: flow, Bytes: 10_000, CCA: "cubic", NoIntervals: true},
			d.Senders[0], d.Receiver, nil, nil); err != nil {
			t.Fatal(err)
		}
		flow++
	}
	reset() // warm: first reset may grow the host demux map
	if n := testing.AllocsPerRun(200, reset); n != 0 {
		t.Fatalf("Client.Reset allocates %.1f times per flow; pooled setup must be allocation-free", n)
	}
}

// TestClientResetRejections covers the pooled-reset refusal cases.
func TestClientResetRejections(t *testing.T) {
	c, d := newResetFixture(t)
	if err := c.Reset(Spec{Flow: 2, Bytes: 0, CCA: "cubic"}, d.Senders[0], d.Receiver, nil, nil); err == nil {
		t.Fatal("zero-byte reset succeeded")
	}
	if err := c.Reset(Spec{Flow: 2, Bytes: 1000, CCA: "no-such-cca"}, d.Senders[0], d.Receiver, nil, nil); err == nil {
		t.Fatal("unknown-CCA reset succeeded")
	}
	// A CCA change on reset builds a fresh controller and still works.
	if err := c.Reset(Spec{Flow: 2, Bytes: 1000, CCA: "reno"}, d.Senders[0], d.Receiver, nil, nil); err != nil {
		t.Fatalf("cross-CCA reset: %v", err)
	}
	if got := c.Sender().CC().Name(); got != "reno" {
		t.Fatalf("controller after cross-CCA reset: %q", got)
	}
}

// TestClientResetRunsFreshTransfer recycles one client through several
// complete transfers and checks each behaves like a fresh client: full
// bytes delivered, reports independent, completion callbacks rebound.
func TestClientResetRunsFreshTransfer(t *testing.T) {
	eng := sim.NewEngine()
	d := netsim.NewDumbbell(eng, netsim.DefaultDumbbell(1))
	c, err := NewClient(eng, Spec{Flow: 1, Bytes: 50_000, CCA: "cubic", NoIntervals: true},
		d.Senders[0], d.Receiver, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 5; rep++ {
		if rep > 0 {
			if !c.Quiescent() {
				t.Fatalf("rep %d: receiver not quiescent after completion", rep)
			}
			if err := c.Reset(Spec{Flow: netsim.FlowID(rep + 1), Bytes: 50_000, CCA: "cubic", NoIntervals: true},
				d.Senders[0], d.Receiver, nil, nil); err != nil {
				t.Fatalf("rep %d: %v", rep, err)
			}
		}
		done := false
		c.OnDone(func() { done = true })
		c.Start()
		eng.RunUntil(eng.Now() + 5*sim.Second)
		if !done || !c.Done() {
			t.Fatalf("rep %d: transfer did not complete", rep)
		}
		r := c.Report()
		if r.Bytes != 50_000 {
			t.Fatalf("rep %d: delivered %d bytes", rep, r.Bytes)
		}
		if r.Flow != netsim.FlowID(rep+1) {
			t.Fatalf("rep %d: report for flow %d", rep, r.Flow)
		}
	}
}
