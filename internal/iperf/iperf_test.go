package iperf

import (
	"strings"
	"testing"

	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
	"greenenvy/internal/tcp"
)

func newNet(t *testing.T) (*sim.Engine, *netsim.Dumbbell) {
	t.Helper()
	e := sim.NewEngine()
	return e, netsim.NewDumbbell(e, netsim.DefaultDumbbell(2))
}

func newClient(t *testing.T, e *sim.Engine, d *netsim.Dumbbell, spec Spec) *Client {
	t.Helper()
	if spec.Config.TxPathCost == 0 {
		spec.Config.TxPathCost = 1500 * sim.Nanosecond
	}
	c, err := NewClient(e, spec, d.Senders[0], d.Receiver, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClientTransfersAndReports(t *testing.T) {
	e, d := newNet(t)
	c := newClient(t, e, d, Spec{Flow: 1, Bytes: 100 << 20, CCA: "cubic"})
	var final Report
	c.OnComplete = func(r Report) { final = r }
	c.Start()
	e.RunUntil(30 * sim.Second)
	if !c.Done() {
		t.Fatal("transfer incomplete")
	}
	if final.Bytes != 100<<20 {
		t.Fatalf("final bytes = %d", final.Bytes)
	}
	if final.Bps < 5e9 {
		t.Fatalf("goodput = %.2f Gb/s, want several Gb/s", final.Bps/1e9)
	}
	if final.Seconds <= 0 {
		t.Fatal("zero duration")
	}
	if len(final.Intervals) == 0 {
		t.Fatal("no interval stats")
	}
	var sum uint64
	for _, iv := range final.Intervals {
		sum += iv.Bytes
	}
	if sum != final.Bytes {
		t.Fatalf("interval bytes sum %d != total %d", sum, final.Bytes)
	}
	if !strings.Contains(final.String(), "Gbits/sec") {
		t.Fatalf("report string = %q", final.String())
	}
}

func TestClientRateLimit(t *testing.T) {
	e, d := newNet(t)
	c := newClient(t, e, d, Spec{Flow: 1, Bytes: 50 << 20, CCA: "cubic", TargetBps: 1_000_000_000})
	c.Start()
	e.RunUntil(30 * sim.Second)
	r := c.Report()
	if r.Bps > 1.05e9 || r.Bps < 0.85e9 {
		t.Fatalf("rate-limited goodput = %.3f Gb/s, want ~1", r.Bps/1e9)
	}
}

func TestClientStartAt(t *testing.T) {
	e, d := newNet(t)
	c := newClient(t, e, d, Spec{Flow: 1, Bytes: 1 << 20, CCA: "reno", StartAt: 100 * sim.Millisecond})
	c.Start()
	e.RunUntil(10 * sim.Second)
	if c.Report().Start < 100*sim.Millisecond {
		t.Fatalf("started at %v, want >= 100ms", c.Report().Start)
	}
}

func TestClientChainStartAfter(t *testing.T) {
	e, d := newNet(t)
	c1 := newClient(t, e, d, Spec{Flow: 1, Bytes: 10 << 20, CCA: "cubic"})
	spec2 := Spec{Flow: 2, Bytes: 10 << 20, CCA: "cubic", Config: tcp.Config{TxPathCost: 1500}}
	c2, err := NewClient(e, spec2, d.Senders[1], d.Receiver, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	c2.StartAfter(c1)
	c1.Start()
	c2.Start()
	e.RunUntil(30 * sim.Second)
	if !c1.Done() || !c2.Done() {
		t.Fatal("chained transfers incomplete")
	}
	if c2.Report().Start < c1.Report().End {
		t.Fatalf("flow 2 started at %v before flow 1 ended at %v", c2.Report().Start, c1.Report().End)
	}
}

func TestClientOnDoneHooks(t *testing.T) {
	e, d := newNet(t)
	c := newClient(t, e, d, Spec{Flow: 1, Bytes: 1 << 20, CCA: "reno"})
	order := []int{}
	c.OnComplete = func(Report) { order = append(order, 1) }
	c.OnDone(func() { order = append(order, 2) })
	c.OnDone(func() { order = append(order, 3) })
	c.Start()
	e.RunUntil(10 * sim.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("hook order = %v", order)
	}
}

func TestClientValidation(t *testing.T) {
	e, d := newNet(t)
	if _, err := NewClient(e, Spec{Flow: 1, Bytes: 0, CCA: "cubic"}, d.Senders[0], d.Receiver, nil, nil); err == nil {
		t.Error("zero bytes accepted")
	}
	if _, err := NewClient(e, Spec{Flow: 1, Bytes: 1, CCA: "no-such-cca"}, d.Senders[0], d.Receiver, nil, nil); err == nil {
		t.Error("unknown CCA accepted")
	}
}

func TestConfigDefaultsFilled(t *testing.T) {
	e, d := newNet(t)
	c := newClient(t, e, d, Spec{Flow: 1, Bytes: 1 << 20, CCA: "dctcp"})
	c.Start()
	e.RunUntil(10 * sim.Second)
	r := c.Report()
	if r.MTU != 9000 {
		t.Fatalf("default MTU = %d, want 9000", r.MTU)
	}
}
