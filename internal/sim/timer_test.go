package sim

import "testing"

func TestTimerFires(t *testing.T) {
	e := NewEngine()
	var at Time
	tm := e.NewTimer(func() { at = e.Now() })
	tm.Reset(10 * Millisecond)
	if !tm.Armed() {
		t.Fatal("timer not armed after Reset")
	}
	if tm.When() != 10*Millisecond {
		t.Fatalf("When = %v, want 10ms", tm.When())
	}
	e.Run()
	if at != 10*Millisecond {
		t.Fatalf("fired at %v, want 10ms", at)
	}
	if tm.Armed() {
		t.Fatal("timer still armed after firing")
	}
}

func TestTimerResetRearmsInPlace(t *testing.T) {
	e := NewEngine()
	count := 0
	tm := e.NewTimer(func() { count++ })
	tm.Reset(10)
	tm.Reset(50) // push later
	tm.Reset(20) // pull earlier
	e.Run()
	if count != 1 {
		t.Fatalf("fired %d times, want 1 (Reset must rearm, not stack)", count)
	}
	if e.Now() != 20 {
		t.Fatalf("fired at %v, want 20 (last Reset wins)", e.Now())
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.NewTimer(func() { fired = true })
	tm.Reset(10)
	tm.Stop()
	if tm.Armed() {
		t.Fatal("timer armed after Stop")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after Stop, want 0 (Stop removes eagerly)", e.Pending())
	}
	e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	tm.Stop() // idempotent on a disarmed timer
}

func TestTimerRestartAfterFire(t *testing.T) {
	e := NewEngine()
	var fires []Time
	var tm *Timer
	tm = e.NewTimer(func() {
		fires = append(fires, e.Now())
		if len(fires) < 3 {
			tm.Reset(10) // periodic: rearm from inside the callback
		}
	})
	tm.Reset(10)
	e.Run()
	want := []Time{10, 20, 30}
	if len(fires) != 3 || fires[0] != want[0] || fires[1] != want[1] || fires[2] != want[2] {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
}

// Timer firings obey the engine's FIFO tie-break exactly like plain events:
// among equal deadlines, whoever armed first fires first.
func TestTimerFIFOWithEvents(t *testing.T) {
	e := NewEngine()
	var order []string
	tm := e.NewTimer(func() { order = append(order, "timer") })
	e.At(10, func() { order = append(order, "a") })
	tm.ResetAt(10)
	e.At(10, func() { order = append(order, "b") })
	e.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "timer" || order[2] != "b" {
		t.Fatalf("order = %v, want [a timer b]", order)
	}
}

// A Reset takes a fresh sequence number, so a rearmed timer moves behind
// events scheduled for the same instant after its original arming — the
// same ordering the old cancel-and-reschedule pattern produced.
func TestTimerResetTakesFreshSeq(t *testing.T) {
	e := NewEngine()
	var order []string
	tm := e.NewTimer(func() { order = append(order, "timer") })
	tm.ResetAt(10)
	e.At(10, func() { order = append(order, "event") })
	tm.ResetAt(10) // rearm: now logically behind the event
	e.Run()
	if len(order) != 2 || order[0] != "event" || order[1] != "timer" {
		t.Fatalf("order = %v, want [event timer]", order)
	}
}

func TestTimerAllocFree(t *testing.T) {
	e := NewEngine()
	tm := e.NewTimer(func() {})
	tm.Reset(10)
	e.Run()
	if avg := testing.AllocsPerRun(100, func() {
		tm.Reset(7)
		tm.Reset(3)
		tm.Stop()
	}); avg != 0 {
		t.Fatalf("Reset/Stop allocated %.1f objects/op, want 0", avg)
	}
}
