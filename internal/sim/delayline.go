package sim

import "fmt"

// DelayLine delivers items at scheduled times through a single standing
// event plus a reusable ring buffer, for producers whose due times are
// nondecreasing: a link's constant propagation delay, a switch's fixed
// pipeline latency, a serialized per-packet receive path. Such deliveries
// are FIFO by construction, so the engine's heap only ever needs to hold
// the head of the line — everything behind it waits in the ring. Scheduling
// a delivery is allocation-free once the ring has grown to the line's peak
// in-flight count.
//
// Determinism: each item captures its ordering rank (the engine's
// scheduling sequence number) at Schedule time, and the standing event is
// re-armed with that stored rank. Event interleaving is therefore
// bit-identical to scheduling one heap event per item, as the pre-pooling
// engine did.
type DelayLine[T any] struct {
	eng     *Engine
	deliver func(T)
	ev      Event
	// ring is a power-of-two circular buffer of pending deliveries.
	ring []delayItem[T]
	head int
	n    int
	// lastAt guards the nondecreasing-due-times contract.
	lastAt Time
}

type delayItem[T any] struct {
	item T
	at   Time
	seq  uint64
}

// NewDelayLine creates an empty delay line delivering through fn.
func NewDelayLine[T any](e *Engine, fn func(T)) *DelayLine[T] {
	if fn == nil {
		panic("sim: NewDelayLine with nil deliver callback")
	}
	d := &DelayLine[T]{eng: e, deliver: fn}
	d.ev.eng = e
	d.ev.idx = -1
	d.ev.band = bandLocal
	d.ev.pinned = true
	d.ev.fn = d.fire
	return d
}

// Len reports the number of deliveries in flight.
func (d *DelayLine[T]) Len() int { return d.n }

// Schedule enqueues item for delivery at absolute time at. Due times must
// be nondecreasing across calls while the line is non-empty; violating that
// (e.g. by mutating a link's propagation delay mid-run) panics rather than
// silently reordering deliveries.
//
//greenvet:hotpath
func (d *DelayLine[T]) Schedule(item T, at Time) {
	e := d.eng
	if at < e.now {
		panic(fmt.Sprintf("sim: delay line delivery at %v before now %v", at, e.now))
	}
	if d.n > 0 && at < d.lastAt {
		panic(fmt.Sprintf("sim: delay line due times went backwards (%v after %v)", at, d.lastAt))
	}
	d.lastAt = at
	seq := e.nextSeq()
	d.pushRing(delayItem[T]{item: item, at: at, seq: seq})
	if d.ev.idx < 0 {
		// Idle line (or a delivery callback scheduling into its own
		// line): arm the standing event for the current head.
		h := &d.ring[d.head]
		e.pushAt(&d.ev, h.at, h.seq)
	}
}

// fire delivers the head item and re-arms for the next one.
//
//greenvet:hotpath
func (d *DelayLine[T]) fire() {
	it := d.popRing()
	d.deliver(it.item)
	if d.ev.idx < 0 && d.n > 0 {
		h := &d.ring[d.head]
		d.eng.pushAt(&d.ev, h.at, h.seq)
	}
}

func (d *DelayLine[T]) pushRing(it delayItem[T]) {
	if d.n == len(d.ring) {
		d.grow()
	}
	d.ring[(d.head+d.n)&(len(d.ring)-1)] = it
	d.n++
}

func (d *DelayLine[T]) popRing() delayItem[T] {
	it := d.ring[d.head]
	var zero delayItem[T]
	d.ring[d.head] = zero // drop the item reference for the GC
	d.head = (d.head + 1) & (len(d.ring) - 1)
	d.n--
	return it
}

// grow doubles the ring (power-of-two capacity keeps indexing a mask).
func (d *DelayLine[T]) grow() {
	newCap := 2 * len(d.ring)
	if newCap == 0 {
		newCap = 16
	}
	next := make([]delayItem[T], newCap)
	for i := 0; i < d.n; i++ {
		next[i] = d.ring[(d.head+i)&(len(d.ring)-1)]
	}
	d.ring = next
	d.head = 0
}
