package sim

import "fmt"

// Timer is a rearmable one-shot timer that never allocates after creation:
// it owns a single pinned Event and a pre-bound callback, so arming,
// rearming and stopping touch only the engine's heap. It exists for the
// cancel-and-rearm-per-ACK timers (TCP's RTO, tail-loss probe, pacing and
// delayed-ACK timers) that would otherwise allocate a fresh Event and
// closure on nearly every packet and litter the queue with dead events.
//
// A Timer is not safe for concurrent use; like the Engine itself it belongs
// to a single simulation goroutine.
type Timer struct {
	eng *Engine
	ev  Event
}

// NewTimer creates a stopped timer that runs fn each time it fires. The
// callback is fixed for the timer's lifetime; per-firing state belongs in
// the fields fn reads.
func (e *Engine) NewTimer(fn func()) *Timer {
	if fn == nil {
		panic("sim: NewTimer with nil callback")
	}
	t := &Timer{eng: e}
	t.ev.eng = e
	t.ev.idx = -1
	t.ev.band = bandLocal
	t.ev.pinned = true
	t.ev.fn = fn
	return t
}

// Armed reports whether the timer is pending. A timer disarms itself when
// it fires.
func (t *Timer) Armed() bool { return t.ev.idx >= 0 }

// When returns the firing time when armed, or MaxTime when stopped.
func (t *Timer) When() Time {
	if !t.Armed() {
		return MaxTime
	}
	return t.ev.at
}

// ResetAt (re)arms the timer to fire at absolute time at. If the timer is
// already pending it is moved in place — one heap fix, no allocation, no
// dead event left behind. Rearming takes a fresh scheduling sequence
// number, so relative FIFO order against other events matches cancelling
// and scheduling anew.
//
//greenvet:hotpath
func (t *Timer) ResetAt(at Time) {
	e := t.eng
	if at < e.now {
		panic(fmt.Sprintf("sim: arming timer at %v before now %v", at, e.now))
	}
	t.ev.at = at
	t.ev.seq = e.nextSeq()
	if t.ev.idx >= 0 {
		e.fix(int(t.ev.idx))
		return
	}
	e.push(&t.ev)
}

// Reset (re)arms the timer to fire d nanoseconds from now.
func (t *Timer) Reset(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative timer delay %d", d))
	}
	t.ResetAt(t.eng.now + d)
}

// Stop disarms the timer. Unlike Event.Cancel it removes the event from the
// queue eagerly, so a stopped timer leaves nothing behind. Stopping a timer
// that is not armed is a no-op.
//
//greenvet:hotpath
func (t *Timer) Stop() {
	if t.ev.idx < 0 {
		return
	}
	if t.ev.dead {
		// Defensive: collect a lazy cancellation before eager removal.
		t.ev.dead = false
		t.eng.dead--
	}
	t.eng.removeAt(int(t.ev.idx))
}
