package sim

import "testing"

func TestDelayLineDeliversInOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	var when []Time
	d := NewDelayLine(e, func(v int) { got = append(got, v); when = append(when, e.Now()) })
	d.Schedule(1, 10)
	d.Schedule(2, 10) // equal due time is allowed
	d.Schedule(3, 25)
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("delivered %v, want [1 2 3]", got)
	}
	if when[0] != 10 || when[1] != 10 || when[2] != 25 {
		t.Fatalf("delivery times %v, want [10 10 25]", when)
	}
}

func TestDelayLineScheduleDuringDelivery(t *testing.T) {
	e := NewEngine()
	var got []int
	var d *DelayLine[int]
	d = NewDelayLine(e, func(v int) {
		got = append(got, v)
		if v < 3 {
			d.Schedule(v+1, e.Now()+5)
		}
	})
	d.Schedule(1, 10)
	e.Run()
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("delivered %v, want [1 2 3]", got)
	}
	if e.Now() != 20 {
		t.Fatalf("finished at %v, want 20", e.Now())
	}
}

func TestDelayLineNonmonotonicPanics(t *testing.T) {
	e := NewEngine()
	d := NewDelayLine(e, func(int) {})
	d.Schedule(1, 20)
	defer func() {
		if recover() == nil {
			t.Error("nonmonotonic Schedule did not panic")
		}
	}()
	d.Schedule(2, 10)
}

// Deliveries interleave with ordinary events by (time, scheduling order),
// exactly as if each item had its own heap event — the property the sweep
// golden digest depends on.
func TestDelayLineFIFOWithEvents(t *testing.T) {
	e := NewEngine()
	var order []string
	d := NewDelayLine(e, func(s string) { order = append(order, s) })
	e.At(10, func() { order = append(order, "a") })
	d.Schedule("x", 10)
	e.At(10, func() { order = append(order, "b") })
	d.Schedule("y", 10)
	e.Run()
	want := []string{"a", "x", "b", "y"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDelayLineSteadyStateAllocFree(t *testing.T) {
	e := NewEngine()
	n := 0
	d := NewDelayLine(e, func(int) { n++ })
	// Warm the ring past its steady-state occupancy.
	for i := 0; i < 64; i++ {
		d.Schedule(i, e.Now()+Time(i))
	}
	e.Run()
	if avg := testing.AllocsPerRun(100, func() {
		d.Schedule(0, e.Now()+10)
		e.Run()
	}); avg != 0 {
		t.Fatalf("DelayLine steady state allocated %.1f objects/op, want 0", avg)
	}
	if n == 0 {
		t.Fatal("no deliveries")
	}
}
