package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (xorshift64*). Every stochastic component of the simulator draws from an
// RNG derived from the run seed, so repeated runs with the same seed produce
// byte-identical results. We avoid math/rand so that the stream is stable
// across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Split derives an independent generator from r, keyed by id. It is used to
// give each host/flow its own stream so adding a component does not perturb
// the draws seen by others.
func (r *RNG) Split(id uint64) *RNG {
	// SplitMix64 over (state ^ id) gives well-distributed child seeds.
	return NewRNG(Mix64(r.state ^ (id+1)*0xBF58476D1CE4E5B9))
}

// Mix64 is the SplitMix64 finalizer: a cheap bijective mixer that spreads
// any change in the input over all 64 output bits. Seed derivation (Split)
// and the deterministic ECMP flow hash in internal/netsim are built on it,
// so hash-dependent results stay byte-identical across Go releases and
// worker counts.
//
//greenvet:hotpath
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Jitter returns a duration uniform in [0, max).
func (r *RNG) Jitter(max Duration) Duration {
	if max <= 0 {
		return 0
	}
	return Duration(r.Uint64() % uint64(max))
}

// Normal returns a draw from a normal distribution with the given mean and
// standard deviation, using the Marsaglia polar method.
func (r *RNG) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			m := math.Sqrt(-2 * math.Log(s) / s)
			return mean + stddev*u*m
		}
	}
}
