// Package sim provides the discrete-event simulation engine that underpins
// the greenenvy testbed: a virtual clock, an event queue with deterministic
// tie-breaking, and seeded randomness helpers.
//
// Time is measured in integer nanoseconds from the start of the simulation.
// All components in internal/netsim, internal/tcp and internal/energy are
// driven from a single Engine, so a run is fully deterministic given its
// seed: no wall-clock time ever enters the simulation.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a simulated timestamp in nanoseconds since the start of the run.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration = Time

// Common durations, mirroring the time package for readability.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable simulated time. It is used as an
// "infinitely far in the future" sentinel for timers that are not armed.
const MaxTime Time = math.MaxInt64

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the time in seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// Event is a unit of scheduled work. Events are ordered by time; events at
// the same time fire in the order they were scheduled (FIFO), which keeps
// runs deterministic.
type Event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
	idx  int // index in the heap, -1 once popped or cancelled
}

// Time returns the simulated time at which the event fires (or was to fire).
func (e *Event) Time() Time { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op. Cancel is O(1): the event is
// lazily marked dead and stays in the queue until its time comes, when the
// engine pops and discards it without running fn. Until then the event still
// counts toward Pending (see Pending's doc) and retains its fn closure.
func (e *Event) Cancel() {
	e.dead = true
}

// eventHeap implements heap.Interface ordered by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is the discrete-event scheduler. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64
	// Stop aborts Run when set; checked between events.
	stopped bool
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events still queued (including cancelled
// events that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.events) }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn to run at absolute time t. Scheduling in the past (t less
// than Now) panics: it would make the clock run backwards, which is always a
// bug in the caller.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// step executes the next event. It reports false when the queue is empty.
func (e *Engine) step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.dead {
			continue
		}
		if ev.at < e.now {
			panic("sim: event heap produced an event in the past")
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called. It returns
// the time of the last executed event.
func (e *Engine) Run() Time {
	e.stopped = false
	for !e.stopped && e.step() {
	}
	return e.now
}

// RunUntil executes events with firing time <= deadline, then advances the
// clock to the deadline if it is beyond the last event executed.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for !e.stopped {
		if len(e.events) == 0 {
			break
		}
		// Peek: the heap root is the earliest event.
		if e.events[0].at > deadline {
			break
		}
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// RunFor executes events for d nanoseconds of simulated time from now.
func (e *Engine) RunFor(d Duration) Time { return e.RunUntil(e.now + d) }
