// Package sim provides the discrete-event simulation engine that underpins
// the greenenvy testbed: a virtual clock, an event queue with deterministic
// tie-breaking, seeded randomness helpers, and allocation-free scheduling
// primitives (rearmable Timers and FIFO DelayLines) for hot paths.
//
// Time is measured in integer nanoseconds from the start of the simulation.
// All components in internal/netsim, internal/tcp and internal/energy are
// driven from a single Engine, so a run is fully deterministic given its
// seed: no wall-clock time ever enters the simulation.
//
// The event queue is an inlined 4-ary min-heap over pooled Event structs
// rather than container/heap (whose Push/Pop box every element through
// `any`): scheduling on the steady-state hot path performs zero heap
// allocations. Fired and cancelled events are recycled through a free list,
// and lazily-cancelled events are compacted out of the queue when they
// outnumber live ones.
package sim

import (
	"fmt"
	"math"
)

// Time is a simulated timestamp in nanoseconds since the start of the run.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration = Time

// Common durations, mirroring the time package for readability.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable simulated time. It is used as an
// "infinitely far in the future" sentinel for timers that are not armed.
const MaxTime Time = math.MaxInt64

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the time in seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// Event is a unit of scheduled work. Events are ordered by time; events at
// the same time fire in the order they were scheduled (FIFO), which keeps
// runs deterministic.
//
// Ownership: an Event returned by At/After belongs to the caller only while
// it is pending. Once it fires or a cancellation is collected, the engine
// recycles the struct for a future At/After, so callers must not retain
// Event pointers past their firing time. Code that needs to cancel and
// rearm long-lived timers should use Timer, which owns its Event forever.
type Event struct {
	at  Time
	seq uint64
	fn  func()
	eng *Engine
	// idx is the position in the engine's heap array, -1 when not queued.
	idx int32
	// band is the ordering tier among same-time events: bandPortal events
	// (cross-shard conduit arrivals) fire before bandLocal ones, giving the
	// sharded engine a fixed, worker-count-independent tie-break between a
	// shard's own events and handoffs from its peers. Within a band, seq
	// orders as before.
	band uint8
	// dead marks a lazily-cancelled event awaiting collection.
	dead bool
	// pinned events are owned by a Timer or DelayLine and are never
	// returned to the engine's free list.
	pinned bool
}

// Event ordering bands. Portal events carry sequence numbers from their
// conduit's own deterministic counter, not the engine's, so the two spaces
// must never be compared — the band keeps them apart.
const (
	bandPortal uint8 = iota
	bandLocal
)

// Time returns the simulated time at which the event fires (or was to fire).
func (e *Event) Time() Time { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op (but see the ownership note on
// Event: do not retain pointers past firing). Cancel is O(1): the event is
// lazily marked dead and stays in the queue until its time comes — or until
// dead events outnumber live ones, when the engine compacts them out in one
// pass. Dead events do not count toward Pending.
//
//greenvet:hotpath
func (e *Event) Cancel() {
	if e.idx < 0 || e.dead {
		return
	}
	e.dead = true
	e.eng.dead++
	e.eng.maybeCompact()
}

// Engine is the discrete-event scheduler. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now Time
	seq uint64
	// events is a 4-ary min-heap on (at, seq). A 4-ary layout halves the
	// tree depth of a binary heap and keeps children in one cache line,
	// which measurably speeds up the sift loops that dominate scheduling.
	events []*Event
	// dead counts cancelled events still occupying heap slots.
	dead int
	// free recycles fired/cancelled Event structs.
	free  []*Event
	fired uint64
	// Stop aborts Run when set; checked between events.
	stopped bool
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of live events still queued. Cancelled events
// awaiting collection are not counted.
func (e *Engine) Pending() int { return len(e.events) - e.dead }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// nextSeq returns the next scheduling sequence number. The (time, seq)
// pair totally orders events, making ties deterministic.
func (e *Engine) nextSeq() uint64 {
	s := e.seq
	e.seq++
	return s
}

// alloc takes an Event from the free list, or allocates one.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &Event{eng: e, idx: -1} //greenvet:allow hotpathalloc pool refill: one allocation per peak concurrent event, then recycled forever
}

// release returns a fired or collected event to the free list, dropping its
// closure so the engine does not pin caller memory.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	ev.dead = false
	e.free = append(e.free, ev) //greenvet:allow hotpathalloc free list grows to the peak live-event count, then growth stops
}

// At schedules fn to run at absolute time t. Scheduling in the past (t less
// than Now) panics: it would make the clock run backwards, which is always a
// bug in the caller.
//
//greenvet:hotpath
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.at = t
	ev.seq = e.nextSeq()
	ev.band = bandLocal
	ev.fn = fn
	e.push(ev)
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// step executes the next live event. It reports false when the queue is
// exhausted.
//
//greenvet:hotpath
func (e *Engine) step() bool {
	for len(e.events) > 0 {
		ev := e.popMin()
		if ev.dead {
			e.dead--
			if !ev.pinned {
				e.release(ev)
			} else {
				ev.dead = false
			}
			continue
		}
		if ev.at < e.now {
			panic("sim: event heap produced an event in the past")
		}
		e.now = ev.at
		e.fired++
		fn := ev.fn
		// Recycle before running fn so self-rescheduling callbacks (ticks,
		// retransmission chains) reuse the very Event that fired.
		if !ev.pinned {
			e.release(ev)
		}
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called. It returns
// the time of the last executed event.
func (e *Engine) Run() Time {
	e.stopped = false
	for !e.stopped && e.step() {
	}
	return e.now
}

// RunUntil executes events with firing time <= deadline, then advances the
// clock to the deadline if it is beyond the last event executed.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for !e.stopped {
		if len(e.events) == 0 {
			break
		}
		// Peek: the heap root is the earliest event. A dead root is fine:
		// every event, dead or live, fires no earlier than the root.
		if e.events[0].at > deadline {
			break
		}
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// RunFor executes events for d nanoseconds of simulated time from now.
func (e *Engine) RunFor(d Duration) Time { return e.RunUntil(e.now + d) }

// peekLive discards dead events at the heap root and returns the earliest
// live event without executing it, or nil when the queue is empty.
func (e *Engine) peekLive() *Event {
	for len(e.events) > 0 {
		root := e.events[0]
		if !root.dead {
			return root
		}
		e.popMin()
		e.dead--
		if root.pinned {
			root.dead = false
		} else {
			e.release(root)
		}
	}
	return nil
}

// RunBelow executes events with firing time strictly below limit and
// returns the firing time of the earliest remaining live event (MaxTime
// when the queue is empty). Unlike RunUntil it neither advances the clock
// to the limit nor executes an event at it: the sharded scheduler calls it
// repeatedly as the shard's lower-bound timestamp grows, and the clock must
// never pass a point that a cross-shard arrival could still precede. The
// returned time is exact (dead events are collected, not reported), so the
// caller can publish it as a bound to downstream shards.
//
//greenvet:hotpath
func (e *Engine) RunBelow(limit Time) Time {
	e.stopped = false
	for !e.stopped {
		root := e.peekLive()
		if root == nil {
			return MaxTime
		}
		if root.at >= limit {
			return root.at
		}
		e.step()
	}
	if root := e.peekLive(); root != nil {
		return root.at
	}
	return MaxTime
}

// --- 4-ary heap over (at, seq) ---

// before reports whether a fires strictly before b: by time, then band
// (portal arrivals ahead of local events), then sequence number within the
// band.
func before(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.band != b.band {
		return a.band < b.band
	}
	return a.seq < b.seq
}

// push inserts ev (whose at/seq are already set) into the heap.
func (e *Engine) push(ev *Event) {
	ev.idx = int32(len(e.events))
	e.events = append(e.events, ev) //greenvet:allow hotpathalloc heap storage is amortized to the peak pending-event count
	e.siftUp(len(e.events) - 1)
}

// pushAt inserts a pinned event with an explicit (at, seq), used by
// DelayLine to re-insert deferred deliveries with the ordering rank they
// were assigned when originally scheduled.
func (e *Engine) pushAt(ev *Event, at Time, seq uint64) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev.at = at
	ev.seq = seq
	e.push(ev)
}

// popMin removes and returns the earliest event.
func (e *Engine) popMin() *Event {
	h := e.events
	root := h[0]
	n := len(h) - 1
	if n > 0 {
		h[0] = h[n]
		h[0].idx = 0
	}
	h[n] = nil
	e.events = h[:n]
	root.idx = -1
	if n > 1 {
		e.siftDown(0)
	}
	return root
}

// removeAt deletes the event at heap index i (Timer.Stop's eager removal).
func (e *Engine) removeAt(i int) {
	h := e.events
	ev := h[i]
	n := len(h) - 1
	if i != n {
		h[i] = h[n]
		h[i].idx = int32(i)
	}
	h[n] = nil
	e.events = h[:n]
	ev.idx = -1
	if i < n {
		e.fix(i)
	}
}

// fix restores the heap property around index i after its event's ordering
// key changed in place (Timer.Reset) or a leaf was swapped in (removeAt).
func (e *Engine) fix(i int) {
	ev := e.events[i]
	e.siftUp(i)
	if int(ev.idx) == i {
		e.siftDown(i)
	}
}

func (e *Engine) siftUp(i int) {
	h := e.events
	ev := h[i]
	for i > 0 {
		parent := (i - 1) >> 2
		p := h[parent]
		if !before(ev, p) {
			break
		}
		h[i] = p
		p.idx = int32(i)
		i = parent
	}
	h[i] = ev
	ev.idx = int32(i)
}

func (e *Engine) siftDown(i int) {
	h := e.events
	n := len(h)
	ev := h[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if before(h[c], h[best]) {
				best = c
			}
		}
		if !before(h[best], ev) {
			break
		}
		h[i] = h[best]
		h[i].idx = int32(i)
		i = best
	}
	h[i] = ev
	ev.idx = int32(i)
}

// maybeCompact rebuilds the heap without its dead events once they hold the
// majority of the slots. Timers that cancel-and-rearm on every ACK would
// otherwise inflate every sift with corpses.
func (e *Engine) maybeCompact() {
	if e.dead*2 <= len(e.events) || e.dead < 64 {
		return
	}
	h := e.events
	live := h[:0]
	for _, ev := range h {
		if ev.dead {
			ev.idx = -1
			if ev.pinned {
				ev.dead = false
			} else {
				e.release(ev)
			}
			continue
		}
		ev.idx = int32(len(live))
		live = append(live, ev) //greenvet:allow hotpathalloc appends into h[:0]: reuses the existing backing array, never grows
	}
	for i := len(live); i < len(h); i++ {
		h[i] = nil
	}
	e.events = live
	e.dead = 0
	// Heapify: sift interior nodes down, deepest first. Ordering of pops
	// is unaffected — (at, seq) is a total order, so any valid heap
	// arrangement yields the same pop sequence.
	for i := (len(live) - 2) >> 2; i >= 0; i-- {
		e.siftDown(i)
	}
}
