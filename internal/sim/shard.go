package sim

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// This file implements conservative-synchronization parallelism in the
// Chandy–Misra–Bryant tradition: a ShardGroup runs one Engine per
// partition, partitions exchange timestamped items over Conduits whose
// fixed minimum delay is the lookahead guarantee, and each shard only
// executes events strictly below its lower-bound timestamp (LBTS) — the
// earliest instant at which a not-yet-seen cross-shard arrival could still
// occur. There are no barriers: shards advance independently in batches,
// and a central fast-forward pass (a null-message economy run by whichever
// worker goes idle last) raises LBTS floors when every shard is blocked on
// its neighbours.
//
// Determinism contract: for a fixed partition assignment, results are
// byte-identical for any worker count. Each shard's execution order is the
// strict total order (time, band, seq); conduit arrivals carry
// per-conduit sequence numbers assigned in send order (which is itself
// deterministic, since each conduit has a single source shard), so heap
// keys never depend on scheduling. Conservative synchronization guarantees
// an arrival is inserted before the destination clock reaches it; batching
// only changes *when* an insertion happens, never where it sorts.

// shard run states, guarded by ShardGroup.mu.
const (
	shardRunnable = iota
	shardRunning
	shardParked
)

// unreachable is the sentinel distance for shard pairs with no conduit
// path. Far below MaxTime so Floyd–Warshall sums cannot overflow.
const unreachable = MaxTime / 4

// ShardGroup owns a set of partition engines and the scheduler that runs
// them to a common deadline. Create one with NewShardGroup, connect the
// partitions with NewConduit, seed each Engine with initial events, then
// call Run exactly once.
type ShardGroup struct {
	shards   []*Shard
	conduits []conduitLink

	mu      sync.Mutex
	cond    *sync.Cond
	runq    []*Shard
	running int
	done    bool
	failure *shardPanic
	started bool

	deadline Time
	// dist[u][s] is the minimum cumulative conduit delay over any path from
	// shard u to shard s (unreachable when there is none; dist[s][s] is the
	// shortest cycle through s). Computed once at Run from the conduit
	// graph; the fast-forward pass uses it to bound how soon anything shard
	// u does next could reach shard s.
	dist [][]Time
}

type shardPanic struct {
	val   any
	stack []byte
}

// Shard is one partition: an Engine plus its scheduler bookkeeping.
type Shard struct {
	id  int
	eng *Engine
	g   *ShardGroup

	in, out []conduitLink
	// wakeBuf is reused across batches to gather wake candidates without
	// holding the scheduler lock while publishing bounds.
	wakeBuf []wakeCand

	// Scheduler fields, guarded by g.mu.
	state int
	// gen is bumped on every wake signal; genSeen snapshots it when a batch
	// claims the shard. A parked shard always has gen == genSeen, which is
	// the proof obligation for termination: anything sent to it after its
	// last drain would have bumped gen and requeued it.
	gen, genSeen uint64
	// next is the earliest pending local event after the last batch
	// (MaxTime when the queue is empty).
	next Time
	// lbtsFloor is a scheduler-proven lower bound on all future arrivals,
	// from the fast-forward pass. It can exceed every conduit bound.
	lbtsFloor Time
}

// conduitLink is the type-erased view of a Conduit the scheduler uses.
type conduitLink interface {
	src() int
	dst() int
	lookahead() Duration
	drain() Time
	publish(b Time) (msgs, advanced bool)
}

// wakeCand is a shard that may need waking after a batch published bounds:
// either undrained messages await it (msgs), or a conduit bound advanced
// to b and might unblock it.
type wakeCand struct {
	s     *Shard
	bound Time
	msgs  bool
}

// NewShardGroup creates n empty, connected-by-nothing partition engines.
func NewShardGroup(n int) *ShardGroup {
	if n < 1 {
		panic(fmt.Sprintf("sim: NewShardGroup with %d shards", n))
	}
	g := &ShardGroup{}
	g.cond = sync.NewCond(&g.mu)
	for i := 0; i < n; i++ {
		g.shards = append(g.shards, &Shard{id: i, eng: NewEngine(), g: g})
	}
	return g
}

// Shards reports the number of partitions.
func (g *ShardGroup) Shards() int { return len(g.shards) }

// Engine returns partition i's engine. Seeding it with events is only safe
// before Run or from within its own shard's callbacks.
func (g *ShardGroup) Engine(i int) *Engine { return g.shards[i].eng }

// Fired reports the total number of events executed across all partitions.
// Only meaningful before Run or after it returns.
func (g *ShardGroup) Fired() uint64 {
	var n uint64
	for _, s := range g.shards {
		n += s.eng.Fired()
	}
	return n
}

// Pending reports the total number of live queued events across all
// partitions. Only meaningful before Run or after it returns.
func (g *ShardGroup) Pending() int {
	n := 0
	for _, s := range g.shards {
		n += s.eng.Pending()
	}
	return n
}

// Run executes all partitions up to and including deadline on up to
// workers OS threads (clamped to [1, shards]) and returns when every
// partition has quiesced: no local event at or below the deadline remains
// anywhere. Results are byte-identical for any workers value. A panic on
// any shard stops the group and is re-raised here. Run may be called once
// per group.
func (g *ShardGroup) Run(deadline Time, workers int) {
	g.mu.Lock()
	if g.started {
		g.mu.Unlock()
		panic("sim: ShardGroup.Run called twice")
	}
	g.started = true
	g.deadline = deadline
	g.computeDist()
	for _, s := range g.shards {
		s.state = shardRunnable
		s.gen, s.genSeen = 0, 0
		s.next = 0
		s.lbtsFloor = 0
		g.runq = append(g.runq, s)
	}
	g.mu.Unlock()

	if workers < 1 {
		workers = 1
	}
	if workers > len(g.shards) {
		workers = len(g.shards)
	}
	if workers == 1 {
		g.work()
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				g.work()
			}()
		}
		wg.Wait()
	}
	if g.failure != nil {
		panic(fmt.Sprintf("sim: shard worker panicked: %v\n%s", g.failure.val, g.failure.stack))
	}
}

// work is one worker's scheduling loop: claim a runnable shard, run a
// batch, park or requeue it, and when the whole group is idle either
// fast-forward the LBTS floors or declare the run finished.
func (g *ShardGroup) work() {
	g.mu.Lock()
	for {
		if g.done || g.failure != nil {
			g.cond.Broadcast()
			g.mu.Unlock()
			return
		}
		if len(g.runq) == 0 {
			if g.running == 0 {
				if !g.fastForwardLocked() {
					g.done = true
				}
				continue
			}
			g.cond.Wait()
			continue
		}
		s := g.runq[len(g.runq)-1]
		g.runq = g.runq[:len(g.runq)-1]
		s.state = shardRunning
		s.genSeen = s.gen
		floor := s.lbtsFloor
		g.running++
		g.mu.Unlock()

		next, ok := g.runBatch(s, floor)

		g.mu.Lock()
		g.running--
		if !ok {
			continue // runBatch recorded the panic; loop top broadcasts
		}
		s.next = next
		if s.gen != s.genSeen {
			// A peer published to us mid-batch; its messages are safely in
			// the future (at or past our LBTS) but we owe them a drain.
			s.state = shardRunnable
			g.runq = append(g.runq, s)
		} else {
			s.state = shardParked
		}
	}
}

// runBatch drains shard s's inbound conduits, executes every local event
// strictly below the resulting LBTS (capped just past the deadline), and
// publishes fresh bounds to the outbound conduits. It returns the earliest
// remaining local event time. Panics from event callbacks are captured for
// Run to re-raise on the caller's goroutine.
func (g *ShardGroup) runBatch(s *Shard, floor Time) (next Time, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			g.mu.Lock()
			if g.failure == nil {
				g.failure = &shardPanic{val: r, stack: debug.Stack()}
			}
			g.cond.Broadcast()
			g.mu.Unlock()
			next, ok = 0, false
		}
	}()

	lbts := MaxTime
	for _, c := range s.in {
		if b := c.drain(); b < lbts {
			lbts = b
		}
	}
	if floor > lbts {
		lbts = floor
	}
	limit := lbts
	if g.deadline < MaxTime && g.deadline+1 < limit {
		// Events past the deadline never run, so there is no need to wait
		// for bounds covering them; an event *at* the deadline must run,
		// hence the +1 on the strict limit.
		limit = g.deadline + 1
	}
	next = s.eng.RunBelow(limit)

	// Publish per-conduit bounds: nothing this shard does from here on can
	// reach conduit c's destination before min(next, lbts) + lookahead —
	// the earliest instant we could still execute or newly learn about,
	// plus the conduit's floor delay.
	base := next
	if lbts < base {
		base = lbts
	}
	wakes := s.wakeBuf[:0]
	for _, c := range s.out {
		b := MaxTime
		if d := Time(c.lookahead()); base < MaxTime-d {
			b = base + d
		}
		if msgs, advanced := c.publish(b); msgs || advanced {
			wakes = append(wakes, wakeCand{s: g.shards[c.dst()], bound: b, msgs: msgs})
		}
	}
	s.wakeBuf = wakes
	if len(wakes) > 0 {
		g.mu.Lock()
		for _, w := range wakes {
			if w.msgs {
				// Messages owe the destination a drain, whatever its state.
				g.wakeLocked(w.s)
			} else if w.s.state == shardParked && w.bound > w.s.next {
				// A bare bound advance matters only if it could let a parked
				// shard execute its next event. Waking unconditionally would
				// let two idle shards ratchet each other's bounds one
				// lookahead at a time across any event gap; below-next
				// advances are left for the fast-forward pass instead. (An
				// advance that lands while the destination is mid-batch can
				// leave it parked-but-executable; the fast-forward pass
				// always wakes the globally earliest such shard, so progress
				// never stalls.)
				g.wakeLocked(w.s)
			}
		}
		g.mu.Unlock()
	}
	return next, true
}

// wakeLocked signals shard s that a peer advanced a bound or sent it
// messages. Callers hold g.mu.
func (g *ShardGroup) wakeLocked(s *Shard) {
	s.gen++
	if s.state == shardParked {
		s.state = shardRunnable
		g.runq = append(g.runq, s)
		g.cond.Signal()
	}
}

// fastForwardLocked is the null-message economy: called with every shard
// parked and no worker running, it centrally recomputes each shard's LBTS
// floor as min over peers u of (u.next + dist[u][s]) — no event anywhere
// can cause an arrival at s earlier than that — and wakes the shards whose
// floor now exceeds their next event. It reports whether anything was
// woken; when nothing was, every shard's next event is past the deadline
// and the run is complete. Without this pass, idle topologies would creep
// toward the next event one lookahead at a time through O(gap/lookahead)
// bound publications.
func (g *ShardGroup) fastForwardLocked() bool {
	woke := false
	quiescent := true
	for si, s := range g.shards {
		if s.next > g.deadline {
			continue // nothing left to run; floors are irrelevant
		}
		quiescent = false
		floor := MaxTime
		for ui, u := range g.shards {
			if u.next > g.deadline {
				// Capped or empty shards execute nothing more, so they
				// send nothing more (and u.next may be MaxTime).
				continue
			}
			if d := g.dist[ui][si]; d < unreachable && u.next+d < floor {
				floor = u.next + d
			}
		}
		if floor > s.lbtsFloor {
			s.lbtsFloor = floor
		}
		if floor > s.next {
			g.wakeLocked(s)
			woke = true
		}
	}
	if !woke && !quiescent {
		// Cannot happen: the globally earliest non-quiescent shard always
		// receives a floor of at least next + lookahead (or MaxTime when
		// nothing can reach it). Guard against a silent livelock anyway.
		panic("sim: shard scheduler stalled with pending events")
	}
	return woke
}

// computeDist runs Floyd–Warshall over the conduit graph. Callers hold
// g.mu (Run's setup).
func (g *ShardGroup) computeDist() {
	n := len(g.shards)
	g.dist = make([][]Time, n)
	for i := range g.dist {
		g.dist[i] = make([]Time, n)
		for j := range g.dist[i] {
			g.dist[i][j] = unreachable
		}
	}
	for _, c := range g.conduits {
		if d := Time(c.lookahead()); d < g.dist[c.src()][c.dst()] {
			g.dist[c.src()][c.dst()] = d
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := g.dist[i][k]
			if dik >= unreachable {
				continue
			}
			for j := 0; j < n; j++ {
				if dkj := g.dist[k][j]; dkj < unreachable && dik+dkj < g.dist[i][j] {
					g.dist[i][j] = dik + dkj
				}
			}
		}
	}
}

// Conduit is a one-way, single-source inter-shard channel delivering items
// of type T at explicit future times. The fixed delay is both the minimum
// source-to-destination latency and the lookahead the scheduler leans on:
// Send panics if an item is scheduled below the conduit's published bound.
// Per-conduit due times must be nondecreasing (cross-shard links serialize
// their traffic, so this holds by construction, as with DelayLine).
//
// The source side (Send) is called from the source shard's event
// callbacks; the receive side (drain/fire) runs only on the goroutine
// currently executing the destination shard. The two meet at a small
// mutex-guarded double buffer.
type Conduit[T any] struct {
	g            *ShardGroup
	srcID, dstID int
	delay        Duration
	deliver      func(T)
	// ordinal is the conduit's creation index; together with a local
	// message counter it forms arrival sequence numbers that depend only
	// on construction order and traffic, never on worker scheduling.
	ordinal uint64

	// Source-to-destination handoff, guarded by mu.
	mu       sync.Mutex
	buf      []conduitMsg[T]
	bound    Time
	needWake bool

	// Receive side: destination-shard-local, no locking.
	srcEng, dstEng *Engine
	spare          []conduitMsg[T]
	ring           []conduitItem[T]
	head, n        int
	msgIdx         uint64
	lastAt         Time
	ev             Event
}

type conduitMsg[T any] struct {
	item T
	at   Time
}

type conduitItem[T any] struct {
	item T
	at   Time
	seq  uint64
}

// NewConduit connects shard src to shard dst with minimum latency delay,
// delivering items through fn on the destination shard. Conduits must be
// created before ShardGroup.Run, and creation order is part of the
// determinism contract (it fixes arrival tie-break order), so build them
// in a fixed topology-derived order. The delay must be positive: a
// zero-lookahead cycle cannot make conservative progress.
func NewConduit[T any](g *ShardGroup, src, dst int, delay Duration, fn func(T)) *Conduit[T] {
	if delay <= 0 {
		panic(fmt.Sprintf("sim: conduit with non-positive delay %d has no lookahead", delay))
	}
	if src == dst {
		panic("sim: conduit connecting a shard to itself")
	}
	if fn == nil {
		panic("sim: NewConduit with nil deliver callback")
	}
	g.mu.Lock()
	if g.started {
		g.mu.Unlock()
		panic("sim: NewConduit after ShardGroup.Run")
	}
	c := &Conduit[T]{
		g:       g,
		srcID:   src,
		dstID:   dst,
		delay:   delay,
		deliver: fn,
		ordinal: uint64(len(g.conduits)),
		// The earliest send happens at source time ≥ 0, so nothing can
		// arrive before delay; start the bound there.
		bound:  Time(delay),
		srcEng: g.shards[src].eng,
		dstEng: g.shards[dst].eng,
	}
	c.ev.eng = c.dstEng
	c.ev.idx = -1
	c.ev.band = bandPortal
	c.ev.pinned = true
	c.ev.fn = c.fire
	g.conduits = append(g.conduits, c)
	g.shards[src].out = append(g.shards[src].out, c)
	g.shards[dst].in = append(g.shards[dst].in, c)
	g.mu.Unlock()
	return c
}

func (c *Conduit[T]) src() int            { return c.srcID }
func (c *Conduit[T]) dst() int            { return c.dstID }
func (c *Conduit[T]) lookahead() Duration { return c.delay }

// Delay returns the conduit's lookahead: the minimum source-to-destination
// latency promised at construction. Callers binding a conduit behind a
// physical link can check it against the link's propagation delay.
func (c *Conduit[T]) Delay() Duration { return c.delay }

// Send hands item to the destination shard for delivery at absolute time
// at. Must be called from the source shard's event callbacks (that is what
// makes send order, and thus arrival order, deterministic). at must respect
// the conduit's lookahead promise — at least now + delay — and per-conduit
// due times must be nondecreasing.
//
//greenvet:hotpath
func (c *Conduit[T]) Send(at Time, item T) {
	c.mu.Lock()
	if at < c.bound {
		c.mu.Unlock()
		panic(fmt.Sprintf("sim: conduit send at %v violates published bound %v (lookahead %v)", at, c.bound, c.delay))
	}
	c.buf = append(c.buf, conduitMsg[T]{item: item, at: at}) //greenvet:allow hotpathalloc double buffer is recycled every drain, so growth settles at the conduit's peak in-flight count
	c.needWake = true
	c.mu.Unlock()
}

// SendAfterDelay delivers item at the source shard's current time plus the
// conduit delay — the earliest instant the lookahead permits.
func (c *Conduit[T]) SendAfterDelay(item T) {
	c.Send(c.srcEng.Now()+Time(c.delay), item)
}

// drain moves every buffered message into the destination engine's event
// queue and returns the source's published bound as of the swap. Runs on
// the goroutine executing the destination shard.
func (c *Conduit[T]) drain() Time {
	c.mu.Lock()
	msgs := c.buf
	c.buf = c.spare[:0]
	c.needWake = false
	b := c.bound
	c.mu.Unlock()

	var zero T
	for i := range msgs {
		m := &msgs[i]
		if c.msgIdx > 0 && m.at < c.lastAt {
			panic(fmt.Sprintf("sim: conduit due times went backwards (%v after %v)", m.at, c.lastAt))
		}
		c.lastAt = m.at
		// Arrival rank: conduit ordinal then per-conduit message index.
		// Both are independent of worker count — the k-th message ever
		// sent through this conduit always lands here as index k, because
		// drains empty the buffer in send order.
		seq := c.ordinal<<40 | c.msgIdx
		c.msgIdx++
		c.pushRing(conduitItem[T]{item: m.item, at: m.at, seq: seq})
		m.item = zero // drop the reference before the slice becomes spare
	}
	c.spare = msgs
	if c.ev.idx < 0 && c.n > 0 {
		h := &c.ring[c.head]
		c.dstEng.pushAt(&c.ev, h.at, h.seq)
	}
	return b
}

// publish raises the conduit's bound to b (bounds are monotone; stale
// batches cannot lower one) and reports whether undrained messages are
// waiting and whether the bound advanced.
func (c *Conduit[T]) publish(b Time) (msgs, advanced bool) {
	c.mu.Lock()
	msgs = c.needWake
	c.needWake = false
	if b > c.bound {
		c.bound = b
		advanced = true
	}
	c.mu.Unlock()
	return msgs, advanced
}

// fire delivers the head arrival and re-arms the portal event for the
// next one, exactly as DelayLine does for local traffic.
//
//greenvet:hotpath
func (c *Conduit[T]) fire() {
	it := c.popRing()
	c.deliver(it.item)
	if c.ev.idx < 0 && c.n > 0 {
		h := &c.ring[c.head]
		c.dstEng.pushAt(&c.ev, h.at, h.seq)
	}
}

func (c *Conduit[T]) pushRing(it conduitItem[T]) {
	if c.n == len(c.ring) {
		c.grow()
	}
	c.ring[(c.head+c.n)&(len(c.ring)-1)] = it
	c.n++
}

func (c *Conduit[T]) popRing() conduitItem[T] {
	it := c.ring[c.head]
	var zero conduitItem[T]
	c.ring[c.head] = zero // drop the item reference for the GC
	c.head = (c.head + 1) & (len(c.ring) - 1)
	c.n--
	return it
}

func (c *Conduit[T]) grow() {
	newCap := 2 * len(c.ring)
	if newCap == 0 {
		newCap = 16
	}
	next := make([]conduitItem[T], newCap)
	for i := 0; i < c.n; i++ {
		next[i] = c.ring[(c.head+i)&(len(c.ring)-1)]
	}
	c.ring = next
	c.head = 0
}
