package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// ringModel builds a 4-shard bidirectional ring that bounces tokens around
// while interleaving local work, and records every delivery as a per-shard
// trace. The model is pure event logic, so its traces must be identical for
// any worker count.
type ringModel struct {
	g      *ShardGroup
	fwd    [4]*Conduit[int]
	rev    [4]*Conduit[int]
	traces [4][]string
}

func newRingModel() *ringModel {
	m := &ringModel{g: NewShardGroup(4)}
	const delay = 5 * Microsecond
	for i := 0; i < 4; i++ {
		i := i
		dst := (i + 1) % 4
		m.fwd[i] = NewConduit(m.g, i, dst, delay, func(tok int) { m.bounce(dst, tok) })
	}
	for i := 0; i < 4; i++ {
		i := i
		dst := (i + 3) % 4
		m.rev[i] = NewConduit(m.g, i, dst, delay, func(tok int) { m.bounce(dst, tok) })
	}
	for i := 0; i < 4; i++ {
		i := i
		eng := m.g.Engine(i)
		for k := 0; k < 3; k++ {
			tok := i<<16 | k<<8 // hop count in the low byte
			eng.At(Time(1+i)*Microsecond+Time(k)*300*Nanosecond, func() {
				m.launch(i, tok)
			})
		}
	}
	return m
}

// launch does a bit of local-only work, then forwards the token both ways.
func (m *ringModel) launch(shard, tok int) {
	eng := m.g.Engine(shard)
	m.traces[shard] = append(m.traces[shard],
		fmt.Sprintf("%d@%v:%x", shard, eng.Now(), tok))
	if tok&0xff >= 12 {
		return
	}
	eng.After(700*Nanosecond, func() {
		m.fwd[shard].SendAfterDelay(tok + 1)
		m.rev[shard].SendAfterDelay(tok + 1)
	})
}

// bounce receives a token on shard and relaunches it there.
func (m *ringModel) bounce(shard, tok int) {
	m.launch(shard, tok)
}

func runRing(t *testing.T, workers int) ([4][]string, uint64) {
	t.Helper()
	m := newRingModel()
	m.g.Run(Second, workers)
	if got := m.g.Pending(); got != 0 {
		t.Fatalf("workers=%d: %d events pending after quiescent run", workers, got)
	}
	return m.traces, m.g.Fired()
}

func TestShardGroupDeterministicAcrossWorkers(t *testing.T) {
	golden, goldenFired := runRing(t, 1)
	total := 0
	for _, tr := range golden {
		total += len(tr)
	}
	if total < 100 {
		t.Fatalf("ring model too quiet to prove anything: %d deliveries", total)
	}
	for _, workers := range []int{2, 3, 4, 8} {
		traces, fired := runRing(t, workers)
		if !reflect.DeepEqual(traces, golden) {
			t.Errorf("workers=%d: traces diverge from single-worker run", workers)
		}
		if fired != goldenFired {
			t.Errorf("workers=%d: fired %d events, single-worker run fired %d", workers, fired, goldenFired)
		}
	}
}

// Portal arrivals must fire before local events scheduled at the same
// instant, on every worker count — that tie-break is part of the
// determinism contract, so pin it explicitly.
func TestConduitArrivalBeatsLocalTie(t *testing.T) {
	const delay = 10 * Microsecond
	for _, workers := range []int{1, 2} {
		g := NewShardGroup(2)
		var order []string
		c := NewConduit(g, 0, 1, delay, func(string) { order = append(order, "portal") })
		g.Engine(1).At(Time(delay), func() { order = append(order, "local") })
		g.Engine(0).At(0, func() { c.SendAfterDelay("tok") })
		g.Run(Second, workers)
		if want := []string{"portal", "local"}; !reflect.DeepEqual(order, want) {
			t.Errorf("workers=%d: same-instant order = %v, want %v", workers, order, want)
		}
	}
}

func TestConduitLookaheadViolationPanics(t *testing.T) {
	g := NewShardGroup(2)
	c := NewConduit(g, 0, 1, 10*Microsecond, func(int) {})
	g.Engine(0).At(0, func() { c.Send(Microsecond, 7) })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("undershooting the lookahead bound did not panic")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "violates published bound") {
			t.Fatalf("panic = %q, want a lookahead-bound violation", msg)
		}
	}()
	g.Run(Second, 2)
}

// A panic inside a shard's event callback must surface from Run on the
// caller's goroutine for any worker count, not crash a worker.
func TestShardPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 2} {
		g := NewShardGroup(2)
		NewConduit(g, 0, 1, Microsecond, func(int) {})
		g.Engine(1).At(Millisecond, func() { panic("boom on shard 1") })
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: shard panic did not propagate", workers)
				}
				if msg := fmt.Sprint(r); !strings.Contains(msg, "boom on shard 1") {
					t.Fatalf("workers=%d: panic = %q, want original payload", workers, msg)
				}
			}()
			g.Run(Second, workers)
		}()
	}
}

// The deadline caps execution: events past it stay queued (visible through
// Pending) and the group still terminates promptly even though the shards'
// conduit bounds never cover the far-future events.
func TestShardGroupDeadline(t *testing.T) {
	g := NewShardGroup(2)
	NewConduit(g, 0, 1, Microsecond, func(int) {})
	NewConduit(g, 1, 0, Microsecond, func(int) {})
	ran := 0
	g.Engine(0).At(Millisecond, func() { ran++ })
	g.Engine(0).At(2*Second, func() { t.Error("event past the deadline ran") })
	g.Engine(1).At(Second, func() { ran++ }) // exactly at the deadline: runs
	g.Run(Second, 2)
	if ran != 2 {
		t.Fatalf("ran %d events at or below the deadline, want 2", ran)
	}
	if got := g.Pending(); got != 1 {
		t.Fatalf("Pending() = %d after capped run, want the 1 far-future event", got)
	}
	if got := g.Fired(); got != 2 {
		t.Fatalf("Fired() = %d, want 2 aggregated across shards", got)
	}
}

// Sparse traffic must not creep toward the next event one lookahead at a
// time: with events seconds apart and microsecond lookahead, an unassisted
// bound ratchet would need ~10^6 rounds. The fast-forward pass makes this
// test complete instantly; a livelock here is a failure of that pass.
func TestShardGroupFastForwardSparseTraffic(t *testing.T) {
	g := NewShardGroup(2)
	c01 := NewConduit(g, 0, 1, Microsecond, func(int) {})
	var got []Time
	c10 := NewConduit(g, 1, 0, Microsecond, func(int) { got = append(got, g.Engine(0).Now()) })
	// Messages from an isolated far-future event chain: each hop crosses
	// seconds of simulated idle time.
	g.Engine(1).At(3*Second, func() { c10.SendAfterDelay(1) })
	g.Engine(0).At(7*Second, func() { c01.SendAfterDelay(2) })
	g.Engine(1).At(9*Second, func() { c10.Send(9*Second+Microsecond, 3) })
	g.Run(10*Second, 2)
	want := []Time{3*Second + Microsecond, 9*Second + Microsecond}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sparse deliveries at %v, want %v", got, want)
	}
}

func TestShardGroupRunTwicePanics(t *testing.T) {
	g := NewShardGroup(1)
	g.Run(Second, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	g.Run(Second, 1)
}

func TestNewConduitRejectsBadArguments(t *testing.T) {
	g := NewShardGroup(2)
	for name, fn := range map[string]func(){
		"zero delay":  func() { NewConduit(g, 0, 1, 0, func(int) {}) },
		"self loop":   func() { NewConduit(g, 1, 1, Microsecond, func(int) {}) },
		"nil deliver": func() { NewConduit[int](g, 0, 1, Microsecond, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewConduit did not panic", name)
				}
			}()
			fn()
		}()
	}
}
