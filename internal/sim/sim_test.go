package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %d, want %d", got, 1500*Millisecond)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Fatalf("Seconds() = %v, want 2", got)
	}
	if s := Time(1500 * Millisecond).String(); s != "1.500000s" {
		t.Fatalf("String() = %q", s)
	}
}

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("Run returned %d, want 30", end)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	if len(order) != 100 {
		t.Fatalf("fired %d events, want 100", len(order))
	}
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-time events fired out of scheduling order: %v", order[:10])
	}
}

func TestEngineAfterAdvancesClock(t *testing.T) {
	e := NewEngine()
	var at Time
	e.After(2*Second, func() { at = e.Now() })
	e.Run()
	if at != 2*Second {
		t.Fatalf("event at %v, want 2s", at)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			e.After(Millisecond, tick)
		}
	}
	e.After(0, tick)
	end := e.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if end != 9*Millisecond {
		t.Fatalf("end = %v, want 9ms", end)
	}
}

func TestEventCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Fired() != 0 {
		t.Fatalf("Fired = %d, want 0", e.Fired())
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	e := NewEngine()
	ev := e.At(10, func() {})
	ev.Cancel()
	ev.Cancel()
	e.Run()
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestNegativeAfterPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20 only", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("clock = %v, want 25", e.Now())
	}
	// Remaining events still run afterwards.
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %v after Run, want all 4", fired)
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	e := NewEngine()
	e.RunFor(Second)
	if e.Now() != Second {
		t.Fatalf("Now = %v, want 1s", e.Now())
	}
	e.RunFor(Second)
	if e.Now() != 2*Second {
		t.Fatalf("Now = %v, want 2s", e.Now())
	}
}

func TestStopAbortsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1, func() { count++; e.Stop() })
	e.At(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1 (Stop should abort)", count)
	}
}

func TestPendingCount(t *testing.T) {
	e := NewEngine()
	e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after Run, want 0", e.Pending())
	}
}

// Pending counts live events only: a cancelled event may linger in the heap
// until compaction, but it must not be reported as pending work.
func TestPendingExcludesCancelled(t *testing.T) {
	e := NewEngine()
	ev := e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	ev.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d after Cancel, want 1", e.Pending())
	}
	ev.Cancel() // idempotent: must not double-count
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d after second Cancel, want 1", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after Run, want 0", e.Pending())
	}
}

// Cancelling a large batch of events must trigger dead-event compaction, and
// the surviving events must still fire in exactly (time, FIFO) order.
func TestCompactionPreservesOrder(t *testing.T) {
	e := NewEngine()
	var cancelled []*Event
	var fired []int
	for i := 0; i < 500; i++ {
		i := i
		ev := e.At(Time(1000+i/5), func() { fired = append(fired, i) })
		if i%2 == 1 {
			cancelled = append(cancelled, ev)
		}
	}
	for _, ev := range cancelled {
		ev.Cancel()
	}
	if e.Pending() != 250 {
		t.Fatalf("Pending = %d after mass cancel, want 250", e.Pending())
	}
	e.Run()
	if len(fired) != 250 {
		t.Fatalf("fired %d events, want 250", len(fired))
	}
	if !sort.IntsAreSorted(fired) {
		t.Fatalf("compaction broke FIFO order among equal-time events: %v", fired[:20])
	}
}

// A steady-state self-rescheduling chain must recycle its event through the
// pool instead of allocating a fresh one per firing.
func TestEventPoolRecycles(t *testing.T) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n%100 != 0 {
			e.After(10, tick)
		}
	}
	// Each run schedules one root event that chains through 100 firings,
	// all recycling the same pooled Event.
	run := func() {
		e.After(10, tick)
		e.Run()
	}
	run() // seed the free list
	if avg := testing.AllocsPerRun(5, run); avg != 0 {
		t.Fatalf("self-rescheduling chain allocated %.1f objects/run, want 0", avg)
	}
	if n%100 != 0 || n == 0 {
		t.Fatalf("chain misfired: n = %d", n)
	}
}

// Property: for any set of scheduled times, events fire in nondecreasing
// time order and the clock never moves backwards.
func TestEventOrderingProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		e := NewEngine()
		var fired []Time
		for _, r := range raw {
			at := Time(r % 1_000_000)
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	a := parent.Split(1)
	b := parent.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d values", len(seen))
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNormal(t *testing.T) {
	r := NewRNG(9)
	const n = 50000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("normal stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestRNGJitter(t *testing.T) {
	r := NewRNG(13)
	if r.Jitter(0) != 0 {
		t.Fatal("Jitter(0) must be 0")
	}
	for i := 0; i < 1000; i++ {
		j := r.Jitter(Millisecond)
		if j < 0 || j >= Millisecond {
			t.Fatalf("jitter out of range: %d", j)
		}
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.At(Time(j), func() {})
		}
		e.Run()
	}
}
