package sim_test

// Engine microbenchmarks. The bodies live in internal/perf so that
// cmd/simbench can run the identical code and record the results in
// BENCH_sim.json; these wrappers expose them to `go test -bench`.

import (
	"testing"

	"greenenvy/internal/perf"
)

func BenchmarkEngineEventLoop(b *testing.B) { perf.BenchEngineEventLoop(b) }

func BenchmarkTimerRearm(b *testing.B) { perf.BenchTimerRearm(b) }
