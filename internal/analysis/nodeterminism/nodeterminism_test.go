package nodeterminism_test

import (
	"testing"

	"greenenvy/internal/analysis/analysistest"
	"greenenvy/internal/analysis/nodeterminism"
)

func TestNodeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", nodeterminism.Analyzer)
}
