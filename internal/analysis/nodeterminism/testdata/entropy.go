// Package testdata exercises the nodeterminism analyzer. Each // want
// comment holds a regexp the diagnostic reported on that line must match.
package testdata

import (
	crand "crypto/rand"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"
)

func clocks() time.Duration {
	start := time.Now()          // want `time\.Now is nondeterministic`
	time.Sleep(time.Millisecond) // want `time\.Sleep is nondeterministic`
	return time.Since(start)     // want `time\.Since is nondeterministic`
}

func timerValue() func() *time.Timer {
	// A bare reference (no call) is just as nondeterministic.
	f := time.NewTimer // want `time\.NewTimer is nondeterministic`
	return func() *time.Timer { return f(0) }
}

func randomness() (int, error) {
	var b [8]byte
	_, err := crand.Read(b[:]) // want `crypto/rand\.Read is nondeterministic`
	return rand.Intn(6), err   // want `math/rand\.Intn is nondeterministic`
}

func processEntropy() string {
	_ = os.Getpid()          // want `os\.Getpid is nondeterministic`
	return os.Getenv("HOME") // want `os\.Getenv is nondeterministic`
}

func orderedSinks(m map[string]float64) string {
	var b strings.Builder
	total := ""
	var derived []string
	var keys []string
	buckets := map[string][]float64{}
	for k, v := range m {
		fmt.Println(k, v)                  // want `fmt\.Println write inside map iteration`
		b.WriteString(k)                   // want `ordered sink \(strings\.Builder\)`
		total += k                         // want `string concatenation inside map iteration`
		derived = append(derived, k+"!")   // want `append of a derived value inside map iteration`
		keys = append(keys, k)             // bare key: first half of collect-then-sort, allowed
		buckets[k] = append(buckets[k], v) // per-key bucket: order-independent, allowed
	}
	sort.Strings(keys)
	return total + b.String() + strings.Join(derived, ",")
}

// taggedCollect is the sharded engine's arrival-seq idiom: each appended
// element embeds the loop key (its rank), so the slice is canonically
// reorderable after the loop and map order cannot leak into results.
func taggedCollect(m map[int]string) {
	type tagged struct {
		Seq  int
		Item string
	}
	var collected []tagged
	var anon []struct {
		Seq  int
		Item string
	}
	var ptrs []*tagged
	var untagged []tagged
	for k, v := range m {
		collected = append(collected, tagged{Seq: k, Item: v + "!"}) // tagged by the key: reorderable, allowed
		anon = append(anon, struct {
			Seq  int
			Item string
		}{k, v})
		ptrs = append(ptrs, &tagged{Seq: k, Item: v})      // &T{...} form, allowed
		untagged = append(untagged, tagged{Item: v + "!"}) // want `append of a derived value inside map iteration`
	}
	sort.Slice(collected, func(i, j int) bool { return collected[i].Seq < collected[j].Seq })
	_, _, _ = anon, ptrs, untagged
}

func spelledOutConcat(m map[int]string) string {
	s := ""
	for _, v := range m {
		s = s + v // want `string concatenation inside map iteration`
	}
	return s
}

func reviewedSuppression(m map[string]int) {
	for k := range m {
		fmt.Println(k) //greenvet:allow nodeterminism diagnostic output in a debug helper
	}
}

func sortedIteration(m map[string]int) string {
	// The blessed idiom: collect, sort, then build — nothing flagged.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d;", k, m[k])
	}
	return b.String()
}
