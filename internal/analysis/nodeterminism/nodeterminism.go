// Package nodeterminism rejects entropy sources and order-sensitive map
// iteration in result-affecting packages.
//
// The simulator's headline guarantee is that a run is a pure function of
// its seed: the fig5 golden digest, the persistent result cache, and the
// Workers-independence tests all assume it. One stray wall-clock read or
// globally-seeded random draw silently voids all three. This analyzer
// turns the convention into a build-time property:
//
//   - no wall-clock or timer reads (time.Now, time.Since, time.Sleep, ...);
//     simulated time comes from sim.Engine.Now
//   - no math/rand, math/rand/v2, or crypto/rand at all — not even with a
//     fixed seed — because their streams are not covered by the repo's
//     determinism tests; randomness comes from sim.RNG (seeded, stable,
//     splittable)
//   - no process-identity or environment entropy (os.Getpid, os.Hostname,
//     os.Getenv, ...)
//   - no map iteration that feeds an ordered sink (appending derived
//     values, writing to a builder/writer/fmt, concatenating strings):
//     iterate sorted keys instead. Collecting the bare key or value into a
//     slice is allowed — that is the first half of the sorted-iteration
//     idiom — and so is appending a composite literal that embeds the loop
//     key or value as a field (the sharded engine's arrival-seq idiom:
//     each element carries the rank that later sorts the collection).
//
// False positives are suppressed with
// `//greenvet:allow nodeterminism <reason>` on the offending line.
package nodeterminism

import (
	"go/ast"
	"go/token"
	"go/types"

	"greenenvy/internal/analysis"
)

// Analyzer is the nodeterminism pass.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterminism",
	Doc:  "forbid wall-clock, global randomness, process entropy, and order-sensitive map iteration in result-affecting packages",
	Run:  run,
}

// bannedFuncs maps package path → function name → the suggested fix.
// An empty name key bans every function in the package.
var bannedFuncs = map[string]map[string]string{
	"time": {
		"Now":       "use the sim.Engine clock (Engine.Now)",
		"Since":     "use sim.Time arithmetic on the engine clock",
		"Until":     "use sim.Time arithmetic on the engine clock",
		"Sleep":     "schedule an event with Engine.After",
		"After":     "schedule an event with Engine.After",
		"AfterFunc": "schedule an event with Engine.After or a sim.Timer",
		"Tick":      "use a self-rescheduling sim event",
		"NewTimer":  "use sim.Timer",
		"NewTicker": "use a self-rescheduling sim event",
	},
	"math/rand":    {"": "use sim.RNG: its stream is seeded, stable across Go releases, and covered by the golden-digest test"},
	"math/rand/v2": {"": "use sim.RNG: its stream is seeded, stable across Go releases, and covered by the golden-digest test"},
	"crypto/rand":  {"": "use sim.RNG; cryptographic entropy is never reproducible"},
	"os": {
		"Getpid":    "derive identity from experiment parameters, not the process",
		"Getppid":   "derive identity from experiment parameters, not the process",
		"Hostname":  "derive identity from experiment parameters, not the host",
		"Getenv":    "thread configuration through Options, not the environment",
		"LookupEnv": "thread configuration through Options, not the environment",
		"Environ":   "thread configuration through Options, not the environment",
	},
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			// Any reference — call or value — to a banned function.
			fn, isFunc := info.Uses[n.Sel].(*types.Func)
			if !isFunc {
				return true
			}
			pkgPath, name, ok := analysis.PkgFuncName(fn)
			if !ok {
				return true
			}
			pkg, banned := bannedFuncs[pkgPath]
			if !banned {
				return true
			}
			if hint, all := pkg[""]; all {
				pass.Reportf(n.Pos(), "%s.%s is nondeterministic across runs: %s", pkgPath, name, hint)
				return true
			}
			if hint, one := pkg[name]; one {
				pass.Reportf(n.Pos(), "%s.%s is nondeterministic across runs: %s", pkgPath, name, hint)
			}
		case *ast.RangeStmt:
			if analysis.IsMapRange(info, n) {
				checkMapRange(pass, n)
			}
		}
		return true
	})
	return nil, nil
}

// checkMapRange flags order-sensitive sinks inside a range-over-map body.
// Nested map ranges are visited again by the outer Inspect, so this only
// looks at sinks attributable to rs itself (it does not recurse into
// nested map-range bodies, whose sinks are reported once, for the inner
// loop).
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	keyObj := rangeVarObj(info, rs.Key)
	valObj := rangeVarObj(info, rs.Value)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if analysis.IsMapRange(info, n) {
				return false
			}
		case *ast.CallExpr:
			if ok, detail := isOrderedWriteCall(info, n); ok {
				pass.Reportf(n.Pos(), "%s inside map iteration: output depends on map order; iterate sorted keys instead", detail)
				return true
			}
			if ok, arg := appendSink(info, n, rs); ok {
				// A destination indexed by the loop key/value is a per-key
				// bucket: each key sees its own elements in a fixed order,
				// so iteration order cannot leak into the result.
				if analysis.IndexedByLoopVar(info, n.Args[0], keyObj, valObj) {
					return true
				}
				// Collecting the bare key or value is the sorted-iteration
				// idiom's first half and stays legal.
				if id, isIdent := ast.Unparen(arg).(*ast.Ident); isIdent {
					if obj := info.ObjectOf(id); obj != nil && (obj == keyObj || obj == valObj) {
						return true
					}
				}
				// Tagged collect: appending a composite that embeds the loop
				// key or value as a field is the sharded engine's arrival-seq
				// idiom — every element carries its own rank, so the slice
				// can be (and is) canonically reordered after the loop.
				if carriesLoopVar(info, arg, keyObj, valObj) {
					return true
				}
				pass.Reportf(n.Pos(), "append of a derived value inside map iteration: element order depends on map order; collect keys, sort, then build")
			}
		case *ast.AssignStmt:
			checkStringAccumulation(pass, n, rs)
		}
		return true
	})
}

// carriesLoopVar reports whether arg is a composite literal (or &T{...})
// embedding the loop key or value as one of its elements: the tagged-
// collect idiom, where each appended element carries the rank that later
// sorts the collection into a canonical order.
func carriesLoopVar(info *types.Info, arg ast.Expr, keyObj, valObj types.Object) bool {
	e := ast.Unparen(arg)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	lit, ok := e.(*ast.CompositeLit)
	if !ok {
		return false
	}
	for _, el := range lit.Elts {
		v := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			v = kv.Value
		}
		if id, ok := ast.Unparen(v).(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil && (obj == keyObj || obj == valObj) {
				return true
			}
		}
	}
	return false
}

// rangeVarObj resolves a range clause variable to its object.
func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(id)
}

// orderedWriterTypes are method receivers whose Write* methods preserve
// call order in their output.
var orderedWriterTypes = map[[2]string]bool{
	{"strings", "Builder"}: true,
	{"bytes", "Buffer"}:    true,
	{"bufio", "Writer"}:    true,
}

// isOrderedWriteCall reports whether call writes to an order-preserving
// text or byte sink (fmt printing, builder/buffer writes, io.WriteString).
func isOrderedWriteCall(info *types.Info, call *ast.CallExpr) (bool, string) {
	fn := analysis.CalleeFunc(info, call)
	pkgPath, name, ok := analysis.PkgFuncName(fn)
	if !ok {
		return false, ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() != nil {
			key := [2]string{named.Obj().Pkg().Path(), named.Obj().Name()}
			if orderedWriterTypes[key] && token.IsExported(name) &&
				(name == "WriteString" || name == "WriteByte" || name == "WriteRune" || name == "Write") {
				return true, "write to an ordered sink (" + key[0] + "." + key[1] + ")"
			}
		}
		return false, ""
	}
	switch pkgPath {
	case "fmt":
		switch name {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return true, "fmt." + name + " write"
		}
	case "io":
		if name == "WriteString" {
			return true, "io.WriteString write"
		}
	}
	return false, ""
}

// appendSink reports whether call appends a single element to a slice
// declared outside the range statement, returning the appended element.
func appendSink(info *types.Info, call *ast.CallExpr, rs *ast.RangeStmt) (bool, ast.Expr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false, nil
	}
	if obj := info.ObjectOf(id); obj != nil && obj.Pkg() != nil {
		return false, nil // a shadowing user-defined append
	}
	if len(call.Args) != 2 || call.Ellipsis != token.NoPos {
		return false, nil
	}
	if !analysis.DeclaredOutside(info, call.Args[0], rs.Body, rs.Body) {
		return false, nil
	}
	return true, call.Args[1]
}

// checkStringAccumulation flags `s += ...` / `s = s + ...` on an outer
// string variable inside the loop.
func checkStringAccumulation(pass *analysis.Pass, as *ast.AssignStmt, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	for i, lhs := range as.Lhs {
		tv, ok := info.Types[lhs]
		if !ok || tv.Type == nil || !analysis.IsString(tv.Type) {
			continue
		}
		if !analysis.DeclaredOutside(info, lhs, rs.Body, rs.Body) {
			continue
		}
		accum := false
		switch as.Tok {
		case token.ADD_ASSIGN:
			accum = true
		case token.ASSIGN:
			if i < len(as.Rhs) {
				if bin, isBin := ast.Unparen(as.Rhs[i]).(*ast.BinaryExpr); isBin && bin.Op == token.ADD {
					accum = sameRoot(info, bin.X, lhs) || sameRoot(info, bin.Y, lhs)
				}
			}
		}
		if accum {
			pass.Reportf(as.Pos(), "string concatenation inside map iteration: result depends on map order; iterate sorted keys instead")
		}
	}
}

// sameRoot reports whether a and b resolve to the same root object.
func sameRoot(info *types.Info, a, b ast.Expr) bool {
	ra, rb := analysis.RootIdent(a), analysis.RootIdent(b)
	if ra == nil || rb == nil {
		return false
	}
	oa, ob := info.ObjectOf(ra), info.ObjectOf(rb)
	return oa != nil && oa == ob
}
