package analysis

import (
	"go/ast"
	"go/types"
)

// CalleeFunc resolves the function or method a call expression invokes,
// or nil when the callee is not a named function (a func value, a
// conversion, a builtin).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// PkgFuncName returns the defining package path and name of fn
// ("time", "Now"), or ok=false for a nil function or one without a
// package.
func PkgFuncName(fn *types.Func) (pkgPath, name string, ok bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// RootIdent unwraps selectors, indexes, and parens down to the base
// identifier of an lvalue or value expression: `a.b[i].c` → `a`.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// DeclaredOutside reports whether the object behind expr's root identifier
// is declared outside the [lo, hi) source range (e.g. outside a loop body).
// Expressions whose root cannot be resolved count as declared outside:
// for the analyzers' purposes an unresolvable sink is the risky case.
func DeclaredOutside(info *types.Info, e ast.Expr, lo, hi ast.Node) bool {
	id := RootIdent(e)
	if id == nil {
		return true
	}
	obj := info.ObjectOf(id)
	if obj == nil {
		return true
	}
	return obj.Pos() < lo.Pos() || obj.Pos() >= hi.End()
}

// IndexedByLoopVar reports whether dst is an index expression whose index
// is one of the given loop variables (a per-key bucket write, which is
// order-independent under map iteration).
func IndexedByLoopVar(info *types.Info, dst ast.Expr, loopVars ...types.Object) bool {
	idx, ok := ast.Unparen(dst).(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(idx.Index).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.ObjectOf(id)
	if obj == nil {
		return false
	}
	for _, v := range loopVars {
		if v != nil && obj == v {
			return true
		}
	}
	return false
}

// IsMapRange reports whether rs ranges over a map value.
func IsMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	tv, ok := info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// IsFloat reports whether t's underlying type is a floating-point or
// complex basic type.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// IsString reports whether t's underlying type is a string.
func IsString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
