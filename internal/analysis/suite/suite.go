// Package suite declares which analyzer guards which packages: the single
// source of truth the greenvet driver (standalone and vettool mode alike)
// consults before running an analyzer over a package.
//
// The scoping is deliberate, not a convenience:
//
//   - determinism rules (nodeterminism, floatorder) apply to every package
//     whose output reaches an experiment result — the simulator core, the
//     protocol stack, the harness/registry root package, stats, plotting —
//     but not to cmd/ (bench timing legitimately reads the wall clock) or
//     to rapl/stress (they measure real hardware, which is the point);
//   - hotpathalloc applies where //greenvet:hotpath roots live: the event
//     engine, the per-packet path, and (since the PR 8/9 subsystems grew
//     hot loops of their own) the streaming-replay and measurement
//     packages;
//   - shardsafety applies where the sharded engine's vocabulary means the
//     real thing: the engine itself, the partitioned topology, and the
//     harness that drives per-shard runs;
//   - cachelineage applies where Options/Spec fields are declared,
//     canonicalized, and compiled into simulation inputs;
//   - registryhygiene applies only to the root package, where Register
//     calls and the experiment catalogue live.
package suite

import (
	"greenenvy/internal/analysis"
	"greenenvy/internal/analysis/cachelineage"
	"greenenvy/internal/analysis/floatorder"
	"greenenvy/internal/analysis/hotpathalloc"
	"greenenvy/internal/analysis/nodeterminism"
	"greenenvy/internal/analysis/registryhygiene"
	"greenenvy/internal/analysis/shardsafety"
)

// Scoped pairs an analyzer with the packages it applies to.
type Scoped struct {
	Analyzer *analysis.Analyzer
	// Paths are the exact import paths the analyzer runs over.
	Paths []string
}

// AppliesTo reports whether the analyzer covers importPath.
func (s Scoped) AppliesTo(importPath string) bool {
	for _, p := range s.Paths {
		if p == importPath {
			return true
		}
	}
	return false
}

// resultAffecting are the packages whose code can change experiment
// results: everything between a seed and a rendered table/SVG.
var resultAffecting = []string{
	"greenenvy",
	"greenenvy/internal/registry",
	"greenenvy/internal/scenario",
	"greenenvy/internal/sim",
	"greenenvy/internal/netsim",
	"greenenvy/internal/tcp",
	"greenenvy/internal/cca",
	"greenenvy/internal/energy",
	"greenenvy/internal/iperf",
	"greenenvy/internal/core",
	"greenenvy/internal/testbed",
	"greenenvy/internal/stats",
	"greenenvy/internal/workload",
	"greenenvy/internal/plot",
	"greenenvy/internal/cache",
}

// hotPath are the packages containing //greenvet:hotpath roots: the event
// engine, everything on the per-packet path, and the PR 8/9 hot loops —
// the pooled churn driver (testbed/iperf), the open-loop arrival process
// (workload), and the online P² aggregation (stats).
var hotPath = []string{
	"greenenvy/internal/sim",
	"greenenvy/internal/netsim",
	"greenenvy/internal/tcp",
	"greenenvy/internal/cca",
	"greenenvy/internal/energy",
	"greenenvy/internal/iperf",
	"greenenvy/internal/testbed",
	"greenenvy/internal/workload",
	"greenenvy/internal/stats",
}

// shardSafe are the packages where shardsafety's type vocabulary
// (ShardGroup, Conduit, Link, Testbed) means the real sharded engine.
var shardSafe = []string{
	"greenenvy/internal/sim",
	"greenenvy/internal/netsim",
	"greenenvy/internal/testbed",
}

// cacheLineage are the packages declaring, canonicalizing, or compiling
// the audited option/spec structs.
var cacheLineage = []string{
	"greenenvy",
	"greenenvy/internal/registry",
	"greenenvy/internal/scenario",
}

// Suite returns every analyzer with its package scope.
func Suite() []Scoped {
	return []Scoped{
		{Analyzer: nodeterminism.Analyzer, Paths: resultAffecting},
		{Analyzer: floatorder.Analyzer, Paths: resultAffecting},
		{Analyzer: hotpathalloc.Analyzer, Paths: hotPath},
		{Analyzer: shardsafety.Analyzer, Paths: shardSafe},
		{Analyzer: cachelineage.Analyzer, Paths: cacheLineage},
		{Analyzer: registryhygiene.Analyzer, Paths: []string{"greenenvy"}},
	}
}
