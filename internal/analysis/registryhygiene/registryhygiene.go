// Package registryhygiene statically validates every experiment
// registration in the root package.
//
// The registry (registry.go) panics at init time on empty names and
// collisions, but only when the code actually runs — and it cannot know
// anything about cache keying. This analyzer moves the whole contract to
// build time, inspecting each Register(Experiment{...}) call:
//
//   - Name and Description must be non-empty string literals (constants):
//     the registry is a static catalogue, and a computed name would also be
//     invisible to the cache-id audit below
//   - Run must be present and not the nil literal
//   - names and aliases must be unique across every Register call in the
//     package
//   - the experiment must have an entry in ExperimentCacheIDs — the fact
//     table shared with the sweepKey/cache-id audit test — and the entry's
//     non-empty cache-id prefix must appear as a string literal in the
//     package (the repeatRuns/cache.NewKey id site), so an experiment
//     cannot silently compute results under an undeclared cache namespace
//     and corrupt key hygiene
//
// Scenario-compiled experiments register through two funnels instead of a
// literal Experiment{...}:
//
//   - RegisterScenario(name) compiles a built-in spec at init time. Each
//     call must pass a non-empty string literal, the name must be unique
//     against every other registration, and its fact-table entry must be
//     exactly ScenarioCacheIDPrefix — the compiler namespaces every cell id
//     under "scenario/<spec-digest>/", so the static table records the
//     namespace (the digest part is the spec's own content address).
//   - RegisterScenarioFile(path) loads user spec files at runtime. It is
//     documented-exempt from the static audit: runtime-loaded specs cannot
//     appear in a compile-time fact table, and they are digest-namespaced
//     under ScenarioCacheIDPrefix by construction, so they cannot collide
//     with any audited prefix.
//
// Register calls inside those two funnel bodies are the one place a
// non-literal Experiment argument is allowed.
//
// Suppress a reviewed exception with
// `//greenvet:allow registryhygiene <reason>`.
package registryhygiene

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"greenenvy/internal/analysis"
)

// Analyzer validates Register calls against the production fact table.
var Analyzer = New(ExperimentCacheIDs)

// New builds the analyzer against a specific fact table (tests supply
// their own).
func New(facts map[string]string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "registryhygiene",
		Doc:  "validate experiment registrations: literal metadata, unique names, declared cache-id prefixes",
		Run:  func(pass *analysis.Pass) (any, error) { return run(pass, facts) },
	}
}

func run(pass *analysis.Pass, facts map[string]string) (any, error) {
	info := pass.TypesInfo

	// All string literals in the package, for the cache-id prefix check.
	literals := map[string]bool{}
	pass.Inspect(func(n ast.Node) bool {
		if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if s, err := strconv.Unquote(lit.Value); err == nil {
				literals[s] = true
			}
		}
		return true
	})

	// The scenario registration funnels: Register calls inside their bodies
	// pass a compiled (non-literal) Experiment and are audited through the
	// RegisterScenario rule instead.
	type span struct{ lo, hi token.Pos }
	var funnels []span
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if ok && (fd.Name.Name == "RegisterScenario" || fd.Name.Name == "RegisterScenarioFile") && fd.Recv == nil {
				funnels = append(funnels, span{fd.Pos(), fd.End()})
			}
		}
	}
	inFunnel := func(p token.Pos) bool {
		for _, s := range funnels {
			if s.lo <= p && p < s.hi {
				return true
			}
		}
		return false
	}

	seen := map[string]token.Pos{} // name/alias → first registration site
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pass.Pkg.Path() {
			return true
		}
		if fn.Name() == "RegisterScenario" && len(call.Args) == 1 {
			checkScenarioRegistration(pass, call, facts, literals, seen)
			return true
		}
		if fn.Name() != "Register" || len(call.Args) != 1 {
			return true
		}
		lit := compositeArg(call.Args[0])
		if lit == nil {
			if !inFunnel(call.Pos()) {
				pass.Reportf(call.Pos(), "Register argument must be a literal Experiment{...} so the registry stays statically auditable")
			}
			return true
		}
		checkRegistration(pass, call, lit, facts, literals, seen)
		return true
	})
	return nil, nil
}

// checkScenarioRegistration audits one RegisterScenario(name) call: literal
// unique name, fact-table entry pinned to the scenario cache namespace.
func checkScenarioRegistration(pass *analysis.Pass, call *ast.CallExpr, facts map[string]string, literals map[string]bool, seen map[string]token.Pos) {
	name, ok := constString(pass.TypesInfo, call.Args[0])
	if !ok || name == "" {
		pass.Reportf(call.Args[0].Pos(), "RegisterScenario name must be a non-empty string literal so the registration stays statically auditable")
		return
	}
	if prev, dup := seen[name]; dup {
		pass.Reportf(call.Pos(), "experiment name/alias %q already registered at %s; Register would panic at init", name, pass.Fset.Position(prev))
	} else {
		seen[name] = call.Pos()
	}
	prefix, known := facts[name]
	if !known {
		pass.Reportf(call.Pos(), "scenario experiment %q has no cache-id entry in the fact table (internal/analysis/registryhygiene/facts.go): declare it as %q", name, ScenarioCacheIDPrefix)
		return
	}
	if prefix != ScenarioCacheIDPrefix {
		pass.Reportf(call.Pos(), "scenario experiment %q must declare the %q cache namespace in the fact table, not %q: the compiler keys every cell under the spec digest inside that namespace", name, ScenarioCacheIDPrefix, prefix)
		return
	}
	if !prefixAppears(literals, prefix) {
		pass.Reportf(call.Pos(), "scenario experiment %q declares cache-id prefix %q but no string literal in the package starts with it: the CachePrefix cross-check is missing or diverged from the fact table", name, prefix)
	}
}

// compositeArg unwraps &Experiment{...} / Experiment{...} to the literal.
func compositeArg(e ast.Expr) *ast.CompositeLit {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	lit, _ := e.(*ast.CompositeLit)
	return lit
}

func checkRegistration(pass *analysis.Pass, call *ast.CallExpr, lit *ast.CompositeLit, facts map[string]string, literals map[string]bool, seen map[string]token.Pos) {
	info := pass.TypesInfo
	fields := map[string]ast.Expr{}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			pass.Reportf(el.Pos(), "Experiment literal must use field names (Name: ..., Run: ...)")
			return
		}
		if key, ok := kv.Key.(*ast.Ident); ok {
			fields[key.Name] = kv.Value
		}
	}

	name, nameOK := constString(info, fields["Name"])
	switch {
	case fields["Name"] == nil:
		pass.Reportf(lit.Pos(), "experiment registration is missing Name")
	case !nameOK:
		pass.Reportf(fields["Name"].Pos(), "experiment Name must be a string literal, not a computed value")
	case name == "":
		pass.Reportf(fields["Name"].Pos(), "experiment Name must be non-empty")
	}

	desc, descOK := constString(info, fields["Description"])
	switch {
	case fields["Description"] == nil:
		pass.Reportf(lit.Pos(), "experiment %s is missing a Description (greenbench -fig list renders it)", nameLabel(name))
	case !descOK:
		pass.Reportf(fields["Description"].Pos(), "experiment %s Description must be a string literal", nameLabel(name))
	case desc == "":
		pass.Reportf(fields["Description"].Pos(), "experiment %s Description must be non-empty", nameLabel(name))
	}

	switch runField := fields["Run"]; {
	case runField == nil:
		pass.Reportf(lit.Pos(), "experiment %s is missing its Run function", nameLabel(name))
	case isNilLiteral(info, runField):
		pass.Reportf(runField.Pos(), "experiment %s Run must not be nil", nameLabel(name))
	}

	// Uniqueness of the canonical name and every alias, package-wide.
	keys := []string{}
	if nameOK && name != "" {
		keys = append(keys, name)
	}
	if aliases := fields["Aliases"]; aliases != nil {
		if alit := compositeArg(aliases); alit != nil {
			for _, el := range alit.Elts {
				a, ok := constString(info, el)
				if !ok || a == "" {
					pass.Reportf(el.Pos(), "experiment %s aliases must be non-empty string literals", nameLabel(name))
					continue
				}
				keys = append(keys, a)
			}
		} else {
			pass.Reportf(aliases.Pos(), "experiment %s Aliases must be a literal []string{...}", nameLabel(name))
		}
	}
	for _, k := range keys {
		if prev, dup := seen[k]; dup {
			pass.Reportf(call.Pos(), "experiment name/alias %q already registered at %s; Register would panic at init", k, pass.Fset.Position(prev))
			continue
		}
		seen[k] = call.Pos()
	}

	// Cache-id fact table: every registered experiment declares its cache
	// namespace, and the declared prefix exists in the source.
	if !nameOK || name == "" {
		return
	}
	prefix, known := facts[name]
	if !known {
		pass.Reportf(call.Pos(), "experiment %q has no cache-id entry in the fact table (internal/analysis/registryhygiene/facts.go): declare its persistent-cache id prefix (or \"\" for closed-form experiments) so the sweepKey audit covers it", name)
		return
	}
	if prefix == "" {
		return
	}
	if !prefixAppears(literals, prefix) {
		pass.Reportf(call.Pos(), "experiment %q declares cache-id prefix %q but no string literal in the package starts with it: the repeatRuns/cache.NewKey id site is missing or diverged from the fact table", name, prefix)
	}
}

// prefixAppears reports whether any string literal equals the prefix or
// extends it.
func prefixAppears(literals map[string]bool, prefix string) bool {
	if literals[prefix] {
		return true
	}
	for l := range literals {
		if strings.HasPrefix(l, prefix) {
			return true
		}
	}
	return false
}

func nameLabel(name string) string {
	if name == "" {
		return "(unnamed)"
	}
	return fmt.Sprintf("%q", name)
}

// constString evaluates e as a constant string.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	if e == nil {
		return "", false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isNilLiteral reports whether e is the predeclared nil.
func isNilLiteral(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// SortedExperimentNames returns the fact table's keys in sorted order
// (handy for deterministic test failure output).
func SortedExperimentNames(facts map[string]string) []string {
	names := make([]string, 0, len(facts))
	for n := range facts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
