// Package testdata exercises the registryhygiene analyzer against a local
// mirror of the root package's registry shape. The test supplies its own
// fact table (see registryhygiene_test.go). Each // want comment holds a
// regexp the diagnostic reported on that line must match.
package testdata

type Result struct{}

type Options struct{}

type Experiment struct {
	Name        string
	Description string
	Aliases     []string
	Run         func(Options) (*Result, error)
}

func Register(e Experiment) {}

func runStub(Options) (*Result, error) { return nil, nil }

// goodCacheID stands in for the repeatRuns/cache.NewKey id site: the
// literal carrying the declared "good/" prefix.
const goodCacheID = "good/run"

// scenarioPrefix stands in for the root package's CachePrefix cross-check:
// the literal carrying the "scenario/" namespace.
const scenarioPrefix = "scenario/"

var suffix = "computed"

func makeExp() Experiment { return Experiment{} }

// RegisterScenario and RegisterScenarioFile mirror the root package's
// scenario funnels: Register calls inside their bodies legitimately pass a
// compiled, non-literal Experiment.
func RegisterScenario(name string) {
	e := Experiment{Name: name, Description: "compiled", Run: runStub}
	Register(e)
}

func RegisterScenarioFile(path string) (string, error) {
	e := makeExp()
	Register(e)
	return e.Name, nil
}

func init() {
	Register(Experiment{
		Name:        "good",
		Description: "a fully literal registration whose cache prefix exists",
		Aliases:     []string{"g"},
		Run:         runStub,
	})
	Register(Experiment{ // want `missing Name`
		Description: "no name at all",
		Run:         runStub,
	})
	Register(Experiment{
		Name:        "x" + suffix, // want `Name must be a string literal`
		Description: "computed name",
		Run:         runStub,
	})
	Register(Experiment{
		Name:        "emptydesc",
		Description: "", // want `Description must be non-empty`
		Run:         runStub,
	})
	Register(Experiment{
		Name:        "nilrun",
		Description: "run is the nil literal",
		Run:         nil, // want `Run must not be nil`
	})
	Register(Experiment{
		Name:        "dup",
		Description: "first registration wins",
		Run:         runStub,
	})
	Register(Experiment{ // want `already registered`
		Name:        "dup",
		Description: "second registration would panic at init",
		Run:         runStub,
	})
	Register(Experiment{ // want `already registered`
		Name:        "aliased",
		Description: "alias collides with an existing name",
		Aliases:     []string{"good"},
		Run:         runStub,
	})
	Register(Experiment{ // want `no cache-id entry in the fact table`
		Name:        "unknown",
		Description: "not in the fact table",
		Run:         runStub,
	})
	Register(Experiment{ // want `no string literal in the package starts with it`
		Name:        "ghostprefix",
		Description: "declares a prefix that appears nowhere",
		Run:         runStub,
	})
	Register(makeExp()) // want `must be a literal Experiment`

	// The scenario funnel rules.
	RegisterScenario("scenario-good")
	RegisterScenario("x" + suffix)        // want `name must be a non-empty string literal`
	RegisterScenario("scenario-good")     // want `already registered`
	RegisterScenario("scenario-unknown")  // want `no cache-id entry in the fact table`
	RegisterScenario("scenario-badentry") // want `must declare the "scenario/" cache namespace`
}
