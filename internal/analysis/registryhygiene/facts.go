package registryhygiene

// ExperimentCacheIDs is the shared fact table between static and dynamic
// enforcement of cache-key hygiene: every experiment registered in package
// greenenvy maps to the persistent-cache id prefix its repetitions are
// stored under, or "" for closed-form experiments that never touch the
// simulation cache.
//
// Two consumers keep it honest from opposite directions:
//
//   - the registryhygiene analyzer statically requires every
//     Register(Experiment{Name: ...}) call to have an entry here, and the
//     non-empty prefixes to appear as string literals in the package (the
//     cache.NewKey / repeatRuns id sites), so a new experiment cannot
//     compile without declaring how it keys the cache;
//   - TestExperimentCacheIDFacts (root package) dynamically requires the
//     registered set and this table to stay in bijection and the prefixes
//     to stay collision-free, so an entry cannot go stale either.
//
// ScenarioCacheIDPrefix is the namespace every scenario-compiled experiment
// keys its cells under: "scenario/<spec-digest>/<cell>". The static table
// records the namespace; the digest part is the canonical spec's own content
// address, so it cannot be (and need not be) pinned here. The value must
// match scenario.CachePrefix — the root package cross-checks the two at
// init time, and the analyzer requires every RegisterScenario call's fact
// entry to be exactly this constant.
const ScenarioCacheIDPrefix = "scenario/"

// Figures 5–8 intentionally share the "sweep" id: they are four views over
// the one CCA sweep dataset and must share its cached repetitions.
// "aqm-matrix" is scenario-compiled (see ScenarioCacheIDPrefix).
var ExperimentCacheIDs = map[string]string{
	"fig1":               "fig1/",
	"fig2":               "fig2/",
	"fig3":               "fig3/",
	"fig4":               "fig4/",
	"fig5":               "sweep",
	"fig6":               "sweep",
	"fig7":               "sweep",
	"fig8":               "sweep",
	"theorem":            "", // closed form: no simulation, no cache entries
	"scheduler":          "", // closed form
	"frontier":           "", // closed form
	"ablations":          "", // closed form
	"incast":             "incast/",
	"fattree-incast":     "fattree-incast/",
	"crossrack":          "crossrack/",
	"samesender":         "samesender/",
	"production":         "production/",
	"workload":           "workload/",
	"workload-scale":     "workload-scale/",
	"workload-crossover": "workload-crossover/",
	"aqm-matrix":         ScenarioCacheIDPrefix,
}
