package registryhygiene_test

import (
	"testing"

	"greenenvy/internal/analysis/analysistest"
	"greenenvy/internal/analysis/registryhygiene"
)

// TestRegistryhygiene runs the analyzer over the testdata registry with a
// test-local fact table, exercising every rule: literal metadata, unique
// names/aliases, fact-table membership, and prefix presence.
func TestRegistryhygiene(t *testing.T) {
	a := registryhygiene.New(map[string]string{
		"good":              "good/",
		"emptydesc":         "",
		"nilrun":            "",
		"dup":               "",
		"aliased":           "",
		"ghostprefix":       "ghost/",
		"scenario-good":     registryhygiene.ScenarioCacheIDPrefix,
		"scenario-badentry": "elsewhere/",
	})
	analysistest.Run(t, "testdata", a)
}
