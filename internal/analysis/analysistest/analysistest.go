// Package analysistest runs an analyzer over a directory of golden test
// sources and compares its diagnostics against `// want` expectations,
// mirroring golang.org/x/tools/go/analysis/analysistest on the standard
// library only.
//
// A testdata file marks each expected diagnostic on the line it occurs:
//
//	v := time.Now() // want `time\.Now`
//
// Multiple backquoted or quoted regexps on one line expect multiple
// diagnostics. Every diagnostic must be matched by exactly one want and
// vice versa; mismatches fail the test with file:line context.
//
// Testdata packages may import only the standard library: their imports
// are resolved through `go list -export`, so the type information is the
// same the compiler would produce.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"greenenvy/internal/analysis"
	"greenenvy/internal/analysis/load"
)

// Run analyzes the one package formed by every .go file in dir and checks
// its diagnostics against the files' // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("analysistest: no Go files under %s (%v)", dir, err)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[path] = true
			}
		}
	}

	var importList []string
	for p := range imports {
		importList = append(importList, p)
	}
	sort.Strings(importList)
	exports, err := load.StdlibExports(importList...)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	info := load.NewInfo()
	conf := types.Config{
		Importer: load.ExportImporter(fset, func(path string) (string, bool) {
			e, ok := exports[path]
			return e, ok
		}),
		Sizes: types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check("greenvet.test/"+filepath.Base(dir), fset, files, info)
	if err != nil {
		t.Fatalf("analysistest: typecheck %s: %v", dir, err)
	}

	diags, err := analysis.Run(a, fset, files, pkg, info)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	check(t, fset, files, diags)
}

// want is one expectation: a regexp at a file:line.
type want struct {
	file string
	line int
	rx   *regexp.Regexp
	raw  string
	used bool
}

// wantRE extracts the expectation patterns of a `// want ...` comment:
// a sequence of backquoted or double-quoted strings.
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(strings.TrimPrefix(text, "want "), -1) {
					raw := m[1]
					if raw == "" {
						if unq, err := strconv.Unquote(`"` + m[2] + `"`); err == nil {
							raw = unq
						} else {
							raw = m[2]
						}
					}
					rx, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, raw, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx, raw: raw})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.used && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", relPos(pos), d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", relFile(w.file), w.line, w.raw)
		}
	}
}

func relPos(pos token.Position) string {
	return fmt.Sprintf("%s:%d:%d", relFile(pos.Filename), pos.Line, pos.Column)
}

func relFile(file string) string {
	if wd, err := os.Getwd(); err == nil {
		if r, err := filepath.Rel(wd, file); err == nil {
			return r
		}
	}
	return file
}
