package hotpathalloc_test

import (
	"testing"

	"greenenvy/internal/analysis/analysistest"
	"greenenvy/internal/analysis/hotpathalloc"
)

func TestHotpathalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotpathalloc.Analyzer)
}
