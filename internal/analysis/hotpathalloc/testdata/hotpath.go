// Package testdata exercises the hotpathalloc analyzer. The //greenvet:hotpath
// directive below marks step as the hot-path root; every function it reaches
// (directly, transitively, or as a method value) is checked. Each // want
// comment holds a regexp the diagnostic reported on that line must match.
package testdata

import "fmt"

type event struct {
	at int64
}

type ring struct {
	buf []int
}

type engine struct {
	pool   []*event
	events ring
	sink   interface{}
}

// step advances the event loop by one event.
//
//greenvet:hotpath
func (e *engine) step(now int64) {
	ev := e.alloc()
	ev.at = now
	e.dispatch(ev)
}

// alloc is reachable from step, so it is checked too.
func (e *engine) alloc() *event {
	if n := len(e.pool); n > 0 {
		ev := e.pool[n-1]
		e.pool = e.pool[:n-1]
		return ev
	}
	return &event{} // want `&T\{\.\.\.\} heap-allocates`
}

func (e *engine) dispatch(ev *event) {
	if ev.at < 0 {
		panic(fmt.Sprintf("event at %d", ev.at)) // panic ends the process: exempt
	}
	cb := func() { _ = ev } // want `closure literal allocates`
	cb()
	e.sink = *ev    // want `assignment boxes a concrete value`
	e.record(ev.at) // want `argument boxes a concrete value`
	e.push(int(ev.at))
	e.debug(ev)
	refill := e.refill // a method value keeps refill on the hot set
	refill()
}

func (e *engine) record(v interface{}) {
	_ = v
}

// push is hot; its growth is amortized by design, so the append carries a
// reviewed allow directive instead of a finding.
func (e *engine) push(v int) {
	e.events.buf = append(e.events.buf, v) //greenvet:allow hotpathalloc amortized growth reaches steady-state capacity
}

func (e *engine) debug(ev *event) {
	_ = fmt.Sprintf("ev@%d", ev.at) // want `fmt\.Sprintf allocates`
}

func (e *engine) refill() {
	e.pool = append(e.pool, nil) // want `append may grow its backing array`
	ev := new(event)             // want `new\(T\) heap-allocates`
	e.pool[len(e.pool)-1] = ev
	e.grow()
}

func (e *engine) grow() {
	e.events.buf = make([]int, 2*len(e.events.buf)) // want `make allocates`
	_ = e.format(nil)
}

func (e *engine) format(buf []byte) string {
	s := string(buf)      // want `string/byte-slice conversion copies and allocates`
	t := s + "!"          // want `string concatenation allocates`
	idx := map[int]bool{} // want `map/slice literal allocates`
	_ = idx
	e.record(ev2{}.ptr()) // a *event return is pointer-shaped: no boxing
	return t
}

type ev2 struct{}

func (ev2) ptr() *event { return nil }

// newEngine runs once at construction: it is not reachable from the root,
// so its allocations are legitimate and unflagged.
func newEngine() *engine {
	return &engine{pool: make([]*event, 0, 64)}
}
