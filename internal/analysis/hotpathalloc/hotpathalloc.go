// Package hotpathalloc flags allocation-causing constructs in functions
// reachable from the simulator's pooled event-loop hot path.
//
// PR 2 made the steady-state event loop allocation-free (pooled events,
// rearmable timers, ring-buffered queues) and pinned it with AllocsPerRun
// benchmarks. Those pins only fire when the benchmarks run; this analyzer
// makes the same regression impossible to merge silently by rejecting the
// constructs that put allocations back:
//
//   - fmt.* / strconv formatting calls and errors.New
//   - closure literals (captured variables escape)
//   - new(T), make(...), &T{...}, and map/slice composite literals
//   - append (unsized growth)
//   - string concatenation and string<->[]byte/[]rune conversions
//   - interface boxing: passing or assigning a non-pointer-shaped concrete
//     value where an interface is expected
//
// The hot-path set is explicit, not guessed: a function whose doc comment
// contains a `//greenvet:hotpath` line is a root, and every same-package
// function referenced (called, or mentioned as a method value) from a hot
// function is hot too. Arguments of a direct panic(...) call are exempt —
// an allocation on a path that ends the process cannot regress
// steady-state throughput.
//
// Amortized allocations that are genuinely part of the design (pool
// refills, slices whose capacity reaches a steady state) are annotated at
// the call site with `//greenvet:allow hotpathalloc <reason>`, which turns
// each one into a reviewed, documented exception instead of silent lore.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"greenenvy/internal/analysis"
)

// Analyzer is the hotpathalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "flag allocation-causing constructs in functions reachable from //greenvet:hotpath roots",
	Run:  run,
}

// HotPathDirective marks a hot-path root function when it appears on its
// own line of the function's doc comment.
const HotPathDirective = "//greenvet:hotpath"

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo

	// Collect this package's function declarations and the annotated roots.
	decls := map[*types.Func]*ast.FuncDecl{}
	var order []*types.Func // file order, for deterministic traversal
	var roots []*types.Func
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			order = append(order, fn)
			if analysis.HasDirective(fd.Doc, HotPathDirective) {
				roots = append(roots, fn)
			}
		}
	}

	// Reachability: any same-package function referenced from a hot
	// function's body is hot (covers calls and method values handed to
	// timers/callbacks alike).
	hot := map[*types.Func]bool{}
	work := append([]*types.Func(nil), roots...)
	for _, fn := range roots {
		hot[fn] = true
	}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			callee, ok := info.Uses[id].(*types.Func)
			if !ok || hot[callee] {
				return true
			}
			if _, local := decls[callee]; local {
				hot[callee] = true
				work = append(work, callee)
			}
			return true
		})
	}

	for _, fn := range order {
		if hot[fn] {
			checkFunc(pass, fn, decls[fn])
		}
	}
	return nil, nil
}

// allocatingCalls maps package path → function names that always allocate.
// An empty name key covers the whole package.
var allocatingCalls = map[string]map[string]bool{
	"fmt":    {"": true},
	"errors": {"New": true},
	"strconv": {
		"Itoa": true, "FormatInt": true, "FormatUint": true,
		"FormatFloat": true, "Quote": true, "AppendInt": false,
	},
	"sort": {"Slice": true, "SliceStable": true, "Sort": true, "Strings": true, "Ints": true, "Float64s": true},
}

func checkFunc(pass *analysis.Pass, fn *types.Func, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	name := fn.Name()
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// panic(...) ends the process: its arguments may allocate.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if obj := info.ObjectOf(id); obj == nil || obj.Pkg() == nil {
					return false
				}
			}
			checkCall(pass, name, n)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hot path (%s): closure literal allocates its captured environment; hoist to a method or a stored func", name)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "hot path (%s): &T{...} heap-allocates; recycle from a pool or reuse a field", name)
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Map, *types.Slice:
					pass.Reportf(n.Pos(), "hot path (%s): map/slice literal allocates; preallocate outside the loop", name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; ok && tv.Type != nil && analysis.IsString(tv.Type) && !isConstant(info, n) {
					pass.Reportf(n.Pos(), "hot path (%s): string concatenation allocates", name)
				}
			}
		case *ast.AssignStmt:
			checkAssignBoxing(pass, name, n)
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
}

func isConstant(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func checkCall(pass *analysis.Pass, name string, call *ast.CallExpr) {
	info := pass.TypesInfo

	// Builtins: new, make, append.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := info.ObjectOf(id); obj == nil || obj.Pkg() == nil {
			switch id.Name {
			case "new":
				pass.Reportf(call.Pos(), "hot path (%s): new(T) heap-allocates; recycle from a pool", name)
				return
			case "make":
				pass.Reportf(call.Pos(), "hot path (%s): make allocates; preallocate outside the hot path", name)
				return
			case "append":
				pass.Reportf(call.Pos(), "hot path (%s): append may grow its backing array; use a preallocated ring or pool, or justify with //greenvet:allow hotpathalloc", name)
				// An append's arguments can still box (append([]any, v)).
			}
		}
	}

	// Conversions: string <-> []byte / []rune allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, typeOf(info, call.Args[0])
		if from != nil && stringSliceConv(to, from) {
			pass.Reportf(call.Pos(), "hot path (%s): string/byte-slice conversion copies and allocates", name)
		}
		return
	}

	// Known allocating calls.
	fn := analysis.CalleeFunc(info, call)
	if pkgPath, fname, ok := analysis.PkgFuncName(fn); ok {
		if names, banned := allocatingCalls[pkgPath]; banned && (names[""] || names[fname]) {
			pass.Reportf(call.Pos(), "hot path (%s): %s.%s allocates", name, pkgPath, fname)
			return
		}
	}

	// Interface boxing at the call boundary.
	if fn != nil {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil {
			checkCallBoxing(pass, name, call, sig)
		}
	}
}

// checkCallBoxing flags non-pointer-shaped concrete arguments passed to
// interface-typed parameters.
func checkCallBoxing(pass *analysis.Pass, name string, call *ast.CallExpr, sig *types.Signature) {
	info := pass.TypesInfo
	params := sig.Params()
	n := params.Len()
	if n == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= n-1 {
			if call.Ellipsis != token.NoPos {
				continue // forwarding a slice: no per-element boxing
			}
			pt = params.At(n - 1).Type().(*types.Slice).Elem()
		} else if i < n {
			pt = params.At(i).Type()
		} else {
			break
		}
		if boxes(pt, typeOf(info, arg)) && !isConstant(info, arg) {
			pass.Reportf(arg.Pos(), "hot path (%s): argument boxes a concrete value into %s, which heap-allocates", name, pt)
		}
	}
}

// checkAssignBoxing flags assignments that box a concrete value into an
// interface-typed lvalue.
func checkAssignBoxing(pass *analysis.Pass, name string, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	info := pass.TypesInfo
	for i := range as.Lhs {
		lt, rt := typeOf(info, as.Lhs[i]), typeOf(info, as.Rhs[i])
		if as.Tok == token.DEFINE {
			continue // inferred type equals RHS type: no boxing
		}
		if boxes(lt, rt) && !isConstant(info, as.Rhs[i]) {
			pass.Reportf(as.Rhs[i].Pos(), "hot path (%s): assignment boxes a concrete value into %s, which heap-allocates", name, lt)
		}
	}
}

// boxes reports whether storing a value of type from into a location of
// type to converts a non-pointer-shaped concrete value to an interface.
func boxes(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	if _, iface := to.Underlying().(*types.Interface); !iface {
		return false
	}
	switch from.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: stored directly in the interface word
	case *types.Basic:
		if from.Underlying().(*types.Basic).Kind() == types.UntypedNil ||
			from.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
		return true
	default:
		return true // structs, arrays, slices, strings, numerics
	}
}

// stringSliceConv reports whether to(from) is a string<->[]byte/[]rune
// conversion.
func stringSliceConv(to, from types.Type) bool {
	return (analysis.IsString(to) && isByteOrRuneSlice(from)) ||
		(analysis.IsString(from) && isByteOrRuneSlice(to))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	tv, ok := info.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}
