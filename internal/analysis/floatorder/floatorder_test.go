package floatorder_test

import (
	"testing"

	"greenenvy/internal/analysis/analysistest"
	"greenenvy/internal/analysis/floatorder"
)

func TestFloatorder(t *testing.T) {
	analysistest.Run(t, "testdata", floatorder.Analyzer)
}
