// Package testdata exercises the floatorder analyzer. Each // want
// comment holds a regexp the diagnostic reported on that line must match.
package testdata

import "sort"

func folds(m map[string]float64) (float64, float64, float64) {
	var sum float64
	prod := 1.0
	var diff float64
	for _, v := range m {
		sum += v        // want `float accumulation ordered by map iteration`
		prod = prod * v // want `float accumulation ordered by map iteration`
		diff -= v       // want `float accumulation ordered by map iteration`
	}
	return sum, prod, diff
}

func collects(m map[int]float64) []float64 {
	var derived []float64
	var vals []float64
	buckets := map[int][]float64{}
	for k, v := range m {
		derived = append(derived, v*2)       // want `derived float collected in map-iteration order`
		vals = append(vals, v)               // bare value: collect-then-sort, allowed
		buckets[k] = append(buckets[k], v*2) // per-key bucket: order-independent, allowed
	}
	_, _ = vals, buckets
	return derived
}

func integersAreFine(m map[string]int) int {
	// Integer addition is associative: reordering cannot change the result.
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func reviewedSuppression(m map[string]float64) float64 {
	checksum := 0.0
	for _, v := range m {
		checksum += v //greenvet:allow floatorder order-insensitive presence check, compared against 0 only
	}
	return checksum
}

func sortedFold(m map[string]float64) float64 {
	// The blessed idiom: the fold runs over sorted keys, not the map.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sum := 0.0
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}
