// Package floatorder flags floating-point accumulation whose result
// depends on map iteration order.
//
// Float addition and multiplication are not associative: summing the same
// set of values in two different orders can produce different last bits,
// which is exactly how a mean/std aggregation goes non-reproducible when
// it folds over a Go map (whose iteration order is randomized per run).
// The fix is always the same: iterate the keys in sorted order, or
// accumulate into a slice indexed deterministically and reduce that.
//
// Flagged inside a `for ... range m` over a map:
//
//   - compound float assignment to a variable declared outside the loop:
//     sum += v, prod *= v, s -= v, s /= v
//   - the spelled-out form: sum = sum + v (and -, *, /)
//   - appending a *derived* float expression to an outer slice (the
//     collected order feeds a later fold); appending the bare key or
//     value stays legal, matching nodeterminism's collect-then-sort
//     allowance
//
// Suppress a reviewed false positive with
// `//greenvet:allow floatorder <reason>` on the offending line.
package floatorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"greenenvy/internal/analysis"
)

// Analyzer is the floatorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "floatorder",
	Doc:  "flag floating-point accumulation ordered by map iteration",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	pass.Inspect(func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !analysis.IsMapRange(pass.TypesInfo, rs) {
			return true
		}
		checkBody(pass, rs)
		return true
	})
	return nil, nil
}

// accumOps are the non-associative-under-reordering float operators.
var accumOps = map[token.Token]token.Token{
	token.ADD_ASSIGN: token.ADD,
	token.SUB_ASSIGN: token.SUB,
	token.MUL_ASSIGN: token.MUL,
	token.QUO_ASSIGN: token.QUO,
}

func checkBody(pass *analysis.Pass, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	keyObj := objOf(info, rs.Key)
	valObj := objOf(info, rs.Value)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if analysis.IsMapRange(info, n) {
				return false // the inner loop is checked on its own visit
			}
		case *ast.AssignStmt:
			checkAssign(pass, n, rs)
		case *ast.CallExpr:
			checkFloatAppend(pass, n, rs, keyObj, valObj)
		}
		return true
	})
}

func checkAssign(pass *analysis.Pass, as *ast.AssignStmt, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	if _, compound := accumOps[as.Tok]; compound {
		for _, lhs := range as.Lhs {
			if isOuterFloat(info, lhs, rs) {
				pass.Reportf(as.Pos(), "float accumulation ordered by map iteration: %s folds in map order and float %s is not associative; iterate sorted keys", as.Tok, accumOps[as.Tok])
			}
		}
		return
	}
	if as.Tok != token.ASSIGN {
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) || !isOuterFloat(info, lhs, rs) {
			continue
		}
		bin, ok := ast.Unparen(as.Rhs[i]).(*ast.BinaryExpr)
		if !ok {
			continue
		}
		switch bin.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			if sameRoot(info, bin.X, lhs) || sameRoot(info, bin.Y, lhs) {
				pass.Reportf(as.Pos(), "float accumulation ordered by map iteration: x = x %s ... folds in map order and float %s is not associative; iterate sorted keys", bin.Op, bin.Op)
			}
		}
	}
}

// checkFloatAppend flags appends of derived float expressions to slices
// declared outside the loop.
func checkFloatAppend(pass *analysis.Pass, call *ast.CallExpr, rs *ast.RangeStmt, keyObj, valObj types.Object) {
	info := pass.TypesInfo
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return
	}
	if obj := info.ObjectOf(id); obj != nil && obj.Pkg() != nil {
		return // shadowed append
	}
	if len(call.Args) != 2 || call.Ellipsis != token.NoPos {
		return
	}
	if !analysis.DeclaredOutside(info, call.Args[0], rs.Body, rs.Body) {
		return
	}
	if analysis.IndexedByLoopVar(info, call.Args[0], keyObj, valObj) {
		return // per-key bucket: each key's elements keep a fixed order
	}
	arg := ast.Unparen(call.Args[1])
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil || !analysis.IsFloat(tv.Type) {
		return
	}
	if id, isIdent := arg.(*ast.Ident); isIdent {
		if obj := info.ObjectOf(id); obj != nil && (obj == keyObj || obj == valObj) {
			return // bare key/value collection: collect-then-sort idiom
		}
	}
	pass.Reportf(call.Pos(), "derived float collected in map-iteration order feeds later aggregation; collect keys, sort, then compute")
}

func isOuterFloat(info *types.Info, lhs ast.Expr, rs *ast.RangeStmt) bool {
	tv, ok := info.Types[lhs]
	if !ok || tv.Type == nil || !analysis.IsFloat(tv.Type) {
		return false
	}
	return analysis.DeclaredOutside(info, lhs, rs.Body, rs.Body)
}

func objOf(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(id)
}

func sameRoot(info *types.Info, a, b ast.Expr) bool {
	ra, rb := analysis.RootIdent(a), analysis.RootIdent(b)
	if ra == nil || rb == nil {
		return false
	}
	oa, ob := info.ObjectOf(ra), info.ObjectOf(rb)
	return oa != nil && oa == ob
}
