// Package cachelineage_testdata models the option/spec cache-lineage
// contract with stand-in types; the test supplies a fact table naming
// them (the analyzer matches structs, functions, and carriers by name).
package cachelineage_testdata

import "fmt"

// --- audit 1: Options/goodKey — a fully healthy lineage ----------------

type Options struct {
	Reps    int
	Seed    uint64
	Shards  int
	Workers int
	Verbose bool
}

func goodKey(o Options) string {
	return fmt.Sprintf("%d/%d", o.Reps, o.Seed) // ok: exactly the KeyPhysics fields
}

func (o Options) ShardTag() int {
	if o.Shards > 0 { // ok: exactly the CacheTagged fields
		return 1
	}
	return 0
}

// SimConfig is the physics carrier.
type SimConfig struct {
	Seed    uint64
	Senders int
	Label   string
}

func buildGood(o Options) SimConfig {
	return SimConfig{Seed: o.Seed, Senders: o.Shards} // ok: physics and tagged fields may parameterize physics
}

// --- audit 2: Leaky/leakyKey — every failure mode ---------------------

type Leaky struct { // want `Leaky\.Extra has no cache-lineage class in the fact table` `cache-lineage fact table classifies Leaky\.Ghost but the struct has no such field`
	Bytes   int64
	Delay   int64
	Extra   float64 // the seeded mutation: a physics field nobody classified
	Shift   int
	Title   string
	Workers int
}

func leakyKey(l Leaky) string { // want `leakyKey misses result-affecting field\(s\) Delay of Leaky`
	return fmt.Sprintf("%d/%s/%d", l.Bytes, l.Title, l.Workers) // want `Leaky field Title is classified Presentation and must not enter leakyKey` `Leaky field Workers is classified Exempt and must not enter leakyKey`
}

func (l Leaky) BadTag() int { // want `BadTag misses CacheTagged field Shift of Leaky`
	_ = l.Title // want `Leaky field Title is classified Presentation and must not enter BadTag`
	return 0
}

func buildLeaky(l Leaky) SimConfig {
	cfg := SimConfig{
		Seed:    uint64(l.Bytes),
		Senders: l.Workers, // want `Leaky field Workers is classified Exempt but flows into physics carrier SimConfig`
		Label:   l.Title,   // want `Leaky field Title is classified Presentation but flows into physics carrier SimConfig`
	}
	cfg.Seed = uint64(l.Workers) // want `Leaky field Workers is classified Exempt but flows into physics carrier SimConfig`
	return cfg
}

// allowedLeak shows the reviewed-exception path.
func allowedLeak(l Leaky) SimConfig {
	//greenvet:allow cachelineage fixture: the label is display-only downstream
	return SimConfig{Label: l.Title}
}
