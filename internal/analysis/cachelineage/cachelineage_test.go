package cachelineage_test

import (
	"testing"

	"greenenvy/internal/analysis/analysistest"
	"greenenvy/internal/analysis/cachelineage"
)

// TestCachelineage runs the analyzer over stand-in option/spec types with
// a test-local fact table, exercising every rule: table/struct bijection
// (including the seeded un-keyed physics field Extra), canon and tag
// bijection, and Exempt/Presentation flow into a physics carrier.
func TestCachelineage(t *testing.T) {
	a := cachelineage.New([]cachelineage.Audit{
		{
			Struct:  "Options",
			Canon:   "goodKey",
			TagFunc: "ShardTag",
			Fields: map[string]cachelineage.Class{
				"Reps":    cachelineage.KeyPhysics,
				"Seed":    cachelineage.KeyPhysics,
				"Shards":  cachelineage.CacheTagged,
				"Workers": cachelineage.Exempt,
				"Verbose": cachelineage.Exempt,
			},
			Carriers: []string{"SimConfig"},
		},
		{
			Struct:  "Leaky",
			Canon:   "leakyKey",
			TagFunc: "BadTag",
			Fields: map[string]cachelineage.Class{
				"Bytes":   cachelineage.KeyPhysics,
				"Delay":   cachelineage.KeyPhysics,
				"Shift":   cachelineage.CacheTagged,
				"Title":   cachelineage.Presentation,
				"Workers": cachelineage.Exempt,
				"Ghost":   cachelineage.Exempt,
			},
			Carriers: []string{"SimConfig"},
		},
	})
	analysistest.Run(t, "testdata", a)
}
