// Package cachelineage statically audits the lineage between experiment
// option/spec structs and the cache identities their results are stored
// under. The contract (ccasweep.go's sweepKey, scenario's Digest) is that
// a canonicalization function must contain every result-affecting field
// and nothing else: a physics field missing from the key serves stale
// cache entries that look like real experimental findings, and an
// execution knob present in the key splits the cache and duplicates work.
// The dynamic audits (TestSweepKeyAuditsOptionsFields, the scenario digest
// tests) enforce this at test time; this analyzer moves the same fact
// table to build time, in the style of registryhygiene.
//
// Each Audit classifies every field of one struct:
//
//   - KeyPhysics: result-affecting; must be selected in the Canon function.
//   - CacheTagged: enters per-experiment cache ids through the TagFunc
//     (e.g. Options.Shards via ShardTag) instead of the canonical key;
//     must be selected in TagFunc and must not appear in Canon.
//   - Exempt: execution/persistence knob (Workers, CacheDir); must not
//     appear in Canon and must not flow into a physics carrier.
//   - Presentation: naming/metadata (Name, Section); same prohibitions as
//     Exempt, reported with presentation-specific wording.
//
// Four checks, each running in the packages where its subject resolves:
//
//  1. Completeness (declaring package): the fact table and the struct's
//     fields stay in bijection, so adding an un-keyed physics field — the
//     seeded mutation of the acceptance criteria — fails the build until
//     it is classified.
//  2. Canon bijection: the canonicalization function selects exactly the
//     KeyPhysics fields.
//  3. Tag bijection: TagFunc selects exactly the CacheTagged fields.
//  4. Taint-lite carrier flow: no Exempt or Presentation field selector
//     appears inside a composite literal (or field assignment) of a
//     physics-carrier type like testbed.Options or netsim.FatTreeConfig.
//
// Matching is by name (struct, function, and carrier names; carriers as
// "pkg.Type" or a bare in-package "Type"), so the golden testdata models
// the contract with stand-in types; the suite scopes the analyzer to the
// packages where the names mean the real thing.
//
// Suppress a reviewed exception with
// `//greenvet:allow cachelineage <reason>`.
package cachelineage

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"greenenvy/internal/analysis"
)

// Class is one field's cache-lineage classification.
type Class int

const (
	// KeyPhysics fields affect simulated results and must be in Canon.
	KeyPhysics Class = iota
	// CacheTagged fields enter cache ids through TagFunc, not Canon.
	CacheTagged
	// Exempt fields are execution/persistence knobs outside the lineage.
	Exempt
	// Presentation fields are naming/metadata outside the lineage.
	Presentation
)

func (c Class) String() string {
	switch c {
	case KeyPhysics:
		return "KeyPhysics"
	case CacheTagged:
		return "CacheTagged"
	case Exempt:
		return "Exempt"
	default:
		return "Presentation"
	}
}

// Audit is the fact table for one struct.
type Audit struct {
	// Struct is the audited struct type's name, resolved in each scoped
	// package (an alias like the root's Options resolves to the same
	// named type).
	Struct string
	// Canon is the canonicalization function: a function or method named
	// Canon with the struct as receiver or parameter.
	Canon string
	// TagFunc optionally names the function routing CacheTagged fields
	// into cache ids.
	TagFunc string
	// Fields classifies every field of Struct.
	Fields map[string]Class
	// Carriers are the physics-carrier types ("pkg.Type" or in-package
	// "Type") that Exempt/Presentation fields must not flow into.
	Carriers []string
}

// Analyzer audits the production fact table (facts.go).
var Analyzer = New(Audits)

// New builds the analyzer against specific audits (tests supply their own).
func New(audits []Audit) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "cachelineage",
		Doc:  "audit option/spec field lineage: physics fields in the cache key, presentation fields out",
		Run:  func(pass *analysis.Pass) (any, error) { return run(pass, audits) },
	}
}

func run(pass *analysis.Pass, audits []Audit) (any, error) {
	for _, a := range audits {
		st := resolveStruct(pass.Pkg, a.Struct)
		if st == nil {
			continue
		}
		checkCompleteness(pass, a, st)
		checkCanon(pass, a, st)
		checkTagFunc(pass, a, st)
		checkCarrierFlow(pass, a, st)
	}
	return nil, nil
}

// resolveStruct looks the audited struct up in the package scope and
// returns its named type (through any alias), or nil when the package has
// no such struct.
func resolveStruct(pkg *types.Package, name string) *types.Named {
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	named, ok := types.Unalias(obj.Type()).(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// checkCompleteness keeps the fact table and the struct's fields in
// bijection; it runs only in the struct's declaring package so the
// diagnostic lands on the declaration.
func checkCompleteness(pass *analysis.Pass, a Audit, named *types.Named) {
	if named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != pass.Pkg.Path() {
		return
	}
	spec := findTypeSpec(pass, a.Struct)
	if spec == nil {
		return
	}
	st := named.Underlying().(*types.Struct)
	have := map[string]bool{}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		have[f.Name()] = true
		if _, classified := a.Fields[f.Name()]; !classified {
			pass.Reportf(spec.Name.Pos(), "%s.%s has no cache-lineage class in the fact table: classify it KeyPhysics (and add it to %s), CacheTagged, Exempt, or Presentation before it can silently serve stale cache entries", a.Struct, f.Name(), a.Canon)
		}
	}
	for _, name := range sortedFields(a.Fields) {
		if !have[name] {
			pass.Reportf(spec.Name.Pos(), "cache-lineage fact table classifies %s.%s but the struct has no such field: prune the stale entry", a.Struct, name)
		}
	}
}

// checkCanon requires the canonicalization function to select exactly the
// KeyPhysics fields.
func checkCanon(pass *analysis.Pass, a Audit, named *types.Named) {
	fd := findFuncFor(pass, a.Canon, named)
	if fd == nil {
		return
	}
	selected := selectedFields(pass, fd, named)
	var missing []string
	for _, name := range sortedFields(a.Fields) {
		if a.Fields[name] == KeyPhysics && selected[name] == token.NoPos {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		pass.Reportf(fd.Name.Pos(), "%s misses result-affecting field(s) %s of %s: a physics field outside the canonical key serves stale cache entries", a.Canon, strings.Join(missing, ", "), a.Struct)
	}
	for _, name := range sortedFields(a.Fields) {
		class := a.Fields[name]
		if class == KeyPhysics || selected[name] == token.NoPos {
			continue
		}
		pass.Reportf(selected[name], "%s field %s is classified %s and must not enter %s: a non-physics field in the key splits the cache and duplicates work", a.Struct, name, class, a.Canon)
	}
}

// checkTagFunc requires TagFunc to select exactly the CacheTagged fields.
func checkTagFunc(pass *analysis.Pass, a Audit, named *types.Named) {
	if a.TagFunc == "" {
		return
	}
	fd := findFuncFor(pass, a.TagFunc, named)
	if fd == nil {
		return
	}
	selected := selectedFields(pass, fd, named)
	for _, name := range sortedFields(a.Fields) {
		class := a.Fields[name]
		switch {
		case class == CacheTagged && selected[name] == token.NoPos:
			pass.Reportf(fd.Name.Pos(), "%s misses CacheTagged field %s of %s: the field is declared to reach cache ids through this function", a.TagFunc, name, a.Struct)
		case class != CacheTagged && selected[name] != token.NoPos:
			pass.Reportf(selected[name], "%s field %s is classified %s and must not enter %s: only CacheTagged fields reach cache ids through the tag", a.Struct, name, class, a.TagFunc)
		}
	}
}

// checkCarrierFlow flags Exempt/Presentation field selectors inside
// composite literals or field assignments of physics-carrier types.
func checkCarrierFlow(pass *analysis.Pass, a Audit, named *types.Named) {
	info := pass.TypesInfo
	reported := map[token.Pos]bool{}
	flagIn := func(root ast.Expr, carrier string) {
		ast.Inspect(root, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name, ok := fieldOf(info, sel, named)
			if !ok || reported[sel.Pos()] {
				return true
			}
			switch class := a.Fields[name]; class {
			case Exempt, Presentation:
				reported[sel.Pos()] = true
				pass.Reportf(sel.Pos(), "%s field %s is classified %s but flows into physics carrier %s: either reclassify it KeyPhysics (and key it) or keep it out of simulation inputs", a.Struct, name, class, carrier)
			}
			return true
		})
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if carrier, ok := carrierName(info, info.TypeOf(n), a.Carriers); ok {
				for _, el := range n.Elts {
					flagIn(el, carrier)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if carrier, ok := carrierName(info, info.TypeOf(sel.X), a.Carriers); ok {
					flagIn(n.Rhs[i], carrier)
				}
			}
		}
		return true
	})
}

// carrierName matches t against the carrier list ("pkg.Type" by package
// and type name, bare "Type" by type name alone).
func carrierName(info *types.Info, t types.Type, carriers []string) (string, bool) {
	if t == nil {
		return "", false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	tname := named.Obj().Name()
	pname := ""
	if named.Obj().Pkg() != nil {
		pname = named.Obj().Pkg().Name()
	}
	for _, c := range carriers {
		if pkg, name, qualified := strings.Cut(c, "."); qualified {
			if name == tname && pkg == pname {
				return c, true
			}
		} else if c == tname {
			return c, true
		}
	}
	return "", false
}

// findTypeSpec locates the struct's type declaration in the package AST.
func findTypeSpec(pass *analysis.Pass, name string) *ast.TypeSpec {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, s := range gd.Specs {
				if ts, ok := s.(*ast.TypeSpec); ok && ts.Name.Name == name {
					return ts
				}
			}
		}
	}
	return nil
}

// findFuncFor locates the function or method declaration with the given
// name whose receiver or some parameter is the audited struct type.
func findFuncFor(pass *analysis.Pass, name string, named *types.Named) *ast.FuncDecl {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if sig.Recv() != nil && sameStruct(sig.Recv().Type(), named) {
				return fd
			}
			for i := 0; i < sig.Params().Len(); i++ {
				if sameStruct(sig.Params().At(i).Type(), named) {
					return fd
				}
			}
		}
	}
	return nil
}

// selectedFields collects every field of the audited struct selected in
// fd's body, mapped to the first selection position.
func selectedFields(pass *analysis.Pass, fd *ast.FuncDecl, named *types.Named) map[string]token.Pos {
	info := pass.TypesInfo
	out := map[string]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if name, ok := fieldOf(info, sel, named); ok && out[name] == token.NoPos {
			out[name] = sel.Pos()
		}
		return true
	})
	return out
}

// fieldOf reports the field name a selector reads off the audited struct,
// or ok=false for methods and selections on other types.
func fieldOf(info *types.Info, sel *ast.SelectorExpr, named *types.Named) (string, bool) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	if !sameStruct(s.Recv(), named) {
		return "", false
	}
	return s.Obj().Name(), true
}

// sameStruct reports whether t (through pointers and aliases) is the
// audited named type.
func sameStruct(t types.Type, named *types.Named) bool {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == named.Obj()
}

// sortedFields returns the fact table's field names in sorted order for
// deterministic diagnostics.
func sortedFields(fields map[string]Class) []string {
	names := make([]string, 0, len(fields))
	for n := range fields {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
