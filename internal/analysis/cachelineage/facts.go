package cachelineage

// Audits is the shared fact table between static and dynamic enforcement
// of cache-key lineage, the compile-time face of the classification that
// TestSweepKeyAuditsOptionsFields (root package) and the scenario digest
// tests enforce dynamically:
//
//   - registry.Options (aliased as the root package's Options): Reps,
//     Scale, and Seed are the result-affecting sweep inputs and form
//     sweepKey; Shards selects a separate cache lineage for fat-tree
//     experiments through ShardTag ("/sh=<bit>" in their cache ids) but
//     deliberately stays out of sweepKey — the dumbbell sweep is a single
//     partition and byte-identical for every Shards value; Workers,
//     CacheDir, NoCache, and Verbose change wall-clock, persistence, and
//     logging only and must never reach a simulation input.
//   - scenario.Spec: Preset, Topology, Flows, Loads, and Sweep are the
//     physics a spec digest is computed over (digestPayload); Name,
//     Description, Section, and Order are presentation — retitling an
//     experiment must not discard its cached repetitions, so they must
//     stay out of Digest and out of every compiled simulation input.
//
// The carrier lists name the structs that parameterize actual simulation
// physics; an Exempt or Presentation field flowing into one is a lineage
// leak even if the canonical key is currently right.
var Audits = []Audit{
	{
		Struct:  "Options",
		Canon:   "sweepKey",
		TagFunc: "ShardTag",
		Fields: map[string]Class{
			"Reps":     KeyPhysics,
			"Scale":    KeyPhysics,
			"Seed":     KeyPhysics,
			"Shards":   CacheTagged,
			"Workers":  Exempt,
			"CacheDir": Exempt,
			"NoCache":  Exempt,
			"Verbose":  Exempt,
		},
		Carriers: []string{"testbed.Options", "netsim.DumbbellConfig", "netsim.FatTreeConfig", "iperf.Spec"},
	},
	{
		Struct: "Spec",
		Canon:  "Digest",
		Fields: map[string]Class{
			"Preset":      KeyPhysics,
			"Topology":    KeyPhysics,
			"Flows":       KeyPhysics,
			"Loads":       KeyPhysics,
			"Sweep":       KeyPhysics,
			"Name":        Presentation,
			"Description": Presentation,
			"Section":     Presentation,
			"Order":       Presentation,
		},
		Carriers: []string{"testbed.Options", "netsim.DumbbellConfig", "netsim.FatTreeConfig", "iperf.Spec"},
	},
}
