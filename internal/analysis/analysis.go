// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// It exists because this module's determinism and hot-path guarantees —
// byte-identical same-seed sweeps, replayable cache entries, a
// zero-allocation event loop — are contracts worth enforcing at build time,
// and the module deliberately has no third-party dependencies. The kernel
// mirrors the upstream API shape closely enough that the analyzers under
// internal/analysis/... would port to x/tools mechanically.
//
// Two source directives interact with the kernel:
//
//	//greenvet:allow <analyzer>[,<analyzer>...] <reason>
//
// on the flagged line (or the line immediately above it) suppresses the
// named analyzers' diagnostics there. The reason is mandatory by
// convention: an allow is a reviewed claim that the construct is safe
// (e.g. an amortized allocation on a pool refill path).
//
//	//greenvet:hotpath
//
// in a function's doc comment marks it as a hot-path root for the
// hotpathalloc analyzer (see that package).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects the Pass's package and reports
// findings through pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run performs the analysis. The returned value is unused by the
	// driver; it exists to keep the upstream signature.
	Run func(*Pass) (any, error)
}

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is the reporting analyzer's name (filled by the kernel).
	Analyzer string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Run executes one analyzer over one package and returns its diagnostics
// with //greenvet:allow suppressions applied, sorted by position.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	if _, err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	allowed := allowDirectives(fset, files)
	var kept []Diagnostic
	for _, d := range pass.diags {
		if !allowed.covers(fset.Position(d.Pos), a.Name) {
			kept = append(kept, d)
		}
	}
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// allowSet maps file → line → analyzer names suppressed on that line.
type allowSet map[string]map[int]map[string]bool

// covers reports whether an allow directive on the diagnostic's line or the
// line immediately above it names the analyzer.
func (s allowSet) covers(pos token.Position, analyzer string) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer] || lines[pos.Line-1][analyzer]
}

const allowPrefix = "greenvet:allow"

// allowDirectives scans every comment for //greenvet:allow directives.
func allowDirectives(fset *token.FileSet, files []*ast.File) allowSet {
	set := allowSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[pos.Filename] = lines
				}
				names := lines[pos.Line]
				if names == nil {
					names = map[string]bool{}
					lines[pos.Line] = names
				}
				for _, n := range strings.Split(fields[0], ",") {
					names[strings.TrimSpace(n)] = true
				}
			}
		}
	}
	return set
}

// Inspect walks every file in the pass in depth-first order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
