// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// It exists because this module's determinism and hot-path guarantees —
// byte-identical same-seed sweeps, replayable cache entries, a
// zero-allocation event loop — are contracts worth enforcing at build time,
// and the module deliberately has no third-party dependencies. The kernel
// mirrors the upstream API shape closely enough that the analyzers under
// internal/analysis/... would port to x/tools mechanically.
//
// Three source directives interact with the kernel:
//
//	//greenvet:allow <analyzer>[,<analyzer>...] <reason>
//
// on the flagged line (or the line immediately above it) suppresses the
// named analyzers' diagnostics there. The reason is mandatory by
// convention: an allow is a reviewed claim that the construct is safe
// (e.g. an amortized allocation on a pool refill path). Every allow is a
// standing liability, so the kernel also does suppression accounting:
// RunWithUsage records which directives actually swallowed a diagnostic,
// and Allows enumerates every directive in a package, letting the greenvet
// driver report stale allows that no longer suppress anything.
//
//	//greenvet:hotpath
//
// in a function's doc comment marks it as a hot-path root for the
// hotpathalloc analyzer (see that package).
//
//	//greenvet:shardboundary
//
// in a function's doc comment marks it as a reviewed partition-boundary
// builder, the only place the shardsafety analyzer permits Link.SetRemote
// and cross-shard conduit construction (see that package).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects the Pass's package and reports
// findings through pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run performs the analysis. The returned value is unused by the
	// driver; it exists to keep the upstream signature.
	Run func(*Pass) (any, error)
}

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is the reporting analyzer's name (filled by the kernel).
	Analyzer string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Run executes one analyzer over one package and returns its diagnostics
// with //greenvet:allow suppressions applied, sorted by position.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	return RunWithUsage(a, fset, files, pkg, info, nil)
}

// AllowKey identifies one analyzer name claimed by one allow directive:
// the directive's file and line plus the analyzer it names. It is the unit
// of suppression accounting — a directive naming two analyzers is two keys.
type AllowKey struct {
	File     string
	Line     int
	Analyzer string
}

// Allow is one parsed //greenvet:allow claim, positioned for reporting.
type Allow struct {
	AllowKey
	Pos token.Pos
}

// RunWithUsage is Run plus suppression accounting: every allow directive
// that swallows a diagnostic has its key recorded in used (when non-nil).
// The greenvet driver aggregates usage across the suite to report stale
// directives that no longer suppress anything.
func RunWithUsage(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, used map[AllowKey]bool) ([]Diagnostic, error) {
	pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	if _, err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	allowed := allowDirectives(fset, files)
	var kept []Diagnostic
	for _, d := range pass.diags {
		if key, ok := allowed.covering(fset.Position(d.Pos), a.Name); ok {
			if used != nil {
				used[key] = true
			}
			continue
		}
		kept = append(kept, d)
	}
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// Allows enumerates every //greenvet:allow claim in files, one entry per
// analyzer name mentioned, in file order.
func Allows(fset *token.FileSet, files []*ast.File) []Allow {
	var out []Allow
	forEachAllow(fset, files, func(a Allow) { out = append(out, a) })
	return out
}

// allowSet maps file → line → analyzer names suppressed on that line.
type allowSet map[string]map[int]map[string]bool

// covering returns the key of the allow directive (same line first, then
// the line immediately above) that names the analyzer at pos, if any.
func (s allowSet) covering(pos token.Position, analyzer string) (AllowKey, bool) {
	lines := s[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if lines[line][analyzer] {
			return AllowKey{File: pos.Filename, Line: line, Analyzer: analyzer}, true
		}
	}
	return AllowKey{}, false
}

const allowPrefix = "greenvet:allow"

// forEachAllow invokes fn for every analyzer name claimed by every
// //greenvet:allow directive, in file order.
func forEachAllow(fset *token.FileSet, files []*ast.File, fn func(Allow)) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, n := range strings.Split(fields[0], ",") {
					n = strings.TrimSpace(n)
					if n == "" {
						continue
					}
					fn(Allow{AllowKey: AllowKey{File: pos.Filename, Line: pos.Line, Analyzer: n}, Pos: c.Pos()})
				}
			}
		}
	}
}

// allowDirectives scans every comment for //greenvet:allow directives.
func allowDirectives(fset *token.FileSet, files []*ast.File) allowSet {
	set := allowSet{}
	forEachAllow(fset, files, func(a Allow) {
		lines := set[a.File]
		if lines == nil {
			lines = map[int]map[string]bool{}
			set[a.File] = lines
		}
		names := lines[a.Line]
		if names == nil {
			names = map[string]bool{}
			lines[a.Line] = names
		}
		names[a.Analyzer] = true
	})
	return set
}

// HasDirective reports whether doc contains the directive as a line of its
// own (the shared shape of //greenvet:hotpath and //greenvet:shardboundary).
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// Inspect walks every file in the pass in depth-first order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
