package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"greenenvy/internal/analysis"
)

const allowSrc = `package fixture

func a() int {
	x := 1 //greenvet:allow toy covered same line
	//greenvet:allow toy covers the line below
	y := 2
	//greenvet:allow toy,other two analyzers, one use
	z := 3
	w := 4 //greenvet:allow ghost never fires
	return x + y + z + w
}
`

// load typechecks one import-free source string.
func load(t *testing.T, src string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg, err := (&types.Config{}).Check("fixture", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}, pkg, info
}

// toyAnalyzer reports one diagnostic per short-variable definition.
var toyAnalyzer = &analysis.Analyzer{
	Name: "toy",
	Doc:  "flag every := for the kernel tests",
	Run: func(pass *analysis.Pass) (any, error) {
		pass.Inspect(func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
				pass.Reportf(as.Pos(), "definition")
			}
			return true
		})
		return nil, nil
	},
}

func TestRunWithUsageRecordsSuppressions(t *testing.T) {
	fset, files, pkg, info := load(t, allowSrc)
	used := map[analysis.AllowKey]bool{}
	diags, err := analysis.RunWithUsage(toyAnalyzer, fset, files, pkg, info, used)
	if err != nil {
		t.Fatal(err)
	}
	// x (line 4), y (line 6), z (line 8) are suppressed; w (line 9) has
	// only a ghost-analyzer allow and must be reported.
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly the unsuppressed definition", diags)
	}
	if pos := fset.Position(diags[0].Pos); pos.Line != 9 {
		t.Fatalf("surviving diagnostic on line %d, want 9", pos.Line)
	}
	wantUsed := []analysis.AllowKey{
		{File: "fixture.go", Line: 4, Analyzer: "toy"},
		{File: "fixture.go", Line: 5, Analyzer: "toy"},
		{File: "fixture.go", Line: 7, Analyzer: "toy"},
	}
	if len(used) != len(wantUsed) {
		t.Fatalf("used = %v, want %v", used, wantUsed)
	}
	for _, k := range wantUsed {
		if !used[k] {
			t.Errorf("used is missing %+v (have %v)", k, used)
		}
	}
}

func TestAllowsEnumeratesEveryClaim(t *testing.T) {
	fset, files, _, _ := load(t, allowSrc)
	var got []string
	for _, a := range analysis.Allows(fset, files) {
		got = append(got, a.File+":"+itoa(a.Line)+":"+a.Analyzer)
	}
	want := []string{
		"fixture.go:4:toy",
		"fixture.go:5:toy",
		"fixture.go:7:toy",
		"fixture.go:7:other",
		"fixture.go:9:ghost",
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("Allows = %v, want %v", got, want)
	}
}

func TestRunLeavesUsageUntracked(t *testing.T) {
	fset, files, pkg, info := load(t, allowSrc)
	diags, err := analysis.Run(toyAnalyzer, fset, files, pkg, info)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("Run diagnostics = %v, want 1", diags)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
