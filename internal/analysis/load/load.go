// Package load turns Go package patterns into parsed, type-checked
// packages using only the standard library and the go tool itself.
//
// Instead of golang.org/x/tools/go/packages (which this module deliberately
// does not depend on), it shells out to `go list -export -deps -json` — the
// same mechanism go/packages uses under the hood — to obtain, for every
// package in the transitive closure of the requested patterns, the list of
// source files and the path to compiler export data in the build cache.
// Target packages are parsed from source and type-checked with the
// standard gc importer reading dependency export data, so the resulting
// *types.Info is exactly what the compiler saw.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one parsed, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// NewInfo returns a types.Info with every map the analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// Packages loads the packages matched by patterns, rooted at dir (the
// module directory; "" means the current directory). Standard-library
// packages matched by a pattern are skipped: the analyzers only ever run
// over this module's code.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// Pass 1: which import paths did the patterns match?
	out, err := runGoList(dir, append([]string{"list", "-e", "-json=ImportPath,Standard"}, patterns...))
	if err != nil {
		return nil, err
	}
	matched := map[string]bool{}
	if err := decodeStream(out, func(p listPackage) {
		if !p.Standard {
			matched[p.ImportPath] = true
		}
	}); err != nil {
		return nil, err
	}

	// Pass 2: export data and sources for the full dependency closure.
	out, err = runGoList(dir, append([]string{"list", "-export", "-deps", "-json=ImportPath,Export,Dir,GoFiles,Standard,Error"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []listPackage
	if err := decodeStream(out, func(p listPackage) {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if matched[p.ImportPath] {
			targets = append(targets, p)
		}
	}); err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, func(path string) (string, bool) {
		e, ok := exports[path]
		return e, ok
	})

	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", t.ImportPath, t.Error.Err)
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("load: %w", err)
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		info := NewInfo()
		conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("load: typecheck %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}

// ExportImporter returns a types.Importer that resolves import paths
// through compiler export data files located by resolve (import path →
// export data file). The analysistest harness and the vettool driver reuse
// it with their own resolution tables.
func ExportImporter(fset *token.FileSet, resolve func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := resolve(path)
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(e)
	})
}

// StdlibExports runs `go list -export` over the given standard-library
// import paths (plus their dependencies) and returns path → export data
// file. The analysistest harness uses it to type-check testdata packages
// that import only the standard library.
func StdlibExports(paths ...string) (map[string]string, error) {
	if len(paths) == 0 {
		return map[string]string{}, nil
	}
	out, err := runGoList("", append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, paths...))
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	if err := decodeStream(out, func(p listPackage) {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}); err != nil {
		return nil, err
	}
	return exports, nil
}

// runGoList executes the go tool and returns stdout, folding stderr into
// the error on failure.
func runGoList(dir string, args []string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, errors.New("load: go list: " + msg)
	}
	return stdout.Bytes(), nil
}

// decodeStream decodes the concatenated-JSON stream `go list -json` emits.
func decodeStream(data []byte, visit func(listPackage)) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("load: decode go list output: %w", err)
		}
		visit(p)
	}
}
