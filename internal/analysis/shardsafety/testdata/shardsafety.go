// Package shardsafety_testdata models the sharded engine's vocabulary with
// stand-in types (the analyzer matches by type and function name, so the
// contract is testable without importing the real engine).
package shardsafety_testdata

// --- stand-in engine vocabulary ---------------------------------------

type Time int64

type Engine struct{ now Time }

func (e *Engine) Now() Time               { return e.now }
func (e *Engine) Run()                    {}
func (e *Engine) RunUntil(t Time)         {}
func (e *Engine) RunBelow(t Time) Time    { return t }
func (e *Engine) After(d Time, fn func()) {}

type Packet struct{ Seq int }

type Conduit struct {
	eng   *Engine
	delay Time
	buf   []any
}

func (c *Conduit) Send(at Time, item any) { c.buf = append(c.buf, item) }
func (c *Conduit) SendAfterDelay(item any) {
	c.Send(c.eng.Now()+c.delay, item) // anchored at the source clock: ok
}

// NewConduit is the stand-in cross-shard channel constructor.
func NewConduit(g *ShardGroup, src, dst int, delay Time, fn func(any)) *Conduit {
	return &Conduit{delay: delay}
}

type Link struct {
	Delay  Time
	remote *Conduit
}

func (l *Link) SetRemote(c *Conduit) { l.remote = c }

type Shard struct{ eng *Engine }

type ShardGroup struct{ shards []*Shard }

func (g *ShardGroup) Engine(i int) *Engine { return g.shards[i].eng }

// Run owns the worker pool: goroutines are legitimate here.
func (g *ShardGroup) Run(deadline Time, workers int) {
	for w := 0; w < workers; w++ {
		go g.work() // ok: Run owns worker lifecycle
	}
}

func (g *ShardGroup) work() {
	for _, s := range g.shards {
		s.eng.RunBelow(10) // ok: bounded batch primitive
	}
}

// --- rule 4: LBTS escapes in round code --------------------------------

func (g *ShardGroup) badRound(s *Shard) {
	go g.work()       // want `round code \(badRound\): spawning a goroutine`
	s.eng.Run()       // want `round code \(badRound\): Engine\.Run dispatches events past the LBTS floor`
	s.eng.RunUntil(5) // want `round code \(badRound\): Engine\.RunUntil dispatches events past the LBTS floor`
}

func (c *Conduit) badDrain(e *Engine) {
	defer func() {
		go e.Run() // want `round code \(badDrain\): spawning a goroutine` `round code \(badDrain\): Engine\.Run dispatches`
	}()
}

// freeFunc is not round code: the same constructs are fine at top level.
func freeFunc(e *Engine) {
	go e.Run()
	e.RunUntil(5)
}

// --- rules 1 and 2: partition-boundary builders ------------------------

// bindAcross is the reviewed partition cut.
//
//greenvet:shardboundary
func bindAcross(g *ShardGroup, lnk *Link, src, dst int) {
	lnk.SetRemote(NewConduit(g, src, dst, lnk.Delay, func(any) {})) // ok: inside a boundary builder
}

func sneakyRewire(g *ShardGroup, lnk *Link) {
	c := NewConduit(g, 0, 1, lnk.Delay, func(any) {}) // want `NewConduit outside a //greenvet:shardboundary function`
	lnk.SetRemote(c)                                  // want `Link\.SetRemote outside a //greenvet:shardboundary function`
}

// --- rule 3: Send due times anchored at the source clock ---------------

func sendShapes(c *Conduit, e *Engine, when Time) {
	c.Send(e.Now()+c.delay, 1) // ok: anchored
	c.Send(c.delay+e.Now(), 2) // ok: either operand order
	c.SendAfterDelay(3)        // ok: the helper anchors internally
	c.Send(when, 4)            // want `Conduit\.Send due time must be anchored at the source shard's clock`
	c.Send(42, 5)              // want `Conduit\.Send due time must be anchored at the source shard's clock`
	c.Send(e.Now()*2, 6)       // want `Conduit\.Send due time must be anchored at the source shard's clock`
}

// --- rule 5: shard-scoped closures ------------------------------------

type Meter struct{ j float64 }

func (m *Meter) Sync() {}

type Client struct{ done bool }

func (c *Client) Done() bool { return c.done }

type ThroughputMonitor struct{ samples int }

func (m *ThroughputMonitor) Observe(flow, n int) { m.samples++ }

type Testbed struct {
	Meters  []*Meter
	clients []*Client
	Monitor *ThroughputMonitor
	group   *ShardGroup
}

// runSharded models the per-shard sampler: closures built after resolving
// a shard's engine run as that shard's event callbacks.
func (tb *Testbed) runSharded(deadline Time) {
	meterIdx := [][]int{{0}, {1}}
	for s := 0; s < 2; s++ {
		s := s
		eng := tb.group.Engine(s)
		sample := func() {
			for _, i := range meterIdx[s] { // ok: per-shard index set
				tb.Meters[i].Sync()
			}
		}
		eng.After(10, sample)
	}
	// Collection after quiesce happens at top level, which is fine:
	for _, c := range tb.clients {
		_ = c.Done()
	}
	tb.Monitor.Observe(0, 1)
}

// badSampler writes every shard's meters — a direct cross-shard touch —
// and samples the fabric-wide monitor from one shard's callback.
func (tb *Testbed) badSampler() {
	eng := tb.group.Engine(0)
	eng.After(10, func() {
		for _, m := range tb.Meters { // want `shard-scoped closure \(badSampler\): ranging over testbed-global Meters`
			m.Sync()
		}
		tb.Monitor.Observe(0, 1) // want `shard-scoped closure \(badSampler\): the ThroughputMonitor samples flows fabric-wide`
	})
}

// localMonitor exercises the method-selector arm: a monitor reached
// through a local still cannot be touched from a shard's callback.
func (tb *Testbed) localMonitor(m *ThroughputMonitor) {
	eng := tb.group.Engine(1)
	eng.After(10, func() {
		m.Observe(1, 2) // want `shard-scoped closure \(localMonitor\): the ThroughputMonitor samples flows fabric-wide`
	})
}

// notShardScoped never resolves a per-shard engine, so its closures are
// ordinary monolithic callbacks.
func (tb *Testbed) notShardScoped(e *Engine) {
	e.After(10, func() {
		for _, m := range tb.Meters {
			m.Sync()
		}
		tb.Monitor.Observe(0, 1)
	})
}

// allowedEscape shows the reviewed-exception path.
func (tb *Testbed) allowedEscape() {
	eng := tb.group.Engine(0)
	eng.After(10, func() {
		//greenvet:allow shardsafety collection runs post-quiesce in this fixture
		tb.Monitor.Observe(0, 1)
	})
}
