package shardsafety_test

import (
	"testing"

	"greenenvy/internal/analysis/analysistest"
	"greenenvy/internal/analysis/shardsafety"
)

// TestShardsafety runs the analyzer over a stand-in model of the sharded
// engine, exercising every rule: boundary-confined SetRemote/NewConduit,
// clock-anchored Send due times, LBTS escapes in round code, and
// cross-shard state touches from shard-scoped closures (including the
// seeded direct cross-shard meter sweep in badSampler).
func TestShardsafety(t *testing.T) {
	analysistest.Run(t, "testdata", shardsafety.Analyzer)
}
