// Package shardsafety statically enforces the sharded engine's isolation
// discipline: mutable state owned by one shard's Engine may only be
// touched cross-shard through Conduit send/receive or the control-conduit
// mesh (DESIGN §6). The conservative-synchronization protocol is only
// sound if every cross-partition interaction pays the conduit's lookahead
// and arrives through the portal event — a direct read or write of another
// shard's state races, and worse, races *deterministically enough* to look
// like a real experimental result.
//
// The analyzer matches the engine's vocabulary by type and function name
// (Conduit, ShardGroup, Shard, Engine, Link, Testbed, ThroughputMonitor),
// so the golden testdata can model the contract with stand-in types; the
// suite scopes it to the packages where those names mean the real thing
// (internal/sim, internal/netsim, internal/testbed). Five rules:
//
//  1. Link.SetRemote may only be called inside a function whose doc
//     comment carries //greenvet:shardboundary: diverting a link's
//     propagation through a conduit is exactly the partition cut, and the
//     cut is built in one reviewed place per topology.
//  2. NewConduit likewise: conduits pin the lookahead graph at
//     construction, so ad-hoc conduits built outside a reviewed boundary
//     function silently change the synchronization schedule.
//  3. A raw Conduit.Send's due time must be anchored at the source
//     shard's own clock: the first argument must have the shape
//     `<src>.Now() + <delay>` (or the call site should use
//     SendAfterDelay). Absolute or foreign-clock timestamps are how LBTS
//     monotonicity breaks.
//  4. Inside the scheduler's own round code — methods of ShardGroup,
//     Shard, or Conduit other than the top-level Run — no new goroutines
//     (`go` statements) and no nested Engine.Run/Engine.RunUntil calls:
//     both would dispatch events past the published LBTS floor.
//     RunBelow, the bounded batch primitive, is the sanctioned way to
//     advance a shard.
//  5. Functions that resolve per-shard engines via ShardGroup.Engine are
//     shard-scoped: the closures they build run as one shard's event
//     callbacks. Inside those closures, touching the fabric-wide
//     ThroughputMonitor or ranging over a Testbed-global slice reads
//     state owned by every shard at once — per-shard index sets
//     (meterIdx[s], senders[s]) are the sanctioned pattern.
//
// Suppress a reviewed exception with
// `//greenvet:allow shardsafety <reason>`.
package shardsafety

import (
	"go/ast"
	"go/token"
	"go/types"

	"greenenvy/internal/analysis"
)

// Analyzer is the shardsafety pass.
var Analyzer = &analysis.Analyzer{
	Name: "shardsafety",
	Doc:  "enforce shard isolation: conduit-only cross-shard traffic, reviewed partition boundaries, LBTS-safe round code",
	Run:  run,
}

// BoundaryDirective marks a reviewed partition-boundary builder when it
// appears on its own line of the function's doc comment: the only place
// rules 1 and 2 permit SetRemote and NewConduit.
const BoundaryDirective = "//greenvet:shardboundary"

// roundTypes are the receiver types whose methods form the scheduler's
// round code (rule 4).
var roundTypes = map[string]bool{"ShardGroup": true, "Shard": true, "Conduit": true}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	boundary := analysis.HasDirective(fd.Doc, BoundaryDirective)
	round := roundMethod(info, fd)
	shardScoped := callsShardEngine(info, fd.Body)

	var funcLitDepth int
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			funcLitDepth++
			ast.Inspect(n.Body, visit)
			funcLitDepth--
			return false
		case *ast.GoStmt:
			if round {
				pass.Reportf(n.Pos(), "round code (%s): spawning a goroutine inside the scheduler's round can dispatch events past the LBTS floor; only ShardGroup.Run owns worker lifecycle", fd.Name.Name)
			}
		case *ast.RangeStmt:
			if shardScoped && funcLitDepth > 0 {
				checkShardScopedRange(pass, fd, n)
			}
		case *ast.SelectorExpr:
			if shardScoped && funcLitDepth > 0 {
				checkMonitorTouch(pass, fd, n)
			}
		case *ast.CallExpr:
			checkCall(pass, fd, n, boundary, round)
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
}

func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, boundary, round bool) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	recv := recvTypeName(fn)
	switch {
	case fn.Name() == "SetRemote" && recv == "Link":
		if !boundary {
			pass.Reportf(call.Pos(), "Link.SetRemote outside a %s function: diverting propagation through a conduit is the partition cut and must live in a reviewed boundary builder", BoundaryDirective)
		}
	case fn.Name() == "NewConduit" && recv == "":
		if !boundary {
			pass.Reportf(call.Pos(), "NewConduit outside a %s function: conduits pin the lookahead graph and must be built by a reviewed boundary builder", BoundaryDirective)
		}
	case fn.Name() == "Send" && recv == "Conduit":
		if len(call.Args) >= 1 && !anchoredAtNow(call.Args[0]) {
			pass.Reportf(call.Args[0].Pos(), "Conduit.Send due time must be anchored at the source shard's clock (`<src>.Now() + <delay>`, or use SendAfterDelay); a foreign or absolute timestamp breaks LBTS monotonicity")
		}
	case round && recv == "Engine" && (fn.Name() == "Run" || fn.Name() == "RunUntil"):
		pass.Reportf(call.Pos(), "round code (%s): Engine.%s dispatches events past the LBTS floor; use RunBelow with the round's limit", fd.Name.Name, fn.Name())
	}
}

// checkShardScopedRange flags ranging over a Testbed-global slice from a
// closure built in a shard-scoped function.
func checkShardScopedRange(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	sel, ok := ast.Unparen(rs.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if typeName(pass.TypesInfo, sel.X) == "Testbed" {
		pass.Reportf(rs.X.Pos(), "shard-scoped closure (%s): ranging over testbed-global %s reads state owned by other shards; iterate a per-shard index set instead", fd.Name.Name, sel.Sel.Name)
	}
}

// checkMonitorTouch flags any fabric-wide ThroughputMonitor access from a
// closure built in a shard-scoped function.
func checkMonitorTouch(pass *analysis.Pass, fd *ast.FuncDecl, sel *ast.SelectorExpr) {
	info := pass.TypesInfo
	// A monitor-typed selector (tb.Monitor) and a method selector on it
	// (tb.Monitor.Observe) would double-report the same construct; the
	// method arm skips bases the first arm already flags as selectors,
	// and covers the bases it cannot see (monitor-typed locals).
	monitorTyped := typeName(info, sel) == "ThroughputMonitor"
	_, baseIsSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	monitorMethod := recvTypeName(calleeOf(info, sel)) == "ThroughputMonitor" &&
		!(baseIsSel && typeName(info, sel.X) == "ThroughputMonitor")
	if monitorTyped || monitorMethod {
		pass.Reportf(sel.Pos(), "shard-scoped closure (%s): the ThroughputMonitor samples flows fabric-wide and cannot be touched from one shard's callback", fd.Name.Name)
	}
}

// calleeOf resolves the method a selector refers to, if any.
func calleeOf(info *types.Info, sel *ast.SelectorExpr) *types.Func {
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	return fn
}

// anchoredAtNow reports whether e has the shape `<x>.Now() + <y>` (either
// operand order), the only statically safe due-time for a raw Send.
func anchoredAtNow(e ast.Expr) bool {
	b, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || b.Op != token.ADD {
		return false
	}
	return isNowCall(b.X) || isNowCall(b.Y)
}

func isNowCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Now"
}

// roundMethod reports whether fd is a method of one of the scheduler's
// round types, excluding the top-level Run (which legitimately owns the
// worker goroutines).
func roundMethod(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Name.Name == "Run" {
		return false
	}
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	return roundTypes[recvTypeName(fn)]
}

// callsShardEngine reports whether body resolves a per-shard engine via
// ShardGroup.Engine — the marker of a shard-scoped function (rule 5).
func callsShardEngine(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(info, call)
		if fn != nil && fn.Name() == "Engine" && recvTypeName(fn) == "ShardGroup" {
			found = true
		}
		return true
	})
	return found
}

// recvTypeName returns the name of fn's receiver's named type ("" for
// package-level functions), after pointer indirection.
func recvTypeName(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return namedName(sig.Recv().Type())
}

// typeName returns the name of e's named type after pointer indirection,
// or "".
func typeName(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	return namedName(tv.Type)
}

func namedName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Alias:
		return t.Obj().Name()
	}
	return ""
}
