package scenario

import (
	"fmt"
	"strings"

	"greenenvy/internal/iperf"
	"greenenvy/internal/netsim"
	"greenenvy/internal/plot"
	"greenenvy/internal/registry"
	"greenenvy/internal/sim"
	"greenenvy/internal/testbed"
)

// The literal-flows preset runs exactly the flows the spec lists — each with
// its own CCA, size, schedule, pacing, and fair-queue weight — once per
// repetition, and reports per-flow throughput alongside the run's sender
// energy and Jain fairness. It is the escape hatch the sweep presets build
// on: anything the testbed can express (heterogeneous RTTs, mixed CCAs,
// chained starts, background load, AQM bottlenecks) fits here.

// flowRow is one flow's aggregated outcome.
type flowRow struct {
	Path    string
	CCA     string
	Bytes   uint64
	StartMs float64
	Gbps    float64
	Seconds float64
}

// flowsResult is the compiled literal-flows outcome.
type flowsResult struct {
	Title    string
	Rows     []flowRow
	EnergyJ  registry.Agg
	PerGB    float64
	Jain     float64
	Seconds  float64
	GBytes   float64
	QueueKnd string
}

func runFlows(spec Spec, prefix string) func(registry.Options) (registry.Result, error) {
	return func(o registry.Options) (registry.Result, error) {
		o, err := o.WithDefaults()
		if err != nil {
			return nil, err
		}
		t := spec.Topology

		// Resolve each flow's size: gbit scales with Options.Scale exactly
		// like the handwritten figures' paper-sized transfers; bytes is
		// absolute.
		sizes := make([]uint64, len(spec.Flows))
		var totalBytes uint64
		var latestStart sim.Duration
		for i, f := range spec.Flows {
			if f.Gbit > 0 {
				sizes[i] = uint64(f.Gbit * float64(registry.PaperGbit) * o.Scale)
				if sizes[i] == 0 {
					return nil, errf("flow %d: scale too small", i)
				}
			} else {
				sizes[i] = f.Bytes
			}
			totalBytes += sizes[i]
			if d := msToDur(f.StartMs + f.DurationMs); d > latestStart {
				latestStart = d
			}
		}
		deadline := registry.DeadlineFor(totalBytes) + latestStart

		id := fmt.Sprintf("%s/flows=%d/total=%d", prefix, len(spec.Flows), totalBytes)
		if t.Kind == KindFatTree {
			id = fmt.Sprintf("%s/ecmp=%d/sh=%d", id, o.Seed, o.ShardTag())
		}

		metrics := []registry.Metric{registry.SenderJoules, registry.RunSeconds, jainOverFlows}
		for i := range spec.Flows {
			i := i
			metrics = append(metrics,
				func(r testbed.RunResult) float64 { return r.Reports[i].Bps },
				func(r testbed.RunResult) float64 { return r.Reports[i].Seconds })
		}

		aggs, err := registry.RunCell(o, id, func(seed uint64) (*testbed.Testbed, error) {
			plan := testbed.Plan{}
			var opts testbed.Options
			if t.Kind == KindDumbbell {
				cfg := dumbbellConfig(t)
				cfg.BottleneckQueue = buildQueue(t.Queue, cfg.BufferBytes, cfg.MarkBytes, cfg.BottleneckBps, seed)
				plan.Dumbbell = &cfg
				opts = testbed.Options{Senders: t.Senders, Seed: seed}
			} else {
				cfg := fatTreeConfig(t, t.K)
				cfg.ECMPSeed = o.Seed
				if t.Queue.Kind != "droptail" {
					q := t.Queue
					cfg.NewQueue = func(port netsim.FatTreePort) netsim.Queue {
						if port.Tier == netsim.TierHostUp {
							return nil // the host NIC keeps its unbuffered default
						}
						return buildQueue(q, cfg.BufferBytes, cfg.MarkBytes, tierRate(cfg, port.Tier), seed)
					}
				}
				plan.FatTree = &cfg
				opts = testbed.Options{Seed: seed, Shards: o.Shards}
			}
			for i, f := range spec.Flows {
				pf := testbed.PlanFlow{
					Sender: f.Sender,
					Src:    netsim.NodeID(f.Src),
					Dst:    netsim.NodeID(f.Dst),
					Spec: iperf.Spec{
						Bytes:     sizes[i],
						CCA:       f.CCA,
						TargetBps: f.TargetBps,
						StartAt:   sim.Time(msToDur(f.StartMs)),
						Duration:  msToDur(f.DurationMs),
					},
					Weight:    f.Weight,
					SetWeight: f.Weight > 0,
				}
				if f.After != nil {
					pf.After, pf.Chained = *f.After, true
				}
				plan.Flows = append(plan.Flows, pf)
			}
			for _, l := range spec.Loads {
				plan.Loads = append(plan.Loads, testbed.PlanLoad{Sender: l.Sender, Fraction: l.Fraction})
			}
			tb, _, err := testbed.Build(opts, plan)
			return tb, err
		}, deadline, metrics...)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}

		res := &flowsResult{
			Title:    fmt.Sprintf("Scenario %s — %d flow(s) on the %s topology, %s bottleneck", spec.Name, len(spec.Flows), t.Kind, t.Queue.Kind),
			EnergyJ:  aggs[0],
			Seconds:  aggs[1].Mean,
			Jain:     aggs[2].Mean,
			GBytes:   float64(totalBytes) / 1e9,
			QueueKnd: t.Queue.Kind,
		}
		res.PerGB = res.EnergyJ.Mean / res.GBytes
		for i, f := range spec.Flows {
			path := fmt.Sprintf("s%d", f.Sender)
			if t.Kind == KindFatTree {
				path = fmt.Sprintf("%d->%d", f.Src, f.Dst)
			}
			res.Rows = append(res.Rows, flowRow{
				Path:    path,
				CCA:     f.CCA,
				Bytes:   sizes[i],
				StartMs: f.StartMs,
				Gbps:    aggs[3+2*i].Mean / 1e9,
				Seconds: aggs[4+2*i].Mean,
			})
		}
		o.Logf("%s: %d flows, %.1f±%.1f J (%.1f J/GB), jain=%.3f",
			spec.Name, len(spec.Flows), res.EnergyJ.Mean, res.EnergyJ.Std, res.PerGB, res.Jain)
		return res, nil
	}
}

// msToDur converts milliseconds (the spec's schedule unit) to sim time.
func msToDur(ms float64) sim.Duration {
	return sim.Duration(ms * float64(sim.Millisecond))
}

// tierRate is the drain rate of a fat-tree port's link, used to configure
// rate-aware disciplines (PIE) per tier.
func tierRate(cfg netsim.FatTreeConfig, tier netsim.PortTier) int64 {
	switch tier {
	case netsim.TierHostUp, netsim.TierHostDown:
		return cfg.HostBps
	case netsim.TierEdgeUp, netsim.TierAggDown:
		return cfg.EdgeAggBps
	default:
		return cfg.AggCoreBps
	}
}

// Table renders per-flow rows plus run totals.
func (r *flowsResult) Table() string {
	var b strings.Builder
	b.WriteString(r.Title + "\n")
	fmt.Fprintf(&b, "%-6s %-10s %-8s %14s %10s %12s %10s\n", "flow", "path", "cca", "bytes", "start(ms)", "thru (Gbps)", "time (s)")
	for i, row := range r.Rows {
		fmt.Fprintf(&b, "%-6d %-10s %-8s %14d %10.1f %12.3f %10.3f\n",
			i, row.Path, row.CCA, row.Bytes, row.StartMs, row.Gbps, row.Seconds)
	}
	fmt.Fprintf(&b, "sender energy: %.1f ±%.1f J (%.1f J/GB)   jain: %.3f   run: %.3f s\n",
		r.EnergyJ.Mean, r.EnergyJ.Std, r.PerGB, r.Jain, r.Seconds)
	return b.String()
}

// SVG renders per-flow achieved throughput.
func (r *flowsResult) SVG() (string, error) {
	thru := plot.Series{Name: "throughput"}
	for i, row := range r.Rows {
		thru.X = append(thru.X, float64(i))
		thru.Y = append(thru.Y, row.Gbps)
	}
	return plot.Chart{
		Title:  r.Title,
		XLabel: "flow index",
		YLabel: "achieved throughput (Gbps)",
		Kind:   "line",
		Series: []plot.Series{thru},
	}.SVG()
}
