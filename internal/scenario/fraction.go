package scenario

import (
	"fmt"
	"strings"

	"greenenvy/internal/core"
	"greenenvy/internal/energy"
	"greenenvy/internal/iperf"
	"greenenvy/internal/plot"
	"greenenvy/internal/registry"
	"greenenvy/internal/testbed"
)

// The fraction-sweep preset is the paper's Figure 1 experiment in spec
// form: two competing flows on the dumbbell, sweeping the bandwidth
// fraction given to flow 1 via weighted fair queueing (fraction 1.0
// switches to the serial "full speed, then idle" schedule) and measuring
// total sender energy. The run loop, aggregation, and table rendering
// mirror the handwritten fig1 experiment operation for operation — the
// golden byte-identity test holds the two implementations equal.

// fractionPoint is one x-position of the sweep.
type fractionPoint struct {
	Fraction           float64
	MeanEnergyJ        float64
	StdEnergyJ         float64
	SavingsPct         float64
	AnalyticSavingsPct float64
	JainIndex          float64
}

// fractionResult is the compiled fraction-sweep outcome.
type fractionResult struct {
	Points        []fractionPoint
	FairEnergyJ   float64
	MaxSavingsPct float64
	FlowGbit      float64
}

func runFractionSweep(spec Spec, prefix string) func(registry.Options) (registry.Result, error) {
	return func(o registry.Options) (registry.Result, error) {
		o, err := o.WithDefaults()
		if err != nil {
			return nil, err
		}
		bytes := uint64(spec.Sweep.GbitPerFlow * float64(registry.PaperGbit) * o.Scale)
		if bytes == 0 {
			return nil, errf("scale too small")
		}
		fractions := spec.Sweep.Fractions
		res := &fractionResult{FlowGbit: float64(bytes) * 8 / 1e9}

		// Analytic predictions from the calibrated curve, at the spec's
		// bottleneck rate.
		rate := float64(spec.Topology.BottleneckBps)
		p := energy.PaperPower()
		flows := []core.Flow{{Bytes: float64(bytes)}, {Bytes: float64(bytes)}}
		analytic := make(map[float64]float64)
		for _, f := range fractions {
			s, err := core.WeightedShare(flows, rate, []float64{f, 1 - f})
			if err != nil {
				return nil, err
			}
			sav, err := core.SavingsOverFair(s, rate, p)
			if err != nil {
				return nil, err
			}
			analytic[f] = sav * 100
		}

		base := dumbbellConfig(spec.Topology)
		ccaName := spec.Sweep.CCA
		deadline := registry.DeadlineFor(2 * bytes)
		for _, f := range fractions {
			f := f
			id := fmt.Sprintf("%s/frac=%.2f/bytes=%d", prefix, f, bytes)
			aggs, err := registry.RunCell(o, id, func(seed uint64) (*testbed.Testbed, error) {
				cfg := base
				if f < 1.0 {
					cfg.BottleneckQueue = buildQueue(QueueSpec{Kind: "drr"}, cfg.BufferBytes, cfg.MarkBytes, cfg.BottleneckBps, seed)
				}
				plan := testbed.Plan{
					Dumbbell: &cfg,
					Flows: []testbed.PlanFlow{
						{Sender: 0, Spec: iperf.Spec{Bytes: bytes, CCA: ccaName}, Weight: f, SetWeight: f < 1.0},
						// The paper's "full speed, then idle": at fraction 1.0
						// flow 2 starts when flow 1 completes.
						{Sender: 1, Spec: iperf.Spec{Bytes: bytes, CCA: ccaName}, Weight: 1 - f, SetWeight: f < 1.0, After: 0, Chained: f == 1.0},
					},
				}
				tb, _, err := testbed.Build(testbed.Options{Senders: spec.Topology.Senders, Seed: seed}, plan)
				return tb, err
			}, deadline, registry.SenderJoules)
			if err != nil {
				return nil, fmt.Errorf("fraction %v: %w", f, err)
			}
			jain := 1 / (2 * (f*f + (1-f)*(1-f)))
			energyAgg := aggs[0]
			res.Points = append(res.Points, fractionPoint{
				Fraction:           f,
				MeanEnergyJ:        energyAgg.Mean,
				StdEnergyJ:         energyAgg.Std,
				AnalyticSavingsPct: analytic[f],
				JainIndex:          jain,
			})
			o.Logf("%s: f=%.2f energy=%.1f±%.1f J", spec.Name, f, energyAgg.Mean, energyAgg.Std)
		}

		res.FairEnergyJ = res.Points[0].MeanEnergyJ
		for i := range res.Points {
			res.Points[i].SavingsPct = (res.FairEnergyJ - res.Points[i].MeanEnergyJ) / res.FairEnergyJ * 100
			if res.Points[i].SavingsPct > res.MaxSavingsPct {
				res.MaxSavingsPct = res.Points[i].SavingsPct
			}
		}
		return res, nil
	}
}

// Table renders the sweep rows — the same format, column for column, as the
// handwritten Figure 1 table.
func (r *fractionResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — energy savings vs bandwidth fraction to flow 1 (%.1f Gbit/flow)\n", r.FlowGbit)
	fmt.Fprintf(&b, "%-10s %14s %12s %14s %8s\n", "fraction", "energy (J)", "savings %", "analytic %", "jain")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10.2f %8.1f ±%4.1f %12.2f %14.2f %8.3f\n",
			p.Fraction, p.MeanEnergyJ, p.StdEnergyJ, p.SavingsPct, p.AnalyticSavingsPct, p.JainIndex)
	}
	fmt.Fprintf(&b, "max savings: %.1f%%  (paper: ~16%%)\n", r.MaxSavingsPct)
	return b.String()
}

// SVG renders measured and analytic savings vs fraction.
func (r *fractionResult) SVG() (string, error) {
	measured := plot.Series{Name: "measured"}
	analytic := plot.Series{Name: "analytic"}
	for _, p := range r.Points {
		measured.X = append(measured.X, p.Fraction)
		measured.Y = append(measured.Y, p.SavingsPct)
		analytic.X = append(analytic.X, p.Fraction)
		analytic.Y = append(analytic.Y, p.AnalyticSavingsPct)
	}
	return plot.Chart{
		Title:  "Scenario fraction sweep — energy savings vs bandwidth fraction",
		XLabel: "bandwidth fraction to flow 1",
		YLabel: "savings over fair (%)",
		Kind:   "line",
		Series: []plot.Series{measured, analytic},
	}.SVG()
}
