package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// parseTOML parses the TOML subset scenario files use into the
// map[string]any shape json.Marshal expects:
//
//   - [table] and nested [table.sub] headers
//   - [[array-of-tables]] headers (the flows/loads/queues lists)
//   - key = value with bare keys (letters, digits, '_', '-')
//   - values: basic strings, integers, floats (with TOML '_' separators),
//     booleans, and flat arrays of those
//   - '#' comments and blank lines
//
// It is deliberately not a full TOML implementation (no datetimes, inline
// tables, multiline strings, or dotted keys): the container bakes no TOML
// dependency, and specs that need more structure can use the JSON form.
// Anything outside the subset is a parse error, never a silent skip.
func parseTOML(data []byte) (map[string]any, error) {
	root := map[string]any{}
	current := root

	lines := strings.Split(string(data), "\n")
	for ln, raw := range lines {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		lineNo := ln + 1
		switch {
		case strings.HasPrefix(line, "[["):
			if !strings.HasSuffix(line, "]]") {
				return nil, fmt.Errorf("line %d: unterminated [[table]] header", lineNo)
			}
			path := strings.TrimSpace(line[2 : len(line)-2])
			tbl, err := appendTable(root, path)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			current = tbl
		case strings.HasPrefix(line, "["):
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("line %d: unterminated [table] header", lineNo)
			}
			path := strings.TrimSpace(line[1 : len(line)-1])
			tbl, err := enterTable(root, path)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			current = tbl
		default:
			key, val, ok := strings.Cut(line, "=")
			if !ok {
				return nil, fmt.Errorf("line %d: expected key = value, got %q", lineNo, line)
			}
			key = strings.TrimSpace(key)
			if !bareKey(key) {
				return nil, fmt.Errorf("line %d: invalid key %q (bare keys only: letters, digits, '_', '-')", lineNo, key)
			}
			if _, dup := current[key]; dup {
				return nil, fmt.Errorf("line %d: key %q set twice in the same table", lineNo, key)
			}
			v, err := parseTOMLValue(strings.TrimSpace(val))
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			current[key] = v
		}
	}
	return root, nil
}

// stripComment removes a trailing # comment, honoring quoted strings.
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			if inStr && i > 0 && line[i-1] == '\\' {
				continue
			}
			inStr = !inStr
		case '#':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

func bareKey(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// enterTable resolves (creating as needed) the nested table named by a
// dotted [a.b.c] path.
func enterTable(root map[string]any, path string) (map[string]any, error) {
	cur := root
	for _, part := range strings.Split(path, ".") {
		part = strings.TrimSpace(part)
		if !bareKey(part) {
			return nil, fmt.Errorf("invalid table name %q", path)
		}
		switch v := cur[part].(type) {
		case nil:
			next := map[string]any{}
			cur[part] = next
			cur = next
		case map[string]any:
			cur = v
		case []any:
			// [a.b] under an array-of-tables [[a]] means the last element.
			if len(v) == 0 {
				return nil, fmt.Errorf("table %q indexes an empty array", path)
			}
			last, ok := v[len(v)-1].(map[string]any)
			if !ok {
				return nil, fmt.Errorf("%q is not a table", path)
			}
			cur = last
		default:
			return nil, fmt.Errorf("%q is already a value, not a table", path)
		}
	}
	return cur, nil
}

// appendTable appends a new element to the array of tables named by path
// ([[a]] or [[a.b]]) and returns it.
func appendTable(root map[string]any, path string) (map[string]any, error) {
	parts := strings.Split(path, ".")
	parent := root
	if len(parts) > 1 {
		var err error
		parent, err = enterTable(root, strings.Join(parts[:len(parts)-1], "."))
		if err != nil {
			return nil, err
		}
	}
	last := strings.TrimSpace(parts[len(parts)-1])
	if !bareKey(last) {
		return nil, fmt.Errorf("invalid table name %q", path)
	}
	var arr []any
	switch v := parent[last].(type) {
	case nil:
	case []any:
		arr = v
	default:
		return nil, fmt.Errorf("%q is already a value, not an array of tables", path)
	}
	tbl := map[string]any{}
	parent[last] = append(arr, any(tbl))
	return tbl, nil
}

// parseTOMLValue parses one scalar or flat-array value.
func parseTOMLValue(s string) (any, error) {
	if s == "" {
		return nil, fmt.Errorf("missing value")
	}
	switch {
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	case s[0] == '"':
		v, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("bad string %s: %w", s, err)
		}
		return v, nil
	case s[0] == '[':
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("unterminated array %q", s)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}, nil
		}
		parts, err := splitArray(inner)
		if err != nil {
			return nil, err
		}
		out := make([]any, len(parts))
		for i, p := range parts {
			v, err := parseTOMLValue(strings.TrimSpace(p))
			if err != nil {
				return nil, err
			}
			if _, nested := v.([]any); nested {
				return nil, fmt.Errorf("nested arrays are outside the supported TOML subset")
			}
			out[i] = v
		}
		return out, nil
	default:
		// TOML permits '_' separators between digits.
		num := strings.ReplaceAll(s, "_", "")
		if i, err := strconv.ParseInt(num, 10, 64); err == nil {
			return i, nil
		}
		if f, err := strconv.ParseFloat(num, 64); err == nil {
			return f, nil
		}
		return nil, fmt.Errorf("unsupported value %q (the TOML subset takes strings, numbers, booleans, and flat arrays)", s)
	}
}

// splitArray splits a flat array body on commas, honoring quoted strings.
func splitArray(s string) ([]string, error) {
	var parts []string
	start := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if inStr && i > 0 && s[i-1] == '\\' {
				continue
			}
			inStr = !inStr
		case '[':
			if !inStr {
				return nil, fmt.Errorf("nested arrays are outside the supported TOML subset")
			}
		case ',':
			if !inStr {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	if inStr {
		return nil, fmt.Errorf("unterminated string in array")
	}
	parts = append(parts, s[start:])
	return parts, nil
}
