package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// CachePrefix namespaces every scenario-compiled experiment's persistent
// cache ids: "scenario/<digest12>/<cell>". The registryhygiene fact table
// pins the same constant (ScenarioCacheIDPrefix) so the static audit and
// the compiler cannot drift apart; the root package cross-checks the two at
// init time.
const CachePrefix = "scenario/"

// digestPayload is the physics of a spec — everything that can change a
// simulated result. Presentation metadata (name, description, section,
// order) is deliberately excluded: retitling an experiment must not discard
// its cached repetitions, while any change to topology, flows, loads, or
// sweep axes must.
type digestPayload struct {
	Preset   string   `json:"preset,omitempty"`
	Topology Topology `json:"topology"`
	Flows    []Flow   `json:"flows,omitempty"`
	Loads    []Load   `json:"loads,omitempty"`
	Sweep    *Sweep   `json:"sweep,omitempty"`
}

// Canonical returns the spec with every default resolved — the normal form
// the digest is computed over. Two spellings of the same experiment (JSON
// vs TOML, omitted vs explicit defaults, any key order) canonicalize
// identically; an invalid spec errors with the field that failed.
func (s Spec) Canonical() (Spec, error) {
	return s.withDefaults()
}

// Digest returns the full SHA-256 hex digest of the canonical spec's
// physics fields.
func (s Spec) Digest() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	payload, err := json.Marshal(digestPayload{
		Preset:   c.Preset,
		Topology: c.Topology,
		Flows:    c.Flows,
		Loads:    c.Loads,
		Sweep:    c.Sweep,
	})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:]), nil
}

// CacheID returns the experiment's persistent-cache id prefix:
// CachePrefix plus the first 12 hex digits of the spec digest. Every cell
// id the compiled experiment stores repetitions under extends this prefix.
func (s Spec) CacheID() (string, error) {
	d, err := s.Digest()
	if err != nil {
		return "", err
	}
	return CachePrefix + d[:12], nil
}
