package scenario

import (
	"fmt"
	"strings"

	"greenenvy/internal/core"
	"greenenvy/internal/energy"
	"greenenvy/internal/iperf"
	"greenenvy/internal/netsim"
	"greenenvy/internal/plot"
	"greenenvy/internal/registry"
	"greenenvy/internal/testbed"
)

// The fanin-sweep preset is the fat-tree incast experiment in spec form:
// synchronized cross-rack senders converging on host 0 of a k-ary fat-tree,
// fair (DRR on the receiver's edge downlink) vs serial (chained starts),
// swept over fan-in widths at constant aggregate volume. The run loop,
// analytic predictions, and table rendering mirror the handwritten
// fattree-incast experiment operation for operation — the golden
// byte-identity test holds the two equal.

// fanInPoint is one fan-in width.
type fanInPoint struct {
	Senders        int
	K              int
	FairJ          float64
	SerialJ        float64
	SavingsPct     float64
	AnalyticPct    float64
	FairDuration   float64
	SerialDuration float64
}

// fanInResult is the compiled fanin-sweep outcome.
type fanInResult struct {
	Points    []fanInPoint
	TotalGbit float64
}

func runFanInSweep(spec Spec, prefix string) func(registry.Options) (registry.Result, error) {
	return func(o registry.Options) (registry.Result, error) {
		o, err := o.WithDefaults()
		if err != nil {
			return nil, err
		}
		totalBytes := uint64(spec.Sweep.TotalGbit * float64(registry.PaperGbit) * o.Scale)
		res := &fanInResult{TotalGbit: float64(totalBytes) * 8 / 1e9}
		p := energy.PaperPower()
		ccaName := spec.Sweep.CCA

		widths := append([]int(nil), spec.Sweep.Widths...)
		if spec.Sweep.WideWidth > 0 && o.Scale >= 0.25 {
			widths = append(widths, spec.Sweep.WideWidth)
		}
		const recv = netsim.NodeID(0)
		for _, n := range widths {
			n := n
			per := totalBytes / uint64(n)
			if per == 0 {
				return nil, errf("scale too small for %d-way incast", n)
			}
			k := netsim.FatTreeArityFor(n)
			senders := netsim.IncastHosts(k, n)
			base := fatTreeConfig(spec.Topology, k)
			hostBps := base.HostBps

			run := func(serial bool) (float64, float64, error) {
				id := fmt.Sprintf("%s/n=%d/k=%d/ecmp=%d/serial=%t/per=%d/sh=%d", prefix, n, k, o.Seed, serial, per, o.ShardTag())
				aggs, err := registry.RunCell(o, id, func(seed uint64) (*testbed.Testbed, error) {
					cfg := base
					cfg.ECMPSeed = o.Seed
					if !serial {
						cfg.NewQueue = func(port netsim.FatTreePort) netsim.Queue {
							if port.Tier == netsim.TierHostDown && port.Host == recv {
								return netsim.NewDRR(cfg.BufferBytes, cfg.MarkBytes)
							}
							return nil
						}
					}
					watch := recv
					plan := testbed.Plan{FatTree: &cfg, WatchHost: &watch}
					for i, src := range senders {
						plan.Flows = append(plan.Flows, testbed.PlanFlow{
							Src: src, Dst: recv,
							Spec:      iperf.Spec{Bytes: per, CCA: ccaName},
							Weight:    1 / float64(n),
							SetWeight: !serial,
							After:     i - 1,
							Chained:   serial && i > 0,
						})
					}
					tb, _, err := testbed.Build(testbed.Options{Seed: seed, Shards: o.Shards}, plan)
					return tb, err
				}, registry.DeadlineFor(totalBytes), registry.SenderJoules, registry.RunSeconds, registry.EventsFired)
				if err != nil {
					return 0, 0, err
				}
				o.Logf("%s: n=%d serial=%t %.0f events/run", spec.Name, n, serial, aggs[2].Mean)
				return aggs[0].Mean, aggs[1].Mean, nil
			}
			fairJ, fairD, err := run(false)
			if err != nil {
				return nil, fmt.Errorf("%s n=%d fair: %w", spec.Name, n, err)
			}
			serialJ, serialD, err := run(true)
			if err != nil {
				return nil, fmt.Errorf("%s n=%d serial: %w", spec.Name, n, err)
			}

			// Analytic prediction: n hosts sharing the receiver downlink.
			flows := make([]core.Flow, n)
			for i := range flows {
				flows[i] = core.Flow{Bytes: float64(per)}
			}
			fairS, err := core.FairShare(flows, float64(hostBps))
			if err != nil {
				return nil, err
			}
			serialS, err := core.FullSpeedThenIdle(flows, float64(hostBps))
			if err != nil {
				return nil, err
			}
			analytic := (fairS.Energy(p) - serialS.Energy(p)) / fairS.Energy(p) * 100

			res.Points = append(res.Points, fanInPoint{
				Senders:        n,
				K:              k,
				FairJ:          fairJ,
				SerialJ:        serialJ,
				SavingsPct:     (fairJ - serialJ) / fairJ * 100,
				AnalyticPct:    analytic,
				FairDuration:   fairD,
				SerialDuration: serialD,
			})
			o.Logf("%s: n=%d k=%d savings %.1f%% (analytic %.1f%%)", spec.Name, n, k, (fairJ-serialJ)/fairJ*100, analytic)
		}
		return res, nil
	}
}

// Table renders the sweep — the same format, column for column, as the
// handwritten fat-tree incast table.
func (r *fanInResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fat-tree incast — fair vs serial energy, %.1f Gbit aggregate, cross-rack fan-in\n", r.TotalGbit)
	fmt.Fprintf(&b, "%-8s %4s %12s %12s %10s %12s\n", "senders", "k", "fair (J)", "serial (J)", "savings", "analytic")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-8d %4d %12.1f %12.1f %9.2f%% %11.2f%%\n", p.Senders, p.K, p.FairJ, p.SerialJ, p.SavingsPct, p.AnalyticPct)
	}
	b.WriteString("(Theorem 1 on a fabric: the receiver's edge downlink is the shared resource;\n")
	b.WriteString(" ECMP spreads the converging flows across aggregation and core tiers)\n")
	return b.String()
}

// SVG renders measured and analytic savings vs fan-in width.
func (r *fanInResult) SVG() (string, error) {
	measured := plot.Series{Name: "measured"}
	analytic := plot.Series{Name: "analytic"}
	for _, p := range r.Points {
		measured.X = append(measured.X, float64(p.Senders))
		measured.Y = append(measured.Y, p.SavingsPct)
		analytic.X = append(analytic.X, float64(p.Senders))
		analytic.Y = append(analytic.Y, p.AnalyticPct)
	}
	return plot.Chart{
		Title:  "Scenario fan-in sweep — fair vs serial savings on a fat-tree",
		XLabel: "fan-in width (senders)",
		YLabel: "savings over fair (%)",
		Kind:   "line",
		Series: []plot.Series{measured, analytic},
	}.SVG()
}
