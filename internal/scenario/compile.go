package scenario

import (
	"greenenvy/internal/netsim"
	"greenenvy/internal/registry"
	"greenenvy/internal/sim"
)

// Compile turns a spec into a registry.Experiment. The spec is
// canonicalized first (defaults resolved, invalid specs rejected with the
// failing field), and every persistent-cache id the compiled runner uses is
// namespaced under CachePrefix plus the canonical spec's digest — so two
// specs describing the same physics share cached repetitions, and any
// result-affecting edit moves the experiment to a fresh cache lineage.
//
// Compile does not register: the caller (the root package's
// RegisterScenario/RegisterScenarioFile, or a test) decides whether the
// experiment joins the global registry.
func Compile(spec Spec) (registry.Experiment, error) {
	c, err := spec.Canonical()
	if err != nil {
		return registry.Experiment{}, err
	}
	prefix, err := c.CacheID()
	if err != nil {
		return registry.Experiment{}, err
	}
	var run func(registry.Options) (registry.Result, error)
	switch c.Preset {
	case PresetFractionSweep:
		run = runFractionSweep(c, prefix)
	case PresetFanInSweep:
		run = runFanInSweep(c, prefix)
	case PresetAQMMatrix:
		run = runAQMMatrix(c, prefix)
	default:
		run = runFlows(c, prefix)
	}
	return registry.Experiment{
		Name:        c.Name,
		Description: c.Description,
		Section:     c.Section,
		Order:       c.Order,
		Run:         run,
	}, nil
}

// usToDur converts microseconds (the spec's delay unit) to sim time.
func usToDur(us float64) sim.Duration {
	return sim.Duration(us * float64(sim.Microsecond))
}

// dumbbellConfig maps a canonical dumbbell topology onto the netsim config.
// With the spec defaults it reproduces netsim.DefaultDumbbell field for
// field, which the byte-identity tests depend on.
func dumbbellConfig(t Topology) netsim.DumbbellConfig {
	cfg := netsim.DumbbellConfig{
		Senders:           t.Senders,
		BottleneckBps:     t.BottleneckBps,
		AccessBps:         t.AccessBps,
		BondedSenderLinks: t.BondedLinks,
		LinkDelay:         usToDur(t.LinkDelayUs),
		SwitchDelay:       usToDur(t.SwitchDelayUs),
		BufferBytes:       t.BufferBytes,
		MarkBytes:         t.MarkBytes,
	}
	for _, d := range t.AccessDelaysUs {
		cfg.AccessDelays = append(cfg.AccessDelays, usToDur(d))
	}
	return cfg
}

// fatTreeConfig maps a canonical fat-tree topology (with an explicit arity,
// since the fanin preset derives k per width) onto the netsim config. With
// the spec defaults it reproduces netsim.DefaultFatTree(k).
func fatTreeConfig(t Topology, k int) netsim.FatTreeConfig {
	return netsim.FatTreeConfig{
		K:           k,
		HostBps:     t.HostBps,
		EdgeAggBps:  t.EdgeAggBps,
		AggCoreBps:  t.AggCoreBps,
		LinkDelay:   usToDur(t.LinkDelayUs),
		SwitchDelay: usToDur(t.SwitchDelayUs),
		BufferBytes: t.BufferBytes,
		MarkBytes:   t.MarkBytes,
	}
}

// buildQueue constructs one run's queue discipline from a canonical
// QueueSpec. "droptail" returns nil — the topology's default drop-tail,
// byte-identical to not configuring a queue at all. rateBps is the drain
// rate PIE's controller converts backlog to delay with; seed derives PIE's
// private dither RNG so repetitions stay deterministic.
func buildQueue(q QueueSpec, bufBytes, markBytes int, rateBps int64, seed uint64) netsim.Queue {
	switch q.Kind {
	case "drr":
		return netsim.NewDRR(bufBytes, markBytes)
	case "codel":
		return netsim.NewCoDel(bufBytes, usToDur(q.TargetUs), usToDur(q.IntervalUs))
	case "fq-codel":
		return netsim.NewFQCoDel(bufBytes, q.Quantum, usToDur(q.TargetUs), usToDur(q.IntervalUs))
	case "pie":
		return netsim.NewPIE(bufBytes, rateBps, usToDur(q.TargetUs), usToDur(q.TUpdateUs),
			sim.NewRNG(seed).Split(0x71E).Uint64())
	default:
		return nil
	}
}
