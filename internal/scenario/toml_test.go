package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// TestParseTOMLSubset exercises the supported grammar: tables, dotted and
// array-of-tables headers, scalars with '_' separators, flat arrays, and
// comments (including '#' inside strings).
func TestParseTOMLSubset(t *testing.T) {
	got, err := parseTOML([]byte(`
# top-level scalars
name = "demo"           # trailing comment
count = 1_000
ratio = 2.5
on = true
label = "has # inside"
nums = [1, 2, 3]
mixed = ["a", "b"]
empty = []

[table]
key = "v"

[table.nested]
deep = 7

[[rows]]
id = 1

[[rows]]
id = 2

[rows.sub]
x = 9
`))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"name":  "demo",
		"count": int64(1000),
		"ratio": 2.5,
		"on":    true,
		"label": "has # inside",
		"nums":  []any{int64(1), int64(2), int64(3)},
		"mixed": []any{"a", "b"},
		"empty": []any{},
		"table": map[string]any{
			"key":    "v",
			"nested": map[string]any{"deep": int64(7)},
		},
		"rows": []any{
			map[string]any{"id": int64(1)},
			map[string]any{"id": int64(2), "sub": map[string]any{"x": int64(9)}},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseTOML:\n got %#v\nwant %#v", got, want)
	}
}

// TestParseTOMLErrors: everything outside the subset is a loud parse error
// with a line number, never a silent skip.
func TestParseTOMLErrors(t *testing.T) {
	cases := []struct{ name, in, want string }{
		{"no equals", "just words\n", "expected key = value"},
		{"bad key", "a b = 1\n", "invalid key"},
		{"duplicate key", "a = 1\na = 2\n", "set twice"},
		{"unterminated header", "[table\n", "unterminated [table]"},
		{"unterminated array header", "[[rows\n", "unterminated [[table]]"},
		{"missing value", "a =\n", "missing value"},
		{"bad string", `a = "oops` + "\n", "bad string"},
		{"nested array", "a = [[1], [2]]\n", "nested arrays"},
		{"unterminated array", "a = [1, 2\n", "unterminated array"},
		{"datetime", "a = 2024-01-01T00:00:00Z\n", "unsupported value"},
		{"value then table", "a = 1\n[a]\nb = 2\n", "already a value"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := parseTOML([]byte(c.in))
			if err == nil {
				t.Fatalf("accepted %q", c.in)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
			if !strings.Contains(err.Error(), "line ") {
				t.Fatalf("error %q has no line number", err)
			}
		})
	}
}
