package scenario

// Builtin specs: scenarios that ship registered in the root package's
// experiment registry, expressed in the same declarative form a user's
// -scenario file uses. Keeping them as data (not hand-built Experiments)
// means the registry, the file loader, and the docs all exercise one
// compiler path.

// AQMMatrix is the registered aqm-matrix experiment: four same-CCA flows
// on the dumbbell bottleneck, crossed over {droptail, codel, fq-codel, pie},
// reporting J/GB and Jain fairness per cell.
func AQMMatrix() Spec {
	return Spec{
		Name:        "aqm-matrix",
		Description: "CCA x queue-discipline matrix on the dumbbell: J/GB and Jain fairness per cell",
		Section:     "§5",
		Order:       118,
		Preset:      PresetAQMMatrix,
		Topology: Topology{
			Kind:    KindDumbbell,
			Senders: 4,
		},
		Sweep: &Sweep{
			GbitPerFlow: 2.5,
			CCAs:        []string{"cubic", "reno", "bbr", "vegas"},
			Queues: []QueueSpec{
				{Kind: "droptail"},
				{Kind: "codel"},
				{Kind: "fq-codel"},
				{Kind: "pie"},
			},
		},
	}
}

// builtins maps registry names to their spec constructors.
var builtins = map[string]func() Spec{
	"aqm-matrix": AQMMatrix,
}

// Builtin returns the named built-in spec and whether it exists.
func Builtin(name string) (Spec, bool) {
	f, ok := builtins[name]
	if !ok {
		return Spec{}, false
	}
	return f(), true
}

// BuiltinNames lists the built-in spec names.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for name := range builtins {
		names = append(names, name)
	}
	return names
}
