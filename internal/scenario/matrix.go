package scenario

import (
	"fmt"
	"strings"

	"greenenvy/internal/iperf"
	"greenenvy/internal/plot"
	"greenenvy/internal/registry"
	"greenenvy/internal/stats"
	"greenenvy/internal/testbed"
)

// The aqm-matrix preset crosses congestion-control algorithms with queue
// disciplines on the dumbbell bottleneck: every sender runs one same-sized
// flow of the cell's CCA through the cell's queue, and the cell reports
// energy per delivered gigabyte alongside Jain's fairness index over the
// flows' achieved throughputs. The matrix makes the paper's tension
// measurable in one table: disciplines that equalize flows (DRR, FQ-CoDel)
// pin Jain near 1 while the unfair completions that Theorem 1 credits with
// energy savings need the opposite.

// matrixCell is one CCA × queue cell.
type matrixCell struct {
	CCA        string
	Queue      string
	JoulePerGB float64
	JouleStd   float64
	Jain       float64
	Seconds    float64
}

// matrixResult is the compiled aqm-matrix outcome.
type matrixResult struct {
	CCAs   []string
	Queues []string
	Cells  []matrixCell
	GBytes float64
}

// jainOverFlows is the per-repetition fairness metric: Jain's index over
// the flows' mean throughputs.
func jainOverFlows(r testbed.RunResult) float64 {
	bps := make([]float64, len(r.Reports))
	for i, rep := range r.Reports {
		bps[i] = rep.Bps
	}
	return stats.JainIndex(bps)
}

func runAQMMatrix(spec Spec, prefix string) func(registry.Options) (registry.Result, error) {
	return func(o registry.Options) (registry.Result, error) {
		o, err := o.WithDefaults()
		if err != nil {
			return nil, err
		}
		bytes := uint64(spec.Sweep.GbitPerFlow * float64(registry.PaperGbit) * o.Scale)
		if bytes == 0 {
			return nil, errf("scale too small")
		}
		senders := spec.Topology.Senders
		totalBytes := uint64(senders) * bytes
		res := &matrixResult{GBytes: float64(totalBytes) / 1e9}
		base := dumbbellConfig(spec.Topology)
		deadline := registry.DeadlineFor(totalBytes)

		for _, q := range spec.Sweep.Queues {
			res.Queues = append(res.Queues, q.Kind)
		}
		for _, ccaName := range spec.Sweep.CCAs {
			res.CCAs = append(res.CCAs, ccaName)
			for _, q := range spec.Sweep.Queues {
				ccaName, q := ccaName, q
				id := fmt.Sprintf("%s/cca=%s/q=%s/bytes=%d", prefix, ccaName, q.Kind, bytes)
				aggs, err := registry.RunCell(o, id, func(seed uint64) (*testbed.Testbed, error) {
					cfg := base
					cfg.BottleneckQueue = buildQueue(q, cfg.BufferBytes, cfg.MarkBytes, cfg.BottleneckBps, seed)
					plan := testbed.Plan{Dumbbell: &cfg}
					for s := 0; s < senders; s++ {
						plan.Flows = append(plan.Flows, testbed.PlanFlow{
							Sender: s,
							Spec:   iperf.Spec{Bytes: bytes, CCA: ccaName},
						})
					}
					tb, _, err := testbed.Build(testbed.Options{Senders: senders, Seed: seed}, plan)
					return tb, err
				}, deadline, registry.SenderJoules, registry.RunSeconds, jainOverFlows)
				if err != nil {
					return nil, fmt.Errorf("cell %s/%s: %w", ccaName, q.Kind, err)
				}
				cell := matrixCell{
					CCA:        ccaName,
					Queue:      q.Kind,
					JoulePerGB: aggs[0].Mean / res.GBytes,
					JouleStd:   aggs[0].Std / res.GBytes,
					Jain:       aggs[2].Mean,
					Seconds:    aggs[1].Mean,
				}
				res.Cells = append(res.Cells, cell)
				o.Logf("%s: cca=%s q=%s %.1f J/GB jain=%.3f", spec.Name, ccaName, q.Kind, cell.JoulePerGB, cell.Jain)
			}
		}
		return res, nil
	}
}

// Table renders one row per CCA × queue cell.
func (r *matrixResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "AQM matrix — energy per delivered GB and Jain fairness, %d CCAs x %d queues (%.2f GB total per cell)\n",
		len(r.CCAs), len(r.Queues), r.GBytes)
	fmt.Fprintf(&b, "%-8s %-10s %14s %8s %10s\n", "cca", "queue", "J/GB", "jain", "time (s)")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-8s %-10s %8.1f ±%4.1f %8.3f %10.3f\n", c.CCA, c.Queue, c.JoulePerGB, c.JouleStd, c.Jain, c.Seconds)
	}
	b.WriteString("(fair-queueing disciplines pin jain near 1; Theorem 1's savings require letting it drop)\n")
	return b.String()
}

// SVG renders J/GB per queue discipline, one line per CCA.
func (r *matrixResult) SVG() (string, error) {
	byCCA := map[string]*plot.Series{}
	var series []plot.Series
	for _, name := range r.CCAs {
		byCCA[name] = &plot.Series{Name: name}
	}
	for _, c := range r.Cells {
		s := byCCA[c.CCA]
		s.X = append(s.X, float64(len(s.X)))
		s.Y = append(s.Y, c.JoulePerGB)
	}
	for _, name := range r.CCAs {
		series = append(series, *byCCA[name])
	}
	return plot.Chart{
		Title:  "AQM matrix — J/GB per queue discipline (x: queue index " + strings.Join(r.Queues, ", ") + ")",
		XLabel: "queue discipline index",
		YLabel: "sender energy (J/GB)",
		Kind:   "line",
		Series: series,
	}.SVG()
}
