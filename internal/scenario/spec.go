// Package scenario is the declarative experiment language: a Spec — a Go
// struct with a JSON/TOML file form — describes a topology (dumbbell or
// fat-tree with per-tier rates and delays), per-port queue discipline,
// per-flow CCA / size / schedule, background load, and sweep axes, and
// Compile turns it into a registry.Experiment that runs through exactly the
// harness the handwritten figures use.
//
// Canonicalization is the package's contract: withDefaults maps every
// spelling of the same physical experiment (JSON vs TOML, omitted defaults
// vs explicit ones, any key order) to one canonical Spec, and the cache id
// of every compiled cell is derived from the SHA-256 digest of that
// canonical form's physics fields (preset, topology, flows, loads, sweep —
// not the presentation metadata). Two specs that would simulate the same
// packets share cached repetitions; any change that could alter a result
// changes the digest and therefore the cache lineage.
package scenario

import (
	"fmt"
	"sort"
	"strings"

	"greenenvy/internal/cca"
)

// Spec is the file form of one declarative experiment.
type Spec struct {
	// Name is the registry name the compiled experiment registers under.
	Name string `json:"name"`
	// Description is the one-line registry summary (a default is derived
	// from the preset when empty).
	Description string `json:"description,omitempty"`
	// Section is the paper section label (default "spec").
	Section string `json:"section,omitempty"`
	// Order positions the experiment in the registry listing.
	Order int `json:"order,omitempty"`
	// Preset selects the compiled shape: "" (run the literal Flows once per
	// repetition), "fraction-sweep" (the Figure 1 bandwidth-fraction sweep),
	// "fanin-sweep" (the fat-tree incast fair-vs-serial sweep), or
	// "aqm-matrix" (CCA × queue-discipline matrix on the dumbbell
	// bottleneck).
	Preset   string   `json:"preset,omitempty"`
	Topology Topology `json:"topology"`
	// Flows are the literal flows of the generic preset, installed in
	// order (order is part of the deterministic schedule).
	Flows []Flow `json:"flows,omitempty"`
	// Loads run stress background load on dumbbell sender hosts.
	Loads []Load `json:"loads,omitempty"`
	// Sweep carries the axes of the sweep presets.
	Sweep *Sweep `json:"sweep,omitempty"`
}

// Topology describes the network under test.
type Topology struct {
	// Kind is "dumbbell" or "fattree".
	Kind string `json:"kind"`

	// Senders is the dumbbell sender-host count (default 2).
	Senders int `json:"senders,omitempty"`
	// BottleneckBps is the dumbbell bottleneck rate (default 10 Gb/s).
	BottleneckBps int64 `json:"bottleneck_bps,omitempty"`
	// AccessBps is the dumbbell access-link rate (default 10 Gb/s).
	AccessBps int64 `json:"access_bps,omitempty"`
	// BondedLinks is the per-sender bonded uplink count (default 2).
	BondedLinks int `json:"bonded_links,omitempty"`
	// AccessDelaysUs optionally sets per-sender access-link delay in
	// microseconds (heterogeneous RTTs); senders beyond the slice, the
	// receiver access link, and the bottleneck use LinkDelayUs.
	AccessDelaysUs []float64 `json:"access_delays_us,omitempty"`

	// K is the fat-tree arity (even, >= 4). The fanin-sweep preset derives
	// it per width and requires it unset.
	K int `json:"k,omitempty"`
	// HostBps, EdgeAggBps, AggCoreBps are the fat-tree tier rates
	// (default 10 Gb/s each).
	HostBps    int64 `json:"host_bps,omitempty"`
	EdgeAggBps int64 `json:"edge_agg_bps,omitempty"`
	AggCoreBps int64 `json:"agg_core_bps,omitempty"`

	// LinkDelayUs is the one-way propagation delay of every link in
	// microseconds (default 5).
	LinkDelayUs float64 `json:"link_delay_us,omitempty"`
	// SwitchDelayUs is the switch pipeline latency in microseconds
	// (default 1).
	SwitchDelayUs float64 `json:"switch_delay_us,omitempty"`
	// BufferBytes sizes the bottleneck/port buffers (default 1 MiB).
	BufferBytes int `json:"buffer_bytes,omitempty"`
	// MarkBytes is the DCTCP ECN threshold (0 = no marking).
	MarkBytes int `json:"mark_bytes,omitempty"`
	// Queue is the bottleneck queue discipline for the generic preset
	// (default droptail). The sweep presets own their queue choice and
	// require it unset.
	Queue QueueSpec `json:"queue,omitempty"`
}

// QueueSpec selects a queue discipline and its parameters.
type QueueSpec struct {
	// Kind is "droptail", "drr", "codel", "fq-codel", or "pie".
	Kind string `json:"kind,omitempty"`
	// TargetUs is the CoDel/FQ-CoDel/PIE delay target in microseconds
	// (default 50).
	TargetUs float64 `json:"target_us,omitempty"`
	// IntervalUs is the CoDel/FQ-CoDel sliding window in microseconds
	// (default 500).
	IntervalUs float64 `json:"interval_us,omitempty"`
	// TUpdateUs is the PIE probability-update period in microseconds
	// (default 500).
	TUpdateUs float64 `json:"tupdate_us,omitempty"`
	// Quantum is the FQ-CoDel per-round deficit in bytes (default 9216).
	Quantum int `json:"quantum,omitempty"`
}

// Flow places one transfer.
type Flow struct {
	// Sender is the dumbbell sender index.
	Sender int `json:"sender,omitempty"`
	// Src and Dst are fat-tree host ids.
	Src int `json:"src,omitempty"`
	Dst int `json:"dst,omitempty"`
	// CCA names the congestion control algorithm (default cubic).
	CCA string `json:"cca,omitempty"`
	// Gbit is the transfer size in gigabits at full scale; the runner
	// multiplies it by Options.Scale exactly as the handwritten figures
	// scale their paper-sized transfers. Exactly one of Gbit and Bytes
	// must be set.
	Gbit float64 `json:"gbit,omitempty"`
	// Bytes is an absolute transfer size, exempt from Options.Scale.
	Bytes uint64 `json:"bytes,omitempty"`
	// StartMs delays the flow's start (milliseconds from run begin).
	StartMs float64 `json:"start_ms,omitempty"`
	// DurationMs, when positive, stops the transfer that long after it
	// starts (iperf3 -t); combines with the size, whichever first.
	DurationMs float64 `json:"duration_ms,omitempty"`
	// TargetBps paces the flow (iperf3 -b); 0 = unpaced.
	TargetBps int64 `json:"target_bps,omitempty"`
	// Weight, when positive, is the flow's fair-queue weight (requires a
	// DRR queue).
	Weight float64 `json:"weight,omitempty"`
	// After, when set, chains this flow's start behind the indexed flow's
	// completion (the serial schedule).
	After *int `json:"after,omitempty"`
}

// Load runs stress background load on a dumbbell sender host.
type Load struct {
	Sender   int     `json:"sender,omitempty"`
	Fraction float64 `json:"fraction"`
}

// Sweep carries the axes of the sweep presets.
type Sweep struct {
	// CCA is the algorithm the fraction-sweep and fanin-sweep presets run
	// (default cubic).
	CCA string `json:"cca,omitempty"`
	// GbitPerFlow sizes each flow of the fraction-sweep and aqm-matrix
	// presets (gigabits at full scale, multiplied by Options.Scale).
	GbitPerFlow float64 `json:"gbit_per_flow,omitempty"`
	// Fractions are the fraction-sweep x-positions (bandwidth share of
	// flow 1; 1.0 switches to the serial schedule).
	Fractions []float64 `json:"fractions,omitempty"`
	// TotalGbit is the fanin-sweep aggregate volume (constant across
	// widths so runs are comparable).
	TotalGbit float64 `json:"total_gbit,omitempty"`
	// Widths are the fanin-sweep sender counts.
	Widths []int `json:"widths,omitempty"`
	// WideWidth, when positive, is an extra width only run at
	// Options.Scale >= 0.25, mirroring the handwritten incast sweep's
	// guard that keeps tiny-scale smoke runs cheap.
	WideWidth int `json:"wide_width,omitempty"`
	// CCAs and Queues are the aqm-matrix axes.
	CCAs   []string    `json:"ccas,omitempty"`
	Queues []QueueSpec `json:"queues,omitempty"`
}

// Preset names.
const (
	PresetFlows         = ""
	PresetFractionSweep = "fraction-sweep"
	PresetFanInSweep    = "fanin-sweep"
	PresetAQMMatrix     = "aqm-matrix"
)

// Topology kinds.
const (
	KindDumbbell = "dumbbell"
	KindFatTree  = "fattree"
)

func errf(format string, args ...any) error {
	return fmt.Errorf("scenario: "+format, args...)
}

// withDefaults validates the spec and returns its canonical form: every
// optional field resolved to its default, so that any two spellings of the
// same experiment canonicalize — and digest — identically.
func (s Spec) withDefaults() (Spec, error) {
	if s.Name == "" {
		return s, errf("spec needs a name")
	}
	if s.Section == "" {
		s.Section = "spec"
	}

	switch s.Preset {
	case PresetFlows, PresetFractionSweep, PresetFanInSweep, PresetAQMMatrix:
	default:
		return s, errf("unknown preset %q (known: %q, %q, %q, and \"\" for literal flows)",
			s.Preset, PresetFractionSweep, PresetFanInSweep, PresetAQMMatrix)
	}

	t, err := s.Topology.withDefaults(s.Preset)
	if err != nil {
		return s, err
	}
	s.Topology = t

	switch s.Preset {
	case PresetFlows:
		if s.Sweep != nil {
			return s, errf("the literal-flows preset takes no sweep block")
		}
		if len(s.Flows) == 0 {
			return s, errf("spec %q has no flows (a literal-flows spec needs at least one)", s.Name)
		}
		// Canonicalize into a copy: the caller's spec must not be mutated.
		flows := make([]Flow, len(s.Flows))
		copy(flows, s.Flows)
		for i := range flows {
			f, err := flows[i].withDefaults(i, len(flows), s.Topology)
			if err != nil {
				return s, err
			}
			flows[i] = f
		}
		s.Flows = flows
		if s.Description == "" {
			s.Description = fmt.Sprintf("scenario spec: %d flow(s) on the %s topology", len(s.Flows), s.Topology.Kind)
		}
	default:
		if len(s.Flows) != 0 {
			return s, errf("preset %q generates its own flows; drop the flows block", s.Preset)
		}
		if s.Sweep == nil {
			return s, errf("preset %q needs a sweep block", s.Preset)
		}
		sw := *s.Sweep
		if err := sw.validate(s.Preset); err != nil {
			return s, err
		}
		if sw.CCA == "" && s.Preset != PresetAQMMatrix {
			sw.CCA = "cubic"
		}
		if len(sw.Queues) > 0 {
			queues := make([]QueueSpec, len(sw.Queues))
			copy(queues, sw.Queues)
			for i := range queues {
				q, err := queues[i].withDefaults(true)
				if err != nil {
					return s, fmt.Errorf("%w (sweep queue %d)", err, i)
				}
				queues[i] = q
			}
			sw.Queues = queues
		}
		s.Sweep = &sw
		if s.Description == "" {
			s.Description = presetDescription(s.Preset)
		}
	}
	for i, l := range s.Loads {
		if s.Topology.Kind != KindDumbbell {
			return s, errf("load %d: background load needs the dumbbell topology", i)
		}
		if l.Sender < 0 || l.Sender >= s.Topology.Senders {
			return s, errf("load %d: sender %d out of range (topology has %d)", i, l.Sender, s.Topology.Senders)
		}
		if l.Fraction <= 0 || l.Fraction > 1 {
			return s, errf("load %d: fraction %v outside (0, 1]", i, l.Fraction)
		}
	}
	return s, nil
}

func presetDescription(preset string) string {
	switch preset {
	case PresetFractionSweep:
		return "scenario spec: energy savings vs bandwidth fraction for two competing flows"
	case PresetFanInSweep:
		return "scenario spec: fair-vs-serial energy for fat-tree fan-in"
	case PresetAQMMatrix:
		return "scenario spec: J/GB and Jain fairness per CCA x queue-discipline cell"
	}
	return "scenario spec"
}

func (t Topology) withDefaults(preset string) (Topology, error) {
	switch t.Kind {
	case KindDumbbell:
		if preset == PresetFanInSweep {
			return t, errf("preset %q needs the fattree topology", preset)
		}
		if t.K != 0 || t.HostBps != 0 || t.EdgeAggBps != 0 || t.AggCoreBps != 0 {
			return t, errf("dumbbell topology does not take fat-tree fields (k, host_bps, edge_agg_bps, agg_core_bps)")
		}
		if t.Senders == 0 {
			t.Senders = 2
		}
		if t.Senders < 1 {
			return t, errf("dumbbell needs at least one sender, got %d", t.Senders)
		}
		if t.BottleneckBps == 0 {
			t.BottleneckBps = 10_000_000_000
		}
		if t.AccessBps == 0 {
			t.AccessBps = 10_000_000_000
		}
		if t.BottleneckBps < 0 || t.AccessBps < 0 {
			return t, errf("link rates must be positive")
		}
		if t.BondedLinks == 0 {
			t.BondedLinks = 2
		}
		if len(t.AccessDelaysUs) > t.Senders {
			return t, errf("access_delays_us lists %d entries for %d senders", len(t.AccessDelaysUs), t.Senders)
		}
		for i, d := range t.AccessDelaysUs {
			if d < 0 {
				return t, errf("access_delays_us[%d] is negative", i)
			}
		}
	case KindFatTree:
		if preset == PresetFractionSweep || preset == PresetAQMMatrix {
			return t, errf("preset %q needs the dumbbell topology", preset)
		}
		if t.Senders != 0 || t.BottleneckBps != 0 || t.AccessBps != 0 || t.BondedLinks != 0 || len(t.AccessDelaysUs) != 0 {
			return t, errf("fattree topology does not take dumbbell fields (senders, bottleneck_bps, access_bps, bonded_links, access_delays_us)")
		}
		if preset == PresetFanInSweep {
			if t.K != 0 {
				return t, errf("the fanin-sweep preset derives k per width; drop the k field")
			}
		} else {
			if t.K < 4 || t.K%2 != 0 {
				return t, errf("fat-tree arity k must be even and >= 4, got %d", t.K)
			}
		}
		if t.HostBps == 0 {
			t.HostBps = 10_000_000_000
		}
		if t.EdgeAggBps == 0 {
			t.EdgeAggBps = 10_000_000_000
		}
		if t.AggCoreBps == 0 {
			t.AggCoreBps = 10_000_000_000
		}
	case "":
		return t, errf("topology needs a kind (%q or %q)", KindDumbbell, KindFatTree)
	default:
		return t, errf("unknown topology kind %q (want %q or %q)", t.Kind, KindDumbbell, KindFatTree)
	}
	if t.LinkDelayUs == 0 {
		t.LinkDelayUs = 5
	}
	if t.SwitchDelayUs == 0 {
		t.SwitchDelayUs = 1
	}
	if t.LinkDelayUs < 0 || t.SwitchDelayUs < 0 {
		return t, errf("delays must be non-negative")
	}
	if t.BufferBytes == 0 {
		t.BufferBytes = 1 << 20
	}
	if t.BufferBytes < 0 || t.MarkBytes < 0 {
		return t, errf("buffer and mark thresholds must be non-negative")
	}
	if preset != PresetFlows {
		if t.Queue != (QueueSpec{}) {
			return t, errf("preset %q owns the queue discipline; drop the topology queue block", preset)
		}
	} else {
		q, err := t.Queue.withDefaults(false)
		if err != nil {
			return t, err
		}
		t.Queue = q
	}
	return t, nil
}

// queueKinds lists the accepted disciplines.
var queueKinds = []string{"droptail", "drr", "codel", "fq-codel", "pie"}

func (q QueueSpec) withDefaults(explicit bool) (QueueSpec, error) {
	if q.Kind == "" {
		if explicit {
			return q, errf("queue needs a kind (one of %s)", strings.Join(queueKinds, ", "))
		}
		q.Kind = "droptail"
	}
	ok := false
	for _, k := range queueKinds {
		if q.Kind == k {
			ok = true
		}
	}
	if !ok {
		return q, errf("unknown queue kind %q (want one of %s)", q.Kind, strings.Join(queueKinds, ", "))
	}
	paramless := q.TargetUs == 0 && q.IntervalUs == 0 && q.TUpdateUs == 0 && q.Quantum == 0
	switch q.Kind {
	case "droptail", "drr":
		if !paramless {
			return q, errf("queue kind %q takes no AQM parameters", q.Kind)
		}
	case "codel", "fq-codel":
		if q.TUpdateUs != 0 {
			return q, errf("tupdate_us is a PIE parameter; %q uses target_us/interval_us", q.Kind)
		}
		if q.TargetUs == 0 {
			q.TargetUs = 50
		}
		if q.IntervalUs == 0 {
			q.IntervalUs = 500
		}
		if q.Kind == "fq-codel" {
			if q.Quantum == 0 {
				q.Quantum = 9216
			}
		} else if q.Quantum != 0 {
			return q, errf("quantum is an fq-codel parameter")
		}
	case "pie":
		if q.IntervalUs != 0 || q.Quantum != 0 {
			return q, errf("pie uses target_us/tupdate_us, not interval_us/quantum")
		}
		if q.TargetUs == 0 {
			q.TargetUs = 50
		}
		if q.TUpdateUs == 0 {
			q.TUpdateUs = 500
		}
	}
	if q.TargetUs < 0 || q.IntervalUs < 0 || q.TUpdateUs < 0 || q.Quantum < 0 {
		return q, errf("queue parameters must be non-negative")
	}
	return q, nil
}

func (f Flow) withDefaults(i, n int, t Topology) (Flow, error) {
	if f.CCA == "" {
		f.CCA = "cubic"
	}
	if _, err := cca.New(f.CCA); err != nil {
		return f, errf("flow %d: unknown cca %q (known: %s)", i, f.CCA, strings.Join(sortedCCANames(), ", "))
	}
	if (f.Gbit > 0) == (f.Bytes > 0) {
		return f, errf("flow %d: set exactly one of gbit (scaled by Options.Scale) and bytes (absolute)", i)
	}
	if f.Gbit < 0 || f.StartMs < 0 || f.DurationMs < 0 || f.TargetBps < 0 || f.Weight < 0 {
		return f, errf("flow %d: negative sizes, times, rates, and weights are invalid", i)
	}
	switch t.Kind {
	case KindDumbbell:
		if f.Src != 0 || f.Dst != 0 {
			return f, errf("flow %d: src/dst are fat-tree fields; dumbbell flows use sender", i)
		}
		if f.Sender < 0 || f.Sender >= t.Senders {
			return f, errf("flow %d: sender %d out of range (topology has %d)", i, f.Sender, t.Senders)
		}
	case KindFatTree:
		if f.Sender != 0 {
			return f, errf("flow %d: sender is a dumbbell field; fat-tree flows use src/dst", i)
		}
		hosts := t.K * t.K * t.K / 4
		if f.Src < 0 || f.Src >= hosts || f.Dst < 0 || f.Dst >= hosts || f.Src == f.Dst {
			return f, errf("flow %d: endpoints %d -> %d invalid for %d hosts (k=%d)", i, f.Src, f.Dst, hosts, t.K)
		}
	}
	if f.After != nil {
		a := *f.After
		if a < 0 || a >= n || a == i {
			return f, errf("flow %d: after=%d must name another flow index in [0, %d)", i, a, n)
		}
	}
	if f.Weight > 0 && t.Queue.Kind != "drr" {
		return f, errf("flow %d: weight needs the drr queue discipline (topology queue is %q)", i, t.Queue.Kind)
	}
	return f, nil
}

func (sw Sweep) validate(preset string) error {
	switch preset {
	case PresetFractionSweep:
		if len(sw.Fractions) == 0 {
			return errf("the fraction-sweep preset needs sweep.fractions")
		}
		for i, f := range sw.Fractions {
			if f < 0.5 || f > 1.0 {
				return errf("sweep.fractions[%d] = %v outside [0.5, 1.0]", i, f)
			}
		}
		if sw.GbitPerFlow <= 0 {
			return errf("the fraction-sweep preset needs sweep.gbit_per_flow > 0")
		}
		if sw.TotalGbit != 0 || len(sw.Widths) != 0 || sw.WideWidth != 0 || len(sw.CCAs) != 0 || len(sw.Queues) != 0 {
			return errf("the fraction-sweep preset takes only sweep.cca, sweep.gbit_per_flow, and sweep.fractions")
		}
	case PresetFanInSweep:
		if len(sw.Widths) == 0 {
			return errf("the fanin-sweep preset needs sweep.widths")
		}
		for i, w := range sw.Widths {
			if w < 2 {
				return errf("sweep.widths[%d] = %d is below the 2-sender minimum", i, w)
			}
		}
		if sw.WideWidth < 0 {
			return errf("sweep.wide_width must be non-negative")
		}
		if sw.TotalGbit <= 0 {
			return errf("the fanin-sweep preset needs sweep.total_gbit > 0")
		}
		if sw.GbitPerFlow != 0 || len(sw.Fractions) != 0 || len(sw.CCAs) != 0 || len(sw.Queues) != 0 {
			return errf("the fanin-sweep preset takes only sweep.cca, sweep.total_gbit, sweep.widths, and sweep.wide_width")
		}
	case PresetAQMMatrix:
		if len(sw.CCAs) == 0 || len(sw.Queues) == 0 {
			return errf("the aqm-matrix preset needs sweep.ccas and sweep.queues")
		}
		for i, name := range sw.CCAs {
			if _, err := cca.New(name); err != nil {
				return errf("sweep.ccas[%d]: unknown cca %q (known: %s)", i, name, strings.Join(sortedCCANames(), ", "))
			}
		}
		if sw.GbitPerFlow <= 0 {
			return errf("the aqm-matrix preset needs sweep.gbit_per_flow > 0")
		}
		if sw.CCA != "" || sw.TotalGbit != 0 || len(sw.Fractions) != 0 || len(sw.Widths) != 0 || sw.WideWidth != 0 {
			return errf("the aqm-matrix preset takes only sweep.ccas, sweep.queues, and sweep.gbit_per_flow")
		}
	}
	if preset != PresetAQMMatrix && sw.CCA != "" {
		if _, err := cca.New(sw.CCA); err != nil {
			return errf("sweep.cca: unknown cca %q (known: %s)", sw.CCA, strings.Join(sortedCCANames(), ", "))
		}
	}
	return nil
}

func sortedCCANames() []string {
	names := append([]string(nil), cca.Names()...)
	sort.Strings(names)
	return names
}
