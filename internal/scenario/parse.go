package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// ParseJSON decodes a spec from its JSON file form. Unknown fields are
// rejected so a typo'd key fails loudly instead of silently running the
// default experiment.
func ParseJSON(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, errf("parse json: %w", err)
	}
	// A trailing second document would silently be ignored otherwise.
	if dec.More() {
		return Spec{}, errf("parse json: trailing data after the spec object")
	}
	return s, nil
}

// ParseTOML decodes a spec from its TOML file form. The parser covers the
// subset scenario files need — tables, arrays of tables, scalar and array
// values — and funnels through the JSON decoder so both formats share one
// schema and one unknown-field policy.
func ParseTOML(data []byte) (Spec, error) {
	tree, err := parseTOML(data)
	if err != nil {
		return Spec{}, errf("parse toml: %w", err)
	}
	js, err := json.Marshal(tree)
	if err != nil {
		return Spec{}, errf("parse toml: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(js))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, errf("parse toml: %w", err)
	}
	return s, nil
}

// LoadFile reads and parses a spec file, choosing the format by extension
// (.json or .toml).
func LoadFile(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, errf("load %s: %w", path, err)
	}
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".json":
		s, err := ParseJSON(data)
		if err != nil {
			return Spec{}, fmt.Errorf("%w (in %s)", err, path)
		}
		return s, nil
	case ".toml":
		s, err := ParseTOML(data)
		if err != nil {
			return Spec{}, fmt.Errorf("%w (in %s)", err, path)
		}
		return s, nil
	default:
		return Spec{}, errf("load %s: unsupported extension %q (want .json or .toml)", path, ext)
	}
}
