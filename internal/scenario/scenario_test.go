package scenario

import (
	"strings"
	"testing"
)

// minimalFraction is a fraction-sweep spec with every optional field
// omitted.
const minimalFraction = `{
  "name": "t",
  "preset": "fraction-sweep",
  "topology": {"kind": "dumbbell"},
  "sweep": {"gbit_per_flow": 10, "fractions": [0.5, 0.75, 1.0]}
}`

// explicitFraction spells out, in TOML, every default minimalFraction
// leaves implicit. The two must canonicalize — and digest — identically.
const explicitFraction = `
name = "t"
preset = "fraction-sweep"

[topology]
kind = "dumbbell"
senders = 2
bottleneck_bps = 10_000_000_000
access_bps = 10_000_000_000
bonded_links = 2
link_delay_us = 5.0
switch_delay_us = 1.0
buffer_bytes = 1_048_576

[sweep]
cca = "cubic"
gbit_per_flow = 10.0
fractions = [0.5, 0.75, 1.0]
`

func mustParseJSON(t *testing.T, s string) Spec {
	t.Helper()
	spec, err := ParseJSON([]byte(s))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func digestOf(t *testing.T, spec Spec) string {
	t.Helper()
	d, err := spec.Digest()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDigestStability: every spelling of the same physics — JSON vs TOML,
// omitted vs explicit defaults — lands on one digest, so they share one
// cache lineage.
func TestDigestStability(t *testing.T) {
	j := mustParseJSON(t, minimalFraction)
	tomlSpec, err := ParseTOML([]byte(explicitFraction))
	if err != nil {
		t.Fatal(err)
	}
	dj, dt := digestOf(t, j), digestOf(t, tomlSpec)
	if dj != dt {
		cj, _ := j.Canonical()
		ct, _ := tomlSpec.Canonical()
		t.Fatalf("digest differs between minimal JSON (%s) and explicit TOML (%s)\njson canonical: %+v\ntoml canonical: %+v", dj, dt, cj, ct)
	}

	id, err := j.CacheID()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(id, CachePrefix) || len(id) != len(CachePrefix)+12 {
		t.Fatalf("CacheID %q: want %q + 12 hex digits", id, CachePrefix)
	}
}

// TestDigestExcludesPresentation: retitling must keep the cache lineage;
// any physics edit must move it.
func TestDigestExcludesPresentation(t *testing.T) {
	base := mustParseJSON(t, minimalFraction)
	d0 := digestOf(t, base)

	renamed := base
	renamed.Name = "a-completely-different-title"
	renamed.Description = "new words"
	renamed.Section = "§9"
	renamed.Order = 999
	if d := digestOf(t, renamed); d != d0 {
		t.Errorf("presentation metadata changed the digest: %s -> %s", d0, d)
	}

	for _, edit := range []struct {
		name string
		mut  func(*Spec)
	}{
		{"transfer size", func(s *Spec) { s.Sweep.GbitPerFlow = 20 }},
		{"sweep axis", func(s *Spec) { s.Sweep.Fractions = []float64{0.5, 1.0} }},
		{"cca", func(s *Spec) { s.Sweep.CCA = "reno" }},
		{"bottleneck rate", func(s *Spec) { s.Topology.BottleneckBps = 1_000_000_000 }},
		{"link delay", func(s *Spec) { s.Topology.LinkDelayUs = 100 }},
		{"access delays", func(s *Spec) { s.Topology.AccessDelaysUs = []float64{5, 250} }},
	} {
		mutated := mustParseJSON(t, minimalFraction)
		sw := *mutated.Sweep
		mutated.Sweep = &sw
		edit.mut(&mutated)
		if d := digestOf(t, mutated); d == d0 {
			t.Errorf("%s edit did not change the digest", edit.name)
		}
	}
}

// TestCanonicalDoesNotMutateCaller: canonicalization returns a defaulted
// copy; the input spec's slices must be left untouched.
func TestCanonicalDoesNotMutateCaller(t *testing.T) {
	spec := Spec{
		Name:     "t",
		Topology: Topology{Kind: KindDumbbell},
		Flows:    []Flow{{Gbit: 1}, {Gbit: 2}},
	}
	if _, err := spec.Canonical(); err != nil {
		t.Fatal(err)
	}
	if spec.Flows[0].CCA != "" {
		t.Errorf("Canonical wrote the default CCA %q back into the caller's flow", spec.Flows[0].CCA)
	}
}

// TestInvalidSpecs: every malformed spec is rejected with an error that
// names the failing field, never silently defaulted.
func TestInvalidSpecs(t *testing.T) {
	cases := []struct {
		name, spec, want string
	}{
		{"missing name", `{"topology":{"kind":"dumbbell"},"flows":[{"gbit":1}]}`, "needs a name"},
		{"unknown preset", `{"name":"t","preset":"nope","topology":{"kind":"dumbbell"}}`, `unknown preset "nope"`},
		{"missing topology kind", `{"name":"t","flows":[{"gbit":1}]}`, "topology needs a kind"},
		{"unknown topology kind", `{"name":"t","topology":{"kind":"ring"},"flows":[{"gbit":1}]}`, `unknown topology kind "ring"`},
		{"no flows", `{"name":"t","topology":{"kind":"dumbbell"}}`, "has no flows"},
		{"unknown queue kind", `{"name":"t","topology":{"kind":"dumbbell","queue":{"kind":"red"}},"flows":[{"gbit":1}]}`, `unknown queue kind "red"`},
		{"queue params on droptail", `{"name":"t","topology":{"kind":"dumbbell","queue":{"kind":"droptail","target_us":50}},"flows":[{"gbit":1}]}`, "takes no AQM parameters"},
		{"pie with quantum", `{"name":"t","topology":{"kind":"dumbbell","queue":{"kind":"pie","quantum":9216}},"flows":[{"gbit":1}]}`, "pie uses target_us/tupdate_us"},
		{"both sizes", `{"name":"t","topology":{"kind":"dumbbell"},"flows":[{"gbit":1,"bytes":5}]}`, "exactly one of gbit"},
		{"neither size", `{"name":"t","topology":{"kind":"dumbbell"},"flows":[{}]}`, "exactly one of gbit"},
		{"unknown cca", `{"name":"t","topology":{"kind":"dumbbell"},"flows":[{"gbit":1,"cca":"quic"}]}`, `unknown cca "quic"`},
		{"sender out of range", `{"name":"t","topology":{"kind":"dumbbell"},"flows":[{"gbit":1,"sender":7}]}`, "sender 7 out of range"},
		{"weight without drr", `{"name":"t","topology":{"kind":"dumbbell"},"flows":[{"gbit":1,"weight":0.5}]}`, "weight needs the drr queue"},
		{"self chain", `{"name":"t","topology":{"kind":"dumbbell"},"flows":[{"gbit":1,"after":0}]}`, "must name another flow"},
		{"fanin with k", `{"name":"t","preset":"fanin-sweep","topology":{"kind":"fattree","k":4},"sweep":{"total_gbit":20,"widths":[4]}}`, "derives k per width"},
		{"fanin on dumbbell", `{"name":"t","preset":"fanin-sweep","topology":{"kind":"dumbbell"},"sweep":{"total_gbit":20,"widths":[4]}}`, "needs the fattree topology"},
		{"odd arity", `{"name":"t","topology":{"kind":"fattree","k":5},"flows":[{"gbit":1,"src":0,"dst":1}]}`, "must be even"},
		{"fraction out of range", `{"name":"t","preset":"fraction-sweep","topology":{"kind":"dumbbell"},"sweep":{"gbit_per_flow":10,"fractions":[0.3]}}`, "outside [0.5, 1.0]"},
		{"sweep preset with flows", `{"name":"t","preset":"fraction-sweep","topology":{"kind":"dumbbell"},"flows":[{"gbit":1}],"sweep":{"gbit_per_flow":10,"fractions":[0.5]}}`, "generates its own flows"},
		{"sweep preset with queue", `{"name":"t","preset":"fraction-sweep","topology":{"kind":"dumbbell","queue":{"kind":"codel"}},"sweep":{"gbit_per_flow":10,"fractions":[0.5]}}`, "owns the queue discipline"},
		{"aqm-matrix stray cca", `{"name":"t","preset":"aqm-matrix","topology":{"kind":"dumbbell"},"sweep":{"cca":"cubic","gbit_per_flow":1,"ccas":["cubic"],"queues":[{"kind":"pie"}]}}`, "takes only sweep.ccas"},
		{"load out of range", `{"name":"t","topology":{"kind":"dumbbell"},"flows":[{"gbit":1}],"loads":[{"fraction":1.5}]}`, "outside (0, 1]"},
		{"dumbbell with fattree fields", `{"name":"t","topology":{"kind":"dumbbell","k":4},"flows":[{"gbit":1}]}`, "does not take fat-tree fields"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec := mustParseJSON(t, c.spec)
			_, err := Compile(spec)
			if err == nil {
				t.Fatalf("Compile accepted an invalid spec: %s", c.spec)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not name the failure (want substring %q)", err, c.want)
			}
			if !strings.HasPrefix(err.Error(), "scenario: ") {
				t.Fatalf("error %q is missing the package prefix", err)
			}
		})
	}
}

// TestParseJSONRejectsUnknownFields: a typo'd key must fail loudly.
func TestParseJSONRejectsUnknownFields(t *testing.T) {
	if _, err := ParseJSON([]byte(`{"name":"t","topolgy":{"kind":"dumbbell"}}`)); err == nil {
		t.Fatal("misspelled key accepted")
	}
	if _, err := ParseJSON([]byte(`{"name":"t"} {"second":"doc"}`)); err == nil || !strings.Contains(err.Error(), "trailing data") {
		t.Fatalf("trailing document accepted: %v", err)
	}
}

// TestBuiltins: the shipped specs compile, and lookups are total.
func TestBuiltins(t *testing.T) {
	for _, name := range BuiltinNames() {
		spec, ok := Builtin(name)
		if !ok {
			t.Fatalf("BuiltinNames lists %q but Builtin does not return it", name)
		}
		if spec.Name != name {
			t.Errorf("builtin %q names itself %q", name, spec.Name)
		}
		e, err := Compile(spec)
		if err != nil {
			t.Errorf("builtin %q does not compile: %v", name, err)
		}
		if e.Name != name || e.Description == "" || e.Section == "" || e.Run == nil {
			t.Errorf("builtin %q compiled with incomplete metadata: %+v", name, e)
		}
	}
	if _, ok := Builtin("no-such-spec"); ok {
		t.Fatal("Builtin returned a spec for an unknown name")
	}
}
