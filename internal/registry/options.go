package registry

import (
	"fmt"
	"runtime"

	"greenenvy/internal/sim"
)

// Options scales the experiment runners. The zero value gives a fast,
// laptop-friendly configuration; Paper() gives the paper's full parameters.
type Options struct {
	// Reps is the number of repetitions per scenario (the paper uses 10).
	// Default 3.
	Reps int
	// Scale multiplies the paper's transfer sizes, in (0, 1]. The CCA
	// sweep (Figures 5–8) moves 50 GB per run at Scale 1; the default
	// 0.04 moves 2 GB, preserving every steady-state ratio while keeping
	// runs short. Figures 1–4 use the paper's sizes already at Scale 1
	// and honor Scale likewise.
	Scale float64
	// Seed drives all randomness. Default 1.
	Seed uint64
	// Workers bounds how many simulator runs execute concurrently. Each
	// repetition is an independent, seed-deterministic engine, so results
	// are byte-identical for every worker count; only wall-clock time
	// changes. Default runtime.GOMAXPROCS(0); 1 forces the serial path.
	Workers int
	// CacheDir, when set, enables the persistent content-addressed result
	// cache: every (experiment cell, repetition) simulation result is
	// memoized on disk keyed by its result-affecting inputs plus the
	// simulator version stamp (see VersionStamp), so repeated runs —
	// same or higher Reps, any Workers — replay from disk instead of
	// simulating, with byte-identical results. Empty disables persistence
	// (the in-process sweep cache still applies).
	CacheDir string
	// NoCache bypasses the persistent cache even when CacheDir is set:
	// nothing is read from or written to disk, forcing full recomputation.
	NoCache bool
	// Shards, when positive, runs each fat-tree repetition on the sharded
	// conservative-synchronization engine with up to this many workers
	// (testbed.Options.Shards). Results for a given topology are
	// byte-identical for every positive value — only wall-clock changes —
	// but differ from the monolithic (0) schedule, so Shards>0 selects a
	// separate cache lineage. Dumbbell experiments ignore it. Composes
	// with Workers: repetitions fan out first, shards within each.
	Shards int
	// Verbose, when set, makes runners print progress lines.
	Verbose bool
}

// WithDefaults fills unset fields and validates the rest. Every Run* entry
// point calls it first and returns its error — bad caller input is an
// error, never a panic.
func (o Options) WithDefaults() (Options, error) {
	if o.Reps == 0 {
		o.Reps = 3
	}
	if o.Scale == 0 {
		o.Scale = 0.04
	}
	if o.Scale < 0 || o.Scale > 1 {
		return Options{}, fmt.Errorf("greenenvy: Scale %v out of (0, 1]", o.Scale)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.Shards < 0 {
		return Options{}, fmt.Errorf("greenenvy: Shards %d negative", o.Shards)
	}
	return o, nil
}

// ShardTag collapses Shards to the single bit that affects results: the
// sharded schedule is byte-identical for every positive worker count, so
// cache identities record only sharded-vs-monolithic.
func (o Options) ShardTag() int {
	if o.Shards > 0 {
		return 1
	}
	return 0
}

// Paper returns the paper's full experiment parameters: 10 repetitions,
// full 50 GB transfers. Expect the CCA sweep to take a long while.
func Paper() Options { return Options{Reps: 10, Scale: 1.0} }

// Logf prints a progress line when Verbose is set.
func (o Options) Logf(format string, args ...any) {
	if o.Verbose {
		fmt.Printf(format+"\n", args...)
	}
}

// PaperGbit is 1 Gbit in bytes: the Figure 1 flows each move 10 Gbit.
const PaperGbit = 1_000_000_000 / 8

// DeadlineFor bounds a run generously: assume at least 500 Mb/s of
// progress plus a 10 s margin.
func DeadlineFor(bytes uint64) sim.Duration {
	return sim.Duration(bytes*8/500e6+10) * sim.Second
}
