package registry

import (
	"os"
	"path/filepath"
	"sync"

	"greenenvy/internal/cache"
)

// The persistent result cache memoizes deterministic simulation results on
// disk at per-(experiment cell, repetition) granularity. Because every
// repetition's seed is derived only from (Options.Seed, repetition index),
// raising Reps against a warm cache reuses the already-computed repetitions
// and simulates only the new ones, and a fully warm run touches no
// simulation at all. Stores are opened once per process per directory so
// hit/miss accounting accumulates across runners.

// Fig5GoldenDigest is the SHA-256 over every measurement in the reduced-scale
// Figure-5 sweep at seed 1 (see TestFig5SweepGoldenDigest). It pins the
// simulator's determinism across refactors: the event engine, timers, queues
// and delay lines may be rewritten freely, but same-seed results must stay
// bit-identical. The constant was captured on the pre-optimization
// container/heap engine (PR 2), so it also proves the allocation-free engine
// reproduces the original event ordering exactly.
//
// It does double duty as the persistent result cache's simulator version
// stamp (see VersionStamp): a PR that intentionally changes simulation
// behaviour must regenerate this constant, and doing so automatically
// invalidates every cached result computed under the old semantics.
//
// If a PR changes simulation *behaviour* on purpose (new CCA dynamics, cost
// model changes, ...), regenerate with:
//
//	go test -run TestFig5SweepGoldenDigest -v
//
// and update the constant in the same commit, explaining why in CHANGES.md.
// Never update it to paper over an unexplained mismatch: that is the test
// catching a determinism bug.
const Fig5GoldenDigest = "4d48a93ef9514caf8c8444854133d31f2d7ab1cb1038230be0dcb2d7268e753a"

// cacheSchema versions the persistent cache's key derivation and the gob
// shapes of the cached result structs. Bump it when either changes form
// without a simulator-behaviour change (which Fig5GoldenDigest covers).
const cacheSchema = "greenenvy-cache-3"

// VersionStamp is the version identity mixed into every persistent cache
// key: entries are only ever returned to a binary whose simulator semantics
// (golden sweep digest) and cache encoding (schema) both match the writer's.
func VersionStamp() string { return cacheSchema + ":" + Fig5GoldenDigest }

var (
	cacheMu     sync.Mutex
	cacheStores = map[string]*cache.Store{}
)

// storeFor opens (once per process per directory) the persistent store.
func storeFor(dir string) (*cache.Store, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if s, ok := cacheStores[dir]; ok {
		return s, nil
	}
	s, err := cache.Open(dir, VersionStamp())
	if err != nil {
		return nil, err
	}
	cacheStores[dir] = s
	return s, nil
}

// CacheStore resolves Options to the persistent store, or nil when
// persistence is disabled (no CacheDir, NoCache set, or the directory
// cannot be created — experiments must keep working without a cache).
func (o Options) CacheStore() *cache.Store {
	if o.NoCache || o.CacheDir == "" {
		return nil
	}
	s, err := storeFor(o.CacheDir)
	if err != nil {
		o.Logf("cache: disabled: %v", err)
		return nil
	}
	return s
}

// CacheStats is this process's accumulated accounting for one persistent
// cache directory.
type CacheStats struct {
	// Hits and Misses count per-repetition lookups; corrupted or
	// version-mismatched entries count as misses.
	Hits, Misses uint64
	// Puts counts freshly computed results persisted.
	Puts uint64
	// BytesRead and BytesWritten count on-disk bytes moved.
	BytesRead, BytesWritten uint64
}

// CacheStatsFor returns the hit/miss/bytes accounting accumulated by this
// process for the cache at dir (zero if the dir was never used).
func CacheStatsFor(dir string) CacheStats {
	cacheMu.Lock()
	s := cacheStores[dir]
	cacheMu.Unlock()
	st := s.Stats()
	return CacheStats{
		Hits:         st.Hits,
		Misses:       st.Misses,
		Puts:         st.Puts,
		BytesRead:    st.BytesRead,
		BytesWritten: st.BytesWritten,
	}
}

// ClearCache empties the persistent result cache at dir (all entries, all
// version stamps). The directory stays usable.
func ClearCache(dir string) error {
	s, err := storeFor(dir)
	if err != nil {
		return err
	}
	return s.Clear()
}

// DefaultCacheDir is the conventional per-user cache location
// (os.UserCacheDir()/greenenvy), or "" when the platform defines none.
func DefaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "greenenvy")
}
