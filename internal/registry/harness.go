package registry

import (
	"fmt"

	"greenenvy/internal/cache"
	"greenenvy/internal/sim"
	"greenenvy/internal/stats"
	"greenenvy/internal/testbed"
)

// This file is the shared run harness behind the registered experiments.
// RepeatRuns owns repetition fan-out, derived seeds, and persistent-cache
// threading; RunCell owns the per-cell metric aggregation that every figure
// used to hand-roll: extract one or more scalars from each repetition's
// RunResult in run order and summarize them with stats.MeanStd. Experiments
// keep only their scenario construction and result interpretation.

// BuildFunc constructs one repetition's testbed from its derived seed. It
// must not capture state shared across repetitions; two call sites with the
// same cell id and seed must build identical testbeds (see RepeatRuns).
type BuildFunc = func(seed uint64) (*testbed.Testbed, error)

// Metric extracts one scalar from a repetition's bracketed measurement.
type Metric = func(testbed.RunResult) float64

// Shared metric extractors.

// SenderJoules is the total energy across all sender hosts.
func SenderJoules(r testbed.RunResult) float64 { return r.TotalSenderJ }

// RunSeconds is the experiment's wall-clock (simulated) duration.
func RunSeconds(r testbed.RunResult) float64 { return r.Duration.Seconds() }

// EventsFired is the discrete-event count of the run, aggregated across
// every partition engine on the sharded path (never just shard 0's).
func EventsFired(r testbed.RunResult) float64 { return float64(r.EventsFired) }

// FirstSenderWatts is host 0's average power over the run.
func FirstSenderWatts(r testbed.RunResult) float64 {
	return r.SenderEnergyJ[0] / r.Duration.Seconds()
}

// Agg summarizes one metric over a cell's repetitions.
type Agg struct{ Mean, Std float64 }

// RunCell runs one experiment cell — Reps repetitions fanned out over
// Options.Workers with per-repetition persistent caching — and aggregates
// each requested metric over the repetitions in run order.
func RunCell(o Options, id string, build BuildFunc, deadline sim.Duration, metrics ...Metric) ([]Agg, error) {
	runs, err := RepeatRuns(o, id, build, deadline)
	if err != nil {
		return nil, err
	}
	out := make([]Agg, len(metrics))
	for i, m := range metrics {
		vals := make([]float64, len(runs))
		for j, r := range runs {
			vals[j] = m(r)
		}
		out[i].Mean, out[i].Std = stats.MeanStd(vals)
	}
	return out, nil
}

// RepeatRuns centralizes the repetition loop with derived seeds, fanned out
// over Options.Workers goroutines. Each repetition builds and runs its own
// testbed, so build must not capture state shared across repetitions.
//
// id names the experiment cell for the persistent cache and must encode
// every result-affecting parameter that the per-repetition seed does not
// already capture (transfer bytes, rates, loads, topology, CCA, MTU, ...).
// Two call sites with the same id and seed MUST build identical testbeds.
func RepeatRuns(o Options, id string, build func(seed uint64) (*testbed.Testbed, error), deadline sim.Duration) ([]testbed.RunResult, error) {
	store := o.CacheStore()
	return testbed.RepeatParallel(o.Reps, o.Seed, o.Workers, func(rep int, seed uint64) (testbed.RunResult, error) {
		key := cache.NewKey("run", id, seed)
		var cached testbed.RunResult
		if store.Get(key, &cached) {
			return cached, nil
		}
		tb, err := build(seed)
		if err != nil {
			return testbed.RunResult{}, err
		}
		r, err := tb.Run(deadline)
		if err == nil {
			// Best-effort: a full disk or unwritable store must not
			// fail the experiment, only future warm starts.
			_ = store.Put(key, r)
		}
		return r, err
	})
}

// RepeatStreamRuns is RepeatRuns for the streaming churn path: the same
// derived-seed repetition fan-out and per-repetition persistent caching,
// but each repetition produces an O(1)-size testbed.StreamResult instead
// of retained per-flow reports. Stream runs cache under the "stream" key
// kind so their gob shape evolves independently of RunResult's.
func RepeatStreamRuns(o Options, id string, run func(seed uint64) (testbed.StreamResult, error)) ([]testbed.StreamResult, error) {
	store := o.CacheStore()
	root := sim.NewRNG(o.Seed)
	out := make([]testbed.StreamResult, o.Reps)
	err := testbed.ForEach(o.Reps, o.Workers, func(rep int) error {
		seed := root.Split(uint64(rep)).Uint64()
		key := cache.NewKey("stream", id, seed)
		var cached testbed.StreamResult
		if store.Get(key, &cached) {
			out[rep] = cached
			return nil
		}
		r, err := run(seed)
		if err != nil {
			return fmt.Errorf("repetition %d: %w", rep, err)
		}
		_ = store.Put(key, r)
		out[rep] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
