// Package registry is the experiment catalogue and shared run harness the
// root package and the scenario compiler both target. An experiment
// registers once — name, aliases, description, paper section, run function —
// and the shared tooling (cmd/greenbench, the registry tests, the scenario
// compiler, future sweep drivers) discovers it from here instead of
// hard-coding a dispatch switch per figure.
//
// The package also owns Options (the uniform runner configuration), the
// repetition harness (RunCell / RepeatRuns / RepeatStreamRuns) and the
// persistent-cache plumbing those helpers thread through, so a compiled
// scenario runs through exactly the machinery the handwritten figures use.
package registry

import (
	"fmt"
	"sort"
)

// Result is the uniform product of every registered experiment: the rows
// the paper reports as aligned text, and a self-contained SVG rendering of
// the figure. Analytic reports without a natural chart render their text as
// an SVG panel (see plot.TextPanel), so both methods always succeed on a
// successfully computed result.
type Result interface {
	// Table renders the experiment's rows as aligned text, mirroring what
	// the paper reports.
	Table() string
	// SVG renders the experiment as a self-contained SVG document.
	SVG() (string, error)
}

// Experiment describes one registered scenario. Adding an experiment is one
// Register call (conventionally from an init function next to the runner, or
// from scenario.Compile for spec-defined experiments); greenbench's
// -fig list/-fig all and the registry tests pick it up with no further
// plumbing.
type Experiment struct {
	// Name is the canonical identifier ("fig1", "incast"). It is the -fig
	// argument, the SVG file name, and must be unique across the registry.
	Name string
	// Aliases also resolve to this experiment ("1" for "fig1").
	Aliases []string
	// Description is a one-line summary for listings.
	Description string
	// Section names the paper section the experiment reproduces ("§4.1").
	Section string
	// Order positions the experiment in Experiments() — and so in
	// greenbench -fig all — lower first; ties keep registration order.
	Order int
	// Run executes the experiment. It must validate its Options (returning
	// an error, never panicking, on bad input) and honor Reps, Scale,
	// Seed, Workers, CacheDir/NoCache, and Verbose as applicable.
	Run func(Options) (Result, error)
}

var (
	experimentList  []Experiment
	experimentIndex = map[string]int{} // canonical name and aliases → index
)

// Register adds an experiment to the registry. It panics on a missing name
// or run function and on name/alias collisions: registration happens at
// init time, so a conflict is a programmer error, not a runtime condition.
func Register(e Experiment) {
	if e.Name == "" || e.Run == nil {
		panic("greenenvy: Register: experiment needs a Name and a Run function")
	}
	for _, key := range append([]string{e.Name}, e.Aliases...) {
		if _, dup := experimentIndex[key]; dup {
			panic(fmt.Sprintf("greenenvy: Register: %q already registered", key))
		}
	}
	experimentList = append(experimentList, e)
	idx := len(experimentList) - 1
	experimentIndex[e.Name] = idx
	for _, a := range e.Aliases {
		experimentIndex[a] = idx
	}
}

// Experiments returns every registered experiment sorted by Order (ties
// keep registration order). The slice is a copy; callers may reorder it.
func Experiments() []Experiment {
	out := make([]Experiment, len(experimentList))
	copy(out, experimentList)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Order < out[j].Order })
	return out
}

// Lookup resolves a canonical name or alias to its experiment.
func Lookup(name string) (Experiment, bool) {
	i, ok := experimentIndex[name]
	if !ok {
		return Experiment{}, false
	}
	return experimentList[i], true
}

// Names returns the canonical names in Experiments() order.
func Names() []string {
	exps := Experiments()
	names := make([]string, len(exps))
	for i, e := range exps {
		names[i] = e.Name
	}
	return names
}
