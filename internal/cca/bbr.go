package cca

import (
	"greenenvy/internal/sim"
)

// BBR implements BBR v1 (Cardwell et al., CACM 2017) at the level of detail
// the testbed needs: a windowed-max bottleneck-bandwidth filter, a
// windowed-min propagation-delay filter, and the four-state machine
// (Startup, Drain, ProbeBW with an eight-phase gain cycle, ProbeRTT). BBR
// paces every packet; loss is ignored except for keeping the RTO machinery
// honest.
type BBR struct {
	params bbrParams

	state     bbrState
	btlBw     winMax // bytes/second, max over bwWindowRounds rounds
	rtProp    sim.Duration
	rtPropAt  sim.Time
	pacing    float64 // bits/second
	cwnd      float64 // bytes
	cycleIdx  int
	cycleAt   sim.Time
	fullBw    float64
	fullBwCnt int

	round          uint64
	nextRoundAt    uint64 // delivered count starting the next round
	probeRTTDoneAt sim.Time
	priorCwnd      float64
	inflightHi     float64 // bbr2 only: loss-bounded inflight cap
	lastLossRound  uint64
	mss            float64
}

type bbrState int

const (
	bbrStartup bbrState = iota
	bbrDrain
	bbrProbeBW
	bbrProbeRTT
)

// bbrParams separate v1 from the v2 alpha. The v2 alpha constants encode
// the conservatism (and immaturity) the paper observed: it cruises below
// the estimated bandwidth, probes less aggressively, spends more time in
// ProbeRTT, and responds to loss by capping inflight — the combination that
// makes it ~40 % less energy-efficient end to end (Fig 5) despite drawing
// the lowest instantaneous power (Fig 6).
type bbrParams struct {
	name           string
	startupGain    float64
	cruiseGain     float64 // pacing gain in steady phases
	probeUpGain    float64
	probeDownGain  float64
	cwndGain       float64
	bwWindowRounds uint64
	rtPropWindow   sim.Duration
	probeRTTEvery  sim.Duration
	probeRTTDur    sim.Duration
	lossResponse   float64 // 0 = ignore loss (v1); else inflight_hi factor
	headroom       float64 // fraction of inflight_hi usable (1 = all)
}

func bbrV1Params() bbrParams {
	return bbrParams{
		name:           "bbr",
		startupGain:    2.885,
		cruiseGain:     1.0,
		probeUpGain:    1.25,
		probeDownGain:  0.75,
		cwndGain:       2.0,
		bwWindowRounds: 10,
		rtPropWindow:   10 * sim.Second,
		probeRTTEvery:  10 * sim.Second,
		probeRTTDur:    200 * sim.Millisecond,
		lossResponse:   0,
		headroom:       1.0,
	}
}

func bbrV2AlphaParams() bbrParams {
	return bbrParams{
		name:        "bbr2",
		startupGain: 2.0, // slower startup than v1
		// The paper measures the alpha release ~40% less energy
		// efficient end to end than v1 without identifying a root
		// cause ("might be lacking efficient implementation or prone
		// to undiscovered bugs", §4.3). We reproduce the observed
		// behaviour as sustained under-utilization: the alpha cruises
		// far below its bandwidth estimate while periodic probe
		// phases keep the estimate itself accurate.
		cruiseGain:     0.65,
		probeUpGain:    1.25,
		probeDownGain:  0.7,
		cwndGain:       2.0,
		bwWindowRounds: 10,
		rtPropWindow:   10 * sim.Second,
		probeRTTEvery:  5 * sim.Second, // probes RTT twice as often
		probeRTTDur:    200 * sim.Millisecond,
		lossResponse:   0.7,
		headroom:       0.85,
	}
}

func init() {
	Register("bbr", func() CongestionControl { return &BBR{params: bbrV1Params()} })
	Register("bbr2", func() CongestionControl { return &BBR{params: bbrV2AlphaParams()} })
}

// NewBBR returns a BBR v1 instance.
func NewBBR() *BBR { return &BBR{params: bbrV1Params()} }

// NewBBR2 returns the BBRv2 alpha instance.
func NewBBR2() *BBR { return &BBR{params: bbrV2AlphaParams()} }

// Name implements CongestionControl.
func (b *BBR) Name() string { return b.params.name }

// Init implements CongestionControl.
func (b *BBR) Init(c Conn) {
	b.mss = float64(c.MSS())
	b.state = bbrStartup
	b.cwnd = 10 * b.mss
	// Until the first rate sample, pace at a nominal 1 Gb/s so startup
	// is not serialized by an absent estimate.
	b.pacing = 1e9 * b.params.startupGain
	b.inflightHi = 1 << 40
}

// OnAck implements CongestionControl.
//
//greenvet:hotpath
func (b *BBR) OnAck(c Conn, info AckInfo) {
	now := c.Now()

	// Round accounting.
	if info.Delivered >= b.nextRoundAt {
		b.round++
		b.nextRoundAt = info.Delivered + uint64(c.BytesInFlight())
	}

	// The staleness check must precede the filter refresh: an expired
	// rtProp both triggers ProbeRTT and allows the estimate to rise.
	rtExpired := b.rtProp > 0 && now-b.rtPropAt > b.params.probeRTTEvery

	// Update filters.
	if info.DeliveryRate > 0 && (!info.AppLimited || info.DeliveryRate > b.btlBw.Get()) {
		b.btlBw.Update(info.DeliveryRate, b.round, b.params.bwWindowRounds)
	}
	if info.RTT > 0 {
		if b.rtProp == 0 || info.RTT <= b.rtProp || now-b.rtPropAt > b.params.rtPropWindow {
			b.rtProp = info.RTT
			b.rtPropAt = now
		}
	}

	b.advanceStateMachine(c, now, rtExpired)
	b.setPacingAndCwnd(c)
}

func (b *BBR) advanceStateMachine(c Conn, now sim.Time, rtExpired bool) {
	switch b.state {
	case bbrStartup:
		// Exit when bandwidth stops growing ≥25% for three rounds.
		bw := b.btlBw.Get()
		if bw > b.fullBw*1.25 {
			b.fullBw = bw
			b.fullBwCnt = 0
		} else if bw > 0 {
			b.fullBwCnt++
			if b.fullBwCnt >= 3 {
				b.state = bbrDrain
			}
		}
	case bbrDrain:
		if float64(c.BytesInFlight()) <= b.bdp(1.0) {
			b.enterProbeBW(now)
		}
	case bbrProbeBW:
		// Advance the gain cycle once per rtProp.
		phase := b.rtProp
		if phase <= 0 {
			phase = sim.Millisecond
		}
		if now-b.cycleAt >= phase {
			b.cycleIdx = (b.cycleIdx + 1) % 8
			b.cycleAt = now
		}
		// Enter ProbeRTT when the rtProp estimate is stale.
		if rtExpired {
			b.state = bbrProbeRTT
			b.priorCwnd = b.cwnd
			b.probeRTTDoneAt = now + b.params.probeRTTDur
		}
	case bbrProbeRTT:
		if now >= b.probeRTTDoneAt {
			b.rtPropAt = now // refreshed by draining the pipe
			b.cwnd = b.priorCwnd
			b.enterProbeBW(now)
		}
	}
}

func (b *BBR) enterProbeBW(now sim.Time) {
	b.state = bbrProbeBW
	b.cycleIdx = 2 // start in a cruise phase
	b.cycleAt = now
}

// bdp returns gain × estimated bandwidth-delay product in bytes.
func (b *BBR) bdp(gain float64) float64 {
	bw := b.btlBw.Get()
	if bw == 0 || b.rtProp == 0 {
		return gain * 10 * b.mss
	}
	return gain * bw * b.rtProp.Seconds()
}

func (b *BBR) gain() float64 {
	switch b.state {
	case bbrStartup:
		return b.params.startupGain
	case bbrDrain:
		return 1 / b.params.startupGain
	case bbrProbeRTT:
		return 1.0
	default:
		switch b.cycleIdx {
		case 0:
			return b.params.probeUpGain
		case 1:
			return b.params.probeDownGain
		default:
			return b.params.cruiseGain
		}
	}
}

func (b *BBR) setPacingAndCwnd(c Conn) {
	bw := b.btlBw.Get() // bytes/second
	if bw > 0 {
		b.pacing = 8 * bw * b.gain()
	}
	switch b.state {
	case bbrProbeRTT:
		b.cwnd = 4 * b.mss
	default:
		cw := b.bdp(b.params.cwndGain)
		cap := b.inflightHi * b.params.headroom
		if cw > cap {
			cw = cap
		}
		if cw < 4*b.mss {
			cw = 4 * b.mss
		}
		b.cwnd = cw
	}
}

// OnLoss implements CongestionControl. v1 ignores loss; the v2 alpha caps
// inflight at lossResponse × the inflight level where loss occurred, at
// most once per round.
//
//greenvet:hotpath
func (b *BBR) OnLoss(c Conn) {
	if b.params.lossResponse == 0 || b.round == b.lastLossRound {
		return
	}
	b.lastLossRound = b.round
	hi := float64(c.BytesInFlight()) * b.params.lossResponse
	if hi < 4*b.mss {
		hi = 4 * b.mss
	}
	b.inflightHi = hi
}

// OnRTO implements CongestionControl: collapse the window but keep the
// model (as Linux BBR does, modulo conservation details).
//
//greenvet:hotpath
func (b *BBR) OnRTO(c Conn) {
	b.cwnd = float64(c.MSS())
}

// CWnd implements CongestionControl.
func (b *BBR) CWnd() float64 { return b.cwnd }

// PacingRate implements CongestionControl (bits/second).
func (b *BBR) PacingRate() float64 { return b.pacing }

// ECNCapable implements CongestionControl.
func (b *BBR) ECNCapable() bool { return false }

// State exposes the current state for tests ("startup", "drain", ...).
func (b *BBR) State() string {
	switch b.state {
	case bbrStartup:
		return "startup"
	case bbrDrain:
		return "drain"
	case bbrProbeBW:
		return "probe_bw"
	default:
		return "probe_rtt"
	}
}

// BtlBw exposes the bandwidth estimate (bytes/second) for tests.
func (b *BBR) BtlBw() float64 { return b.btlBw.Get() }

// winMax is a compact windowed-max filter (Nichols-style, three samples)
// keyed by round number.
type winMax struct {
	v [3]float64
	r [3]uint64
}

// Update inserts a sample for the given round with the given window length
// in rounds.
func (w *winMax) Update(value float64, round, window uint64) {
	if value >= w.v[0] || round-w.r[0] > window {
		w.v = [3]float64{value, value, value}
		w.r = [3]uint64{round, round, round}
		return
	}
	if value >= w.v[1] {
		w.v[1], w.v[2] = value, value
		w.r[1], w.r[2] = round, round
	} else if value >= w.v[2] {
		w.v[2] = value
		w.r[2] = round
	}
	// Age out the best sample when it leaves the window.
	if round-w.r[0] > window {
		w.v[0], w.v[1] = w.v[1], w.v[2]
		w.r[0], w.r[1] = w.r[1], w.r[2]
		w.v[2] = value
		w.r[2] = round
	}
}

// Get returns the current windowed maximum.
func (w *winMax) Get() float64 { return w.v[0] }
