// Package cca implements the congestion control algorithms the paper
// measures (§3): TCP Reno, CUBIC, DCTCP, BBR (v1), BBRv2 (alpha), Vegas,
// Scalable, Westwood, and HighSpeed TCP, plus the paper's custom kernel
// module that "replaces any CC mechanism with a large, constant cwnd value"
// (the baseline).
//
// Algorithms are written against a small Conn interface, mirroring how
// Linux's tcp_congestion_ops decouples algorithms from the stack. Each
// algorithm owns the congestion window (bytes) and, if it paces, a pacing
// rate; internal/tcp enforces both.
package cca

import (
	"fmt"
	"sort"

	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
)

// Conn is the sender state an algorithm may observe. It is implemented by
// *tcp.Sender.
type Conn interface {
	// Now returns the current simulated time.
	Now() sim.Time
	// MSS returns the maximum segment (payload) size in bytes.
	MSS() int
	// SRTT returns the smoothed RTT estimate (0 until the first sample).
	SRTT() sim.Duration
	// MinRTT returns the minimum RTT observed (0 until the first sample).
	MinRTT() sim.Duration
	// BytesInFlight returns the current outstanding bytes estimate.
	BytesInFlight() int
}

// AckInfo describes one ACK event delivered to the algorithm.
type AckInfo struct {
	// AckedBytes is the number of bytes newly acknowledged (cumulative
	// plus selective).
	AckedBytes int
	// RTT is the RTT sample carried by this ACK (0 if none).
	RTT sim.Duration
	// ECE reports whether the ACK carried an ECN echo.
	ECE bool
	// Delivered is the total bytes delivered so far.
	Delivered uint64
	// DeliveryRate is the delivery-rate sample in bytes/second computed
	// by the sender's rate estimator (0 if unavailable).
	DeliveryRate float64
	// AppLimited reports whether the rate sample was taken while the
	// sender was application-limited (BBR must not use such samples to
	// lower its bandwidth estimate).
	AppLimited bool
	// InRecovery reports whether the sender is in loss recovery.
	InRecovery bool
	// RoundTrips counts delivery rounds (incremented once per RTT).
	RoundTrips uint64
	// INT carries the in-band telemetry echoed by this ACK, for
	// algorithms that request it (HPCC).
	INT []netsim.INTHop
}

// INTConsumer is implemented by algorithms that need in-band network
// telemetry stamped onto their data packets (HPCC). The transport checks
// for it with a type assertion.
type INTConsumer interface {
	NeedsINT() bool
}

// CongestionControl is the algorithm interface. Implementations are not
// safe for concurrent use; the simulator is single-threaded.
type CongestionControl interface {
	// Name returns the registry name (e.g. "cubic").
	Name() string
	// Init is called once before the first segment is sent.
	Init(c Conn)
	// OnAck is called for every ACK that acknowledges new data.
	OnAck(c Conn, info AckInfo)
	// OnLoss is called when loss is detected via duplicate ACKs/SACK
	// (fast retransmit), once per recovery episode.
	OnLoss(c Conn)
	// OnRTO is called on a retransmission timeout.
	OnRTO(c Conn)
	// CWnd returns the congestion window in bytes.
	CWnd() float64
	// PacingRate returns the pacing rate in bits/second, or 0 if the
	// algorithm does not pace (pure window-based sending).
	PacingRate() float64
	// ECNCapable reports whether segments should carry ECT (and the
	// receiver should use precise ECE feedback). Only DCTCP returns true.
	ECNCapable() bool
}

// Factory constructs a fresh algorithm instance.
type Factory func() CongestionControl

var registry = map[string]Factory{}

// Register adds a named algorithm to the registry. It panics on duplicate
// names, which would indicate an init-order bug.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("cca: duplicate registration of %q", name))
	}
	registry[name] = f
}

// New constructs the named algorithm or returns an error listing the
// available names.
func New(name string) (CongestionControl, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("cca: unknown algorithm %q (have %v)", name, Names())
	}
	return f(), nil
}

// MustNew is New for static names; it panics on unknown algorithms.
func MustNew(name string) CongestionControl {
	c, err := New(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Names returns the registered algorithm names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PaperOrder lists the algorithms in the order of the paper's Figure 5
// x-axis, which is also the canonical iteration order for the benchmark
// harness.
func PaperOrder() []string {
	return []string{"bbr", "westwood", "highspeed", "scalable", "reno", "vegas", "dctcp", "cubic", "baseline", "bbr2"}
}

// ProductionOrder lists the §5 production datacenter algorithms the paper
// wished it could evaluate ("it is particularly intriguing for us to
// evaluate production algorithms of large data centers, i.e., Swift, DCQCN,
// and HPCC") and invited the community to benchmark. This reproduction
// implements them; RunExtendedCCAs measures their energy.
func ProductionOrder() []string {
	return []string{"swift", "dcqcn", "hpcc"}
}
