package cca

import "greenenvy/internal/sim"

// Vegas implements TCP Vegas (Brakmo et al., SIGCOMM 1994): a delay-based
// algorithm that compares expected throughput (cwnd/baseRTT) with actual
// throughput (cwnd/RTT) once per round trip and nudges the window to keep
// between alpha and beta segments queued in the network.
type Vegas struct {
	cwnd     float64
	ssthresh float64

	baseRTT  sim.Duration // minimum observed RTT
	roundMin sim.Duration // minimum RTT this round
	roundEnd uint64       // delivered count ending the current round
	samples  int
}

// Vegas parameters (segments of queued data).
const (
	vegasAlpha = 2.0
	vegasBeta  = 4.0
	vegasGamma = 1.0
)

func init() { Register("vegas", func() CongestionControl { return NewVegas() }) }

// NewVegas returns a Vegas instance.
func NewVegas() *Vegas { return &Vegas{} }

// Name implements CongestionControl.
func (v *Vegas) Name() string { return "vegas" }

// Init implements CongestionControl.
func (v *Vegas) Init(c Conn) {
	v.cwnd = float64(10 * c.MSS())
	v.ssthresh = 1 << 40
}

// OnAck implements CongestionControl.
//
//greenvet:hotpath
func (v *Vegas) OnAck(c Conn, info AckInfo) {
	if info.RTT > 0 {
		if v.baseRTT == 0 || info.RTT < v.baseRTT {
			v.baseRTT = info.RTT
		}
		if v.roundMin == 0 || info.RTT < v.roundMin {
			v.roundMin = info.RTT
		}
		v.samples++
	}
	if info.InRecovery {
		return
	}
	if info.Delivered < v.roundEnd {
		return
	}
	// A round trip of data has been delivered: run the Vegas estimator.
	v.roundEnd = info.Delivered + uint64(v.cwnd)
	if v.samples < 2 || v.roundMin == 0 || v.baseRTT == 0 {
		// Not enough samples: grow like slow start.
		v.cwnd += float64(c.MSS())
		return
	}
	mss := float64(c.MSS())
	expected := v.cwnd / v.baseRTT.Seconds()
	actual := v.cwnd / v.roundMin.Seconds()
	diffSegs := (expected - actual) * v.baseRTT.Seconds() / mss

	if v.cwnd < v.ssthresh {
		// Modified slow start: double only every other round, leave
		// when queueing exceeds gamma.
		if diffSegs > vegasGamma {
			v.ssthresh = v.cwnd
			v.cwnd -= mss * (diffSegs - vegasGamma)
		} else {
			v.cwnd += mss * (v.cwnd / mss) / 2 // half-rate exponential
		}
	} else {
		switch {
		case diffSegs < vegasAlpha:
			v.cwnd += mss
		case diffSegs > vegasBeta:
			v.cwnd -= mss
		}
	}
	if min := float64(2 * c.MSS()); v.cwnd < min {
		v.cwnd = min
	}
	v.roundMin = 0
	v.samples = 0
}

// OnLoss implements CongestionControl: Vegas falls back to Reno-style
// halving on packet loss.
//
//greenvet:hotpath
func (v *Vegas) OnLoss(c Conn) {
	v.cwnd /= 2
	if min := float64(2 * c.MSS()); v.cwnd < min {
		v.cwnd = min
	}
	v.ssthresh = v.cwnd
}

// OnRTO implements CongestionControl.
//
//greenvet:hotpath
func (v *Vegas) OnRTO(c Conn) {
	v.ssthresh = v.cwnd / 2
	v.cwnd = float64(c.MSS())
}

// CWnd implements CongestionControl.
func (v *Vegas) CWnd() float64 { return v.cwnd }

// PacingRate implements CongestionControl.
func (v *Vegas) PacingRate() float64 { return 0 }

// ECNCapable implements CongestionControl.
func (v *Vegas) ECNCapable() bool { return false }
