package cca

import "greenenvy/internal/sim"

// DCQCN implements the RDMA congestion control of Zhu et al. (SIGCOMM
// 2015) at the fidelity the testbed needs — another of the §5 production
// algorithms. DCQCN is rate-based: ECN marks at the switch become CNPs at
// the sender, which cuts its sending rate by a factor derived from an EWMA
// congestion estimate α, then recovers through fast-recovery (binary
// search back to the target rate) and additive-increase stages. We realize
// the rate through the transport's pacer, with a generous window so pacing
// is the binding control.
type DCQCN struct {
	rateBps   float64 // current rate RC (bits/second)
	targetBps float64 // target rate RT
	alpha     float64
	lineRate  float64
	mss       float64

	lastCNP     sim.Time
	lastAlphaUp sim.Time
	lastInc     sim.Time
	fastSteps   int
}

// DCQCN parameters (from the paper's defaults, timescales kept).
const (
	dcqcnG       = 1.0 / 256
	dcqcnAlphaT  = 55 * sim.Microsecond // alpha-update timer
	dcqcnIncT    = 55 * sim.Microsecond // rate-increase timer (paper: 55µs byte counter analogue)
	dcqcnRaiBps  = 40e6 * 8             // additive increase: 40 MB/s
	dcqcnMinRate = 10e6 * 8             // 10 MB/s floor
)

func init() { Register("dcqcn", func() CongestionControl { return NewDCQCN() }) }

// NewDCQCN returns a DCQCN instance.
func NewDCQCN() *DCQCN { return &DCQCN{} }

// Name implements CongestionControl.
func (d *DCQCN) Name() string { return "dcqcn" }

// Init implements CongestionControl.
func (d *DCQCN) Init(c Conn) {
	d.mss = float64(c.MSS())
	// RDMA NICs start at line rate; our hosts' bonded NICs give 20 Gb/s,
	// but the known fabric is 10 Gb/s.
	d.lineRate = 10e9
	d.rateBps = d.lineRate
	d.targetBps = d.lineRate
	d.alpha = 1
}

// OnAck implements CongestionControl. An ECE-marked ACK plays the role of
// a CNP.
//
//greenvet:hotpath
func (d *DCQCN) OnAck(c Conn, info AckInfo) {
	now := c.Now()
	if info.ECE {
		if now-d.lastCNP >= 50*sim.Microsecond { // CNP pacing interval
			d.lastCNP = now
			d.targetBps = d.rateBps
			d.rateBps *= 1 - d.alpha/2
			if d.rateBps < dcqcnMinRate {
				d.rateBps = dcqcnMinRate
			}
			d.alpha = (1-dcqcnG)*d.alpha + dcqcnG
			d.lastAlphaUp = now
			d.fastSteps = 0
			d.lastInc = now
		}
		return
	}
	// Alpha decays while no CNPs arrive.
	if now-d.lastAlphaUp >= dcqcnAlphaT {
		d.alpha *= 1 - dcqcnG
		d.lastAlphaUp = now
	}
	// Rate recovery.
	if now-d.lastInc >= dcqcnIncT {
		d.lastInc = now
		if d.fastSteps < 5 {
			// Fast recovery: binary search toward the target.
			d.fastSteps++
		} else {
			// Additive increase raises the target.
			d.targetBps += dcqcnRaiBps
			if d.targetBps > d.lineRate {
				d.targetBps = d.lineRate
			}
		}
		d.rateBps = (d.rateBps + d.targetBps) / 2
	}
}

// OnLoss implements CongestionControl. DCQCN assumes a lossless (PFC)
// fabric and defines no loss response; on this testbed's lossy paths a
// drop must cut harder than a CNP would (α decays toward zero between
// CNPs, so the CNP formula alone barely reacts). We halve, the
// conventional fallback.
//
//greenvet:hotpath
func (d *DCQCN) OnLoss(c Conn) {
	d.targetBps = d.rateBps
	d.rateBps /= 2
	if d.rateBps < dcqcnMinRate {
		d.rateBps = dcqcnMinRate
	}
	d.alpha = (1-dcqcnG)*d.alpha + dcqcnG
	d.fastSteps = 0
}

// OnRTO implements CongestionControl.
//
//greenvet:hotpath
func (d *DCQCN) OnRTO(c Conn) {
	d.rateBps = dcqcnMinRate
	d.targetBps = dcqcnMinRate
}

// CWnd implements CongestionControl: rate-based, so the window just needs
// to keep the pacer busy (2× the line-rate BDP at a generous RTT bound).
func (d *DCQCN) CWnd() float64 {
	return 2 * d.lineRate / 8 * 1e-3 // 2 × (line rate × 1 ms)
}

// PacingRate implements CongestionControl.
func (d *DCQCN) PacingRate() float64 { return d.rateBps }

// ECNCapable implements CongestionControl: DCQCN requires ECN marking.
func (d *DCQCN) ECNCapable() bool { return true }
