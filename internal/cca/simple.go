package cca

import "math"

// This file holds the three "Reno with a different response function"
// algorithms the paper measures: Scalable TCP, HighSpeed TCP, and TCP
// Westwood — plus the paper's constant-cwnd baseline module.

// Scalable implements Scalable TCP (Kelly, CCR 2003): cwnd += 0.01 per
// acknowledged segment, multiplicative decrease by 1/8. Its recovery time
// from a loss is invariant in the window size.
type Scalable struct {
	Reno
}

func init() { Register("scalable", func() CongestionControl { return &Scalable{} }) }

// Name implements CongestionControl.
func (s *Scalable) Name() string { return "scalable" }

// OnAck implements CongestionControl.
//
//greenvet:hotpath
func (s *Scalable) OnAck(c Conn, info AckInfo) {
	if info.InRecovery {
		return
	}
	if s.InSlowStart() {
		s.Reno.OnAck(c, info)
		return
	}
	// a = 0.01 per acked segment.
	s.cwnd += 0.01 * float64(info.AckedBytes)
}

// OnLoss implements CongestionControl: b = 0.125.
//
//greenvet:hotpath
func (s *Scalable) OnLoss(c Conn) {
	s.cwnd *= 1 - 0.125
	if min := float64(2 * c.MSS()); s.cwnd < min {
		s.cwnd = min
	}
	s.ssthresh = s.cwnd
}

// HighSpeed implements HighSpeed TCP (RFC 3649): the AIMD increase a(w) and
// decrease b(w) depend on the current window so large windows grow faster
// and back off less, while windows below 38 segments behave exactly like
// Reno.
type HighSpeed struct {
	Reno
	acked float64
}

func init() { Register("highspeed", func() CongestionControl { return &HighSpeed{} }) }

// Name implements CongestionControl.
func (h *HighSpeed) Name() string { return "highspeed" }

// hsLowWindow and hsHighWindow bound the RFC 3649 response function.
const (
	hsLowWindow  = 38.0
	hsHighWindow = 83000.0
	hsHighB      = 0.1
)

// hsB returns the decrease factor b(w) per RFC 3649 §5.
func hsB(w float64) float64 {
	if w <= hsLowWindow {
		return 0.5
	}
	if w >= hsHighWindow {
		return hsHighB
	}
	return (hsHighB-0.5)*(math.Log(w)-math.Log(hsLowWindow))/(math.Log(hsHighWindow)-math.Log(hsLowWindow)) + 0.5
}

// hsA returns the increase a(w) in segments per window per RFC 3649 §5:
// a(w) = w² · p(w) · 2·b(w) / (2−b(w)), with p(w) = 0.078 / w^1.2.
func hsA(w float64) float64 {
	if w <= hsLowWindow {
		return 1
	}
	b := hsB(w)
	p := 0.078 / math.Pow(w, 1.2)
	return w * w * p * 2 * b / (2 - b)
}

// OnAck implements CongestionControl.
//
//greenvet:hotpath
func (h *HighSpeed) OnAck(c Conn, info AckInfo) {
	if info.InRecovery {
		return
	}
	if h.InSlowStart() {
		h.Reno.OnAck(c, info)
		return
	}
	mss := float64(c.MSS())
	w := h.cwnd / mss
	h.acked += float64(info.AckedBytes)
	if h.acked >= h.cwnd {
		h.acked -= h.cwnd
		h.cwnd += hsA(w) * mss
	}
}

// OnLoss implements CongestionControl.
//
//greenvet:hotpath
func (h *HighSpeed) OnLoss(c Conn) {
	w := h.cwnd / float64(c.MSS())
	h.cwnd *= 1 - hsB(w)
	if min := float64(2 * c.MSS()); h.cwnd < min {
		h.cwnd = min
	}
	h.ssthresh = h.cwnd
}

// Westwood implements TCP Westwood+ (Gerla et al., GLOBECOM 2001): Reno-style
// growth, but on loss the window is set to the estimated
// bandwidth-delay product rather than halved, using an EWMA bandwidth
// estimate from ACK arrivals.
type Westwood struct {
	Reno
	bwEst    float64 // bytes/second, EWMA
	bwSample float64
	lastAck  float64 // seconds of last bandwidth sample
	ackedAcc float64
}

func init() { Register("westwood", func() CongestionControl { return &Westwood{} }) }

// Name implements CongestionControl.
func (w *Westwood) Name() string { return "westwood" }

// OnAck implements CongestionControl.
//
//greenvet:hotpath
func (w *Westwood) OnAck(c Conn, info AckInfo) {
	now := c.Now().Seconds()
	w.ackedAcc += float64(info.AckedBytes)
	// Sample bandwidth at most every SRTT/4 to filter ACK compression.
	minGap := c.SRTT().Seconds() / 4
	if minGap <= 0 {
		minGap = 50e-6
	}
	if dt := now - w.lastAck; dt >= minGap {
		sample := w.ackedAcc / dt
		// Westwood+ low-pass filter.
		w.bwEst = 0.9*w.bwEst + 0.1*sample
		w.ackedAcc = 0
		w.lastAck = now
	}
	w.Reno.OnAck(c, info)
}

// OnLoss implements CongestionControl: cwnd = BWE × RTTmin.
//
//greenvet:hotpath
func (w *Westwood) OnLoss(c Conn) {
	bdp := w.bwEst * c.MinRTT().Seconds()
	if min := float64(2 * c.MSS()); bdp < min {
		bdp = min
	}
	w.ssthresh = bdp
	if w.cwnd > bdp {
		w.cwnd = bdp
	}
	w.acked = 0
}

// OnRTO implements CongestionControl.
//
//greenvet:hotpath
func (w *Westwood) OnRTO(c Conn) {
	bdp := w.bwEst * c.MinRTT().Seconds()
	if min := float64(2 * c.MSS()); bdp < min {
		bdp = min
	}
	w.ssthresh = bdp
	w.cwnd = float64(c.MSS())
	w.acked = 0
}

// Baseline is the paper's custom kernel module: "a large, constant cwnd
// value ... running the same logic for other TCP mechanisms, i.e.,
// retransmission timeouts, selective acknowledgments, and loss recovery"
// (§3). It performs no congestion computation whatsoever, which makes the
// sender bursty, fills queues, and drives up retransmissions — the paper's
// Figures 5 and 8 show it costing 8.2–14.2% more energy than real CCAs.
//
// Like the paper's module, it must never be used with multiple competing
// flows: it would produce congestion collapse.
type Baseline struct {
	cwnd float64
}

func init() { Register("baseline", func() CongestionControl { return &Baseline{} }) }

// BaselineCwndBytes is the constant window: 25 MB, far above any BDP in the
// testbed.
const BaselineCwndBytes = 25 << 20

// Name implements CongestionControl.
func (b *Baseline) Name() string { return "baseline" }

// Init implements CongestionControl.
func (b *Baseline) Init(c Conn) { b.cwnd = BaselineCwndBytes }

// OnAck implements CongestionControl (no computation, by design).
//
//greenvet:hotpath
func (b *Baseline) OnAck(c Conn, info AckInfo) {}

// OnLoss implements CongestionControl (ignores loss, by design).
//
//greenvet:hotpath
func (b *Baseline) OnLoss(c Conn) {}

// OnRTO implements CongestionControl (even timeouts do not move the window).
//
//greenvet:hotpath
func (b *Baseline) OnRTO(c Conn) {}

// CWnd implements CongestionControl.
func (b *Baseline) CWnd() float64 { return b.cwnd }

// PacingRate implements CongestionControl.
func (b *Baseline) PacingRate() float64 { return 0 }

// ECNCapable implements CongestionControl.
func (b *Baseline) ECNCapable() bool { return false }
