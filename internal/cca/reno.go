package cca

// Reno implements classic TCP congestion control (RFC 5681): slow start,
// additive-increase congestion avoidance, and multiplicative decrease on
// loss. Several other algorithms embed it for their slow-start and timeout
// behaviour.
type Reno struct {
	cwnd     float64 // bytes
	ssthresh float64 // bytes
	// acked accumulates bytes for the fractional congestion-avoidance
	// increase.
	acked float64
}

func init() { Register("reno", func() CongestionControl { return NewReno() }) }

// NewReno returns a Reno instance. The window is established in Init.
func NewReno() *Reno { return &Reno{} }

// Name implements CongestionControl.
func (r *Reno) Name() string { return "reno" }

// Init implements CongestionControl: IW = 10 MSS (RFC 6928), ssthresh
// effectively unbounded.
func (r *Reno) Init(c Conn) {
	r.cwnd = float64(10 * c.MSS())
	r.ssthresh = 1 << 40
}

// InSlowStart reports whether the window is below ssthresh.
func (r *Reno) InSlowStart() bool { return r.cwnd < r.ssthresh }

// OnAck implements CongestionControl.
//
//greenvet:hotpath
func (r *Reno) OnAck(c Conn, info AckInfo) {
	if info.InRecovery {
		return // window frozen during fast recovery
	}
	mss := float64(c.MSS())
	if r.InSlowStart() {
		// Exponential growth: one MSS per MSS acknowledged.
		r.cwnd += float64(info.AckedBytes)
		if r.cwnd > r.ssthresh {
			r.cwnd = r.ssthresh
		}
		return
	}
	// Congestion avoidance: one MSS per window acknowledged.
	r.acked += float64(info.AckedBytes)
	if r.acked >= r.cwnd {
		r.acked -= r.cwnd
		r.cwnd += mss
	}
}

// OnLoss implements CongestionControl: halve the window.
//
//greenvet:hotpath
func (r *Reno) OnLoss(c Conn) {
	r.ssthresh = r.cwnd / 2
	if min := float64(2 * c.MSS()); r.ssthresh < min {
		r.ssthresh = min
	}
	r.cwnd = r.ssthresh
	r.acked = 0
}

// OnRTO implements CongestionControl: collapse to one segment.
//
//greenvet:hotpath
func (r *Reno) OnRTO(c Conn) {
	r.ssthresh = r.cwnd / 2
	if min := float64(2 * c.MSS()); r.ssthresh < min {
		r.ssthresh = min
	}
	r.cwnd = float64(c.MSS())
	r.acked = 0
}

// CWnd implements CongestionControl.
func (r *Reno) CWnd() float64 { return r.cwnd }

// PacingRate implements CongestionControl (Reno does not pace).
func (r *Reno) PacingRate() float64 { return 0 }

// ECNCapable implements CongestionControl.
func (r *Reno) ECNCapable() bool { return false }
