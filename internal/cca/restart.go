package cca

// Restarter is implemented by algorithms that can return to their
// just-constructed state in place. The testbed's pooled flow lifecycle
// uses it to reuse one congestion-controller instance across many
// transfers without going back through the registry (and its per-flow
// allocation): Restart must leave the instance exactly as its factory
// built it, so a restarted controller and a fresh one behave
// byte-identically on the same event sequence.
type Restarter interface {
	Restart()
}

// Restart returns cc to its just-constructed state when the algorithm
// supports it, reporting whether it did. Callers that get false must
// construct a fresh instance instead of reusing cc.
func Restart(cc CongestionControl) bool {
	if r, ok := cc.(Restarter); ok {
		r.Restart()
		return true
	}
	return false
}

// Every registered algorithm is a plain value struct whose factory returns
// the zero value (BBR aside, which carries its version parameters), so
// restarting is a struct reset.

// Restart implements Restarter.
func (r *Reno) Restart() { *r = Reno{} }

// Restart implements Restarter.
func (c *Cubic) Restart() { *c = Cubic{} }

// Restart implements Restarter.
func (d *DCTCP) Restart() { *d = DCTCP{} }

// Restart implements Restarter.
func (v *Vegas) Restart() { *v = Vegas{} }

// Restart implements Restarter.
func (s *Scalable) Restart() { *s = Scalable{} }

// Restart implements Restarter.
func (h *HighSpeed) Restart() { *h = HighSpeed{} }

// Restart implements Restarter.
func (w *Westwood) Restart() { *w = Westwood{} }

// Restart implements Restarter.
func (b *Baseline) Restart() { *b = Baseline{} }

// Restart implements Restarter, preserving the version parameters that
// distinguish bbr from bbr2.
func (b *BBR) Restart() { *b = BBR{params: b.params} }

// Restart implements Restarter.
func (s *Swift) Restart() { *s = Swift{} }

// Restart implements Restarter.
func (d *DCQCN) Restart() { *d = DCQCN{} }

// Restart implements Restarter.
func (h *HPCC) Restart() { *h = HPCC{} }
