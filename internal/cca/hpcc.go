package cca

import (
	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
)

// HPCC implements High Precision Congestion Control (Li et al., SIGCOMM
// 2019) — the third §5 production algorithm. HPCC senders receive in-band
// network telemetry (per-hop queue depth and transmitted-byte counters)
// echoed on every ACK, compute each hop's exact utilization
//
//	U = qlen/(B·T) + txRate/B
//
// and set the window multiplicatively toward W = W_old/(maxU/η) + W_ai,
// with η = 95% target utilization. The result is near-zero queueing with
// line-rate throughput.
type HPCC struct {
	cwnd    float64
	wAI     float64
	eta     float64
	baseRTT sim.Duration
	mss     float64

	// prev remembers the last telemetry per hop index for tx-rate
	// computation.
	prev []netsim.INTHop
	// lastUpdate gates the multiplicative reference update to once per
	// RTT (the paper's W^c bookkeeping, simplified).
	lastUpdate sim.Time
	refCwnd    float64
}

func init() { Register("hpcc", func() CongestionControl { return NewHPCC() }) }

// NewHPCC returns an HPCC instance.
func NewHPCC() *HPCC { return &HPCC{} }

// Name implements CongestionControl.
func (h *HPCC) Name() string { return "hpcc" }

// NeedsINT implements INTConsumer: HPCC requires per-hop telemetry.
func (h *HPCC) NeedsINT() bool { return true }

// Init implements CongestionControl.
func (h *HPCC) Init(c Conn) {
	h.mss = float64(c.MSS())
	h.cwnd = 16 * h.mss
	h.refCwnd = h.cwnd
	h.eta = 0.95
	h.wAI = h.mss / 2
}

// utilization computes the bottleneck utilization from consecutive INT
// snapshots.
func (h *HPCC) utilization(hops []netsim.INTHop) (float64, bool) {
	if len(h.prev) != len(hops) {
		h.prev = append([]netsim.INTHop(nil), hops...) //greenvet:allow hotpathalloc snapshot reallocated only when the INT path length changes
		return 0, false
	}
	if h.baseRTT == 0 {
		return 0, false
	}
	tau := h.baseRTT.Seconds()
	maxU := 0.0
	for i, hop := range hops {
		p := h.prev[i]
		dt := (hop.At - p.At).Seconds()
		if dt <= 0 {
			continue
		}
		bps := float64(hop.RateBps)
		txRate := float64(hop.TxBytes-p.TxBytes) * 8 / dt
		u := float64(hop.QueueBytes*8)/(bps*tau) + txRate/bps
		if u > maxU {
			maxU = u
		}
	}
	h.prev = append(h.prev[:0], hops...) //greenvet:allow hotpathalloc appends into prev[:0] of equal length: reuses the backing array
	return maxU, maxU > 0
}

// OnAck implements CongestionControl.
//
//greenvet:hotpath
func (h *HPCC) OnAck(c Conn, info AckInfo) {
	if info.RTT > 0 && (h.baseRTT == 0 || info.RTT < h.baseRTT) {
		h.baseRTT = info.RTT
	}
	u, ok := h.utilization(info.INT)
	if !ok {
		return
	}
	now := c.Now()
	target := h.refCwnd
	if u > 0 {
		target = h.refCwnd / (u / h.eta)
	}
	next := target + h.wAI
	// Bound a single adjustment so telemetry glitches cannot collapse or
	// explode the window.
	if next < h.cwnd/2 {
		next = h.cwnd / 2
	}
	if next > 2*h.cwnd {
		next = 2 * h.cwnd
	}
	if min := 2 * h.mss; next < min {
		next = min
	}
	h.cwnd = next
	// Update the multiplicative reference once per RTT.
	if now-h.lastUpdate >= c.SRTT() {
		h.refCwnd = h.cwnd
		h.lastUpdate = now
	}
}

// OnLoss implements CongestionControl (rare under HPCC: the 95% target
// keeps queues near empty).
//
//greenvet:hotpath
func (h *HPCC) OnLoss(c Conn) {
	h.cwnd /= 2
	if min := 2 * h.mss; h.cwnd < min {
		h.cwnd = min
	}
	h.refCwnd = h.cwnd
}

// OnRTO implements CongestionControl.
//
//greenvet:hotpath
func (h *HPCC) OnRTO(c Conn) {
	h.cwnd = h.mss
	h.refCwnd = h.cwnd
}

// CWnd implements CongestionControl.
func (h *HPCC) CWnd() float64 { return h.cwnd }

// PacingRate implements CongestionControl: HPCC paces at cwnd/baseRTT.
func (h *HPCC) PacingRate() float64 {
	if h.baseRTT == 0 {
		return 0
	}
	return h.cwnd * 8 / h.baseRTT.Seconds()
}

// ECNCapable implements CongestionControl.
func (h *HPCC) ECNCapable() bool { return false }
