package cca

// DCTCP implements Data Center TCP (Alizadeh et al., SIGCOMM 2010; RFC
// 8257). The switch marks packets when its instantaneous queue exceeds K;
// the receiver echoes marks precisely; the sender maintains an EWMA α of
// the marked fraction per window and scales cwnd by (1 − α/2) once per
// round trip. On a clean network DCTCP keeps the queue near K with no loss.
type DCTCP struct {
	Reno // slow start / RTO behaviour

	alpha       float64
	ackedBytes  float64 // bytes acked in the current observation window
	markedBytes float64 // of which ECE-marked
	windowEnd   uint64  // delivered count at which the window ends
	reducedThis bool    // at most one ECN reduction per window
}

// dctcpG is the EWMA gain (RFC 8257 recommends 1/16).
const dctcpG = 1.0 / 16

func init() { Register("dctcp", func() CongestionControl { return NewDCTCP() }) }

// NewDCTCP returns a DCTCP instance.
func NewDCTCP() *DCTCP { return &DCTCP{} }

// Name implements CongestionControl.
func (d *DCTCP) Name() string { return "dctcp" }

// ECNCapable implements CongestionControl: DCTCP requires ECT marking and
// precise ECE feedback.
func (d *DCTCP) ECNCapable() bool { return true }

// OnAck implements CongestionControl.
//
//greenvet:hotpath
func (d *DCTCP) OnAck(c Conn, info AckInfo) {
	d.ackedBytes += float64(info.AckedBytes)
	if info.ECE {
		d.markedBytes += float64(info.AckedBytes)
	}

	if info.Delivered >= d.windowEnd {
		// One observation window (≈ one RTT of delivered data) ended:
		// update α and apply at most one reduction.
		if d.ackedBytes > 0 {
			frac := d.markedBytes / d.ackedBytes
			d.alpha = (1-dctcpG)*d.alpha + dctcpG*frac
		}
		if d.markedBytes > 0 {
			d.cwnd *= 1 - d.alpha/2
			if min := float64(2 * c.MSS()); d.cwnd < min {
				d.cwnd = min
			}
			d.ssthresh = d.cwnd
		}
		d.ackedBytes, d.markedBytes = 0, 0
		d.windowEnd = info.Delivered + uint64(d.cwnd)
	}

	if info.ECE && d.InSlowStart() {
		// Leave slow start on the first mark.
		d.ssthresh = d.cwnd
		return
	}
	d.Reno.OnAck(c, info)
}

// Alpha exposes the congestion estimate for tests and traces.
func (d *DCTCP) Alpha() float64 { return d.alpha }
