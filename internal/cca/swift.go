package cca

import "greenenvy/internal/sim"

// Swift implements Google's Swift congestion control (Kumar et al.,
// SIGCOMM 2020), one of the production datacenter algorithms the paper's
// §5 says it would be "particularly intriguing" to evaluate: delay-based
// AIMD against a target end-to-end delay, with multiplicative decrease
// proportional to how far delay overshoots the target, applied at most
// once per RTT.
type Swift struct {
	cwnd    float64
	baseRTT sim.Duration
	lastMD  sim.Time
	mss     float64
}

// Swift parameters (simplified from the paper's fabric/host split: our
// testbed has a single fabric hop, so one combined target suffices).
const (
	// swiftBaseTarget is the base target delay above the propagation
	// floor.
	swiftBaseTarget = 50 * sim.Microsecond
	// swiftAI is the additive increase in segments per RTT.
	swiftAI = 1.0
	// swiftBeta scales the multiplicative decrease.
	swiftBeta = 0.8
	// swiftMaxMDF bounds any single decrease.
	swiftMaxMDF = 0.5
)

func init() { Register("swift", func() CongestionControl { return NewSwift() }) }

// NewSwift returns a Swift instance.
func NewSwift() *Swift { return &Swift{} }

// Name implements CongestionControl.
func (s *Swift) Name() string { return "swift" }

// Init implements CongestionControl.
func (s *Swift) Init(c Conn) {
	s.mss = float64(c.MSS())
	s.cwnd = 10 * s.mss
}

// target returns the current delay target: base target plus the
// propagation floor.
func (s *Swift) target() sim.Duration {
	return s.baseRTT + swiftBaseTarget
}

// OnAck implements CongestionControl.
//
//greenvet:hotpath
func (s *Swift) OnAck(c Conn, info AckInfo) {
	if info.RTT <= 0 {
		return
	}
	if s.baseRTT == 0 || info.RTT < s.baseRTT {
		s.baseRTT = info.RTT
	}
	if info.InRecovery {
		return
	}
	now := c.Now()
	delay := info.RTT
	t := s.target()
	if delay < t {
		// Additive increase: AI segments per window acknowledged.
		s.cwnd += swiftAI * s.mss * float64(info.AckedBytes) / s.cwnd
		return
	}
	// Multiplicative decrease, at most once per RTT.
	if now-s.lastMD < c.SRTT() {
		return
	}
	s.lastMD = now
	over := float64(delay-t) / float64(delay)
	factor := 1 - swiftBeta*over
	if factor < 1-swiftMaxMDF {
		factor = 1 - swiftMaxMDF
	}
	s.cwnd *= factor
	if min := 2 * s.mss; s.cwnd < min {
		s.cwnd = min
	}
}

// OnLoss implements CongestionControl: loss is a severe congestion signal;
// apply the maximum decrease (once per RTT via the sender's recovery
// gating).
//
//greenvet:hotpath
func (s *Swift) OnLoss(c Conn) {
	s.cwnd *= 1 - swiftMaxMDF
	if min := 2 * s.mss; s.cwnd < min {
		s.cwnd = min
	}
}

// OnRTO implements CongestionControl.
//
//greenvet:hotpath
func (s *Swift) OnRTO(c Conn) {
	s.cwnd = s.mss
}

// CWnd implements CongestionControl.
func (s *Swift) CWnd() float64 { return s.cwnd }

// PacingRate implements CongestionControl (window-based; Swift paces only
// for sub-MSS windows, which the testbed clamps away).
func (s *Swift) PacingRate() float64 { return 0 }

// ECNCapable implements CongestionControl.
func (s *Swift) ECNCapable() bool { return false }
