package cca

import (
	"math"
	"testing"
	"testing/quick"

	"greenenvy/internal/sim"
)

// fakeConn is a scriptable cca.Conn for unit tests.
type fakeConn struct {
	now      sim.Time
	mss      int
	srtt     sim.Duration
	minRTT   sim.Duration
	inflight int
}

func (f *fakeConn) Now() sim.Time        { return f.now }
func (f *fakeConn) MSS() int             { return f.mss }
func (f *fakeConn) SRTT() sim.Duration   { return f.srtt }
func (f *fakeConn) MinRTT() sim.Duration { return f.minRTT }
func (f *fakeConn) BytesInFlight() int   { return f.inflight }

func newConn() *fakeConn {
	return &fakeConn{mss: 1440, srtt: 100 * sim.Microsecond, minRTT: 50 * sim.Microsecond}
}

func TestRegistryHasAllPaperAlgorithms(t *testing.T) {
	for _, name := range PaperOrder() {
		cc, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if cc.Name() != name {
			t.Fatalf("Name() = %q, want %q", cc.Name(), name)
		}
	}
	if len(PaperOrder()) != 10 {
		t.Fatalf("paper measures 10 algorithms, have %d", len(PaperOrder()))
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	if _, err := New("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew of unknown name did not panic")
		}
	}()
	MustNew("nope")
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register("reno", func() CongestionControl { return NewReno() })
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}

func TestOnlyDCTCPIsECNCapable(t *testing.T) {
	for _, name := range PaperOrder() {
		cc := MustNew(name)
		if got, want := cc.ECNCapable(), name == "dctcp"; got != want {
			t.Errorf("%s.ECNCapable() = %v, want %v", name, got, want)
		}
	}
}

func TestInitialWindowTenSegments(t *testing.T) {
	c := newConn()
	for _, name := range []string{"reno", "cubic", "vegas", "dctcp", "scalable", "highspeed", "westwood"} {
		cc := MustNew(name)
		cc.Init(c)
		if cw := cc.CWnd(); cw != float64(10*c.mss) {
			t.Errorf("%s initial cwnd = %v, want %d", name, cw, 10*c.mss)
		}
	}
}

func TestRenoSlowStartDoubles(t *testing.T) {
	c := newConn()
	r := NewReno()
	r.Init(c)
	start := r.CWnd()
	// Acknowledge one full window: slow start adds acked bytes.
	r.OnAck(c, AckInfo{AckedBytes: int(start)})
	if r.CWnd() != 2*start {
		t.Fatalf("cwnd = %v after window acked, want %v", r.CWnd(), 2*start)
	}
}

func TestRenoCongestionAvoidanceLinear(t *testing.T) {
	c := newConn()
	r := NewReno()
	r.Init(c)
	r.OnLoss(c) // leave slow start: ssthresh = cwnd/2
	w := r.CWnd()
	// One window of ACKs adds exactly one MSS.
	for acked := 0.0; acked < w; acked += float64(c.mss) {
		r.OnAck(c, AckInfo{AckedBytes: c.mss})
	}
	if got := r.CWnd(); math.Abs(got-(w+float64(c.mss))) > 1 {
		t.Fatalf("CA growth = %v, want %v", got, w+float64(c.mss))
	}
}

func TestRenoLossHalves(t *testing.T) {
	c := newConn()
	r := NewReno()
	r.Init(c)
	w := r.CWnd()
	r.OnLoss(c)
	if r.CWnd() != w/2 {
		t.Fatalf("cwnd after loss = %v, want %v", r.CWnd(), w/2)
	}
}

func TestRenoRTOCollapses(t *testing.T) {
	c := newConn()
	r := NewReno()
	r.Init(c)
	r.OnRTO(c)
	if r.CWnd() != float64(c.mss) {
		t.Fatalf("cwnd after RTO = %v, want 1 MSS", r.CWnd())
	}
}

func TestRenoFrozenInRecovery(t *testing.T) {
	c := newConn()
	r := NewReno()
	r.Init(c)
	w := r.CWnd()
	r.OnAck(c, AckInfo{AckedBytes: c.mss, InRecovery: true})
	if r.CWnd() != w {
		t.Fatal("window grew during recovery")
	}
}

func TestRenoMinimumWindow(t *testing.T) {
	c := newConn()
	r := NewReno()
	r.Init(c)
	for i := 0; i < 50; i++ {
		r.OnLoss(c)
	}
	if r.CWnd() < float64(2*c.mss) {
		t.Fatalf("cwnd fell below 2 MSS: %v", r.CWnd())
	}
}

func TestCubicBetaReduction(t *testing.T) {
	c := newConn()
	cu := NewCubic()
	cu.Init(c)
	w := cu.CWnd()
	cu.OnLoss(c)
	if math.Abs(cu.CWnd()-w*0.7) > 1 {
		t.Fatalf("cubic loss reduction = %v, want %v (β=0.7)", cu.CWnd(), w*0.7)
	}
}

func TestCubicGrowsTowardWmax(t *testing.T) {
	c := newConn()
	cu := NewCubic()
	cu.Init(c)
	// Force into congestion avoidance with a known Wmax.
	cu.cwnd = 100 * float64(c.mss)
	cu.ssthresh = cu.cwnd
	cu.OnLoss(c) // Wmax = 100 segs, cwnd = 70 segs
	w0 := cu.CWnd()
	// Feed ACKs over simulated time; the window must grow back toward
	// Wmax (concave region).
	for i := 0; i < 2000; i++ {
		c.now += 50 * sim.Microsecond
		cu.OnAck(c, AckInfo{AckedBytes: c.mss})
	}
	if cu.CWnd() <= w0 {
		t.Fatalf("cubic did not grow after loss: %v <= %v", cu.CWnd(), w0)
	}
}

func TestCubicFastConvergence(t *testing.T) {
	c := newConn()
	cu := NewCubic()
	cu.Init(c)
	cu.cwnd = 100 * float64(c.mss)
	cu.OnLoss(c)
	first := cu.wMax
	cu.OnLoss(c) // second loss at lower window: fast convergence kicks in
	if cu.wMax >= first {
		t.Fatalf("fast convergence did not lower wMax: %v >= %v", cu.wMax, first)
	}
}

func TestDCTCPAlphaTracksMarking(t *testing.T) {
	c := newConn()
	d := NewDCTCP()
	d.Init(c)
	d.ssthresh = d.cwnd // force CA
	// Several windows of fully-marked ACKs: alpha should rise toward 1.
	delivered := uint64(0)
	for i := 0; i < 2000; i++ {
		delivered += uint64(c.mss)
		d.OnAck(c, AckInfo{AckedBytes: c.mss, ECE: true, Delivered: delivered})
	}
	if d.Alpha() < 0.5 {
		t.Fatalf("alpha = %v after persistent marking, want → 1", d.Alpha())
	}
	// And without marks it should decay.
	for i := 0; i < 20000; i++ {
		delivered += uint64(c.mss)
		d.OnAck(c, AckInfo{AckedBytes: c.mss, Delivered: delivered})
	}
	if d.Alpha() > 0.1 {
		t.Fatalf("alpha = %v after clean windows, want → 0", d.Alpha())
	}
}

func TestDCTCPReducesProportionally(t *testing.T) {
	c := newConn()
	d := NewDCTCP()
	d.Init(c)
	d.ssthresh = d.cwnd
	d.alpha = 1.0 // fully congested estimate
	w := d.CWnd()
	// Complete one observation window with marks.
	d.windowEnd = 0
	d.OnAck(c, AckInfo{AckedBytes: c.mss, ECE: true, Delivered: uint64(c.mss)})
	if got := d.CWnd(); got > w*0.6 {
		t.Fatalf("dctcp cut = %v from %v, want ~half at α=1", got, w)
	}
}

func TestVegasHoldsInsideBand(t *testing.T) {
	c := newConn()
	v := NewVegas()
	v.Init(c)
	v.ssthresh = v.cwnd // CA mode
	// RTT samples equal to baseRTT: diff = 0 < alpha → +1 MSS per round.
	w := v.CWnd()
	delivered := uint64(0)
	for round := 0; round < 3; round++ {
		for i := 0; i < 12; i++ {
			delivered += uint64(c.mss)
			v.OnAck(c, AckInfo{AckedBytes: c.mss, RTT: 50 * sim.Microsecond, Delivered: delivered})
		}
	}
	if v.CWnd() <= w {
		t.Fatalf("vegas did not probe up on empty queue: %v <= %v", v.CWnd(), w)
	}
}

func TestVegasBacksOffOnQueueing(t *testing.T) {
	c := newConn()
	v := NewVegas()
	v.Init(c)
	v.ssthresh = v.cwnd
	v.baseRTT = 50 * sim.Microsecond
	w := v.CWnd()
	delivered := uint64(0)
	// RTT triple the base: large diff → decrease.
	for round := 0; round < 5; round++ {
		for i := 0; i < 12; i++ {
			delivered += uint64(c.mss)
			v.OnAck(c, AckInfo{AckedBytes: c.mss, RTT: 150 * sim.Microsecond, Delivered: delivered})
		}
	}
	if v.CWnd() >= w {
		t.Fatalf("vegas did not back off under queueing: %v >= %v", v.CWnd(), w)
	}
}

func TestScalableConstants(t *testing.T) {
	c := newConn()
	s := MustNew("scalable").(*Scalable)
	s.Init(c)
	s.ssthresh = s.cwnd
	w := s.CWnd()
	s.OnAck(c, AckInfo{AckedBytes: 100})
	if math.Abs(s.CWnd()-(w+1)) > 1e-9 {
		t.Fatalf("scalable increase = %v per 100 bytes, want 1", s.CWnd()-w)
	}
	s.OnLoss(c)
	if math.Abs(s.CWnd()-(w+1)*0.875) > 1e-9 {
		t.Fatalf("scalable decrease to %v, want ×0.875", s.CWnd())
	}
}

func TestHighSpeedResponseFunction(t *testing.T) {
	// Below 38 segments: Reno behaviour (a=1, b=0.5).
	if hsA(30) != 1 || hsB(30) != 0.5 {
		t.Fatalf("low-window a/b = %v/%v", hsA(30), hsB(30))
	}
	// Large windows: a grows, b shrinks toward 0.1.
	if hsA(10000) <= 1 {
		t.Fatalf("a(10000) = %v, want > 1", hsA(10000))
	}
	if b := hsB(83000); math.Abs(b-0.1) > 1e-9 {
		t.Fatalf("b(83000) = %v, want 0.1", b)
	}
	if hsB(1000) <= 0.1 || hsB(1000) >= 0.5 {
		t.Fatalf("b(1000) = %v, want in (0.1, 0.5)", hsB(1000))
	}
}

func TestHighSpeedBackoffGentlerWhenLarge(t *testing.T) {
	c := newConn()
	h := MustNew("highspeed").(*HighSpeed)
	h.Init(c)
	h.ssthresh = 0 // CA
	h.cwnd = 10000 * float64(c.mss)
	w := h.CWnd()
	h.OnLoss(c)
	frac := h.CWnd() / w
	if frac < 0.7 {
		t.Fatalf("highspeed at large window cut by %v, want gentle (> 0.7)", frac)
	}
}

func TestWestwoodSetsWindowToBDP(t *testing.T) {
	c := newConn()
	w := MustNew("westwood").(*Westwood)
	w.Init(c)
	c.minRTT = 100 * sim.Microsecond
	// Feed ACKs at a steady 1 GB/s for a while.
	for i := 0; i < 100; i++ {
		c.now += 10 * sim.Microsecond
		w.OnAck(c, AckInfo{AckedBytes: 10000})
	}
	if w.bwEst == 0 {
		t.Fatal("bandwidth estimate never formed")
	}
	w.cwnd = 1e9 // absurdly large
	w.OnLoss(c)
	want := w.bwEst * c.minRTT.Seconds()
	if math.Abs(w.CWnd()-want) > want/2 {
		t.Fatalf("westwood cwnd = %v, want ≈ BDP %v", w.CWnd(), want)
	}
}

func TestBaselineConstantWindow(t *testing.T) {
	c := newConn()
	b := MustNew("baseline")
	b.Init(c)
	w := b.CWnd()
	if w != BaselineCwndBytes {
		t.Fatalf("baseline cwnd = %v, want %v", w, BaselineCwndBytes)
	}
	b.OnAck(c, AckInfo{AckedBytes: 1 << 20})
	b.OnLoss(c)
	b.OnRTO(c)
	if b.CWnd() != w {
		t.Fatal("baseline window moved; it must be constant by design")
	}
}

func TestBBRStartupExitsToProbeBW(t *testing.T) {
	c := newConn()
	b := NewBBR()
	b.Init(c)
	if b.State() != "startup" {
		t.Fatalf("initial state = %s", b.State())
	}
	// Plateaued delivery rate for many rounds: must reach probe_bw.
	delivered := uint64(0)
	for i := 0; i < 100; i++ {
		c.now += 50 * sim.Microsecond
		delivered += 64000
		c.inflight = 2 * c.mss // drained below BDP once drain begins
		b.OnAck(c, AckInfo{AckedBytes: 64000, RTT: 50 * sim.Microsecond, Delivered: delivered, DeliveryRate: 1.25e9 / 8})
	}
	if b.State() != "probe_bw" {
		t.Fatalf("state = %s after plateau, want probe_bw", b.State())
	}
	if b.PacingRate() <= 0 {
		t.Fatal("BBR must pace")
	}
}

func TestBBRProbeRTTEntered(t *testing.T) {
	c := newConn()
	b := NewBBR()
	b.Init(c)
	delivered := uint64(0)
	feed := func(n int, rtt sim.Duration) {
		for i := 0; i < n; i++ {
			c.now += 50 * sim.Microsecond
			delivered += 64000
			c.inflight = 2 * c.mss
			b.OnAck(c, AckInfo{AckedBytes: 64000, RTT: rtt, Delivered: delivered, DeliveryRate: 1.25e9 / 8})
		}
	}
	feed(100, 50*sim.Microsecond)
	// Advance past the 10 s rtProp window with higher RTTs.
	c.now += 11 * sim.Second
	feed(1, 80*sim.Microsecond)
	if b.State() != "probe_rtt" {
		t.Fatalf("state = %s, want probe_rtt after stale rtProp", b.State())
	}
	if b.CWnd() != 4*float64(c.mss) {
		t.Fatalf("probe_rtt cwnd = %v, want 4 MSS", b.CWnd())
	}
}

func TestBBRIgnoresLossBBR2DoesNot(t *testing.T) {
	c := newConn()
	c.inflight = 100 * c.mss
	b1 := NewBBR()
	b1.Init(c)
	w := b1.CWnd()
	b1.OnLoss(c)
	if b1.CWnd() != w {
		t.Fatal("BBR v1 must ignore loss")
	}
	b2 := NewBBR2()
	b2.Init(c)
	b2.round = 1 // past the init round
	b2.OnLoss(c)
	if b2.inflightHi >= 1<<40 {
		t.Fatal("BBR2 alpha must cap inflight on loss")
	}
}

func TestBBR2CruisesBelowEstimate(t *testing.T) {
	p1, p2 := bbrV1Params(), bbrV2AlphaParams()
	if p2.cruiseGain >= p1.cruiseGain {
		t.Fatal("bbr2 alpha must cruise below bbr v1")
	}
	if p2.startupGain >= p1.startupGain {
		t.Fatal("bbr2 alpha must start up slower")
	}
}

func TestWinMaxFilter(t *testing.T) {
	var w winMax
	w.Update(10, 1, 5)
	w.Update(8, 2, 5)
	if w.Get() != 10 {
		t.Fatalf("max = %v, want 10", w.Get())
	}
	w.Update(12, 3, 5)
	if w.Get() != 12 {
		t.Fatalf("max = %v, want 12", w.Get())
	}
	// Old max ages out of the window.
	w.Update(5, 20, 5)
	if w.Get() == 12 {
		t.Fatal("stale max survived window expiry")
	}
}

// Property: every algorithm keeps a positive window through arbitrary
// event sequences.
func TestWindowAlwaysPositiveProperty(t *testing.T) {
	f := func(ops []uint8, algIdx uint8) bool {
		names := PaperOrder()
		cc := MustNew(names[int(algIdx)%len(names)])
		c := newConn()
		cc.Init(c)
		delivered := uint64(0)
		for _, op := range ops {
			c.now += sim.Duration(op) * sim.Microsecond
			c.inflight = int(cc.CWnd() / 2)
			switch op % 4 {
			case 0, 1:
				delivered += uint64(c.mss)
				cc.OnAck(c, AckInfo{AckedBytes: c.mss, RTT: 60 * sim.Microsecond, Delivered: delivered, DeliveryRate: 1e8})
			case 2:
				cc.OnLoss(c)
			case 3:
				cc.OnRTO(c)
			}
			if cc.CWnd() < float64(c.mss) {
				return false
			}
			if math.IsNaN(cc.CWnd()) || math.IsInf(cc.CWnd(), 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
