package cca

import (
	"math"

	"greenenvy/internal/sim"
)

// Cubic implements CUBIC congestion control (RFC 8312): the window grows as
// a cubic function of time since the last congestion event, anchored at the
// window size where loss last occurred (Wmax), with a TCP-friendly region
// so it never does worse than Reno.
type Cubic struct {
	cwnd     float64 // bytes
	ssthresh float64

	// CUBIC state, in segments and seconds as in the RFC.
	wMax       float64  // window before last reduction (segments)
	k          float64  // time to regrow to wMax (seconds)
	epochStart sim.Time // start of the current growth epoch (0 = unset)
	ackCount   float64  // for the TCP-friendly estimate
	wTCP       float64  // Reno-equivalent window (segments)
	lastDecr   float64  // wMax before fast convergence

	acked float64 // fractional increase accumulator

	// HyStart (delay-based) state: Linux CUBIC exits slow start when the
	// per-round minimum RTT rises noticeably above the base RTT,
	// avoiding the huge overshoot of classic slow start.
	hsRoundEnd uint64
	hsRoundMin sim.Duration
	hsBaseRTT  sim.Duration
}

// CUBIC constants from RFC 8312.
const (
	cubicBeta = 0.7
	cubicC    = 0.4
)

func init() { Register("cubic", func() CongestionControl { return NewCubic() }) }

// NewCubic returns a CUBIC instance.
func NewCubic() *Cubic { return &Cubic{} }

// Name implements CongestionControl.
func (cu *Cubic) Name() string { return "cubic" }

// Init implements CongestionControl.
func (cu *Cubic) Init(c Conn) {
	cu.cwnd = float64(10 * c.MSS())
	cu.ssthresh = 1 << 40
}

// OnAck implements CongestionControl.
//
//greenvet:hotpath
func (cu *Cubic) OnAck(c Conn, info AckInfo) {
	if info.InRecovery {
		return
	}
	mss := float64(c.MSS())
	if cu.cwnd < cu.ssthresh {
		cu.hystart(c, info)
		cu.cwnd += float64(info.AckedBytes)
		if cu.cwnd > cu.ssthresh {
			cu.cwnd = cu.ssthresh
		}
		return
	}

	now := c.Now()
	if cu.epochStart == 0 {
		cu.epochStart = now
		seg := cu.cwnd / mss
		if cu.wMax < seg {
			cu.wMax = seg
			cu.k = 0
		} else {
			cu.k = math.Cbrt(cu.wMax * (1 - cubicBeta) / cubicC)
		}
		cu.ackCount = 0
		cu.wTCP = seg
	}

	t := (now - cu.epochStart).Seconds()
	rtt := c.SRTT().Seconds()
	// Target window one RTT in the future (RFC 8312 §4.1).
	target := cubicC*math.Pow(t+rtt-cu.k, 3) + cu.wMax

	// TCP-friendly region (RFC 8312 §4.2): estimate the window Reno
	// would have, growing 3(1−β)/(1+β) segments per window acknowledged
	// (the Linux tcp_cubic bookkeeping).
	cu.ackCount += float64(info.AckedBytes) / mss
	seg := cu.cwnd / mss
	delta := seg * (1 + cubicBeta) / (3 * (1 - cubicBeta))
	for cu.ackCount > delta {
		cu.ackCount -= delta
		cu.wTCP++
	}
	if target < cu.wTCP {
		target = cu.wTCP
	}

	if target > seg {
		// Grow toward target: cwnd += (target-cwnd)/cwnd per ACK,
		// scaled by bytes acknowledged.
		inc := (target - seg) / seg * float64(info.AckedBytes)
		cu.cwnd += inc
	} else {
		// Max growth rate is bounded: 1.5x per RTT worth of ACKs.
		cu.cwnd += float64(info.AckedBytes) / (100 * seg) // negligible probe growth
	}
}

// hystart implements the delay-based HyStart heuristic (Ha & Rhee, as in
// Linux tcp_cubic): once per round of delivered data, compare the round's
// minimum RTT against the base RTT; a rise beyond baseRTT/8 means the
// bottleneck queue has started to build, and slow start ends at the
// current window rather than overshooting the buffer.
func (cu *Cubic) hystart(c Conn, info AckInfo) {
	if info.RTT <= 0 {
		return
	}
	if cu.hsBaseRTT == 0 || info.RTT < cu.hsBaseRTT {
		cu.hsBaseRTT = info.RTT
	}
	if cu.hsRoundMin == 0 || info.RTT < cu.hsRoundMin {
		cu.hsRoundMin = info.RTT
	}
	if info.Delivered < cu.hsRoundEnd {
		return
	}
	cu.hsRoundEnd = info.Delivered + uint64(cu.cwnd)
	thresh := cu.hsBaseRTT / 8
	if min := 16 * sim.Microsecond; thresh < min {
		thresh = min
	}
	if cu.hsRoundMin > cu.hsBaseRTT+thresh && cu.cwnd >= 16*float64(c.MSS()) {
		cu.ssthresh = cu.cwnd
	}
	cu.hsRoundMin = 0
}

// OnLoss implements CongestionControl: multiplicative decrease by beta with
// fast convergence (RFC 8312 §4.6).
//
//greenvet:hotpath
func (cu *Cubic) OnLoss(c Conn) {
	mss := float64(c.MSS())
	seg := cu.cwnd / mss
	cu.epochStart = 0
	if seg < cu.lastDecr {
		// Fast convergence: release bandwidth faster when the window
		// is shrinking across episodes.
		cu.wMax = seg * (1 + cubicBeta) / 2
	} else {
		cu.wMax = seg
	}
	cu.lastDecr = seg
	cu.cwnd = cu.cwnd * cubicBeta
	if min := float64(2 * c.MSS()); cu.cwnd < min {
		cu.cwnd = min
	}
	cu.ssthresh = cu.cwnd
}

// OnRTO implements CongestionControl.
//
//greenvet:hotpath
func (cu *Cubic) OnRTO(c Conn) {
	cu.epochStart = 0
	cu.wMax = cu.cwnd / float64(c.MSS())
	cu.ssthresh = cu.cwnd * cubicBeta
	if min := float64(2 * c.MSS()); cu.ssthresh < min {
		cu.ssthresh = min
	}
	cu.cwnd = float64(c.MSS())
}

// CWnd implements CongestionControl.
func (cu *Cubic) CWnd() float64 { return cu.cwnd }

// PacingRate implements CongestionControl.
func (cu *Cubic) PacingRate() float64 { return 0 }

// ECNCapable implements CongestionControl.
func (cu *Cubic) ECNCapable() bool { return false }

// InSlowStart reports whether the window is below ssthresh (exposed for
// tests and traces).
func (cu *Cubic) InSlowStart() bool { return cu.cwnd < cu.ssthresh }
