package tcp

import (
	"testing"
	"testing/quick"
)

func TestRangeSetAddDisjoint(t *testing.T) {
	var s rangeSet
	s.add(10, 20)
	s.add(30, 40)
	if s.len() != 2 || s.bytes() != 20 {
		t.Fatalf("len=%d bytes=%d", s.len(), s.bytes())
	}
	if !s.contains(15) || s.contains(25) || !s.contains(30) || s.contains(40) {
		t.Fatal("contains wrong")
	}
}

func TestRangeSetMergeOverlapping(t *testing.T) {
	var s rangeSet
	s.add(10, 20)
	s.add(15, 30)
	if s.len() != 1 || s.bytes() != 20 {
		t.Fatalf("merge failed: len=%d bytes=%d ranges=%v", s.len(), s.bytes(), s.ranges)
	}
}

func TestRangeSetMergeAdjacent(t *testing.T) {
	var s rangeSet
	s.add(10, 20)
	s.add(20, 30)
	if s.len() != 1 || s.bytes() != 20 {
		t.Fatalf("adjacent merge failed: %v", s.ranges)
	}
}

func TestRangeSetBridgeMerge(t *testing.T) {
	var s rangeSet
	s.add(10, 20)
	s.add(30, 40)
	s.add(18, 32) // bridges both
	if s.len() != 1 || s.bytes() != 30 {
		t.Fatalf("bridge merge failed: %v", s.ranges)
	}
}

func TestRangeSetAddReturnsMerged(t *testing.T) {
	var s rangeSet
	s.add(10, 20)
	got := s.add(20, 30)
	if got.Start != 10 || got.End != 30 {
		t.Fatalf("merged = %+v", got)
	}
}

func TestRangeSetInsertInMiddle(t *testing.T) {
	var s rangeSet
	s.add(100, 110)
	s.add(10, 20)
	s.add(50, 60)
	if s.len() != 3 {
		t.Fatalf("ranges = %v", s.ranges)
	}
	// Sorted order maintained.
	for i := 1; i < len(s.ranges); i++ {
		if s.ranges[i].Start < s.ranges[i-1].End {
			t.Fatalf("ranges unsorted: %v", s.ranges)
		}
	}
}

func TestRangeSetPopBelow(t *testing.T) {
	var s rangeSet
	s.add(10, 20)
	s.add(30, 40)
	// popBelow(10): first range starts at 10 <= 10, so delivery extends
	// through it.
	if got := s.popBelow(10); got != 20 {
		t.Fatalf("popBelow(10) = %d, want 20", got)
	}
	if s.len() != 1 {
		t.Fatalf("remaining = %v", s.ranges)
	}
	// popBelow(25): next range starts at 30 > 25; limit unchanged.
	if got := s.popBelow(25); got != 25 {
		t.Fatalf("popBelow(25) = %d, want 25", got)
	}
	if got := s.popBelow(30); got != 40 {
		t.Fatalf("popBelow(30) = %d, want 40", got)
	}
	if s.len() != 0 {
		t.Fatal("ranges left")
	}
}

func TestRangeSetPopBelowChain(t *testing.T) {
	var s rangeSet
	s.add(10, 20)
	s.add(20, 30) // merges
	s.add(40, 50)
	if got := s.popBelow(10); got != 30 {
		t.Fatalf("chained pop = %d, want 30", got)
	}
}

func TestRangeSetEmptyAdd(t *testing.T) {
	var s rangeSet
	s.add(10, 10)
	s.add(20, 10)
	if s.len() != 0 {
		t.Fatalf("degenerate ranges stored: %v", s.ranges)
	}
}

func TestRangeSetBlocks(t *testing.T) {
	var s rangeSet
	for i := uint64(0); i < 10; i++ {
		s.add(i*20, i*20+10)
	}
	if got := len(s.blocks(4)); got != 4 {
		t.Fatalf("blocks(4) = %d", got)
	}
	if got := len(s.blocks(20)); got != 10 {
		t.Fatalf("blocks(20) = %d", got)
	}
}

// Property: after arbitrary adds, ranges are sorted, disjoint,
// non-adjacent, and cover exactly the added bytes.
func TestRangeSetInvariantsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		var s rangeSet
		covered := map[uint64]bool{}
		for _, op := range ops {
			start := uint64(op % 500)
			length := uint64(op%37) + 1
			s.add(start, start+length)
			for b := start; b < start+length; b++ {
				covered[b] = true
			}
		}
		// Invariants.
		for i, r := range s.ranges {
			if r.Start >= r.End {
				return false
			}
			if i > 0 && s.ranges[i-1].End >= r.Start {
				return false // overlapping or adjacent (should merge)
			}
		}
		if s.bytes() != uint64(len(covered)) {
			return false
		}
		for b := range covered {
			if !s.contains(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRTTEstimator(t *testing.T) {
	var r rttEstimator
	if r.rto() != 1_000_000_000 {
		t.Fatalf("pre-sample RTO = %v, want 1s", r.rto())
	}
	r.sample(100_000) // 100 µs
	if r.srtt != 100_000 || r.rttvar != 50_000 {
		t.Fatalf("first sample: srtt=%v rttvar=%v", r.srtt, r.rttvar)
	}
	if r.minRTT != 100_000 {
		t.Fatalf("minRTT = %v", r.minRTT)
	}
	// Steady equal samples converge rttvar to 0 and keep srtt.
	for i := 0; i < 100; i++ {
		r.sample(100_000)
	}
	if r.srtt != 100_000 {
		t.Fatalf("srtt drifted: %v", r.srtt)
	}
	if r.rttvar > 1000 {
		t.Fatalf("rttvar = %v, want ~0", r.rttvar)
	}
	// A lower sample updates minRTT.
	r.sample(60_000)
	if r.minRTT != 60_000 {
		t.Fatalf("minRTT = %v, want 60µs", r.minRTT)
	}
	// Ignore non-positive samples.
	r.sample(0)
	r.sample(-5)
	if r.minRTT != 60_000 {
		t.Fatal("bad samples changed state")
	}
}

func TestConfigMSS(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MSS() != 9000-HeaderBytes {
		t.Fatalf("MSS = %d", cfg.MSS())
	}
}
