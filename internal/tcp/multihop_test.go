package tcp

import (
	"testing"

	"greenenvy/internal/cca"
	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
)

// parkingLot builds a two-switch path with the SECOND hop as the
// bottleneck: sender → sw1 —10G→ sw2 —5G→ receiver. Multi-hop telemetry
// must identify the far bottleneck.
func parkingLot(e *sim.Engine) (*netsim.Host, *netsim.Host, *netsim.Link) {
	snd := netsim.NewHost(0, "sender")
	rcv := netsim.NewHost(1, "receiver")
	sw1 := netsim.NewSwitch(e, "sw1", sim.Microsecond)
	sw2 := netsim.NewSwitch(e, "sw2", sim.Microsecond)

	snd.SetEgress(netsim.NewLink(e, "uplink", 10_000_000_000, 5*sim.Microsecond, netsim.NewDropTail(0, 0), sw1))
	mid := netsim.NewLink(e, "sw1-sw2", 10_000_000_000, 5*sim.Microsecond, netsim.NewDropTail(1<<20, 0), sw2)
	sw1.Connect(rcv.ID, mid)
	bottleneck := netsim.NewLink(e, "sw2-rcv", 5_000_000_000, 5*sim.Microsecond, netsim.NewDropTail(1<<20, 0), rcv)
	sw2.Connect(rcv.ID, bottleneck)

	// Reverse path for ACKs: receiver → sw2 → sw1 → sender.
	rcv.SetEgress(netsim.NewLink(e, "rcv-up", 10_000_000_000, 5*sim.Microsecond, netsim.NewDropTail(0, 0), sw2))
	sw2.Connect(snd.ID, netsim.NewLink(e, "sw2-sw1", 10_000_000_000, 5*sim.Microsecond, netsim.NewDropTail(0, 0), sw1))
	sw1.Connect(snd.ID, netsim.NewLink(e, "sw1-snd", 10_000_000_000, 5*sim.Microsecond, netsim.NewDropTail(0, 0), snd))
	return snd, rcv, bottleneck
}

func TestMultiHopTransferAllCCAs(t *testing.T) {
	for _, name := range []string{"cubic", "bbr", "swift", "hpcc"} {
		name := name
		t.Run(name, func(t *testing.T) {
			e := sim.NewEngine()
			snd, rcv, _ := parkingLot(e)
			cfg := DefaultConfig()
			cfg.TxPathCost = 1500 * sim.Nanosecond
			cfg.NICRateBps = 10_000_000_000
			cc := cca.MustNew(name)
			NewReceiver(e, rcv, 1, snd.ID, cfg, cc.ECNCapable(), nil)
			s := NewSender(e, snd, 1, rcv.ID, 50<<20, cc, cfg, nil)
			s.Start()
			e.RunUntil(60 * sim.Second)
			if !s.Done() {
				t.Fatalf("%s incomplete over two switches", name)
			}
			goodput := float64(50<<20) * 8 / s.FCT().Seconds()
			// The far 5 Gb/s hop is the limit.
			if goodput > 5.1e9 {
				t.Fatalf("goodput %.2f Gb/s exceeds the 5 Gb/s bottleneck", goodput/1e9)
			}
			if goodput < 3.0e9 {
				t.Fatalf("%s goodput %.2f Gb/s, want near the 5 Gb/s hop", name, goodput/1e9)
			}
		})
	}
}

func TestHPCCFindsFarBottleneck(t *testing.T) {
	// HPCC's max-over-hops utilization must throttle to the SECOND hop's
	// capacity with a near-empty queue there.
	e := sim.NewEngine()
	snd, rcv, bottleneck := parkingLot(e)
	cfg := DefaultConfig()
	cfg.TxPathCost = 1500 * sim.Nanosecond
	cfg.NICRateBps = 10_000_000_000
	cc := cca.MustNew("hpcc")
	NewReceiver(e, rcv, 1, snd.ID, cfg, cc.ECNCapable(), nil)
	s := NewSender(e, snd, 1, rcv.ID, 50<<20, cc, cfg, nil)
	s.Start()
	e.RunUntil(60 * sim.Second)
	if !s.Done() {
		t.Fatal("hpcc incomplete")
	}
	if s.Retransmits > 10 {
		t.Fatalf("hpcc lost %d segments; telemetry should prevent overload", s.Retransmits)
	}
	if q := bottleneck.Queue().Stats().MaxBytes; q > 400<<10 {
		t.Fatalf("bottleneck queue reached %d bytes; HPCC should keep it near empty", q)
	}
	goodput := float64(50<<20) * 8 / s.FCT().Seconds()
	if goodput < 3.5e9 || goodput > 5.0e9 {
		t.Fatalf("hpcc goodput %.2f Gb/s, want ~95%% of 5 Gb/s", goodput/1e9)
	}
}
