package tcp

import (
	"testing"

	"greenenvy/internal/cca"
	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
)

// runProduction drives a bulk transfer of one §5 production algorithm over
// a marking bottleneck (DCQCN needs ECN; the threshold is harmless for the
// others).
func runProduction(t *testing.T, name string, bytes uint64) (*Sender, *netsim.Dumbbell) {
	t.Helper()
	e := sim.NewEngine()
	dcfg := netsim.DefaultDumbbell(1)
	dcfg.MarkBytes = 100 << 10
	d := netsim.NewDumbbell(e, dcfg)
	cfg := DefaultConfig()
	cfg.TxPathCost = 1500 * sim.Nanosecond
	cfg.NICRateBps = 20_000_000_000
	cc := cca.MustNew(name)
	NewReceiver(e, d.Receiver, 1, d.Senders[0].ID, cfg, cc.ECNCapable(), nil)
	s := NewSender(e, d.Senders[0], 1, d.Receiver.ID, bytes, cc, cfg, nil)
	s.Start()
	e.RunUntil(120 * sim.Second)
	if !s.Done() {
		t.Fatalf("%s transfer incomplete (una=%d/%d retx=%d rto=%d)", name, s.sndUna, bytes, s.Retransmits, s.Timeouts)
	}
	return s, d
}

func TestProductionCCAsComplete(t *testing.T) {
	for _, name := range cca.ProductionOrder() {
		name := name
		t.Run(name, func(t *testing.T) {
			s, _ := runProduction(t, name, 100<<20)
			goodput := float64(100<<20) * 8 / s.FCT().Seconds()
			if goodput < 6e9 {
				t.Fatalf("%s goodput = %.2f Gb/s, want near line rate", name, goodput/1e9)
			}
		})
	}
}

func TestSwiftHoldsDelayTarget(t *testing.T) {
	s, d := runProduction(t, "swift", 100<<20)
	// Swift's 50 µs target above base bounds the standing queue at
	// roughly target × line rate = 62.5 KB; allow transients.
	if q := d.Bottleneck.Queue().Stats().MaxBytes; q > 400<<10 {
		t.Fatalf("swift max queue = %d, want bounded by the delay target", q)
	}
	if s.Retransmits > 10 {
		t.Fatalf("swift retransmits = %d, want ~0", s.Retransmits)
	}
}

func TestDCQCNSingleFlowCleanAtLineRate(t *testing.T) {
	// One smoothly-paced flow at line rate builds no queue: no marks, no
	// loss — the RDMA ideal.
	s, _ := runProduction(t, "dcqcn", 100<<20)
	if s.Retransmits > 50 {
		t.Fatalf("dcqcn retransmits = %d; rate control should avoid loss", s.Retransmits)
	}
}

func TestDCQCNCompetingFlowsUseECN(t *testing.T) {
	// Two DCQCN flows at line rate each overload the port: the control
	// loop must engage through CE marks and converge without heavy loss.
	e := sim.NewEngine()
	dcfg := netsim.DefaultDumbbell(2)
	dcfg.MarkBytes = 100 << 10
	d := netsim.NewDumbbell(e, dcfg)
	cfg := DefaultConfig()
	cfg.TxPathCost = 1500 * sim.Nanosecond
	cfg.NICRateBps = 20_000_000_000
	var ss []*Sender
	for i := 0; i < 2; i++ {
		flow := netsim.FlowID(i + 1)
		cc := cca.MustNew("dcqcn")
		NewReceiver(e, d.Receiver, flow, d.Senders[i].ID, cfg, cc.ECNCapable(), nil)
		s := NewSender(e, d.Senders[i], flow, d.Receiver.ID, 50<<20, cc, cfg, nil)
		ss = append(ss, s)
		s.Start()
	}
	e.RunUntil(120 * sim.Second)
	for i, s := range ss {
		if !s.Done() {
			t.Fatalf("flow %d incomplete", i)
		}
	}
	if d.Bottleneck.Queue().Stats().MarkedCE == 0 {
		t.Fatal("competing DCQCN flows produced no CE marks")
	}
	total := ss[0].Retransmits + ss[1].Retransmits
	if total > 500 {
		t.Fatalf("dcqcn competing retransmits = %d; ECN should do the signalling", total)
	}
}

func TestHPCCReceivesTelemetryAndAvoidsQueueing(t *testing.T) {
	s, d := runProduction(t, "hpcc", 100<<20)
	h := s.CC().(*cca.HPCC)
	if !h.NeedsINT() {
		t.Fatal("HPCC must request INT")
	}
	if s.Retransmits > 10 {
		t.Fatalf("hpcc retransmits = %d, want ~0", s.Retransmits)
	}
	// 95% utilization target keeps the queue near empty.
	if q := d.Bottleneck.Queue().Stats().MaxBytes; q > 300<<10 {
		t.Fatalf("hpcc max queue = %d, want near-empty (η=0.95)", q)
	}
}

func TestINTStampedAndEchoed(t *testing.T) {
	// Direct check of the telemetry path: an INT-flagged data packet
	// accumulates hops, and the receiver echoes them on the ACK.
	e := sim.NewEngine()
	d := netsim.NewDumbbell(e, netsim.DefaultDumbbell(1))
	cfg := DefaultConfig()
	cfg.TxPathCost = 0
	var gotAck *netsim.Packet
	d.Senders[0].Attach(1, netsim.HandlerFunc(func(p *netsim.Packet) { gotAck = p }))
	NewReceiver(e, d.Receiver, 1, d.Senders[0].ID, cfg, false, nil)
	// Hand-send one INT data packet.
	d.Senders[0].Send(&netsim.Packet{
		Flow: 1, Dst: d.Receiver.ID, Seq: 0, DataLen: cfg.MSS(),
		WireSize: cfg.MTU, Flags: netsim.FlagINT, SentAt: e.Now(),
	})
	e.Run()
	if gotAck == nil {
		t.Fatal("no ACK")
	}
	// Three hops on the forward path: sender uplink, the bottleneck, and
	// the receiving NIC's ring (the HPCC-style first-hop NIC record).
	if len(gotAck.INT) != 3 {
		t.Fatalf("INT hops = %d, want 3", len(gotAck.INT))
	}
	for i, hop := range gotAck.INT[:2] {
		if hop.RateBps != 10_000_000_000 {
			t.Fatalf("link hop %d rate = %d", i, hop.RateBps)
		}
		if hop.At == 0 {
			t.Fatalf("hop %d missing timestamp", i)
		}
	}
	nic := gotAck.INT[2]
	wantNIC := int64(cfg.MTU) * 8 * int64(sim.Second) / int64(cfg.RxPathCost)
	if nic.RateBps != wantNIC {
		t.Fatalf("NIC hop rate = %d, want %d", nic.RateBps, wantNIC)
	}
}

func TestProductionCCAsCompeteFairly(t *testing.T) {
	// Two flows of the same production algorithm share the bottleneck:
	// both complete with comparable FCTs.
	for _, name := range cca.ProductionOrder() {
		name := name
		t.Run(name, func(t *testing.T) {
			e := sim.NewEngine()
			dcfg := netsim.DefaultDumbbell(2)
			dcfg.MarkBytes = 100 << 10
			d := netsim.NewDumbbell(e, dcfg)
			cfg := DefaultConfig()
			cfg.TxPathCost = 1500 * sim.Nanosecond
			cfg.NICRateBps = 20_000_000_000
			var ss []*Sender
			for i := 0; i < 2; i++ {
				flow := netsim.FlowID(i + 1)
				cc := cca.MustNew(name)
				NewReceiver(e, d.Receiver, flow, d.Senders[i].ID, cfg, cc.ECNCapable(), nil)
				s := NewSender(e, d.Senders[i], flow, d.Receiver.ID, 50<<20, cc, cfg, nil)
				ss = append(ss, s)
				s.Start()
			}
			e.RunUntil(120 * sim.Second)
			for i, s := range ss {
				if !s.Done() {
					t.Fatalf("flow %d incomplete", i)
				}
			}
			r := ss[0].FCT().Seconds() / ss[1].FCT().Seconds()
			if r < 0.55 || r > 1.8 {
				t.Fatalf("%s FCT ratio %v: flows did not share", name, r)
			}
		})
	}
}
