package tcp

import "sort"

// rangeSet maintains a sorted set of disjoint half-open byte ranges. The
// receiver uses it to track out-of-order data above rcvNxt and to generate
// SACK blocks. Operations use binary search so large loss episodes (many
// disjoint ranges) stay cheap.
type rangeSet struct {
	ranges []byteRange // sorted by Start, disjoint, non-adjacent
}

type byteRange struct {
	Start, End uint64
}

// add inserts [start, end), merging overlapping and adjacent ranges, and
// returns the merged range now covering start.
func (s *rangeSet) add(start, end uint64) byteRange {
	if start >= end {
		return byteRange{start, start}
	}
	// First range whose End >= start (candidate for merging on the left).
	i := sort.Search(len(s.ranges), func(k int) bool { return s.ranges[k].End >= start }) //greenvet:allow hotpathalloc sort.Search does not retain the closure, so it stays on the stack
	j := i
	for j < len(s.ranges) && s.ranges[j].Start <= end {
		if s.ranges[j].Start < start {
			start = s.ranges[j].Start
		}
		if s.ranges[j].End > end {
			end = s.ranges[j].End
		}
		j++
	}
	merged := byteRange{start, end}
	if i == j {
		// No overlap: insert at i.
		s.ranges = append(s.ranges, byteRange{}) //greenvet:allow hotpathalloc out-of-order set grows only during loss episodes, bounded by the reordering extent
		copy(s.ranges[i+1:], s.ranges[i:])
		s.ranges[i] = merged
	} else {
		s.ranges[i] = merged
		s.ranges = append(s.ranges[:i+1], s.ranges[j:]...) //greenvet:allow hotpathalloc shrinking merge into the existing backing array: never grows
	}
	return merged
}

// popBelow removes all data below seq and returns the new contiguous limit:
// if a range begins at or below seq, its end becomes the new limit
// (cumulative delivery advanced over buffered data).
func (s *rangeSet) popBelow(seq uint64) uint64 {
	limit := seq
	n := 0
	for n < len(s.ranges) && s.ranges[n].Start <= limit {
		if s.ranges[n].End > limit {
			limit = s.ranges[n].End
		}
		n++
	}
	if n > 0 {
		s.ranges = s.ranges[n:]
	}
	return limit
}

// find returns the range containing seq, if any.
func (s *rangeSet) find(seq uint64) (byteRange, bool) {
	i := sort.Search(len(s.ranges), func(k int) bool { return s.ranges[k].End > seq }) //greenvet:allow hotpathalloc sort.Search does not retain the closure, so it stays on the stack
	if i < len(s.ranges) && s.ranges[i].Start <= seq {
		return s.ranges[i], true
	}
	return byteRange{}, false
}

// contains reports whether the byte at seq is covered.
func (s *rangeSet) contains(seq uint64) bool {
	_, ok := s.find(seq)
	return ok
}

// blocks returns up to max ranges, lowest first.
func (s *rangeSet) blocks(max int) []byteRange {
	if len(s.ranges) <= max {
		return s.ranges
	}
	return s.ranges[:max]
}

// reset empties the set, keeping the backing array for reuse. (popBelow
// slides the slice forward, so a reused set may carry a reduced-capacity
// tail for a while; the next growth append re-anchors a fresh array.)
func (s *rangeSet) reset() { s.ranges = s.ranges[:0] }

// len reports the number of disjoint ranges.
func (s *rangeSet) len() int { return len(s.ranges) }

// bytes reports the total bytes covered.
func (s *rangeSet) bytes() uint64 {
	var n uint64
	for _, r := range s.ranges {
		n += r.End - r.Start
	}
	return n
}
