package tcp

import (
	"testing"

	"greenenvy/internal/cca"
	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
)

// maxQueueDuring runs one 100 MB flow of the named CCA and returns the
// bottleneck queue's high-water mark in bytes.
func maxQueueDuring(t *testing.T, name string) int {
	t.Helper()
	e := sim.NewEngine()
	d := netsim.NewDumbbell(e, netsim.DefaultDumbbell(1))
	cfg := DefaultConfig()
	cfg.TxPathCost = 1500 * sim.Nanosecond
	cfg.NICRateBps = 20_000_000_000
	cc := cca.MustNew(name)
	NewReceiver(e, d.Receiver, 1, d.Senders[0].ID, cfg, cc.ECNCapable(), nil)
	s := NewSender(e, d.Senders[0], 1, d.Receiver.ID, 100<<20, cc, cfg, nil)
	s.Start()
	e.RunUntil(60 * sim.Second)
	if !s.Done() {
		t.Fatalf("%s transfer incomplete", name)
	}
	return d.Bottleneck.Queue().Stats().MaxBytes
}

func TestVegasKeepsQueueShorterThanCubic(t *testing.T) {
	vegas := maxQueueDuring(t, "vegas")
	cubic := maxQueueDuring(t, "cubic")
	if vegas >= cubic {
		t.Fatalf("vegas max queue %d >= cubic %d; delay-based CCA should queue less", vegas, cubic)
	}
}

func TestBBRKeepsQueueShort(t *testing.T) {
	bbr := maxQueueDuring(t, "bbr")
	cubic := maxQueueDuring(t, "cubic")
	if bbr >= cubic/2 {
		t.Fatalf("bbr max queue %d vs cubic %d; pacing should nearly empty the buffer", bbr, cubic)
	}
}

func TestBaselineFillsBuffer(t *testing.T) {
	base := maxQueueDuring(t, "baseline")
	// The constant 25 MB window must slam the 1 MiB buffer to its cap.
	if base < 900<<10 {
		t.Fatalf("baseline max queue = %d, want near the 1 MiB cap", base)
	}
}

func TestFCTOrderingAcrossCCAs(t *testing.T) {
	// The energy story of Figures 5/7 rests on completion times: the
	// well-tuned CCAs finish a bulk transfer at (near) line rate, bbr2
	// trails far behind, and the baseline pays for its losses.
	fct := func(name string) sim.Duration {
		e := sim.NewEngine()
		d := netsim.NewDumbbell(e, netsim.DefaultDumbbell(1))
		cfg := DefaultConfig()
		cfg.TxPathCost = 1500 * sim.Nanosecond
		cfg.NICRateBps = 20_000_000_000
		cc := cca.MustNew(name)
		NewReceiver(e, d.Receiver, 1, d.Senders[0].ID, cfg, cc.ECNCapable(), nil)
		s := NewSender(e, d.Senders[0], 1, d.Receiver.ID, 200<<20, cc, cfg, nil)
		s.Start()
		e.RunUntil(120 * sim.Second)
		if !s.Done() {
			t.Fatalf("%s incomplete", name)
		}
		return s.FCT()
	}
	cubic := fct("cubic")
	bbr := fct("bbr")
	bbr2 := fct("bbr2")
	if float64(bbr2) < 1.2*float64(bbr) {
		t.Errorf("bbr2 FCT %v should trail bbr %v by a wide margin", bbr2, bbr)
	}
	if float64(cubic) > 1.3*float64(bbr) {
		t.Errorf("cubic FCT %v and bbr %v should be comparable", cubic, bbr)
	}
}
