package tcp

import (
	"testing"

	"greenenvy/internal/cca"
	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
)

// senderHarness drives a Sender against a hand-written "network": outgoing
// segments are captured, and the test injects ACKs directly.
type senderHarness struct {
	engine *sim.Engine
	host   *netsim.Host
	snd    *Sender
	out    []*netsim.Packet
}

func newSenderHarness(t *testing.T, totalBytes uint64, ccName string, cfg Config) *senderHarness {
	t.Helper()
	h := &senderHarness{engine: sim.NewEngine()}
	h.host = netsim.NewHost(0, "tx")
	h.host.SetEgress(netsim.HandlerFunc(func(p *netsim.Packet) { h.out = append(h.out, p) }))
	h.snd = NewSender(h.engine, h.host, 1, 9, totalBytes, cca.MustNew(ccName), cfg, nil)
	return h
}

// ack injects a cumulative ACK (optionally with SACK blocks).
func (h *senderHarness) ack(cum uint64, sacks ...netsim.SACKBlock) {
	h.host.HandlePacket(&netsim.Packet{
		Flow: 1, Flags: netsim.FlagACK, Ack: cum, SACK: sacks, WireSize: HeaderBytes,
	})
}

func plainCfg() Config {
	cfg := DefaultConfig()
	cfg.MTU = 1060 // MSS 1000 for easy arithmetic
	cfg.TxPathCost = 0
	cfg.RxPathCost = -1
	return cfg
}

func TestSenderInitialWindowBurst(t *testing.T) {
	h := newSenderHarness(t, 100_000, "reno", plainCfg())
	h.snd.Start()
	h.engine.RunUntil(sim.Microsecond)
	// IW = 10 segments of 1000 bytes.
	if len(h.out) != 10 {
		t.Fatalf("initial burst = %d segments, want 10", len(h.out))
	}
	if h.snd.BytesInFlight() != 10_000 {
		t.Fatalf("pipe = %d", h.snd.BytesInFlight())
	}
	for i, p := range h.out {
		if p.Seq != uint64(i*1000) || p.DataLen != 1000 {
			t.Fatalf("segment %d = %v", i, p)
		}
	}
}

func TestSenderAckAdvancesAndSendsMore(t *testing.T) {
	h := newSenderHarness(t, 100_000, "reno", plainCfg())
	h.snd.Start()
	h.engine.RunUntil(100 * sim.Microsecond)
	n := len(h.out)
	h.engine.At(200*sim.Microsecond, func() { h.ack(2000) })
	h.engine.RunUntil(300 * sim.Microsecond)
	if h.snd.sndUna != 2000 {
		t.Fatalf("una = %d", h.snd.sndUna)
	}
	// Slow start: 2000 acked grows cwnd by 2000 → 4 new segments
	// (2 freed + 2 growth).
	if len(h.out) != n+4 {
		t.Fatalf("sent %d new segments, want 4", len(h.out)-n)
	}
}

func TestSenderCompletionCallback(t *testing.T) {
	h := newSenderHarness(t, 3000, "reno", plainCfg())
	done := false
	h.snd.OnComplete = func() { done = true }
	h.snd.Start()
	h.engine.At(50*sim.Microsecond, func() { h.ack(3000) })
	h.engine.RunUntil(sim.Second)
	if !done || !h.snd.Done() {
		t.Fatal("completion not signalled")
	}
	if h.snd.FCT() != 50*sim.Microsecond {
		t.Fatalf("FCT = %v", h.snd.FCT())
	}
	if h.snd.rtoTimer.Armed() || h.snd.tlpTimer.Armed() || h.snd.sendTimer.Armed() {
		t.Fatal("timers leaked after completion")
	}
	if h.engine.Pending() != 0 {
		t.Fatalf("Pending = %d after completion, want 0", h.engine.Pending())
	}
}

func TestSenderSACKTriggersFastRetransmit(t *testing.T) {
	h := newSenderHarness(t, 100_000, "reno", plainCfg())
	h.snd.Start()
	h.engine.RunUntil(10 * sim.Microsecond)
	// Segment 0 lost; SACK 4 segments above it (beyond ReorderSegs=3).
	h.engine.At(20*sim.Microsecond, func() {
		h.ack(0, netsim.SACKBlock{Start: 1000, End: 5000})
	})
	h.engine.RunUntil(30 * sim.Microsecond)
	// The first retransmission must be segment 0.
	var retx *netsim.Packet
	for _, p := range h.out {
		if p.Retransmit {
			retx = p
			break
		}
	}
	if retx == nil || retx.Seq != 0 {
		t.Fatalf("fast retransmit = %v, want seq 0", retx)
	}
	if h.snd.Retransmits != 1 {
		t.Fatalf("Retransmits = %d", h.snd.Retransmits)
	}
	if !h.snd.recovery {
		t.Fatal("not in recovery")
	}
}

func TestSenderReorderingToleratedWithinWindow(t *testing.T) {
	h := newSenderHarness(t, 100_000, "reno", plainCfg())
	h.snd.Start()
	h.engine.RunUntil(10 * sim.Microsecond)
	// SACK only 2 segments above the hole (< ReorderSegs): no loss yet.
	h.engine.At(20*sim.Microsecond, func() {
		h.ack(0, netsim.SACKBlock{Start: 1000, End: 3000})
	})
	h.engine.RunUntil(30 * sim.Microsecond)
	if h.snd.Retransmits != 0 {
		t.Fatalf("retransmitted on mild reordering: %d", h.snd.Retransmits)
	}
	if h.snd.recovery {
		t.Fatal("entered recovery on mild reordering")
	}
}

func TestSenderRTOBackoffDoubles(t *testing.T) {
	cfg := plainCfg()
	cfg.MinRTO = 10 * sim.Millisecond
	h := newSenderHarness(t, 50_000, "reno", cfg)
	h.snd.Start()
	// Establish a 20 µs RTT so the RTO floor (MinRTO) applies, then go
	// silent. RTOs fire at ~10ms, then backoff: +20ms, +40ms, +80ms.
	h.engine.At(20*sim.Microsecond, func() { h.ack(1000) })
	h.engine.RunUntil(160 * sim.Millisecond)
	if h.snd.Timeouts < 3 || h.snd.Timeouts > 5 {
		t.Fatalf("timeouts in 160ms = %d, want 4 with doubling backoff", h.snd.Timeouts)
	}
}

func TestSenderRTORetransmitsAllOutstanding(t *testing.T) {
	cfg := plainCfg()
	cfg.MinRTO = 5 * sim.Millisecond
	h := newSenderHarness(t, 6000, "reno", cfg)
	h.snd.Start()
	h.engine.At(20*sim.Microsecond, func() { h.ack(1000) }) // RTT estimate
	h.engine.RunUntil(6 * sim.Millisecond)
	if h.snd.Timeouts != 1 {
		t.Fatalf("timeouts = %d", h.snd.Timeouts)
	}
	// All 5 outstanding segments (1000..6000) are presumed lost: the
	// first goes out immediately; the rest wait in the retransmission
	// queue because the post-RTO window is one segment.
	if got := len(h.snd.retxQueue); got != 4 {
		t.Fatalf("retx queue = %d entries, want 4 awaiting window", got)
	}
	var first *netsim.Packet
	for _, p := range h.out {
		if p.Retransmit && p.Seq == 1000 {
			first = p
		}
	}
	if first == nil {
		t.Fatal("lowest hole not retransmitted first after RTO")
	}
	// CC collapsed to 1 MSS.
	if h.snd.CC().CWnd() > 1000 {
		t.Fatalf("cwnd after RTO = %v", h.snd.CC().CWnd())
	}
}

func TestSenderTLPFiresBeforeRTO(t *testing.T) {
	cfg := plainCfg()
	cfg.MinRTO = 50 * sim.Millisecond
	h := newSenderHarness(t, 20_000, "reno", cfg)
	h.snd.Start()
	h.engine.RunUntil(10 * sim.Microsecond)
	// Establish an RTT estimate, acking everything except the tail.
	h.engine.At(100*sim.Microsecond, func() { h.ack(19_000) })
	// The last segment's ACK never arrives (tail loss). TLP should probe
	// at ~2·SRTT ≪ RTO.
	h.engine.RunUntil(40 * sim.Millisecond)
	if h.snd.Timeouts != 0 {
		t.Fatalf("RTO fired (%d) before TLP could probe", h.snd.Timeouts)
	}
	probes := 0
	for _, p := range h.out {
		if p.Retransmit && p.Seq == 19_000 {
			probes++
		}
	}
	if probes == 0 {
		t.Fatal("no tail loss probe sent")
	}
}

func TestSenderTLPRepairsTailLossEndToEnd(t *testing.T) {
	// Full-stack check: drop exactly the last data segment once; the
	// transfer must still complete quickly (no 10 ms RTO stall).
	e := sim.NewEngine()
	d := netsim.NewDumbbell(e, netsim.DefaultDumbbell(1))
	cfg := DefaultConfig()
	cfg.TxPathCost = 1500 * sim.Nanosecond
	total := uint64(50 * 8940) // 50 segments
	dropped := false
	// Interpose on the receiver host to drop the tail segment once.
	inner := d.Receiver
	tap := netsim.HandlerFunc(func(p *netsim.Packet) {
		if !dropped && p.DataLen > 0 && p.Seq == total-uint64(p.DataLen) {
			dropped = true
			return
		}
		inner.HandlePacket(p)
	})
	// Rewire: bottleneck link delivers to the tap instead of the host.
	d2 := netsim.NewDumbbell(e, netsim.DumbbellConfig{
		Senders: 1, BottleneckBps: 10e9, AccessBps: 10e9, BondedSenderLinks: 2,
		LinkDelay: 5 * sim.Microsecond, SwitchDelay: sim.Microsecond,
	})
	_ = d
	d2.Switch.Connect(d2.Receiver.ID, netsim.NewLink(e, "tapped", 10_000_000_000, 5*sim.Microsecond, netsim.NewDropTail(1<<20, 0), tap))
	inner = d2.Receiver

	NewReceiver(e, d2.Receiver, 1, d2.Senders[0].ID, cfg, false, nil)
	s := NewSender(e, d2.Senders[0], 1, d2.Receiver.ID, total, cca.MustNew("cubic"), cfg, nil)
	s.Start()
	e.RunUntil(sim.Second)
	if !s.Done() {
		t.Fatal("transfer incomplete")
	}
	if !dropped {
		t.Fatal("tail segment was not exercised")
	}
	// Without TLP this stalls ~10 ms (MinRTO); with TLP it finishes in
	// a few ms (2·SRTT probe + recovery).
	if s.FCT() > 8*sim.Millisecond {
		t.Fatalf("FCT = %v, want < 8ms with TLP", s.FCT())
	}
}

func TestSenderDataSentCounter(t *testing.T) {
	h := newSenderHarness(t, 10_000, "reno", plainCfg())
	h.snd.Start()
	h.engine.At(50*sim.Microsecond, func() { h.ack(10_000) })
	h.engine.RunUntil(sim.Second)
	if h.snd.DataSent != 10 {
		t.Fatalf("DataSent = %d, want 10", h.snd.DataSent)
	}
	if h.snd.AcksReceived != 1 {
		t.Fatalf("AcksReceived = %d", h.snd.AcksReceived)
	}
}

func TestSenderPartialAckKeepsRecovery(t *testing.T) {
	h := newSenderHarness(t, 100_000, "reno", plainCfg())
	h.snd.Start()
	h.engine.RunUntil(10 * sim.Microsecond)
	h.engine.At(20*sim.Microsecond, func() {
		// Two holes: 0-1000 and 5000-6000.
		h.ack(0, netsim.SACKBlock{Start: 1000, End: 5000}, netsim.SACKBlock{Start: 6000, End: 10000})
	})
	h.engine.At(40*sim.Microsecond, func() {
		// First hole repaired: partial ACK up to the second hole.
		h.ack(5000)
	})
	h.engine.RunUntil(60 * sim.Microsecond)
	if !h.snd.recovery {
		t.Fatal("recovery ended before the recovery point")
	}
	// Both holes must have been retransmitted.
	seqs := map[uint64]bool{}
	for _, p := range h.out {
		if p.Retransmit {
			seqs[p.Seq] = true
		}
	}
	if !seqs[0] || !seqs[5000] {
		t.Fatalf("retransmitted %v, want holes 0 and 5000", seqs)
	}
}
