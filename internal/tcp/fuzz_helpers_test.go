package tcp

import (
	"testing"

	"greenenvy/internal/cca"
	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
)

// fuzzHarness mirrors senderHarness for fuzz targets (testing.F-friendly:
// no *testing.T helpers in construction).
type fuzzHarness struct {
	engine *sim.Engine
	host   *netsim.Host
	snd    *Sender
}

func newFuzzHarness(t *testing.T) *fuzzHarness {
	h := &fuzzHarness{engine: sim.NewEngine()}
	h.host = netsim.NewHost(0, "tx")
	h.host.SetEgress(netsim.HandlerFunc(func(*netsim.Packet) {}))
	cfg := plainCfg()
	h.snd = NewSender(h.engine, h.host, 1, 9, 120_000, cca.MustNew("reno"), cfg, nil)
	_ = t
	return h
}

func ackPacket(cum uint64) *netsim.Packet {
	return &netsim.Packet{Flow: 1, Flags: netsim.FlagACK, Ack: cum, WireSize: HeaderBytes}
}

func sackBlock(start, end uint64) netsim.SACKBlock {
	return netsim.SACKBlock{Start: start, End: end}
}
