package tcp

import "testing"

// FuzzRangeSet exercises the receiver's out-of-order range bookkeeping
// with arbitrary add/pop sequences; the invariants are the ones SACK
// generation relies on. (Seed corpus runs under plain `go test`; use
// `go test -fuzz=FuzzRangeSet ./internal/tcp` for exploration.)
func FuzzRangeSet(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Add([]byte{0, 0, 0, 255, 255, 1})
	f.Add([]byte{10, 5, 20, 15, 30, 25, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var s rangeSet
		var popLimit uint64
		for i := 0; i+1 < len(ops); i += 2 {
			start := uint64(ops[i]) * 10
			length := uint64(ops[i+1])%50 + 1
			if ops[i]%7 == 0 {
				got := s.popBelow(start)
				if got < start {
					t.Fatalf("popBelow(%d) = %d went backwards", start, got)
				}
				if got > popLimit {
					popLimit = got
				}
				continue
			}
			s.add(start, start+length)
		}
		// Invariants: sorted, disjoint, non-adjacent, positive ranges.
		for i, r := range s.ranges {
			if r.Start >= r.End {
				t.Fatalf("degenerate range %+v", r)
			}
			if i > 0 && s.ranges[i-1].End >= r.Start {
				t.Fatalf("unmerged or unsorted ranges: %v", s.ranges)
			}
		}
		// blocks() never exceeds the cap and preserves order.
		b := s.blocks(4)
		if len(b) > 4 {
			t.Fatalf("blocks returned %d", len(b))
		}
	})
}

// FuzzSenderAckStream feeds a sender arbitrary ACK/SACK sequences; the
// sender must never panic, never drive pipe negative, and never move
// sndUna backwards.
func FuzzSenderAckStream(f *testing.F) {
	f.Add([]byte{10, 0, 2, 8, 30, 1})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 255, 128, 64, 32, 16})
	f.Fuzz(func(t *testing.T, raw []byte) {
		h := newFuzzHarness(t)
		h.snd.Start()
		h.engine.RunUntil(10_000) // let the initial window go out
		for i := 0; i+1 < len(raw); i += 2 {
			cum := uint64(raw[i]) % 120 * 1000
			sackStart := uint64(raw[i+1]) % 120 * 1000
			pkt := ackPacket(cum)
			if sackStart > cum {
				pkt.SACK = append(pkt.SACK, sackBlock(sackStart, sackStart+3000))
			}
			prevUna := h.snd.sndUna
			h.host.HandlePacket(pkt)
			if h.snd.sndUna < prevUna {
				t.Fatalf("sndUna moved backwards: %d -> %d", prevUna, h.snd.sndUna)
			}
			if h.snd.pipe < 0 {
				t.Fatalf("pipe negative: %d", h.snd.pipe)
			}
			h.engine.RunFor(5_000)
		}
	})
}
