package tcp

import (
	"testing"

	"greenenvy/internal/cca"
	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
)

// TestDebugBaseline traces the constant-cwnd baseline under sustained
// overload. Run with -v; makes no assertions.
func TestDebugBaseline(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("trace only under -v")
	}
	e := sim.NewEngine()
	d := netsim.NewDumbbell(e, netsim.DefaultDumbbell(1))
	cfg := DefaultConfig()
	cfg.MTU = 6000
	cfg.TxPathCost = 1500 * sim.Nanosecond
	cfg.NICRateBps = 20_000_000_000
	cc := cca.MustNew("baseline")
	r := NewReceiver(e, d.Receiver, 1, d.Senders[0].ID, cfg, false, nil)
	s := NewSender(e, d.Senders[0], 1, d.Receiver.ID, 200<<20, cc, cfg, nil)
	for i := 1; i <= 40; i++ {
		e.At(sim.Time(i)*100*sim.Millisecond, func() {
			t.Logf("t=%v una=%dMB nxt=%dMB pipe=%.1fMB retxQ=%d retx=%d rto=%d rcvd=%dMB dup=%d acksSent=%d oooHW=%d",
				e.Now(), s.sndUna>>20, s.sndNxt>>20, float64(s.pipe)/(1<<20), len(s.retxQueue), s.Retransmits, s.Timeouts,
				r.TotalReceived>>20, r.DupSegments, r.AcksSent, r.OutOfOrderHigh)
		})
	}
	s.Start()
	e.RunUntil(4 * sim.Second)
	t.Logf("done=%v at %v", s.Done(), e.Now())
}
