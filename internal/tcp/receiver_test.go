package tcp

import (
	"testing"

	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
)

// rxHarness wires a Receiver to a host whose egress captures ACKs.
type rxHarness struct {
	engine *sim.Engine
	recv   *Receiver
	acks   []*netsim.Packet
}

func newRxHarness(t *testing.T, preciseCE bool) *rxHarness {
	t.Helper()
	h := &rxHarness{engine: sim.NewEngine()}
	host := netsim.NewHost(1, "rx")
	host.SetEgress(netsim.HandlerFunc(func(p *netsim.Packet) { h.acks = append(h.acks, p) }))
	cfg := DefaultConfig()
	cfg.RxPathCost = -1 // synchronous processing for these unit tests
	h.recv = NewReceiver(h.engine, host, 1, 0, cfg, preciseCE, nil)
	return h
}

func TestReceiverRxRingDelaysAndDrops(t *testing.T) {
	e := sim.NewEngine()
	host := netsim.NewHost(1, "rx")
	var acks []*netsim.Packet
	host.SetEgress(netsim.HandlerFunc(func(p *netsim.Packet) { acks = append(acks, p) }))
	cfg := DefaultConfig()
	cfg.RxPathCost = sim.Microsecond
	cfg.RxRingPackets = 4
	r := NewReceiver(e, host, 1, 0, cfg, false, nil)

	// Six back-to-back arrivals into a 4-deep ring: the first is admitted
	// and starts processing; when the 5th arrives the backlog is 4 (ring
	// full) so the 5th and 6th drop.
	for i := 0; i < 6; i++ {
		r.handleData(&netsim.Packet{Flow: 1, Seq: uint64(i * 1000), DataLen: 1000, WireSize: 1060, SentAt: e.Now()})
	}
	e.Run()
	if r.RxDropped != 2 {
		t.Fatalf("RxDropped = %d, want 2", r.RxDropped)
	}
	if r.SegmentsRecvd != 4 {
		t.Fatalf("processed = %d, want 4", r.SegmentsRecvd)
	}
	// Processing is serialized: in-order delivery of the 4 admitted
	// segments, last finished at 4 µs.
	if r.RcvNxt() != 4000 {
		t.Fatalf("rcvNxt = %d, want 4000", r.RcvNxt())
	}
	if e.Now() != 4*sim.Microsecond {
		t.Fatalf("last processing at %v, want 4µs", e.Now())
	}
}

// data builds an in-order data packet.
func (h *rxHarness) data(seq uint64, length int, flags netsim.Flags) *netsim.Packet {
	return &netsim.Packet{Flow: 1, Seq: seq, DataLen: length, WireSize: length + HeaderBytes, Flags: flags, SentAt: h.engine.Now()}
}

func TestReceiverDelayedAckEverySecondSegment(t *testing.T) {
	h := newRxHarness(t, false)
	h.recv.handleData(h.data(0, 1000, 0))
	if len(h.acks) != 0 {
		t.Fatal("first segment should be delack'd")
	}
	h.recv.handleData(h.data(1000, 1000, 0))
	if len(h.acks) != 1 {
		t.Fatalf("acks = %d after two segments, want 1", len(h.acks))
	}
	if h.acks[0].Ack != 2000 {
		t.Fatalf("ack = %d, want 2000", h.acks[0].Ack)
	}
}

func TestReceiverDelackTimerFires(t *testing.T) {
	h := newRxHarness(t, false)
	h.recv.handleData(h.data(0, 1000, 0))
	h.engine.Run()
	if len(h.acks) != 1 {
		t.Fatalf("delack timer did not fire: acks = %d", len(h.acks))
	}
	if h.acks[0].Ack != 1000 {
		t.Fatalf("ack = %d", h.acks[0].Ack)
	}
}

func TestReceiverImmediateDupAckOnGap(t *testing.T) {
	h := newRxHarness(t, false)
	h.recv.handleData(h.data(0, 1000, 0))
	h.recv.handleData(h.data(2000, 1000, 0)) // gap at 1000
	if len(h.acks) != 1 {
		t.Fatalf("acks = %d, want immediate dup ack", len(h.acks))
	}
	ack := h.acks[0]
	if ack.Ack != 1000 {
		t.Fatalf("dupack cum = %d, want 1000", ack.Ack)
	}
	if len(ack.SACK) != 1 || ack.SACK[0].Start != 2000 || ack.SACK[0].End != 3000 {
		t.Fatalf("SACK = %v", ack.SACK)
	}
}

func TestReceiverFillsHoleAndAdvances(t *testing.T) {
	h := newRxHarness(t, false)
	h.recv.handleData(h.data(0, 1000, 0))
	h.recv.handleData(h.data(2000, 1000, 0))
	h.recv.handleData(h.data(1000, 1000, 0)) // fills the hole
	if h.recv.RcvNxt() != 3000 {
		t.Fatalf("rcvNxt = %d, want 3000", h.recv.RcvNxt())
	}
	if h.recv.TotalReceived != 3000 {
		t.Fatalf("TotalReceived = %d", h.recv.TotalReceived)
	}
}

func TestReceiverDuplicateAckedImmediately(t *testing.T) {
	h := newRxHarness(t, false)
	h.recv.handleData(h.data(0, 1000, 0))
	h.recv.handleData(h.data(1000, 1000, 0))
	n := len(h.acks)
	h.recv.handleData(h.data(0, 1000, 0)) // spurious retransmission
	if len(h.acks) != n+1 {
		t.Fatal("duplicate not acked immediately")
	}
	if h.recv.DupSegments != 1 {
		t.Fatalf("DupSegments = %d", h.recv.DupSegments)
	}
}

func TestReceiverSACKRecencyFirst(t *testing.T) {
	h := newRxHarness(t, false)
	// Many disjoint holes; the most recently received range must lead.
	h.recv.handleData(h.data(0, 1000, 0))
	for i := 0; i < 8; i++ {
		seq := uint64(2000 + i*2000)
		h.recv.handleData(h.data(seq, 1000, 0))
	}
	last := h.acks[len(h.acks)-1]
	if len(last.SACK) != 4 {
		t.Fatalf("SACK blocks = %d, want 4", len(last.SACK))
	}
	if last.SACK[0].Start != 16000 {
		t.Fatalf("first block = %+v, want the newest range (16000)", last.SACK[0])
	}
}

func TestReceiverSACKBlocksDisjoint(t *testing.T) {
	h := newRxHarness(t, false)
	h.recv.handleData(h.data(0, 1000, 0))
	for i := 0; i < 12; i++ {
		seq := uint64(2000 + i*2000)
		h.recv.handleData(h.data(seq, 1000, 0))
	}
	for _, ack := range h.acks {
		for i, b := range ack.SACK {
			if b.Start >= b.End {
				t.Fatalf("degenerate block %+v", b)
			}
			for j, c := range ack.SACK {
				if i != j && b == c {
					t.Fatalf("duplicate blocks in one ACK: %v", ack.SACK)
				}
			}
		}
	}
}

func TestReceiverClassicECNLatch(t *testing.T) {
	h := newRxHarness(t, false)
	h.recv.handleData(h.data(0, 1000, netsim.FlagECT|netsim.FlagCE))
	h.recv.handleData(h.data(1000, 1000, netsim.FlagECT))
	// The ACK covering the CE mark must carry ECE.
	if !h.acks[0].Flags.Has(netsim.FlagECE) {
		t.Fatal("ECE missing after CE")
	}
	// Latch cleared after one echo.
	h.recv.handleData(h.data(2000, 1000, netsim.FlagECT))
	h.recv.handleData(h.data(3000, 1000, netsim.FlagECT))
	if h.acks[1].Flags.Has(netsim.FlagECE) {
		t.Fatal("ECE persisted without new CE")
	}
	if h.recv.CEMarksSeen != 1 {
		t.Fatalf("CEMarksSeen = %d", h.recv.CEMarksSeen)
	}
}

func TestReceiverPreciseECNStateChangeForcesAck(t *testing.T) {
	h := newRxHarness(t, true)
	// CE state flips on the very first marked segment: immediate ACK
	// even though delack would normally wait for a second segment.
	h.recv.handleData(h.data(0, 1000, netsim.FlagECT|netsim.FlagCE))
	if len(h.acks) != 1 {
		t.Fatalf("acks = %d, want immediate ack on CE flip", len(h.acks))
	}
	if !h.acks[0].Flags.Has(netsim.FlagECE) {
		t.Fatal("precise ECE missing")
	}
	// Flip back to unmarked: another immediate ACK without ECE.
	h.recv.handleData(h.data(1000, 1000, netsim.FlagECT))
	if len(h.acks) != 2 {
		t.Fatalf("acks = %d, want immediate ack on flip back", len(h.acks))
	}
	if h.acks[1].Flags.Has(netsim.FlagECE) {
		t.Fatal("ECE set after CE cleared (precise mode)")
	}
}

func TestReceiverEchoTimestamp(t *testing.T) {
	h := newRxHarness(t, false)
	p := h.data(0, 1000, 0)
	p.SentAt = 12345
	h.recv.handleData(p)
	h.engine.Run() // delack fires
	if h.acks[0].EchoTS != 12345 {
		t.Fatalf("EchoTS = %v", h.acks[0].EchoTS)
	}
}

func TestReceiverIgnoresPureAcks(t *testing.T) {
	h := newRxHarness(t, false)
	h.recv.handleData(&netsim.Packet{Flow: 1, Flags: netsim.FlagACK, WireSize: HeaderBytes})
	if h.recv.SegmentsRecvd != 0 || len(h.acks) != 0 {
		t.Fatal("pure ACK processed as data")
	}
}

func TestReceiverPartialOverlapKeepsNewPart(t *testing.T) {
	h := newRxHarness(t, false)
	h.recv.handleData(h.data(0, 1000, 0))
	// Segment [500, 1500): first half duplicate, second half new.
	h.recv.handleData(h.data(500, 1000, 0))
	if h.recv.RcvNxt() != 1500 {
		t.Fatalf("rcvNxt = %d, want 1500", h.recv.RcvNxt())
	}
}
