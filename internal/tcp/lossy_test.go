package tcp

import (
	"fmt"
	"testing"

	"greenenvy/internal/cca"
	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
)

// lossyDumbbell builds a single-sender dumbbell whose bottleneck output is
// filtered by drop: packets for which drop returns true vanish.
func lossyDumbbell(e *sim.Engine, drop func(p *netsim.Packet, nth int) bool) (*netsim.Dumbbell, *netsim.Host) {
	d := netsim.NewDumbbell(e, netsim.DumbbellConfig{
		Senders: 1, BottleneckBps: 10e9, AccessBps: 10e9, BondedSenderLinks: 2,
		LinkDelay: 5 * sim.Microsecond, SwitchDelay: sim.Microsecond,
	})
	count := 0
	tap := netsim.HandlerFunc(func(p *netsim.Packet) {
		if p.DataLen > 0 {
			count++
			if drop(p, count) {
				return
			}
		}
		d.Receiver.HandlePacket(p)
	})
	d.Switch.Connect(d.Receiver.ID, netsim.NewLink(e, "lossy", 10_000_000_000, 5*sim.Microsecond, netsim.NewDropTail(1<<20, 0), tap))
	return d, d.Receiver
}

// runLossy drives a transfer through the drop filter and asserts complete,
// correct delivery.
func runLossy(t *testing.T, name string, bytes uint64, drop func(p *netsim.Packet, nth int) bool) *Sender {
	t.Helper()
	e := sim.NewEngine()
	d, _ := lossyDumbbell(e, drop)
	cfg := DefaultConfig()
	cfg.TxPathCost = 1500 * sim.Nanosecond
	cfg.NICRateBps = 20_000_000_000
	cc := cca.MustNew(name)
	r := NewReceiver(e, d.Receiver, 1, d.Senders[0].ID, cfg, cc.ECNCapable(), nil)
	s := NewSender(e, d.Senders[0], 1, d.Receiver.ID, bytes, cc, cfg, nil)
	s.Start()
	e.RunUntil(300 * sim.Second)
	if !s.Done() {
		t.Fatalf("transfer incomplete (una=%d/%d retx=%d rto=%d)", s.sndUna, bytes, s.Retransmits, s.Timeouts)
	}
	if r.TotalReceived != bytes {
		t.Fatalf("delivered %d bytes, want %d", r.TotalReceived, bytes)
	}
	return s
}

func TestSurvivesPeriodicLoss(t *testing.T) {
	for _, period := range []int{7, 50, 500} {
		period := period
		t.Run(fmt.Sprintf("every-%dth", period), func(t *testing.T) {
			s := runLossy(t, "cubic", 20<<20, func(_ *netsim.Packet, nth int) bool {
				return nth%period == 0
			})
			if s.Retransmits == 0 {
				t.Fatal("no retransmissions despite forced loss")
			}
		})
	}
}

func TestSurvivesBurstLoss(t *testing.T) {
	// Drop 8 consecutive packets every 200.
	runLossy(t, "cubic", 20<<20, func(_ *netsim.Packet, nth int) bool {
		return nth%200 < 8
	})
}

func TestSurvivesRetransmissionLoss(t *testing.T) {
	// Drop every 100th packet AND the first retransmission of anything —
	// exercises the lost-retransmission re-detection path.
	dropped := map[uint64]int{}
	runLossy(t, "cubic", 10<<20, func(p *netsim.Packet, nth int) bool {
		if p.Retransmit && dropped[p.Seq] == 1 {
			dropped[p.Seq]++
			return true
		}
		if nth%100 == 0 {
			dropped[p.Seq]++
			return true
		}
		return false
	})
}

func TestSurvivesFirstWindowLoss(t *testing.T) {
	// The entire initial window is lost before any RTT estimate exists.
	// Either the tail loss probe (5 ms pre-estimate PTO) or the initial
	// RTO must kick recovery; all ten segments get retransmitted.
	s := runLossy(t, "reno", 1<<20, func(_ *netsim.Packet, nth int) bool {
		return nth <= 10
	})
	if s.Retransmits < 10 {
		t.Fatalf("only %d retransmissions; the whole initial window was lost", s.Retransmits)
	}
	// Recovery must have been probe-or-timeout driven, not stuck.
	if s.FCT() > 100*sim.Millisecond {
		t.Fatalf("FCT = %v; first-window recovery stalled", s.FCT())
	}
}

func TestSurvivesHighRandomLossAllCCAs(t *testing.T) {
	// 5% deterministic pseudo-random loss for every algorithm. Small
	// transfers keep the slow (post-loss) algorithms cheap.
	for _, name := range cca.PaperOrder() {
		name := name
		t.Run(name, func(t *testing.T) {
			rng := sim.NewRNG(99)
			runLossy(t, name, 4<<20, func(_ *netsim.Packet, nth int) bool {
				return rng.Float64() < 0.05
			})
		})
	}
}

func TestLossyGoodputDegradesGracefully(t *testing.T) {
	clean := runLossy(t, "cubic", 20<<20, func(*netsim.Packet, int) bool { return false })
	lossy := runLossy(t, "cubic", 20<<20, func(_ *netsim.Packet, nth int) bool { return nth%100 == 0 })
	if lossy.FCT() <= clean.FCT() {
		t.Fatal("loss should cost completion time")
	}
	if float64(lossy.FCT()) > 20*float64(clean.FCT()) {
		t.Fatalf("1%% loss cost %vx FCT; recovery is pathological", float64(lossy.FCT())/float64(clean.FCT()))
	}
}
