package tcp

import (
	"testing"

	"greenenvy/internal/cca"
	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
)

// runTransfer drives one bulk transfer over a fresh dumbbell and returns
// the sender and receiver for inspection.
func runTransfer(t *testing.T, ccName string, bytes uint64, cfg Config, mutate func(*netsim.DumbbellConfig)) (*Sender, *Receiver) {
	t.Helper()
	e := sim.NewEngine()
	dcfg := netsim.DefaultDumbbell(1)
	if cfg.MTU > 0 {
		// Mark at DCTCP K for ECN tests only when asked via mutate.
	}
	if mutate != nil {
		mutate(&dcfg)
	}
	d := netsim.NewDumbbell(e, dcfg)
	cc := cca.MustNew(ccName)
	if cfg.TxPathCost == 0 {
		cfg.TxPathCost = 1500 * sim.Nanosecond
	}
	recv := NewReceiver(e, d.Receiver, 1, d.Senders[0].ID, cfg, cc.ECNCapable(), nil)
	snd := NewSender(e, d.Senders[0], 1, d.Receiver.ID, bytes, cc, cfg, nil)
	snd.Start()
	e.RunUntil(120 * sim.Second)
	if !snd.Done() {
		t.Fatalf("%s transfer of %d bytes did not complete (una=%d/%d retx=%d rto=%d pipe=%d)",
			ccName, bytes, snd.sndUna, bytes, snd.Retransmits, snd.Timeouts, snd.pipe)
	}
	if recv.TotalReceived != bytes {
		t.Fatalf("receiver got %d bytes, want %d", recv.TotalReceived, bytes)
	}
	return snd, recv
}

func TestBulkTransferCompletesAllCCAs(t *testing.T) {
	for _, name := range cca.PaperOrder() {
		name := name
		t.Run(name, func(t *testing.T) {
			snd, _ := runTransfer(t, name, 50<<20, DefaultConfig(), nil)
			if snd.FCT() <= 0 {
				t.Fatalf("non-positive FCT %v", snd.FCT())
			}
		})
	}
}

func TestGoodputNearLineRateMTU9000(t *testing.T) {
	// 100 MB at 10 Gb/s with MSS 8940 should finish near the wire-rate
	// bound: 100e6*9000/8940 bytes on the wire ≈ 80.5 ms + slow start.
	snd, _ := runTransfer(t, "cubic", 100<<20, DefaultConfig(), nil)
	goodput := float64(100<<20) * 8 / snd.FCT().Seconds()
	if goodput < 8.5e9 {
		t.Fatalf("cubic goodput = %.2f Gb/s, want > 8.5", goodput/1e9)
	}
}

func TestMTU1500IsCPULimited(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MTU = 1500
	snd, _ := runTransfer(t, "cubic", 100<<20, cfg, nil)
	goodput := float64(100<<20) * 8 / snd.FCT().Seconds()
	// TxPathCost 1.5 µs caps wire rate at ~8 Gb/s; goodput below that.
	if goodput > 8.0e9 {
		t.Fatalf("MTU 1500 goodput = %.2f Gb/s, want CPU-limited < 8", goodput/1e9)
	}
	if goodput < 4.0e9 {
		t.Fatalf("MTU 1500 goodput = %.2f Gb/s, unexpectedly slow", goodput/1e9)
	}
}

func TestRateLimitedSender(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RateLimitBps = 2_000_000_000
	snd, _ := runTransfer(t, "cubic", 50<<20, cfg, nil)
	goodput := float64(50<<20) * 8 / snd.FCT().Seconds()
	if goodput > 2.1e9 {
		t.Fatalf("rate-limited goodput = %.2f Gb/s, want <= 2", goodput/1e9)
	}
	if goodput < 1.7e9 {
		t.Fatalf("rate-limited goodput = %.2f Gb/s, want ~2", goodput/1e9)
	}
}

func TestLossRecoveryWithTinyBuffer(t *testing.T) {
	// An 64 KB bottleneck buffer forces drops; the transfer must still
	// complete via SACK recovery, with retransmissions recorded.
	snd, _ := runTransfer(t, "cubic", 50<<20, DefaultConfig(), func(d *netsim.DumbbellConfig) {
		d.BufferBytes = 64 << 10
	})
	if snd.Retransmits == 0 {
		t.Fatal("expected retransmissions with a tiny buffer")
	}
}

func TestBaselineRetransmitsHeavily(t *testing.T) {
	// The constant-cwnd baseline overruns the 1 MiB buffer and must see
	// far more retransmissions than CUBIC (paper Fig 8).
	base, _ := runTransfer(t, "baseline", 50<<20, DefaultConfig(), nil)
	cub, _ := runTransfer(t, "cubic", 50<<20, DefaultConfig(), nil)
	if base.Retransmits <= cub.Retransmits*10 {
		t.Fatalf("baseline retx = %d, cubic retx = %d: baseline should dominate", base.Retransmits, cub.Retransmits)
	}
}

func TestDCTCPKeepsQueueShortNoLoss(t *testing.T) {
	var bottleneck *netsim.Link
	snd, _ := runTransfer(t, "dctcp", 50<<20, DefaultConfig(), func(d *netsim.DumbbellConfig) {
		d.MarkBytes = 90 << 10 // DCTCP K
	})
	_ = bottleneck
	if snd.Retransmits != 0 {
		t.Fatalf("DCTCP with ECN marking should not lose packets, got %d retx", snd.Retransmits)
	}
}

func TestVegasNoLossCleanPath(t *testing.T) {
	snd, _ := runTransfer(t, "vegas", 50<<20, DefaultConfig(), nil)
	if snd.Retransmits != 0 {
		t.Fatalf("vegas on a clean path should not retransmit, got %d", snd.Retransmits)
	}
}

func TestBBR2SlowerThanBBR(t *testing.T) {
	// The alpha's conservatism must cost throughput (paper §4.3: 40%
	// energy difference driven by longer completion).
	b1, _ := runTransfer(t, "bbr", 100<<20, DefaultConfig(), nil)
	b2, _ := runTransfer(t, "bbr2", 100<<20, DefaultConfig(), nil)
	if b2.FCT() <= b1.FCT() {
		t.Fatalf("bbr2 FCT %v should exceed bbr FCT %v", b2.FCT(), b1.FCT())
	}
}

func TestShortTransferSingleSegment(t *testing.T) {
	snd, recv := runTransfer(t, "reno", 100, DefaultConfig(), nil)
	if snd.DataSent != 1 {
		t.Fatalf("sent %d packets for 100 bytes, want 1", snd.DataSent)
	}
	if recv.SegmentsRecvd != 1 {
		t.Fatalf("received %d segments, want 1", recv.SegmentsRecvd)
	}
}

func TestTransferNotMultipleOfMSS(t *testing.T) {
	runTransfer(t, "reno", 8940*3+17, DefaultConfig(), nil)
}

func TestSenderValidation(t *testing.T) {
	e := sim.NewEngine()
	d := netsim.NewDumbbell(e, netsim.DefaultDumbbell(1))
	cfg := DefaultConfig()
	cfg.MTU = 50 // smaller than headers
	func() {
		defer func() {
			if recover() == nil {
				t.Error("tiny MTU did not panic")
			}
		}()
		NewSender(e, d.Senders[0], 1, d.Receiver.ID, 1000, cca.MustNew("reno"), cfg, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero-byte transfer did not panic")
			}
		}()
		NewSender(e, d.Senders[0], 2, d.Receiver.ID, 0, cca.MustNew("reno"), DefaultConfig(), nil)
	}()
}

func TestDoubleStartPanics(t *testing.T) {
	e := sim.NewEngine()
	d := netsim.NewDumbbell(e, netsim.DefaultDumbbell(1))
	s := NewSender(e, d.Senders[0], 1, d.Receiver.ID, 1000, cca.MustNew("reno"), DefaultConfig(), nil)
	NewReceiver(e, d.Receiver, 1, d.Senders[0].ID, DefaultConfig(), false, nil)
	s.Start()
	defer func() {
		if recover() == nil {
			t.Error("double Start did not panic")
		}
	}()
	s.Start()
}

func TestTwoCompetingFlowsShareFairly(t *testing.T) {
	// Two CUBIC flows from separate hosts over a shared drop-tail
	// bottleneck: both finish, and total goodput is near line rate.
	e := sim.NewEngine()
	d := netsim.NewDumbbell(e, netsim.DefaultDumbbell(2))
	cfg := DefaultConfig()
	cfg.TxPathCost = 1500 * sim.Nanosecond
	const bytes = 50 << 20
	var snds []*Sender
	for i := 0; i < 2; i++ {
		flow := netsim.FlowID(i + 1)
		cc := cca.MustNew("cubic")
		NewReceiver(e, d.Receiver, flow, d.Senders[i].ID, cfg, false, nil)
		s := NewSender(e, d.Senders[i], flow, d.Receiver.ID, bytes, cc, cfg, nil)
		snds = append(snds, s)
		s.Start()
	}
	e.RunUntil(60 * sim.Second)
	var last sim.Time
	for i, s := range snds {
		if !s.Done() {
			t.Fatalf("flow %d incomplete", i)
		}
		if s.CompletedAt > last {
			last = s.CompletedAt
		}
	}
	total := float64(2*bytes) * 8 / last.Seconds()
	if total < 7e9 {
		t.Fatalf("aggregate goodput %.2f Gb/s, want > 7", total/1e9)
	}
}

func TestPipeNeverNegative(t *testing.T) {
	e := sim.NewEngine()
	dcfg := netsim.DefaultDumbbell(1)
	dcfg.BufferBytes = 32 << 10 // heavy loss
	d := netsim.NewDumbbell(e, dcfg)
	cfg := DefaultConfig()
	cfg.TxPathCost = 1500 * sim.Nanosecond
	cc := cca.MustNew("cubic")
	NewReceiver(e, d.Receiver, 1, d.Senders[0].ID, cfg, false, nil)
	s := NewSender(e, d.Senders[0], 1, d.Receiver.ID, 20<<20, cc, cfg, nil)
	// Check the invariant as the run progresses.
	for i := 1; i <= 100; i++ {
		e.At(sim.Time(i)*10*sim.Millisecond, func() {
			if s.pipe < 0 {
				t.Errorf("pipe went negative: %d", s.pipe)
			}
		})
	}
	s.Start()
	e.RunUntil(60 * sim.Second)
	if !s.Done() {
		t.Fatal("transfer incomplete under heavy loss")
	}
}
