package tcp

import (
	"fmt"

	"greenenvy/internal/cca"
	"greenenvy/internal/energy"
	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
)

// retxWatchEntry remembers when a segment was retransmitted.
type retxWatchEntry struct {
	seq uint64
	at  sim.Time
}

// segment tracks one transmitted data segment in the sender's window.
type segment struct {
	seq    uint64
	length int
	sacked bool
	lost   bool
	// counted reports whether this segment currently contributes to the
	// pipe (in-flight) estimate.
	counted bool
	// jumpSeq accelerates SACK processing: for a sacked segment it points
	// at (at least) the end of the known-sacked run it begins, so
	// re-reported blocks skip over already-processed data.
	jumpSeq uint64
	retx    int
	sentAt  sim.Time
	// Delivery-rate estimator snapshot at (re)transmit time.
	deliveredAtSend     uint64
	deliveredTimeAtSend sim.Time
	appLimited          bool
}

// Sender is a TCP bulk-data sender transferring a fixed number of bytes to
// a Receiver across the simulated network.
type Sender struct {
	engine  *sim.Engine
	host    *netsim.Host
	flow    netsim.FlowID
	dst     netsim.NodeID
	cfg     Config
	cc      cca.CongestionControl
	account *energy.Account

	mss        int
	totalBytes uint64
	sndUna     uint64
	sndNxt     uint64
	wantsINT   bool

	// Window segments between sndUna and sndNxt. segs[0] starts at
	// segBase; all segments are mss bytes except possibly the last.
	// segs is always a sub-slice of segStore's allocation: popping the
	// front advances it, an emptied window rewinds it to segStore[:0], and
	// sendOne compacts live segments back to the front before an append
	// would otherwise reallocate — so one backing array serves the whole
	// transfer, and pooled reuse (Reset) carries it to the next flow.
	segs     []segment
	segStore []segment
	segBase  uint64
	pipe     int

	// retxQueue holds sequence numbers of lost segments to retransmit,
	// in order.
	retxQueue []uint64
	// retxWatch tracks outstanding retransmissions so that a lost
	// retransmission is itself re-detected (RACK-style time threshold)
	// instead of stalling until the RTO.
	retxWatch []retxWatchEntry
	// lossScan is the index below which loss inference has already run.
	lossScan int
	// highSacked is the highest sequence selectively acknowledged.
	highSacked uint64

	rtt           rttEstimator
	delivered     uint64
	deliveredTime sim.Time

	recovery      bool
	recoveryPoint uint64
	// fastRetxPending marks that the first retransmission of the current
	// recovery episode has not yet gone out; it bypasses the pipe limit,
	// like a real stack's immediate fast retransmit.
	fastRetxPending bool

	// The three sender timers cancel-and-rearm on nearly every ACK, so
	// they are rearmable Timers (one pinned event each, pre-bound
	// callbacks) rather than fresh Event+closure pairs per arm.
	rtoTimer   *sim.Timer
	rtoBackoff uint
	tlpTimer   *sim.Timer
	tlpArmedAt uint64 // delivered count when the probe was armed

	sendTimer  *sim.Timer
	nextSendAt sim.Time

	// ackHandler is the host-attachment handler, bound once at
	// construction so pooled reuse does not re-create the method value.
	ackHandler netsim.Handler

	started bool
	done    bool

	// Counters and results.
	Retransmits  uint64
	Timeouts     uint64
	DataSent     uint64 // data packets sent, including retransmits
	AcksReceived uint64
	StartedAt    sim.Time
	CompletedAt  sim.Time
	// OnComplete fires once when every byte has been cumulatively
	// acknowledged.
	OnComplete func()
}

// NewSender creates a sender for a totalBytes transfer from host to the
// receiver node dst over the given flow ID. The congestion controller is
// owned by the sender; the energy account may be nil.
func NewSender(engine *sim.Engine, host *netsim.Host, flow netsim.FlowID, dst netsim.NodeID, totalBytes uint64, cc cca.CongestionControl, cfg Config, account *energy.Account) *Sender {
	s := &Sender{engine: engine}
	s.rtoTimer = engine.NewTimer(s.onRTO)
	s.tlpTimer = engine.NewTimer(s.onTLP)
	s.sendTimer = engine.NewTimer(s.trySend)
	s.ackHandler = netsim.HandlerFunc(s.handleAck)
	s.Reset(host, flow, dst, totalBytes, cc, cfg, account)
	return s
}

// Reset rebinds a sender to a new transfer, reusing its timers, its ACK
// handler, and the segment/retransmission backing arrays of previous
// flows — the pooled-churn path's allocation-free flow setup. The previous
// transfer must have completed (or never started); OnComplete is left
// untouched so a pooled client keeps its one bound callback.
//
//greenvet:hotpath
func (s *Sender) Reset(host *netsim.Host, flow netsim.FlowID, dst netsim.NodeID, totalBytes uint64, cc cca.CongestionControl, cfg Config, account *energy.Account) {
	if cfg.MTU <= HeaderBytes {
		panic(fmt.Sprintf("tcp: MTU %d leaves no room for payload", cfg.MTU))
	}
	if totalBytes == 0 {
		panic("tcp: zero-byte transfer")
	}
	if s.started && !s.done {
		panic("tcp: resetting an active sender")
	}
	s.rtoTimer.Stop()
	s.tlpTimer.Stop()
	s.sendTimer.Stop()

	s.host = host
	s.flow = flow
	s.dst = dst
	s.cfg = cfg
	s.cc = cc
	s.account = account
	s.mss = cfg.MSS()
	s.totalBytes = totalBytes
	s.wantsINT = false
	if ic, ok := cc.(cca.INTConsumer); ok && ic.NeedsINT() {
		s.wantsINT = true
	}

	s.sndUna = 0
	s.sndNxt = 0
	s.segs = s.segStore[:0]
	s.segBase = 0
	s.pipe = 0
	s.retxQueue = s.retxQueue[:0]
	s.retxWatch = s.retxWatch[:0]
	s.lossScan = 0
	s.highSacked = 0
	s.rtt = rttEstimator{}
	s.delivered = 0
	s.deliveredTime = 0
	s.recovery = false
	s.recoveryPoint = 0
	s.fastRetxPending = false
	s.rtoBackoff = 0
	s.tlpArmedAt = 0
	s.nextSendAt = 0
	s.started = false
	s.done = false

	s.Retransmits = 0
	s.Timeouts = 0
	s.DataSent = 0
	s.AcksReceived = 0
	s.StartedAt = 0
	s.CompletedAt = 0

	host.Attach(flow, s.ackHandler)
}

// Start begins the transfer at the current simulated time.
func (s *Sender) Start() {
	if s.started {
		panic("tcp: sender started twice")
	}
	s.started = true
	s.StartedAt = s.engine.Now()
	s.deliveredTime = s.engine.Now()
	s.cc.Init(s)
	s.trySend()
	s.armTLP()
}

// Finish trims the transfer to what has already been sent (the iperf3 -t
// time limit): no new data enters the pipe after the call, and the flow
// completes once everything in flight is acknowledged — immediately, if it
// already is. Retransmissions of in-flight data still happen, so the
// truncated transfer is delivered reliably. A no-op on a finished flow, and
// on one whose remaining bytes are already below what's been sent.
func (s *Sender) Finish() {
	if s.done || !s.started {
		return
	}
	if s.sndNxt >= s.totalBytes {
		return // the tail is already in flight; normal completion is imminent
	}
	s.totalBytes = s.sndNxt
	if s.sndUna >= s.totalBytes {
		s.complete(s.engine.Now())
	}
}

// Done reports whether the transfer completed.
func (s *Sender) Done() bool { return s.done }

// FCT returns the flow completion time, valid once Done.
func (s *Sender) FCT() sim.Duration { return s.CompletedAt - s.StartedAt }

// Flow returns the sender's flow ID.
func (s *Sender) Flow() netsim.FlowID { return s.flow }

// CC exposes the congestion controller (for traces and tests).
func (s *Sender) CC() cca.CongestionControl { return s.cc }

// --- cca.Conn interface ---

// Now implements cca.Conn.
func (s *Sender) Now() sim.Time { return s.engine.Now() }

// MSS implements cca.Conn.
func (s *Sender) MSS() int { return s.mss }

// SRTT implements cca.Conn.
func (s *Sender) SRTT() sim.Duration { return s.rtt.srtt }

// MinRTT implements cca.Conn.
func (s *Sender) MinRTT() sim.Duration { return s.rtt.minRTT }

// BytesInFlight implements cca.Conn.
func (s *Sender) BytesInFlight() int { return s.pipe }

// --- segment bookkeeping ---

// segIndex maps a sequence number to its index in segs. Sequence numbers
// must lie on segment boundaries (all segments are mss bytes except the
// final short one, which is still mss-aligned at its start).
func (s *Sender) segIndex(seq uint64) int {
	return int((seq - s.segBase) / uint64(s.mss))
}

func (s *Sender) seg(seq uint64) *segment {
	return &s.segs[s.segIndex(seq)]
}

// --- receive path ---

//greenvet:hotpath
func (s *Sender) handleAck(p *netsim.Packet) {
	if s.done || !p.Flags.Has(netsim.FlagACK) {
		return
	}
	s.AcksReceived++
	s.account.ReceivedAck()
	now := s.engine.Now()

	prevDelivered := s.delivered
	var newestAcked *segment

	// Cumulative acknowledgment.
	if p.Ack > s.sndUna {
		for len(s.segs) > 0 {
			sg := &s.segs[0]
			end := sg.seq + uint64(sg.length)
			if end > p.Ack {
				break
			}
			if sg.counted {
				s.pipe -= sg.length
				sg.counted = false
			}
			if !sg.sacked {
				s.delivered += uint64(sg.length)
				s.deliveredTime = now
				if sg.retx == 0 {
					s.rtt.sample(now - sg.sentAt)
				}
			}
			newestAcked = s.snapshotOf(sg)
			s.segBase = end
			s.segs = s.segs[1:]
			if s.lossScan > 0 {
				s.lossScan--
			}
		}
		s.sndUna = p.Ack
		s.rtoBackoff = 0
		s.armRTO() // restart on forward progress (RFC 6298)
		if len(s.segs) == 0 {
			// Rewind onto the backing array's start so the next burst (or
			// the next pooled flow) reuses it instead of reallocating.
			s.segs = s.segStore[:0]
		}
	}

	// Selective acknowledgments.
	for _, blk := range p.SACK {
		s.markSacked(blk.Start, blk.End, now, &newestAcked)
	}

	// Loss inference: data SACKed ReorderSegs segments above an unsacked
	// segment implies that segment is lost.
	s.inferLoss()
	s.expireRetransmissions(now)

	// Build the congestion-control event.
	info := cca.AckInfo{
		AckedBytes: int(s.delivered - prevDelivered),
		ECE:        p.Flags.Has(netsim.FlagECE),
		Delivered:  s.delivered,
		InRecovery: s.recovery,
		INT:        p.INT,
	}
	if newestAcked != nil {
		interval := now - newestAcked.deliveredTimeAtSend
		if interval > 0 {
			info.DeliveryRate = float64(s.delivered-newestAcked.deliveredAtSend) / interval.Seconds()
		}
		info.AppLimited = newestAcked.appLimited
		if newestAcked.retx == 0 {
			info.RTT = now - newestAcked.sentAt
		}
	}
	if info.RTT == 0 {
		info.RTT = s.rtt.srtt
	}

	if info.AckedBytes > 0 {
		s.cc.OnAck(s, info)
	}

	// Recovery exit.
	if s.recovery && s.sndUna >= s.recoveryPoint {
		s.recovery = false
	}

	// Completion.
	if s.sndUna >= s.totalBytes {
		s.complete(now)
		return
	}

	s.trySend()
	s.armTLP()
}

// snapshotOf returns a stable copy of a segment for rate sampling (the
// underlying slice entry may be popped).
func (s *Sender) snapshotOf(sg *segment) *segment {
	cp := *sg
	return &cp
}

func (s *Sender) markSacked(start, end uint64, now sim.Time, newest **segment) {
	if start < s.segBase {
		start = s.segBase
	}
	if start >= end {
		return
	}
	firstIdx := -1
	for seq := start; seq < end && seq < s.sndNxt; {
		idx := s.segIndex(seq)
		if idx < 0 || idx >= len(s.segs) {
			break
		}
		sg := &s.segs[idx]
		if firstIdx == -1 {
			firstIdx = idx
		}
		if sg.sacked {
			// Skip the known-sacked run.
			next := sg.seq + uint64(sg.length)
			if sg.jumpSeq > next {
				next = sg.jumpSeq
			}
			seq = next
			continue
		}
		sg.sacked = true
		sg.jumpSeq = sg.seq + uint64(sg.length)
		if sg.counted {
			s.pipe -= sg.length
			sg.counted = false
		}
		s.delivered += uint64(sg.length)
		s.deliveredTime = now
		if sg.seq+uint64(sg.length) > s.highSacked {
			s.highSacked = sg.seq + uint64(sg.length)
		}
		*newest = s.snapshotOf(sg)
		seq = sg.jumpSeq
	}
	// Path-compress: the block's first segment points at the furthest
	// sacked position we reached, so re-reports of this block are O(1).
	if firstIdx >= 0 && firstIdx < len(s.segs) && s.segs[firstIdx].sacked {
		limit := end
		if limit > s.sndNxt {
			limit = s.sndNxt
		}
		if limit > s.segs[firstIdx].jumpSeq {
			s.segs[firstIdx].jumpSeq = limit
		}
	}
}

// inferLoss marks unsacked segments well below the SACK frontier as lost
// and queues them for retransmission.
func (s *Sender) inferLoss() {
	if s.highSacked <= s.segBase {
		return
	}
	threshold := uint64(s.cfg.ReorderSegs * s.mss)
	if s.highSacked < s.segBase+threshold {
		return
	}
	limit := s.highSacked - threshold
	for ; s.lossScan < len(s.segs); s.lossScan++ {
		sg := &s.segs[s.lossScan]
		if sg.seq >= limit {
			break
		}
		if sg.sacked || sg.lost {
			continue
		}
		sg.lost = true
		if sg.counted {
			s.pipe -= sg.length
			sg.counted = false
		}
		s.retxQueue = append(s.retxQueue, sg.seq) //greenvet:allow hotpathalloc retransmission queue fills only during loss episodes
		s.noteCongestion(sg.seq)
	}
}

// noteCongestion reacts to a newly detected loss. Losing data sent after
// the current recovery point is a fresh congestion event and triggers
// another window reduction (RFC 6582's recovery-point rule).
func (s *Sender) noteCongestion(seq uint64) {
	if s.recovery && seq < s.recoveryPoint {
		return
	}
	s.recovery = true
	s.recoveryPoint = s.sndNxt
	s.fastRetxPending = true
	s.cc.OnLoss(s)
}

// expireRetransmissions re-marks as lost any retransmission that has been
// outstanding for well over an RTT without being SACKed — the
// retransmission itself was dropped. Without this, a lost retransmission
// stalls the connection until the RTO.
func (s *Sender) expireRetransmissions(now sim.Time) {
	reo := s.rtt.srtt + s.rtt.srtt/2
	if reo < 100*sim.Microsecond {
		reo = 100 * sim.Microsecond
	}
	for len(s.retxWatch) > 0 && now-s.retxWatch[0].at > reo {
		w := s.retxWatch[0]
		s.retxWatch = s.retxWatch[1:]
		if w.seq < s.segBase {
			continue // already cumulatively acked
		}
		sg := s.seg(w.seq)
		if sg.sacked || sg.lost || sg.retx == 0 {
			continue
		}
		if now-sg.sentAt <= reo {
			continue // retransmitted again more recently
		}
		sg.lost = true
		if sg.counted {
			s.pipe -= sg.length
			sg.counted = false
		}
		s.retxQueue = append(s.retxQueue, sg.seq) //greenvet:allow hotpathalloc retransmission queue fills only during loss episodes
		s.noteCongestion(sg.seq)
	}
}

// --- transmit path ---

//greenvet:hotpath
func (s *Sender) trySend() {
	if s.done {
		return
	}
	now := s.engine.Now()
	for {
		if s.nextSendAt > now {
			s.armSendTimer()
			return
		}
		if !s.sendOne(now) {
			return
		}
	}
}

// sendOne transmits at most one segment (retransmission first). It returns
// false when nothing can be sent.
func (s *Sender) sendOne(now sim.Time) bool {
	cwnd := int(s.cc.CWnd())

	// Retransmissions take priority and obey the pipe limit.
	for len(s.retxQueue) > 0 {
		seq := s.retxQueue[0]
		if seq < s.segBase { // already cumulatively acked
			s.retxQueue = s.retxQueue[1:]
			continue
		}
		sg := s.seg(seq)
		if sg.sacked || !sg.lost {
			s.retxQueue = s.retxQueue[1:]
			continue
		}
		if s.pipe+sg.length > cwnd && !s.fastRetxPending {
			return false
		}
		s.fastRetxPending = false
		s.retxQueue = s.retxQueue[1:]
		sg.lost = false
		sg.retx++
		s.transmit(sg, now, true)
		return true
	}

	// New data.
	if s.sndNxt >= s.totalBytes {
		return false
	}
	length := s.mss
	if remaining := s.totalBytes - s.sndNxt; remaining < uint64(length) {
		length = int(remaining)
	}
	if s.pipe+length > cwnd {
		return false
	}
	if len(s.segs) == 0 {
		s.segBase = s.sndNxt
		s.lossScan = 0
	}
	if len(s.segs) == cap(s.segs) && cap(s.segs) < cap(s.segStore) {
		// The window has slid into the tail of the backing array; compact
		// the live segments back to its front (copy handles the overlap)
		// instead of letting append reallocate. Indices (lossScan) and
		// seq↔index mapping are offset-relative, so they survive the move.
		n := copy(s.segStore[:cap(s.segStore)], s.segs)
		s.segs = s.segStore[:n]
	}
	s.segs = append(s.segs, segment{seq: s.sndNxt, length: length}) //greenvet:allow hotpathalloc segment table growth is amortized by append doubling over the transfer; steady-state churn reuses segStore
	if cap(s.segs) > cap(s.segStore) {
		// append reallocated: adopt the larger array as the new backing.
		s.segStore = s.segs[:0]
	}
	sg := &s.segs[len(s.segs)-1]
	s.sndNxt += uint64(length)
	s.transmit(sg, now, false)
	return true
}

// transmit puts one segment on the wire and advances the send clock.
func (s *Sender) transmit(sg *segment, now sim.Time, retx bool) {
	sg.sentAt = now
	sg.counted = true
	sg.deliveredAtSend = s.delivered
	sg.deliveredTimeAtSend = s.deliveredTime
	sg.appLimited = s.cfg.RateLimitBps > 0
	s.pipe += sg.length

	wire := sg.length + HeaderBytes
	//greenvet:allow hotpathalloc one Packet per segment by design: its lifetime spans links and queues, so pooling belongs to a dedicated packet-pool change
	p := &netsim.Packet{
		Flow:       s.flow,
		Dst:        s.dst,
		Seq:        sg.seq,
		DataLen:    sg.length,
		WireSize:   wire,
		SentAt:     now,
		Retransmit: retx,
	}
	if s.cc.ECNCapable() {
		p.Flags |= netsim.FlagECT
	}
	if s.wantsINT {
		p.Flags |= netsim.FlagINT
	}
	s.DataSent++
	if retx {
		s.Retransmits++
		s.retxWatch = append(s.retxWatch, retxWatchEntry{seq: sg.seq, at: now}) //greenvet:allow hotpathalloc watch entries accrue only on retransmissions
	}
	s.account.SentData(retx, int(s.sndNxt-s.sndUna))
	s.host.Send(p)
	if !s.rtoTimer.Armed() {
		s.armRTO()
	}

	// Serialized transmit-path cost, NIC backpressure, and pacing
	// determine the earliest next transmission.
	gap := s.cfg.TxPathCost
	if s.cfg.NICRateBps > 0 {
		ng := sim.Duration(int64(wire*8) * int64(sim.Second) / s.cfg.NICRateBps)
		if ng > gap {
			gap = ng
		}
	}
	if rate := s.cc.PacingRate(); rate > 0 {
		pg := sim.Duration(float64(wire*8) / rate * float64(sim.Second))
		if pg > gap {
			gap = pg
		}
	}
	if s.cfg.RateLimitBps > 0 {
		rg := sim.Duration(int64(wire*8) * int64(sim.Second) / s.cfg.RateLimitBps)
		if rg > gap {
			gap = rg
		}
	}
	s.nextSendAt = now + gap
}

func (s *Sender) armSendTimer() {
	if s.sendTimer.Armed() {
		return
	}
	s.sendTimer.ResetAt(s.nextSendAt)
}

// --- timers ---

// armTLP schedules a tail loss probe (RFC 8985 §7, simplified): when the
// flow is in a "tail" situation — no new data left, or too little in
// flight to generate three duplicate ACKs — a dropped segment would
// otherwise stall until the (10 ms floor) RTO. The probe retransmits the
// highest outstanding segment after ~2·SRTT, which elicits the SACK
// feedback normal recovery needs.
func (s *Sender) armTLP() {
	if s.done || s.pipe == 0 || len(s.retxQueue) > 0 {
		s.tlpTimer.Stop()
		return
	}
	if s.sndNxt < s.totalBytes && s.pipe >= 4*s.mss {
		s.tlpTimer.Stop()
		return // enough in flight for dupACK-based detection
	}
	pto := 2 * s.rtt.srtt
	if pto < sim.Millisecond {
		pto = sim.Millisecond
	}
	if s.rtt.srtt == 0 {
		pto = 5 * sim.Millisecond
	}
	s.tlpArmedAt = s.delivered
	s.tlpTimer.Reset(pto)
}

//greenvet:hotpath
func (s *Sender) onTLP() {
	if s.done || s.pipe == 0 || s.delivered != s.tlpArmedAt {
		return // progress happened; no probe needed
	}
	// Probe with the highest outstanding unsacked segment.
	for i := len(s.segs) - 1; i >= 0; i-- {
		sg := &s.segs[i]
		if sg.sacked || sg.lost {
			continue
		}
		if sg.counted {
			s.pipe -= sg.length
			sg.counted = false
		}
		sg.retx++
		s.transmit(sg, s.engine.Now(), true)
		break
	}
}

func (s *Sender) armRTO() {
	if s.pipe == 0 && len(s.retxQueue) == 0 && s.sndUna >= s.totalBytes {
		s.rtoTimer.Stop()
		return
	}
	// Clamp to the floor first, then apply exponential backoff, so each
	// backoff step doubles the previous effective timeout.
	d := s.rtt.rto()
	if d < s.cfg.MinRTO {
		d = s.cfg.MinRTO
	}
	d <<= s.rtoBackoff
	if d > s.cfg.MaxRTO {
		d = s.cfg.MaxRTO
	}
	s.rtoTimer.Reset(d)
}

//greenvet:hotpath
func (s *Sender) onRTO() {
	if s.done {
		return
	}
	s.Timeouts++
	if s.rtoBackoff < 16 {
		s.rtoBackoff++
	}
	// Everything unsacked and outstanding is presumed lost.
	s.retxQueue = s.retxQueue[:0]
	s.lossScan = 0
	for i := range s.segs {
		sg := &s.segs[i]
		if sg.sacked {
			continue
		}
		sg.lost = true
		if sg.counted {
			s.pipe -= sg.length
			sg.counted = false
		}
		s.retxQueue = append(s.retxQueue, sg.seq) //greenvet:allow hotpathalloc retransmission queue fills only during loss episodes
	}
	s.recovery = true
	s.recoveryPoint = s.sndNxt
	s.cc.OnRTO(s)
	s.nextSendAt = 0 // timeout overrides pacing
	s.armRTO()
	s.trySend()
}

func (s *Sender) complete(now sim.Time) {
	s.done = true
	s.CompletedAt = now
	s.rtoTimer.Stop()
	s.sendTimer.Stop()
	s.tlpTimer.Stop()
	s.host.Detach(s.flow)
	if s.OnComplete != nil {
		s.OnComplete()
	}
}
