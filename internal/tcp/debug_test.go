package tcp

import (
	"testing"

	"greenenvy/internal/cca"
	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
)

// TestDebugTrace is a development aid: run with -run TestDebugTrace -v to
// dump the sender's evolution. It makes no assertions.
func TestDebugTrace(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("trace only under -v")
	}
	e := sim.NewEngine()
	d := netsim.NewDumbbell(e, netsim.DefaultDumbbell(1))
	cfg := DefaultConfig()
	cfg.TxPathCost = 1500 * sim.Nanosecond
	cc := cca.MustNew("cubic")
	NewReceiver(e, d.Receiver, 1, d.Senders[0].ID, cfg, false, nil)
	s := NewSender(e, d.Senders[0], 1, d.Receiver.ID, 20<<20, cc, cfg, nil)
	for i := 0; i <= 200; i++ {
		e.At(sim.Time(i)*100*sim.Microsecond, func() {
			t.Logf("t=%v cwnd=%.0f pipe=%d una=%d nxt=%d retxQ=%d recov=%v rto=%d retx=%d srtt=%v qlen=%d",
				e.Now(), s.cc.CWnd(), s.pipe, s.sndUna, s.sndNxt, len(s.retxQueue), s.recovery, s.Timeouts, s.Retransmits, s.rtt.srtt, d.Bottleneck.Queue().Bytes())
		})
	}
	s.Start()
	e.RunUntil(20 * sim.Millisecond)
	t.Logf("done=%v", s.Done())
}
