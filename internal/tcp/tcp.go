// Package tcp is a packet-level TCP data-transfer implementation for the
// greenenvy testbed: sequence/ACK machinery, SACK-based loss detection and
// recovery, retransmission timeouts with exponential backoff, RTT
// estimation, delayed ACKs, ECN echo (both classic and DCTCP-precise), and
// pacing. Congestion control is pluggable via internal/cca, mirroring the
// Linux kernel's tcp_congestion_ops split.
//
// The implementation covers what iperf3-style bulk transfers exercise; it
// deliberately omits connection establishment, flow control against a slow
// application, and urgent data, none of which affect the paper's
// measurements.
package tcp

import (
	"greenenvy/internal/sim"
)

// HeaderBytes is the wire overhead per segment (IP + TCP + options), and
// also the wire size of a pure ACK.
const HeaderBytes = 60

// Config carries per-connection tunables. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// MTU is the wire size of a full data segment; MSS = MTU −
	// HeaderBytes. The paper sweeps 1500/3000/6000/9000 (§4.4).
	MTU int
	// InitialCwndSegs is the initial window in segments (RFC 6928's 10).
	InitialCwndSegs int
	// MinRTO / MaxRTO clamp the retransmission timeout. Datacenter
	// deployments tune the floor well below RFC 6298's 1 s.
	MinRTO sim.Duration
	MaxRTO sim.Duration
	// DelAckSegs is the number of full segments the receiver accumulates
	// before ACKing (2, per RFC 5681).
	DelAckSegs int
	// DelAckTimeout bounds how long an ACK may be delayed.
	DelAckTimeout sim.Duration
	// ReorderSegs is the reordering tolerance for SACK loss inference: a
	// segment is declared lost once data this many segments above it has
	// been SACKed (the DupThresh analogue).
	ReorderSegs int
	// RateLimitBps, when positive, paces the application below this rate
	// (iperf3's -b flag). Used by the Figure 2 throughput sweep.
	RateLimitBps int64
	// TxPathCost is the serialized per-packet CPU time on the transmit
	// path; the sender cannot emit packets faster than one per
	// TxPathCost. It comes from the energy cost model and is what caps
	// small-MTU throughput below line rate (§3).
	TxPathCost sim.Duration
	// NICRateBps is the host's aggregate access line rate (bonded NICs
	// summed). The stack never injects faster than the NIC can
	// serialize — the qdisc backpressure a real kernel provides — so
	// access-link queues stay bounded even for the constant-cwnd
	// baseline. 0 means unconstrained.
	NICRateBps int64
	// RxPathCost is the receiver's serialized per-packet processing
	// time. Arriving segments queue in a ring of RxRingPackets entries
	// drained at this rate: backlog delays ACK generation (so
	// delay-based and rate-based senders feel receiver pressure), and a
	// full ring drops packets (so loss-based senders adapt — and the
	// constant-cwnd baseline bleeds retransmissions, §4.3/Fig 8). At
	// large MTUs the packet rate is low and the path is invisible.
	// 0 disables the model.
	RxPathCost sim.Duration
	// RxRingPackets is the receive ring capacity (default 512).
	RxRingPackets int
}

// DefaultConfig returns the testbed defaults: MTU 9000 (the paper's default,
// §3), IW10, a 10 ms RTO floor, and delayed ACKs of 2.
func DefaultConfig() Config {
	return Config{
		MTU:             9000,
		InitialCwndSegs: 10,
		MinRTO:          10 * sim.Millisecond,
		MaxRTO:          2 * sim.Second,
		DelAckSegs:      2,
		DelAckTimeout:   500 * sim.Microsecond,
		ReorderSegs:     3,
		RxPathCost:      1600 * sim.Nanosecond, // ~625 kpps receive capacity
		RxRingPackets:   512,
	}
}

// MSS returns the payload bytes per segment for this config.
func (c Config) MSS() int { return c.MTU - HeaderBytes }

// rttEstimator implements RFC 6298 smoothed RTT estimation.
type rttEstimator struct {
	srtt   sim.Duration
	rttvar sim.Duration
	minRTT sim.Duration
}

// sample folds in one RTT measurement.
func (r *rttEstimator) sample(rtt sim.Duration) {
	if rtt <= 0 {
		return
	}
	if r.minRTT == 0 || rtt < r.minRTT {
		r.minRTT = rtt
	}
	if r.srtt == 0 {
		r.srtt = rtt
		r.rttvar = rtt / 2
		return
	}
	diff := r.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	r.rttvar = (3*r.rttvar + diff) / 4
	r.srtt = (7*r.srtt + rtt) / 8
}

// rto returns the RFC 6298 timeout before clamping and backoff.
func (r *rttEstimator) rto() sim.Duration {
	if r.srtt == 0 {
		return sim.Second // conservative pre-measurement default
	}
	return r.srtt + 4*r.rttvar
}
