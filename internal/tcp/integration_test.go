package tcp

import (
	"testing"

	"greenenvy/internal/cca"
	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
)

// TestIncastCollapseRecovers is the classic incast stress: many senders
// start simultaneously into a shallow bottleneck buffer. Throughput
// collapses transiently, but every flow must complete without deadlock.
func TestIncastCollapseRecovers(t *testing.T) {
	// 16 synchronized senders, MTU 1500, modest buffer: heavy transient
	// loss, but the fan-in must complete with reasonable aggregate
	// goodput (no livelock, no starvation).
	e := sim.NewEngine()
	cfg := netsim.DefaultDumbbell(16)
	cfg.BufferBytes = 512 << 10
	d := netsim.NewDumbbell(e, cfg)
	tcfg := DefaultConfig()
	tcfg.MTU = 1500
	tcfg.TxPathCost = 1500 * sim.Nanosecond
	tcfg.NICRateBps = 20_000_000_000

	var senders []*Sender
	for i := 0; i < 16; i++ {
		flow := netsim.FlowID(i + 1)
		NewReceiver(e, d.Receiver, flow, d.Senders[i].ID, tcfg, false, nil)
		s := NewSender(e, d.Senders[i], flow, d.Receiver.ID, 4<<20, cca.MustNew("cubic"), tcfg, nil)
		senders = append(senders, s)
		s.Start()
	}
	e.RunUntil(30 * sim.Second)
	var totalRetx uint64
	var last sim.Time
	for i, s := range senders {
		if !s.Done() {
			t.Fatalf("flow %d incomplete under incast", i)
		}
		totalRetx += s.Retransmits
		if s.CompletedAt > last {
			last = s.CompletedAt
		}
	}
	if totalRetx == 0 {
		t.Fatal("synchronized incast should drop packets")
	}
	goodput := float64(16*(4<<20)) * 8 / last.Seconds()
	if goodput < 1.5e9 {
		t.Fatalf("aggregate goodput %.2f Gb/s: incast livelocked", goodput/1e9)
	}
	// Pathological extreme for contrast: with jumbo frames and 32 flows,
	// minimum windows alone exceed the buffer — structural collapse —
	// yet every flow must still complete via timeouts.
	e2 := sim.NewEngine()
	cfg2 := netsim.DefaultDumbbell(32)
	cfg2.BufferBytes = 128 << 10
	d2 := netsim.NewDumbbell(e2, cfg2)
	jcfg := DefaultConfig()
	jcfg.TxPathCost = 1500 * sim.Nanosecond
	jcfg.NICRateBps = 20_000_000_000
	var extreme []*Sender
	for i := 0; i < 32; i++ {
		flow := netsim.FlowID(i + 1)
		NewReceiver(e2, d2.Receiver, flow, d2.Senders[i].ID, jcfg, false, nil)
		s := NewSender(e2, d2.Senders[i], flow, d2.Receiver.ID, 1<<20, cca.MustNew("cubic"), jcfg, nil)
		extreme = append(extreme, s)
		s.Start()
	}
	e2.RunUntil(60 * sim.Second)
	for i, s := range extreme {
		if !s.Done() {
			t.Fatalf("extreme-incast flow %d never completed", i)
		}
	}
}

// TestDCTCPFlowsShareViaECN runs two DCTCP flows through a marking
// bottleneck: both must finish with zero retransmissions (ECN does the
// congestion signalling) and roughly equal completion times.
func TestDCTCPFlowsShareViaECN(t *testing.T) {
	e := sim.NewEngine()
	cfg := netsim.DefaultDumbbell(2)
	cfg.MarkBytes = 90 << 10 // DCTCP K
	d := netsim.NewDumbbell(e, cfg)
	tcfg := DefaultConfig()
	tcfg.TxPathCost = 1500 * sim.Nanosecond
	tcfg.NICRateBps = 20_000_000_000

	var senders []*Sender
	const bytes = 100 << 20
	for i := 0; i < 2; i++ {
		flow := netsim.FlowID(i + 1)
		cc := cca.MustNew("dctcp")
		NewReceiver(e, d.Receiver, flow, d.Senders[i].ID, tcfg, cc.ECNCapable(), nil)
		s := NewSender(e, d.Senders[i], flow, d.Receiver.ID, bytes, cc, tcfg, nil)
		senders = append(senders, s)
		s.Start()
	}
	e.RunUntil(60 * sim.Second)
	for i, s := range senders {
		if !s.Done() {
			t.Fatalf("flow %d incomplete", i)
		}
		if s.Retransmits > 5 {
			t.Errorf("flow %d retransmitted %d segments; DCTCP should avoid loss", i, s.Retransmits)
		}
	}
	// Completion times within 30% of each other (both ECN-governed).
	f0, f1 := senders[0].FCT().Seconds(), senders[1].FCT().Seconds()
	ratio := f0 / f1
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("DCTCP flows unfair: FCTs %.3fs vs %.3fs", f0, f1)
	}
	// The bottleneck must actually have marked packets.
	if d.Bottleneck.Queue().Stats().MarkedCE == 0 {
		t.Error("no CE marks applied at the bottleneck")
	}
}

// TestManyParallelCCAsCoexist runs one flow of every algorithm except the
// baseline simultaneously (the paper's footnote forbids the baseline from
// sharing a network). Everything must complete.
func TestManyParallelCCAsCoexist(t *testing.T) {
	names := []string{"reno", "cubic", "vegas", "westwood", "highspeed", "scalable", "bbr", "bbr2", "dctcp"}
	e := sim.NewEngine()
	d := netsim.NewDumbbell(e, netsim.DefaultDumbbell(len(names)))
	tcfg := DefaultConfig()
	tcfg.TxPathCost = 1500 * sim.Nanosecond
	tcfg.NICRateBps = 20_000_000_000

	var senders []*Sender
	for i, name := range names {
		flow := netsim.FlowID(i + 1)
		cc := cca.MustNew(name)
		NewReceiver(e, d.Receiver, flow, d.Senders[i].ID, tcfg, cc.ECNCapable(), nil)
		s := NewSender(e, d.Senders[i], flow, d.Receiver.ID, 20<<20, cc, tcfg, nil)
		senders = append(senders, s)
		s.Start()
	}
	e.RunUntil(120 * sim.Second)
	for i, s := range senders {
		if !s.Done() {
			t.Fatalf("%s incomplete in the mixed-CCA run", names[i])
		}
	}
}
