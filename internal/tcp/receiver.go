package tcp

import (
	"greenenvy/internal/energy"
	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
)

// Receiver is the TCP data sink: it tracks in-order delivery, buffers
// out-of-order data for SACK generation, runs delayed ACKs, and echoes ECN
// marks (either the classic latched ECE or DCTCP's precise per-packet echo).
type Receiver struct {
	engine  *sim.Engine
	host    *netsim.Host
	flow    netsim.FlowID
	src     netsim.NodeID
	cfg     Config
	account *energy.Account

	rcvNxt  uint64
	ooo     rangeSet
	unacked int // full segments received since last ACK
	// delack is the delayed-ACK timer (rearmed in place, never
	// reallocated); delackEcho is the timestamp echo captured when it was
	// armed.
	delack     *sim.Timer
	delackEcho sim.Time
	ceState    bool // DCTCP: CE value of the most recent segment
	ecePend    bool // whether the next ACK should carry ECE
	eceLatch   bool // classic ECN: latched until (never, in our sim) CWR
	preciseCE  bool // DCTCP-style accurate ECE feedback

	// recent holds representative sequence numbers of the most recently
	// updated out-of-order ranges, newest first, for RFC 2018-compliant
	// SACK block ordering (the block containing the most recently
	// received segment must come first, so the sender's scoreboard
	// converges even when there are more holes than SACK option space).
	recent []uint64

	// OnData observes in-order payload delivery (newly contiguous bytes);
	// throughput monitors attach here.
	OnData func(bytes int)

	// rxFreeAt is when the serialized receive path becomes free; the
	// gap to now is the ring backlog.
	rxFreeAt sim.Time
	// rxq defers packet processing until the serialized receive path
	// drains. Completion times are nondecreasing (rxFreeAt only moves
	// forward), so the backlog is FIFO: one standing event plus a ring
	// replaces an event and closure per deferred packet.
	rxq *sim.DelayLine[*netsim.Packet]
	// lastINT is the most recent data packet's telemetry, echoed on the
	// next ACK (HPCC). rxBytes counts wire bytes processed, exposed as
	// the NIC hop's transmit counter.
	lastINT []netsim.INTHop
	rxBytes uint64

	// dataHandler is the host-attachment handler, bound once at
	// construction so pooled reuse does not re-create the method value.
	dataHandler netsim.Handler

	// Counters.
	TotalReceived  uint64 // in-order bytes delivered
	SegmentsRecvd  uint64
	DupSegments    uint64
	AcksSent       uint64
	CEMarksSeen    uint64
	RxDropped      uint64 // segments dropped by receive-ring overflow
	OutOfOrderHigh int    // high-water mark of buffered OOO ranges
}

// NewReceiver creates a receiver for flow on host, sending ACKs back to the
// sender node src. preciseCE selects DCTCP-style ECN feedback; the energy
// account may be nil.
func NewReceiver(engine *sim.Engine, host *netsim.Host, flow netsim.FlowID, src netsim.NodeID, cfg Config, preciseCE bool, account *energy.Account) *Receiver {
	r := &Receiver{engine: engine}
	r.delack = engine.NewTimer(r.onDelAck)
	r.rxq = sim.NewDelayLine(engine, r.process)
	r.dataHandler = netsim.HandlerFunc(r.handleData)
	r.Reset(host, flow, src, cfg, preciseCE, account)
	return r
}

// Quiescent reports whether the receiver's serialized receive path has
// drained: no deferred packets remain in its ring. A pool must only
// recycle quiescent receivers — a pending rxq delivery would otherwise
// fire into the next flow's state. (The process-side flow guard drops any
// straggler that arrives at the host after rebinding.)
func (r *Receiver) Quiescent() bool { return r.rxq.Len() == 0 }

// Detach unbinds the receiver from its host's flow demux. Unpooled runs
// historically left receivers attached forever; the pooled churn path
// detaches so host flow tables stay bounded by the live-flow count.
func (r *Receiver) Detach() {
	if r.host != nil {
		r.host.Detach(r.flow)
	}
}

// Reset rebinds a receiver to a new flow, reusing its timers, its delay
// line, and the out-of-order/SACK bookkeeping backing arrays — the pooled
// churn path's allocation-free flow setup. The receiver must be Quiescent;
// any prior host binding is detached first. OnData is left untouched.
//
//greenvet:hotpath
func (r *Receiver) Reset(host *netsim.Host, flow netsim.FlowID, src netsim.NodeID, cfg Config, preciseCE bool, account *energy.Account) {
	if r.rxq.Len() != 0 {
		panic("tcp: resetting a receiver with deferred packets")
	}
	r.Detach()
	r.delack.Stop()

	r.host = host
	r.flow = flow
	r.src = src
	r.cfg = cfg
	r.account = account
	r.preciseCE = preciseCE

	r.rcvNxt = 0
	r.ooo.reset()
	r.unacked = 0
	r.delackEcho = 0
	r.ceState = false
	r.ecePend = false
	r.eceLatch = false
	r.recent = r.recent[:0]
	r.rxFreeAt = 0
	r.lastINT = nil
	r.rxBytes = 0

	r.TotalReceived = 0
	r.SegmentsRecvd = 0
	r.DupSegments = 0
	r.AcksSent = 0
	r.CEMarksSeen = 0
	r.RxDropped = 0
	r.OutOfOrderHigh = 0

	host.Attach(flow, r.dataHandler)
}

// RcvNxt returns the next expected sequence number (in-order bytes
// delivered so far).
func (r *Receiver) RcvNxt() uint64 { return r.rcvNxt }

//greenvet:hotpath
func (r *Receiver) handleData(p *netsim.Packet) {
	if p.DataLen == 0 {
		return // stray ACK or control packet
	}
	// Serialized receive-path model: ring admission, then processing
	// after the backlog drains.
	if r.cfg.RxPathCost > 0 {
		now := r.engine.Now()
		if r.rxFreeAt < now {
			r.rxFreeAt = now
		}
		ring := r.cfg.RxRingPackets
		if ring == 0 {
			ring = 512
		}
		if int((r.rxFreeAt-now)/r.cfg.RxPathCost) >= ring {
			r.RxDropped++
			return
		}
		r.rxFreeAt += r.cfg.RxPathCost
		if done := r.rxFreeAt; done > now {
			r.rxq.Schedule(p, done)
			return
		}
	}
	r.process(p)
}

//greenvet:hotpath
func (r *Receiver) process(p *netsim.Packet) {
	if p.Flow != r.flow {
		// A straggler from a flow this pooled receiver previously served
		// (e.g. a spurious retransmission still in the fabric when the
		// receiver was rebound). The original flow already completed —
		// completion is cumulative-ACK driven — so dropping it matches
		// what a detached, unpooled receiver would have done.
		return
	}
	r.SegmentsRecvd++
	if p.Flags.Has(netsim.FlagINT) {
		// The receiving NIC is itself an INT hop (as in the HPCC paper,
		// where the NIC heads the hop list): expose the receive ring's
		// occupancy and drain rate so telemetry-driven senders can see
		// host-side bottlenecks, not just switch queues.
		if r.cfg.RxPathCost > 0 {
			now := r.engine.Now()
			backlog := 0
			if r.rxFreeAt > now {
				backlog = int(int64(r.rxFreeAt-now) * int64(p.WireSize) / int64(r.cfg.RxPathCost))
			}
			//greenvet:allow hotpathalloc receive-path INT hop is stamped only when RxPathCost modeling is on (HPCC runs)
			p.INT = append(p.INT, netsim.INTHop{
				QueueBytes: backlog,
				TxBytes:    r.rxBytes,
				At:         now,
				RateBps:    int64(p.WireSize) * 8 * int64(sim.Second) / int64(r.cfg.RxPathCost),
			})
		}
		r.lastINT = p.INT
	}
	r.rxBytes += uint64(p.WireSize)
	r.account.ReceivedData()
	now := p.SentAt

	// ECN processing.
	ce := p.Flags.Has(netsim.FlagCE)
	if ce {
		r.CEMarksSeen++
	}
	forceAck := false
	if r.preciseCE {
		// DCTCP: ACK immediately whenever the CE state flips so the
		// sender sees an accurate marked-byte count.
		if ce != r.ceState {
			forceAck = true
			r.ceState = ce
		}
		r.ecePend = ce
	} else if ce {
		r.eceLatch = true
	}

	start := p.Seq
	end := p.Seq + uint64(p.DataLen)
	if start < r.rcvNxt {
		start = r.rcvNxt // partial overlap: only the new part matters
	}
	switch {
	case end <= r.rcvNxt:
		// Duplicate (a spurious retransmission): ACK immediately.
		r.DupSegments++
		r.sendAck(now)
	case start == r.rcvNxt:
		// In-order (possibly after clamping a partial overlap):
		// advance, absorbing any buffered ranges.
		old := r.rcvNxt
		r.rcvNxt = r.ooo.popBelow(end)
		delivered := int(r.rcvNxt - old)
		r.TotalReceived += uint64(delivered)
		if r.OnData != nil {
			r.OnData(delivered)
		}
		r.unacked++
		if forceAck || r.unacked >= r.cfg.DelAckSegs {
			r.sendAck(now)
		} else {
			r.armDelAck(now)
		}
	default:
		// Out of order: buffer, duplicate-ACK immediately.
		r.ooo.add(start, end)
		r.noteRecent(start)
		if r.ooo.len() > r.OutOfOrderHigh {
			r.OutOfOrderHigh = r.ooo.len()
		}
		r.sendAck(now)
	}
}

// noteRecent records seq as belonging to the most recently updated range.
func (r *Receiver) noteRecent(seq uint64) {
	// Drop stale duplicates of the same position.
	out := r.recent[:0]
	out = append(out, seq) //greenvet:allow hotpathalloc capped at 8 entries and reuses recent's backing array after warm-up
	for _, k := range r.recent {
		if k != seq && len(out) < 8 {
			out = append(out, k) //greenvet:allow hotpathalloc capped at 8 entries and reuses recent's backing array after warm-up
		}
	}
	r.recent = out
}

// sackBlocks assembles up to max SACK blocks, most recently updated range
// first (RFC 2018 §4).
func (r *Receiver) sackBlocks(max int) []byteRange {
	var out []byteRange
	for _, k := range r.recent {
		if k < r.rcvNxt {
			continue
		}
		rg, ok := r.ooo.find(k)
		if !ok {
			continue
		}
		dup := false
		for _, have := range out {
			if have == rg {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		out = append(out, rg) //greenvet:allow hotpathalloc SACK blocks exist only during loss episodes, never in steady state
		if len(out) == max {
			return out
		}
	}
	// Fill remaining slots with the lowest-first ranges.
	for _, rg := range r.ooo.blocks(max) {
		dup := false
		for _, have := range out {
			if have == rg {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, rg) //greenvet:allow hotpathalloc SACK blocks exist only during loss episodes, never in steady state
			if len(out) == max {
				break
			}
		}
	}
	return out
}

func (r *Receiver) armDelAck(echo sim.Time) {
	if r.delack.Armed() {
		return
	}
	r.delackEcho = echo
	r.delack.Reset(r.cfg.DelAckTimeout)
}

//greenvet:hotpath
func (r *Receiver) onDelAck() {
	if r.unacked > 0 {
		r.sendAck(r.delackEcho)
	}
}

func (r *Receiver) sendAck(echo sim.Time) {
	r.delack.Stop()
	r.unacked = 0
	//greenvet:allow hotpathalloc one Packet per ACK by design: its lifetime spans links and queues, so pooling belongs to a dedicated packet-pool change
	ack := &netsim.Packet{
		Flow:     r.flow,
		Dst:      r.src,
		Seq:      0,
		Ack:      r.rcvNxt,
		WireSize: HeaderBytes,
		Flags:    netsim.FlagACK,
		SentAt:   r.engine.Now(),
		EchoTS:   echo,
	}
	for _, b := range r.sackBlocks(4) {
		ack.SACK = append(ack.SACK, netsim.SACKBlock{Start: b.Start, End: b.End}) //greenvet:allow hotpathalloc SACK blocks exist only during loss episodes, never in steady state
	}
	if len(r.lastINT) > 0 {
		ack.INT = r.lastINT
		r.lastINT = nil
	}
	if r.preciseCE {
		if r.ecePend {
			ack.Flags |= netsim.FlagECE
		}
	} else if r.eceLatch {
		ack.Flags |= netsim.FlagECE
		// Without CWR handling we clear the latch after one echo; the
		// classic algorithms in this testbed do not depend on
		// persistent ECE.
		r.eceLatch = false
	}
	r.AcksSent++
	r.account.SentAck()
	r.host.Send(ack)
}
