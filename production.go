package greenenvy

import (
	"fmt"
	"strings"

	"greenenvy/internal/cca"
	"greenenvy/internal/iperf"
	"greenenvy/internal/stats"
	"greenenvy/internal/tcp"
	"greenenvy/internal/testbed"
)

func init() {
	Register(Experiment{
		Name: "production", Order: 150, Section: "§5",
		Description: "extended benchmark: Swift, DCQCN, HPCC vs CUBIC and DCTCP",
		Run:         func(o Options) (Result, error) { return RunProduction(o) },
	})
}

// ProductionCell is one (algorithm, MTU) cell of the §5 extended
// benchmark. It shares the sweep's cell shape and accessors.
type ProductionCell = SweepCell

// ProductionResult is the benchmark the paper's §5 invites the community
// to build: a standardized energy evaluation of the production datacenter
// algorithms (Swift, DCQCN, HPCC) it could not measure, alongside CUBIC
// and DCTCP as points of reference.
type ProductionResult struct {
	Cells []ProductionCell
	Bytes uint64
	// ScaleToPaper converts to the 50 GB scale of Figures 5–7.
	ScaleToPaper float64
}

// productionSet is the benchmark's algorithm list: the §5 trio plus two
// paper algorithms for cross-reference.
func productionSet() []string {
	return append([]string{"cubic", "dctcp"}, cca.ProductionOrder()...)
}

// RunProduction measures the extended benchmark. Runs use a
// DCTCP/DCQCN-style marking bottleneck (K = 100 KiB), which is inert for
// the non-ECN algorithms.
func RunProduction(o Options) (ProductionResult, error) {
	o, err := o.WithDefaults()
	if err != nil {
		return ProductionResult{}, err
	}
	bytes := uint64(float64(paperTransferBytes) * o.Scale)
	res := ProductionResult{Bytes: bytes, ScaleToPaper: float64(paperTransferBytes) / float64(bytes)}
	for _, name := range productionSet() {
		for _, mtu := range []int{1500, 9000} {
			id := fmt.Sprintf("production/%s/mtu=%d/bytes=%d", name, mtu, bytes)
			runs, err := repeatRuns(o, id, func(seed uint64) (*testbed.Testbed, error) {
				tb := testbed.New(testbed.Options{Seed: seed, MarkBytes: 100 << 10})
				_, err := tb.AddFlow(0, iperf.Spec{Bytes: bytes, CCA: name, Config: tcp.Config{MTU: mtu}})
				return tb, err
			}, deadlineFor(bytes)*4)
			if err != nil {
				return ProductionResult{}, fmt.Errorf("%s/%d: %w", name, mtu, err)
			}
			cell := cellFromRuns(name, mtu, runs)
			o.Logf("production: %-6s mtu %-5d energy %s J fct %s s",
				name, mtu, stats.Summary(cell.EnergyJ), stats.Summary(cell.FCTSecs))
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// Table renders the extended benchmark.
func (r ProductionResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§5 extended benchmark — production datacenter CCAs (50 GB scale, ×%.0f from %.1f GB runs)\n",
		r.ScaleToPaper, float64(r.Bytes)/1e9)
	fmt.Fprintf(&b, "%-8s %6s %14s %10s %10s %10s\n", "cca", "mtu", "energy (kJ)", "fct (s)", "power (W)", "retx")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-8s %6d %14.3f %10.1f %10.2f %10.0f\n",
			c.CCA, c.MTU,
			stats.Mean(c.EnergyJ)*r.ScaleToPaper/1000,
			stats.Mean(c.FCTSecs)*r.ScaleToPaper,
			stats.Mean(c.PowerW),
			stats.Mean(c.Retx)*r.ScaleToPaper)
	}
	b.WriteString("(the benchmark §5 invites: \"we invite the community to build a benchmark\n")
	b.WriteString(" for a standardized evaluation of such algorithms\")\n")
	b.WriteString("notes: HPCC trades ~5-10% completion time for near-empty queues (η=0.95);\n")
	b.WriteString(" DCQCN assumes a lossless PFC fabric — on the CPU-limited 1500-byte path it\n")
	b.WriteString(" bleeds retransmissions and pays an energy premium, a finding this benchmark\n")
	b.WriteString(" makes visible.\n")
	return b.String()
}

// Cell returns the cell for (cca, mtu), or nil.
func (r *ProductionResult) Cell(name string, mtu int) *ProductionCell {
	for i := range r.Cells {
		if r.Cells[i].CCA == name && r.Cells[i].MTU == mtu {
			return &r.Cells[i]
		}
	}
	return nil
}
