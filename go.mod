module greenenvy

go 1.22
