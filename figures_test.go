package greenenvy

import (
	"strings"
	"testing"
)

func TestFigureSVGsRenderFromSyntheticData(t *testing.T) {
	f1 := Fig1Result{Points: []Fig1Point{
		{Fraction: 0.5, SavingsPct: 0, AnalyticSavingsPct: 0},
		{Fraction: 1.0, SavingsPct: 16, AnalyticSavingsPct: 16.3},
	}}
	f2 := Fig2Result{Points: []Fig2Point{
		{Gbps: 0, SmoothW: 21.5, TangentW: 21.5},
		{Gbps: 10, SmoothW: 35.8, TangentW: 35.8},
	}}
	f3 := Fig3Result{
		Fair:   []Fig3Sample{{Seconds: 0.01, Gbps: [2]float64{5, 5}}},
		Serial: []Fig3Sample{{Seconds: 0.01, Gbps: [2]float64{10, 0}}},
	}
	f4 := Fig4Result{Points: []Fig4Point{
		{Load: 0, Gbps: 5, MeanW: 34},
		{Load: 0, Gbps: 10, MeanW: 36},
		{Load: 0.5, Gbps: 5, MeanW: 85},
		{Load: 0.5, Gbps: 10, MeanW: 86},
	}}
	sw := syntheticSweep()
	f5 := Fig5Result{Sweep: sw}
	f6 := Fig6Result{Sweep: sw}
	f7 := Fig7Result{Sweep: sw}
	f8 := Fig8Result{Sweep: sw}
	inc := IncastResult{Points: []IncastPoint{
		{Senders: 2, SavingsPct: 16, AnalyticPct: 16.3},
		{Senders: 4, SavingsPct: 19, AnalyticPct: 20.5},
	}}

	cases := map[string]interface{ SVG() (string, error) }{
		"fig1": f1, "fig2": f2, "fig3": f3, "fig4": f4,
		"fig5": f5, "fig6": f6, "fig7": f7, "fig8": f8,
		"incast": inc,
	}
	for name, r := range cases {
		svg, err := r.SVG()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
			t.Fatalf("%s: malformed SVG", name)
		}
		if !strings.Contains(svg, "Figure") && name != "incast" {
			t.Fatalf("%s: title missing", name)
		}
	}
}
