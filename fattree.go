package greenenvy

import (
	"fmt"
	"strings"

	"greenenvy/internal/core"
	"greenenvy/internal/iperf"
	"greenenvy/internal/netsim"
	"greenenvy/internal/sim"
	"greenenvy/internal/testbed"
)

// This file moves the Theorem 1 comparison from the paper's 2-host dumbbell
// onto a k-ary fat-tree fabric — the ROADMAP's datacenter-scale direction:
//
//   - fattree-incast: synchronized fan-in across racks into one receiver,
//     fair vs serial, swept 16 → 1024 senders. The bottleneck is the
//     receiver's edge downlink, but traffic converges through ECMP'd
//     aggregation and core tiers.
//
//   - crossrack: the Figure 1 energy-vs-fairness sweep with the shared
//     bottleneck relocated to a core link — two flows from different pods
//     whose ECMP paths collide on one core→aggregation downlink.

func init() {
	Register(Experiment{
		Name: "fattree-incast", Order: 113, Section: "§5",
		Description: "fair-vs-serial savings for cross-rack fan-in on a fat-tree fabric",
		Run:         func(o Options) (Result, error) { return RunFatTreeIncast(o) },
	})
	Register(Experiment{
		Name: "crossrack", Order: 116, Section: "§5",
		Description: "energy vs fairness when the shared bottleneck is a fat-tree core link",
		Run:         func(o Options) (Result, error) { return RunCrossRack(o) },
	})
}

// FatTreeIncastPoint is one fan-in width of the fat-tree incast sweep.
type FatTreeIncastPoint struct {
	Senders int
	// K is the tree arity used for this width (smallest fitting fabric).
	K              int
	FairJ          float64
	SerialJ        float64
	SavingsPct     float64
	AnalyticPct    float64
	FairDuration   float64
	SerialDuration float64
}

// FatTreeIncastResult sweeps synchronized cross-rack fan-in on a fat-tree.
type FatTreeIncastResult struct {
	Points []FatTreeIncastPoint
	// TotalGbit is the aggregate data moved per run (constant across
	// fan-in widths so runs are comparable).
	TotalGbit float64
}

// RunFatTreeIncast measures fair-vs-serial energy for synchronized senders
// spread across the racks of a k-ary fat-tree, all converging on one
// receiver host. Fair imposes equal weights with a DRR on the receiver's
// edge downlink; serial chains the transfers. The 1024-sender width only
// runs at Scale >= 0.25 so tiny-scale smoke runs stay cheap.
func RunFatTreeIncast(o Options) (FatTreeIncastResult, error) {
	o, err := o.WithDefaults()
	if err != nil {
		return FatTreeIncastResult{}, err
	}
	totalBytes := uint64(20 * paperGbit * o.Scale)
	res := FatTreeIncastResult{TotalGbit: float64(totalBytes) * 8 / 1e9}
	p := PaperPowerFunc()

	widths := []int{16, 64, 256}
	if o.Scale >= 0.25 {
		widths = append(widths, 1024)
	}
	const recv = netsim.NodeID(0)
	for _, n := range widths {
		per := totalBytes / uint64(n)
		if per == 0 {
			return FatTreeIncastResult{}, fmt.Errorf("greenenvy: scale too small for %d-way incast", n)
		}
		k := netsim.FatTreeArityFor(n)
		senders := netsim.IncastHosts(k, n)
		hostBps := netsim.DefaultFatTree(k).HostBps

		run := func(serial bool) (float64, float64, error) {
			id := fmt.Sprintf("fattree-incast/n=%d/k=%d/ecmp=%d/serial=%t/per=%d/sh=%d", n, k, o.Seed, serial, per, o.ShardTag())
			aggs, err := runCell(o, id, func(seed uint64) (*testbed.Testbed, error) {
				cfg := netsim.DefaultFatTree(k)
				cfg.ECMPSeed = o.Seed
				if !serial {
					cfg.NewQueue = func(port netsim.FatTreePort) netsim.Queue {
						if port.Tier == netsim.TierHostDown && port.Host == recv {
							return netsim.NewDRR(cfg.BufferBytes, cfg.MarkBytes)
						}
						return nil
					}
				}
				tb := testbed.NewFatTree(testbed.Options{Seed: seed, Shards: o.Shards}, cfg)
				tb.WatchBottleneck(tb.Fat.HostDownlink(recv))
				var prev *iperf.Client
				for _, src := range senders {
					c, err := tb.AddFlowBetween(src, recv, iperf.Spec{Bytes: per, CCA: "cubic"})
					if err != nil {
						return nil, err
					}
					if serial {
						if prev != nil {
							c.StartAfter(prev)
						}
						prev = c
					} else if err := tb.SetWeight(c.Report().Flow, 1/float64(n)); err != nil {
						return nil, err
					}
				}
				return tb, nil
			}, deadlineFor(totalBytes), senderJoules, runSeconds, eventsFired)
			if err != nil {
				return 0, 0, err
			}
			o.Logf("fattree-incast: n=%d serial=%t %.0f events/run", n, serial, aggs[2].Mean)
			return aggs[0].Mean, aggs[1].Mean, nil
		}
		fairJ, fairD, err := run(false)
		if err != nil {
			return FatTreeIncastResult{}, fmt.Errorf("fattree-incast n=%d fair: %w", n, err)
		}
		serialJ, serialD, err := run(true)
		if err != nil {
			return FatTreeIncastResult{}, fmt.Errorf("fattree-incast n=%d serial: %w", n, err)
		}

		// Analytic prediction: n hosts sharing the receiver downlink.
		flows := make([]core.Flow, n)
		for i := range flows {
			flows[i] = core.Flow{Bytes: float64(per)}
		}
		fairS, err := core.FairShare(flows, float64(hostBps))
		if err != nil {
			return FatTreeIncastResult{}, err
		}
		serialS, err := core.FullSpeedThenIdle(flows, float64(hostBps))
		if err != nil {
			return FatTreeIncastResult{}, err
		}
		analytic := (fairS.Energy(p) - serialS.Energy(p)) / fairS.Energy(p) * 100

		res.Points = append(res.Points, FatTreeIncastPoint{
			Senders:        n,
			K:              k,
			FairJ:          fairJ,
			SerialJ:        serialJ,
			SavingsPct:     (fairJ - serialJ) / fairJ * 100,
			AnalyticPct:    analytic,
			FairDuration:   fairD,
			SerialDuration: serialD,
		})
		o.Logf("fattree-incast: n=%d k=%d savings %.1f%% (analytic %.1f%%)", n, k, (fairJ-serialJ)/fairJ*100, analytic)
	}
	return res, nil
}

// Table renders the fat-tree incast sweep.
func (r FatTreeIncastResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fat-tree incast — fair vs serial energy, %.1f Gbit aggregate, cross-rack fan-in\n", r.TotalGbit)
	fmt.Fprintf(&b, "%-8s %4s %12s %12s %10s %12s\n", "senders", "k", "fair (J)", "serial (J)", "savings", "analytic")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-8d %4d %12.1f %12.1f %9.2f%% %11.2f%%\n", p.Senders, p.K, p.FairJ, p.SerialJ, p.SavingsPct, p.AnalyticPct)
	}
	b.WriteString("(Theorem 1 on a fabric: the receiver's edge downlink is the shared resource;\n")
	b.WriteString(" ECMP spreads the converging flows across aggregation and core tiers)\n")
	return b.String()
}

// CrossRackPoint is one x-position of the cross-rack fairness sweep.
type CrossRackPoint struct {
	// Fraction of the contended core link allocated to flow 1 (0.5 = fair,
	// 1.0 = full speed then idle).
	Fraction    float64
	MeanEnergyJ float64
	StdEnergyJ  float64
	// SavingsPct is energy saving over the fair point, in percent.
	SavingsPct float64
	// AnalyticSavingsPct is the closed-form prediction at the core rate.
	AnalyticSavingsPct float64
}

// CrossRackResult is the Figure 1 sweep with the bottleneck at the core.
type CrossRackResult struct {
	// K is the tree arity (4: the smallest fabric with a contended core).
	K int
	// CoreLink names the shared core→aggregation downlink.
	CoreLink string
	// Flow1 and Flow2 are the (src, dst) host pairs whose ECMP paths
	// collide on CoreLink and share no other link.
	Flow1, Flow2 [2]netsim.NodeID
	Points       []CrossRackPoint
	FairEnergyJ  float64
	// FlowGbit is the per-flow transfer size used.
	FlowGbit float64
}

// crossRackCollide finds two flows from different source pods whose ECMP
// paths share exactly one link: a core→aggregation downlink into the
// destination pod. Flow IDs are fixed (1 and 2, the testbed's assignment
// order), so the search and the runs resolve identical paths. The search is
// exhaustive over candidate endpoint pairs in a fixed order, hence
// deterministic for a given ECMP seed.
func crossRackCollide(ft *netsim.FatTree) (f1, f2 [2]netsim.NodeID, shared *netsim.Link, err error) {
	k := ft.Config.K
	hostsPerPod := (k / 2) * (k / 2)
	podHosts := func(p int) []netsim.NodeID {
		out := make([]netsim.NodeID, hostsPerPod)
		for i := range out {
			out[i] = netsim.NodeID(p*hostsPerPod + i)
		}
		return out
	}
	// Flow 1: pod 0 → pod 2; flow 2: pod 1 → pod 2. Distinct source pods
	// guarantee the upstream (host, edge→agg, agg→core) links differ; the
	// collision, when the hashes align, is exactly the core downlink.
	for _, src1 := range podHosts(0) {
		for _, dst1 := range podHosts(2) {
			path1 := ft.PathFor(1, src1, dst1)
			if len(path1) == 0 {
				continue
			}
			for _, src2 := range podHosts(1) {
				for _, dst2 := range podHosts(2) {
					if dst2 == dst1 {
						continue
					}
					path2 := ft.PathFor(2, src2, dst2)
					var common []*netsim.Link
					for _, l1 := range path1 {
						for _, l2 := range path2 {
							if l1 == l2 {
								common = append(common, l1)
							}
						}
					}
					if len(common) == 1 {
						return [2]netsim.NodeID{src1, dst1}, [2]netsim.NodeID{src2, dst2}, common[0], nil
					}
				}
			}
		}
	}
	return f1, f2, nil, fmt.Errorf("greenenvy: no cross-pod flow pair collides on exactly one core link (ECMP seed %d)", ft.Config.ECMPSeed)
}

// RunCrossRack sweeps the bandwidth fraction given to flow 1 of two
// cross-pod flows whose ECMP paths collide on one core→aggregation
// downlink — Figure 1's experiment with the shared bottleneck at the core
// of a k=4 fat-tree instead of an edge port. Fairness is imposed by DRRs on
// every core downlink (only the contended one matters); fraction 1.0 is the
// serial schedule.
func RunCrossRack(o Options) (CrossRackResult, error) {
	o, err := o.WithDefaults()
	if err != nil {
		return CrossRackResult{}, err
	}
	bytes := uint64(10 * paperGbit * o.Scale)
	if bytes == 0 {
		return CrossRackResult{}, fmt.Errorf("greenenvy: scale too small")
	}
	const k = 4
	baseCfg := netsim.DefaultFatTree(k)
	baseCfg.ECMPSeed = o.Seed

	// Discover the colliding endpoint pair on a throwaway instance; the
	// per-repetition builds re-resolve the same link by the same hashes.
	probe := netsim.NewFatTree(sim.NewEngine(), baseCfg)
	f1, f2, sharedProbe, err := crossRackCollide(probe)
	if err != nil {
		return CrossRackResult{}, err
	}
	res := CrossRackResult{
		K:        k,
		CoreLink: sharedProbe.Name,
		Flow1:    f1,
		Flow2:    f2,
		FlowGbit: float64(bytes) * 8 / 1e9,
	}

	// Analytic predictions at the contended core link's rate.
	p := PaperPowerFunc()
	flows := []core.Flow{{Bytes: float64(bytes)}, {Bytes: float64(bytes)}}
	rate := float64(baseCfg.AggCoreBps)
	fractions := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	analytic := make(map[float64]float64)
	for _, f := range fractions {
		s, err := core.WeightedShare(flows, rate, []float64{f, 1 - f})
		if err != nil {
			return CrossRackResult{}, err
		}
		sav, err := core.SavingsOverFair(s, rate, p)
		if err != nil {
			return CrossRackResult{}, err
		}
		analytic[f] = sav * 100
	}

	deadline := deadlineFor(2 * bytes)
	for _, f := range fractions {
		id := fmt.Sprintf("crossrack/k=%d/ecmp=%d/frac=%.2f/bytes=%d/sh=%d", k, o.Seed, f, bytes, o.ShardTag())
		aggs, err := runCell(o, id, func(seed uint64) (*testbed.Testbed, error) {
			cfg := baseCfg
			if f < 1.0 {
				cfg.NewQueue = func(port netsim.FatTreePort) netsim.Queue {
					if port.Tier == netsim.TierCoreDown {
						return netsim.NewDRR(cfg.BufferBytes, cfg.MarkBytes)
					}
					return nil
				}
			}
			tb := testbed.NewFatTree(testbed.Options{Seed: seed, Shards: o.Shards}, cfg)
			c1, err := tb.AddFlowBetween(f1[0], f1[1], iperf.Spec{Bytes: bytes, CCA: "cubic"})
			if err != nil {
				return nil, err
			}
			c2, err := tb.AddFlowBetween(f2[0], f2[1], iperf.Spec{Bytes: bytes, CCA: "cubic"})
			if err != nil {
				return nil, err
			}
			_, _, shared, err := crossRackCollide(tb.Fat)
			if err != nil {
				return nil, err
			}
			tb.WatchBottleneck(shared)
			if f < 1.0 {
				if err := tb.SetWeight(c1.Report().Flow, f); err != nil {
					return nil, err
				}
				if err := tb.SetWeight(c2.Report().Flow, 1-f); err != nil {
					return nil, err
				}
			} else {
				c2.StartAfter(c1)
			}
			return tb, nil
		}, deadline, senderJoules, eventsFired)
		if err != nil {
			return CrossRackResult{}, fmt.Errorf("crossrack fraction %v: %w", f, err)
		}
		res.Points = append(res.Points, CrossRackPoint{
			Fraction:           f,
			MeanEnergyJ:        aggs[0].Mean,
			StdEnergyJ:         aggs[0].Std,
			AnalyticSavingsPct: analytic[f],
		})
		o.Logf("crossrack: f=%.2f energy=%.1f±%.1f J (%.0f events/run)", f, aggs[0].Mean, aggs[0].Std, aggs[1].Mean)
	}

	res.FairEnergyJ = res.Points[0].MeanEnergyJ
	for i := range res.Points {
		res.Points[i].SavingsPct = (res.FairEnergyJ - res.Points[i].MeanEnergyJ) / res.FairEnergyJ * 100
	}
	return res, nil
}

// Table renders the cross-rack sweep.
func (r CrossRackResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cross-rack (k=%d fat-tree) — energy vs fairness at shared core link %s (%.1f Gbit/flow)\n",
		r.K, r.CoreLink, r.FlowGbit)
	fmt.Fprintf(&b, "flow 1: h%d -> h%d   flow 2: h%d -> h%d\n", r.Flow1[0], r.Flow1[1], r.Flow2[0], r.Flow2[1])
	fmt.Fprintf(&b, "%-10s %14s %12s %14s\n", "fraction", "energy (J)", "savings %", "analytic %")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10.2f %8.1f ±%4.1f %12.2f %14.2f\n",
			p.Fraction, p.MeanEnergyJ, p.StdEnergyJ, p.SavingsPct, p.AnalyticSavingsPct)
	}
	b.WriteString("(the fair split stays worst when the contended resource is a core link:\n")
	b.WriteString(" Theorem 1 only needs a shared bottleneck and concave host power)\n")
	return b.String()
}
