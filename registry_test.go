package greenenvy

import (
	"strings"
	"testing"
)

// canonicalOrder is the expected -fig all sequence: the paper's figures in
// number order, then the analytic and extension experiments.
var canonicalOrder = []string{
	"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
	"theorem", "scheduler", "incast", "fattree-incast", "crossrack",
	"aqm-matrix", "samesender", "ablations", "frontier", "production",
	"workload", "workload-scale", "workload-crossover",
}

func TestRegistryMetadata(t *testing.T) {
	exps := Experiments()
	if len(exps) != len(canonicalOrder) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(canonicalOrder))
	}
	for i, e := range exps {
		if e.Name != canonicalOrder[i] {
			t.Errorf("Experiments()[%d] = %q, want %q", i, e.Name, canonicalOrder[i])
		}
		if e.Description == "" {
			t.Errorf("%s: empty description", e.Name)
		}
		if e.Section == "" {
			t.Errorf("%s: empty paper section", e.Name)
		}
		if e.Run == nil {
			t.Errorf("%s: nil Run", e.Name)
		}
	}

	seen := map[string]string{}
	for _, e := range exps {
		for _, key := range append([]string{e.Name}, e.Aliases...) {
			if prev, dup := seen[key]; dup {
				t.Errorf("key %q registered by both %s and %s", key, prev, e.Name)
			}
			seen[key] = e.Name
			got, ok := LookupExperiment(key)
			if !ok || got.Name != e.Name {
				t.Errorf("LookupExperiment(%q) = %q, %v; want %q", key, got.Name, ok, e.Name)
			}
		}
	}
	for fig := 1; fig <= 8; fig++ {
		want := canonicalOrder[fig-1]
		if e, ok := LookupExperiment(strings.TrimPrefix(want, "fig")); !ok || e.Name != want {
			t.Errorf("numeric alias for %s does not resolve", want)
		}
	}
	if _, ok := LookupExperiment("no-such-experiment"); ok {
		t.Error("LookupExperiment resolved a name that was never registered")
	}

	names := ExperimentNames()
	for i, want := range canonicalOrder {
		if names[i] != want {
			t.Fatalf("ExperimentNames()[%d] = %q, want %q", i, names[i], want)
		}
	}
}

func TestRegisterRejectsBadExperiments(t *testing.T) {
	expectPanic := func(what string, e Experiment) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("Register accepted %s", what)
			}
		}()
		Register(e)
	}
	run := func(Options) (Result, error) { return nil, nil }
	expectPanic("a nameless experiment", Experiment{Run: run})
	expectPanic("a runless experiment", Experiment{Name: "x"})
	expectPanic("a duplicate name", Experiment{Name: "fig1", Run: run})
	expectPanic("an alias shadowing a name", Experiment{Name: "x", Aliases: []string{"5"}, Run: run})
}

// TestEveryExperimentRunsAtTinyScale drives each registered experiment
// through its registry Run at digestOpts' tiny scale and checks the uniform
// Result contract: a non-empty table and a well-formed SVG document. The
// simulation-heavy experiments share digestOpts' in-process sweep cache with
// the golden-digest test, so the whole pass stays cheap.
func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every registered experiment")
	}
	o := digestOpts()
	for _, e := range Experiments() {
		t.Run(e.Name, func(t *testing.T) {
			res, err := e.Run(o)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			tbl := res.Table()
			if strings.TrimSpace(tbl) == "" {
				t.Fatal("empty table")
			}
			svg, err := res.SVG()
			if err != nil {
				t.Fatalf("SVG: %v", err)
			}
			if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
				t.Fatalf("malformed SVG (%d bytes)", len(svg))
			}
		})
	}
}

func TestEveryExperimentRejectsBadScale(t *testing.T) {
	for _, e := range Experiments() {
		if _, err := e.Run(Options{Scale: 5}); err == nil {
			t.Errorf("%s: Scale=5 did not return an error", e.Name)
		}
	}
}
