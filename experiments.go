package greenenvy

import (
	"greenenvy/internal/registry"
	"greenenvy/internal/sim"
	"greenenvy/internal/testbed"
)

// Options, the repetition harness, and the persistent-cache plumbing live
// in internal/registry (shared with the scenario compiler); this file keeps
// the root package's historical names pointing at them.

// Options scales the experiment runners. The zero value gives a fast,
// laptop-friendly configuration; Paper() gives the paper's full parameters.
// See registry.Options for field documentation.
type Options = registry.Options

// Paper returns the paper's full experiment parameters: 10 repetitions,
// full 50 GB transfers. Expect the CCA sweep to take a long while.
func Paper() Options { return registry.Paper() }

// paperGbit is 1 Gbit in bytes: the Figure 1 flows each move 10 Gbit.
const paperGbit = registry.PaperGbit

// deadlineFor bounds a run generously: assume at least 500 Mb/s of
// progress plus a 10 s margin.
func deadlineFor(bytes uint64) sim.Duration { return registry.DeadlineFor(bytes) }

// repeatRuns centralizes the repetition loop with derived seeds, fanned out
// over Options.Workers goroutines. See registry.RepeatRuns.
func repeatRuns(o Options, id string, build func(seed uint64) (*testbed.Testbed, error), deadline sim.Duration) ([]testbed.RunResult, error) {
	return registry.RepeatRuns(o, id, build, deadline)
}

// repeatStreamRuns is repeatRuns for the streaming churn path. See
// registry.RepeatStreamRuns.
func repeatStreamRuns(o Options, id string, run func(seed uint64) (testbed.StreamResult, error)) ([]testbed.StreamResult, error) {
	return registry.RepeatStreamRuns(o, id, run)
}
