package greenenvy

import (
	"fmt"
	"math"

	"greenenvy/internal/sim"
	"greenenvy/internal/testbed"
)

// Options scales the experiment runners. The zero value gives a fast,
// laptop-friendly configuration; Paper() gives the paper's full parameters.
type Options struct {
	// Reps is the number of repetitions per scenario (the paper uses 10).
	// Default 3.
	Reps int
	// Scale multiplies the paper's transfer sizes, in (0, 1]. The CCA
	// sweep (Figures 5–8) moves 50 GB per run at Scale 1; the default
	// 0.04 moves 2 GB, preserving every steady-state ratio while keeping
	// runs short. Figures 1–4 use the paper's sizes already at Scale 1
	// and honor Scale likewise.
	Scale float64
	// Seed drives all randomness. Default 1.
	Seed uint64
	// Verbose, when set, makes runners print progress lines.
	Verbose bool
}

func (o Options) withDefaults() Options {
	if o.Reps == 0 {
		o.Reps = 3
	}
	if o.Scale == 0 {
		o.Scale = 0.04
	}
	if o.Scale < 0 || o.Scale > 1 {
		panic(fmt.Sprintf("greenenvy: Scale %v out of (0, 1]", o.Scale))
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Paper returns the paper's full experiment parameters: 10 repetitions,
// full 50 GB transfers. Expect the CCA sweep to take a long while.
func Paper() Options { return Options{Reps: 10, Scale: 1.0} }

func (o Options) logf(format string, args ...any) {
	if o.Verbose {
		fmt.Printf(format+"\n", args...)
	}
}

// paperGbit is 1 Gbit in bytes: the Figure 1 flows each move 10 Gbit.
const paperGbit = 1_000_000_000 / 8

// deadlineFor bounds a run generously: assume at least 500 Mb/s of
// progress plus a 10 s margin.
func deadlineFor(bytes uint64) sim.Duration {
	return sim.Duration(bytes*8/500e6+10) * sim.Second
}

// meanStd is a tiny local helper over run energies.
func meanStd(xs []float64) (m, s float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	s /= float64(len(xs))
	return m, math.Sqrt(s)
}

// repeatRuns centralizes the repetition loop with derived seeds.
func repeatRuns(o Options, build func(seed uint64) (*testbed.Testbed, error), deadline sim.Duration) ([]testbed.RunResult, error) {
	return testbed.Repeat(o.Reps, o.Seed, func(rep int, seed uint64) (testbed.RunResult, error) {
		tb, err := build(seed)
		if err != nil {
			return testbed.RunResult{}, err
		}
		return tb.Run(deadline)
	})
}
