package greenenvy

import (
	"fmt"
	"runtime"

	"greenenvy/internal/cache"
	"greenenvy/internal/sim"
	"greenenvy/internal/testbed"
)

// Options scales the experiment runners. The zero value gives a fast,
// laptop-friendly configuration; Paper() gives the paper's full parameters.
type Options struct {
	// Reps is the number of repetitions per scenario (the paper uses 10).
	// Default 3.
	Reps int
	// Scale multiplies the paper's transfer sizes, in (0, 1]. The CCA
	// sweep (Figures 5–8) moves 50 GB per run at Scale 1; the default
	// 0.04 moves 2 GB, preserving every steady-state ratio while keeping
	// runs short. Figures 1–4 use the paper's sizes already at Scale 1
	// and honor Scale likewise.
	Scale float64
	// Seed drives all randomness. Default 1.
	Seed uint64
	// Workers bounds how many simulator runs execute concurrently. Each
	// repetition is an independent, seed-deterministic engine, so results
	// are byte-identical for every worker count; only wall-clock time
	// changes. Default runtime.GOMAXPROCS(0); 1 forces the serial path.
	Workers int
	// CacheDir, when set, enables the persistent content-addressed result
	// cache: every (experiment cell, repetition) simulation result is
	// memoized on disk keyed by its result-affecting inputs plus the
	// simulator version stamp (see cacheVersionStamp), so repeated runs —
	// same or higher Reps, any Workers — replay from disk instead of
	// simulating, with byte-identical results. Empty disables persistence
	// (the in-process sweep cache still applies).
	CacheDir string
	// NoCache bypasses the persistent cache even when CacheDir is set:
	// nothing is read from or written to disk, forcing full recomputation.
	NoCache bool
	// Shards, when positive, runs each fat-tree repetition on the sharded
	// conservative-synchronization engine with up to this many workers
	// (testbed.Options.Shards). Results for a given topology are
	// byte-identical for every positive value — only wall-clock changes —
	// but differ from the monolithic (0) schedule, so Shards>0 selects a
	// separate cache lineage. Dumbbell experiments ignore it. Composes
	// with Workers: repetitions fan out first, shards within each.
	Shards int
	// Verbose, when set, makes runners print progress lines.
	Verbose bool
}

// withDefaults fills unset fields and validates the rest. Every Run* entry
// point calls it first and returns its error — bad caller input is an
// error, never a panic.
func (o Options) withDefaults() (Options, error) {
	if o.Reps == 0 {
		o.Reps = 3
	}
	if o.Scale == 0 {
		o.Scale = 0.04
	}
	if o.Scale < 0 || o.Scale > 1 {
		return Options{}, fmt.Errorf("greenenvy: Scale %v out of (0, 1]", o.Scale)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.Shards < 0 {
		return Options{}, fmt.Errorf("greenenvy: Shards %d negative", o.Shards)
	}
	return o, nil
}

// shardTag collapses Shards to the single bit that affects results: the
// sharded schedule is byte-identical for every positive worker count, so
// cache identities record only sharded-vs-monolithic.
func (o Options) shardTag() int {
	if o.Shards > 0 {
		return 1
	}
	return 0
}

// Paper returns the paper's full experiment parameters: 10 repetitions,
// full 50 GB transfers. Expect the CCA sweep to take a long while.
func Paper() Options { return Options{Reps: 10, Scale: 1.0} }

func (o Options) logf(format string, args ...any) {
	if o.Verbose {
		fmt.Printf(format+"\n", args...)
	}
}

// paperGbit is 1 Gbit in bytes: the Figure 1 flows each move 10 Gbit.
const paperGbit = 1_000_000_000 / 8

// deadlineFor bounds a run generously: assume at least 500 Mb/s of
// progress plus a 10 s margin.
func deadlineFor(bytes uint64) sim.Duration {
	return sim.Duration(bytes*8/500e6+10) * sim.Second
}

// repeatRuns centralizes the repetition loop with derived seeds, fanned out
// over Options.Workers goroutines. Each repetition builds and runs its own
// testbed, so build must not capture state shared across repetitions.
//
// id names the experiment cell for the persistent cache and must encode
// every result-affecting parameter that the per-repetition seed does not
// already capture (transfer bytes, rates, loads, topology, CCA, MTU, ...).
// Two call sites with the same id and seed MUST build identical testbeds.
func repeatRuns(o Options, id string, build func(seed uint64) (*testbed.Testbed, error), deadline sim.Duration) ([]testbed.RunResult, error) {
	store := o.cacheStore()
	return testbed.RepeatParallel(o.Reps, o.Seed, o.Workers, func(rep int, seed uint64) (testbed.RunResult, error) {
		key := cache.NewKey("run", id, seed)
		var cached testbed.RunResult
		if store.Get(key, &cached) {
			return cached, nil
		}
		tb, err := build(seed)
		if err != nil {
			return testbed.RunResult{}, err
		}
		r, err := tb.Run(deadline)
		if err == nil {
			// Best-effort: a full disk or unwritable store must not
			// fail the experiment, only future warm starts.
			_ = store.Put(key, r)
		}
		return r, err
	})
}

// repeatStreamRuns is repeatRuns for the streaming churn path: the same
// derived-seed repetition fan-out and per-repetition persistent caching,
// but each repetition produces an O(1)-size testbed.StreamResult instead
// of retained per-flow reports. Stream runs cache under the "stream" key
// kind so their gob shape evolves independently of RunResult's.
func repeatStreamRuns(o Options, id string, run func(seed uint64) (testbed.StreamResult, error)) ([]testbed.StreamResult, error) {
	store := o.cacheStore()
	root := sim.NewRNG(o.Seed)
	out := make([]testbed.StreamResult, o.Reps)
	err := testbed.ForEach(o.Reps, o.Workers, func(rep int) error {
		seed := root.Split(uint64(rep)).Uint64()
		key := cache.NewKey("stream", id, seed)
		var cached testbed.StreamResult
		if store.Get(key, &cached) {
			out[rep] = cached
			return nil
		}
		r, err := run(seed)
		if err != nil {
			return fmt.Errorf("repetition %d: %w", rep, err)
		}
		_ = store.Put(key, r)
		out[rep] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
