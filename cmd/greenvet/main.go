// Command greenvet is the determinism and hot-path vet driver for this
// module: it runs the internal/analysis suite (nodeterminism, floatorder,
// hotpathalloc, shardsafety, cachelineage, registryhygiene) over the
// packages each analyzer guards and exits non-zero on any finding.
//
// Every run also audits the //greenvet:allow directives themselves: an
// allow that no longer suppresses any diagnostic — because the code it
// excused was refactored away, it names an analyzer that does not exist,
// or it sits in a package the named analyzer does not guard — is reported
// as a `staleallow` finding and fails the run like any other. An allow is
// a reviewed claim about specific code; once the code is gone the claim
// must go too, or it will silently excuse the next unrelated diagnostic
// that lands on its line. (Vettool mode audits the packages the suite
// guards; standalone mode additionally sweeps unguarded packages, where
// every allow is stale by definition.)
//
// Two invocation styles:
//
//	greenvet ./...                     # standalone multichecker
//	go vet -vettool=$(which greenvet) ./...   # as the go vet tool
//
// Standalone mode loads packages itself (go list -export + the gc
// importer); vettool mode implements the go vet driver protocol (-V=full
// version probe, -flags discovery, and per-package JSON config files), so
// go vet's build cache makes repeated runs incremental.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"greenenvy/internal/analysis"
	"greenenvy/internal/analysis/load"
	"greenenvy/internal/analysis/suite"
)

func main() {
	versionFlag := flag.String("V", "", "print version (go vet protocol; -V=full)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON (go vet protocol)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: greenvet [packages]\n       go vet -vettool=$(which greenvet) [packages]\n\nAnalyzers:\n")
		for _, s := range suite.Suite() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", s.Analyzer.Name, s.Analyzer.Doc)
		}
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", "staleallow", "report //greenvet:allow directives that no longer suppress any diagnostic (always on)")
	}
	flag.Parse()

	switch {
	case *versionFlag != "":
		// The go command parses this line to build its action cache key.
		fmt.Println("greenvet version v1.0.0-greenenvy")
		return
	case *flagsFlag:
		// greenvet exposes no analyzer flags to go vet.
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vettool(args[0]))
	}
	os.Exit(standalone(args))
}

// standalone loads the requested packages (default ./...) and runs every
// scoped analyzer over them.
func standalone(patterns []string) int {
	pkgs, err := load.Packages("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "greenvet:", err)
		return 2
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := runSuite(pkg.ImportPath, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
		if err != nil {
			fmt.Fprintln(os.Stderr, "greenvet:", err)
			return 2
		}
		found += len(diags)
		printDiags(pkg.Fset, diags)
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "greenvet: %d finding(s)\n", found)
		return 1
	}
	return 0
}

// runSuite applies every analyzer whose scope covers importPath, then
// audits the package's //greenvet:allow directives against the
// suppressions that actually happened.
func runSuite(importPath string, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]analysis.Diagnostic, error) {
	var out []analysis.Diagnostic
	used := map[analysis.AllowKey]bool{}
	applicable := map[string]bool{}
	for _, s := range suite.Suite() {
		if !s.AppliesTo(importPath) {
			continue
		}
		applicable[s.Analyzer.Name] = true
		diags, err := analysis.RunWithUsage(s.Analyzer, fset, files, pkg, info, used)
		if err != nil {
			return nil, err
		}
		out = append(out, diags...)
	}
	out = append(out, staleAllows(importPath, fset, files, used, applicable)...)
	return out, nil
}

// staleAllows reports every allow directive that suppressed nothing this
// run, with the most specific reason it is dead weight.
func staleAllows(importPath string, fset *token.FileSet, files []*ast.File, used map[analysis.AllowKey]bool, applicable map[string]bool) []analysis.Diagnostic {
	known := map[string]bool{}
	for _, s := range suite.Suite() {
		known[s.Analyzer.Name] = true
	}
	var out []analysis.Diagnostic
	for _, a := range analysis.Allows(fset, files) {
		if used[a.AllowKey] {
			continue
		}
		var why string
		switch {
		case !known[a.Analyzer]:
			why = fmt.Sprintf("no analyzer named %q exists", a.Analyzer)
		case !applicable[a.Analyzer]:
			why = fmt.Sprintf("analyzer %q does not guard package %s", a.Analyzer, importPath)
		default:
			why = "it no longer suppresses any diagnostic"
		}
		out = append(out, analysis.Diagnostic{
			Pos:      a.Pos,
			Analyzer: "staleallow",
			Message:  fmt.Sprintf("stale //greenvet:allow %s: %s; a dead allow silently excuses the next diagnostic that lands here — remove it", a.Analyzer, why),
		})
	}
	return out
}

func printDiags(fset *token.FileSet, diags []analysis.Diagnostic) {
	wd, _ := os.Getwd()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		file := pos.Filename
		if wd != "" {
			if r, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(r, "..") {
				file = r
			}
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", file, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
}

// vetConfig mirrors the JSON config the go command hands a -vettool (see
// cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// vettool analyzes one package as directed by the go vet driver protocol.
func vettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "greenvet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "greenvet: parse %s: %v\n", cfgPath, err)
		return 2
	}

	// greenvet computes no cross-package facts, but the protocol requires
	// the vetx output file to exist for the go command's cache.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			_ = os.WriteFile(cfg.VetxOutput, nil, 0o666)
		}
	}

	applies := false
	for _, s := range suite.Suite() {
		if s.AppliesTo(cfg.ImportPath) {
			applies = true
		}
	}
	if cfg.VetxOnly || !applies {
		writeVetx()
		return 0
	}

	// go vet also invokes the tool on test variants (the package's files
	// plus its *_test.go files). The determinism and hot-path contracts
	// govern production code only — tests legitimately time the wall clock
	// and construct experiments dynamically — and the base variant already
	// covers the non-test files, so test variants are skipped, matching
	// standalone mode (go list GoFiles excludes test files).
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			writeVetx()
			return 0
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fmt.Fprintln(os.Stderr, "greenvet:", err)
			return 2
		}
		files = append(files, f)
	}

	imp := load.ExportImporter(fset, func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		e, ok := cfg.PackageFile[path]
		return e, ok
	})
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	info := load.NewInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "greenvet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	diags, err := runSuite(cfg.ImportPath, fset, files, pkg, info)
	if err != nil {
		fmt.Fprintln(os.Stderr, "greenvet:", err)
		return 2
	}
	writeVetx()
	if len(diags) > 0 {
		printDiags(fset, diags)
		return 1
	}
	return 0
}
