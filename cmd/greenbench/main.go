// Command greenbench regenerates the paper's figures on the simulated
// testbed and prints the same rows/series the paper reports. Every
// experiment comes from the greenenvy experiment registry: the command has
// no per-figure code, so a newly registered experiment appears in -fig
// list, -fig all, and -svg output with no changes here.
//
// Usage:
//
//	greenbench -fig list         # enumerate the registered experiments
//	greenbench -fig 1            # Figure 1: unfairness sweep (alias of fig1)
//	greenbench -fig fig5 -scale 0.1 # Figure 5 at 5 GB per run
//	greenbench -fig all -reps 10 -scale 1   # full paper parameters
//	greenbench -fig theorem      # Theorem 1 verification
//	greenbench -fig scheduler    # §5 SRPT-vs-fair scheduler comparison
//	greenbench -fig 5 -cpuprofile cpu.pprof -memprofile mem.pprof
//	                             # profile a run; inspect with `go tool pprof`
//	greenbench -scenario examples/scenarios/unequal-rtt.toml
//	                             # compile and run a declarative spec file
//
// Results are memoized per (experiment cell, repetition) in a persistent
// content-addressed cache (default: the per-user cache directory), so
// regenerating a figure after a plotting change replays from disk instead
// of simulating. `-no-cache` bypasses it, `-cache-clear` empties it first,
// and a `cache: hits=… misses=…` summary is printed to stderr after runs
// that touch simulation.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"greenenvy"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "experiment to run: a registry name or alias (see -fig list), or all")
		reps       = flag.Int("reps", 3, "repetitions per scenario (paper: 10)")
		scale      = flag.Float64("scale", 0.04, "fraction of the paper's transfer sizes (paper: 1.0)")
		seed       = flag.Uint64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "concurrent simulator runs per experiment (0 = all CPUs, 1 = serial; results are identical either way)")
		shards     = flag.Int("shards", 0, "parallel partition workers inside each fat-tree run (0 = monolithic engine; any positive count yields identical results)")
		quiet      = flag.Bool("q", false, "suppress progress lines")
		cacheDir   = flag.String("cache-dir", greenenvy.DefaultCacheDir(), "persistent result cache directory (empty disables persistence)")
		noCache    = flag.Bool("no-cache", false, "bypass the persistent result cache (force full recomputation)")
		cacheClear = flag.Bool("cache-clear", false, "empty the cache directory before running")
		scenario   = flag.String("scenario", "", "compile and register a scenario spec file (.json or .toml); runs it unless -fig is also given")
		svgDir     = flag.String("svg", "", "also write figure SVGs into this directory")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (view with `go tool pprof`)")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	// A loaded spec file becomes the selected experiment unless -fig was
	// given explicitly (then it merely joins the registry, e.g. for
	// `-scenario f.toml -fig list` or `-fig all`).
	if *scenario != "" {
		name, err := greenenvy.RegisterScenarioFile(*scenario)
		if err != nil {
			fmt.Fprintln(os.Stderr, "greenbench:", err)
			os.Exit(1)
		}
		figSet := false
		flag.Visit(func(f *flag.Flag) { figSet = figSet || f.Name == "fig" })
		if !figSet {
			*fig = name
		}
	}

	if *fig == "list" {
		printList()
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "greenbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "greenbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *cacheClear && *cacheDir != "" {
		if err := greenenvy.ClearCache(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "greenbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cleared cache %s\n", *cacheDir)
	}

	o := greenenvy.Options{
		Reps: *reps, Scale: *scale, Seed: *seed, Workers: *workers, Shards: *shards,
		CacheDir: *cacheDir, NoCache: *noCache, Verbose: !*quiet,
	}
	err := run(*fig, o, *svgDir)
	printCacheStats(*cacheDir, *noCache)

	if *memprofile != "" {
		f, merr := os.Create(*memprofile)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "greenbench:", merr)
			os.Exit(1)
		}
		runtime.GC() // surface live objects, not transient garbage
		if merr := pprof.WriteHeapProfile(f); merr != nil {
			fmt.Fprintln(os.Stderr, "greenbench:", merr)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", *memprofile)
	}

	if err != nil {
		fmt.Fprintln(os.Stderr, "greenbench:", err)
		// os.Exit would skip the deferred StopCPUProfile; the profile is
		// already flushed for the success path, so just exit nonzero here.
		if *cpuprofile != "" {
			pprof.StopCPUProfile()
		}
		os.Exit(1)
	}
}

// printList enumerates the experiment registry.
func printList() {
	fmt.Printf("%-12s %-8s %-8s %s\n", "NAME", "ALIASES", "SECTION", "DESCRIPTION")
	for _, e := range greenenvy.Experiments() {
		fmt.Printf("%-12s %-8s %-8s %s\n", e.Name, strings.Join(e.Aliases, ","), e.Section, e.Description)
	}
}

// printCacheStats reports the persistent cache's accounting for this
// invocation on stderr: how many per-repetition results were replayed from
// disk versus simulated. Silent when the cache is disabled or untouched
// (analytic-only figures never consult it).
func printCacheStats(dir string, noCache bool) {
	if dir == "" || noCache {
		return
	}
	st := greenenvy.CacheStatsFor(dir)
	total := st.Hits + st.Misses
	if total == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "cache: hits=%d misses=%d (%.0f%% hits), %.1f KiB read, %.1f KiB written (%s)\n",
		st.Hits, st.Misses, float64(st.Hits)/float64(total)*100,
		float64(st.BytesRead)/1024, float64(st.BytesWritten)/1024, dir)
}

// writeSVG renders a result into dir, if set.
func writeSVG(dir, name string, r greenenvy.Result) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	svg, err := r.SVG()
	if err != nil {
		return err
	}
	path := filepath.Join(dir, name+".svg")
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// run resolves the -fig argument through the registry and executes the
// selected experiments: print the table, optionally write the SVG.
func run(fig string, o greenenvy.Options, svgDir string) error {
	var selected []greenenvy.Experiment
	if fig == "all" {
		selected = greenenvy.Experiments()
	} else if e, ok := greenenvy.LookupExperiment(fig); ok {
		selected = []greenenvy.Experiment{e}
	} else {
		return fmt.Errorf("unknown experiment %q (names: %s; `greenbench -fig list` shows aliases and descriptions)",
			fig, strings.Join(greenenvy.ExperimentNames(), ", "))
	}

	for _, e := range selected {
		res, err := e.Run(o)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		fmt.Println(res.Table())
		if err := writeSVG(svgDir, e.Name, res); err != nil {
			return fmt.Errorf("%s svg: %w", e.Name, err)
		}
	}
	return nil
}
