// Command greenbench regenerates the paper's figures on the simulated
// testbed and prints the same rows/series the paper reports.
//
// Usage:
//
//	greenbench -fig 1            # Figure 1: unfairness sweep
//	greenbench -fig 5 -scale 0.1 # Figure 5 at 5 GB per run
//	greenbench -fig all -reps 10 -scale 1   # full paper parameters
//	greenbench -fig theorem      # Theorem 1 verification
//	greenbench -fig scheduler    # §5 SRPT-vs-fair scheduler comparison
//	greenbench -fig 5 -cpuprofile cpu.pprof -memprofile mem.pprof
//	                             # profile a run; inspect with `go tool pprof`
//
// Results are memoized per (experiment cell, repetition) in a persistent
// content-addressed cache (default: the per-user cache directory), so
// regenerating a figure after a plotting change replays from disk instead
// of simulating. `-no-cache` bypasses it, `-cache-clear` empties it first,
// and a `cache: hits=… misses=…` summary is printed to stderr after runs
// that touch simulation.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"greenenvy"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "figure to regenerate: 1..8, theorem, scheduler, or all")
		reps       = flag.Int("reps", 3, "repetitions per scenario (paper: 10)")
		scale      = flag.Float64("scale", 0.04, "fraction of the paper's transfer sizes (paper: 1.0)")
		seed       = flag.Uint64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "concurrent simulator runs per experiment (0 = all CPUs, 1 = serial; results are identical either way)")
		quiet      = flag.Bool("q", false, "suppress progress lines")
		cacheDir   = flag.String("cache-dir", greenenvy.DefaultCacheDir(), "persistent result cache directory (empty disables persistence)")
		noCache    = flag.Bool("no-cache", false, "bypass the persistent result cache (force full recomputation)")
		cacheClear = flag.Bool("cache-clear", false, "empty the cache directory before running")
		svgDir     = flag.String("svg", "", "also write figure SVGs into this directory")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (view with `go tool pprof`)")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "greenbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "greenbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *cacheClear && *cacheDir != "" {
		if err := greenenvy.ClearCache(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "greenbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cleared cache %s\n", *cacheDir)
	}

	o := greenenvy.Options{
		Reps: *reps, Scale: *scale, Seed: *seed, Workers: *workers,
		CacheDir: *cacheDir, NoCache: *noCache, Verbose: !*quiet,
	}
	err := run(*fig, o, *svgDir)
	printCacheStats(*cacheDir, *noCache)

	if *memprofile != "" {
		f, merr := os.Create(*memprofile)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "greenbench:", merr)
			os.Exit(1)
		}
		runtime.GC() // surface live objects, not transient garbage
		if merr := pprof.WriteHeapProfile(f); merr != nil {
			fmt.Fprintln(os.Stderr, "greenbench:", merr)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", *memprofile)
	}

	if err != nil {
		fmt.Fprintln(os.Stderr, "greenbench:", err)
		// os.Exit would skip the deferred StopCPUProfile; the profile is
		// already flushed for the success path, so just exit nonzero here.
		if *cpuprofile != "" {
			pprof.StopCPUProfile()
		}
		os.Exit(1)
	}
}

// printCacheStats reports the persistent cache's accounting for this
// invocation on stderr: how many per-repetition results were replayed from
// disk versus simulated. Silent when the cache is disabled or untouched
// (analytic-only figures never consult it).
func printCacheStats(dir string, noCache bool) {
	if dir == "" || noCache {
		return
	}
	st := greenenvy.CacheStatsFor(dir)
	total := st.Hits + st.Misses
	if total == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "cache: hits=%d misses=%d (%.0f%% hits), %.1f KiB read, %.1f KiB written (%s)\n",
		st.Hits, st.Misses, float64(st.Hits)/float64(total)*100,
		float64(st.BytesRead)/1024, float64(st.BytesWritten)/1024, dir)
}

// svgResult is implemented by results that can render themselves.
type svgResult interface {
	SVG() (string, error)
}

func writeSVG(dir, name string, r svgResult) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	svg, err := r.SVG()
	if err != nil {
		return err
	}
	path := filepath.Join(dir, name+".svg")
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func run(fig string, o greenenvy.Options, svgDir string) error {
	type tabler interface{ Table() string }
	type job struct {
		name string
		fn   func(greenenvy.Options) (tabler, error)
	}
	jobs := map[string]job{
		"1": {"fig1", func(o greenenvy.Options) (tabler, error) { return greenenvy.RunFig1(o) }},
		"2": {"fig2", func(o greenenvy.Options) (tabler, error) { return greenenvy.RunFig2(o) }},
		"3": {"fig3", func(o greenenvy.Options) (tabler, error) { return greenenvy.RunFig3(o) }},
		"4": {"fig4", func(o greenenvy.Options) (tabler, error) { return greenenvy.RunFig4(o) }},
		"5": {"fig5", func(o greenenvy.Options) (tabler, error) { return greenenvy.RunFig5(o) }},
		"6": {"fig6", func(o greenenvy.Options) (tabler, error) { return greenenvy.RunFig6(o) }},
		"7": {"fig7", func(o greenenvy.Options) (tabler, error) { return greenenvy.RunFig7(o) }},
		"8": {"fig8", func(o greenenvy.Options) (tabler, error) { return greenenvy.RunFig8(o) }},
		"theorem": {"theorem", func(o greenenvy.Options) (tabler, error) {
			s, err := theoremReport()
			return stringTable(s), err
		}},
		"scheduler": {"scheduler", func(o greenenvy.Options) (tabler, error) {
			s, err := schedulerReport()
			return stringTable(s), err
		}},
		"incast":     {"incast", func(o greenenvy.Options) (tabler, error) { return greenenvy.RunIncast(o) }},
		"samesender": {"samesender", func(o greenenvy.Options) (tabler, error) { return greenenvy.RunSameSender(o) }},
		"ablations":  {"ablations", func(o greenenvy.Options) (tabler, error) { return greenenvy.RunAblations() }},
		"frontier": {"frontier", func(o greenenvy.Options) (tabler, error) {
			s, err := frontierReport()
			return stringTable(s), err
		}},
		"production": {"production", func(o greenenvy.Options) (tabler, error) { return greenenvy.RunProduction(o) }},
		"workload":   {"workload", func(o greenenvy.Options) (tabler, error) { return greenenvy.RunWorkload(o) }},
	}

	order := []string{"1", "2", "3", "4", "5", "6", "7", "8", "theorem", "scheduler", "incast", "samesender", "ablations", "frontier", "production", "workload"}
	var selected []string
	if fig == "all" {
		selected = order
	} else if _, ok := jobs[fig]; ok {
		selected = []string{fig}
	} else {
		return fmt.Errorf("unknown figure %q (use 1..8, theorem, scheduler, incast, samesender, ablations, all)", fig)
	}

	for _, key := range selected {
		j := jobs[key]
		res, err := j.fn(o)
		if err != nil {
			return fmt.Errorf("%s: %w", j.name, err)
		}
		fmt.Println(res.Table())
		if s, ok := res.(svgResult); ok {
			if err := writeSVG(svgDir, j.name, s); err != nil {
				return fmt.Errorf("%s svg: %w", j.name, err)
			}
		}
	}
	return nil
}

// stringTable adapts a plain report string to the tabler interface.
type stringTable string

// Table returns the report text.
func (s stringTable) Table() string { return string(s) }

func theoremReport() (string, error) {
	p := greenenvy.PaperPowerFunc()
	out := "Theorem 1 — fair share is the least energy-efficient allocation\n"
	out += fmt.Sprintf("curve strictly concave on [0, 10G]: %v\n", greenenvy.IsStrictlyConcave(p, 10e9, 1000))
	for _, y := range [][]float64{{10e9, 0}, {7.5e9, 2.5e9}, {6e9, 4e9}, {4e9, 3e9, 3e9}} {
		fair, yp, holds, err := greenenvy.CheckTheorem1(p, 10e9, y)
		if err != nil {
			return "", err
		}
		out += fmt.Sprintf("  y=%v Gb/s: P(fair)=%.2f W > P(y)=%.2f W  holds=%v\n", gbps(y), fair, yp, holds)
	}
	return out, nil
}

func gbps(y []float64) []float64 {
	out := make([]float64, len(y))
	for i, v := range y {
		out[i] = v / 1e9
	}
	return out
}

func frontierReport() (string, error) {
	p := greenenvy.PaperPowerFunc()
	a, err := greenenvy.VerifyAssumptions(p, 10e9)
	if err != nil {
		return "", err
	}
	out := "Fairness/energy frontier (2× 10 Gbit flows, calibrated curve)\n"
	out += fmt.Sprintf("hypotheses hold: concave=%v increasing=%v decreasing-marginal=%v\n",
		a.StrictlyConcave, a.Increasing, a.DecreasingMarginal)
	pts, err := greenenvy.FairnessEnergyFrontier(1.25e9, 10e9, p, 11)
	if err != nil {
		return "", err
	}
	out += fmt.Sprintf("%-8s %8s %12s %10s\n", "weight", "jain", "energy (J)", "savings")
	for _, pt := range pts {
		out += fmt.Sprintf("%-8.2f %8.3f %12.1f %9.2f%%\n", pt.Weight, pt.Jain, pt.EnergyJ, pt.SavingsFrac*100)
	}
	return out, nil
}

func schedulerReport() (string, error) {
	p := greenenvy.PaperPowerFunc()
	flows := []greenenvy.Flow{{Bytes: 1.25e9}, {Bytes: 1.25e9}}
	c, err := greenenvy.CompareSchedulers(flows, 10e9, p)
	if err != nil {
		return "", err
	}
	out := "§5 — energy-aware SRPT scheduler vs processor sharing (2× 10 Gbit flows)\n"
	out += fmt.Sprintf("  fair energy  %.1f J   SRPT energy %.1f J   saving %.1f%%\n", c.PSEnergyJ, c.SRPTEnergyJ, c.SavingFrac*100)
	out += fmt.Sprintf("  fair mean FCT %.2f s  SRPT mean FCT %.2f s  speedup ×%.2f\n", c.PSMeanFCT, c.SRPTMeanFCT, c.FCTSpeedup)
	dc := greenenvy.PaperDatacenter()
	usd, err := dc.YearlySavingsUSD(c.SavingFrac)
	if err != nil {
		return "", err
	}
	out += fmt.Sprintf("  at datacenter scale: $%.0fM/year\n", usd/1e6)
	return out, nil
}
