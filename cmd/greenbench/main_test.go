package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"greenenvy"
)

func fastOpts() greenenvy.Options {
	return greenenvy.Options{Reps: 1, Scale: 0.004, Seed: 1}
}

func TestRunUnknownFigure(t *testing.T) {
	err := run("42", fastOpts(), "")
	if err == nil {
		t.Fatal("unknown figure accepted")
	}
	if !strings.Contains(err.Error(), "-fig list") {
		t.Fatalf("error %q should point at -fig list", err)
	}
}

func TestRunAnalyticReports(t *testing.T) {
	for _, fig := range []string{"theorem", "scheduler", "frontier", "ablations"} {
		if err := run(fig, fastOpts(), ""); err != nil {
			t.Fatalf("%s: %v", fig, err)
		}
	}
}

// reportTable runs a registry experiment and returns its table, so the
// content checks below cover exactly what `greenbench -fig <name>` prints.
func reportTable(t *testing.T, fig string) string {
	t.Helper()
	e, ok := greenenvy.LookupExperiment(fig)
	if !ok {
		t.Fatalf("%s not registered", fig)
	}
	res, err := e.Run(fastOpts())
	if err != nil {
		t.Fatalf("%s: %v", fig, err)
	}
	return res.Table()
}

func TestTheoremReportContent(t *testing.T) {
	s := reportTable(t, "theorem")
	if !strings.Contains(s, "holds=true") || strings.Contains(s, "holds=false") {
		t.Fatalf("theorem report:\n%s", s)
	}
}

func TestFrontierReportContent(t *testing.T) {
	if s := reportTable(t, "frontier"); !strings.Contains(s, "concave=true") {
		t.Fatalf("frontier report:\n%s", s)
	}
}

func TestSchedulerReportContent(t *testing.T) {
	if s := reportTable(t, "scheduler"); !strings.Contains(s, "saving 16.3%") {
		t.Fatalf("scheduler report:\n%s", s)
	}
}

func TestRunFigureWithSVG(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the simulator")
	}
	dir := t.TempDir()
	if err := run("3", greenenvy.Options{Reps: 1, Scale: 0.02, Seed: 1}, dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Fatal("fig3.svg is not an SVG")
	}
}

// TestRunWarmCacheReplaysFromDisk drives the same end-to-end path the CI
// cache-smoke job exercises: a figure run twice against one cache directory
// must replay every entry on the second pass.
func TestRunWarmCacheReplaysFromDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the simulator")
	}
	dir := t.TempDir()
	o := fastOpts()
	o.CacheDir = dir
	if err := run("3", o, ""); err != nil {
		t.Fatal(err)
	}
	cold := greenenvy.CacheStatsFor(dir)
	if cold.Misses == 0 || cold.Hits != 0 || cold.Puts != cold.Misses {
		t.Fatalf("cold run stats %+v, want only misses+puts", cold)
	}
	if err := run("3", o, ""); err != nil {
		t.Fatal(err)
	}
	warm := greenenvy.CacheStatsFor(dir)
	if warm.Hits != cold.Misses || warm.Misses != cold.Misses {
		t.Fatalf("second run not fully warm: cold %+v, warm %+v", cold, warm)
	}
}
