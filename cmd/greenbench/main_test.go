package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"greenenvy"
)

func fastOpts() greenenvy.Options {
	return greenenvy.Options{Reps: 1, Scale: 0.004, Seed: 1}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run("42", fastOpts(), ""); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunAnalyticReports(t *testing.T) {
	for _, fig := range []string{"theorem", "scheduler", "frontier", "ablations"} {
		if err := run(fig, fastOpts(), ""); err != nil {
			t.Fatalf("%s: %v", fig, err)
		}
	}
}

func TestTheoremReportContent(t *testing.T) {
	s, err := theoremReport()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "holds=true") || strings.Contains(s, "holds=false") {
		t.Fatalf("theorem report:\n%s", s)
	}
}

func TestFrontierReportContent(t *testing.T) {
	s, err := frontierReport()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "concave=true") {
		t.Fatalf("frontier report:\n%s", s)
	}
}

func TestSchedulerReportContent(t *testing.T) {
	s, err := schedulerReport()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "saving 16.3%") {
		t.Fatalf("scheduler report:\n%s", s)
	}
}

func TestRunFigureWithSVG(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the simulator")
	}
	dir := t.TempDir()
	if err := run("3", greenenvy.Options{Reps: 1, Scale: 0.02, Seed: 1}, dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Fatal("fig3.svg is not an SVG")
	}
}

func TestGbpsHelper(t *testing.T) {
	out := gbps([]float64{5e9, 10e9})
	if out[0] != 5 || out[1] != 10 {
		t.Fatalf("gbps = %v", out)
	}
}
