// Command simbench runs the simulator's hot-path microbenchmarks (the same
// bodies `go test -bench` runs in internal/sim and internal/netsim, shared
// via internal/perf) and records the results as JSON so the repo keeps a
// perf trajectory from PR to PR.
//
// Usage:
//
//	simbench                      # print results to stdout
//	simbench -o BENCH_sim.json    # write a result file
//	simbench -benchtime 2s -label post-pooling -o BENCH_sim.json
//
// When -o names an existing file containing a previous run, the new entry is
// appended to its history rather than replacing it, so before/after pairs
// live side by side in one file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"greenenvy/internal/perf"
)

// benchResult is one benchmark's outcome in a form stable enough to diff
// across commits.
type benchResult struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// benchRun is one invocation of simbench: environment plus all results.
type benchRun struct {
	Label     string        `json:"label,omitempty"`
	Date      string        `json:"date"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	Benchtime string        `json:"benchtime"`
	Results   []benchResult `json:"results"`
}

// benchFile is the on-disk shape of BENCH_sim.json: a history of runs,
// oldest first.
type benchFile struct {
	Runs []benchRun `json:"runs"`
}

var benchmarks = []struct {
	name string
	fn   func(*testing.B)
}{
	{"EngineEventLoop", perf.BenchEngineEventLoop},
	{"TimerRearm", perf.BenchTimerRearm},
	{"LinkDataPacket", perf.BenchLinkDataPacket},
	{"LinkPureAck", perf.BenchLinkPureAck},
	{"DropTailQueue", perf.BenchDropTailQueue},
	{"DRRQueue", perf.BenchDRRQueue},
	{"SweepCacheWarm", perf.BenchSweepCacheWarm},
	{"SweepCacheCold", perf.BenchSweepCacheCold},
	{"DumbbellTransfer", perf.BenchDumbbellTransfer},
	{"WorkloadChurn", perf.BenchWorkloadChurn},
	{"WorkloadScaleStreaming", perf.BenchWorkloadScaleStreaming},
	{"FatTreeIncast", perf.BenchFatTreeIncast},
	{"ShardedIncastMono", perf.BenchShardedIncastMono},
	{"ShardedIncastW1", perf.BenchShardedIncastW1},
	{"ShardedIncastW2", perf.BenchShardedIncastW2},
	{"ShardedIncastW4", perf.BenchShardedIncastW4},
	{"ShardedIncastW8", perf.BenchShardedIncastW8},
}

func main() {
	out := flag.String("o", "", "append results to this JSON file (stdout if empty)")
	benchtime := flag.Duration("benchtime", time.Second, "minimum time per benchmark")
	label := flag.String("label", "", "free-form label stored with this run (e.g. a commit or PR tag)")
	flag.Parse()

	// testing.Benchmark honours -test.benchtime; register the testing
	// package's flags and forward ours so each body runs long enough to
	// settle.
	testing.Init()
	if err := flag.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}

	run := benchRun{
		Label:     *label,
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Benchtime: benchtime.String(),
	}
	for _, bm := range benchmarks {
		fmt.Fprintf(os.Stderr, "running %-18s ... ", bm.name)
		r := testing.Benchmark(bm.fn)
		res := benchResult{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Metrics[k] = v
			}
		}
		run.Results = append(run.Results, res)
		fmt.Fprintf(os.Stderr, "%10.1f ns/op  %4d allocs/op\n", res.NsPerOp, res.AllocsPerOp)
	}

	var file benchFile
	if *out != "" {
		if prev, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(prev, &file); err != nil {
				fmt.Fprintf(os.Stderr, "simbench: %s exists but is not a result file: %v\n", *out, err)
				os.Exit(1)
			}
		}
	}
	file.Runs = append(file.Runs, run)

	enc, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d runs)\n", *out, len(file.Runs))
}
