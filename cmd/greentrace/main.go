// Command greentrace runs a single transfer on the simulated testbed and
// emits a CSV time series — congestion window, instantaneous throughput,
// bottleneck queue depth, and sender power — for plotting CCA dynamics.
//
// Usage:
//
//	greentrace -cca cubic -mtu 9000 -bytes 1000000000 > trace.csv
//	greentrace -cca bbr -interval 1ms
package main

import (
	"flag"
	"fmt"
	"os"

	"greenenvy/internal/iperf"
	"greenenvy/internal/sim"
	"greenenvy/internal/testbed"
)

func main() {
	var (
		ccaName  = flag.String("cca", "cubic", "congestion control algorithm")
		mtu      = flag.Int("mtu", 9000, "MTU in bytes")
		bytes    = flag.Uint64("bytes", 1_000_000_000, "transfer size")
		interval = flag.Duration("interval", 0, "sample interval (default 1ms simulated)")
		load     = flag.Float64("load", 0, "background CPU load fraction")
		target   = flag.Int64("b", 0, "target bitrate (iperf3 -b), 0 = unlimited")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	if err := run(*ccaName, *mtu, *bytes, sim.Duration(*interval), *load, *target, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "greentrace:", err)
		os.Exit(1)
	}
}

func run(ccaName string, mtu int, bytes uint64, interval sim.Duration, load float64, target int64, seed uint64) error {
	tb := testbed.New(testbed.Options{Seed: seed, MeasureNoise: 1e-12})
	if load > 0 {
		if err := tb.AddLoad(0, load); err != nil {
			return err
		}
	}
	spec := iperf.Spec{Bytes: bytes, CCA: ccaName, TargetBps: target}
	spec.Config.MTU = mtu
	client, err := tb.AddFlow(0, spec)
	if err != nil {
		return err
	}

	step := interval
	if step <= 0 {
		step = sim.Millisecond
	}

	meter := tb.SenderMeter(0)
	curve := meter.Curve
	fmt.Println("t_s,cwnd_bytes,inflight_bytes,goodput_gbps,queue_bytes,retransmits,power_w,energy_j")
	var lastBytes uint64
	var lastJ float64
	var sample func()
	sample = func() {
		now := tb.Engine.Now()
		meter.Sync()
		snd := client.Sender()
		rcv := client.Receiver()
		gbps := float64(rcv.TotalReceived-lastBytes) * 8 / step.Seconds() / 1e9
		lastBytes = rcv.TotalReceived
		j := meter.Joules()
		watts := (j - lastJ) / step.Seconds()
		lastJ = j
		fmt.Printf("%.6f,%d,%d,%.3f,%d,%d,%.2f,%.3f\n",
			now.Seconds(), int64(snd.CC().CWnd()), snd.BytesInFlight(), gbps,
			tb.Net.Bottleneck.Queue().Bytes(), snd.Retransmits, watts, j)
		if !client.Done() {
			tb.Engine.After(step, sample)
		}
	}
	tb.Engine.After(step, sample)

	res, err := tb.Run(sim.Duration(bytes/50e6+30) * sim.Second)
	if err != nil {
		return err
	}
	r := res.Reports[0]
	fmt.Fprintf(os.Stderr, "# %s  energy=%.1fJ  power=%.2fW  idle-equivalent=%.2fW\n",
		r.String(), res.SenderEnergyJ[0], res.AvgSenderPowerW, curve.PowerAt(0))
	return nil
}
