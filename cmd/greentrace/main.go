// Command greentrace runs a single transfer on the simulated testbed and
// emits a CSV time series — congestion window, instantaneous throughput,
// bottleneck queue depth, and sender power — for plotting CCA dynamics.
//
// Usage:
//
//	greentrace -cca cubic -mtu 9000 -bytes 1000000000 > trace.csv
//	greentrace -cca bbr -interval 1ms
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"greenenvy/internal/iperf"
	"greenenvy/internal/sim"
	"greenenvy/internal/testbed"
)

// traceConfig collects the knobs for one traced transfer.
type traceConfig struct {
	CCA      string
	MTU      int
	Bytes    uint64
	Interval sim.Duration // 0 = 1ms simulated
	Load     float64
	Target   int64 // iperf3 -b bitrate, 0 = unlimited
	Seed     uint64
}

func main() {
	var (
		ccaName  = flag.String("cca", "cubic", "congestion control algorithm")
		mtu      = flag.Int("mtu", 9000, "MTU in bytes")
		bytes    = flag.Uint64("bytes", 1_000_000_000, "transfer size")
		interval = flag.Duration("interval", 0, "sample interval (default 1ms simulated)")
		load     = flag.Float64("load", 0, "background CPU load fraction")
		target   = flag.Int64("b", 0, "target bitrate (iperf3 -b), 0 = unlimited")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := traceConfig{
		CCA: *ccaName, MTU: *mtu, Bytes: *bytes,
		Interval: sim.Duration(*interval), Load: *load, Target: *target, Seed: *seed,
	}
	out := bufio.NewWriter(os.Stdout)
	err := trace(out, os.Stderr, cfg)
	if ferr := out.Flush(); err == nil {
		err = ferr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "greentrace:", err)
		os.Exit(1)
	}
}

// trace runs the transfer described by cfg, writing the CSV series to w and
// the one-line run summary to summary. Output is deterministic for a fixed
// config: the testbed is seeded and samples on simulated time.
func trace(w, summary io.Writer, cfg traceConfig) error {
	tb := testbed.New(testbed.Options{Seed: cfg.Seed, MeasureNoise: 1e-12})
	if cfg.Load > 0 {
		if err := tb.AddLoad(0, cfg.Load); err != nil {
			return err
		}
	}
	spec := iperf.Spec{Bytes: cfg.Bytes, CCA: cfg.CCA, TargetBps: cfg.Target}
	spec.Config.MTU = cfg.MTU
	client, err := tb.AddFlow(0, spec)
	if err != nil {
		return err
	}

	step := cfg.Interval
	if step <= 0 {
		step = sim.Millisecond
	}

	meter := tb.SenderMeter(0)
	curve := meter.Curve
	fmt.Fprintln(w, "t_s,cwnd_bytes,inflight_bytes,goodput_gbps,queue_bytes,retransmits,power_w,energy_j")
	var lastBytes uint64
	var lastJ float64
	var sample func()
	sample = func() {
		now := tb.Engine.Now()
		meter.Sync()
		snd := client.Sender()
		rcv := client.Receiver()
		gbps := float64(rcv.TotalReceived-lastBytes) * 8 / step.Seconds() / 1e9
		lastBytes = rcv.TotalReceived
		j := meter.Joules()
		watts := (j - lastJ) / step.Seconds()
		lastJ = j
		fmt.Fprintf(w, "%.6f,%d,%d,%.3f,%d,%d,%.2f,%.3f\n",
			now.Seconds(), int64(snd.CC().CWnd()), snd.BytesInFlight(), gbps,
			tb.Net.Bottleneck.Queue().Bytes(), snd.Retransmits, watts, j)
		if !client.Done() {
			tb.Engine.After(step, sample)
		}
	}
	tb.Engine.After(step, sample)

	res, err := tb.Run(sim.Duration(cfg.Bytes/50e6+30) * sim.Second)
	if err != nil {
		return err
	}
	r := res.Reports[0]
	fmt.Fprintf(summary, "# %s  energy=%.1fJ  power=%.2fW  idle-equivalent=%.2fW\n",
		r.String(), res.SenderEnergyJ[0], res.AvgSenderPowerW, curve.PowerAt(0))
	return nil
}
