package main

import (
	"bytes"
	"strings"
	"testing"
)

// smallCfg keeps the traced transfer tiny so the test runs in well under a
// second while still emitting a few hundred samples.
func smallCfg() traceConfig {
	return traceConfig{CCA: "cubic", MTU: 1500, Bytes: 2_000_000, Seed: 7}
}

const wantHeader = "t_s,cwnd_bytes,inflight_bytes,goodput_gbps,queue_bytes,retransmits,power_w,energy_j"

func runTrace(t *testing.T, cfg traceConfig) (csv, summary string) {
	t.Helper()
	var out, sum bytes.Buffer
	if err := trace(&out, &sum, cfg); err != nil {
		t.Fatalf("trace: %v", err)
	}
	return out.String(), sum.String()
}

func TestTraceCSVShape(t *testing.T) {
	csv, summary := runTrace(t, smallCfg())

	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if lines[0] != wantHeader {
		t.Fatalf("header = %q, want %q", lines[0], wantHeader)
	}
	if len(lines) < 3 {
		t.Fatalf("only %d CSV lines; want a header plus several samples", len(lines))
	}
	wantFields := strings.Count(wantHeader, ",") + 1
	for i, line := range lines[1:] {
		if got := strings.Count(line, ",") + 1; got != wantFields {
			t.Fatalf("row %d has %d fields, want %d: %q", i+1, got, wantFields, line)
		}
	}

	if !strings.HasPrefix(summary, "# ") {
		t.Errorf("summary = %q, want it to start with %q", summary, "# ")
	}
	for _, want := range []string{"energy=", "power=", "idle-equivalent="} {
		if !strings.Contains(summary, want) {
			t.Errorf("summary %q missing %q", summary, want)
		}
	}
}

func TestTraceDeterministicForFixedSeed(t *testing.T) {
	csv1, sum1 := runTrace(t, smallCfg())
	csv2, sum2 := runTrace(t, smallCfg())
	if csv1 != csv2 {
		t.Error("same-seed traces differ; trace output must be deterministic")
	}
	if sum1 != sum2 {
		t.Errorf("same-seed summaries differ:\n%q\n%q", sum1, sum2)
	}

	cfg := smallCfg()
	cfg.Seed = 8
	csv3, _ := runTrace(t, cfg)
	if csv3 == csv1 {
		t.Error("different seeds produced identical traces; measurement noise should differ")
	}
}
