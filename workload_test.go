package greenenvy

import (
	"strings"
	"testing"
)

func TestRunWorkloadEfficiencyRisesWithLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the simulator")
	}
	res, err := RunWorkload(Options{Reps: 1, Scale: 0.02, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("points = %d, want 2 dists × 3 loads", len(res.Points))
	}
	byDist := map[string][]WorkloadPoint{}
	for _, p := range res.Points {
		byDist[p.Dist] = append(byDist[p.Dist], p)
		if p.Flows == 0 || p.GBMoved <= 0 || p.EnergyPerGB <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
	for dist, pts := range byDist {
		// Concavity at workload scale: J/GB strictly falls with load.
		for i := 1; i < len(pts); i++ {
			if pts[i].EnergyPerGB >= pts[i-1].EnergyPerGB {
				t.Errorf("%s: J/GB rose with load: %+v", dist, pts)
			}
		}
		// Queueing at workload scale: p99 FCT rises with load.
		if pts[len(pts)-1].P99FCTms <= pts[0].P99FCTms {
			t.Errorf("%s: p99 FCT did not grow with load", dist)
		}
	}
	if !strings.Contains(res.Table(), "websearch") || !strings.Contains(res.Table(), "datamining") {
		t.Fatal("table missing workloads")
	}
}
