package greenenvy

import (
	"math"
	"strings"
	"testing"
)

// tiny returns fast options for CI-grade runs: 1/50 of the paper's
// transfer sizes, 2 repetitions.
func tiny() Options { return Options{Reps: 2, Scale: 0.02, Seed: 7} }

func TestRunFig1ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the simulator")
	}
	res, err := RunFig1(Options{Reps: 2, Scale: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 11 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Points[0].Fraction != 0.5 || math.Abs(res.Points[0].SavingsPct) > 1e-9 {
		t.Fatalf("fair point wrong: %+v", res.Points[0])
	}
	// Headline: the serial extreme saves ~16%.
	last := res.Points[len(res.Points)-1]
	if last.SavingsPct < 12 || last.SavingsPct > 20 {
		t.Fatalf("extreme savings = %.2f%%, want ~16%%", last.SavingsPct)
	}
	// Shape: savings roughly increase away from fair (tolerate small
	// measurement wobble between adjacent points).
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].SavingsPct < res.Points[i-1].SavingsPct-1.5 {
			t.Fatalf("savings regressed at f=%v: %v after %v",
				res.Points[i].Fraction, res.Points[i].SavingsPct, res.Points[i-1].SavingsPct)
		}
	}
	// Jain index decreases with unfairness.
	if res.Points[0].JainIndex < 0.98 {
		t.Fatalf("fair point Jain = %v, want ~1", res.Points[0].JainIndex)
	}
	if math.Abs(last.JainIndex-0.5) > 1e-9 {
		t.Fatalf("serial point Jain = %v, want 0.5", last.JainIndex)
	}
	// Analytic prediction agrees with measurement at the extreme.
	if math.Abs(last.SavingsPct-last.AnalyticSavingsPct) > 4 {
		t.Fatalf("measured %v%% vs analytic %v%% diverge", last.SavingsPct, last.AnalyticSavingsPct)
	}
	if !strings.Contains(res.Table(), "Figure 1") {
		t.Fatal("table header missing")
	}
}

func TestRunFig2ConcaveCurve(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the simulator")
	}
	res, err := RunFig2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 11 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if math.Abs(res.IdleW-21.49) > 0.1 {
		t.Fatalf("idle = %v, want 21.49", res.IdleW)
	}
	if math.Abs(res.HalfRateW-34.23) > 1.5 {
		t.Fatalf("5 Gb/s = %v, want ~34.23", res.HalfRateW)
	}
	if math.Abs(res.LineRateW-35.82) > 1.5 {
		t.Fatalf("10 Gb/s = %v, want ~35.82", res.LineRateW)
	}
	// Strictly increasing and concave (first differences decreasing).
	prevW, prevD := res.Points[0].SmoothW, math.Inf(1)
	for _, p := range res.Points[1:] {
		if p.SmoothW <= prevW {
			t.Fatalf("power not increasing at %v Gb/s", p.Gbps)
		}
		d := p.SmoothW - prevW
		if d >= prevD+0.3 {
			t.Fatalf("marginal power increased at %v Gb/s: %v after %v", p.Gbps, d, prevD)
		}
		prevW, prevD = p.SmoothW, d
	}
	// Tangent strictly below smooth in the interior.
	for _, p := range res.Points[1 : len(res.Points)-1] {
		if p.TangentW >= p.SmoothW {
			t.Fatalf("tangent %v >= smooth %v at %v Gb/s", p.TangentW, p.SmoothW, p.Gbps)
		}
	}
	if !strings.Contains(res.Table(), "Figure 2") {
		t.Fatal("table header missing")
	}
}

func TestRunFig3Traces(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the simulator")
	}
	res, err := RunFig3(Options{Reps: 1, Scale: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fair) == 0 || len(res.Serial) == 0 {
		t.Fatal("empty traces")
	}
	// Fair trace: mid-run both flows near 5 Gb/s.
	mid := res.Fair[len(res.Fair)/2]
	if math.Abs(mid.Gbps[0]-5) > 1.5 || math.Abs(mid.Gbps[1]-5) > 1.5 {
		t.Fatalf("fair mid-run = %v, want ~5/5", mid.Gbps)
	}
	// Serial trace: early samples have flow 1 at ~10 and flow 2 at ~0.
	early := res.Serial[len(res.Serial)/4]
	if early.Gbps[0] < 8 || early.Gbps[1] > 1 {
		t.Fatalf("serial early = %v, want ~10/0", early.Gbps)
	}
	// And late samples the reverse.
	late := res.Serial[len(res.Serial)*3/4]
	if late.Gbps[1] < 8 || late.Gbps[0] > 1 {
		t.Fatalf("serial late = %v, want ~0/10", late.Gbps)
	}
	if !strings.Contains(res.Table(), "Figure 3") {
		t.Fatal("table header missing")
	}
}

func TestRunFig4LoadedCurves(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the simulator")
	}
	res, err := RunFig4(Options{Reps: 2, Scale: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	byLoad := map[float64][]Fig4Point{}
	for _, p := range res.Points {
		byLoad[p.Load] = append(byLoad[p.Load], p)
	}
	// Higher load strictly raises power at every bitrate.
	for i, load := range []float64{0.25, 0.50, 0.75} {
		lower := []float64{0, 0.25, 0.50}[i]
		for j := range byLoad[load] {
			if byLoad[load][j].MeanW <= byLoad[lower][j].MeanW {
				t.Fatalf("power at load %v not above load %v", load, lower)
			}
		}
	}
	// Unloaded curve hits the Fig 2 anchors approximately.
	for _, p := range byLoad[0] {
		if p.Gbps == 10 && math.Abs(p.MeanW-35.8) > 2 {
			t.Fatalf("unloaded 10G = %v, want ~35.8", p.MeanW)
		}
	}
	// §4.2 savings: clearly positive at low loads, decreasing with load.
	// At 75% load the paper's 0.17% is below this reduced-scale run's
	// measurement noise, so only require it to be ~zero (the closed-form
	// value is asserted analytically in internal/energy).
	prev := math.Inf(1)
	for _, s := range res.Savings {
		if s.Load <= 0.25 && s.SavingsPct <= 0 {
			t.Fatalf("savings at load %v = %v, want positive", s.Load, s.SavingsPct)
		}
		if s.Load > 0.25 && math.Abs(s.SavingsPct) > 1.0 {
			t.Fatalf("savings at load %v = %v, want ~0 within noise", s.Load, s.SavingsPct)
		}
		if s.SavingsPct >= prev+0.5 {
			t.Fatalf("savings did not shrink with load: %v", res.Savings)
		}
		prev = s.SavingsPct
	}
	if res.Savings[0].SavingsPct < 12 {
		t.Fatalf("unloaded savings = %v, want ~16", res.Savings[0].SavingsPct)
	}
	if res.DollarsPerYearAt1Pct != 10_000_000 {
		t.Fatalf("extrapolation = %v", res.DollarsPerYearAt1Pct)
	}
	if !strings.Contains(res.Table(), "Figure 4") {
		t.Fatal("table header missing")
	}
}

func TestRunCCASweepFigures5678(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is expensive")
	}
	o := tiny()
	sw, err := RunCCASweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Cells) != 40 {
		t.Fatalf("cells = %d, want 40", len(sw.Cells))
	}

	f5, err := RunFig5(o)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline costs more than the real loss-based CCAs.
	for _, mtu := range SweepMTUs {
		if f5.BaselinePremiumPct[mtu] <= 0 {
			t.Errorf("baseline premium at mtu %d = %v, want positive", mtu, f5.BaselinePremiumPct[mtu])
		}
	}
	// BBR2 alpha markedly worse than BBR v1.
	if f5.BBR2OverBBRPct < 15 {
		t.Errorf("bbr2 over bbr = %v%%, want large (~40%%)", f5.BBR2OverBBRPct)
	}
	// Bigger MTU always saves energy.
	for name, sav := range f5.MTUSavingsPct {
		if sav <= 0 {
			t.Errorf("MTU savings for %s = %v, want positive", name, sav)
		}
	}

	f6, err := RunFig6(o)
	if err != nil {
		t.Fatal(err)
	}
	if !(f6.EnergyPowerCorr < 0) {
		t.Errorf("corr(energy, power) = %v, want negative (paper -0.8)", f6.EnergyPowerCorr)
	}

	f7, err := RunFig7(o)
	if err != nil {
		t.Fatal(err)
	}
	if f7.Corr < 0.5 {
		t.Errorf("corr(fct, energy) = %v, want strongly positive", f7.Corr)
	}
	if !(f7.Cluster1500FCT > f7.ClusterBigFCT && f7.Cluster1500Energy > f7.ClusterBigEnergy) {
		t.Errorf("MTU-1500 cluster should dominate both axes: %+v", f7)
	}

	f8, err := RunFig8(o)
	if err != nil {
		t.Fatal(err)
	}
	// The raw overall statistic is diluted by the MTU axis (see
	// EXPERIMENTS.md); it must at least not be negative. Controlled for
	// MTU, loss and energy must correlate strongly.
	if f8.CorrExclBBR2 < -0.1 {
		t.Errorf("corr(retx, energy) = %v, want non-negative", f8.CorrExclBBR2)
	}
	if f8.WithinMTUCorr < 0.5 {
		t.Errorf("within-MTU corr(retx, energy) = %v, want strongly positive", f8.WithinMTUCorr)
	}
	if !f8.BaselineHasMostRetx {
		t.Error("baseline should have the most retransmissions at every MTU")
	}

	for _, tbl := range []string{f5.Table(), f6.Table(), f7.Table(), f8.Table()} {
		if !strings.Contains(tbl, "Figure") {
			t.Error("table header missing")
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := (Options{Scale: 2}).WithDefaults(); err == nil {
		t.Fatal("Scale > 1 did not return an error")
	}
	if _, err := (Options{Scale: -0.5}).WithDefaults(); err == nil {
		t.Fatal("negative Scale did not return an error")
	}
	o, err := Options{}.WithDefaults()
	if err != nil {
		t.Fatalf("zero Options: %v", err)
	}
	if o.Scale <= 0 || o.Reps <= 0 {
		t.Fatalf("WithDefaults left zero fields: %+v", o)
	}
}

func TestPaperOptions(t *testing.T) {
	p := Paper()
	if p.Reps != 10 || p.Scale != 1.0 {
		t.Fatalf("Paper() = %+v", p)
	}
}

func TestPublicAPITheorem(t *testing.T) {
	p := PaperPowerFunc()
	if !IsStrictlyConcave(p, 10e9, 200) {
		t.Fatal("paper curve not concave via public API")
	}
	fair, y, holds, err := CheckTheorem1(p, 10e9, []float64{10e9, 0})
	if err != nil || !holds || fair <= y {
		t.Fatalf("theorem via public API: fair=%v y=%v holds=%v err=%v", fair, y, holds, err)
	}
}

func TestPublicAPISchedulers(t *testing.T) {
	flows := []Flow{{Bytes: 1.25e9}, {Bytes: 1.25e9}}
	cmp, err := CompareSchedulers(flows, 10e9, PaperPowerFunc())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.SavingFrac < 0.14 || cmp.SavingFrac > 0.19 {
		t.Fatalf("SRPT saving = %v, want ~0.16", cmp.SavingFrac)
	}
}

func TestPublicAPIFrontier(t *testing.T) {
	p := PaperPowerFunc()
	a, err := VerifyAssumptions(p, 10e9)
	if err != nil || !a.Holds() {
		t.Fatalf("assumptions: %+v err=%v", a, err)
	}
	pts, err := FairnessEnergyFrontier(1.25e9, 10e9, p, 5)
	if err != nil || len(pts) != 5 {
		t.Fatalf("frontier: %v err=%v", pts, err)
	}
	if pts[4].SavingsFrac < 0.15 {
		t.Fatalf("frontier endpoint savings = %v", pts[4].SavingsFrac)
	}
}

func TestCCANamesOrder(t *testing.T) {
	names := CCANames()
	if len(names) != 10 || names[0] != "bbr" || names[9] != "bbr2" {
		t.Fatalf("CCANames = %v", names)
	}
}
