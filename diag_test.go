package greenenvy

import (
	"testing"

	"greenenvy/internal/iperf"
	"greenenvy/internal/testbed"
)

// TestDiagFig4Savings is a development diagnostic; run with -v.
func TestDiagFig4Savings(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic")
	}
	bytes := uint64(10 * paperGbit * 0.1)
	for _, serial := range []bool{false, true} {
		tb := testbed.New(testbed.Options{Senders: 2, UseDRR: !serial, Seed: 1, MeasureNoise: 1e-9})
		for i := 0; i < 2; i++ {
			if err := tb.AddLoad(i, 0.25); err != nil {
				t.Fatal(err)
			}
		}
		c1, _ := tb.AddFlow(0, iperf.Spec{Bytes: bytes, CCA: "cubic"})
		c2, _ := tb.AddFlow(1, iperf.Spec{Bytes: bytes, CCA: "cubic"})
		if serial {
			c2.StartAfter(c1)
		} else {
			tb.SetWeight(c1.Report().Flow, 0.5)
			tb.SetWeight(c2.Report().Flow, 0.5)
		}
		res, err := tb.Run(deadlineFor(2 * bytes))
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("serial=%v dur=%v totalJ=%.2f perHost=%v fct1=%.4f fct2=%.4f retx=%d",
			serial, res.Duration, res.TotalSenderJ, res.SenderEnergyJ,
			res.Reports[0].Seconds, res.Reports[1].Seconds, res.Retransmits)
	}
}
