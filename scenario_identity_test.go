package greenenvy

import (
	"testing"

	"greenenvy/internal/scenario"
)

// The behavior-preservation contract of the scenario refactor: the fig1 and
// fattree-incast experiments re-expressed as declarative specs must produce
// BYTE-IDENTICAL tables to the handwritten implementations at the same
// Options — for any worker count, since same-seed-same-bytes holds across
// parallelism. A drift here means the compiler's construction sequence
// diverged from the handwritten one (different RNG draw order, different
// config defaults, different table rendering) and the spec form is no
// longer a faithful spelling of the experiment.

// loadSpec parses one of the shipped example specs.
func loadSpec(t *testing.T, path string) scenario.Spec {
	t.Helper()
	spec, err := scenario.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// runCompiled compiles a spec and runs it.
func runCompiled(t *testing.T, spec scenario.Spec, o Options) Result {
	t.Helper()
	e, err := scenario.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestScenarioFig1ByteIdentity(t *testing.T) {
	spec := loadSpec(t, "examples/scenarios/fig1.json")
	for _, workers := range []int{1, 4} {
		o := Options{Reps: 2, Scale: 0.001, Seed: 1, Workers: workers, NoCache: true}
		want, err := RunFig1(o)
		if err != nil {
			t.Fatal(err)
		}
		got := runCompiled(t, spec, o)
		if got.Table() != want.Table() {
			t.Errorf("workers=%d: scenario table diverges from handwritten fig1\n--- handwritten ---\n%s--- scenario ---\n%s",
				workers, want.Table(), got.Table())
		}
	}
}

func TestScenarioFatTreeIncastByteIdentity(t *testing.T) {
	spec := loadSpec(t, "examples/scenarios/fattree-incast.json")
	o := Options{Reps: 1, Scale: 0.001, Seed: 1, Workers: 2, NoCache: true}
	want, err := RunFatTreeIncast(o)
	if err != nil {
		t.Fatal(err)
	}
	got := runCompiled(t, spec, o)
	if got.Table() != want.Table() {
		t.Errorf("scenario table diverges from handwritten fattree-incast\n--- handwritten ---\n%s--- scenario ---\n%s",
			want.Table(), got.Table())
	}
}

// TestScenarioUnequalRTTExample keeps the shipped heterogeneous-RTT example
// runnable end to end: it must parse, compile, run at tiny scale, and
// actually give the two senders different access delays.
func TestScenarioUnequalRTTExample(t *testing.T) {
	spec := loadSpec(t, "examples/scenarios/unequal-rtt.toml")
	c, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Topology.AccessDelaysUs) != 2 || c.Topology.AccessDelaysUs[0] == c.Topology.AccessDelaysUs[1] {
		t.Fatalf("unequal-rtt example lost its heterogeneous delays: %v", c.Topology.AccessDelaysUs)
	}
	res := runCompiled(t, spec, Options{Reps: 2, Scale: 0.001, Seed: 1, NoCache: true})
	if res.Table() == "" {
		t.Fatal("empty table")
	}
	if svg, err := res.SVG(); err != nil || len(svg) == 0 {
		t.Fatalf("svg: %v", err)
	}
}
