package greenenvy

import (
	"strings"
	"testing"

	"greenenvy/internal/cca"
)

// syntheticSweep builds a SweepResult with hand-written numbers so table
// rendering and derived statistics can be tested without running the
// simulator.
func syntheticSweep() *SweepResult {
	sw := &SweepResult{Bytes: 1_000_000_000, ScaleToPaper: 50}
	for i, name := range cca.PaperOrder() {
		for j, mtu := range SweepMTUs {
			base := 40.0 + float64(i)*2 // energy J, rising in paper order
			e := base - float64(j)*5    // bigger MTU cheaper
			fct := 1.0 + 0.1*float64(i) - 0.1*float64(j)
			sw.Cells = append(sw.Cells, SweepCell{
				CCA: name, MTU: mtu,
				EnergyJ: []float64{e, e + 0.5},
				FCTSecs: []float64{fct, fct},
				PowerW:  []float64{e / fct, e / fct},
				Retx:    []float64{float64(i * 100), float64(i * 100)},
			})
		}
	}
	return sw
}

func TestSweepCellAccessors(t *testing.T) {
	sw := syntheticSweep()
	c := sw.Cell("cubic", 9000)
	if c == nil {
		t.Fatal("Cell lookup failed")
	}
	if c.CCA != "cubic" || c.MTU != 9000 {
		t.Fatalf("wrong cell %+v", c)
	}
	if sw.Cell("cubic", 1234) != nil {
		t.Fatal("bogus MTU matched")
	}
	if sw.Cell("nope", 9000) != nil {
		t.Fatal("bogus CCA matched")
	}
	if c.MeanEnergyJ() <= 0 || c.MeanFCT() <= 0 || c.MeanPowerW() <= 0 {
		t.Fatal("means not computed")
	}
}

func TestSweepTablesRenderAllCells(t *testing.T) {
	sw := syntheticSweep()
	f5 := Fig5Result{Sweep: sw, BaselinePremiumPct: map[int]float64{1500: 10}, MTUSavingsPct: map[string]float64{}}
	for _, n := range cca.PaperOrder() {
		f5.MTUSavingsPct[n] = 20
	}
	f6 := Fig6Result{Sweep: sw, EnergyPowerCorr: -0.8, SpreadPct: 14}
	f7 := Fig7Result{Sweep: sw, Corr: 0.9}
	f8 := Fig8Result{Sweep: sw, CorrExclBBR2: 0.47, BaselineHasMostRetx: true}
	for _, tbl := range []string{f5.Table(), f6.Table(), f7.Table(), f8.Table()} {
		for _, name := range cca.PaperOrder() {
			if !strings.Contains(tbl, name) {
				t.Fatalf("table missing CCA %q:\n%s", name, tbl)
			}
		}
	}
	if !strings.Contains(f6.Table(), "-0.80") {
		t.Fatal("correlation not rendered")
	}
	if !strings.Contains(f8.Table(), "0.47") {
		t.Fatal("retx correlation not rendered")
	}
}

func TestSweepCacheReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the simulator")
	}
	o := Options{Reps: 1, Scale: 0.001, Seed: 3}
	a, err := RunCCASweep(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCCASweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same options did not hit the sweep cache")
	}
	c, err := RunCCASweep(Options{Reps: 1, Scale: 0.001, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different seed reused the cache")
	}
}
