package greenenvy

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"greenenvy/internal/cca"
)

// resetSweepCache empties the sweep cache so a test can force fresh
// computations for options that would otherwise hit the cache.
func resetSweepCache() {
	sweepMu.Lock()
	sweepCache = map[string]*sweepEntry{}
	sweepMu.Unlock()
}

// syntheticSweep builds a SweepResult with hand-written numbers so table
// rendering and derived statistics can be tested without running the
// simulator.
func syntheticSweep() *SweepResult {
	sw := &SweepResult{Bytes: 1_000_000_000, ScaleToPaper: 50}
	for i, name := range cca.PaperOrder() {
		for j, mtu := range SweepMTUs {
			base := 40.0 + float64(i)*2 // energy J, rising in paper order
			e := base - float64(j)*5    // bigger MTU cheaper
			fct := 1.0 + 0.1*float64(i) - 0.1*float64(j)
			sw.Cells = append(sw.Cells, SweepCell{
				CCA: name, MTU: mtu,
				EnergyJ: []float64{e, e + 0.5},
				FCTSecs: []float64{fct, fct},
				PowerW:  []float64{e / fct, e / fct},
				Retx:    []float64{float64(i * 100), float64(i * 100)},
			})
		}
	}
	return sw
}

func TestSweepCellAccessors(t *testing.T) {
	sw := syntheticSweep()
	c := sw.Cell("cubic", 9000)
	if c == nil {
		t.Fatal("Cell lookup failed")
	}
	if c.CCA != "cubic" || c.MTU != 9000 {
		t.Fatalf("wrong cell %+v", c)
	}
	if sw.Cell("cubic", 1234) != nil {
		t.Fatal("bogus MTU matched")
	}
	if sw.Cell("nope", 9000) != nil {
		t.Fatal("bogus CCA matched")
	}
	if c.MeanEnergyJ() <= 0 || c.MeanFCT() <= 0 || c.MeanPowerW() <= 0 {
		t.Fatal("means not computed")
	}
}

func TestSweepTablesRenderAllCells(t *testing.T) {
	sw := syntheticSweep()
	f5 := Fig5Result{Sweep: sw, BaselinePremiumPct: map[int]float64{1500: 10}, MTUSavingsPct: map[string]float64{}}
	for _, n := range cca.PaperOrder() {
		f5.MTUSavingsPct[n] = 20
	}
	f6 := Fig6Result{Sweep: sw, EnergyPowerCorr: -0.8, SpreadPct: 14}
	f7 := Fig7Result{Sweep: sw, Corr: 0.9}
	f8 := Fig8Result{Sweep: sw, CorrExclBBR2: 0.47, BaselineHasMostRetx: true}
	for _, tbl := range []string{f5.Table(), f6.Table(), f7.Table(), f8.Table()} {
		for _, name := range cca.PaperOrder() {
			if !strings.Contains(tbl, name) {
				t.Fatalf("table missing CCA %q:\n%s", name, tbl)
			}
		}
	}
	if !strings.Contains(f6.Table(), "-0.80") {
		t.Fatal("correlation not rendered")
	}
	if !strings.Contains(f8.Table(), "0.47") {
		t.Fatal("retx correlation not rendered")
	}
}

// TestSweepKeyAuditsOptionsFields is the in-memory sweep cache's key audit:
// every Options field must be explicitly classified as result-affecting
// (it changes the computed SweepResult, so it MUST change sweepKey) or
// exempt (it only changes wall-clock, logging, or persistence, so it must
// NOT change sweepKey — splitting the cache on it would duplicate work).
// A field added to Options without a classification here fails the test,
// so a future result-affecting knob cannot silently poison the cache.
func TestSweepKeyAuditsOptionsFields(t *testing.T) {
	// Mutators produce a value different from base in exactly one field.
	resultAffecting := map[string]func(*Options){
		"Reps":  func(o *Options) { o.Reps++ },
		"Scale": func(o *Options) { o.Scale /= 2 },
		"Seed":  func(o *Options) { o.Seed++ },
	}
	exempt := map[string]func(*Options){
		"Workers":  func(o *Options) { o.Workers++ },
		"Verbose":  func(o *Options) { o.Verbose = !o.Verbose },
		"CacheDir": func(o *Options) { o.CacheDir += "/elsewhere" },
		"NoCache":  func(o *Options) { o.NoCache = !o.NoCache },
		// The sweep runs on the dumbbell, which is a single partition:
		// Shards never reaches its engine (TestDumbbellIgnoresShards pins
		// this), so it must not split the sweep cache. Fat-tree experiment
		// cache ids DO record sharded-vs-monolithic (Options.ShardTag).
		"Shards": func(o *Options) { o.Shards++ },
	}

	rt := reflect.TypeOf(Options{})
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		_, ra := resultAffecting[name]
		_, ex := exempt[name]
		if ra == ex {
			t.Fatalf("Options.%s is not classified (or doubly classified) in the sweep key audit: "+
				"decide whether it affects results and add it to exactly one map", name)
		}
	}
	if rt.NumField() != len(resultAffecting)+len(exempt) {
		t.Fatalf("audit lists %d fields, Options has %d", len(resultAffecting)+len(exempt), rt.NumField())
	}

	base := Options{Reps: 2, Scale: 0.01, Seed: 5, Workers: 2, CacheDir: "somewhere"}
	for name, mutate := range resultAffecting {
		o := base
		mutate(&o)
		if sweepKey(o) == sweepKey(base) {
			t.Errorf("result-affecting field %s does not enter the sweep cache key", name)
		}
	}
	for name, mutate := range exempt {
		o := base
		mutate(&o)
		if sweepKey(o) != sweepKey(base) {
			t.Errorf("exempt field %s enters the sweep cache key (needless cache splits)", name)
		}
	}
}

// TestSweepParallelMatchesSerial is the determinism regression test for the
// worker-pool executor: the same Options must produce a byte-identical
// SweepResult (same cell order, same float values) at Workers 1 and 8.
func TestSweepParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the simulator")
	}
	base := Options{Reps: 2, Scale: 0.001, Seed: 7}

	serialOpts := base
	serialOpts.Workers = 1
	resetSweepCache()
	serial, err := RunCCASweep(serialOpts)
	if err != nil {
		t.Fatal(err)
	}

	parallelOpts := base
	parallelOpts.Workers = 8
	resetSweepCache() // force a fresh computation: the cache key ignores Workers
	parallel, err := RunCCASweep(parallelOpts)
	if err != nil {
		t.Fatal(err)
	}

	if len(parallel.Cells) != len(serial.Cells) {
		t.Fatalf("cell count %d != %d", len(parallel.Cells), len(serial.Cells))
	}
	for i := range serial.Cells {
		if !reflect.DeepEqual(serial.Cells[i], parallel.Cells[i]) {
			t.Fatalf("cell %d differs between Workers=1 and Workers=8:\n%+v\nvs\n%+v",
				i, serial.Cells[i], parallel.Cells[i])
		}
	}
	if serial.Bytes != parallel.Bytes || serial.ScaleToPaper != parallel.ScaleToPaper {
		t.Fatalf("sweep metadata differs: %+v vs %+v", serial, parallel)
	}
}

// TestConcurrentSweepCallersShareOneRun exercises the singleflight path: all
// concurrent callers with the same key must receive the pointer produced by
// a single shared computation (run under -race in CI).
func TestConcurrentSweepCallersShareOneRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the simulator")
	}
	resetSweepCache()
	o := Options{Reps: 1, Scale: 0.001, Seed: 9, Workers: 2}
	const callers = 4
	results := make([]*SweepResult, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = RunCCASweep(o)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different result pointer; sweep computed more than once", i)
		}
	}
}

func TestSweepCacheReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the simulator")
	}
	o := Options{Reps: 1, Scale: 0.001, Seed: 3}
	a, err := RunCCASweep(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCCASweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same options did not hit the sweep cache")
	}
	c, err := RunCCASweep(Options{Reps: 1, Scale: 0.001, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different seed reused the cache")
	}
}
