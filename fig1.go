package greenenvy

import (
	"fmt"
	"strings"

	"greenenvy/internal/core"
	"greenenvy/internal/iperf"
	"greenenvy/internal/testbed"
)

func init() {
	Register(Experiment{
		Name: "fig1", Aliases: []string{"1"}, Order: 10, Section: "§4.1",
		Description: "energy savings vs bandwidth fraction for two competing flows",
		Run:         func(o Options) (Result, error) { return RunFig1(o) },
	})
}

// Fig1Point is one x-position of the paper's Figure 1: the bandwidth
// fraction allocated to flow 1 and the measured total sender energy.
type Fig1Point struct {
	// Fraction of the bottleneck allocated to flow 1 while both flows
	// are active (0.5 = TCP fair share, 1.0 = full speed then idle).
	Fraction float64
	// MeanEnergyJ / StdEnergyJ summarize total sender energy over the
	// repetitions.
	MeanEnergyJ float64
	StdEnergyJ  float64
	// SavingsPct is energy saving over the fair point, in percent.
	SavingsPct float64
	// AnalyticSavingsPct is the closed-form prediction from the power
	// curve (the WeightedShare schedule energy).
	AnalyticSavingsPct float64
	// JainIndex is Jain's fairness index of the (f, 1−f) bandwidth
	// allocation while both flows are active: 1 at the fair split, 0.5
	// at full monopoly.
	JainIndex float64
}

// Fig1Result reproduces Figure 1: "Increasing throughput imbalance for two
// competing TCP flows can reduce energy usage."
type Fig1Result struct {
	Points        []Fig1Point
	FairEnergyJ   float64
	MaxSavingsPct float64
	// FlowGbit is the per-flow transfer size used (10 Gbit × Scale).
	FlowGbit float64
}

// RunFig1 sweeps the bandwidth fraction given to flow 1 (via weighted fair
// queueing at the bottleneck, work-conserving exactly as §1 describes) and
// measures total sender energy from experiment start until both flows
// complete. The paper's result: the fair split is worst; the serial
// schedule saves ≈16 %.
func RunFig1(o Options) (Fig1Result, error) {
	o, err := o.WithDefaults()
	if err != nil {
		return Fig1Result{}, err
	}
	bytes := uint64(10 * paperGbit * o.Scale)
	if bytes == 0 {
		return Fig1Result{}, fmt.Errorf("greenenvy: scale too small")
	}
	fractions := []float64{0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.0}
	res := Fig1Result{FlowGbit: float64(bytes) * 8 / 1e9}

	// Analytic predictions from the calibrated curve.
	p := PaperPowerFunc()
	flows := []core.Flow{{Bytes: float64(bytes)}, {Bytes: float64(bytes)}}
	analytic := make(map[float64]float64)
	for _, f := range fractions {
		s, err := core.WeightedShare(flows, 10e9, []float64{f, 1 - f})
		if err != nil {
			return Fig1Result{}, err
		}
		sav, err := core.SavingsOverFair(s, 10e9, p)
		if err != nil {
			return Fig1Result{}, err
		}
		analytic[f] = sav * 100
	}

	deadline := deadlineFor(2 * bytes)
	for _, f := range fractions {
		id := fmt.Sprintf("fig1/frac=%.2f/bytes=%d", f, bytes)
		aggs, err := runCell(o, id, func(seed uint64) (*testbed.Testbed, error) {
			tb := testbed.New(testbed.Options{Senders: 2, UseDRR: f < 1.0, Seed: seed})
			c1, err := tb.AddFlow(0, iperf.Spec{Bytes: bytes, CCA: "cubic"})
			if err != nil {
				return nil, err
			}
			c2, err := tb.AddFlow(1, iperf.Spec{Bytes: bytes, CCA: "cubic"})
			if err != nil {
				return nil, err
			}
			if f < 1.0 {
				if err := tb.SetWeight(c1.Report().Flow, f); err != nil {
					return nil, err
				}
				if err := tb.SetWeight(c2.Report().Flow, 1-f); err != nil {
					return nil, err
				}
			} else {
				// The paper's "full speed, then idle": flow 2 starts
				// when flow 1 completes.
				c2.StartAfter(c1)
			}
			return tb, nil
		}, deadline, senderJoules)
		if err != nil {
			return Fig1Result{}, fmt.Errorf("fraction %v: %w", f, err)
		}
		jain := 1 / (2 * (f*f + (1-f)*(1-f)))
		energy := aggs[0]
		res.Points = append(res.Points, Fig1Point{
			Fraction:           f,
			MeanEnergyJ:        energy.Mean,
			StdEnergyJ:         energy.Std,
			AnalyticSavingsPct: analytic[f],
			JainIndex:          jain,
		})
		o.Logf("fig1: f=%.2f energy=%.1f±%.1f J", f, energy.Mean, energy.Std)
	}

	res.FairEnergyJ = res.Points[0].MeanEnergyJ
	for i := range res.Points {
		res.Points[i].SavingsPct = (res.FairEnergyJ - res.Points[i].MeanEnergyJ) / res.FairEnergyJ * 100
		if res.Points[i].SavingsPct > res.MaxSavingsPct {
			res.MaxSavingsPct = res.Points[i].SavingsPct
		}
	}
	return res, nil
}

// Table renders the Figure 1 rows.
func (r Fig1Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — energy savings vs bandwidth fraction to flow 1 (%.1f Gbit/flow)\n", r.FlowGbit)
	fmt.Fprintf(&b, "%-10s %14s %12s %14s %8s\n", "fraction", "energy (J)", "savings %", "analytic %", "jain")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10.2f %8.1f ±%4.1f %12.2f %14.2f %8.3f\n",
			p.Fraction, p.MeanEnergyJ, p.StdEnergyJ, p.SavingsPct, p.AnalyticSavingsPct, p.JainIndex)
	}
	fmt.Fprintf(&b, "max savings: %.1f%%  (paper: ~16%%)\n", r.MaxSavingsPct)
	return b.String()
}
